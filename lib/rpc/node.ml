(* The multi-process node runtime: Atom's per-group pipeline, split across
   real processes and driven by wire messages.

   [Protocol.process_group] executes a group's iteration as one in-memory
   loop over the quorum. Here the same choreography runs as messages
   between the actual member processes, carrying all per-step state in the
   message (members are stateless between messages; only the group head
   accumulates):

     head (pos 1)        shuffles, sends Shuffle_step to pos 2
     pos p               verifies pos p-1's ShufProof, shuffles, forwards
     tail (pos q)        sends its step back to the head (step = q+1)
     head                verifies the tail, divides into β batches,
                         runs its ReEnc step, sends Reenc_step to pos 2
     pos p               verifies pos p-1's ReEnc proofs, steps, forwards
     tail                sends Batch to the next-layer head — which
                         verifies the tail's proofs (Algorithm 2 step 3b)
                         — or Exit_batch to the coordinator at the last
                         layer

   In the single-process engine every member verifies every proof; here
   each proof is checked by its successor in the pipeline (and the final
   step by the receiving group / coordinator), which preserves the
   anytrust argument as long as some honest member sits downstream of
   every dishonest one — the h ≥ 1 honest member per group is somewhere in
   the chain, and an abort anywhere stops the round.

   Every process — the N nodes and the coordinator — derives identical key
   material by running [Protocol.setup] over the same seeded RNG, so no
   secret ever crosses the wire and cross-process runs are comparable to
   the single-process reference round. A production deployment would run
   the interactive DKG here; the deterministic derivation stands in for it
   so the harness can check end-to-end correctness (EXPERIMENTS.md recipe:
   published plaintexts must equal the single-process run's, as sets). *)

open Atom_core

module Make (G : Atom_group.Group_intf.GROUP) (T : Transport.S) = struct
  module Pr = Protocol.Make (G)
  module C = Atom_wire.Codec.Make (G) (Pr.El)
  module Ctrl = Atom_wire.Control
  module Frame = Atom_wire.Frame
  module Trace = Atom_obs.Trace

  (* ---- shared derivations ---- *)

  let quorum_positions (net : Pr.network) : int list =
    List.init (Config.quorum net.Pr.config) (fun i -> i + 1)

  let iter_ctx (net : Pr.network) (gid : int) (iter : int) : string =
    Printf.sprintf "%s:iter=%d" (Pr.proof_context net gid) iter

  (* Effective public key of the member at Shamir position [pos]: its share
     commitment raised to the Lagrange coefficient for the no-churn quorum. *)
  let eff_pk (net : Pr.network) (gid : int) (pos : int) : G.t =
    let g = net.Pr.groups.(gid) in
    let coeff = Pr.Sh.lagrange_at_zero ~xs:(quorum_positions net) ~i:pos in
    G.pow (Pr.Dkg.share_pk g.Pr.keys pos) coeff

  let share_and_coeff (net : Pr.network) (gid : int) (pos : int) :
      G.Scalar.t * G.Scalar.t =
    let g = net.Pr.groups.(gid) in
    ( g.Pr.keys.Pr.Dkg.shares.(pos - 1).Pr.Sh.value,
      Pr.Sh.lagrange_at_zero ~xs:(quorum_positions net) ~i:pos )

  (* Member server id at quorum position [pos] (1-based). *)
  let member_at (net : Pr.network) (gid : int) (pos : int) : int =
    net.Pr.groups.(gid).Pr.members.(pos - 1)

  let iterations (net : Pr.network) : int =
    net.Pr.topo.Atom_topology.Topology.iterations

  (* Iterations are *absolute* across pipelined epochs: epoch e's layer l
     runs as iter = e·T + l (T = topology iterations). Everything keyed by
     iter — dedup keys, proof contexts, step RNG — is epoch-unique for
     free; only the topology itself is per-layer, so lookups normalize. *)
  let neighbors (net : Pr.network) ~(iter : int) ~(gid : int) : int array =
    net.Pr.topo.Atom_topology.Topology.neighbors ~iter:(iter mod iterations net)
      ~group:gid

  let last_layer (net : Pr.network) (iter : int) : bool =
    iter mod iterations net = iterations net - 1

  (* Batches arriving at [gid]'s layer [iter]: the fan-out of layer iter−1
     toward it. Derived from the topology so any wiring works, not just
     the square's all-to-all. *)
  let in_degree (net : Pr.network) (gid : int) (iter : int) : int =
    let n = ref 0 in
    for src = 0 to net.Pr.config.Config.n_groups - 1 do
      Array.iter (fun d -> if d = gid then incr n) (neighbors net ~iter:(iter - 1) ~gid:src)
    done;
    !n

  let expected_exits (net : Pr.network) : int =
    let last = iterations net - 1 in
    let n = ref 0 in
    for gid = 0 to net.Pr.config.Config.n_groups - 1 do
      n := !n + Array.length (neighbors net ~iter:last ~gid)
    done;
    !n

  (* Per-unit ReEnc proof vectors travel as one opaque blob per unit. *)
  let reenc_proofs_to_blob (pis : Pr.P.Reenc_proof.t array) : string =
    let b = Buffer.create 256 in
    Frame.W.u16 b (Array.length pis);
    Array.iter (fun pi -> Frame.W.str32 b (Pr.P.Reenc_proof.to_bytes pi)) pis;
    Buffer.contents b

  let reenc_proofs_of_blob (s : string) : Pr.P.Reenc_proof.t array option =
    Frame.R.decode s (fun r ->
        let n = Frame.R.u16 r in
        Array.init n (fun _ ->
            match Pr.P.Reenc_proof.of_bytes (Frame.R.str32 ~max:65536 r) with
            | Some pi -> pi
            | None -> Frame.R.fail ()))

  (* Verify one proof-carrying hop: [proofs] has one blob per unit proving
     input.(u) → output.(u) under [eff_pk]/[next_pk]. Units are independent,
     so the checks fan out across the pool (the sequential path kept its
     first-failure short-circuit; the pooled one checks every unit — same
     verdict either way). *)
  let verify_hop ?pool ~(eff_pk : G.t) ~(next_pk : G.t option) ~(context : string)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (proofs : string array) : bool =
    Array.length input = Array.length output
    && Array.length input = Array.length proofs
    && begin
         let oks =
           Atom_exec.Pool.tabulate ?pool (Array.length proofs) (fun u ->
               match reenc_proofs_of_blob proofs.(u) with
               | None -> false
               | Some pis ->
                   Pr.P.Reenc_proof.verify_vec ~eff_pk ~next_pk ~context
                     ~input:input.(u) ~output:output.(u) pis)
         in
         Array.for_all Fun.id oks
       end

  (* ---- §4.5 failure routing ----

     The simulator recovers a dead group in place (buddy sub-shares →
     [Pr.recover_position]); the message-passing runtime realises the same
     mechanism as deterministic *role replacement*: every process computes
     the same replacement for a dead server from the shared network state,
     so routing re-converges without coordination. The replacement is drawn
     from the dead server's buddy group first (§4.5: the buddies hold the
     re-sharing of its share), falling back to any live server. The
     replacement can execute the dead member's pipeline steps because
     handlers take (gid, pos) from the message, not from local identity —
     and it proves it holds the position's share by running the buddy
     recovery ceremony ([Pr.Dkg.recover] over the retained re-sharing)
     before adopting the role. *)

  let candidates (net : Pr.network) (sid : int) : int list =
    let buddy =
      match
        Array.find_opt (fun g -> Array.exists (( = ) sid) g.Pr.members) net.Pr.groups
      with
      | Some g -> Array.to_list g.Pr.buddies
      | None -> []
    in
    let everyone = List.init net.Pr.config.Config.n_servers Fun.id in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun c -> c <> sid && not (Hashtbl.mem seen c) && (Hashtbl.add seen c (); true))
      (buddy @ everyone)

  (* First live candidate; pure in (net, failed), so every process that has
     heard the same failure set routes identically. *)
  let resolve (net : Pr.network) (failed : bool array) (sid : int) : int =
    if sid < 0 || sid >= Array.length failed || not failed.(sid) then sid
    else
      match List.find_opt (fun c -> not failed.(c)) (candidates net sid) with
      | Some c -> c
      | None -> sid

  (* Bounded per-peer ring of recently sent frames, keyed by the *logical*
     destination (pre-rerouting) so a retained frame follows routing when
     the failure set changes. Recovery is retransmission: the round's
     in-flight state lives collectively in these rings, so a replacement
     server can be fed the dead member's inputs and the pipeline resumes
     from the furthest point it actually reached. The cap bounds memory —
     a frame that ages out before a recovery that needed it stalls the
     round into the coordinator's timeout, which is the graceful-
     degradation contract (never OOM). *)
  module Outbox = struct
    type t = { cap : int; tbl : (int, string Queue.t) Hashtbl.t }

    let create ?(cap = 32) () : t = { cap; tbl = Hashtbl.create 8 }

    let note (t : t) ~(dst : int) (frame : string) : unit =
      let q =
        match Hashtbl.find_opt t.tbl dst with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.add t.tbl dst q;
            q
      in
      Queue.add frame q;
      if Queue.length q > t.cap then ignore (Queue.pop q)

    let iter (t : t) (f : dst:int -> string -> unit) : unit =
      Hashtbl.iter (fun dst q -> Queue.iter (fun fr -> f ~dst fr) q) t.tbl

    let iter_dst (t : t) ~(dst : int) (f : string -> unit) : unit =
      match Hashtbl.find_opt t.tbl dst with Some q -> Queue.iter f q | None -> ()
  end

  (* ---- the node ---- *)

  module Intake = Atom_ingest.Intake
  module Admission = Atom_ingest.Admission
  module BSign = Bulletin.Signer (G)

  (* Seed-derived bulletin signing key: every process recomputes the same
     keypair from the shared config seed, mirroring the stand-in DKG. *)
  let bulletin_keypair (config : Config.t) : BSign.sk * BSign.pk =
    BSign.keypair ~seed:config.Config.seed

  (* Client submission plane state, present when the node runs with an
     admission policy. Clients are *not* fleet members: their ids live
     above the server range and they never appear in routing or failure
     tracking — only in this table, for acks and bulletin fan-out. *)
  type ingest_state = {
    intake : Intake.t;
    register_client : client:int -> port:int -> unit;
    (* verified onion units accumulating per (gid, epoch) while collecting *)
    ingest_pending : (int * int, Pr.El.vec list ref) Hashtbl.t;
    ingest_clients : (int, unit) Hashtbl.t; (* submitters, for bulletin fan-out *)
    bulletin_pk : BSign.pk;
  }

  type head_input = { mutable parts : Pr.El.vec array list; mutable got : int }

  type node = {
    t : T.t;
    net : Pr.network;
    pool : Atom_exec.Pool.t option; (* crypto fan-out; None = sequential *)
    node_id : int;
    coord : int;
    (* quorum positions this server holds, per group: (gid, pos) —
       grows when §4.5 adoption hands this node a dead server's role *)
    mutable roles : (int * int) list;
    (* head-only: accumulating inputs keyed (gid, iter) *)
    inputs : (int * int, head_input) Hashtbl.t;
    (* (gid, epoch) -> verified units (legacy single-round flow is epoch 0) *)
    entry_units : (int * int, Pr.El.vec array) Hashtbl.t;
    entry_started : (int * int, unit) Hashtbl.t;
    ingest : ingest_state option;
    now : unit -> float; (* caller clock; constant 0.0 when unbound *)
    seen : (string, int) Hashtbl.t; (* duplicate-submission check, per head *)
    failed : bool array; (* server id -> presumed dead (routing input) *)
    outbox : Outbox.t; (* retained sent frames, for Retransmit *)
    handled : (string, unit) Hashtbl.t; (* semantic dedup of pipeline steps *)
    adopted : (int * int, unit) Hashtbl.t; (* (gid, pos) ceremonies done *)
    mutable barrier : bool;
    mutable stop : bool;
    obs : Atom_obs.Ctx.t;
    (* Exclusive wall-clock phase tracker for the event loop (tid 0). The
       loop is single-threaded, so switching phases at each state change
       makes the phase spans tile the node's round wall-time by
       construction — the property the merged cluster trace asserts. *)
    ph : Trace.Phase.tracker;
    m_verify_failures : Atom_obs.Metrics.counter;
    m_steps : Atom_obs.Metrics.counter;
    m_bad_frames : Atom_obs.Metrics.counter;
    m_dups_dropped : Atom_obs.Metrics.counter;
    m_recoveries : Atom_obs.Metrics.counter;
    m_resends : Atom_obs.Metrics.counter;
    m_flight : Atom_obs.Metrics.histogram; (* step-frame send → receive, s *)
  }

  let roles_of (net : Pr.network) (node_id : int) : (int * int) list =
    let quorum = Config.quorum net.Pr.config in
    let out = ref [] in
    Array.iter
      (fun g ->
        Array.iteri
          (fun i sid -> if sid = node_id && i < quorum then out := (g.Pr.gid, i + 1) :: !out)
          g.Pr.members)
      net.Pr.groups;
    List.rev !out

  let abort (n : node) ~(code : int) (detail : string) : unit =
    Atom_obs.Metrics.incr n.m_verify_failures;
    Atom_obs.Log.warn "node %d: abort (%s)" n.node_id detail;
    ignore (T.send n.t ~dst:n.coord (Ctrl.encode (Ctrl.Abort { code; detail })));
    n.stop <- true

  (* A frame that fails strict decoding is dropped and counted, never
     fatal: under chaos (bit-flips, truncations, CRC-valid garbage) a
     corrupted frame must cost the round nothing. Semantic failures — a
     proof that verifies false, an assignment mismatch — still abort
     (§4.4): those are evidence of misbehaviour, not line noise. *)
  let bad_frame (n : node) (what : string) : unit =
    Atom_obs.Metrics.incr n.m_bad_frames;
    Atom_obs.Log.warn "node %d: dropped bad frame (%s)" n.node_id what

  let phase (n : node) (name : string) : unit = Trace.Phase.switch n.ph name

  (* Send timestamp for step frames, µs on the caller's clock; 0 means
     unclocked (the deterministic sim harness) and receivers skip it. *)
  let now_us (n : node) : int = int_of_float (n.now () *. 1e6)

  (* Receive-side flight time. Only meaningful when both ends are clocked;
     cross-process the clocks are per-process zeroed, so this is a skew-
     bounded estimate — groundwork for the roadmap's lane-alignment item,
     never a protocol input. *)
  let observe_flight (n : node) (sent_at : int) : unit =
    if sent_at > 0 then begin
      let now = now_us n in
      if now > 0 then
        Atom_obs.Metrics.observe n.m_flight (float_of_int (now - sent_at) /. 1e6)
    end

  (* Step-granularity detail spans: each (gid, iter, step) pipeline hop as
     a span on the group's own track (tid 1+gid, cat "step"), tagged with
     the executing node so it stays attributable after lane merging. Args
     are built lazily so the disabled path allocates nothing. *)
  let step_spanned (n : node) (name : string) ~(tid : int)
      ~(argf : unit -> (string * Trace.arg) list) (f : unit -> 'a) : 'a =
    let tr = Atom_obs.Ctx.tracer n.obs in
    if Trace.enabled tr then Trace.with_span tr ~cat:"step" ~args:(argf ()) ~tid name f
    else f ()

  let route (n : node) (dst : int) : int =
    if dst = n.coord then dst else resolve n.net n.failed dst

  (* §4.5 adoption: for every dead server whose replacement this node now
     is, run the buddy recovery ceremony once per (gid, pos) the dead
     server held — reconstruct the position's share from the retained
     buddy re-sharing and check it against the derived key material. In a
     deployment the sub-shares would arrive from the buddy servers; the
     derivation stands in for that transfer (as for the DKG itself), and
     the equality check pins the reconstruction to the real data path. *)
  let adopt_roles (n : node) : unit =
    phase n "recovery";
    let quorum = Config.quorum n.net.Pr.config in
    Array.iteri
      (fun sid dead ->
        if dead && resolve n.net n.failed sid = n.node_id then
          List.iter
            (fun (gid, pos) ->
              if not (Hashtbl.mem n.adopted (gid, pos)) then begin
                Hashtbl.add n.adopted (gid, pos) ();
                let g = n.net.Pr.groups.(gid) in
                let recovered =
                  Pr.Dkg.recover g.Pr.reshares.(pos - 1)
                    ~from:(List.init quorum (fun i -> i + 1))
                in
                if
                  G.Scalar.equal recovered.Pr.Sh.value
                    g.Pr.keys.Pr.Dkg.shares.(pos - 1).Pr.Sh.value
                then begin
                  Atom_obs.Metrics.incr n.m_recoveries;
                  (* The role is ours now: position-addressed step frames
                     already route here, but role-driven actions (starting
                     an entry group on Barrier) consult [n.roles]. *)
                  n.roles <- n.roles @ [ (gid, pos) ];
                  Trace.thread_name (Atom_obs.Ctx.tracer n.obs) ~tid:(1 + gid)
                    (Printf.sprintf "group %d" gid);
                  Atom_obs.Log.warn "node %d: recovered share gid=%d pos=%d for dead node %d"
                    n.node_id gid pos sid
                end
                else
                  abort n ~code:Ctrl.abort_internal
                    (Printf.sprintf "buddy recovery mismatch gid=%d pos=%d" gid pos)
              end)
            (roles_of n.net sid))
      n.failed

  let mark_failed (n : node) (sid : int) : unit =
    if sid >= 0 && sid < Array.length n.failed && sid <> n.node_id && not n.failed.(sid)
    then begin
      n.failed.(sid) <- true;
      Atom_obs.Log.warn "node %d: peer %d marked failed; replacement %d" n.node_id sid
        (resolve n.net n.failed sid);
      adopt_roles n
    end

  (* Physical send with rerouting: a typed send error marks the peer dead,
     notifies the coordinator, and retries toward the replacement. Each
     retry marks one more server, so the recursion is bounded by fleet
     size. A coordinator failure is unrecoverable — it *is* the round. *)
  let rec send_raw (n : node) ~(dst : int) (frame : string) : unit =
    if not n.stop then begin
      phase n "send";
      let target = route n dst in
      match T.send n.t ~dst:target frame with
      | Ok () -> ()
      | Error e ->
          if target = n.coord then begin
            Atom_obs.Log.warn "node %d: coordinator unreachable: %s" n.node_id
              (Transport.error_to_string e);
            n.stop <- true
          end
          else begin
            Atom_obs.Log.warn "node %d: peer %d unreachable (%s), rerouting" n.node_id
              target (Transport.error_to_string e);
            mark_failed n target;
            ignore
              (T.send n.t ~dst:n.coord (Ctrl.encode (Ctrl.Failed { sids = [| target |] })));
            if route n dst <> target then send_raw n ~dst frame
          end
    end

  (* All pipeline traffic is retained (coordinator-bound included: an
     Exit_batch lost to a partition is recovered the same way) and sent
     through the routing layer. *)
  let send_to (n : node) ~(dst : int) (frame : string) : unit =
    Outbox.note n.outbox ~dst frame;
    send_raw n ~dst frame

  (* Retransmission and duplicate delivery make every message potentially
     multi-delivered; each pipeline step executes exactly once, keyed by
     its position in the round, and later copies are dropped — whether
     byte-identical resends or a re-execution by a replacement server
     (which differs in randomness but not in meaning). *)
  let fresh (n : node) (key : string) : bool =
    if Hashtbl.mem n.handled key then begin
      Atom_obs.Metrics.incr n.m_dups_dropped;
      false
    end
    else begin
      Hashtbl.add n.handled key ();
      true
    end

  let nizk (n : node) : bool = n.net.Pr.config.Config.variant = Config.Nizk

  (* Randomness for pipeline-step execution is keyed to the *step*, not
     the node: a §4.5 replacement re-executing a dead member's step must
     reproduce the original's bytes exactly, or first-arrival dedup
     downstream could stitch together two different shuffles of the same
     layer (duplicating one message and losing another). [tag] encodes
     the position within the (gid, iter) pipeline: shuffle position s is
     tag s; re-encryption position s of batch b is tag 1000 + 64b + s. *)
  let step_rng (n : node) ~(gid : int) ~(iter : int) ~(tag : int) : Atom_util.Rng.t =
    Atom_util.Rng.create
      (n.net.Pr.config.Config.seed
      lxor (0x51ab5 * (gid + 1))
      lxor (0x9e377 * (iter + 1))
      lxor (0x85eb1 * (tag + 1)))

  (* Step 2+3 of the group iteration, run by the head once the collective
     shuffle is done: divide into β batches and launch each decrypt-and-
     reencrypt chain with this head's own step. *)
  let rec divide_and_reenc (n : node) (gid : int) (iter : int) (units : Pr.El.vec array) : unit =
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    let nbrs = neighbors net ~iter ~gid in
    let beta = Array.length nbrs in
    let last_iter = last_layer net iter in
    let ctx = iter_ctx net gid iter in
    let share, coeff = share_and_coeff net gid 1 in
    let batches = Array.make beta [] in
    Array.iteri (fun i u -> batches.(i mod beta) <- u :: batches.(i mod beta)) units;
    let batches = Array.map (fun l -> Array.of_list (List.rev l)) batches in
    Array.iteri
      (fun bi batch ->
        if not n.stop then begin
          phase n "reenc";
          step_spanned n "head_reenc" ~tid:(1 + gid)
            ~argf:(fun () ->
              [ ("node", Trace.I n.node_id); ("gid", Trace.I gid);
                ("iter", Trace.I iter); ("batch", Trace.I bi) ])
          @@ fun () ->
          let rng = step_rng n ~gid ~iter ~tag:(1000 + (bi * 64) + 1) in
          let next_pk = if last_iter then None else Some (Pr.group_pk net nbrs.(bi)) in
          let output, proofs =
            if nizk n then begin
              let stepped =
                Array.map
                  (fun v ->
                    Pr.P.Reenc_proof.reenc_vec_with_proof rng ~share ~coeff ~next_pk
                      ~context:ctx v)
                  batch
              in
              (Array.map fst stepped, Array.map (fun (_, pis) -> reenc_proofs_to_blob pis) stepped)
            end
            else
              ( Array.map (fun v -> fst (Pr.El.reenc_vec rng ~share ~coeff ~next_pk v)) batch,
                Array.map (fun _ -> "") batch )
          in
          Atom_obs.Metrics.incr n.m_steps;
          if quorum > 1 then
            send_to n
              ~dst:(member_at n.net gid 2)
              (C.encode
                 (C.Reenc_step
                    { gid; iter; batch_idx = bi; step = 2; sent_at = now_us n;
                      input = batch; output; proofs }))
          else
            (* Single-member quorum: the head is also the tail. *)
            finish_batch n gid iter bi ~input:batch ~output ~proofs
        end)
      batches

  (* Tail hand-off: forward the proven batch to the next layer's head, or
     to the coordinator at the exit layer. The receiver re-verifies the
     proofs before accepting (Algorithm 2, step 3b). *)
  and finish_batch (n : node) (gid : int) (iter : int) (batch_idx : int)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (* pre-clear_y *)
      ~(proofs : string array) : unit =
    let net = n.net in
    if last_layer net iter then
      send_to n ~dst:n.coord
        (C.encode (C.Exit_batch { gid; iter; batch_idx; input; output; proofs }))
    else begin
      let dst_gid = (neighbors net ~iter ~gid).(batch_idx) in
      send_to n
        ~dst:(member_at net dst_gid 1)
        (C.encode
           (C.Batch
              { gid = dst_gid; iter = iter + 1; src_gid = gid; sent_at = now_us n;
                input; output; proofs }))
    end

  (* Head: start the collective shuffle for (gid, iter) over [units]. *)
  let begin_iter (n : node) (gid : int) (iter : int) (units : Pr.El.vec array) : unit =
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    if Array.length units = 0 then
      (* Nothing to mix: skip the shuffle pass, keep the (empty) batch flow
         so downstream in-degree counting stays uniform. *)
      divide_and_reenc n gid iter units
    else begin
      phase n "shuffle";
      step_spanned n "shuffle_head" ~tid:(1 + gid)
        ~argf:(fun () ->
          [ ("node", Trace.I n.node_id); ("gid", Trace.I gid);
            ("iter", Trace.I iter); ("step", Trace.I 1) ])
      @@ fun () ->
      let rng = step_rng n ~gid ~iter ~tag:1 in
      match Pr.El.shuffle_vec ?pool:n.pool rng (Pr.group_pk net gid) units with
      | None -> abort n ~code:Ctrl.abort_internal (Printf.sprintf "shuffle failed gid=%d" gid)
      | Some (shuffled, witness) ->
          Atom_obs.Metrics.incr n.m_steps;
          if quorum = 1 then divide_and_reenc n gid iter shuffled
          else begin
            let proof =
              if nizk n then
                Pr.Shuf.to_bytes
                  (Pr.Shuf.prove ?pool:n.pool rng ~pk:(Pr.group_pk net gid)
                     ~context:(iter_ctx net gid iter) ~input:units ~output:shuffled ~witness)
              else ""
            in
            send_to n
              ~dst:(member_at net gid 2)
              (C.encode
                 (C.Shuffle_step
                    { gid; iter; step = 2; sent_at = now_us n; input = units;
                      output = shuffled; proof }))
          end
    end

  (* Head: record one input batch for (gid, iter); fire when complete. *)
  let accept_input (n : node) (gid : int) (iter : int) (units : Pr.El.vec array) : unit =
    let key = (gid, iter) in
    let st =
      match Hashtbl.find_opt n.inputs key with
      | Some st -> st
      | None ->
          let st = { parts = []; got = 0 } in
          Hashtbl.add n.inputs key st;
          st
    in
    st.parts <- units :: st.parts;
    st.got <- st.got + 1;
    if st.got = in_degree n.net gid iter then begin
      Hashtbl.remove n.inputs key;
      begin_iter n gid iter (Array.concat (List.rev st.parts))
    end

  (* Start entry mixing for (gid, epoch) exactly once. Legacy flow waits
     for the coordinator's Submissions frame; ingest flow has already
     sealed the epoch's units locally, so an absent entry means an empty
     epoch and the (empty) batch flow still runs to keep downstream
     in-degree counting uniform. *)
  let maybe_start_entry (n : node) (gid : int) ~(epoch : int) : unit =
    if n.barrier && not (Hashtbl.mem n.entry_started (gid, epoch)) then begin
      let units =
        match Hashtbl.find_opt n.entry_units (gid, epoch) with
        | Some units -> Some units
        | None -> if n.ingest <> None then Some [||] else None
      in
      match units with
      | Some units ->
          Hashtbl.add n.entry_started (gid, epoch) ();
          Hashtbl.remove n.entry_units (gid, epoch);
          begin_iter n gid (epoch * iterations n.net) units
      | None -> ()
    end

  (* ---- message handlers ---- *)

  let on_submissions (n : node) (gid : int) (blobs : string array) : unit =
    (* Entry charge: decode each submission, verify its EncProofs and the
       duplicate-ciphertext check, keep accepted units in arrival order.
       (The single-process engine shares one duplicate table across entry
       groups; per-head tables are equivalent for well-formed traffic
       since a submission targets exactly one entry group.) *)
    phase n "verify";
    let units = ref [] in
    Array.iter
      (fun blob ->
        match Pr.Wire.submission_of_bytes blob with
        | None -> Atom_obs.Metrics.incr n.m_verify_failures
        | Some s ->
            if s.Pr.entry_gid = gid && Pr.verify_submission n.net n.seen s then
              Array.iter (fun u -> units := u.Pr.vec :: !units) s.Pr.units
            else Atom_obs.Metrics.incr n.m_verify_failures)
      blobs;
    Hashtbl.replace n.entry_units (gid, 0) (Array.of_list (List.rev !units));
    maybe_start_entry n gid ~epoch:0

  let on_shuffle_step (n : node) ~(gid : int) ~(iter : int) ~(step : int)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (proof : string) : unit =
    phase n "verify";
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    let pk = Pr.group_pk net gid in
    let ctx = iter_ctx net gid iter in
    let verified =
      (not (nizk n))
      || Array.length input = 0
      ||
      match Pr.Shuf.of_bytes proof with
      | None -> false
      | Some pi -> Pr.Shuf.verify ?pool:n.pool ~pk ~context:ctx ~input ~output pi
    in
    if not verified then
      abort n ~code:Ctrl.abort_proof_rejected
        (Printf.sprintf "shuffle proof rejected gid=%d iter=%d step=%d" gid iter step)
    else if step > quorum then
      (* Back at the head: the whole quorum has shuffled. *)
      divide_and_reenc n gid iter output
    else begin
      phase n "shuffle";
      let rng = step_rng n ~gid ~iter ~tag:step in
      match Pr.El.shuffle_vec ?pool:n.pool rng pk output with
      | None -> abort n ~code:Ctrl.abort_internal (Printf.sprintf "shuffle failed gid=%d" gid)
      | Some (shuffled, witness) ->
          Atom_obs.Metrics.incr n.m_steps;
          let proof' =
            if nizk n then
              Pr.Shuf.to_bytes
                (Pr.Shuf.prove ?pool:n.pool rng ~pk ~context:ctx ~input:output
                   ~output:shuffled ~witness)
            else ""
          in
          let next_pos = if step = quorum then 1 else step + 1 in
          send_to n
            ~dst:(member_at net gid next_pos)
            (C.encode
               (C.Shuffle_step
                  { gid; iter; step = step + 1; sent_at = now_us n; input = output;
                    output = shuffled; proof = proof' }))
    end

  let on_reenc_step (n : node) ~(gid : int) ~(iter : int) ~(batch_idx : int) ~(step : int)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (proofs : string array) : unit =
    phase n "verify";
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    let ctx = iter_ctx net gid iter in
    let next_pk =
      if last_layer net iter then None
      else Some (Pr.group_pk net (neighbors net ~iter ~gid).(batch_idx))
    in
    let prev_ok =
      (not (nizk n))
      || verify_hop ?pool:n.pool ~eff_pk:(eff_pk net gid (step - 1)) ~next_pk ~context:ctx ~input
           ~output proofs
    in
    if not prev_ok then
      abort n ~code:Ctrl.abort_proof_rejected
        (Printf.sprintf "reenc proofs rejected gid=%d iter=%d step=%d" gid iter (step - 1))
    else begin
      phase n "reenc";
      let share, coeff = share_and_coeff net gid step in
      let rng = step_rng n ~gid ~iter ~tag:(1000 + (batch_idx * 64) + step) in
      let output', proofs' =
        if nizk n then begin
          let stepped =
            Array.map
              (fun v ->
                Pr.P.Reenc_proof.reenc_vec_with_proof rng ~share ~coeff ~next_pk ~context:ctx v)
              output
          in
          (Array.map fst stepped, Array.map (fun (_, pis) -> reenc_proofs_to_blob pis) stepped)
        end
        else
          ( Array.map (fun v -> fst (Pr.El.reenc_vec rng ~share ~coeff ~next_pk v)) output,
            Array.map (fun _ -> "") output )
      in
      Atom_obs.Metrics.incr n.m_steps;
      if step < quorum then
        send_to n
          ~dst:(member_at net gid (step + 1))
          (C.encode
             (C.Reenc_step
                { gid; iter; batch_idx; step = step + 1; sent_at = now_us n;
                  input = output; output = output'; proofs = proofs' }))
      else finish_batch n gid iter batch_idx ~input:output ~output:output' ~proofs:proofs'
    end

  let on_batch (n : node) ~(gid : int) ~(iter : int) ~(src_gid : int)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (proofs : string array) : unit =
    (* Next-layer head verifies the sending tail's final ReEnc step, then
       strips the carried Y components before mixing. *)
    phase n "verify";
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    let ok =
      (not (nizk n))
      || verify_hop ?pool:n.pool
           ~eff_pk:(eff_pk net src_gid quorum)
           ~next_pk:(Some (Pr.group_pk net gid))
           ~context:(iter_ctx net src_gid (iter - 1))
           ~input ~output proofs
    in
    if not ok then
      abort n ~code:Ctrl.abort_proof_rejected
        (Printf.sprintf "batch from gid=%d rejected at gid=%d iter=%d" src_gid gid iter)
    else accept_input n gid iter (Array.map Pr.El.clear_y_vec output)

  (* ---- client submission plane ---- *)

  let heads_gid (n : node) (gid : int) : bool =
    List.exists (fun (g, pos) -> g = gid && pos = 1) n.roles

  (* One client submission: register the return path, run admission, and
     ack with an explicit verdict. Acks go straight to the client id —
     clients are outside the server range, so none of the routing /
     failure-marking machinery applies to them. *)
  let on_submit (n : node) (ing : ingest_state) ~(client : int) ~(port : int)
      ~(token : int) ~(gid : int) ~(blob : string) ~(pow : string) : unit =
    phase n "ingest";
    ing.register_client ~client ~port;
    Hashtbl.replace ing.ingest_clients client ();
    let reply msg = ignore (T.send n.t ~dst:client (Ctrl.encode msg)) in
    if String.length blob = 0 then begin
      (* Empty blob is an epoch query, not a submission. *)
      let p = Intake.policy ing.intake in
      reply
        (Ctrl.Epoch_info
           { epoch = Intake.epoch ing.intake; pow_bits = p.Admission.pow_bits;
             queue_cap = p.Admission.queue_cap; queue_len = Intake.queue_len ing.intake })
    end
    else if gid < 0 || gid >= Array.length n.net.Pr.groups || not (heads_gid n gid) then
      reply
        (Ctrl.Submit_ack
           { token; status = Ctrl.submit_rejected; epoch = 0; retry_ms = 0; queue_len = 0 })
    else begin
      (* Decode, verify (EncProofs + duplicate-ciphertext) and stash in one
         pass; the intake dedups retries *before* this runs, so a lost ack
         never trips the replay check. *)
      let validate ~epoch blob =
        match Pr.Wire.submission_of_bytes blob with
        | None -> false
        | Some s ->
            if s.Pr.entry_gid = gid && Pr.verify_submission n.net n.seen s then begin
              let key = (gid, epoch) in
              let l =
                match Hashtbl.find_opt ing.ingest_pending key with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.add ing.ingest_pending key l;
                    l
              in
              Array.iter (fun u -> l := u.Pr.vec :: !l) s.Pr.units;
              true
            end
            else false
      in
      match Intake.submit ing.intake ~now:(n.now ()) ~client ~blob ~pow ~validate with
      | Intake.Accepted { epoch; queue_len } ->
          reply
            (Ctrl.Submit_ack
               { token; status = Ctrl.submit_accepted; epoch; retry_ms = 0; queue_len })
      | Intake.Backpressure { retry_ms; queue_len } ->
          reply
            (Ctrl.Submit_ack
               { token; status = Ctrl.submit_retry; epoch = Intake.epoch ing.intake;
                 retry_ms; queue_len })
      | Intake.Rejected { reason = _; queue_len } ->
          reply
            (Ctrl.Submit_ack
               { token; status = Ctrl.submit_rejected; epoch = Intake.epoch ing.intake;
                 retry_ms = 0; queue_len })
    end

  let handle_control (n : node) ~(src : int) (msg : Ctrl.t) : unit =
    match msg with
    | Ctrl.Peers _ | Ctrl.Hello _ | Ctrl.Join _ | Ctrl.Ack _ | Ctrl.Published _
    | Ctrl.Trap_commitments _ | Ctrl.Stats_reply _ ->
        () (* peers are registered by the caller's [on_peers]; rest is informational *)
    | Ctrl.Stats_request { token } ->
        (* Live stats service: snapshot the registry + trace buffer and send
           it back to whoever asked (normally the coordinator merging the
           cluster trace). Served at any point in the round — the open-span
           summary says what this node is doing right now. *)
        let snap =
          Atom_obs.Snapshot.of_ctx ~node_id:n.node_id ~include_trace:true n.obs
        in
        ignore
          (T.send n.t ~dst:src
             (Ctrl.encode
                (Ctrl.Stats_reply
                   { token; node_id = n.node_id; snapshot = Atom_obs.Snapshot.to_json snap })))
    | Ctrl.Group_assign { gid; members } ->
        (* Cross-check the coordinator's view against our own derivation:
           any divergence means the deterministic setup drifted. *)
        if
          gid < 0
          || gid >= Array.length n.net.Pr.groups
          || n.net.Pr.groups.(gid).Pr.members <> members
        then abort n ~code:Ctrl.abort_bad_assignment (Printf.sprintf "group %d assignment mismatch" gid)
    | Ctrl.Barrier { iter } -> (
        match n.ingest with
        | None ->
            if iter = 0 then begin
              n.barrier <- true;
              List.iter
                (fun (gid, pos) -> if pos = 1 then maybe_start_entry n gid ~epoch:0)
                n.roles
            end
        | Some ing ->
            (* Ingest mode: Barrier e seals epoch e — collection moves on to
               e+1 (that's the pipelining: e mixes while e+1 collects) and
               e's verified units become the entry batch. Idempotent under
               barrier retransmission. *)
            phase n "ingest";
            n.barrier <- true;
            let epoch = iter in
            ignore (Intake.seal ing.intake ~epoch);
            List.iter
              (fun (gid, pos) ->
                if pos = 1 then begin
                  (match Hashtbl.find_opt ing.ingest_pending (gid, epoch) with
                  | Some l ->
                      Hashtbl.replace n.entry_units (gid, epoch)
                        (Array.of_list (List.rev !l));
                      Hashtbl.remove ing.ingest_pending (gid, epoch)
                  | None -> ());
                  maybe_start_entry n gid ~epoch
                end)
              n.roles)
    | Ctrl.Submit { client; port; token; gid; epoch = _; blob; pow } -> (
        match n.ingest with
        | None -> bad_frame n "submit without ingest enabled"
        | Some ing -> on_submit n ing ~client ~port ~token ~gid ~blob ~pow)
    | Ctrl.Submit_ack _ | Ctrl.Epoch_info _ -> () (* client-side traffic *)
    | Ctrl.Bulletin_announce { epoch; digest; signature; posts } -> (
        match n.ingest with
        | None -> ()
        | Some ing ->
            let s = { Bulletin.epoch; posts; digest } in
            if not (BSign.verify_sealed ~pk:ing.bulletin_pk s ~signature) then
              bad_frame n "bulletin announce signature rejected"
            else if fresh n (Printf.sprintf "A%d" epoch) then begin
              (* Fan the signed bulletin out to every client that submitted
                 here; client-side verification closes the loop. *)
              let frame = Ctrl.encode msg in
              Hashtbl.iter
                (fun c () -> ignore (T.send n.t ~dst:c frame))
                ing.ingest_clients
            end)
    | Ctrl.Submissions { gid; blobs } ->
        (* Dedup is load-bearing here: reprocessing would trip the
           duplicate-ciphertext check against the first pass's [seen]
           entries and replace the verified units with an empty set. *)
        if fresh n (Printf.sprintf "U%d" gid) then on_submissions n gid blobs
    | Ctrl.Failed { sids } ->
        phase n "recovery";
        Array.iter (mark_failed n) sids;
        (* Adoption may have handed this node an entry-head role whose
           submissions were rerouted here before the death was known —
           idempotent thanks to the entry_started guard. Ingest mode
           revisits every sealed epoch (the replacement starts an empty
           entry; units accepted only by the dead head are the documented
           loss bound, which the harness avoids by killing non-heads). *)
        let epochs =
          match n.ingest with
          | None -> [ 0 ]
          | Some ing -> List.init (Intake.epoch ing.intake) Fun.id
        in
        List.iter
          (fun (gid, pos) ->
            if pos = 1 then List.iter (fun e -> maybe_start_entry n gid ~epoch:e) epochs)
          n.roles
    | Ctrl.Retransmit ->
        (* Recovery nudge: re-send every retained frame toward its current
           route; receiver-side dedup makes this idempotent. *)
        phase n "recovery";
        Outbox.iter n.outbox (fun ~dst frame ->
            Atom_obs.Metrics.incr n.m_resends;
            send_raw n ~dst frame)
    | Ctrl.Abort { detail; _ } ->
        Atom_obs.Log.warn "node %d: abort relayed: %s" n.node_id detail;
        n.stop <- true
    | Ctrl.Shutdown -> n.stop <- true

  let handle_codec (n : node) (msg : C.msg) : unit =
    match msg with
    | C.Group_key { gid; pk } ->
        if gid < 0 || gid >= Array.length n.net.Pr.groups
           || not (G.equal pk (Pr.group_pk n.net gid))
        then abort n ~code:Ctrl.abort_bad_assignment (Printf.sprintf "group %d key mismatch" gid)
    | C.Shuffle_step { gid; iter; step; sent_at; input; output; proof } ->
        observe_flight n sent_at;
        if fresh n (Printf.sprintf "S%d.%d.%d" gid iter step) then
          step_spanned n "shuffle_step" ~tid:(1 + gid)
            ~argf:(fun () ->
              [ ("node", Trace.I n.node_id); ("gid", Trace.I gid);
                ("iter", Trace.I iter); ("step", Trace.I step) ])
            (fun () -> on_shuffle_step n ~gid ~iter ~step ~input ~output proof)
    | C.Reenc_step { gid; iter; batch_idx; step; sent_at; input; output; proofs } ->
        observe_flight n sent_at;
        if fresh n (Printf.sprintf "R%d.%d.%d.%d" gid iter batch_idx step) then
          step_spanned n "reenc_step" ~tid:(1 + gid)
            ~argf:(fun () ->
              [ ("node", Trace.I n.node_id); ("gid", Trace.I gid);
                ("iter", Trace.I iter); ("batch", Trace.I batch_idx);
                ("step", Trace.I step) ])
            (fun () -> on_reenc_step n ~gid ~iter ~batch_idx ~step ~input ~output proofs)
    | C.Batch { gid; iter; src_gid; sent_at; input; output; proofs } ->
        (* One batch per (src, dst) pair per layer: the square topology
           never fans a group out twice to the same neighbor in a layer,
           so this key distinguishes every legitimate batch (iter is
           absolute, so the key is also epoch-unique). *)
        observe_flight n sent_at;
        if fresh n (Printf.sprintf "B%d.%d.%d" gid iter src_gid) then
          step_spanned n "batch_verify" ~tid:(1 + gid)
            ~argf:(fun () ->
              [ ("node", Trace.I n.node_id); ("gid", Trace.I gid);
                ("iter", Trace.I iter); ("src_gid", Trace.I src_gid) ])
            (fun () -> on_batch n ~gid ~iter ~src_gid ~input ~output proofs)
    | C.Exit_batch _ -> () (* coordinator-only traffic *)

  let handle_frame (n : node) ~(src : int) (frame : string) : unit =
    match Frame.kind_of frame with
    | Some k when k >= Frame.kind_group_key && k <= Frame.kind_exit_batch -> (
        (* Data-plane hot path: one structural parse (zero-copy element
           views), then one batched membership discharge over the whole
           frame — no per-element validation work. Decoding deferred and
           discharging explicitly (rather than [~policy:Batched]) keeps
           the non-member index for the abort detail. *)
        match C.decode ~policy:Atom_wire.Validation.Deferred frame with
        | Some (C.Unchecked d) -> (
            match C.discharge ?pool:n.pool d with
            | Ok msg -> handle_codec n msg
            | Error i ->
                bad_frame n
                  (Printf.sprintf "non-member element %d in %s" i (Frame.kind_name k)))
        | Some (C.Msg msg) -> handle_codec n msg
        | None -> bad_frame n (Printf.sprintf "bad %s body" (Frame.kind_name k)))
    | Some k -> (
        match Ctrl.decode frame with
        | Some msg -> handle_control n ~src msg
        | None -> bad_frame n (Printf.sprintf "bad %s body" (Frame.kind_name k)))
    | None -> bad_frame n "unparseable frame"

  (* Run one server's event loop until Shutdown / abort / idle expiry.
     [on_peers] lets the transport register discovered peers (TCP needs
     host:port; the simulator transport knows everyone already). *)
  let run_node ?(obs = Atom_obs.Ctx.noop) ?clock ?pool (t : T.t) ~(config : Config.t)
      ~(node_id : int) ~(coord : int) ?(recv_timeout = 0.5) ?(max_idle = 240)
      ?(on_peers = fun (_ : (int * int) array) -> ())
      ?(ingest : Admission.policy option)
      ?(register_client = fun ~client:(_ : int) ~port:(_ : int) -> ()) () : unit =
    (* [clock] binds the tracer's timebase (a wall clock for real
       deployments). Left unbound, the simulator-transport tests keep their
       deterministic zero clock. *)
    (match clock with Some c -> Atom_obs.Ctx.bind_clock obs c | None -> ());
    let reg = Atom_obs.Ctx.metrics obs in
    let tr = Atom_obs.Ctx.tracer obs in
    let net = Pr.setup (Atom_util.Rng.create config.Config.seed) config () in
    Trace.thread_name tr ~tid:0 "event loop";
    let now = match clock with Some c -> c | None -> fun () -> 0. in
    let ingest =
      Option.map
        (fun policy ->
          let _, bulletin_pk = bulletin_keypair config in
          {
            intake = Intake.create ~obs ~policy ();
            register_client;
            ingest_pending = Hashtbl.create 16;
            ingest_clients = Hashtbl.create 64;
            bulletin_pk;
          })
        ingest
    in
    let n =
      {
        t;
        net;
        pool;
        node_id;
        coord;
        roles = roles_of net node_id;
        inputs = Hashtbl.create 16;
        entry_units = Hashtbl.create 8;
        entry_started = Hashtbl.create 8;
        seen = Hashtbl.create 64;
        ingest;
        now;
        failed = Array.make config.Config.n_servers false;
        outbox = Outbox.create ();
        handled = Hashtbl.create 64;
        adopted = Hashtbl.create 8;
        barrier = false;
        stop = false;
        obs;
        ph = Trace.Phase.start tr ~tid:0 "barrier";
        m_verify_failures = Atom_obs.Metrics.counter reg "node.verify_failures";
        m_steps = Atom_obs.Metrics.counter reg "node.steps";
        m_bad_frames = Atom_obs.Metrics.counter reg "node.bad_frames";
        m_dups_dropped = Atom_obs.Metrics.counter reg "node.dups_dropped";
        m_recoveries = Atom_obs.Metrics.counter reg "node.recoveries";
        m_resends = Atom_obs.Metrics.counter reg "node.resends";
        m_flight =
          Atom_obs.Metrics.histogram reg ~buckets:20 ~lo:0. ~hi:2. "node.step_flight_s";
      }
    in
    List.iter
      (fun (gid, _) -> Trace.thread_name tr ~tid:(1 + gid) (Printf.sprintf "group %d" gid))
      n.roles;
    let idle = ref 0 in
    while (not n.stop) && !idle < max_idle do
      (* Between frames the node is either waiting out the bring-up
         ("barrier") or blocked on upstream pipeline traffic ("recv-wait");
         handlers switch to their own phase on arrival, so the tid-0 phase
         spans tile the whole loop lifetime. *)
      phase n (if n.barrier then "recv-wait" else "barrier");
      match T.recv t ~timeout:recv_timeout with
      | Error Transport.Closed -> n.stop <- true
      | Error _ -> incr idle
      | Ok (src, frame) ->
          idle := 0;
          (match Ctrl.decode frame with
          | Some (Ctrl.Peers { peers }) ->
              (* Register the fleet, then tell the coordinator we can route:
                 no data-plane traffic flows until every node has acked. *)
              on_peers peers;
              ignore (T.send t ~dst:coord (Ctrl.encode (Ctrl.Ack { token = node_id })))
          | _ -> ());
          handle_frame n ~src frame
    done;
    Trace.Phase.stop n.ph

  (* ---- coordinator ---- *)

  type cluster_outcome = {
    delivered : string list; (* from the cluster, exit order *)
    reference : string list; (* single-process run, same seed *)
    matched : bool; (* sorted multiset equality *)
    cluster_abort : string option;
    rejected_submissions : int list;
    recovery_rounds : int; (* stall-triggered §4.5 recovery sweeps *)
    failed_nodes : int list; (* servers presumed dead by round end *)
    recovery_seconds : float list;
        (* per-sweep repair time on the coordinator's clock: sweep start →
           next exit-batch arrival (pipeline resumption), chronological.
           Empty when no sweep ran or no clock was bound. *)
    node_snapshots : (int * string) list;
        (* (node_id, atom-metrics/1 JSON) collected over Stats_request just
           before shutdown; [] unless [collect_stats] was set. *)
  }

  (* Drive a full round over [t]: ship submissions to entry heads, release
     the barrier, collect and verify exit batches, run the variant endgame,
     and compare against the in-process reference execution.

     Failure detection is timeout-driven, per §4.5: [stall_strikes]
     consecutive empty receives trigger a recovery sweep — probe every
     presumed-live server with a cheap control send (a typed transport
     error is the death certificate), broadcast the updated failure set,
     re-send the coordinator's retained frames toward the replacements,
     and nudge the fleet to do the same ([Retransmit]). A partitioned
     server yields no send error; for that case the sweep's retransmission
     alone completes the round once the partition heals. Sweeps are
     bounded by [max_recovery_rounds] and the whole wait by [max_idle]. *)
  let run_coordinator ?(obs = Atom_obs.Ctx.noop) ?clock ?pool (t : T.t)
      ~(config : Config.t) ~(users : int) ?(recv_timeout = 0.5) ?(max_idle = 240)
      ?(stall_strikes = 8) ?(max_recovery_rounds = 16) ?(collect_stats = false) () :
      cluster_outcome =
    (match clock with Some c -> Atom_obs.Ctx.bind_clock obs c | None -> ());
    let tr = Atom_obs.Ctx.tracer obs in
    Trace.thread_name tr ~tid:0 "event loop";
    let cph = Trace.Phase.start tr ~tid:0 "send" in
    (* Repair times ride on whatever clock the caller bound; unbound (the
       deterministic sim harness) it reads a constant and yields zeros. *)
    let mono = match clock with Some c -> c | None -> fun () -> Trace.now tr in
    let rng = Atom_util.Rng.create config.Config.seed in
    let net = Pr.setup rng config () in
    let n_groups = config.Config.n_groups in
    let msgs = List.init users (fun i -> Printf.sprintf "anonymous message #%d" i) in
    let subs =
      List.mapi (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod n_groups) m) msgs
    in
    (* The reference execution: same seed, same submissions, one process. *)
    let reference = Pr.run rng net subs in
    (* Entry accounting mirrors [Pr.run]: the heads verify on their side;
       the coordinator's own pass supplies reject lists and commitments. *)
    let seen = Hashtbl.create 256 in
    let accepted, rejected = List.partition (Pr.verify_submission net seen) subs in
    let rejected_submissions = List.map (fun s -> s.Pr.user) rejected in
    let commitments : (int, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun s ->
        match s.Pr.commitment with
        | Some c ->
            Hashtbl.replace commitments s.Pr.entry_gid
              (c :: Option.value ~default:[] (Hashtbl.find_opt commitments s.Pr.entry_gid))
        | None -> ())
      accepted;
    (* Routed, retained sends: the failure set starts empty and grows as
       sends error out or stall sweeps find dead servers. *)
    let reg = Atom_obs.Ctx.metrics obs in
    let m_recovery_rounds = Atom_obs.Metrics.counter reg "coord.recovery_rounds" in
    let m_failed_nodes = Atom_obs.Metrics.counter reg "coord.failed_nodes" in
    let m_exit_dups = Atom_obs.Metrics.counter reg "coord.exit_dups" in
    let m_recovery_s =
      Atom_obs.Metrics.histogram reg ~buckets:24 ~lo:0. ~hi:60. "coord.recovery_seconds"
    in
    let n_servers = config.Config.n_servers in
    let failed = Array.make n_servers false in
    let outbox = Outbox.create ~cap:64 () in
    let newly_failed = ref [] in
    let mark sid =
      if sid >= 0 && sid < n_servers && not failed.(sid) then begin
        failed.(sid) <- true;
        Atom_obs.Metrics.incr m_failed_nodes;
        newly_failed := sid :: !newly_failed;
        Atom_obs.Log.warn "coordinator: node %d presumed dead" sid
      end
    in
    let rec send_raw ~dst frame =
      let target = resolve net failed dst in
      match T.send t ~dst:target frame with
      | Ok () -> ()
      | Error _ ->
          mark target;
          if resolve net failed dst <> target then send_raw ~dst frame
    in
    let send_c ~dst frame =
      Outbox.note outbox ~dst frame;
      send_raw ~dst frame
    in
    (* Consistency cross-checks + submissions + barrier. *)
    for gid = 0 to n_groups - 1 do
      let g = net.Pr.groups.(gid) in
      let head = g.Pr.members.(0) in
      Array.iter
        (fun sid ->
          send_c ~dst:sid (Ctrl.encode (Ctrl.Group_assign { gid; members = g.Pr.members }));
          send_c ~dst:sid (C.encode (C.Group_key { gid; pk = Pr.group_pk net gid })))
        g.Pr.members;
      send_c ~dst:head
        (Pr.Wire.submissions_to_frame ~gid
           (List.filter (fun s -> s.Pr.entry_gid = gid) subs))
    done;
    for sid = 0 to n_servers - 1 do
      send_c ~dst:sid (Ctrl.encode (Ctrl.Barrier { iter = 0 }))
    done;
    (* One recovery sweep: probe, publish deaths, retransmit. *)
    let recoveries = ref 0 in
    (* Sweep start times awaiting a resumption mark: each is closed out by
       the next exit-batch arrival, which is the first proof the pipeline
       is moving again. That delta is the §4.5 repair time the error
       budget histograms. *)
    let pending_sweeps = ref [] in
    let recovery_seconds = ref [] in
    let recovery_sweep () =
      Trace.Phase.switch cph "recovery";
      incr recoveries;
      pending_sweeps := mono () :: !pending_sweeps;
      Atom_obs.Metrics.incr m_recovery_rounds;
      for sid = 0 to n_servers - 1 do
        if not failed.(sid) then
          match T.send t ~dst:sid (Ctrl.encode (Ctrl.Ack { token = 0xbeef })) with
          | Ok () -> ()
          | Error _ -> mark sid
      done;
      if !newly_failed <> [] then begin
        let sids = Array.of_list !newly_failed in
        newly_failed := [];
        for sid = 0 to n_servers - 1 do
          if not failed.(sid) then
            ignore (T.send t ~dst:sid (Ctrl.encode (Ctrl.Failed { sids })))
        done;
        (* Feed each replacement the frames its dead predecessor was sent. *)
        Array.iter
          (fun dead -> Outbox.iter_dst outbox ~dst:dead (fun fr -> send_raw ~dst:dead fr))
          sids
      end;
      for sid = 0 to n_servers - 1 do
        if not failed.(sid) then ignore (T.send t ~dst:sid (Ctrl.encode Ctrl.Retransmit))
      done
    in
    (* Collect exit batches. *)
    let last = iterations net - 1 in
    let quorum = Config.quorum config in
    let want = expected_exits net in
    let holdings = Array.make n_groups [] in
    let seen_exits = Hashtbl.create 16 in
    let got = ref 0 in
    let idle = ref 0 in
    let strikes = ref 0 in
    let cluster_abort = ref None in
    while !got < want && !cluster_abort = None && !idle < max_idle do
      Trace.Phase.switch cph "recv-wait";
      match T.recv t ~timeout:recv_timeout with
      | Error Transport.Closed ->
          cluster_abort := Some "coordinator transport closed"
      | Error _ ->
          incr idle;
          incr strikes;
          if !strikes >= stall_strikes && !recoveries < max_recovery_rounds then begin
            strikes := 0;
            recovery_sweep ()
          end
      | Ok (_src, frame) -> (
          idle := 0;
          strikes := 0;
          match C.decode ?pool ~policy:Atom_wire.Validation.Batched frame with
          | Some (C.Msg (C.Exit_batch { gid; iter = _; batch_idx; input; output; proofs })) ->
              if Hashtbl.mem seen_exits (gid, batch_idx) then
                Atom_obs.Metrics.incr m_exit_dups
              else begin
                Trace.Phase.switch cph "verify";
                if !pending_sweeps <> [] then begin
                  let now = mono () in
                  List.iter
                    (fun t0 ->
                      let d = now -. t0 in
                      recovery_seconds := d :: !recovery_seconds;
                      Atom_obs.Metrics.observe m_recovery_s d)
                    (List.rev !pending_sweeps);
                  pending_sweeps := []
                end;
                let ok =
                  config.Config.variant <> Config.Nizk
                  || verify_hop ?pool ~eff_pk:(eff_pk net gid quorum) ~next_pk:None
                       ~context:(iter_ctx net gid last) ~input ~output proofs
                in
                if ok then begin
                  Hashtbl.add seen_exits (gid, batch_idx) ();
                  Array.iter (fun v -> holdings.(gid) <- v :: holdings.(gid)) output;
                  incr got
                end
                else cluster_abort := Some (Printf.sprintf "exit proofs rejected gid=%d" gid)
              end
          | Some _ -> ()
          | None -> (
              match Ctrl.decode frame with
              | Some (Ctrl.Abort { detail; _ }) -> cluster_abort := Some detail
              | Some (Ctrl.Failed { sids }) ->
                  (* A node saw a peer die before we did: adopt its view
                     and run a sweep now rather than waiting for a stall. *)
                  Array.iter mark sids;
                  if !newly_failed <> [] && !recoveries < max_recovery_rounds then
                    recovery_sweep ()
              | _ -> ()))
    done;
    if !cluster_abort = None && !got < want then
      cluster_abort := Some (Printf.sprintf "timed out with %d/%d exit batches" !got want);
    (* Variant endgame over the assembled holdings, as in [Pr.run]. *)
    Trace.Phase.switch cph "decrypt";
    let delivered =
      if !cluster_abort <> None then []
      else begin
        let holdings = Array.map (fun l -> Array.of_list (List.rev l)) holdings in
        let exits = Pr.decode_exit net holdings in
        match config.Config.variant with
        | Config.Basic | Config.Nizk ->
            List.filter_map
              (fun u ->
                if u.Pr.tag = Pr.Msg.tag_message then Some (Pr.Msg.unpad_plaintext u.Pr.payload)
                else None)
              exits
        | Config.Trap -> (
            match Pr.trap_checks net ~commitments exits with
            | Some _, _ ->
                cluster_abort := Some "trap checks failed";
                []
            | None, inner_payloads ->
                List.map Pr.Msg.unpad_plaintext (Pr.open_inners net inner_payloads))
      end
    in
    (* Stats harvest, while the fleet is still alive (Shutdown would race
       the replies): ask every presumed-live node for its atom-metrics/1
       snapshot; chaos can eat a request, so laggards get re-asked. Only
       the trace-merging launcher pays this cost. *)
    let node_snapshots =
      if not collect_stats then []
      else begin
        Trace.Phase.switch cph "recv-wait";
        let live = List.filter (fun sid -> not failed.(sid)) (List.init n_servers Fun.id) in
        let req = Ctrl.encode (Ctrl.Stats_request { token = 1 }) in
        List.iter (fun sid -> ignore (T.send t ~dst:sid req)) live;
        let got_stats : (int, string) Hashtbl.t = Hashtbl.create 16 in
        let polls = ref 0 in
        let empties = ref 0 in
        let max_polls = max 16 (4 * n_servers) in
        while Hashtbl.length got_stats < List.length live && !polls < max_polls do
          incr polls;
          match T.recv t ~timeout:recv_timeout with
          | Ok (_src, frame) -> (
              match Ctrl.decode frame with
              | Some (Ctrl.Stats_reply { node_id; snapshot; _ }) ->
                  Hashtbl.replace got_stats node_id snapshot
              | _ -> ())
          | Error Transport.Closed -> polls := max_polls
          | Error _ ->
              incr empties;
              if !empties mod 4 = 0 then
                List.iter
                  (fun sid ->
                    if not (Hashtbl.mem got_stats sid) then ignore (T.send t ~dst:sid req))
                  live
        done;
        List.filter_map
          (fun sid -> Option.map (fun s -> (sid, s)) (Hashtbl.find_opt got_stats sid))
          live
      end
    in
    (* Publish and shut the fleet down (best effort — dead peers are
       skipped rather than paid for: each send to a dead peer would burn
       the full bounded reconnect budget). *)
    Trace.Phase.switch cph "send";
    for sid = 0 to n_servers - 1 do
      if not failed.(sid) then begin
        ignore
          (T.send t ~dst:sid
             (Ctrl.encode (Ctrl.Published { plaintexts = Array.of_list delivered })));
        ignore (T.send t ~dst:sid (Ctrl.encode Ctrl.Shutdown))
      end
    done;
    let matched =
      !cluster_abort = None
      && reference.Pr.aborted = None
      && List.sort compare delivered = List.sort compare reference.Pr.delivered
    in
    let failed_nodes =
      List.filter (fun sid -> failed.(sid)) (List.init n_servers Fun.id)
    in
    Trace.Phase.stop cph;
    {
      delivered;
      reference = reference.Pr.delivered;
      matched;
      cluster_abort = !cluster_abort;
      rejected_submissions;
      recovery_rounds = !recoveries;
      failed_nodes;
      recovery_seconds = List.rev !recovery_seconds;
      node_snapshots;
    }

  (* ---- ingest coordinator: pipelined epochs over client submissions ---- *)

  type epoch_outcome = {
    ep_epoch : int;
    ep_sealed : Bulletin.sealed;
    ep_signature : string;
    ep_mixed : int; (* onion units mixed through the pipeline this epoch *)
    ep_latency_s : float; (* barrier (seal broadcast) → signed bulletin *)
  }

  type ingest_outcome = {
    ing_epochs : epoch_outcome list; (* ascending epoch order *)
    ing_abort : string option;
    ing_recovery_rounds : int;
    ing_failed_nodes : int list;
    ing_board : Bulletin.t; (* all sealed epochs, published under round = epoch *)
  }

  type exit_accum = {
    ea_holdings : Pr.El.vec list array;
    ea_seen : (int * int, unit) Hashtbl.t; (* (gid, batch_idx) *)
    mutable ea_got : int;
    mutable ea_sealed_at : float;
  }

  (* Drive pipelined epochs: nodes collect client submissions continuously
     (they run with [?ingest]); every [epoch_s] this coordinator broadcasts
     [Barrier {iter = e}] — the seal for epoch e — so epoch e mixes while
     epoch e+1 collects. Exit batches carry their absolute iteration, which
     keys them back to an epoch (iter / T); a completed epoch is decoded,
     canonicalized, signed, published locally and announced to the fleet
     (entry heads fan the announcement out to their clients).

     Epoch cadence: at least [min_epochs]; after that, one *flush* epoch is
     sealed once [keep_collecting] turns false — the load generator stops
     its clients before flipping it, so the flush epoch drains anything
     admitted after the previous barrier and nothing can land beyond it.
     [max_epochs] bounds a keep_collecting that never yields.

     Recovery matches [run_coordinator]: stall-triggered §4.5 sweeps
     (probe, publish deaths, replay retained frames, Retransmit nudge).
     Trap-variant endgames need per-round trap commitments the submission
     plane doesn't carry, so only Basic/Nizk are accepted. *)
  let run_ingest_coordinator ?(obs = Atom_obs.Ctx.noop) ?clock ?pool (t : T.t)
      ~(config : Config.t) ?(recv_timeout = 0.25) ?(max_idle = 240)
      ?(stall_strikes = 8) ?(max_recovery_rounds = 32) ~(epoch_s : float)
      ~(min_epochs : int) ?(max_epochs = 64) ?(keep_collecting = fun () -> false) () :
      ingest_outcome =
    if config.Config.variant = Config.Trap then
      invalid_arg "run_ingest_coordinator: Trap endgame needs per-round commitments";
    (match clock with Some c -> Atom_obs.Ctx.bind_clock obs c | None -> ());
    let tr = Atom_obs.Ctx.tracer obs in
    Trace.thread_name tr ~tid:0 "event loop";
    let cph = Trace.Phase.start tr ~tid:0 "send" in
    (* Unclocked callers (the deterministic sim harness) get a synthetic
       monotonic clock advanced by each empty receive — epoch pacing then
       counts receive timeouts instead of wall seconds. *)
    let synth = ref 0. in
    let mono = match clock with Some c -> c | None -> fun () -> !synth in
    let tick () = if clock = None then synth := !synth +. recv_timeout in
    let net = Pr.setup (Atom_util.Rng.create config.Config.seed) config () in
    let bulletin_sk, _ = bulletin_keypair config in
    let n_groups = config.Config.n_groups in
    let n_servers = config.Config.n_servers in
    let iters = iterations net in
    let quorum = Config.quorum config in
    let want = expected_exits net in
    let reg = Atom_obs.Ctx.metrics obs in
    let m_recovery_rounds = Atom_obs.Metrics.counter reg "coord.recovery_rounds" in
    let m_failed_nodes = Atom_obs.Metrics.counter reg "coord.failed_nodes" in
    let m_exit_dups = Atom_obs.Metrics.counter reg "coord.exit_dups" in
    let m_epochs = Atom_obs.Metrics.counter reg "coord.epochs_published" in
    let m_epoch_s =
      Atom_obs.Metrics.histogram reg ~buckets:24 ~lo:0. ~hi:120. "coord.epoch_seconds"
    in
    let failed = Array.make n_servers false in
    let outbox = Outbox.create ~cap:128 () in
    let newly_failed = ref [] in
    let mark sid =
      if sid >= 0 && sid < n_servers && not failed.(sid) then begin
        failed.(sid) <- true;
        Atom_obs.Metrics.incr m_failed_nodes;
        newly_failed := sid :: !newly_failed;
        Atom_obs.Log.warn "ingest coordinator: node %d presumed dead" sid
      end
    in
    let rec send_raw ~dst frame =
      let target = resolve net failed dst in
      match T.send t ~dst:target frame with
      | Ok () -> ()
      | Error _ ->
          mark target;
          if resolve net failed dst <> target then send_raw ~dst frame
    in
    let send_c ~dst frame =
      Outbox.note outbox ~dst frame;
      send_raw ~dst frame
    in
    let broadcast frame =
      for sid = 0 to n_servers - 1 do
        send_c ~dst:sid frame
      done
    in
    (* Bring-up: consistency cross-checks only — submissions arrive from
       clients at the nodes, not through us. *)
    for gid = 0 to n_groups - 1 do
      let g = net.Pr.groups.(gid) in
      Array.iter
        (fun sid ->
          send_c ~dst:sid (Ctrl.encode (Ctrl.Group_assign { gid; members = g.Pr.members }));
          send_c ~dst:sid (C.encode (C.Group_key { gid; pk = Pr.group_pk net gid })))
        g.Pr.members
    done;
    let recoveries = ref 0 in
    let recovery_sweep () =
      Trace.Phase.switch cph "recovery";
      incr recoveries;
      Atom_obs.Metrics.incr m_recovery_rounds;
      for sid = 0 to n_servers - 1 do
        if not failed.(sid) then
          match T.send t ~dst:sid (Ctrl.encode (Ctrl.Ack { token = 0xbeef })) with
          | Ok () -> ()
          | Error _ -> mark sid
      done;
      if !newly_failed <> [] then begin
        let sids = Array.of_list !newly_failed in
        newly_failed := [];
        for sid = 0 to n_servers - 1 do
          if not failed.(sid) then
            ignore (T.send t ~dst:sid (Ctrl.encode (Ctrl.Failed { sids })))
        done;
        Array.iter
          (fun dead -> Outbox.iter_dst outbox ~dst:dead (fun fr -> send_raw ~dst:dead fr))
          sids
      end;
      for sid = 0 to n_servers - 1 do
        if not failed.(sid) then ignore (T.send t ~dst:sid (Ctrl.encode Ctrl.Retransmit))
      done
    in
    (* Epoch bookkeeping. [sealed] = number of barriers broadcast; epochs
       0..sealed-1 are sealed and owe a published bulletin. *)
    let board = Bulletin.create () in
    let accums : (int, exit_accum) Hashtbl.t = Hashtbl.create 8 in
    let published : (int, epoch_outcome) Hashtbl.t = Hashtbl.create 8 in
    let sealed = ref 0 in
    let stop_after = ref None in
    let cluster_abort = ref None in
    let t0 = mono () in
    let deadline e = t0 +. (float_of_int (e + 1) *. epoch_s) in
    let accum epoch =
      match Hashtbl.find_opt accums epoch with
      | Some a -> a
      | None ->
          let a =
            {
              ea_holdings = Array.make n_groups [];
              ea_seen = Hashtbl.create 16;
              ea_got = 0;
              ea_sealed_at = mono ();
            }
          in
          Hashtbl.add accums epoch a;
          a
    in
    let publish_epoch epoch (a : exit_accum) =
      Trace.Phase.switch cph "decrypt";
      let holdings = Array.map (fun l -> Array.of_list (List.rev l)) a.ea_holdings in
      let mixed = Array.fold_left (fun acc h -> acc + Array.length h) 0 holdings in
      let exits = Pr.decode_exit net holdings in
      let posts =
        List.filter_map
          (fun u ->
            if u.Pr.tag = Pr.Msg.tag_message then Some (Pr.Msg.unpad_plaintext u.Pr.payload)
            else None)
          exits
      in
      let sb = Bulletin.seal ~epoch posts in
      let signature = BSign.sign_sealed ~sk:bulletin_sk sb in
      Bulletin.publish_sealed board sb;
      let latency = Float.max 0. (mono () -. a.ea_sealed_at) in
      Atom_obs.Metrics.incr m_epochs;
      Atom_obs.Metrics.observe m_epoch_s latency;
      Atom_obs.Log.info
        "ingest coordinator: epoch %d published (%d posts, %d units, %.3fs)" epoch
        (Array.length sb.Bulletin.posts) mixed latency;
      Hashtbl.remove accums epoch;
      Hashtbl.replace published epoch
        {
          ep_epoch = epoch;
          ep_sealed = sb;
          ep_signature = signature;
          ep_mixed = mixed;
          ep_latency_s = latency;
        };
      Trace.Phase.switch cph "send";
      broadcast
        (Ctrl.encode
           (Ctrl.Bulletin_announce
              { epoch; digest = sb.Bulletin.digest; signature; posts = sb.Bulletin.posts }))
    in
    let done_collecting () =
      match !stop_after with Some e -> !sealed > e | None -> false
    in
    let all_published () = done_collecting () && Hashtbl.length published >= !sealed in
    let idle = ref 0 in
    let strikes = ref 0 in
    while (not (all_published ())) && !cluster_abort = None && !idle < max_idle do
      let now = mono () in
      if (not (done_collecting ())) && now >= deadline !sealed then begin
        (* Seal the collecting epoch: its accumulator starts the latency
           clock, the barrier starts its mixing, and collection rolls over
           to the next epoch on every entry head. *)
        Trace.Phase.switch cph "send";
        let e = !sealed in
        (accum e).ea_sealed_at <- now;
        broadcast (Ctrl.encode (Ctrl.Barrier { iter = e }));
        sealed := e + 1;
        (match !stop_after with
        | Some _ -> ()
        | None ->
            if e + 1 >= max_epochs then stop_after := Some e
            else if e + 1 >= min_epochs && not (keep_collecting ()) then
              stop_after := Some (e + 1))
      end
      else begin
        Trace.Phase.switch cph "recv-wait";
        let tmo =
          if done_collecting () then recv_timeout
          else Float.min recv_timeout (Float.max 0.01 (deadline !sealed -. now))
        in
        match T.recv t ~timeout:tmo with
        | Error Transport.Closed -> cluster_abort := Some "coordinator transport closed"
        | Error _ ->
            tick ();
            incr idle;
            incr strikes;
            if !strikes >= stall_strikes && !recoveries < max_recovery_rounds then begin
              strikes := 0;
              recovery_sweep ()
            end
        | Ok (_src, frame) -> (
            idle := 0;
            strikes := 0;
            match C.decode ?pool ~policy:Atom_wire.Validation.Batched frame with
            | Some (C.Msg (C.Exit_batch { gid; iter; batch_idx; input; output; proofs })) ->
                let epoch = if iters > 0 then iter / iters else 0 in
                if
                  gid < 0 || gid >= n_groups || iter < 0
                  || not (last_layer net iter)
                  || epoch >= !sealed
                then Atom_obs.Metrics.incr m_exit_dups
                else begin
                  let a = accum epoch in
                  if Hashtbl.mem a.ea_seen (gid, batch_idx) then
                    Atom_obs.Metrics.incr m_exit_dups
                  else begin
                    Trace.Phase.switch cph "verify";
                    let ok =
                      config.Config.variant <> Config.Nizk
                      || verify_hop ?pool ~eff_pk:(eff_pk net gid quorum) ~next_pk:None
                           ~context:(iter_ctx net gid iter) ~input ~output proofs
                    in
                    if ok then begin
                      Hashtbl.add a.ea_seen (gid, batch_idx) ();
                      Array.iter
                        (fun v -> a.ea_holdings.(gid) <- v :: a.ea_holdings.(gid))
                        output;
                      a.ea_got <- a.ea_got + 1;
                      if a.ea_got = want then publish_epoch epoch a
                    end
                    else
                      cluster_abort :=
                        Some (Printf.sprintf "exit proofs rejected gid=%d epoch=%d" gid epoch)
                  end
                end
            | Some _ -> ()
            | None -> (
                match Ctrl.decode frame with
                | Some (Ctrl.Abort { detail; _ }) -> cluster_abort := Some detail
                | Some (Ctrl.Failed { sids }) ->
                    Array.iter mark sids;
                    if !newly_failed <> [] && !recoveries < max_recovery_rounds then
                      recovery_sweep ()
                | _ -> ()))
      end
    done;
    if !cluster_abort = None && not (all_published ()) then
      cluster_abort :=
        Some
          (Printf.sprintf "timed out with %d/%d epochs published" (Hashtbl.length published)
             !sealed);
    Trace.Phase.switch cph "send";
    for sid = 0 to n_servers - 1 do
      if not failed.(sid) then ignore (T.send t ~dst:sid (Ctrl.encode Ctrl.Shutdown))
    done;
    let failed_nodes =
      List.filter (fun sid -> failed.(sid)) (List.init n_servers Fun.id)
    in
    let epochs =
      List.sort
        (fun a b -> compare a.ep_epoch b.ep_epoch)
        (Hashtbl.fold (fun _ e acc -> e :: acc) published [])
    in
    Trace.Phase.stop cph;
    {
      ing_epochs = epochs;
      ing_abort = !cluster_abort;
      ing_recovery_rounds = !recoveries;
      ing_failed_nodes = failed_nodes;
      ing_board = board;
    }
end
