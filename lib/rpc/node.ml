(* The multi-process node runtime: Atom's per-group pipeline, split across
   real processes and driven by wire messages.

   [Protocol.process_group] executes a group's iteration as one in-memory
   loop over the quorum. Here the same choreography runs as messages
   between the actual member processes, carrying all per-step state in the
   message (members are stateless between messages; only the group head
   accumulates):

     head (pos 1)        shuffles, sends Shuffle_step to pos 2
     pos p               verifies pos p-1's ShufProof, shuffles, forwards
     tail (pos q)        sends its step back to the head (step = q+1)
     head                verifies the tail, divides into β batches,
                         runs its ReEnc step, sends Reenc_step to pos 2
     pos p               verifies pos p-1's ReEnc proofs, steps, forwards
     tail                sends Batch to the next-layer head — which
                         verifies the tail's proofs (Algorithm 2 step 3b)
                         — or Exit_batch to the coordinator at the last
                         layer

   In the single-process engine every member verifies every proof; here
   each proof is checked by its successor in the pipeline (and the final
   step by the receiving group / coordinator), which preserves the
   anytrust argument as long as some honest member sits downstream of
   every dishonest one — the h ≥ 1 honest member per group is somewhere in
   the chain, and an abort anywhere stops the round.

   Every process — the N nodes and the coordinator — derives identical key
   material by running [Protocol.setup] over the same seeded RNG, so no
   secret ever crosses the wire and cross-process runs are comparable to
   the single-process reference round. A production deployment would run
   the interactive DKG here; the deterministic derivation stands in for it
   so the harness can check end-to-end correctness (EXPERIMENTS.md recipe:
   published plaintexts must equal the single-process run's, as sets). *)

open Atom_core

module Make (G : Atom_group.Group_intf.GROUP) (T : Transport.S) = struct
  module Pr = Protocol.Make (G)
  module C = Atom_wire.Codec.Make (G) (Pr.El)
  module Ctrl = Atom_wire.Control
  module Frame = Atom_wire.Frame

  (* ---- shared derivations ---- *)

  let quorum_positions (net : Pr.network) : int list =
    List.init (Config.quorum net.Pr.config) (fun i -> i + 1)

  let iter_ctx (net : Pr.network) (gid : int) (iter : int) : string =
    Printf.sprintf "%s:iter=%d" (Pr.proof_context net gid) iter

  (* Effective public key of the member at Shamir position [pos]: its share
     commitment raised to the Lagrange coefficient for the no-churn quorum. *)
  let eff_pk (net : Pr.network) (gid : int) (pos : int) : G.t =
    let g = net.Pr.groups.(gid) in
    let coeff = Pr.Sh.lagrange_at_zero ~xs:(quorum_positions net) ~i:pos in
    G.pow (Pr.Dkg.share_pk g.Pr.keys pos) coeff

  let share_and_coeff (net : Pr.network) (gid : int) (pos : int) :
      G.Scalar.t * G.Scalar.t =
    let g = net.Pr.groups.(gid) in
    ( g.Pr.keys.Pr.Dkg.shares.(pos - 1).Pr.Sh.value,
      Pr.Sh.lagrange_at_zero ~xs:(quorum_positions net) ~i:pos )

  (* Member server id at quorum position [pos] (1-based). *)
  let member_at (net : Pr.network) (gid : int) (pos : int) : int =
    net.Pr.groups.(gid).Pr.members.(pos - 1)

  let neighbors (net : Pr.network) ~(iter : int) ~(gid : int) : int array =
    net.Pr.topo.Atom_topology.Topology.neighbors ~iter ~group:gid

  let iterations (net : Pr.network) : int =
    net.Pr.topo.Atom_topology.Topology.iterations

  (* Batches arriving at [gid]'s layer [iter]: the fan-out of layer iter−1
     toward it. Derived from the topology so any wiring works, not just
     the square's all-to-all. *)
  let in_degree (net : Pr.network) (gid : int) (iter : int) : int =
    let n = ref 0 in
    for src = 0 to net.Pr.config.Config.n_groups - 1 do
      Array.iter (fun d -> if d = gid then incr n) (neighbors net ~iter:(iter - 1) ~gid:src)
    done;
    !n

  let expected_exits (net : Pr.network) : int =
    let last = iterations net - 1 in
    let n = ref 0 in
    for gid = 0 to net.Pr.config.Config.n_groups - 1 do
      n := !n + Array.length (neighbors net ~iter:last ~gid)
    done;
    !n

  (* Per-unit ReEnc proof vectors travel as one opaque blob per unit. *)
  let reenc_proofs_to_blob (pis : Pr.P.Reenc_proof.t array) : string =
    let b = Buffer.create 256 in
    Frame.W.u16 b (Array.length pis);
    Array.iter (fun pi -> Frame.W.str32 b (Pr.P.Reenc_proof.to_bytes pi)) pis;
    Buffer.contents b

  let reenc_proofs_of_blob (s : string) : Pr.P.Reenc_proof.t array option =
    Frame.R.decode s (fun r ->
        let n = Frame.R.u16 r in
        Array.init n (fun _ ->
            match Pr.P.Reenc_proof.of_bytes (Frame.R.str32 ~max:65536 r) with
            | Some pi -> pi
            | None -> Frame.R.fail ()))

  (* Verify one proof-carrying hop: [proofs] has one blob per unit proving
     input.(u) → output.(u) under [eff_pk]/[next_pk]. Units are independent,
     so the checks fan out across the pool (the sequential path kept its
     first-failure short-circuit; the pooled one checks every unit — same
     verdict either way). *)
  let verify_hop ?pool ~(eff_pk : G.t) ~(next_pk : G.t option) ~(context : string)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (proofs : string array) : bool =
    Array.length input = Array.length output
    && Array.length input = Array.length proofs
    && begin
         let oks =
           Atom_exec.Pool.tabulate ?pool (Array.length proofs) (fun u ->
               match reenc_proofs_of_blob proofs.(u) with
               | None -> false
               | Some pis ->
                   Pr.P.Reenc_proof.verify_vec ~eff_pk ~next_pk ~context
                     ~input:input.(u) ~output:output.(u) pis)
         in
         Array.for_all Fun.id oks
       end

  (* ---- the node ---- *)

  type head_input = { mutable parts : Pr.El.vec array list; mutable got : int }

  type node = {
    t : T.t;
    net : Pr.network;
    pool : Atom_exec.Pool.t option; (* crypto fan-out; None = sequential *)
    rng : Atom_util.Rng.t; (* node-local randomness; never needs to agree *)
    node_id : int;
    coord : int;
    (* quorum positions this server holds, per group: (gid, pos) *)
    roles : (int * int) list;
    (* head-only: accumulating inputs keyed (gid, iter) *)
    inputs : (int * int, head_input) Hashtbl.t;
    entry_units : (int, Pr.El.vec array) Hashtbl.t; (* gid -> verified units *)
    entry_started : (int, unit) Hashtbl.t;
    seen : (string, int) Hashtbl.t; (* duplicate-submission check, per head *)
    mutable barrier : bool;
    mutable stop : bool;
    m_verify_failures : Atom_obs.Metrics.counter;
    m_steps : Atom_obs.Metrics.counter;
  }

  let roles_of (net : Pr.network) (node_id : int) : (int * int) list =
    let quorum = Config.quorum net.Pr.config in
    let out = ref [] in
    Array.iter
      (fun g ->
        Array.iteri
          (fun i sid -> if sid = node_id && i < quorum then out := (g.Pr.gid, i + 1) :: !out)
          g.Pr.members)
      net.Pr.groups;
    List.rev !out

  let abort (n : node) ~(code : int) (detail : string) : unit =
    Atom_obs.Metrics.incr n.m_verify_failures;
    Atom_obs.Log.warn "node %d: abort (%s)" n.node_id detail;
    ignore (T.send n.t ~dst:n.coord (Ctrl.encode (Ctrl.Abort { code; detail })));
    n.stop <- true

  let send_to (n : node) ~(dst : int) (frame : string) : unit =
    match T.send n.t ~dst frame with
    | Ok () -> ()
    | Error e ->
        abort n ~code:Ctrl.abort_internal
          (Printf.sprintf "send to node %d: %s" dst (Transport.error_to_string e))

  let nizk (n : node) : bool = n.net.Pr.config.Config.variant = Config.Nizk

  (* Step 2+3 of the group iteration, run by the head once the collective
     shuffle is done: divide into β batches and launch each decrypt-and-
     reencrypt chain with this head's own step. *)
  let rec divide_and_reenc (n : node) (gid : int) (iter : int) (units : Pr.El.vec array) : unit =
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    let nbrs = neighbors net ~iter ~gid in
    let beta = Array.length nbrs in
    let last_iter = iter = iterations net - 1 in
    let ctx = iter_ctx net gid iter in
    let share, coeff = share_and_coeff net gid 1 in
    let batches = Array.make beta [] in
    Array.iteri (fun i u -> batches.(i mod beta) <- u :: batches.(i mod beta)) units;
    let batches = Array.map (fun l -> Array.of_list (List.rev l)) batches in
    Array.iteri
      (fun bi batch ->
        if not n.stop then begin
          let next_pk = if last_iter then None else Some (Pr.group_pk net nbrs.(bi)) in
          let output, proofs =
            if nizk n then begin
              let stepped =
                Array.map
                  (fun v ->
                    Pr.P.Reenc_proof.reenc_vec_with_proof n.rng ~share ~coeff ~next_pk
                      ~context:ctx v)
                  batch
              in
              (Array.map fst stepped, Array.map (fun (_, pis) -> reenc_proofs_to_blob pis) stepped)
            end
            else
              ( Array.map (fun v -> fst (Pr.El.reenc_vec n.rng ~share ~coeff ~next_pk v)) batch,
                Array.map (fun _ -> "") batch )
          in
          Atom_obs.Metrics.incr n.m_steps;
          if quorum > 1 then
            send_to n
              ~dst:(member_at n.net gid 2)
              (C.encode (C.Reenc_step { gid; iter; batch_idx = bi; step = 2; input = batch; output; proofs }))
          else
            (* Single-member quorum: the head is also the tail. *)
            finish_batch n gid iter bi ~input:batch ~output ~proofs
        end)
      batches

  (* Tail hand-off: forward the proven batch to the next layer's head, or
     to the coordinator at the exit layer. The receiver re-verifies the
     proofs before accepting (Algorithm 2, step 3b). *)
  and finish_batch (n : node) (gid : int) (iter : int) (batch_idx : int)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (* pre-clear_y *)
      ~(proofs : string array) : unit =
    let net = n.net in
    let last_iter = iter = iterations net - 1 in
    if last_iter then
      send_to n ~dst:n.coord
        (C.encode (C.Exit_batch { gid; batch_idx; input; output; proofs }))
    else begin
      let dst_gid = (neighbors net ~iter ~gid).(batch_idx) in
      send_to n
        ~dst:(member_at net dst_gid 1)
        (C.encode
           (C.Batch { gid = dst_gid; iter = iter + 1; src_gid = gid; input; output; proofs }))
    end

  (* Head: start the collective shuffle for (gid, iter) over [units]. *)
  let begin_iter (n : node) (gid : int) (iter : int) (units : Pr.El.vec array) : unit =
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    if Array.length units = 0 then
      (* Nothing to mix: skip the shuffle pass, keep the (empty) batch flow
         so downstream in-degree counting stays uniform. *)
      divide_and_reenc n gid iter units
    else begin
      match Pr.El.shuffle_vec ?pool:n.pool n.rng (Pr.group_pk net gid) units with
      | None -> abort n ~code:Ctrl.abort_internal (Printf.sprintf "shuffle failed gid=%d" gid)
      | Some (shuffled, witness) ->
          Atom_obs.Metrics.incr n.m_steps;
          if quorum = 1 then divide_and_reenc n gid iter shuffled
          else begin
            let proof =
              if nizk n then
                Pr.Shuf.to_bytes
                  (Pr.Shuf.prove ?pool:n.pool n.rng ~pk:(Pr.group_pk net gid)
                     ~context:(iter_ctx net gid iter) ~input:units ~output:shuffled ~witness)
              else ""
            in
            send_to n
              ~dst:(member_at net gid 2)
              (C.encode (C.Shuffle_step { gid; iter; step = 2; input = units; output = shuffled; proof }))
          end
    end

  (* Head: record one input batch for (gid, iter); fire when complete. *)
  let accept_input (n : node) (gid : int) (iter : int) (units : Pr.El.vec array) : unit =
    let key = (gid, iter) in
    let st =
      match Hashtbl.find_opt n.inputs key with
      | Some st -> st
      | None ->
          let st = { parts = []; got = 0 } in
          Hashtbl.add n.inputs key st;
          st
    in
    st.parts <- units :: st.parts;
    st.got <- st.got + 1;
    if st.got = in_degree n.net gid iter then begin
      Hashtbl.remove n.inputs key;
      begin_iter n gid iter (Array.concat (List.rev st.parts))
    end

  let maybe_start_entry (n : node) (gid : int) : unit =
    if n.barrier && not (Hashtbl.mem n.entry_started gid) then
      match Hashtbl.find_opt n.entry_units gid with
      | Some units ->
          Hashtbl.add n.entry_started gid ();
          begin_iter n gid 0 units
      | None -> ()

  (* ---- message handlers ---- *)

  let on_submissions (n : node) (gid : int) (blobs : string array) : unit =
    (* Entry charge: decode each submission, verify its EncProofs and the
       duplicate-ciphertext check, keep accepted units in arrival order.
       (The single-process engine shares one duplicate table across entry
       groups; per-head tables are equivalent for well-formed traffic
       since a submission targets exactly one entry group.) *)
    let units = ref [] in
    Array.iter
      (fun blob ->
        match Pr.Wire.submission_of_bytes blob with
        | None -> Atom_obs.Metrics.incr n.m_verify_failures
        | Some s ->
            if s.Pr.entry_gid = gid && Pr.verify_submission n.net n.seen s then
              Array.iter (fun u -> units := u.Pr.vec :: !units) s.Pr.units
            else Atom_obs.Metrics.incr n.m_verify_failures)
      blobs;
    Hashtbl.replace n.entry_units gid (Array.of_list (List.rev !units));
    maybe_start_entry n gid

  let on_shuffle_step (n : node) ~(gid : int) ~(iter : int) ~(step : int)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (proof : string) : unit =
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    let pk = Pr.group_pk net gid in
    let ctx = iter_ctx net gid iter in
    let verified =
      (not (nizk n))
      || Array.length input = 0
      ||
      match Pr.Shuf.of_bytes proof with
      | None -> false
      | Some pi -> Pr.Shuf.verify ?pool:n.pool ~pk ~context:ctx ~input ~output pi
    in
    if not verified then
      abort n ~code:Ctrl.abort_proof_rejected
        (Printf.sprintf "shuffle proof rejected gid=%d iter=%d step=%d" gid iter step)
    else if step > quorum then
      (* Back at the head: the whole quorum has shuffled. *)
      divide_and_reenc n gid iter output
    else begin
      match Pr.El.shuffle_vec ?pool:n.pool n.rng pk output with
      | None -> abort n ~code:Ctrl.abort_internal (Printf.sprintf "shuffle failed gid=%d" gid)
      | Some (shuffled, witness) ->
          Atom_obs.Metrics.incr n.m_steps;
          let proof' =
            if nizk n then
              Pr.Shuf.to_bytes
                (Pr.Shuf.prove ?pool:n.pool n.rng ~pk ~context:ctx ~input:output
                   ~output:shuffled ~witness)
            else ""
          in
          let next_pos = if step = quorum then 1 else step + 1 in
          send_to n
            ~dst:(member_at net gid next_pos)
            (C.encode
               (C.Shuffle_step
                  { gid; iter; step = step + 1; input = output; output = shuffled; proof = proof' }))
    end

  let on_reenc_step (n : node) ~(gid : int) ~(iter : int) ~(batch_idx : int) ~(step : int)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (proofs : string array) : unit =
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    let last_iter = iter = iterations net - 1 in
    let ctx = iter_ctx net gid iter in
    let next_pk =
      if last_iter then None else Some (Pr.group_pk net (neighbors net ~iter ~gid).(batch_idx))
    in
    let prev_ok =
      (not (nizk n))
      || verify_hop ?pool:n.pool ~eff_pk:(eff_pk net gid (step - 1)) ~next_pk ~context:ctx ~input
           ~output proofs
    in
    if not prev_ok then
      abort n ~code:Ctrl.abort_proof_rejected
        (Printf.sprintf "reenc proofs rejected gid=%d iter=%d step=%d" gid iter (step - 1))
    else begin
      let share, coeff = share_and_coeff net gid step in
      let output', proofs' =
        if nizk n then begin
          let stepped =
            Array.map
              (fun v ->
                Pr.P.Reenc_proof.reenc_vec_with_proof n.rng ~share ~coeff ~next_pk ~context:ctx v)
              output
          in
          (Array.map fst stepped, Array.map (fun (_, pis) -> reenc_proofs_to_blob pis) stepped)
        end
        else
          ( Array.map (fun v -> fst (Pr.El.reenc_vec n.rng ~share ~coeff ~next_pk v)) output,
            Array.map (fun _ -> "") output )
      in
      Atom_obs.Metrics.incr n.m_steps;
      if step < quorum then
        send_to n
          ~dst:(member_at net gid (step + 1))
          (C.encode
             (C.Reenc_step
                { gid; iter; batch_idx; step = step + 1; input = output; output = output'; proofs = proofs' }))
      else finish_batch n gid iter batch_idx ~input:output ~output:output' ~proofs:proofs'
    end

  let on_batch (n : node) ~(gid : int) ~(iter : int) ~(src_gid : int)
      ~(input : Pr.El.vec array) ~(output : Pr.El.vec array) (proofs : string array) : unit =
    (* Next-layer head verifies the sending tail's final ReEnc step, then
       strips the carried Y components before mixing. *)
    let net = n.net in
    let quorum = Config.quorum net.Pr.config in
    let ok =
      (not (nizk n))
      || verify_hop ?pool:n.pool
           ~eff_pk:(eff_pk net src_gid quorum)
           ~next_pk:(Some (Pr.group_pk net gid))
           ~context:(iter_ctx net src_gid (iter - 1))
           ~input ~output proofs
    in
    if not ok then
      abort n ~code:Ctrl.abort_proof_rejected
        (Printf.sprintf "batch from gid=%d rejected at gid=%d iter=%d" src_gid gid iter)
    else accept_input n gid iter (Array.map Pr.El.clear_y_vec output)

  let handle_control (n : node) (msg : Ctrl.t) : unit =
    match msg with
    | Ctrl.Peers _ | Ctrl.Hello _ | Ctrl.Join _ | Ctrl.Ack _ | Ctrl.Published _
    | Ctrl.Trap_commitments _ ->
        () (* peers are registered by the caller's [on_peers]; rest is informational *)
    | Ctrl.Group_assign { gid; members } ->
        (* Cross-check the coordinator's view against our own derivation:
           any divergence means the deterministic setup drifted. *)
        if
          gid < 0
          || gid >= Array.length n.net.Pr.groups
          || n.net.Pr.groups.(gid).Pr.members <> members
        then abort n ~code:Ctrl.abort_bad_assignment (Printf.sprintf "group %d assignment mismatch" gid)
    | Ctrl.Barrier { iter } ->
        if iter = 0 then begin
          n.barrier <- true;
          List.iter (fun (gid, pos) -> if pos = 1 then maybe_start_entry n gid) n.roles
        end
    | Ctrl.Submissions { gid; blobs } -> on_submissions n gid blobs
    | Ctrl.Abort { detail; _ } ->
        Atom_obs.Log.warn "node %d: abort relayed: %s" n.node_id detail;
        n.stop <- true
    | Ctrl.Shutdown -> n.stop <- true

  let handle_codec (n : node) (msg : C.msg) : unit =
    match msg with
    | C.Group_key { gid; pk } ->
        if gid < 0 || gid >= Array.length n.net.Pr.groups
           || not (G.equal pk (Pr.group_pk n.net gid))
        then abort n ~code:Ctrl.abort_bad_assignment (Printf.sprintf "group %d key mismatch" gid)
    | C.Shuffle_step { gid; iter; step; input; output; proof } ->
        on_shuffle_step n ~gid ~iter ~step ~input ~output proof
    | C.Reenc_step { gid; iter; batch_idx; step; input; output; proofs } ->
        on_reenc_step n ~gid ~iter ~batch_idx ~step ~input ~output proofs
    | C.Batch { gid; iter; src_gid; input; output; proofs } ->
        on_batch n ~gid ~iter ~src_gid ~input ~output proofs
    | C.Exit_batch _ -> () (* coordinator-only traffic *)

  let handle_frame (n : node) (frame : string) : unit =
    match Frame.kind_of frame with
    | Some k when k >= Frame.kind_group_key -> (
        match C.decode frame with
        | Some msg -> handle_codec n msg
        | None -> abort n ~code:Ctrl.abort_bad_frame (Printf.sprintf "bad %s frame" (Frame.kind_name k)))
    | Some k -> (
        match Ctrl.decode frame with
        | Some msg -> handle_control n msg
        | None -> abort n ~code:Ctrl.abort_bad_frame (Printf.sprintf "bad %s frame" (Frame.kind_name k)))
    | None -> abort n ~code:Ctrl.abort_bad_frame "unparseable frame"

  (* Run one server's event loop until Shutdown / abort / idle expiry.
     [on_peers] lets the transport register discovered peers (TCP needs
     host:port; the simulator transport knows everyone already). *)
  let run_node ?(obs = Atom_obs.Ctx.noop) ?pool (t : T.t) ~(config : Config.t)
      ~(node_id : int) ~(coord : int) ?(recv_timeout = 0.5) ?(max_idle = 240)
      ?(on_peers = fun (_ : (int * int) array) -> ()) () : unit =
    let reg = Atom_obs.Ctx.metrics obs in
    let net = Pr.setup (Atom_util.Rng.create config.Config.seed) config () in
    let n =
      {
        t;
        net;
        pool;
        rng = Atom_util.Rng.create (config.Config.seed lxor (0x6e0de * (node_id + 1)));
        node_id;
        coord;
        roles = roles_of net node_id;
        inputs = Hashtbl.create 16;
        entry_units = Hashtbl.create 8;
        entry_started = Hashtbl.create 8;
        seen = Hashtbl.create 64;
        barrier = false;
        stop = false;
        m_verify_failures = Atom_obs.Metrics.counter reg "node.verify_failures";
        m_steps = Atom_obs.Metrics.counter reg "node.steps";
      }
    in
    let idle = ref 0 in
    while (not n.stop) && !idle < max_idle do
      match T.recv t ~timeout:recv_timeout with
      | Error Transport.Closed -> n.stop <- true
      | Error _ -> incr idle
      | Ok (_src, frame) ->
          idle := 0;
          (match Ctrl.decode frame with
          | Some (Ctrl.Peers { peers }) ->
              (* Register the fleet, then tell the coordinator we can route:
                 no data-plane traffic flows until every node has acked. *)
              on_peers peers;
              ignore (T.send t ~dst:coord (Ctrl.encode (Ctrl.Ack { token = node_id })))
          | _ -> ());
          handle_frame n frame
    done

  (* ---- coordinator ---- *)

  type cluster_outcome = {
    delivered : string list; (* from the cluster, exit order *)
    reference : string list; (* single-process run, same seed *)
    matched : bool; (* sorted multiset equality *)
    cluster_abort : string option;
    rejected_submissions : int list;
  }

  (* Drive a full round over [t]: ship submissions to entry heads, release
     the barrier, collect and verify exit batches, run the variant endgame,
     and compare against the in-process reference execution. *)
  let run_coordinator ?(obs = Atom_obs.Ctx.noop) ?pool (t : T.t) ~(config : Config.t)
      ~(users : int) ?(recv_timeout = 0.5) ?(max_idle = 240) () : cluster_outcome =
    ignore obs;
    let rng = Atom_util.Rng.create config.Config.seed in
    let net = Pr.setup rng config () in
    let n_groups = config.Config.n_groups in
    let msgs = List.init users (fun i -> Printf.sprintf "anonymous message #%d" i) in
    let subs =
      List.mapi (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod n_groups) m) msgs
    in
    (* The reference execution: same seed, same submissions, one process. *)
    let reference = Pr.run rng net subs in
    (* Entry accounting mirrors [Pr.run]: the heads verify on their side;
       the coordinator's own pass supplies reject lists and commitments. *)
    let seen = Hashtbl.create 256 in
    let accepted, rejected = List.partition (Pr.verify_submission net seen) subs in
    let rejected_submissions = List.map (fun s -> s.Pr.user) rejected in
    let commitments : (int, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun s ->
        match s.Pr.commitment with
        | Some c ->
            Hashtbl.replace commitments s.Pr.entry_gid
              (c :: Option.value ~default:[] (Hashtbl.find_opt commitments s.Pr.entry_gid))
        | None -> ())
      accepted;
    (* Consistency cross-checks + submissions + barrier. *)
    for gid = 0 to n_groups - 1 do
      let g = net.Pr.groups.(gid) in
      let head = g.Pr.members.(0) in
      Array.iter
        (fun sid ->
          ignore (T.send t ~dst:sid (Ctrl.encode (Ctrl.Group_assign { gid; members = g.Pr.members })));
          ignore (T.send t ~dst:sid (C.encode (C.Group_key { gid; pk = Pr.group_pk net gid }))))
        g.Pr.members;
      ignore
        (T.send t ~dst:head
           (Pr.Wire.submissions_to_frame ~gid
              (List.filter (fun s -> s.Pr.entry_gid = gid) subs)))
    done;
    for sid = 0 to config.Config.n_servers - 1 do
      ignore (T.send t ~dst:sid (Ctrl.encode (Ctrl.Barrier { iter = 0 })))
    done;
    (* Collect exit batches. *)
    let last = iterations net - 1 in
    let quorum = Config.quorum config in
    let want = expected_exits net in
    let holdings = Array.make n_groups [] in
    let got = ref 0 in
    let idle = ref 0 in
    let cluster_abort = ref None in
    while !got < want && !cluster_abort = None && !idle < max_idle do
      match T.recv t ~timeout:recv_timeout with
      | Error Transport.Closed ->
          cluster_abort := Some "coordinator transport closed"
      | Error _ -> incr idle
      | Ok (_src, frame) -> (
          idle := 0;
          match C.decode frame with
          | Some (C.Exit_batch { gid; batch_idx = _; input; output; proofs }) ->
              let ok =
                config.Config.variant <> Config.Nizk
                || verify_hop ?pool ~eff_pk:(eff_pk net gid quorum) ~next_pk:None
                     ~context:(iter_ctx net gid last) ~input ~output proofs
              in
              if ok then begin
                Array.iter (fun v -> holdings.(gid) <- v :: holdings.(gid)) output;
                incr got
              end
              else cluster_abort := Some (Printf.sprintf "exit proofs rejected gid=%d" gid)
          | Some _ -> ()
          | None -> (
              match Ctrl.decode frame with
              | Some (Ctrl.Abort { detail; _ }) -> cluster_abort := Some detail
              | _ -> ()))
    done;
    if !cluster_abort = None && !got < want then
      cluster_abort := Some (Printf.sprintf "timed out with %d/%d exit batches" !got want);
    (* Variant endgame over the assembled holdings, as in [Pr.run]. *)
    let delivered =
      if !cluster_abort <> None then []
      else begin
        let holdings = Array.map (fun l -> Array.of_list (List.rev l)) holdings in
        let exits = Pr.decode_exit net holdings in
        match config.Config.variant with
        | Config.Basic | Config.Nizk ->
            List.filter_map
              (fun u ->
                if u.Pr.tag = Pr.Msg.tag_message then Some (Pr.Msg.unpad_plaintext u.Pr.payload)
                else None)
              exits
        | Config.Trap -> (
            match Pr.trap_checks net ~commitments exits with
            | Some _, _ ->
                cluster_abort := Some "trap checks failed";
                []
            | None, inner_payloads ->
                List.map Pr.Msg.unpad_plaintext (Pr.open_inners net inner_payloads))
      end
    in
    (* Publish and shut the fleet down. *)
    for sid = 0 to config.Config.n_servers - 1 do
      ignore
        (T.send t ~dst:sid
           (Ctrl.encode (Ctrl.Published { plaintexts = Array.of_list delivered })));
      ignore (T.send t ~dst:sid (Ctrl.encode Ctrl.Shutdown))
    done;
    let matched =
      !cluster_abort = None
      && reference.Pr.aborted = None
      && List.sort compare delivered = List.sort compare reference.Pr.delivered
    in
    {
      delivered;
      reference = reference.Pr.delivered;
      matched;
      cluster_abort = !cluster_abort;
      rejected_submissions;
    }
end
