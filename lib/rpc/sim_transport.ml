(* The discrete-event simulator's Net, adapted behind [Transport.S].

   One endpoint per machine; frames travel through [Atom_sim.Net.send] so
   they pay the same latency / NIC-serialization / handshake costs — and
   enjoy the same retransmission-with-backoff discipline — as the
   distributed runtime's typed traffic. Everything stays deterministic:
   given the same seed and send sequence, delivery order, retry counts and
   virtual timestamps replay bit-identically, which is what lets the test
   suite compare a protocol exchange over this transport against the same
   exchange over real TCP.

   Calls must run inside engine processes ([Engine.spawn]), like every
   blocking simulator primitive. *)

open Atom_sim

type t = {
  net : Net.t;
  machines : Machine.t array;
  boxes : (int * string) Mailbox.t array; (* per-node inbox: (src, frame) *)
  self : int;
}

(* One endpoint per machine, sharing a mailbox vector. *)
let fleet (engine : Engine.t) (net : Net.t) ~(machines : Machine.t array) : t array =
  let boxes =
    Array.init (Array.length machines) (fun i ->
        Mailbox.create ~name:(Printf.sprintf "rpc.%d" i) engine)
  in
  Array.init (Array.length machines) (fun self -> { net; machines; boxes; self })

let self (t : t) : int = t.self

let send (t : t) ~(dst : int) (msg : string) : (unit, Transport.error) result =
  if dst < 0 || dst >= Array.length t.machines then Error (Transport.Unknown_peer dst)
  else if
    Net.send_tracked t.net ~src:t.machines.(t.self) ~dst:t.machines.(dst)
      ~bytes:(float_of_int (String.length msg))
      t.boxes.(dst) (t.self, msg)
  then Ok ()
  else
    Error
      (Transport.Send_failed
         {
           dst;
           attempts = Net.default_max_retries + 1;
           reason = "simulated link dropped every retransmission";
         })

let recv (t : t) ~(timeout : float) : (int * string, Transport.error) result =
  match Mailbox.recv_timeout t.boxes.(t.self) ~timeout with
  | Some m -> Ok m
  | None -> Error Transport.Timeout

let close (_ : t) : unit = ()

(* The adapter really does satisfy the signature. *)
module Check : Transport.S with type t = t = struct
  type nonrec t = t

  let self = self
  let send = send
  let recv = recv
  let close = close
end
