(* The transport abstraction: byte-oriented, peer-addressed messaging.

   Two implementations satisfy this signature: [Sim_transport] moves frames
   through the discrete-event simulator's latency/bandwidth-modeled links
   (deterministic — timeouts and delivery order are a pure function of the
   seed), and [Tcp_transport] moves the same frames over real sockets with
   connection pooling and backoff reconnects. Code written against
   [Transport.S] — the ring exercise in the test suite, protocol
   choreography sketches — runs unchanged over both, which is how the test
   suite pins the two transports to the same semantics.

   Contract:
   - [send] is best-effort-with-retries: [true] means the message was
     handed to the network (delivery still races node death), [false]
     means it was abandoned after the implementation's retry budget.
   - [recv ~timeout] blocks (virtual or wall time) for the next message,
     returning the sender's node id alongside the bytes.
   - Messages between a given pair arrive in the order sent (mailbox FIFO
     in the simulator; a single pooled TCP stream per direction for real
     sockets). No ordering holds across different senders. *)

module type S = sig
  type t

  val self : t -> int
  (** This endpoint's node id. *)

  val send : t -> dst:int -> string -> bool
  (** Send one framed message; [false] after the retry budget is spent or
      when [dst] is unknown. *)

  val recv : t -> timeout:float -> (int * string) option
  (** Next (sender, message); [None] on timeout. *)

  val close : t -> unit
end
