(* The transport abstraction: byte-oriented, peer-addressed messaging.

   Two implementations satisfy this signature: [Sim_transport] moves frames
   through the discrete-event simulator's latency/bandwidth-modeled links
   (deterministic — timeouts and delivery order are a pure function of the
   seed), and [Tcp_transport] moves the same frames over real sockets with
   connection pooling and backoff reconnects. Code written against
   [Transport.S] — the ring exercise in the test suite, protocol
   choreography sketches — runs unchanged over both, which is how the test
   suite pins the two transports to the same semantics.

   Contract:
   - [send] is best-effort-with-retries: [Ok ()] means the message was
     handed to the network (delivery still races node death). Failures are
     typed: both transports report the same [error] cases so callers match
     once and log the same way over sim and TCP.
   - [recv ~timeout] blocks (virtual or wall time) for the next message,
     returning the sender's node id alongside the bytes.
   - Messages between a given pair arrive in the order sent (mailbox FIFO
     in the simulator; a single pooled TCP stream per direction for real
     sockets). No ordering holds across different senders. *)

type error =
  | Unknown_peer of int  (** Destination id outside the peer table. *)
  | Timeout  (** [recv] deadline passed with no message. *)
  | Closed  (** Endpoint already shut down. *)
  | Send_failed of { dst : int; attempts : int; reason : string }
      (** Abandoned after the transport's retry budget. *)

let error_to_string = function
  | Unknown_peer dst -> Printf.sprintf "unknown peer %d" dst
  | Timeout -> "timeout"
  | Closed -> "transport closed"
  | Send_failed { dst; attempts; reason } ->
      Printf.sprintf "send to %d failed after %d attempt(s): %s" dst attempts reason

module type S = sig
  type t

  val self : t -> int
  (** This endpoint's node id. *)

  val send : t -> dst:int -> string -> (unit, error) result
  (** Send one framed message; [Error (Send_failed _)] after the retry
      budget is spent, [Error (Unknown_peer _)] when [dst] is not wired. *)

  val recv : t -> timeout:float -> (int * string, error) result
  (** Next (sender, message); [Error Timeout] when the deadline passes,
      [Error Closed] once the endpoint is shut down. *)

  val close : t -> unit
end
