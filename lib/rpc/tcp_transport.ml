(* Real TCP transport: framed messages over sockets.

   Shape mirrors [Sim_transport] (and therefore [Transport.S]): an endpoint
   owns a listening socket, a pool of one outgoing connection per peer, and
   a single inbox that reader threads feed. The paper's deployment runs TLS
   between servers; here the framing layer's magic/version/CRC checks stand
   in for transport integrity and the trust analysis does not change — Atom
   assumes the adversary sees all traffic anyway (DESIGN.md §transport).

   Discipline:
   - Outgoing connections are pooled and lazily (re)established. A failed
     send closes the connection and retries with exponential backoff,
     mirroring the [Atom_sim.Net] retransmission policy (max_retries,
     first-backoff-doubles), then gives up and reports the drop.
   - Every send has a per-send socket timeout (SO_SNDTIMEO), so a wedged
     peer costs bounded time, not a hung round.
   - Incoming connections identify themselves with a Hello frame; the
     reader thread validates each frame header before buffering the frame,
     and kills the connection on the first malformed byte.
   - Everything is instrumented through [Atom_obs]: byte counters both
     directions, send-size and send-latency histograms, reconnect and
     drop and protocol-error counters.

   recv timeouts use a self-pipe: reader threads signal the pipe after
   enqueueing, and recv blocks in select with the remaining deadline —
   no polling, no busy-wait. *)

type peer = {
  addr : Unix.sockaddr;
  mu : Mutex.t; (* serializes sends (and reconnects) toward this peer *)
  mutable fd : Unix.file_descr option;
}

type t = {
  node_id : int;
  listen_fd : Unix.file_descr;
  port : int;
  peers : (int, peer) Hashtbl.t;
  peers_mu : Mutex.t;
  (* Accepted incoming connections, tracked so [close] can sever them.
     Without this a "dead" node's established connections linger in the
     kernel and peers' writes keep succeeding silently — in-process kills
     (tests, chaos) would look nothing like a real crash, which RSTs
     every connection the moment the process dies. *)
  readers : (Unix.file_descr, unit) Hashtbl.t;
  readers_mu : Mutex.t;
  inbox : (int * string) Queue.t;
  inbox_mu : Mutex.t;
  max_inbox : int; (* frames buffered before overflow drops kick in *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable closed : bool;
  send_timeout : float;
  max_retries : int;
  retry_backoff : float;
  (* observability *)
  m_sends : Atom_obs.Metrics.counter;
  m_recvs : Atom_obs.Metrics.counter;
  m_bytes_out : Atom_obs.Metrics.counter;
  m_bytes_in : Atom_obs.Metrics.counter;
  m_reconnects : Atom_obs.Metrics.counter;
  m_drops : Atom_obs.Metrics.counter;
  m_accepts : Atom_obs.Metrics.counter;
  m_protocol_errors : Atom_obs.Metrics.counter;
  m_inbox_drops : Atom_obs.Metrics.counter;
  m_resets : Atom_obs.Metrics.counter;
  m_send_bytes : Atom_obs.Metrics.histogram;
  m_send_seconds : Atom_obs.Metrics.histogram;
}

let default_send_timeout = 5.0

(* Inbox bound: a flooding or byzantine peer must exhaust its own socket
   buffers, not this process's heap. Generous enough that healthy rounds
   never hit it (a round's whole traffic toward one node is a few hundred
   frames); overflow drops the newest frame and counts it — recovery
   retransmission makes the drop survivable. *)
let default_max_inbox = 8192

(* Mirror the simulator Net's retransmission policy. *)
let default_max_retries = Atom_sim.Net.default_max_retries
let default_retry_backoff = Atom_sim.Net.default_retry_backoff

let close_quietly (fd : Unix.file_descr) = try Unix.close fd with Unix.Unix_error _ -> ()

(* Read exactly [n] bytes or raise (EOF counts as failure). *)
exception Conn_closed

let read_exact (fd : Unix.file_descr) (n : int) : string =
  let b = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    let k = Unix.read fd b !got (n - !got) in
    if k = 0 then raise Conn_closed;
    got := !got + k
  done;
  Bytes.unsafe_to_string b

let write_all (fd : Unix.file_descr) (s : string) : unit =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let sent = ref 0 in
  while !sent < n do
    let k = Unix.write fd b !sent (n - !sent) in
    if k <= 0 then raise Conn_closed;
    sent := !sent + k
  done

let wake (t : t) : unit =
  (* Nonblocking: if the pipe is full there is already a pending wakeup. *)
  try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let enqueue (t : t) (src : int) (frame : string) : unit =
  Mutex.lock t.inbox_mu;
  let dropped = Queue.length t.inbox >= t.max_inbox in
  if not dropped then Queue.add (src, frame) t.inbox;
  Mutex.unlock t.inbox_mu;
  if dropped then Atom_obs.Metrics.incr t.m_inbox_drops else wake t

let track_reader (t : t) (fd : Unix.file_descr) : unit =
  Mutex.lock t.readers_mu;
  Hashtbl.replace t.readers fd ();
  Mutex.unlock t.readers_mu

let untrack_reader (t : t) (fd : Unix.file_descr) : unit =
  Mutex.lock t.readers_mu;
  Hashtbl.remove t.readers fd;
  Mutex.unlock t.readers_mu

(* One incoming connection: Hello first, then framed messages forever. *)
let reader_loop (t : t) (fd : Unix.file_descr) : unit =
  let read_frame () =
    let header = read_exact fd Atom_wire.Frame.header_bytes in
    match Atom_wire.Frame.read_header header with
    | None ->
        Atom_obs.Metrics.incr t.m_protocol_errors;
        raise Conn_closed
    | Some h ->
        let body = read_exact fd h.Atom_wire.Frame.body_len in
        let frame = header ^ body in
        Atom_obs.Metrics.add t.m_bytes_in (float_of_int (String.length frame));
        frame
  in
  match
    (match Atom_wire.Control.decode (read_frame ()) with
    | Some (Atom_wire.Control.Hello { node_id }) -> node_id
    | _ ->
        Atom_obs.Metrics.incr t.m_protocol_errors;
        raise Conn_closed)
  with
  | src -> (
      try
        while not t.closed do
          enqueue t src (read_frame ())
        done;
        untrack_reader t fd;
        close_quietly fd
      with Conn_closed | Unix.Unix_error _ | Sys_error _ ->
        untrack_reader t fd;
        close_quietly fd)
  | exception (Conn_closed | Unix.Unix_error _ | Sys_error _) ->
      untrack_reader t fd;
      close_quietly fd

let accept_loop (t : t) : unit =
  try
    while not t.closed do
      let fd, _ = Unix.accept t.listen_fd in
      if t.closed then close_quietly fd
      else begin
        Atom_obs.Metrics.incr t.m_accepts;
        track_reader t fd;
        ignore (Thread.create (fun () -> reader_loop t fd) ())
      end
    done
  with Unix.Unix_error _ | Sys_error _ -> () (* listen socket closed: shutting down *)

let create ?(obs = Atom_obs.Ctx.noop) ?(host = "127.0.0.1") ?(port = 0)
    ?(send_timeout = default_send_timeout) ?(max_retries = default_max_retries)
    ?(retry_backoff = default_retry_backoff) ?(max_inbox = default_max_inbox)
    ~(node_id : int) () : t =
  (* A dead peer mid-write must be a catchable error, not a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let reg = Atom_obs.Ctx.metrics obs in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 128;
  let actual_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      node_id;
      listen_fd;
      port = actual_port;
      peers = Hashtbl.create 64;
      peers_mu = Mutex.create ();
      readers = Hashtbl.create 64;
      readers_mu = Mutex.create ();
      inbox = Queue.create ();
      inbox_mu = Mutex.create ();
      max_inbox;
      wake_r;
      wake_w;
      closed = false;
      send_timeout;
      max_retries;
      retry_backoff;
      m_sends = Atom_obs.Metrics.counter reg "rpc.sends";
      m_recvs = Atom_obs.Metrics.counter reg "rpc.recvs";
      m_bytes_out = Atom_obs.Metrics.counter reg "rpc.bytes_out";
      m_bytes_in = Atom_obs.Metrics.counter reg "rpc.bytes_in";
      m_reconnects = Atom_obs.Metrics.counter reg "rpc.reconnects";
      m_drops = Atom_obs.Metrics.counter reg "rpc.drops";
      m_accepts = Atom_obs.Metrics.counter reg "rpc.accepts";
      m_protocol_errors = Atom_obs.Metrics.counter reg "rpc.protocol_errors";
      m_inbox_drops = Atom_obs.Metrics.counter reg "rpc.inbox_drops";
      m_resets = Atom_obs.Metrics.counter reg "rpc.resets";
      m_send_bytes =
        Atom_obs.Metrics.histogram reg ~buckets:24 ~lo:0. ~hi:1e6 "rpc.send_bytes";
      m_send_seconds =
        Atom_obs.Metrics.histogram reg ~buckets:24 ~lo:0. ~hi:1. "rpc.send_seconds";
    }
  in
  ignore (Thread.create (fun () -> accept_loop t) ());
  t

let self (t : t) : int = t.node_id
let port (t : t) : int = t.port

let add_peer (t : t) ~(node_id : int) ~(host : string) ~(port : int) : unit =
  Mutex.lock t.peers_mu;
  Hashtbl.replace t.peers node_id
    {
      addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port);
      mu = Mutex.create ();
      fd = None;
    };
  Mutex.unlock t.peers_mu

(* Forcibly drop the pooled outgoing connection to [dst]; the next send
   re-establishes it through the ordinary reconnect path. Chaos injection
   uses this to model mid-round connection resets, and the test suite uses
   it to pin the reconnect budget's behavior. *)
let reset_peer (t : t) ~(dst : int) : unit =
  Mutex.lock t.peers_mu;
  let peer = Hashtbl.find_opt t.peers dst in
  Mutex.unlock t.peers_mu;
  match peer with
  | None -> ()
  | Some p ->
      Mutex.lock p.mu;
      (match p.fd with
      | Some fd ->
          close_quietly fd;
          p.fd <- None;
          Atom_obs.Metrics.incr t.m_resets
      | None -> ());
      Mutex.unlock p.mu

let peer_ids (t : t) : int list =
  Mutex.lock t.peers_mu;
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.peers [] in
  Mutex.unlock t.peers_mu;
  List.sort compare ids

(* Establish the pooled connection to [p] (caller holds [p.mu]): connect,
   arm the per-send timeout, introduce ourselves. *)
let connect_peer (t : t) (p : peer) : Unix.file_descr =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd p.addr;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.send_timeout;
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     close_quietly fd;
     raise e);
  (try write_all fd (Atom_wire.Control.encode (Atom_wire.Control.Hello { node_id = t.node_id }))
   with e ->
     close_quietly fd;
     raise e);
  fd

let send (t : t) ~(dst : int) (msg : string) : (unit, Transport.error) result =
  if t.closed then Error Transport.Closed
  else if dst = t.node_id then begin
    (* Self-send: a server can hold roles in several groups (the square
       topology routinely wires a group's tail to a head on the same
       machine). Loop it through the inbox directly. *)
    Atom_obs.Metrics.incr t.m_sends;
    enqueue t t.node_id msg;
    Ok ()
  end
  else begin
  Mutex.lock t.peers_mu;
  let peer = Hashtbl.find_opt t.peers dst in
  Mutex.unlock t.peers_mu;
  match peer with
  | None -> Error (Transport.Unknown_peer dst)
  | Some p ->
      let t0 = Unix.gettimeofday () in
      Mutex.lock p.mu;
      let rec attempt tries backoff =
        if t.closed then Error Transport.Closed
        else
          match
            let fd =
              match p.fd with
              | Some fd -> fd
              | None ->
                  let fd = connect_peer t p in
                  p.fd <- Some fd;
                  fd
            in
            write_all fd msg
          with
          | () ->
              Atom_obs.Metrics.incr t.m_sends;
              Atom_obs.Metrics.add t.m_bytes_out (float_of_int (String.length msg));
              Atom_obs.Metrics.observe t.m_send_bytes (float_of_int (String.length msg));
              Ok ()
          | exception ((Conn_closed | Unix.Unix_error _ | Sys_error _) as e) ->
              (match p.fd with
              | Some fd ->
                  close_quietly fd;
                  p.fd <- None
              | None -> ());
              (* The reconnect budget is bounded in *time* as well as
                 attempts: a peer that is dead (connection refused) must
                 fail the send within [send_timeout] so callers can turn
                 the typed error into a death certificate promptly, rather
                 than sitting out the full exponential-backoff ladder. *)
              if
                tries >= t.max_retries
                || Unix.gettimeofday () -. t0 +. backoff > t.send_timeout
              then begin
                Atom_obs.Metrics.incr t.m_drops;
                Atom_obs.Log.warn "rpc: dropped %d bytes %d->%d after %d retries"
                  (String.length msg) t.node_id dst tries;
                let reason =
                  match e with Conn_closed -> "connection closed" | e -> Printexc.to_string e
                in
                Error (Transport.Send_failed { dst; attempts = tries + 1; reason })
              end
              else begin
                Atom_obs.Metrics.incr t.m_reconnects;
                Thread.delay backoff;
                attempt (tries + 1) (backoff *. 2.)
              end
      in
      let r = attempt 0 t.retry_backoff in
      Mutex.unlock p.mu;
      Atom_obs.Metrics.observe t.m_send_seconds (Unix.gettimeofday () -. t0);
      r
  end

let drain_wake (t : t) : unit =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let recv (t : t) ~(timeout : float) : (int * string, Transport.error) result =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    let item =
      Mutex.lock t.inbox_mu;
      let item = if Queue.is_empty t.inbox then None else Some (Queue.pop t.inbox) in
      Mutex.unlock t.inbox_mu;
      item
    in
    match item with
    | Some (src, frame) ->
        Atom_obs.Metrics.incr t.m_recvs;
        Ok (src, frame)
    | None ->
        if t.closed then Error Transport.Closed
        else
          let dt = deadline -. Unix.gettimeofday () in
          if dt <= 0. then Error Transport.Timeout
          else begin
            (match Unix.select [ t.wake_r ] [] [] dt with
            | [ _ ], _, _ -> drain_wake t
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            wait ()
          end
  in
  wait ()

let close (t : t) : unit =
  if not t.closed then begin
    t.closed <- true;
    (* Shutdown before close: on Linux this wakes a thread blocked in
       accept(2) on this socket. A bare close would leave the blocked
       accept holding the kernel socket open, so new connects to this
       "dead" node would keep completing against the listen backlog. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    close_quietly t.listen_fd;
    (* Sever accepted connections too — a crashed process RSTs them, and
       peers rely on that typed send failure as the death certificate. *)
    Mutex.lock t.readers_mu;
    Hashtbl.iter
      (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.readers;
    Mutex.unlock t.readers_mu;
    Mutex.lock t.peers_mu;
    Hashtbl.iter
      (fun _ p ->
        match p.fd with
        | Some fd ->
            close_quietly fd;
            p.fd <- None
        | None -> ())
      t.peers;
    Mutex.unlock t.peers_mu;
    wake t;
    close_quietly t.wake_r;
    close_quietly t.wake_w
  end

(* The real transport satisfies the same signature as the simulated one. *)
module Check : Transport.S with type t = t = struct
  type nonrec t = t

  let self = self
  let send = send
  let recv = recv
  let close = close
end
