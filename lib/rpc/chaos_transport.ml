(* Chaos layer: wrap any [Transport.S] with a seeded, deterministic fault
   plan — message drops, delays/reordering, duplicate delivery, connection
   resets, N-way partitions, and byzantine frame corruption drawn from the
   same mutation vocabulary as the wire fuzz suite (bit-flips, truncations,
   CRC-valid garbage bodies, frame substitution).

   Determinism: every per-message decision is drawn from an RNG seeded by
   (spec.seed, endpoint id) in send order, so the decision *sequence* at an
   endpoint is a pure function of the seed and that endpoint's send
   sequence. Over the discrete-event simulator (where the send sequence
   itself is deterministic) a chaos run replays bit-identically; over real
   TCP the fault mix is reproducible even though wall-clock interleaving is
   not. Partitions are windows on a caller-supplied clock ([~now]), so sim
   tests can drive them from virtual time and the node runtime from
   seconds-since-start.

   Every injected fault is counted in the [Atom_obs] registry
   (chaos.drops / delays / dups / corruptions / partition_drops / resets),
   which is what the soak harness reports as the error budget's "faults
   injected" side. *)

type partition = {
  from_t : float;
  to_t : float;
  sides : int list list; (* nodes in different sides cannot talk *)
}

type spec = {
  seed : int;
  drop : float; (* per-send silent drop probability *)
  delay : float; (* per-send hold-back probability (also reorders) *)
  delay_s : float; (* how long a held message waits *)
  dup : float; (* per-send duplicate-delivery probability *)
  corrupt : float; (* per-send byzantine mutation probability *)
  reset_every : int; (* force a connection reset every N sends (0 = off) *)
  after : float; (* probabilistic faults sleep until this clock time —
                    lets a cluster bring itself up before the weather
                    starts (partitions are windowed explicitly instead) *)
  partitions : partition list;
}

let none =
  {
    seed = 0;
    drop = 0.;
    delay = 0.;
    delay_s = 0.05;
    dup = 0.;
    corrupt = 0.;
    reset_every = 0;
    after = 0.;
    partitions = [];
  }

let is_none (s : spec) =
  s.drop = 0. && s.delay = 0. && s.dup = 0. && s.corrupt = 0. && s.reset_every = 0
  && s.partitions = []

(* ---- compact textual form (CLI flags, node spawning) ----

   "drop=0.02;corrupt=0.01;seed=7;partition=1.5:3.5:0,1|2,3"
   Fields separated by ';', partitions repeatable; a partition is
   t0:t1:side|side|... with comma-separated node ids per side. *)

let partition_to_string (p : partition) : string =
  Printf.sprintf "%g:%g:%s" p.from_t p.to_t
    (String.concat "|"
       (List.map (fun side -> String.concat "," (List.map string_of_int side)) p.sides))

let spec_to_string (s : spec) : string =
  let fields = ref [] in
  let add k v = fields := Printf.sprintf "%s=%s" k v :: !fields in
  if s.seed <> 0 then add "seed" (string_of_int s.seed);
  if s.drop <> 0. then add "drop" (Printf.sprintf "%g" s.drop);
  if s.delay <> 0. then add "delay" (Printf.sprintf "%g" s.delay);
  if s.delay_s <> none.delay_s then add "delay_s" (Printf.sprintf "%g" s.delay_s);
  if s.dup <> 0. then add "dup" (Printf.sprintf "%g" s.dup);
  if s.corrupt <> 0. then add "corrupt" (Printf.sprintf "%g" s.corrupt);
  if s.reset_every <> 0 then add "reset_every" (string_of_int s.reset_every);
  if s.after <> 0. then add "after" (Printf.sprintf "%g" s.after);
  List.iter (fun p -> add "partition" (partition_to_string p)) s.partitions;
  String.concat ";" (List.rev !fields)

let spec_of_string (str : string) : (spec, string) result =
  let parse_ids s =
    List.filter_map
      (fun tok -> if tok = "" then None else Some (int_of_string (String.trim tok)))
      (String.split_on_char ',' s)
  in
  let parse_partition v =
    match String.split_on_char ':' v with
    | [ t0; t1; sides ] ->
        {
          from_t = float_of_string t0;
          to_t = float_of_string t1;
          sides = List.map parse_ids (String.split_on_char '|' sides);
        }
    | _ -> failwith "partition wants t0:t1:ids|ids"
  in
  try
    Ok
      (List.fold_left
         (fun acc field ->
           if String.trim field = "" then acc
           else
             match String.index_opt field '=' with
             | None -> failwith (Printf.sprintf "field %S is not key=value" field)
             | Some i ->
                 let k = String.trim (String.sub field 0 i) in
                 let v = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
                 (match k with
                 | "seed" -> { acc with seed = int_of_string v }
                 | "drop" -> { acc with drop = float_of_string v }
                 | "delay" -> { acc with delay = float_of_string v }
                 | "delay_s" -> { acc with delay_s = float_of_string v }
                 | "dup" -> { acc with dup = float_of_string v }
                 | "corrupt" -> { acc with corrupt = float_of_string v }
                 | "reset_every" -> { acc with reset_every = int_of_string v }
                 | "after" -> { acc with after = float_of_string v }
                 | "partition" -> { acc with partitions = acc.partitions @ [ parse_partition v ] }
                 | k -> failwith (Printf.sprintf "unknown chaos field %S" k)))
         none
         (String.split_on_char ';' str))
  with Failure m -> Error m

(* ---- byzantine frame mutation ----

   The same vocabulary as the wire fuzz suite: a bit-flip anywhere in the
   frame (CRC / header validation must catch it), a truncation (desyncs a
   TCP stream; the reader kills the connection and the sender reconnects),
   a CRC-valid garbage body behind a legitimate header (drives every
   per-kind body decoder on arbitrary bytes — strict totality rejects it),
   or substitution by an unrelated valid frame (a replay-shaped fault the
   receiver's dedup/ignore paths absorb). *)

let mutate (rng : Atom_util.Rng.t) (frame : string) : string =
  let n = String.length frame in
  match Atom_util.Rng.int_below rng 4 with
  | 0 when n > 0 ->
      (* bit-flip *)
      let i = Atom_util.Rng.int_below rng n in
      let b = Bytes.of_string frame in
      Bytes.set b i (Char.chr (Char.code frame.[i] lxor (1 lsl Atom_util.Rng.int_below rng 8)));
      Bytes.to_string b
  | 1 when n > 1 ->
      (* truncation *)
      String.sub frame 0 (Atom_util.Rng.int_below rng (n - 1) + 1)
  | 2 ->
      (* valid header + CRC over a garbage body: passes framing, exercises
         the per-kind strict body decoders *)
      let kinds = Atom_wire.Frame.kind_names in
      let kind = fst (List.nth kinds (Atom_util.Rng.int_below rng (List.length kinds))) in
      let body =
        String.init (Atom_util.Rng.int_below rng 64) (fun _ ->
            Char.chr (Atom_util.Rng.int_below rng 256))
      in
      Atom_wire.Frame.encode ~kind body
  | _ ->
      (* substitution by an unrelated well-formed control frame *)
      Atom_wire.Control.encode (Atom_wire.Control.Ack { token = Atom_util.Rng.int_below rng 0xffff })

module Make (T : Transport.S) = struct
  type pending = { due : float; dst : int; frame : string }

  type t = {
    u : T.t;
    spec : spec;
    rng : Atom_util.Rng.t;
    now : unit -> float;
    reset : int -> unit;
    mu : Mutex.t;
    mutable held : pending list; (* delayed frames, oldest due first *)
    mutable sends : int;
    m_drops : Atom_obs.Metrics.counter;
    m_delays : Atom_obs.Metrics.counter;
    m_dups : Atom_obs.Metrics.counter;
    m_corruptions : Atom_obs.Metrics.counter;
    m_partition_drops : Atom_obs.Metrics.counter;
    m_resets : Atom_obs.Metrics.counter;
  }

  let wrap ?(obs = Atom_obs.Ctx.noop) ?(now = Unix.gettimeofday)
      ?(reset = fun (_ : int) -> ()) (spec : spec) (u : T.t) : t =
    let reg = Atom_obs.Ctx.metrics obs in
    {
      u;
      spec;
      rng = Atom_util.Rng.create (spec.seed lxor (0xc4a05 * (T.self u + 1)));
      now;
      reset;
      mu = Mutex.create ();
      held = [];
      sends = 0;
      m_drops = Atom_obs.Metrics.counter reg "chaos.drops";
      m_delays = Atom_obs.Metrics.counter reg "chaos.delays";
      m_dups = Atom_obs.Metrics.counter reg "chaos.dups";
      m_corruptions = Atom_obs.Metrics.counter reg "chaos.corruptions";
      m_partition_drops = Atom_obs.Metrics.counter reg "chaos.partition_drops";
      m_resets = Atom_obs.Metrics.counter reg "chaos.resets";
    }

  let underlying (t : t) : T.t = t.u
  let self (t : t) : int = T.self t.u

  let partitioned (t : t) (dst : int) : bool =
    let at = t.now () in
    let side_of sides id =
      let rec go i = function
        | [] -> None
        | s :: rest -> if List.mem id s then Some i else go (i + 1) rest
      in
      go 0 sides
    in
    List.exists
      (fun p ->
        at >= p.from_t && at < p.to_t
        &&
        match (side_of p.sides (self t), side_of p.sides dst) with
        | Some a, Some b -> a <> b
        | _ -> false)
      t.spec.partitions

  (* Flush held frames whose release time has come. Send failures on the
     release path count as drops: the chaos layer already reported Ok for
     these sends, so late errors cannot be surfaced to the caller. *)
  let release_due (t : t) : unit =
    Mutex.lock t.mu;
    let at = t.now () in
    let due, still = List.partition (fun p -> p.due <= at) t.held in
    t.held <- still;
    Mutex.unlock t.mu;
    List.iter
      (fun p ->
        match T.send t.u ~dst:p.dst p.frame with
        | Ok () -> ()
        | Error _ -> Atom_obs.Metrics.incr t.m_drops)
      due

  let send (t : t) ~(dst : int) (msg : string) : (unit, Transport.error) result =
    release_due t;
    Mutex.lock t.mu;
    t.sends <- t.sends + 1;
    let seq = t.sends in
    (* One decision draw per fault class per send, in fixed order, so the
       decision stream is independent of which faults are enabled. *)
    let d_drop = Atom_util.Rng.float t.rng in
    let d_corrupt = Atom_util.Rng.float t.rng in
    let d_delay = Atom_util.Rng.float t.rng in
    let d_dup = Atom_util.Rng.float t.rng in
    (* Quiet before [after]: draws are still consumed so the decision
       stream doesn't shift, but no probabilistic fault fires. *)
    let active = t.now () >= t.spec.after in
    let d_drop = if active then d_drop else 1.0 in
    let d_delay = if active then d_delay else 1.0 in
    let d_dup = if active then d_dup else 1.0 in
    let mutated =
      if active && d_corrupt < t.spec.corrupt then Some (mutate t.rng msg) else None
    in
    Mutex.unlock t.mu;
    if active && t.spec.reset_every > 0 && seq mod t.spec.reset_every = 0 then begin
      Atom_obs.Metrics.incr t.m_resets;
      t.reset dst
    end;
    if partitioned t dst then begin
      (* Silent: a partition looks like loss, not an error, to the sender. *)
      Atom_obs.Metrics.incr t.m_partition_drops;
      Ok ()
    end
    else if d_drop < t.spec.drop then begin
      Atom_obs.Metrics.incr t.m_drops;
      Ok ()
    end
    else begin
      let msg =
        match mutated with
        | Some m ->
            Atom_obs.Metrics.incr t.m_corruptions;
            m
        | None -> msg
      in
      let result =
        if d_delay < t.spec.delay then begin
          Atom_obs.Metrics.incr t.m_delays;
          Mutex.lock t.mu;
          t.held <- t.held @ [ { due = t.now () +. t.spec.delay_s; dst; frame = msg } ];
          Mutex.unlock t.mu;
          Ok ()
        end
        else T.send t.u ~dst msg
      in
      if result = Ok () && d_dup < t.spec.dup then begin
        Atom_obs.Metrics.incr t.m_dups;
        ignore (T.send t.u ~dst msg)
      end;
      result
    end

  let recv (t : t) ~(timeout : float) : (int * string, Transport.error) result =
    release_due t;
    T.recv t.u ~timeout

  let close (t : t) : unit =
    (* Held frames die with the endpoint, like any other in-flight data. *)
    Mutex.lock t.mu;
    t.held <- [];
    Mutex.unlock t.mu;
    T.close t.u

  (* The wrapped endpoint is itself a transport. *)
  module Check : Transport.S with type t = t = struct
    type nonrec t = t

    let self = self
    let send = send
    let recv = recv
    let close = close
  end
end
