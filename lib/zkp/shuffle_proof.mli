(** Verifiable shuffle of ElGamal vector ciphertexts — a
    commitment-consistent proof of shuffle in the Terelius–Wikström style
    (playing the role of Neff's shuffle [59] in the paper; see DESIGN.md).

    Proves that [output] is a rerandomized permutation of [input] under the
    group key, without revealing the permutation: Pedersen commitments to
    the permutation over hash-derived generators, a product-chain pinning
    Π u' = Π u, and one shared sigma challenge tying the committed
    exponents to both ciphertext components of every column. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (El : module type of Atom_elgamal.Elgamal.Make (G)) : sig
  type t

  val generator_h : string -> G.t
  val generator_hi : string -> int -> G.t

  val prove :
    ?pool:Atom_exec.Pool.t ->
    Atom_util.Rng.t ->
    pk:G.t ->
    context:string ->
    input:El.vec array ->
    output:El.vec array ->
    witness:El.vec_shuffle_witness ->
    t
  (** @raise Invalid_argument on empty or ragged input. Randomness is
      drawn sequentially before any pooled region, so the proof bytes do
      not depend on [?pool]. *)

  val verify :
    ?pool:Atom_exec.Pool.t ->
    pk:G.t ->
    context:string ->
    input:El.vec array ->
    output:El.vec array ->
    t ->
    bool
  (** The verifier folds every relation into one big multi-exponentiation;
      [?pool] parallelizes it (the verdict is identical for any pool). *)

  val to_bytes : t -> string

  val of_bytes : string -> t option
  (** Decodes with full element validation; [None] on any malformed,
      truncated, or trailing input. *)
end
