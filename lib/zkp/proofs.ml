(* Sigma-protocol NIZKs (Fiat–Shamir): EncProof and ReEncProof.

   - [Enc_proof]: Schnorr proof of knowledge of the encryption randomness,
     exactly the construction of the paper's Appendix A, with the entry
     group's id folded into the challenge so a proof cannot be replayed at a
     different group (§3).
   - [Dleq]: Chaum–Pedersen discrete-log-equality proof [20].
   - [Reenc_proof]: verifiable decrypt-and-reencrypt, composed from one DLEQ
     attesting the stripped factor D = Y^{x_s} against the server's public
     share and one DLEQ attesting the fresh rerandomization toward the next
     group's key. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (El : module type of Atom_elgamal.Elgamal.Make (G)) =
struct
  (* Serialization helpers: group elements are fixed-width; scalars use the
     backend's canonical fixed-width big-endian encoding. *)
  let scalar_bytes = String.length (G.Scalar.to_bytes G.Scalar.zero)

  let read_element (s : string) (off : int) : (G.t * int) option =
    if off + G.element_bytes > String.length s then None
    else
      match G.of_bytes (String.sub s off G.element_bytes) with
      | Some el -> Some (el, off + G.element_bytes)
      | None -> None

  let read_scalar (s : string) (off : int) : (G.Scalar.t * int) option =
    if off + scalar_bytes > String.length s then None
    else Some (G.Scalar.of_bytes_mod (String.sub s off scalar_bytes), off + scalar_bytes)
  module Enc_proof = struct
    type t = { a : G.t; u : G.Scalar.t }

    let challenge ~(pk : G.t) ~(context : string) (ct : El.cipher) (a : G.t) : G.Scalar.t =
      let tr = Transcript.create ~domain:"enc-proof" in
      Transcript.add_list tr
        [ context; G.to_bytes pk; G.to_bytes ct.El.r; G.to_bytes ct.El.c; G.to_bytes a ];
      G.hash_to_scalar (Transcript.digest tr)

    (* Prove knowledge of r with ct.r = g^r. [context] binds the proof to
       the entry group (and anything else the caller includes). *)
    let prove (rng : Atom_util.Rng.t) ~(pk : G.t) ~(context : string) (ct : El.cipher)
        ~(randomness : G.Scalar.t) : t =
      let s = G.Scalar.random rng in
      let a = G.pow_gen s in
      let t = challenge ~pk ~context ct a in
      { a; u = G.Scalar.add s (G.Scalar.mul t randomness) }

    (* g^u = a·R^t  ⇔  g^u·R^{-t} = a: one Straus double-scalar
       multiplication (with the generator half served by the comb table)
       instead of two full exponentiations and a group op. *)
    let verify ~(pk : G.t) ~(context : string) (ct : El.cipher) (pi : t) : bool =
      let t = challenge ~pk ~context ct pi.a in
      G.equal (G.pow2 G.generator pi.u ct.El.r (G.Scalar.neg t)) pi.a

    let to_bytes (pi : t) : string = G.to_bytes pi.a ^ G.Scalar.to_bytes pi.u

    let of_bytes (s : string) : t option =
      match read_element s 0 with
      | Some (a, off) -> begin
          match read_scalar s off with
          | Some (u, off') when off' = String.length s -> Some { a; u }
          | _ -> None
        end
      | None -> None

    (* Vector ciphertexts carry one proof per component. *)
    let prove_vec rng ~pk ~context (v : El.vec) ~(randomness : G.Scalar.t array) : t array =
      Array.mapi (fun i ct -> prove rng ~pk ~context ct ~randomness:randomness.(i)) v

    let verify_vec ~pk ~context (v : El.vec) (pis : t array) : bool =
      Array.length pis = Array.length v
      && Array.for_all2 (fun ct pi -> verify ~pk ~context ct pi) v pis
  end

  module Dleq = struct
    type t = { a1 : G.t; a2 : G.t; u : G.Scalar.t }

    (* Prove log_{g1} h1 = log_{g2} h2 (= secret x). *)
    let challenge ~context (g1, h1, g2, h2) a1 a2 =
      let tr = Transcript.create ~domain:"dleq" in
      Transcript.add_list tr
        [
          context; G.to_bytes g1; G.to_bytes h1; G.to_bytes g2; G.to_bytes h2; G.to_bytes a1;
          G.to_bytes a2;
        ];
      G.hash_to_scalar (Transcript.digest tr)

    let prove (rng : Atom_util.Rng.t) ~(context : string) ~(g1 : G.t) ~(h1 : G.t) ~(g2 : G.t)
        ~(h2 : G.t) ~(x : G.Scalar.t) : t =
      let s = G.Scalar.random rng in
      let a1 = G.pow g1 s and a2 = G.pow g2 s in
      let t = challenge ~context (g1, h1, g2, h2) a1 a2 in
      { a1; a2; u = G.Scalar.add s (G.Scalar.mul t x) }

    (* Each leg g^u = a·h^t is checked as g^u·h^{-t} = a (one double-scalar
       multiplication). g1 is the group generator in every caller, so that
       half rides the comb table, and long-lived h bases (eff_pk, the next
       group's key) hit the per-base table cache. *)
    let verify ~(context : string) ~(g1 : G.t) ~(h1 : G.t) ~(g2 : G.t) ~(h2 : G.t) (pi : t) : bool
        =
      let t = challenge ~context (g1, h1, g2, h2) pi.a1 pi.a2 in
      let neg_t = G.Scalar.neg t in
      G.equal (G.pow2 g1 pi.u h1 neg_t) pi.a1 && G.equal (G.pow2 g2 pi.u h2 neg_t) pi.a2

    let to_bytes (pi : t) : string =
      G.to_bytes pi.a1 ^ G.to_bytes pi.a2 ^ G.Scalar.to_bytes pi.u

    let of_bytes_at (s : string) (off : int) : (t * int) option =
      match read_element s off with
      | None -> None
      | Some (a1, off) -> begin
          match read_element s off with
          | None -> None
          | Some (a2, off) -> begin
              match read_scalar s off with
              | None -> None
              | Some (u, off) -> Some ({ a1; a2; u }, off)
            end
        end

    let of_bytes (s : string) : t option =
      match of_bytes_at s 0 with
      | Some (pi, off) when off = String.length s -> Some pi
      | _ -> None
  end

  module Reenc_proof = struct
    type t = {
      stripped : G.t; (* D = Y^{x_eff}, published *)
      strip_proof : Dleq.t; (* DLEQ(g, eff_pk; Y, D) *)
      rerand_proof : Dleq.t option; (* DLEQ(g, R'/R; X', c'·D/c); None at the exit layer *)
    }

    (* Perform one server's ReEnc step and prove it. [eff_pk] = g^{x_eff}
       where x_eff = coeff·share is the effective exponent this server uses
       (for anytrust groups coeff = 1 and eff_pk is the server's public
       key; for many-trust groups it is share_pk^λ). *)
    let reenc_with_proof (rng : Atom_util.Rng.t) ~(share : G.Scalar.t) ?(coeff = G.Scalar.one)
        ~(next_pk : G.t option) ~(context : string) (ct : El.cipher) : El.cipher * t =
      let x_eff = G.Scalar.mul coeff share in
      let eff_pk = G.pow_gen x_eff in
      let y_in, r_in = match ct.El.y with None -> (ct.El.r, G.one) | Some y -> (y, ct.El.r) in
      let ct', wit = El.reenc rng ~share ~coeff ~next_pk ct in
      let d = wit.El.stripped in
      let strip_proof =
        Dleq.prove rng ~context ~g1:G.generator ~h1:eff_pk ~g2:y_in ~h2:d ~x:x_eff
      in
      let rerand_proof =
        match next_pk with
        | None -> None
        | Some pk' ->
            let h1 = G.div ct'.El.r r_in in
            let h2 = G.div (G.mul ct'.El.c d) ct.El.c in
            Some (Dleq.prove rng ~context ~g1:G.generator ~h1 ~g2:pk' ~h2 ~x:wit.El.fresh)
      in
      (ct', { stripped = d; strip_proof; rerand_proof })

    let verify ~(eff_pk : G.t) ~(next_pk : G.t option) ~(context : string) ~(input : El.cipher)
        ~(output : El.cipher) (pi : t) : bool =
      let y_in, r_in =
        match input.El.y with None -> (input.El.r, G.one) | Some y -> (y, input.El.r)
      in
      (* The output must carry Y = Y_in. *)
      let y_ok = match output.El.y with Some y -> G.equal y y_in | None -> false in
      y_ok
      && Dleq.verify ~context ~g1:G.generator ~h1:eff_pk ~g2:y_in ~h2:pi.stripped pi.strip_proof
      &&
      match (next_pk, pi.rerand_proof) with
      | None, None ->
          (* Exit layer: pure strip, no fresh randomness. *)
          G.equal output.El.c (G.div input.El.c pi.stripped) && G.equal output.El.r r_in
      | Some pk', Some rp ->
          let h1 = G.div output.El.r r_in in
          let h2 = G.div (G.mul output.El.c pi.stripped) input.El.c in
          Dleq.verify ~context ~g1:G.generator ~h1 ~g2:pk' ~h2 rp
      | _ -> false

    let reenc_vec_with_proof rng ~share ?coeff ~next_pk ~context (v : El.vec) :
        El.vec * t array =
      let proofs = Array.make (Array.length v) None in
      let out =
        Array.mapi
          (fun i ct ->
            let ct', pi = reenc_with_proof rng ~share ?coeff ~next_pk ~context ct in
            proofs.(i) <- Some pi;
            ct')
          v
      in
      (out, Array.map Option.get proofs)

    let to_bytes (pi : t) : string =
      let tag, rest =
        match pi.rerand_proof with
        | None -> ("\000", "")
        | Some rp -> ("\001", Dleq.to_bytes rp)
      in
      G.to_bytes pi.stripped ^ Dleq.to_bytes pi.strip_proof ^ tag ^ rest

    let of_bytes (s : string) : t option =
      match read_element s 0 with
      | None -> None
      | Some (stripped, off) -> begin
          match Dleq.of_bytes_at s off with
          | None -> None
          | Some (strip_proof, off) ->
              if off >= String.length s then None
              else begin
                match s.[off] with
                | '\000' when off + 1 = String.length s ->
                    Some { stripped; strip_proof; rerand_proof = None }
                | '\001' -> begin
                    match Dleq.of_bytes_at s (off + 1) with
                    | Some (rp, off') when off' = String.length s ->
                        Some { stripped; strip_proof; rerand_proof = Some rp }
                    | _ -> None
                  end
                | _ -> None
              end
        end

    let verify_vec ~eff_pk ~next_pk ~context ~(input : El.vec) ~(output : El.vec)
        (pis : t array) : bool =
      Array.length pis = Array.length input
      && Array.length output = Array.length input
      && begin
           let ok = ref true in
           Array.iteri
             (fun i pi ->
               if not (verify ~eff_pk ~next_pk ~context ~input:input.(i) ~output:output.(i) pi)
               then ok := false)
             pis;
           !ok
         end
  end
end
