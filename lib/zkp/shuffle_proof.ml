(* Verifiable shuffle of ElGamal vectors — a commitment-consistent proof of
   shuffle in the style of Terelius–Wikström (the production descendant of
   the Neff shuffle [59] the paper uses; see DESIGN.md for the
   substitution rationale).

   Statement: output = π(rerandomized input) under group key X, for a secret
   permutation π and secret exponents s. Structure:

   1. Pedersen commitments c_j = g^{r_j}·h_{π(j)} to the permutation, over
      generators h_1..h_n with unknown discrete logs ([G.of_hash]).
   2. Fiat–Shamir challenges u_1..u_n; the prover works with the permuted
      u'_i = u_{π⁻¹(i)} without revealing them.
   3. A chain ĉ_i = g^{ŝ_i}·ĉ_{i-1}^{u'_i} whose endpoint pins Π u'_i = Π u_i
      (Schwartz–Zippel: together with Σ-consistency from the commitments this
      forces u' to be a permutation of u).
   4. A sigma protocol, with one shared challenge v, proving consistent
      openings of:
        (A)  Π c_j^{u_j}          = g^{r̄}·Π h_i^{u'_i}
        (B)  Π c_j / Π h_i        = g^{r̂}
        (C)  ĉ_n / h^{Π u_j}      = g^{d}
        (D)  ĉ_i                  = g^{ŝ_i}·ĉ_{i-1}^{u'_i}        (each i)
        (E)  Π (e'_j)^{u_j}       = Enc(1; s̃)·Π e_i^{u'_i}        (each
             ciphertext column, both components)

   Messages are vector ciphertexts (width ≥ 1 group elements, one shared
   permutation); relation (E) is proven once per column. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (El : module type of Atom_elgamal.Elgamal.Make (G)) =
struct
  module S = G.Scalar

  type t = {
    perm_comm : G.t array; (* c_j *)
    chain : G.t array; (* ĉ_1..ĉ_n *)
    t_a : G.t;
    t_b : G.t;
    t_c : G.t;
    t_chain : G.t array; (* t̂_i *)
    t_er : G.t array; (* per column: announcement for the R component *)
    t_ec : G.t array; (* per column: announcement for the c component *)
    k_rbar : S.t;
    k_rhat : S.t;
    k_d : S.t;
    k_s : S.t array; (* per column *)
    k_prime : S.t array; (* n *)
    k_hat : S.t array; (* n *)
  }

  let generator_h (context : string) : G.t = G.of_hash ("shuffle-h\000" ^ context)
  let generator_hi (context : string) (i : int) : G.t =
    G.of_hash (Printf.sprintf "shuffle-hi\000%s\000%d" context i)

  let statement_transcript ~(pk : G.t) ~(context : string) (input : El.vec array)
      (output : El.vec array) : Transcript.t =
    let tr = Transcript.create ~domain:"shuffle-proof" in
    Transcript.add tr context;
    Transcript.add tr (G.to_bytes pk);
    Array.iter (fun v -> Transcript.add tr (El.vec_to_bytes v)) input;
    Array.iter (fun v -> Transcript.add tr (El.vec_to_bytes v)) output;
    tr

  let challenges_u (tr : Transcript.t) (n : int) : S.t array =
    Array.map G.hash_to_scalar (Transcript.digest_n tr n)

  (* width of the vector ciphertexts; all must agree. *)
  let width_of (vs : El.vec array) : int option =
    if Array.length vs = 0 then None
    else begin
      let w = Array.length vs.(0) in
      if w = 0 || Array.exists (fun v -> Array.length v <> w) vs then None else Some w
    end

  let prove ?pool (rng : Atom_util.Rng.t) ~(pk : G.t) ~(context : string)
      ~(input : El.vec array) ~(output : El.vec array)
      ~(witness : El.vec_shuffle_witness) : t =
    let n = Array.length input in
    let width = match width_of input with Some w -> w | None -> invalid_arg "Shuffle_proof.prove" in
    let perm = witness.El.vperm in
    let h = generator_h context in
    let hi = Atom_exec.Pool.tabulate ?pool n (generator_hi context) in
    (* 1. permutation commitments: g^{r_j}·h_{π(j)} as a unit-scalar MSM so
       curve backends spend one normalization, not two. Randomness is drawn
       before the (pooled) commitment loop, in the elementwise order. *)
    let r = Array.init n (fun _ -> S.random rng) in
    let perm_comm =
      Atom_exec.Pool.tabulate ?pool n (fun j ->
          G.msm [| (G.generator, r.(j)); (hi.(perm.(j)), S.one) |])
    in
    (* 2. challenges u, permuted u' *)
    let tr = statement_transcript ~pk ~context input output in
    Array.iter (fun c -> Transcript.add tr (G.to_bytes c)) perm_comm;
    let u = challenges_u tr n in
    let uprime = Array.make n S.zero in
    Array.iteri (fun j uj -> uprime.(perm.(j)) <- uj) u;
    (* 3. chain *)
    let shat = Array.init n (fun _ -> S.random rng) in
    let chain = Array.make n G.one in
    let d = ref S.zero in
    let prev = ref h in
    for i = 0 to n - 1 do
      chain.(i) <- G.pow2 G.generator shat.(i) !prev uprime.(i);
      d := S.add shat.(i) (S.mul uprime.(i) !d);
      prev := chain.(i)
    done;
    (* secrets of the aggregate relations *)
    let rbar = Array.fold_left ( fun acc (rj, uj) -> S.add acc (S.mul rj uj)) S.zero
        (Array.map2 (fun a b -> (a, b)) r u) in
    let rhat = Array.fold_left S.add S.zero r in
    let stilde =
      Array.init width (fun w ->
          let acc = ref S.zero in
          for j = 0 to n - 1 do
            acc := S.add !acc (S.mul witness.El.vrerands.(j).(w) u.(j))
          done;
          !acc)
    in
    (* 4. sigma announcements *)
    let w_rbar = S.random rng and w_rhat = S.random rng and w_d = S.random rng in
    let w_s = Array.init width (fun _ -> S.random rng) in
    let w_prime = Array.init n (fun _ -> S.random rng) in
    let w_hat = Array.init n (fun _ -> S.random rng) in
    let t_a =
      G.msm ?pool
        (Array.init (n + 1) (fun i ->
             if i = 0 then (G.generator, w_rbar) else (hi.(i - 1), w_prime.(i - 1))))
    in
    let t_b = G.pow_gen w_rhat in
    let t_c = G.pow_gen w_d in
    let t_chain =
      Atom_exec.Pool.tabulate ?pool n (fun i ->
          let prev = if i = 0 then h else chain.(i - 1) in
          G.pow2 G.generator w_hat.(i) prev w_prime.(i))
    in
    let t_er =
      Array.init width (fun w ->
          G.msm ?pool
            (Array.init (n + 1) (fun i ->
                 if i = 0 then (G.generator, w_s.(w))
                 else (input.(i - 1).(w).El.r, w_prime.(i - 1)))))
    in
    let t_ec =
      Array.init width (fun w ->
          G.msm ?pool
            (Array.init (n + 1) (fun i ->
                 if i = 0 then (pk, w_s.(w)) else (input.(i - 1).(w).El.c, w_prime.(i - 1)))))
    in
    (* 5. challenge v over everything *)
    Array.iter (fun c -> Transcript.add tr (G.to_bytes c)) chain;
    Transcript.add_list tr [ G.to_bytes t_a; G.to_bytes t_b; G.to_bytes t_c ];
    Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) t_chain;
    Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) t_er;
    Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) t_ec;
    let v = G.hash_to_scalar (Transcript.digest tr) in
    (* 6. responses *)
    let resp w x = S.add w (S.mul v x) in
    {
      perm_comm;
      chain;
      t_a;
      t_b;
      t_c;
      t_chain;
      t_er;
      t_ec;
      k_rbar = resp w_rbar rbar;
      k_rhat = resp w_rhat rhat;
      k_d = resp w_d !d;
      k_s = Array.init width (fun w -> resp w_s.(w) stilde.(w));
      k_prime = Array.init n (fun i -> resp w_prime.(i) uprime.(i));
      k_hat = Array.init n (fun i -> resp w_hat.(i) shat.(i));
    }

  let verify ?pool ~(pk : G.t) ~(context : string) ~(input : El.vec array)
      ~(output : El.vec array) (pi : t) : bool =
    let n = Array.length input in
    match width_of input with
    | None -> false
    | Some width ->
        Array.length output = n
        && width_of output = Some width
        && Array.length pi.perm_comm = n
        && Array.length pi.chain = n
        && Array.length pi.t_chain = n
        && Array.length pi.k_prime = n
        && Array.length pi.k_hat = n
        && Array.length pi.t_er = width
        && Array.length pi.t_ec = width
        && Array.length pi.k_s = width
        && (not (Array.exists (fun v -> Array.exists (fun ct -> Option.is_some ct.El.y) v) input))
        && (not (Array.exists (fun v -> Array.exists (fun ct -> Option.is_some ct.El.y) v) output))
        && begin
             let h = generator_h context in
             let hi = Atom_exec.Pool.tabulate ?pool n (generator_hi context) in
             let tr = statement_transcript ~pk ~context input output in
             Array.iter (fun c -> Transcript.add tr (G.to_bytes c)) pi.perm_comm;
             let u = challenges_u tr n in
             Array.iter (fun c -> Transcript.add tr (G.to_bytes c)) pi.chain;
             Transcript.add_list tr [ G.to_bytes pi.t_a; G.to_bytes pi.t_b; G.to_bytes pi.t_c ];
             Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) pi.t_chain;
             Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) pi.t_er;
             Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) pi.t_ec;
             let v = G.hash_to_scalar (Transcript.digest tr) in
             (* Batched verification. Each relation (A)–(E) is rearranged
                into a product that must equal the identity, scaled by an
                independent transcript-derived coefficient ρ, and the whole
                system is folded into ONE multi-scalar multiplication: a
                curve backend pays a single Pippenger run over ~(6+4w)·n
                points instead of ~6n full exponentiations. Soundness is
                Schwartz–Zippel: the ρ are derived from the transcript
                *after* every prover message is absorbed, so a violated
                relation survives the random linear combination with
                probability 1/|scalar field|.

                The rearranged identity forms (all checked as Π = 1):
                  (A)   g^{k_rbar} · Π hi_i^{k'_i} · Π c_j^{−v·u_j} · t_a^{−1}
                  (B)   g^{k_rhat} · Π c_j^{−v} · Π hi_i^{v} · t_b^{−1}
                  (C)   g^{k_d} · ĉ_{n−1}^{−v} · h^{v·Πu} · t_c^{−1}
                  (D_i) g^{k̂_i} · prev_i^{k'_i} · ĉ_i^{−v} · t̂_i^{−1}
                  (E_w) g^{k_s}·Π in_r^{k'}·Π out_r^{−v·u}·t_er^{−1}  (and
                        the c-component twin with pk^{k_s} and t_ec)

                Exponents on shared bases (g, pk, h, hi, c_j, ĉ_i) are
                folded in scalar arithmetic before the group ever sees
                them, so each base appears once in the MSM. *)
             Transcript.add tr "batch-verify";
             let rho =
               Array.map G.hash_to_scalar (Transcript.digest_n tr (3 + n + (2 * width)))
             in
             let rho_a = rho.(0) and rho_b = rho.(1) and rho_c = rho.(2) in
             let rho_d i = rho.(3 + i) in
             let rho_er w = rho.(3 + n + (2 * w)) in
             let rho_ec w = rho.(3 + n + (2 * w) + 1) in
             let vu = Array.map (S.mul v) u in
             let u_prod = Array.fold_left S.mul S.one u in
             let terms = ref [] in
             let push base k = terms := (base, k) :: !terms in
             let gen_k = ref S.zero in
             let add_gen k = gen_k := S.add !gen_k k in
             (* (A) + (B): hi and perm_comm each collect both relations. *)
             add_gen (S.mul rho_a pi.k_rbar);
             add_gen (S.mul rho_b pi.k_rhat);
             for i = 0 to n - 1 do
               push hi.(i) (S.add (S.mul rho_a pi.k_prime.(i)) (S.mul rho_b v));
               push pi.perm_comm.(i)
                 (S.neg (S.add (S.mul rho_a vu.(i)) (S.mul rho_b v)))
             done;
             push pi.t_a (S.neg rho_a);
             push pi.t_b (S.neg rho_b);
             (* (C) + (D): the h and chain exponents fold C's endpoint term,
                D_i's own −v term and D_{i+1}'s prev term. *)
             add_gen (S.mul rho_c pi.k_d);
             push pi.t_c (S.neg rho_c);
             let h_k = ref (S.mul rho_c (S.mul v u_prod)) in
             h_k := S.add !h_k (S.mul (rho_d 0) pi.k_prime.(0));
             for i = 0 to n - 1 do
               let rd = rho_d i in
               add_gen (S.mul rd pi.k_hat.(i));
               let ck = ref (S.neg (S.mul rd v)) in
               if i = n - 1 then ck := S.sub !ck (S.mul rho_c v)
               else ck := S.add !ck (S.mul (rho_d (i + 1)) pi.k_prime.(i + 1));
               push pi.chain.(i) !ck;
               push pi.t_chain.(i) (S.neg rd)
             done;
             push h !h_k;
             (* (E) both components per column; pk collects every column. *)
             let pk_k = ref S.zero in
             for w = 0 to width - 1 do
               let rr = rho_er w and rc = rho_ec w in
               add_gen (S.mul rr pi.k_s.(w));
               pk_k := S.add !pk_k (S.mul rc pi.k_s.(w));
               for i = 0 to n - 1 do
                 push input.(i).(w).El.r (S.mul rr pi.k_prime.(i));
                 push input.(i).(w).El.c (S.mul rc pi.k_prime.(i));
                 push output.(i).(w).El.r (S.neg (S.mul rr vu.(i)));
                 push output.(i).(w).El.c (S.neg (S.mul rc vu.(i)))
               done;
               push pi.t_er.(w) (S.neg rr);
               push pi.t_ec.(w) (S.neg rc)
             done;
             push pk !pk_k;
             push G.generator !gen_k;
             (* The whole system rides one (pooled) MSM: ~(6+4w)Â·n points. *)
             G.is_one (G.msm ?pool (Array.of_list !terms))
           end

  (* ---- Serialization ----

     Wire layout: u32 n, u32 width, then the fixed-width fields in a fixed
     order. Group elements and scalars use the backend's canonical
     encodings, so decoding validates every element. *)

  let scalar_bytes = String.length (S.to_bytes S.zero)

  let u32 (n : int) : string =
    String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

  let to_bytes (pi : t) : string =
    let buf = Buffer.create 4096 in
    let el e = Buffer.add_string buf (G.to_bytes e) in
    let sc x = Buffer.add_string buf (S.to_bytes x) in
    Buffer.add_string buf (u32 (Array.length pi.perm_comm));
    Buffer.add_string buf (u32 (Array.length pi.t_er));
    Array.iter el pi.perm_comm;
    Array.iter el pi.chain;
    el pi.t_a;
    el pi.t_b;
    el pi.t_c;
    Array.iter el pi.t_chain;
    Array.iter el pi.t_er;
    Array.iter el pi.t_ec;
    sc pi.k_rbar;
    sc pi.k_rhat;
    sc pi.k_d;
    Array.iter sc pi.k_s;
    Array.iter sc pi.k_prime;
    Array.iter sc pi.k_hat;
    Buffer.contents buf

  let of_bytes (s : string) : t option =
    let pos = ref 0 in
    let fail = ref false in
    let read_u32 () =
      if !pos + 4 > String.length s then begin
        fail := true;
        0
      end
      else begin
        let v =
          (Char.code s.[!pos] lsl 24)
          lor (Char.code s.[!pos + 1] lsl 16)
          lor (Char.code s.[!pos + 2] lsl 8)
          lor Char.code s.[!pos + 3]
        in
        pos := !pos + 4;
        v
      end
    in
    let read_el () =
      if !fail || !pos + G.element_bytes > String.length s then begin
        fail := true;
        G.one
      end
      else begin
        match G.of_bytes (String.sub s !pos G.element_bytes) with
        | Some e ->
            pos := !pos + G.element_bytes;
            e
        | None ->
            fail := true;
            G.one
      end
    in
    let read_sc () =
      if !fail || !pos + scalar_bytes > String.length s then begin
        fail := true;
        S.zero
      end
      else begin
        let v = S.of_bytes_mod (String.sub s !pos scalar_bytes) in
        pos := !pos + scalar_bytes;
        v
      end
    in
    let n = read_u32 () in
    let width = read_u32 () in
    if !fail || n < 1 || n > 1_000_000 || width < 1 || width > 4096 then None
    else begin
      let els k = Array.init k (fun _ -> read_el ()) in
      let scs k = Array.init k (fun _ -> read_sc ()) in
      let perm_comm = els n in
      let chain = els n in
      let t_a = read_el () in
      let t_b = read_el () in
      let t_c = read_el () in
      let t_chain = els n in
      let t_er = els width in
      let t_ec = els width in
      let k_rbar = read_sc () in
      let k_rhat = read_sc () in
      let k_d = read_sc () in
      let k_s = scs width in
      let k_prime = scs n in
      let k_hat = scs n in
      if !fail || !pos <> String.length s then None
      else
        Some
          {
            perm_comm;
            chain;
            t_a;
            t_b;
            t_c;
            t_chain;
            t_er;
            t_ec;
            k_rbar;
            k_rhat;
            k_d;
            k_s;
            k_prime;
            k_hat;
          }
    end
end
