(* Per-node intake: bounded epoch queues with explicit backpressure and
   exactly-once admission.

   The intake owns *admission state* — token buckets, the blob-digest
   dedup table, per-epoch queue counts — while the embedding node owns the
   admitted payloads (decoded onion units) via the [validate] callback:
   validation and stashing happen in one pass over the blob, and this
   module stays independent of the group backend.

   Exactly-once discipline: a client retries a submission until it sees an
   ack, so the same blob may arrive many times (the first ack can be lost,
   the chaos layer may drop either direction). The dedup table maps blob
   digest → the epoch it was admitted into, and a retry of an admitted
   blob is re-acked with the *original* epoch, without charging tokens or
   re-validating. Dedup runs before everything else — in particular before
   the protocol-layer validator, whose replay tracking would otherwise
   reject the retry as a replay and turn a lost ack into a lost message.

   Epoch pipelining: [epoch t] is the epoch currently collecting. [seal]
   (driven by the coordinator's barrier) closes an epoch and advances
   collection to the next one, so epoch k's mixing overlaps epoch k+1's
   collection. Dedup entries are kept for [dedup_window] sealed epochs —
   a client that is still retrying a submission that long after admission
   has already timed out at the application layer. *)

type status =
  | Accepted of { epoch : int; queue_len : int }
  | Backpressure of { retry_ms : int; queue_len : int }
  | Rejected of { reason : string; queue_len : int }

let dedup_window = 8

type t = {
  adm : Admission.t;
  policy : Admission.policy;
  mutable epoch : int;  (* collecting epoch *)
  counts : (int, int ref) Hashtbl.t;  (* epoch -> admitted count *)
  seen : (string, int) Hashtbl.t;  (* blob digest -> admitted epoch *)
  by_epoch : (int, string list ref) Hashtbl.t;  (* for dedup purging *)
  m_accepted : Atom_obs.Metrics.counter;
  m_rejected : Atom_obs.Metrics.counter;
  m_backpressure : Atom_obs.Metrics.counter;
  m_dedup_hits : Atom_obs.Metrics.counter;
  m_sealed : Atom_obs.Metrics.counter;
  g_queue : Atom_obs.Metrics.gauge;
  g_epoch : Atom_obs.Metrics.gauge;
}

let create ?(obs = Atom_obs.Ctx.noop) ?(policy = Admission.default_policy) () : t =
  let reg = Atom_obs.Ctx.metrics obs in
  {
    adm = Admission.create ~obs policy;
    policy;
    epoch = 0;
    counts = Hashtbl.create 8;
    seen = Hashtbl.create 1024;
    by_epoch = Hashtbl.create 8;
    m_accepted = Atom_obs.Metrics.counter reg "ingest.accepted";
    m_rejected = Atom_obs.Metrics.counter reg "ingest.rejected";
    m_backpressure = Atom_obs.Metrics.counter reg "ingest.backpressure";
    m_dedup_hits = Atom_obs.Metrics.counter reg "ingest.dedup_hits";
    m_sealed = Atom_obs.Metrics.counter reg "ingest.epochs_sealed";
    g_queue = Atom_obs.Metrics.gauge reg "ingest.queue_depth";
    g_epoch = Atom_obs.Metrics.gauge reg "ingest.collecting_epoch";
  }

let policy (t : t) : Admission.policy = t.policy
let epoch (t : t) : int = t.epoch

let queue_len (t : t) : int =
  match Hashtbl.find_opt t.counts t.epoch with Some c -> !c | None -> 0

let epoch_count (t : t) ~(epoch : int) : int =
  match Hashtbl.find_opt t.counts epoch with Some c -> !c | None -> 0

(* [validate] decodes + verifies the blob and, on success, stashes its
   payload under [epoch t] — one pass, caller-owned storage. *)
let submit (t : t) ~(now : float) ~(client : int) ~(blob : string) ~(pow : string)
    ~(validate : epoch:int -> string -> bool) : status =
  let ql = queue_len t in
  let digest = Atom_hash.Sha256.digest blob in
  match Hashtbl.find_opt t.seen digest with
  | Some admitted_epoch ->
      (* Idempotent re-ack: the client's first ack was lost. *)
      Atom_obs.Metrics.incr t.m_dedup_hits;
      Accepted { epoch = admitted_epoch; queue_len = ql }
  | None -> (
      match Admission.check t.adm ~now ~client ~blob ~pow with
      | Admission.Deny reason ->
          Atom_obs.Metrics.incr t.m_rejected;
          Rejected { reason; queue_len = ql }
      | Admission.Backoff retry_ms ->
          Atom_obs.Metrics.incr t.m_backpressure;
          Backpressure { retry_ms; queue_len = ql }
      | Admission.Admit ->
          if ql >= t.policy.Admission.queue_cap then begin
            (* Queue full: explicit backpressure, retry next epoch. *)
            Atom_obs.Metrics.incr t.m_backpressure;
            Backpressure { retry_ms = 250; queue_len = ql }
          end
          else if not (validate ~epoch:t.epoch blob) then begin
            Atom_obs.Metrics.incr t.m_rejected;
            Rejected { reason = "invalid submission"; queue_len = ql }
          end
          else begin
            let c =
              match Hashtbl.find_opt t.counts t.epoch with
              | Some c -> c
              | None ->
                  let c = ref 0 in
                  Hashtbl.add t.counts t.epoch c;
                  c
            in
            incr c;
            Hashtbl.replace t.seen digest t.epoch;
            let lst =
              match Hashtbl.find_opt t.by_epoch t.epoch with
              | Some l -> l
              | None ->
                  let l = ref [] in
                  Hashtbl.add t.by_epoch t.epoch l;
                  l
            in
            lst := digest :: !lst;
            Atom_obs.Metrics.incr t.m_accepted;
            Atom_obs.Metrics.set t.g_queue (float_of_int !c);
            Accepted { epoch = t.epoch; queue_len = !c }
          end)

(* Close [epoch] and advance collection past it (idempotent; barriers can
   be retransmitted). Returns the admitted count for the sealed epoch. *)
let seal (t : t) ~(epoch : int) : int =
  let n = epoch_count t ~epoch in
  if t.epoch <= epoch then begin
    t.epoch <- epoch + 1;
    Atom_obs.Metrics.incr t.m_sealed;
    Atom_obs.Metrics.set t.g_epoch (float_of_int t.epoch);
    Atom_obs.Metrics.set t.g_queue (float_of_int (queue_len t))
  end;
  (* Purge dedup entries old enough that no client still retries them. *)
  let purge = epoch - dedup_window in
  (match Hashtbl.find_opt t.by_epoch purge with
  | Some l ->
      List.iter (Hashtbl.remove t.seen) !l;
      Hashtbl.remove t.by_epoch purge;
      Hashtbl.remove t.counts purge
  | None -> ());
  n
