(** Per-node intake: bounded epoch queues, explicit backpressure, and
    exactly-once admission via blob-digest dedup with idempotent re-acks.
    The embedding node owns admitted payloads through the [validate]
    callback; this module owns admission state only. *)

type status =
  | Accepted of { epoch : int; queue_len : int }
  | Backpressure of { retry_ms : int; queue_len : int }
  | Rejected of { reason : string; queue_len : int }

val dedup_window : int
(** Sealed epochs a blob digest stays deduplicable for. *)

type t

val create : ?obs:Atom_obs.Ctx.t -> ?policy:Admission.policy -> unit -> t
val policy : t -> Admission.policy

val epoch : t -> int
(** The epoch currently collecting. *)

val queue_len : t -> int
val epoch_count : t -> epoch:int -> int

val submit :
  t ->
  now:float ->
  client:int ->
  blob:string ->
  pow:string ->
  validate:(epoch:int -> string -> bool) ->
  status
(** Order: dedup (re-ack with the original epoch, no token charge) →
    size/PoW/rate admission → queue bound → [validate] (which decodes,
    verifies and stashes in one pass). *)

val seal : t -> epoch:int -> int
(** Close [epoch], advance collection past it (idempotent), purge dedup
    state older than {!dedup_window}; returns the sealed epoch's admitted
    count. *)
