(** Admission control for the client submission plane: per-client token
    buckets plus optional hashcash proof-of-work, both clock-agnostic
    (time flows in through [now]). *)

type policy = {
  rate : float;  (** Sustained submissions/sec per client. *)
  burst : float;  (** Token-bucket depth. *)
  pow_bits : int;  (** Hashcash difficulty in leading zero bits; 0 disables. *)
  queue_cap : int;  (** Per-epoch intake queue bound (enforced by {!Intake}). *)
  max_blob : int;  (** Largest acceptable submission blob. *)
  max_clients : int;  (** Per-client accounting table bound. *)
}

val default_policy : policy

type verdict =
  | Admit
  | Backoff of int  (** Over rate; retry after this many milliseconds. *)
  | Deny of string  (** Structurally unacceptable; retrying won't help. *)

val leading_zero_bits : string -> int

val pow_check : bits:int -> blob:string -> pow:string -> bool
(** SHA-256(tag ‖ blob ‖ nonce) carries ≥ [bits] leading zero bits; the
    binding to [blob] stops nonce reuse across submissions. *)

val pow_solve : bits:int -> blob:string -> string
(** Client-side solver (load generator / bench): expected 2^bits hashes. *)

type t

val create : ?obs:Atom_obs.Ctx.t -> policy -> t
val clients_tracked : t -> int
val check : t -> now:float -> client:int -> blob:string -> pow:string -> verdict
