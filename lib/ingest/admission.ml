(* Admission control for the client submission plane.

   Two abuse-resistance mechanisms, composable and independently tunable
   (both are standard for anonymous intake — Dissent's accountability
   argument applies: an anonymity system that accepts unmetered writes
   invites its own jamming):

   - a per-client token bucket: sustained [rate] submissions/sec with
     [burst] depth, refilled continuously from the caller-supplied clock
     (no timers of our own — virtual time in the simulator, wall time on
     TCP, both flow through [now]);
   - optional hashcash proof-of-work: SHA-256(tag ‖ blob ‖ nonce) must
     carry [pow_bits] leading zero bits, binding the work to the exact
     submission bytes so a nonce cannot be reused across onions.

   The per-client table is bounded: once [max_clients] distinct ids are
   tracked, unknown ids are denied outright — an attacker minting client
   ids exhausts its admission quota, not this process's heap. *)

type policy = {
  rate : float;  (* sustained submissions/sec per client *)
  burst : float;  (* token-bucket depth *)
  pow_bits : int;  (* hashcash difficulty; 0 disables *)
  queue_cap : int;  (* per-epoch intake queue bound (enforced by Intake) *)
  max_blob : int;  (* largest acceptable submission blob *)
  max_clients : int;  (* per-client accounting table bound *)
}

let default_policy =
  {
    rate = 10.0;
    burst = 20.0;
    pow_bits = 0;
    queue_cap = 4096;
    max_blob = 1 lsl 20;
    max_clients = 1 lsl 16;
  }

type verdict =
  | Admit
  | Backoff of int  (** Over rate; retry after this many milliseconds. *)
  | Deny of string  (** Structurally unacceptable; retrying won't help. *)

(* ---- Hashcash ---- *)

let pow_tag = "atom-pow/1"

let leading_zero_bits (s : string) : int =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else
      let b = Char.code s.[i] in
      if b = 0 then go (i + 1) (acc + 8)
      else
        let rec top k = if b land (0x80 lsr k) = 0 then top (k + 1) else k in
        acc + top 0
  in
  go 0 0

let pow_check ~(bits : int) ~(blob : string) ~(pow : string) : bool =
  bits <= 0
  || leading_zero_bits (Atom_hash.Sha256.digest (pow_tag ^ blob ^ pow)) >= bits

(* Client-side solver (load generator, bench). Deterministic: counts
   nonces up from 0, so the expected work is 2^bits hashes. *)
let pow_solve ~(bits : int) ~(blob : string) : string =
  if bits <= 0 then ""
  else begin
    let rec go i =
      let nonce = string_of_int i in
      if pow_check ~bits ~blob ~pow:nonce then nonce else go (i + 1)
    in
    go 0
  end

(* ---- Per-client token buckets ---- *)

type bucket = { mutable tokens : float; mutable last : float }

type t = {
  policy : policy;
  buckets : (int, bucket) Hashtbl.t;
  m_admitted : Atom_obs.Metrics.counter;
  m_rate_limited : Atom_obs.Metrics.counter;
  m_pow_rejected : Atom_obs.Metrics.counter;
  m_denied : Atom_obs.Metrics.counter;
}

let create ?(obs = Atom_obs.Ctx.noop) (policy : policy) : t =
  let reg = Atom_obs.Ctx.metrics obs in
  {
    policy;
    buckets = Hashtbl.create 256;
    m_admitted = Atom_obs.Metrics.counter reg "ingest.admitted";
    m_rate_limited = Atom_obs.Metrics.counter reg "ingest.rate_limited";
    m_pow_rejected = Atom_obs.Metrics.counter reg "ingest.pow_rejected";
    m_denied = Atom_obs.Metrics.counter reg "ingest.denied";
  }

let clients_tracked (t : t) : int = Hashtbl.length t.buckets

let check (t : t) ~(now : float) ~(client : int) ~(blob : string) ~(pow : string) : verdict =
  let p = t.policy in
  if String.length blob > p.max_blob then begin
    Atom_obs.Metrics.incr t.m_denied;
    Deny "blob exceeds max size"
  end
  else if not (pow_check ~bits:p.pow_bits ~blob ~pow) then begin
    Atom_obs.Metrics.incr t.m_pow_rejected;
    Deny "proof-of-work check failed"
  end
  else begin
    let bucket =
      match Hashtbl.find_opt t.buckets client with
      | Some b -> Some b
      | None ->
          if Hashtbl.length t.buckets >= p.max_clients then None
          else begin
            let b = { tokens = p.burst; last = now } in
            Hashtbl.add t.buckets client b;
            Some b
          end
    in
    match bucket with
    | None ->
        Atom_obs.Metrics.incr t.m_denied;
        Deny "client table full"
    | Some b ->
        (* Refill continuously; clocks that jump backwards (coarse virtual
           time) must not mint tokens, hence the max. *)
        let dt = Float.max 0. (now -. b.last) in
        b.tokens <- Float.min p.burst (b.tokens +. (dt *. p.rate));
        b.last <- now;
        if b.tokens >= 1.0 then begin
          b.tokens <- b.tokens -. 1.0;
          Atom_obs.Metrics.incr t.m_admitted;
          Admit
        end
        else begin
          Atom_obs.Metrics.incr t.m_rate_limited;
          let wait_s = (1.0 -. b.tokens) /. Float.max 1e-9 p.rate in
          Backoff (max 1 (int_of_float (ceil (wait_s *. 1000.))))
        end
  end
