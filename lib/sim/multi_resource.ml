(* A counting semaphore: a resource with [capacity] identical slots.

   Models a multi-core machine serving several anytrust-group pipelines at
   once (§4.7): each single-threaded job occupies one core-slot; when all
   cores are busy, jobs queue FIFO. Core occupancy is observable: jobs and
   their queueing delay feed the engine's metrics registry, and
   [core_seconds] totals the busy time charged through this semaphore. *)

type t = {
  engine : Engine.t;
  capacity : int;
  mutable in_use : int;
  waiters : (unit -> unit) Queue.t;
  mutable total_core_time : float;
  m_jobs : Atom_obs.Metrics.counter;
  m_job_seconds : Atom_obs.Metrics.histogram;
  m_queue_wait : Atom_obs.Metrics.histogram;
}

let create (engine : Engine.t) ~(capacity : int) : t =
  if capacity < 1 then invalid_arg "Multi_resource.create: capacity must be >= 1";
  let reg = Atom_obs.Ctx.metrics (Engine.obs engine) in
  {
    engine;
    capacity;
    in_use = 0;
    waiters = Queue.create ();
    total_core_time = 0.;
    m_jobs = Atom_obs.Metrics.counter reg "cores.jobs";
    m_job_seconds = Atom_obs.Metrics.histogram reg ~buckets:20 ~lo:0. ~hi:10. "cores.job_seconds";
    m_queue_wait = Atom_obs.Metrics.histogram reg ~buckets:20 ~lo:0. ~hi:10. "cores.queue_wait_seconds";
  }

let capacity (r : t) : int = r.capacity
let in_use (r : t) : int = r.in_use

let core_seconds (r : t) : float = r.total_core_time

let acquire (r : t) : unit =
  if r.in_use < r.capacity then r.in_use <- r.in_use + 1
  else begin
    Engine.suspend (fun wake -> Queue.push wake r.waiters)
    (* Ownership of a slot is transferred directly by [release]. *)
  end

let release (r : t) : unit =
  if r.in_use <= 0 then invalid_arg "Multi_resource.release: nothing held";
  match Queue.take_opt r.waiters with
  | Some wake -> Engine.schedule r.engine ~delay:0. wake (* slot handed over; in_use unchanged *)
  | None -> r.in_use <- r.in_use - 1

let with_slot (r : t) (f : unit -> 'a) : 'a =
  acquire r;
  match f () with
  | v ->
      release r;
      v
  | exception e ->
      release r;
      raise e

(* Run a single-core job of [seconds]; blocks until a slot frees up. *)
let job (r : t) (seconds : float) : unit =
  if seconds > 0. then begin
    let t0 = Engine.now r.engine in
    with_slot r (fun () ->
        Atom_obs.Metrics.incr r.m_jobs;
        Atom_obs.Metrics.observe r.m_queue_wait (Engine.now r.engine -. t0);
        Atom_obs.Metrics.observe r.m_job_seconds seconds;
        r.total_core_time <- r.total_core_time +. seconds;
        Engine.sleep r.engine seconds)
  end
