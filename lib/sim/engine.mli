(** Deterministic discrete-event engine with cooperative processes.

    Events fire in (virtual-time, sequence-number) order, so identical
    schedules replay identically. Processes are plain functions run under an
    effect handler: {!suspend} captures the continuation and hands a wake-up
    thunk to a registrar (a timer, a mailbox, a resource queue). *)

type t

val create : ?obs:Atom_obs.Ctx.t -> unit -> t
(** [obs] (default {!Atom_obs.Ctx.noop}) receives the engine's telemetry:
    event/cancel counters land in its registry, and its tracer's clock is
    bound to this engine's virtual time, so spans recorded downstream are
    virtual-time-stamped and traces replay byte-identically. *)

val now : t -> float
(** Current virtual time in seconds. *)

val obs : t -> Atom_obs.Ctx.t
(** The observability context bound at {!create}; simulator components
    (network, machines) record against it. *)

val events_run : t -> int

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Enqueue a callback [delay] seconds from now.
    @raise Invalid_argument on negative or NaN delay. *)

type timer
(** Handle to a scheduled callback that may still be cancelled. *)

val schedule_timer : t -> delay:float -> (unit -> unit) -> timer
(** Like {!schedule}, but returns a handle usable with {!cancel}. *)

val cancel : timer -> unit
(** Discard a pending timer. A cancelled timer never fires, does not
    advance the virtual clock, and is not counted in {!events_run} —
    timeouts that lose the race leave no trace in the reported latency
    (discards are tallied in the ["engine.cancels_discarded"] metric). *)

val run : ?until:float -> t -> float
(** Drain the event queue (or stop at [until]); returns the final virtual
    time. *)

val spawn : t -> ?delay:float -> (unit -> unit) -> unit
(** Start a process. Inside it, {!sleep}, {!Mailbox.recv},
    {!Resource.acquire} etc. may suspend. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process and passes its wake-up
    thunk to [register]. Must be called from within a process. *)

val sleep : t -> float -> unit
(** Suspend the calling process for a virtual duration. *)
