(** A simulated server: cores, NIC bandwidth, latency cluster, liveness.

    Two compute disciplines:
    - {!compute}: single-tenant Amdahl charging — the job owns the machine
      and splits its parallel part across all cores.
    - {!job}: one single-threaded job occupying one core-slot; used when a
      machine serves many anytrust groups concurrently (§4.7). *)

type t = {
  id : int;
  cores : int;
  bandwidth : float; (** bytes/second *)
  cluster : int;
  cpu : Resource.t;
  nic : Resource.t;
  slots : Multi_resource.t;
  mutable alive : bool;
}

val create : Engine.t -> id:int -> cores:int -> bandwidth:float -> cluster:int -> t

val compute : Engine.t -> t -> serial:float -> parallel:float -> unit
(** Occupies the whole machine for serial + parallel/cores seconds. *)

val job : t -> seconds:float -> unit
(** Occupies one core for [seconds]. *)

val fail : t -> unit
val recover : t -> unit

val core_seconds : t -> float
(** Busy core-time charged to this machine's slots so far. *)

val publish_fleet : Atom_obs.Metrics.t -> t array -> unit
(** Record fleet core-occupancy gauges (["fleet.*"]): machine count, total
    and peak per-machine core-seconds, busiest machine id. No-op on a
    disabled registry. *)

val paper_cores : Atom_util.Rng.t -> int
(** Sample the §6.2 fleet mix: 80% 4-core, 10% 8, 5% 16, 5% 32. *)

val paper_bandwidth : Atom_util.Rng.t -> float
(** Sample the Tor-derived bandwidth distribution of §6.2 (bytes/s). *)
