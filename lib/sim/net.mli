(** Network model: clustered pairwise latency (40 ms intra, 80–160 ms
    inter, as injected by the paper with tc — Figure 8), bandwidth-limited
    transfers serialized on the sender's NIC, per-directed-pair TLS
    connection setup (one RTT + a CPU charge on first use), and
    retransmission with exponential backoff toward dead or lossy peers.

    Message loss is sampled from a dedicated seeded RNG, so lossy runs
    replay bit-identically; retransmits, random losses and terminal drops
    are all counted. *)

type t = {
  engine : Engine.t;
  intra_latency : float;
  inter_min : float;
  inter_max : float;
  tls_cpu : float;
  loss_prob : float;
  loss_rng : Atom_util.Rng.t;
  max_retries : int;
  retry_backoff : float;
  established : (int * int, unit) Hashtbl.t;
  mutable connections_opened : int;
  mutable bytes_sent : float;
  mutable retransmits : int;
  mutable messages_lost : int;
  mutable messages_dropped : int;
  mutable bytes_dropped : float;
  reg : Atom_obs.Metrics.t;
  m_sends : Atom_obs.Metrics.counter;
  m_bytes : Atom_obs.Metrics.counter;
  m_retransmits : Atom_obs.Metrics.counter;
  m_losses : Atom_obs.Metrics.counter;
  m_drops : Atom_obs.Metrics.counter;
  m_connections : Atom_obs.Metrics.counter;
  m_send_bytes : Atom_obs.Metrics.histogram;
}

val default_tls_cpu : float
val default_max_retries : int
val default_retry_backoff : float

val create :
  ?intra_latency:float ->
  ?inter_min:float ->
  ?inter_max:float ->
  ?tls_cpu:float ->
  ?loss_prob:float ->
  ?loss_seed:int ->
  ?max_retries:int ->
  ?retry_backoff:float ->
  Engine.t ->
  t

val latency : t -> Machine.t -> Machine.t -> float
(** One-way propagation latency; deterministic and symmetric per cluster
    pair. *)

val transfer_time : Machine.t -> Machine.t -> bytes:float -> float
(** Serialization time at min(sender, receiver) bandwidth. *)

val ensure_connection : t -> Machine.t -> Machine.t -> unit
(** Charge the TLS handshake on first use of a directed pair. Must run
    inside a process. *)

val send : t -> src:Machine.t -> dst:Machine.t -> bytes:float -> 'a Mailbox.t -> 'a -> unit
(** Blocking send (back-pressure on the sender's NIC); delivery is
    scheduled after propagation. Transmissions toward a dead machine (or
    eaten by random loss) are retried with exponential backoff up to
    [max_retries] times, then dropped and counted in [messages_dropped] /
    [bytes_dropped]. Must run inside a process. *)

val send_tracked :
  t -> src:Machine.t -> dst:Machine.t -> bytes:float -> 'a Mailbox.t -> 'a -> bool
(** Like {!send}, but reports whether delivery was scheduled ([false] means
    the message was dropped after exhausting retries). *)

val send_async : t -> src:Machine.t -> dst:Machine.t -> bytes:float -> 'a Mailbox.t -> 'a -> unit
(** Fire-and-forget wrapper usable outside a process. *)
