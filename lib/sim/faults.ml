(* Deterministic fault injection.

   A fault *plan* is plain data: fail/recover actions against specific
   machines at specific virtual times. [install] compiles the plan onto the
   engine's event queue, so injections interleave with protocol events in
   (time, seq) order and every run replays bit-identically from the same
   plan. Random plans (an f-fraction sample of the fleet) draw from a
   caller-seeded RNG at plan-*construction* time, never at fire time, which
   keeps the schedule independent of engine state.

   Whole-machine fail-stop is the paper's §4.5 fault model; probabilistic
   per-message loss lives in [Net] (see [Net.create ~loss_prob]) because it
   is a property of links, not machines. *)

type action = Fail of int | Recover of int

type event = { at : float; action : action }

type plan = event list

let fail ~(at : float) (sid : int) : event = { at; action = Fail sid }
let recover ~(at : float) (sid : int) : event = { at; action = Recover sid }

let fail_machines ~(at : float) (sids : int array) : plan =
  Array.to_list (Array.map (fun sid -> fail ~at sid) sids)

let recover_machines ~(at : float) (sids : int array) : plan =
  Array.to_list (Array.map (fun sid -> recover ~at sid) sids)

(* A random f-fraction of [n] machines, sampled without replacement by
   partial Fisher–Yates from [rng]. Deterministic in the RNG state. *)
let sample_fraction (rng : Atom_util.Rng.t) ~(fraction : float) ~(n : int) : int array =
  if fraction < 0. || fraction > 1. then invalid_arg "Faults.sample_fraction: bad fraction";
  let count = min n (int_of_float (Float.ceil (fraction *. float_of_int n))) in
  let pool = Array.init n Fun.id in
  for i = 0 to count - 1 do
    let j = i + Atom_util.Rng.int_below rng (n - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 count

let fail_fraction (rng : Atom_util.Rng.t) ~(at : float) ~(fraction : float) ~(n : int) : plan =
  fail_machines ~at (sample_fraction rng ~fraction ~n)

(* Sort by time, stable over the original order for equal times, so a plan
   assembled from several builders injects deterministically. *)
let normalize (p : plan) : plan = List.stable_sort (fun a b -> Float.compare a.at b.at) p

type t = {
  mutable failures_injected : int;
  mutable recoveries_injected : int;
  plan_size : int;
}

let install (engine : Engine.t) ~(machines : Machine.t array) ?(on_fail = fun (_ : int) -> ())
    ?(on_recover = fun (_ : int) -> ()) (plan : plan) : t =
  let t = { failures_injected = 0; recoveries_injected = 0; plan_size = List.length plan } in
  List.iter
    (fun ev ->
      match ev.action with
      | Fail sid ->
          if sid < 0 || sid >= Array.length machines then
            invalid_arg (Printf.sprintf "Faults.install: no machine %d" sid);
          Engine.schedule engine ~delay:ev.at (fun () ->
              if machines.(sid).Machine.alive then begin
                Machine.fail machines.(sid);
                t.failures_injected <- t.failures_injected + 1;
                Atom_obs.Trace.instant
                  (Atom_obs.Ctx.tracer (Engine.obs engine))
                  ~cat:"fault" ~tid:0
                  ~args:[ ("machine", Atom_obs.Trace.I sid) ]
                  "fail";
                Atom_obs.Log.debug "faults: machine %d failed" sid;
                on_fail sid
              end)
      | Recover sid ->
          if sid < 0 || sid >= Array.length machines then
            invalid_arg (Printf.sprintf "Faults.install: no machine %d" sid);
          Engine.schedule engine ~delay:ev.at (fun () ->
              if not machines.(sid).Machine.alive then begin
                Machine.recover machines.(sid);
                t.recoveries_injected <- t.recoveries_injected + 1;
                Atom_obs.Trace.instant
                  (Atom_obs.Ctx.tracer (Engine.obs engine))
                  ~cat:"fault" ~tid:0
                  ~args:[ ("machine", Atom_obs.Trace.I sid) ]
                  "recover";
                Atom_obs.Log.debug "faults: machine %d recovered" sid;
                on_recover sid
              end))
    (normalize plan);
  t
