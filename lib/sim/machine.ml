(* A simulated server machine: cores, NIC bandwidth, liveness.

   Compute charging follows Amdahl: a job with a serial part and a
   perfectly-parallel part occupies the machine's CPU for
   serial + parallel/cores. The CPU and NIC are FIFO resources, so a server
   that participates in many anytrust groups (staggered positions, §4.7)
   serializes its work exactly like a real machine would. *)

type t = {
  id : int;
  cores : int;
  bandwidth : float; (* bytes/second *)
  cluster : int;
  cpu : Resource.t;
  nic : Resource.t;
  slots : Multi_resource.t; (* one slot per core, for single-threaded jobs *)
  mutable alive : bool;
}

let create (engine : Engine.t) ~(id : int) ~(cores : int) ~(bandwidth : float) ~(cluster : int) : t
    =
  {
    id;
    cores;
    bandwidth;
    cluster;
    cpu = Resource.create engine;
    nic = Resource.create engine;
    slots = Multi_resource.create engine ~capacity:cores;
    alive = true;
  }

(* A single-threaded job occupying one core (queueing when all cores are
   busy serving other groups' pipelines). *)
let job (m : t) ~(seconds : float) : unit = Multi_resource.job m.slots seconds

(* Charge CPU time; must be called from a process. *)
let compute (engine : Engine.t) (m : t) ~(serial : float) ~(parallel : float) : unit =
  let duration = serial +. (parallel /. float_of_int m.cores) in
  if duration > 0. then
    Resource.with_resource m.cpu (fun () -> Engine.sleep engine duration)

let fail (m : t) : unit = m.alive <- false
let recover (m : t) : unit = m.alive <- true

let core_seconds (m : t) : float = Multi_resource.core_seconds m.slots

(* Summarize fleet core occupancy into a registry at end of run: total and
   peak per-machine busy core-time, plus which machine was busiest — the
   §4.7 staggering question ("is some server the bottleneck?") answered
   from data instead of eyeballing. *)
let publish_fleet (reg : Atom_obs.Metrics.t) (machines : t array) : unit =
  if Atom_obs.Metrics.enabled reg && Array.length machines > 0 then begin
    let total = ref 0. and peak = ref 0. and busiest = ref 0 in
    Array.iter
      (fun m ->
        let cs = core_seconds m in
        total := !total +. cs;
        if cs > !peak then begin
          peak := cs;
          busiest := m.id
        end)
      machines;
    let set name v = Atom_obs.Metrics.set (Atom_obs.Metrics.gauge reg name) v in
    set "fleet.machines" (float_of_int (Array.length machines));
    set "fleet.core_seconds_total" !total;
    set "fleet.core_seconds_peak" !peak;
    set "fleet.busiest_machine" (float_of_int !busiest)
  end

(* The paper's fleet mix (§6.2): 80% 4-core, 10% 8-core, 5% 16-core, 5%
   32-core machines; bandwidths from the Tor relay distribution: 80%
   <100 Mb/s, 10% 100–200, 5% 200–300, 5% >300. *)
let paper_cores (rng : Atom_util.Rng.t) : int =
  let p = Atom_util.Rng.float rng in
  if p < 0.80 then 4 else if p < 0.90 then 8 else if p < 0.95 then 16 else 32

let paper_bandwidth (rng : Atom_util.Rng.t) : float =
  let mbps x = x *. 1e6 /. 8. in
  let p = Atom_util.Rng.float rng in
  if p < 0.80 then mbps (30. +. (Atom_util.Rng.float rng *. 70.))
  else if p < 0.90 then mbps (100. +. (Atom_util.Rng.float rng *. 100.))
  else if p < 0.95 then mbps (200. +. (Atom_util.Rng.float rng *. 100.))
  else mbps (300. +. (Atom_util.Rng.float rng *. 200.))
