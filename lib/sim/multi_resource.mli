(** Counting semaphore: [capacity] identical slots with FIFO queueing.

    Models a multi-core machine serving several anytrust-group pipelines
    concurrently (§4.7 staggering): each single-threaded job takes one
    core-slot. *)

type t

val create : Engine.t -> capacity:int -> t
(** @raise Invalid_argument when capacity < 1. *)

val acquire : t -> unit
val release : t -> unit
val with_slot : t -> (unit -> 'a) -> 'a

val job : t -> float -> unit
(** Occupy one slot for the given number of virtual seconds. Jobs, their
    durations, and the time spent queueing for a free slot feed the
    ["cores.*"] metrics of the engine's registry. *)

val capacity : t -> int
val in_use : t -> int

val core_seconds : t -> float
(** Total busy core-time charged through this semaphore so far — the
    occupancy numerator for a machine over a run. *)
