(* Typed mailboxes for inter-process messages.

   [recv] blocks (suspends the calling process) until a message is
   available; [send] enqueues and wakes one waiting receiver. Wake-ups go
   through the engine's event queue so message delivery order remains
   deterministic.

   [recv_timeout] races the arrival against an engine timer: whichever
   fires first marks the waiter done, and the loser is cancelled (a stale
   timeout neither wakes anyone nor advances the clock). *)

type waiter = {
  mutable live : bool; (* false once woken by a send or a timeout *)
  wake : unit -> unit;
  mutable timer : Engine.timer option;
}

type 'a t = {
  engine : Engine.t;
  q : 'a Queue.t;
  waiters : waiter Queue.t;
  name : string;
}

let create ?(name = "mailbox") (engine : Engine.t) : 'a t =
  { engine; q = Queue.create (); waiters = Queue.create (); name }

let length (m : 'a t) : int = Queue.length m.q

let send (m : 'a t) (v : 'a) : unit =
  Queue.push v m.q;
  (* Wake the first waiter that has not already been timed out. *)
  let rec wake_one () =
    match Queue.take_opt m.waiters with
    | None -> ()
    | Some w when not w.live -> wake_one ()
    | Some w ->
        w.live <- false;
        (match w.timer with Some tm -> Engine.cancel tm | None -> ());
        Engine.schedule m.engine ~delay:0. w.wake
  in
  wake_one ()

let recv (m : 'a t) : 'a =
  let rec go () =
    match Queue.take_opt m.q with
    | Some v -> v
    | None ->
        Engine.suspend (fun wake ->
            Queue.push { live = true; wake; timer = None } m.waiters);
        go ()
  in
  go ()

let recv_timeout (m : 'a t) ~(timeout : float) : 'a option =
  match Queue.take_opt m.q with
  | Some v -> Some v
  | None ->
      if timeout <= 0. then None
      else begin
        Engine.suspend (fun wake ->
            let w = { live = true; wake; timer = None } in
            Queue.push w m.waiters;
            w.timer <-
              Some
                (Engine.schedule_timer m.engine ~delay:timeout (fun () ->
                     if w.live then begin
                       w.live <- false;
                       w.wake ()
                     end)));
        (* Woken either by a send (message queued) or by the timeout. *)
        Queue.take_opt m.q
      end

(* Receive exactly [n] messages. *)
let recv_n (m : 'a t) (n : int) : 'a list = List.init n (fun _ -> recv m)

let try_recv (m : 'a t) : 'a option = Queue.take_opt m.q
