(** Typed mailboxes between simulated processes.

    [recv] suspends until a message arrives; [send] enqueues and wakes one
    waiting receiver through the engine (preserving determinism). *)

type 'a t

val create : ?name:string -> Engine.t -> 'a t
val length : 'a t -> int

val send : 'a t -> 'a -> unit
(** Non-blocking; callable from inside or outside a process. *)

val recv : 'a t -> 'a
(** Blocking; must run inside a process. *)

val recv_timeout : 'a t -> timeout:float -> 'a option
(** Blocking receive that gives up after [timeout] virtual seconds,
    returning [None]. Whichever of message arrival and timer fires first
    wins; the loser is cancelled and leaves no trace in the engine clock
    or event count. Must run inside a process. *)

val recv_n : 'a t -> int -> 'a list
(** Receive exactly [n] messages (a counting barrier). *)

val try_recv : 'a t -> 'a option
