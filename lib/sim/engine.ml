(* Deterministic discrete-event engine with cooperative processes.

   Events are (virtual-time, sequence-number) ordered in a binary min-heap;
   the sequence number makes simultaneous events fire in schedule order, so
   every run is fully deterministic. Processes are ordinary OCaml functions
   running under an effect handler: performing [Suspend register] captures
   the continuation and hands a wake-up thunk to [register], which typically
   schedules it at a later virtual time ([sleep]) or parks it in a mailbox
   or resource queue. *)

type event = { time : float; seq : int; fn : unit -> unit; mutable cancelled : bool }

type timer = event

(* Array-based binary min-heap on (time, seq). *)
module Heap = struct
  type t = { mutable data : event array; mutable size : int }

  let dummy = { time = 0.; seq = 0; fn = ignore; cancelled = false }
  let create () = { data = Array.make 256 dummy; size = 0 }
  let is_empty h = h.size = 0

  let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h ev =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- ev;
    h.size <- h.size + 1;
    (* sift up *)
    let i = ref (h.size - 1) in
    while !i > 0 && lt h.data.(!i) h.data.((!i - 1) / 2) do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- dummy;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && lt h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.size && lt h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

type t = {
  heap : Heap.t;
  mutable now : float;
  mutable seq : int;
  mutable events_run : int;
  obs : Atom_obs.Ctx.t;
  m_events : Atom_obs.Metrics.counter;
  m_cancels : Atom_obs.Metrics.counter;
}

let create ?(obs = Atom_obs.Ctx.noop) () =
  let reg = Atom_obs.Ctx.metrics obs in
  let t =
    {
      heap = Heap.create ();
      now = 0.;
      seq = 0;
      events_run = 0;
      obs;
      m_events = Atom_obs.Metrics.counter reg "engine.events";
      m_cancels = Atom_obs.Metrics.counter reg "engine.cancels_discarded";
    }
  in
  (* Spans recorded against this engine's context are stamped in its
     virtual time, so identical schedules serialize identical traces. *)
  Atom_obs.Ctx.bind_clock obs (fun () -> t.now);
  t

let now t = t.now
let obs t = t.obs
let events_run t = t.events_run

let schedule_timer (t : t) ~(delay : float) (fn : unit -> unit) : timer =
  if delay < 0. || Float.is_nan delay then invalid_arg "Engine.schedule: negative or NaN delay";
  t.seq <- t.seq + 1;
  let ev = { time = t.now +. delay; seq = t.seq; fn; cancelled = false } in
  Heap.push t.heap ev;
  ev

let cancel (ev : timer) : unit = ev.cancelled <- true

let schedule (t : t) ~(delay : float) (fn : unit -> unit) : unit =
  ignore (schedule_timer t ~delay fn)

(* Run until the event queue drains (or [until] is reached). Returns the
   final virtual time. Cancelled timers are discarded without advancing the
   clock or the event count, so an unfired timeout leaves no trace in the
   reported latency. *)
let run ?(until : float option) (t : t) : float =
  let continue = ref true in
  while !continue && not (Heap.is_empty t.heap) do
    let ev = Heap.pop t.heap in
    if ev.cancelled then Atom_obs.Metrics.incr t.m_cancels
    else
      match until with
      | Some limit when ev.time > limit ->
          t.now <- limit;
          continue := false
      | _ ->
          t.now <- ev.time;
          t.events_run <- t.events_run + 1;
          Atom_obs.Metrics.incr t.m_events;
          ev.fn ()
  done;
  t.now

(* ---- Processes ---- *)

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let spawn (t : t) ?(delay = 0.) (body : unit -> unit) : unit =
  let runner () =
    Effect.Deep.match_with body ()
      {
        retc = (fun () -> ());
        exnc = (fun e -> raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    register (fun () -> Effect.Deep.continue k ()))
            | _ -> None);
      }
  in
  schedule t ~delay runner

(* Must be called from inside a process. *)
let suspend (register : (unit -> unit) -> unit) : unit = Effect.perform (Suspend register)

let sleep (t : t) (duration : float) : unit =
  if duration <= 0. then () else suspend (fun wake -> schedule t ~delay:duration wake)
