(** Deterministic fault injection: fail-stop plans driven off the engine
    clock.

    A {!plan} is plain data — fail/recover actions against machine ids at
    virtual times. {!install} schedules it on the engine, so injections
    interleave with protocol events deterministically and identical
    (seed, plan) pairs replay bit-identically. Random plans sample their
    victims from a caller-seeded RNG at construction time.

    Per-message probabilistic loss is configured on the link layer instead:
    see [Net.create ~loss_prob ~loss_seed]. *)

type action = Fail of int | Recover of int

type event = { at : float; action : action }

type plan = event list

val fail : at:float -> int -> event
(** Fail-stop one machine at virtual time [at]. *)

val recover : at:float -> int -> event
(** Bring one machine back at virtual time [at]. *)

val fail_machines : at:float -> int array -> plan
(** Fail a whole set (e.g. every member of a group) at once. *)

val recover_machines : at:float -> int array -> plan

val sample_fraction : Atom_util.Rng.t -> fraction:float -> n:int -> int array
(** Sample ceil(fraction·n) distinct machine ids without replacement;
    deterministic in the RNG state. *)

val fail_fraction : Atom_util.Rng.t -> at:float -> fraction:float -> n:int -> plan
(** Fail a random f-fraction of an [n]-machine fleet at time [at]. *)

val normalize : plan -> plan
(** Stable-sort a plan by time (builders may be combined in any order). *)

type t = {
  mutable failures_injected : int;
  mutable recoveries_injected : int;
  plan_size : int;
}
(** Telemetry for one installed plan. Counters tick when an action actually
    changes a machine's liveness (failing a dead machine is a no-op). *)

val install :
  Engine.t ->
  machines:Machine.t array ->
  ?on_fail:(int -> unit) ->
  ?on_recover:(int -> unit) ->
  plan ->
  t
(** Schedule every action of the plan on the engine. [on_fail]/[on_recover]
    run after the machine's liveness flips, letting higher layers mirror
    liveness into their own registries (e.g. the protocol's [failed] set).
    @raise Invalid_argument if an action names a machine outside the fleet. *)
