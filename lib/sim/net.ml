(* Network model.

   The paper injects 40–160 ms pairwise latencies with tc and groups servers
   into latency clusters (Figure 8): links within a cluster take 40 ms,
   links across clusters 80–160 ms. We reproduce that: pairwise latency is a
   deterministic function of the endpoints' clusters (hashed so each cluster
   pair gets a stable value in the range), transfers are serialized on the
   sender's NIC at min(sender, receiver) bandwidth, and the first use of a
   directed pair pays a connection-setup cost (TLS handshake: one round trip
   plus a fixed CPU charge) — the overhead that makes Figure 11's trustee
   group sub-linear at huge scale.

   Delivery is retried, not fire-and-forget: a transmission toward a dead
   machine (or one eaten by probabilistic loss, sampled from a dedicated
   seeded RNG so runs replay bit-identically) is retransmitted with
   exponential backoff up to [max_retries] times before being dropped for
   good. Every retransmit and terminal drop is counted, so churn leaves an
   audit trail in the stats instead of silently vanishing traffic. *)

type t = {
  engine : Engine.t;
  intra_latency : float;
  inter_min : float;
  inter_max : float;
  tls_cpu : float; (* handshake compute cost, seconds *)
  loss_prob : float; (* per-transmission random loss probability *)
  loss_rng : Atom_util.Rng.t;
  max_retries : int;
  retry_backoff : float; (* first backoff; doubles per retry *)
  established : (int * int, unit) Hashtbl.t;
  mutable connections_opened : int;
  mutable bytes_sent : float;
  mutable retransmits : int;
  mutable messages_lost : int; (* transmissions eaten by random loss *)
  mutable messages_dropped : int; (* messages abandoned after max_retries *)
  mutable bytes_dropped : float;
  reg : Atom_obs.Metrics.t;
  m_sends : Atom_obs.Metrics.counter;
  m_bytes : Atom_obs.Metrics.counter;
  m_retransmits : Atom_obs.Metrics.counter;
  m_losses : Atom_obs.Metrics.counter;
  m_drops : Atom_obs.Metrics.counter;
  m_connections : Atom_obs.Metrics.counter;
  m_send_bytes : Atom_obs.Metrics.histogram;
}

let default_tls_cpu = 0.001
let default_max_retries = 8
let default_retry_backoff = 0.25

let create ?(intra_latency = 0.040) ?(inter_min = 0.080) ?(inter_max = 0.160)
    ?(tls_cpu = default_tls_cpu) ?(loss_prob = 0.) ?(loss_seed = 0x10ad)
    ?(max_retries = default_max_retries) ?(retry_backoff = default_retry_backoff)
    (engine : Engine.t) : t =
  if loss_prob < 0. || loss_prob >= 1. then invalid_arg "Net.create: need 0 <= loss_prob < 1";
  let reg = Atom_obs.Ctx.metrics (Engine.obs engine) in
  {
    reg;
    m_sends = Atom_obs.Metrics.counter reg "net.sends";
    m_bytes = Atom_obs.Metrics.counter reg "net.bytes_sent";
    m_retransmits = Atom_obs.Metrics.counter reg "net.retransmits";
    m_losses = Atom_obs.Metrics.counter reg "net.losses";
    m_drops = Atom_obs.Metrics.counter reg "net.drops";
    m_connections = Atom_obs.Metrics.counter reg "net.connections";
    m_send_bytes =
      Atom_obs.Metrics.histogram reg ~buckets:24 ~lo:0. ~hi:1e6 "net.send_bytes";
    engine;
    intra_latency;
    inter_min;
    inter_max;
    tls_cpu;
    loss_prob;
    loss_rng = Atom_util.Rng.create loss_seed;
    max_retries;
    retry_backoff;
    established = Hashtbl.create 4096;
    connections_opened = 0;
    bytes_sent = 0.;
    retransmits = 0;
    messages_lost = 0;
    messages_dropped = 0;
    bytes_dropped = 0.;
  }

(* One-way propagation latency between two machines. *)
let latency (net : t) (src : Machine.t) (dst : Machine.t) : float =
  if src.Machine.cluster = dst.Machine.cluster then net.intra_latency
  else begin
    let key =
      Printf.sprintf "lat:%d:%d"
        (min src.Machine.cluster dst.Machine.cluster)
        (max src.Machine.cluster dst.Machine.cluster)
    in
    let h = Atom_util.Rng.hash_string key in
    let frac = float_of_int (h land 0xffff) /. 65536. in
    net.inter_min +. (frac *. (net.inter_max -. net.inter_min))
  end

let transfer_time (src : Machine.t) (dst : Machine.t) ~(bytes : float) : float =
  bytes /. Float.min src.Machine.bandwidth dst.Machine.bandwidth

(* Ensure a connection exists; charges the sender for the handshake on first
   use. Must run inside a process. *)
let ensure_connection (net : t) (src : Machine.t) (dst : Machine.t) : unit =
  let key = (src.Machine.id, dst.Machine.id) in
  if not (Hashtbl.mem net.established key) then begin
    Hashtbl.add net.established key ();
    net.connections_opened <- net.connections_opened + 1;
    Atom_obs.Metrics.incr net.m_connections;
    Machine.compute net.engine src ~serial:net.tls_cpu ~parallel:0.;
    Engine.sleep net.engine (2. *. latency net src dst)
  end

(* Send [bytes] from [src] to [dst], delivering [msg] into [mailbox] after
   serialization + propagation. Blocks the caller for the NIC serialization
   time (back-pressure) and for any retransmission backoff; propagation
   happens asynchronously. Returns [true] iff delivery was scheduled. *)
let send_tracked (net : t) ~(src : Machine.t) ~(dst : Machine.t) ~(bytes : float)
    (mailbox : 'a Mailbox.t) (msg : 'a) : bool =
  let give_up () =
    net.messages_dropped <- net.messages_dropped + 1;
    net.bytes_dropped <- net.bytes_dropped +. bytes;
    Atom_obs.Metrics.incr net.m_drops;
    Atom_obs.Log.warn "net: dropped %.0f bytes %d->%d after %d retries" bytes src.Machine.id
      dst.Machine.id net.max_retries;
    false
  in
  let rec attempt tries backoff =
    let retry () =
      if tries >= net.max_retries then give_up ()
      else begin
        Engine.sleep net.engine backoff;
        net.retransmits <- net.retransmits + 1;
        Atom_obs.Metrics.incr net.m_retransmits;
        attempt (tries + 1) (backoff *. 2.)
      end
    in
    if not dst.Machine.alive then retry () (* fail-stop peer: back off, re-probe *)
    else begin
      ensure_connection net src dst;
      let tx = transfer_time src dst ~bytes in
      Resource.with_resource src.Machine.nic (fun () -> Engine.sleep net.engine tx);
      net.bytes_sent <- net.bytes_sent +. bytes;
      Atom_obs.Metrics.incr net.m_sends;
      Atom_obs.Metrics.add net.m_bytes bytes;
      Atom_obs.Metrics.observe net.m_send_bytes bytes;
      (* Per-edge byte accounting at latency-cluster granularity (bounded
         cardinality); label construction only when the registry is live. *)
      if Atom_obs.Metrics.enabled net.reg then
        Atom_obs.Metrics.add
          (Atom_obs.Metrics.counter net.reg
             (Printf.sprintf "net.edge.%d->%d.bytes" src.Machine.cluster dst.Machine.cluster))
          bytes;
      if net.loss_prob > 0. && Atom_util.Rng.float net.loss_rng < net.loss_prob then begin
        net.messages_lost <- net.messages_lost + 1;
        Atom_obs.Metrics.incr net.m_losses;
        retry ()
      end
      else begin
        let lat = latency net src dst in
        Engine.schedule net.engine ~delay:lat (fun () -> Mailbox.send mailbox msg);
        true
      end
    end
  in
  attempt 0 net.retry_backoff

let send (net : t) ~(src : Machine.t) ~(dst : Machine.t) ~(bytes : float) (mailbox : 'a Mailbox.t)
    (msg : 'a) : unit =
  ignore (send_tracked net ~src ~dst ~bytes mailbox msg)

(* Fire-and-forget variant usable from outside a process context. *)
let send_async (net : t) ~(src : Machine.t) ~(dst : Machine.t) ~(bytes : float)
    (mailbox : 'a Mailbox.t) (msg : 'a) : unit =
  Engine.spawn net.engine (fun () -> send net ~src ~dst ~bytes mailbox msg)
