(** Public bulletin board — the microblogging application (§5), plus the
    submission plane's sealed-and-signed per-epoch output. *)

type t

val create : unit -> t
val publish_round : t -> round:int -> string list -> unit
val read_round : t -> round:int -> string list
val read_all : t -> (int * string) list
val size : t -> int

(** {2 Sealed per-epoch output} *)

type sealed = {
  epoch : int;
  posts : string array;  (** Canonical order: sorted, deduplicated. *)
  digest : string;  (** 32-byte SHA-256 binding epoch + posts. *)
}

val seal : epoch:int -> string list -> sealed
(** Canonicalize (sort, collapse duplicates) and digest an epoch's
    plaintexts. Deterministic in the multiset of posts — exit arrival
    order never changes the sealed output. *)

val digest_of : epoch:int -> string array -> string

val sealed_consistent : sealed -> bool
(** The posts are in canonical order and hash to [digest]. *)

val publish_sealed : t -> sealed -> unit
(** Append a sealed epoch to the board under [round = epoch]. *)

(** Schnorr signatures over the sealed digest, parametric over the group
    backend like the rest of the crypto. Deterministic nonces: signing
    the same seal twice yields byte-identical signatures. *)
module Signer (G : Atom_group.Group_intf.GROUP) : sig
  type sk = G.Scalar.t
  type pk = G.t

  val signature_bytes : int

  val keypair : seed:int -> sk * pk
  (** Deterministic publisher keypair for the harness (a deployment would
      run the DKG used for group keys). *)

  val sign : sk:sk -> string -> string
  val verify : pk:pk -> msg:string -> string -> bool
  val sign_sealed : sk:sk -> sealed -> string

  val verify_sealed : pk:pk -> sealed -> signature:string -> bool
  (** [sealed_consistent] plus a valid signature over the digest. *)
end
