(* Public bulletin board — the microblogging application (§5).

   The exit servers of a successful round post the anonymized plaintexts;
   readers fetch by round. The board is untrusted for anonymity (everything
   on it is already anonymized) and trivially shardable, so it is plain
   state here.

   The submission plane adds the *sealed* per-epoch output: the epoch's
   plaintexts in a canonical order (sorted, duplicates collapsed — exit
   order would otherwise leak pipeline structure and make the digest
   depend on network timing), a binding SHA-256 digest over them, and a
   Schnorr signature by the publisher so clients can verify an announced
   epoch without trusting the channel it arrived on. *)

type post = { round : int; body : string }
type t = { mutable posts : post list (* chronological *) }

let create () : t = { posts = [] }

let publish_round (t : t) ~(round : int) (messages : string list) : unit =
  t.posts <- t.posts @ List.map (fun body -> { round; body }) messages

let read_round (t : t) ~(round : int) : string list =
  List.filter_map (fun p -> if p.round = round then Some p.body else None) t.posts

let read_all (t : t) : (int * string) list = List.map (fun p -> (p.round, p.body)) t.posts

let size (t : t) : int = List.length t.posts

(* ---- Sealed per-epoch output ---- *)

type sealed = {
  epoch : int;
  posts : string array;  (* canonical order: sorted, deduplicated *)
  digest : string;  (* 32 bytes, binds epoch + posts *)
}

(* Canonicalize: sort then collapse adjacent duplicates. Deterministic
   regardless of exit arrival order, so every replica of the publisher
   seals byte-identical output. *)
let canonical (posts : string list) : string array =
  let sorted = List.sort String.compare posts in
  let dedup =
    List.fold_left
      (fun acc p -> match acc with q :: _ when String.equal q p -> acc | _ -> p :: acc)
      [] sorted
  in
  Array.of_list (List.rev dedup)

let digest_of ~(epoch : int) (posts : string array) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "atom-bulletin/1";
  Buffer.add_string b (Printf.sprintf "%016x" epoch);
  Array.iter
    (fun p ->
      Buffer.add_string b (Printf.sprintf "%08x" (String.length p));
      Buffer.add_string b p)
    posts;
  Atom_hash.Sha256.digest (Buffer.contents b)

let seal ~(epoch : int) (posts : string list) : sealed =
  let posts = canonical posts in
  { epoch; posts; digest = digest_of ~epoch posts }

(* Verify that a received (epoch, posts, digest) triple is internally
   consistent — the posts really are canonical and really hash to the
   digest. Signature checks live in [Signer]. *)
let sealed_consistent (s : sealed) : bool =
  let c = canonical (Array.to_list s.posts) in
  c = s.posts && String.equal (digest_of ~epoch:s.epoch c) s.digest

let publish_sealed (t : t) (s : sealed) : unit =
  publish_round t ~round:s.epoch (Array.to_list s.posts)

(* ---- Publisher signatures ----

   Classic Schnorr over the group backend, with a deterministic nonce
   (hash of sk ‖ msg — no RNG on the signing path, so a replayed seal
   signs byte-identically). Sig = R ‖ s with both components at their
   fixed encoded lengths. The harness derives the publisher keypair from
   the round seed; a deployment would run the DKG used for group keys. *)

module Signer (G : Atom_group.Group_intf.GROUP) = struct
  type sk = G.Scalar.t
  type pk = G.t

  let scalar_bytes = String.length (G.Scalar.to_bytes G.Scalar.zero)
  let signature_bytes = G.element_bytes + scalar_bytes

  let keypair ~(seed : int) : sk * pk =
    let sk = G.hash_to_scalar (Printf.sprintf "atom-bulletin-signer/%d" seed) in
    (sk, G.pow_gen sk)

  let challenge ~(pk : pk) ~(r : G.t) (msg : string) : G.Scalar.t =
    G.hash_to_scalar ("atom-bulletin-sign/" ^ G.to_bytes r ^ G.to_bytes pk ^ msg)

  let sign ~(sk : sk) (msg : string) : string =
    let k = G.hash_to_scalar ("atom-bulletin-nonce/" ^ G.Scalar.to_bytes sk ^ msg) in
    let r = G.pow_gen k in
    let c = challenge ~pk:(G.pow_gen sk) ~r msg in
    let s = G.Scalar.add k (G.Scalar.mul c sk) in
    G.to_bytes r ^ G.Scalar.to_bytes s

  let verify ~(pk : pk) ~(msg : string) (signature : string) : bool =
    String.length signature = signature_bytes
    &&
    match G.of_bytes (String.sub signature 0 G.element_bytes) with
    | None -> false
    | Some r ->
        let s = G.Scalar.of_bytes_mod (String.sub signature G.element_bytes scalar_bytes) in
        (* g^s = R · pk^c *)
        let c = challenge ~pk ~r msg in
        G.equal (G.pow_gen s) (G.mul r (G.pow pk c))

  let sign_sealed ~(sk : sk) (s : sealed) : string = sign ~sk s.digest

  let verify_sealed ~(pk : pk) (s : sealed) ~(signature : string) : bool =
    sealed_consistent s && verify ~pk ~msg:s.digest signature
end
