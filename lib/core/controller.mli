(** Round controller implementing the §4.6 availability policy: fall back
    from the trap variant to NIZKs under persistent disruption (trading
    performance for availability), return once the network is clean, and
    accumulate blamed users into a blacklist. *)

type policy = { abort_threshold : int; recovery_threshold : int }

val default_policy : policy

type t

val create : ?policy:policy -> ?variant:Config.variant -> unit -> t
val variant : t -> Config.variant
val blacklist : t -> int list
val is_blacklisted : t -> int -> bool

val total_recoveries : t -> int
(** Buddy-group recoveries accumulated across recorded rounds. *)

val note_recoveries : t -> int -> unit
(** Add this round's buddy-group resurrections to the churn telemetry.
    Tracked for operators, never part of the NIZK-fallback decision. *)

val record : t -> aborted:bool -> blamed:int list -> Config.variant
(** Feed one round's outcome; returns the variant for the next round. *)
