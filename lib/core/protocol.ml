(* The Atom protocol, executed with real cryptography (§4).

   This engine runs the full logical protocol — group formation with
   threshold DKG, client submission with EncProofs, T iterations of
   shuffle / divide / decrypt-and-reencrypt, the NIZK and trap defences,
   trustee key release, and the §4.6 blame procedure — over in-memory state.
   Timing fidelity is the job of the discrete-event simulator in
   [Simulate]; this engine is the cryptographic ground truth that the test
   suite drives end to end, including active attacks.

   Group member positions map to Shamir indices 1..k; any quorum of
   k−(h−1) live members routes a batch using Lagrange-weighted shares, which
   is how the protocol rides out fail-stop churn (§4.5). *)

module Make (G : Atom_group.Group_intf.GROUP) = struct
  module El = Atom_elgamal.Elgamal.Make (G)
  module P = Atom_zkp.Proofs.Make (G) (El)
  module Shuf = Atom_zkp.Shuffle_proof.Make (G) (El)
  module Msg = Message.Make (G)
  module Sh = Atom_secret.Shamir.Make (G)
  module Dkg = Atom_secret.Dkg.Make (G)

  (* ---- Network state ---- *)

  type group_state = {
    gid : int;
    members : int array; (* server ids, pipeline order *)
    keys : Dkg.result;
    (* Buddy re-sharings of each member's share, indexed by member position
       (§4.5): buddy groups can resurrect a dead group. *)
    reshares : Dkg.reshare array;
    buddies : int array;
  }

  type network = {
    config : Config.t;
    topo : Atom_topology.Topology.t;
    groups : group_state array;
    trustee_members : int array;
    trustee_keys : El.keypair array; (* additive anytrust shares *)
    trustee_pk : G.t;
    width : int; (* group elements per routed unit *)
    failed : bool array; (* server id -> fail-stop flag *)
    round : int;
  }

  let group_pk (net : network) (gid : int) : G.t = net.groups.(gid).keys.Dkg.group_pk

  (* Bytes of one serialized inner ciphertext for a [msg_bytes] plaintext. *)
  let inner_ct_bytes ~(msg_bytes : int) : int =
    G.element_bytes + 4 + msg_bytes + Atom_cipher.Aead.tag_len

  let unit_width (config : Config.t) : int =
    match config.Config.variant with
    | Basic | Nizk -> Msg.width_for ~payload_bytes:config.Config.msg_bytes
    | Trap ->
        (* Inner ciphertexts and traps share one width; the inner dominates. *)
        max
          (Msg.width_for ~payload_bytes:(inner_ct_bytes ~msg_bytes:config.Config.msg_bytes))
          (Msg.width_for ~payload_bytes:(4 + Msg.trap_nonce_bytes))

  let setup (rng : Atom_util.Rng.t) (config : Config.t) ?(round = 0) () : network =
    Config.validate config;
    let beacon = Beacon.create ~seed:config.Config.seed in
    let formation =
      Group_formation.form beacon ~round ~n_servers:config.Config.n_servers
        ~n_groups:config.Config.n_groups ~group_size:config.Config.group_size ()
    in
    let quorum = Config.quorum config in
    let groups =
      Array.map
        (fun (g : Group_formation.group) ->
          let keys = Dkg.run rng ~k:config.Config.group_size ~threshold:quorum () in
          let reshares =
            Array.map
              (fun share ->
                Dkg.reshare rng ~threshold':quorum ~buddies:config.Config.group_size share)
              keys.Dkg.shares
          in
          { gid = g.Group_formation.gid;
            members = g.Group_formation.members;
            keys;
            reshares;
            buddies = g.Group_formation.buddies })
        formation.Group_formation.groups
    in
    let trustee_members =
      Group_formation.form_trustees beacon ~round ~n_servers:config.Config.n_servers
        ~group_size:(min config.Config.group_size config.Config.n_servers)
    in
    let trustee_keys = Array.map (fun _ -> El.keygen rng) trustee_members in
    let trustee_pk =
      El.combine_pks (Array.to_list (Array.map (fun kp -> kp.El.pk) trustee_keys))
    in
    {
      config;
      topo = Config.topology config;
      groups;
      trustee_members;
      trustee_keys;
      trustee_pk;
      width = unit_width config;
      failed = Array.make config.Config.n_servers false;
      round;
    }

  (* Operation counters: the real engine tallies every cryptographic
     operation a round performs, and the test suite checks the tallies
     against the closed-form counts the modeled simulator charges for —
     cross-validating the two engines. *)
  type op_counts = {
    mutable unit_shuffles : int; (* unit x member shuffle applications *)
    mutable unit_reencs : int; (* unit x member reencrypt applications *)
    mutable encproof_verifies : int; (* per component *)
    mutable kem_opens : int;
  }

  let ops = { unit_shuffles = 0; unit_reencs = 0; encproof_verifies = 0; kem_opens = 0 }

  let reset_ops () =
    ops.unit_shuffles <- 0;
    ops.unit_reencs <- 0;
    ops.encproof_verifies <- 0;
    ops.kem_opens <- 0

  let op_counts () = ops

  let fail_server (net : network) (sid : int) : unit = net.failed.(sid) <- true
  let recover_server (net : network) (sid : int) : unit = net.failed.(sid) <- false

  (* The quorum actually routing for a group: the first k−(h−1) live
     members (1-based Shamir positions). Returns None if the group has too
     many failures to operate. *)
  let live_quorum (net : network) (g : group_state) : int list option =
    let quorum = Config.quorum net.config in
    let live =
      List.filter_map
        (fun pos -> if net.failed.(g.members.(pos)) then None else Some (pos + 1))
        (List.init (Array.length g.members) Fun.id)
    in
    if List.length live < quorum then None
    else Some (List.filteri (fun i _ -> i < quorum) live)

  (* ---- Client submissions (§3 and §4.4) ---- *)

  type unit_ct = { vec : El.vec; proofs : P.Enc_proof.t array }

  type submission = {
    user : int;
    entry_gid : int;
    units : unit_ct array; (* 1 unit (basic/NIZK); 2 in random order (trap) *)
    commitment : string option; (* trap variant *)
  }

  let proof_context (net : network) (gid : int) : string =
    Printf.sprintf "atom:round=%d:gid=%d" net.round gid

  let encrypt_unit (rng : Atom_util.Rng.t) (net : network) ~(gid : int) ~(tag : char)
      (payload : string) : unit_ct =
    let elements = Msg.embed ~tag payload ~width:net.width in
    let vec, rands = El.enc_vec rng (group_pk net gid) elements in
    let proofs =
      P.Enc_proof.prove_vec rng ~pk:(group_pk net gid) ~context:(proof_context net gid) vec
        ~randomness:rands
    in
    { vec; proofs }

  (* An honest user's submission. *)
  let submit (rng : Atom_util.Rng.t) (net : network) ~(user : int) ~(entry_gid : int)
      (msg : string) : submission =
    let padded = Msg.pad_plaintext ~msg_bytes:net.config.Config.msg_bytes msg in
    match net.config.Config.variant with
    | Basic | Nizk ->
        { user;
          entry_gid;
          units = [| encrypt_unit rng net ~gid:entry_gid ~tag:Msg.tag_message padded |];
          commitment = None }
    | Trap ->
        let inner = El.Kem.to_bytes (El.Kem.enc rng net.trustee_pk padded) in
        let nonce = Atom_util.Rng.bytes rng Msg.trap_nonce_bytes in
        let trap = Msg.make_trap ~gid:entry_gid ~nonce in
        let unit_m = encrypt_unit rng net ~gid:entry_gid ~tag:Msg.tag_message inner in
        let unit_t = encrypt_unit rng net ~gid:entry_gid ~tag:Msg.tag_trap trap in
        let units = if Atom_util.Rng.bool rng then [| unit_m; unit_t |] else [| unit_t; unit_m |] in
        { user; entry_gid; units; commitment = Some (Msg.commit_trap ~width:net.width trap) }

  (* ---- Adversary hooks ---- *)

  (* A batch tamper runs where the paper's analysis places it: on the last
     (malicious) server of a group just before forwarding, when units are
     plain ciphertexts under the next hop's key. The callback may drop,
     duplicate, or replace units; [`garbage_unit`] builds a plausible
     replacement (fresh encryption of a junk payload under the correct
     key — indistinguishable from a real unit on the wire). *)
  type adversary = {
    tamper : iter:int -> gid:int -> next_pk:G.t option -> El.vec array -> El.vec array;
    cheat_shuffle : iter:int -> gid:int -> bool;
        (* NIZK variant: server swaps in an unproven batch — caught by
           ShufProof verification. *)
  }

  let no_adversary : adversary =
    { tamper = (fun ~iter:_ ~gid:_ ~next_pk:_ batch -> batch); cheat_shuffle = (fun ~iter:_ ~gid:_ -> false) }

  let garbage_unit (rng : Atom_util.Rng.t) (net : network) ~(next_pk : G.t option) : El.vec =
    let payload = Atom_util.Rng.bytes rng 8 in
    let elements = Msg.embed ~tag:Msg.tag_message payload ~width:net.width in
    match next_pk with
    | Some pk -> fst (El.enc_vec rng pk elements)
    | None -> Array.map (fun m -> { El.r = G.one; El.c = m; El.y = None }) elements

  (* ---- Round execution ---- *)

  type abort_reason =
    | Shuffle_proof_rejected of { gid : int; iter : int }
    | Reenc_proof_rejected of { gid : int; iter : int }
    | Trap_mismatch of { gid : int }
    | Duplicate_inner
    | Count_mismatch of { traps : int; inners : int }
    | Group_down of { gid : int }
    | Runtime_failure of { gid : int; detail : string }
        (* An exception escaped a group pipeline (distributed runtime). The
           carried text distinguishes real crypto/logic bugs from churn. *)

  type outcome = {
    delivered : string list; (* plaintexts, unpadded, in exit order *)
    aborted : abort_reason option;
    rejected_submissions : int list; (* user ids with invalid proofs *)
    blamed : int list; (* user ids identified by the §4.6 procedure *)
  }

  (* Verify a submission at its entry group; §3's duplicate-ciphertext check
     included. *)
  let verify_submission (net : network) (seen : (string, int) Hashtbl.t) (s : submission) : bool =
    let ctx = proof_context net s.entry_gid in
    let pk = group_pk net s.entry_gid in
    let unit_count_ok =
      match net.config.Config.variant with
      | Basic | Nizk -> Array.length s.units = 1 && s.commitment = None
      | Trap -> Array.length s.units = 2 && s.commitment <> None
    in
    unit_count_ok
    && Array.for_all
         (fun u ->
           let bytes = El.vec_to_bytes u.vec in
           let fresh = not (Hashtbl.mem seen bytes) in
           if fresh then Hashtbl.add seen bytes s.user;
           ops.encproof_verifies <- ops.encproof_verifies + Array.length u.vec;
           fresh && P.Enc_proof.verify_vec ~pk ~context:ctx u.vec u.proofs)
         s.units

  (* One group's work for one iteration: collective shuffle, divide into β
     batches, decrypt-and-reencrypt toward each neighbor (Algorithm 1; with
     NIZK checks this is Algorithm 2). Returns per-neighbor batches, or the
     abort reason a NIZK check tripped on. *)
  let process_group (rng : Atom_util.Rng.t) (net : network) ~(adversary : adversary)
      ~(iter : int) (g : group_state) (units : El.vec array) :
      (int * El.vec array) list * abort_reason option =
    match live_quorum net g with
    | None -> ([], Some (Group_down { gid = g.gid }))
    | Some quorum_positions -> begin
        let pk = group_pk net g.gid in
        let ctx = Printf.sprintf "%s:iter=%d" (proof_context net g.gid) iter in
        let nizk = net.config.Config.variant = Nizk in
        (* Step 1: every quorum member shuffles in order. *)
        let abort = ref None in
        let current = ref units in
        List.iter
          (fun _pos ->
            if !abort = None && Array.length !current > 0 then begin
              match El.shuffle_vec rng pk !current with
              | None -> abort := Some (Shuffle_proof_rejected { gid = g.gid; iter })
              | Some (shuffled, witness) ->
                  ops.unit_shuffles <- ops.unit_shuffles + Array.length shuffled;
                  if nizk then begin
                    let cheated = adversary.cheat_shuffle ~iter ~gid:g.gid in
                    let published =
                      if cheated then begin
                        (* The cheater swaps one output for garbage after
                           proving. *)
                        let bad = Array.copy shuffled in
                        if Array.length bad > 0 then
                          bad.(0) <- fst (El.enc_vec rng pk (Array.map (fun _ -> G.one) bad.(0)));
                        bad
                      end
                      else shuffled
                    in
                    let pi =
                      Shuf.prove rng ~pk ~context:ctx ~input:!current ~output:shuffled ~witness
                    in
                    (* Every other member verifies (the honest one matters). *)
                    if Shuf.verify ~pk ~context:ctx ~input:!current ~output:published pi then
                      current := published
                    else abort := Some (Shuffle_proof_rejected { gid = g.gid; iter })
                  end
                  else current := shuffled
            end)
          quorum_positions;
        match !abort with
        | Some reason -> ([], Some reason)
        | None -> begin
            (* Step 2: divide into β batches, round-robin. *)
            let neighbors = net.topo.Atom_topology.Topology.neighbors ~iter ~group:g.gid in
            let beta = Array.length neighbors in
            let last_iter = iter = net.topo.Atom_topology.Topology.iterations - 1 in
            let batches = Array.make beta [] in
            Array.iteri (fun i u -> batches.(i mod beta) <- u :: batches.(i mod beta)) !current;
            let batches = Array.map (fun l -> Array.of_list (List.rev l)) batches in
            (* Step 3: decrypt-and-reencrypt chain through the quorum. *)
            let out = ref [] in
            Array.iteri
              (fun bi batch ->
                if !abort = None then begin
                  let next_pk = if last_iter then None else Some (group_pk net neighbors.(bi)) in
                  let current_batch = ref batch in
                  List.iter
                    (fun pos ->
                      if !abort = None then begin
                        let share = g.keys.Dkg.shares.(pos - 1).Sh.value in
                        let coeff = Sh.lagrange_at_zero ~xs:quorum_positions ~i:pos in
                        if nizk then begin
                          let eff_pk = G.pow (Dkg.share_pk g.keys pos) coeff in
                          let stepped =
                            Array.map
                              (fun v ->
                                let v', pis =
                                  P.Reenc_proof.reenc_vec_with_proof rng ~share ~coeff ~next_pk
                                    ~context:ctx v
                                in
                                let ok =
                                  P.Reenc_proof.verify_vec ~eff_pk ~next_pk ~context:ctx ~input:v
                                    ~output:v' pis
                                in
                                (v', ok))
                              !current_batch
                          in
                          if Array.for_all snd stepped then begin
                            ops.unit_reencs <- ops.unit_reencs + Array.length stepped;
                            current_batch := Array.map fst stepped
                          end
                          else abort := Some (Reenc_proof_rejected { gid = g.gid; iter })
                        end
                        else begin
                          ops.unit_reencs <- ops.unit_reencs + Array.length !current_batch;
                          current_batch :=
                            Array.map
                              (fun v -> fst (El.reenc_vec rng ~share ~coeff ~next_pk v))
                              !current_batch
                        end
                      end)
                    quorum_positions;
                  if !abort = None then begin
                    let finished =
                      if last_iter then !current_batch else Array.map El.clear_y_vec !current_batch
                    in
                    (* The (possibly malicious) last server forwards. In the
                       NIZK variant the receiving group also verifies the
                       last server's proofs (Algorithm 2, step 3b), so a
                       batch mutated after proving is rejected — modeled
                       here by comparing against the proven batch. *)
                    let forwarded = adversary.tamper ~iter ~gid:g.gid ~next_pk finished in
                    if
                      nizk
                      && not
                           (Array.length forwarded = Array.length finished
                           && Array.for_all2
                                (fun a b ->
                                  Array.length a = Array.length b && Array.for_all2 El.cipher_equal a b)
                                forwarded finished)
                    then abort := Some (Reenc_proof_rejected { gid = g.gid; iter })
                    else out := (neighbors.(bi), forwarded) :: !out
                  end
                end)
              batches;
            (List.rev !out, !abort)
          end
      end

  (* ---- Exit processing ---- *)

  type exit_unit = { exit_gid : int; tag : char; payload : string }

  let decode_exit (_net : network) (holdings : El.vec array array) : exit_unit list =
    let out = ref [] in
    Array.iteri
      (fun gid units ->
        Array.iter
          (fun v ->
            let plain = Array.map El.plaintext_of_exit v in
            match Msg.extract plain with
            | Some (tag, payload) -> out := { exit_gid = gid; tag; payload } :: !out
            | None -> () (* undecodable garbage: dropped, counted in checks *))
          units)
      holdings;
    List.rev !out

  (* Trap-variant exit checks (§4.4): every expected commitment must have a
     matching trap and vice versa, inner ciphertexts must be unique, and
     trap/inner counts must balance.

     The paper forwards each trap to the group named in its gid field and
     each inner ciphertext to a hash-selected group, which then run these
     checks locally and report bits to the trustees. This engine evaluates
     the same predicates over the same data globally — equivalent outcome
     (the union of the local checks); the per-hop forwarding costs are what
     [Simulate]'s exit phase charges for. *)
  let trap_checks (net : network) ~(commitments : (int, string list) Hashtbl.t)
      (exits : exit_unit list) : abort_reason option * string list =
    let traps, inners = List.partition (fun u -> u.tag = Msg.tag_trap) exits in
    (* Re-commit each received trap and sort it to its gid. *)
    let got : (int, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun u ->
        match Msg.parse_trap u.payload with
        | Some (gid, _) ->
            let c = Msg.commit_trap ~width:net.width u.payload in
            Hashtbl.replace got gid (c :: (Option.value ~default:[] (Hashtbl.find_opt got gid)))
        | None -> ())
      traps;
    let mismatch = ref None in
    Hashtbl.iter
      (fun gid expected ->
        let received = Option.value ~default:[] (Hashtbl.find_opt got gid) in
        if List.sort compare expected <> List.sort compare received then
          if !mismatch = None then mismatch := Some (Trap_mismatch { gid }))
      commitments;
    (* Also catch traps claiming a gid that expected none. *)
    Hashtbl.iter
      (fun gid received ->
        if Hashtbl.find_opt commitments gid = None && received <> [] then
          if !mismatch = None then mismatch := Some (Trap_mismatch { gid }))
      got;
    let inner_payloads = List.map (fun u -> u.payload) inners in
    let dedup = List.sort_uniq compare inner_payloads in
    let n_traps = List.length traps and n_inners = List.length inners in
    let reason =
      if !mismatch <> None then !mismatch
      else if List.length dedup <> List.length inner_payloads then Some Duplicate_inner
      else if n_traps <> n_inners then Some (Count_mismatch { traps = n_traps; inners = n_inners })
      else None
    in
    (reason, inner_payloads)

  (* Trustees release shares only on a clean round; then inner ciphertexts
     open. *)
  let open_inners (net : network) (inner_payloads : string list) : string list =
    List.filter_map
      (fun bytes ->
        match El.Kem.of_bytes bytes with
        | None -> None
        | Some sealed ->
            ops.kem_opens <- ops.kem_opens + 1;
            let partials =
              Array.to_list (Array.map (fun kp -> El.Kem.partial kp.El.sk sealed) net.trustee_keys)
            in
            El.Kem.dec_with_partials partials sealed)
      inner_payloads

  (* §4.6: after a violation, entry groups reveal their keys and decrypt the
     original submissions to identify disruptive users. *)
  let blame (net : network) (submissions : submission list) : int list =
    let decrypt_unit (s : submission) (u : unit_ct) : (char * string) option =
      let g = net.groups.(s.entry_gid) in
      (* Reconstruct the group secret from a quorum of shares (the "reveal
         private keys" step). *)
      let quorum = Config.quorum net.config in
      let shares = Array.to_list (Array.sub g.keys.Dkg.shares 0 quorum) in
      let sk = Sh.reconstruct shares in
      match El.dec_vec sk u.vec with Some els -> Msg.extract els | None -> None
    in
    let seen_inner : (string, int) Hashtbl.t = Hashtbl.create 64 in
    List.filter_map
      (fun s ->
        let decoded = Array.map (decrypt_unit s) s.units in
        let traps =
          Array.to_list decoded
          |> List.filter_map (function Some (t, p) when t = Msg.tag_trap -> Some p | _ -> None)
        in
        let inners =
          Array.to_list decoded
          |> List.filter_map (function Some (t, p) when t = Msg.tag_message -> Some p | _ -> None)
        in
        let trap_ok =
          match (traps, s.commitment) with
          | [ trap ], Some c ->
              Msg.commit_trap ~width:net.width trap = c
              && (match Msg.parse_trap trap with
                 | Some (gid, _) -> gid = s.entry_gid
                 | None -> false)
          | _ -> false
        in
        let duplicate =
          List.exists
            (fun inner ->
              match Hashtbl.find_opt seen_inner inner with
              | Some other when other <> s.user -> true
              | _ ->
                  Hashtbl.replace seen_inner inner s.user;
                  false)
            inners
        in
        if (not trap_ok) || List.length inners <> 1 || duplicate then Some s.user else None)
      submissions

  (* Execute one full round. *)
  let run (rng : Atom_util.Rng.t) (net : network) ?(adversary = no_adversary)
      (submissions : submission list) : outcome =
    reset_ops ();
    (* Entry: verify proofs, register commitments. *)
    let seen = Hashtbl.create 256 in
    let accepted, rejected = List.partition (verify_submission net seen) submissions in
    let rejected_submissions = List.map (fun s -> s.user) rejected in
    let commitments : (int, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun s ->
        match s.commitment with
        | Some c ->
            Hashtbl.replace commitments s.entry_gid
              (c :: Option.value ~default:[] (Hashtbl.find_opt commitments s.entry_gid))
        | None -> ())
      accepted;
    (* Initial holdings per group. *)
    let holdings = Array.make net.config.Config.n_groups [] in
    List.iter
      (fun s ->
        Array.iter (fun u -> holdings.(s.entry_gid) <- u.vec :: holdings.(s.entry_gid)) s.units)
      accepted;
    let holdings = ref (Array.map (fun l -> Array.of_list (List.rev l)) holdings) in
    (* Mixing iterations. *)
    let aborted = ref None in
    let iters = net.topo.Atom_topology.Topology.iterations in
    for iter = 0 to iters - 1 do
      if !aborted = None then begin
        let incoming = Array.make net.config.Config.n_groups [] in
        Array.iter
          (fun g ->
            if !aborted = None then begin
              let batches, abort =
                process_group rng net ~adversary ~iter g (!holdings).(g.gid)
              in
              (match abort with Some r -> aborted := Some r | None -> ());
              if iter = iters - 1 then
                (* Exit layer: units stay at this group. *)
                List.iter
                  (fun (_, batch) -> incoming.(g.gid) <- batch :: incoming.(g.gid))
                  batches
              else
                List.iter
                  (fun (dst, batch) -> incoming.(dst) <- batch :: incoming.(dst))
                  batches
            end)
          net.groups;
        if !aborted = None then
          holdings :=
            Array.map (fun parts -> Array.concat (List.rev parts)) incoming
      end
    done;
    match !aborted with
    | Some reason -> { delivered = []; aborted = Some reason; rejected_submissions; blamed = [] }
    | None -> begin
        let exits = decode_exit net !holdings in
        match net.config.Config.variant with
        | Basic | Nizk ->
            let delivered =
              List.filter_map
                (fun u -> if u.tag = Msg.tag_message then Some (Msg.unpad_plaintext u.payload) else None)
                exits
            in
            { delivered; aborted = None; rejected_submissions; blamed = [] }
        | Trap -> begin
            let reason, inner_payloads = trap_checks net ~commitments exits in
            match reason with
            | Some r ->
                (* Trustees refuse to release; §4.6 blame runs. *)
                let blamed = blame net accepted in
                { delivered = []; aborted = Some r; rejected_submissions; blamed }
            | None ->
                let delivered = List.map Msg.unpad_plaintext (open_inners net inner_payloads) in
                { delivered; aborted = None; rejected_submissions; blamed = [] }
          end
      end

  (* ---- Buddy-group recovery (§4.5) ----

     When a group has more than h−1 failures, its live peers in the buddy
     group hand the re-shared sub-shares to replacement servers, which
     reconstruct the dead members' shares; the group then operates with the
     recovered key material. Here we recover the shares in place
     (replacement servers adopt the dead members' Shamir indices). *)
  let dead_positions (net : network) (g : group_state) : int list =
    List.filter (fun pos -> net.failed.(g.members.(pos - 1)))
      (List.init (Array.length g.members) (fun i -> i + 1))

  (* Recover one dead member's share from the buddy sub-shares; the
     replacement server takes over the dead member's Shamir index. The
     distributed runtime calls this per position so it can charge each
     reconstruction to the replacement machine individually. *)
  let recover_position (net : network) (gid : int) (pos : int) : unit =
    let g = net.groups.(gid) in
    let quorum = Config.quorum net.config in
    let rs = g.reshares.(pos - 1) in
    let recovered = Dkg.recover rs ~from:(List.init quorum (fun i -> i + 1)) in
    g.keys.Dkg.shares.(pos - 1) <- recovered;
    net.failed.(g.members.(pos - 1)) <- false

  let recover_group (net : network) (gid : int) : bool =
    let g = net.groups.(gid) in
    let quorum = Config.quorum net.config in
    let dead = dead_positions net g in
    let live = Array.length g.members - List.length dead in
    if live >= quorum then true (* nothing to do *)
    else begin
      (* Buddies are whole groups; their members act as recovery peers. All
         sub-shares exist (created at setup), so recovery succeeds whenever
         at least [quorum] sub-shares per dead member survive — with whole
         buddy groups alive this always holds. *)
      List.iter (fun pos -> recover_position net gid pos) dead;
      true
    end

  (* ---- Wire format ----

     Byte encodings for client submissions, so deployments can move them
     over real sockets. Layout (big-endian u32 lengths):
       u32 user | u32 entry_gid | u8 n_units
       per unit: u32 vec_len | vec bytes | u32 n_proofs | per proof: u32 len | bytes
       u8 has_commitment | 32-byte commitment?
     Decoding validates every group element (via the backend codecs). *)
  module Wire = struct
    let u32 (n : int) : string =
      String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

    let submission_to_bytes (s : submission) : string =
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (u32 s.user);
      Buffer.add_string buf (u32 s.entry_gid);
      Buffer.add_char buf (Char.chr (Array.length s.units));
      Array.iter
        (fun u ->
          let vec = El.vec_to_bytes u.vec in
          Buffer.add_string buf (u32 (String.length vec));
          Buffer.add_string buf vec;
          Buffer.add_string buf (u32 (Array.length u.proofs));
          Array.iter
            (fun pi ->
              let b = P.Enc_proof.to_bytes pi in
              Buffer.add_string buf (u32 (String.length b));
              Buffer.add_string buf b)
            u.proofs)
        s.units;
      (match s.commitment with
      | None -> Buffer.add_char buf '\000'
      | Some c ->
          Buffer.add_char buf '\001';
          Buffer.add_string buf c);
      Buffer.contents buf

    exception Malformed

    let submission_of_bytes (b : string) : submission option =
      let pos = ref 0 in
      let need n = if !pos + n > String.length b then raise Malformed in
      let read_u32 () =
        need 4;
        let v =
          (Char.code b.[!pos] lsl 24)
          lor (Char.code b.[!pos + 1] lsl 16)
          lor (Char.code b.[!pos + 2] lsl 8)
          lor Char.code b.[!pos + 3]
        in
        pos := !pos + 4;
        v
      in
      let read_bytes n =
        need n;
        let s = String.sub b !pos n in
        pos := !pos + n;
        s
      in
      let read_byte () =
        need 1;
        let c = Char.code b.[!pos] in
        incr pos;
        c
      in
      (* One Y=None cipher is (2*element_bytes + 1) bytes. *)
      let cipher_bytes = (2 * G.element_bytes) + 1 in
      try
        let user = read_u32 () in
        let entry_gid = read_u32 () in
        let n_units = read_byte () in
        if n_units > 2 then raise Malformed;
        let units =
          Array.init n_units (fun _ ->
              let vec_len = read_u32 () in
              if vec_len > 1 lsl 20 || vec_len mod cipher_bytes <> 0 then raise Malformed;
              let vec_bytes = read_bytes vec_len in
              let width = vec_len / cipher_bytes in
              let vec =
                Array.init width (fun i ->
                    match
                      El.cipher_of_bytes (String.sub vec_bytes (i * cipher_bytes) cipher_bytes)
                    with
                    | Some ct when ct.El.y = None -> ct
                    | _ -> raise Malformed)
              in
              let n_proofs = read_u32 () in
              if n_proofs > 4096 then raise Malformed;
              let proofs =
                Array.init n_proofs (fun _ ->
                    let len = read_u32 () in
                    if len > 4096 then raise Malformed;
                    match P.Enc_proof.of_bytes (read_bytes len) with
                    | Some pi -> pi
                    | None -> raise Malformed)
              in
              { vec; proofs })
        in
        let commitment =
          match read_byte () with
          | 0 -> None
          | 1 -> Some (read_bytes 32)
          | _ -> raise Malformed
        in
        if !pos <> String.length b then raise Malformed;
        Some { user; entry_gid; units; commitment }
      with Malformed -> None

    (* Atom_wire framing: one entry group's submissions as a checksummed
       [Control.Submissions] frame — what a coordinator ships to the
       group's head over a real transport. The decoder is all-or-nothing;
       receivers that want per-submission rejection decode the blobs
       individually with [submission_of_bytes]. *)
    let submissions_to_frame ~(gid : int) (subs : submission list) : string =
      Atom_wire.Control.encode
        (Atom_wire.Control.Submissions
           { gid; blobs = Array.of_list (List.map submission_to_bytes subs) })

    let submissions_of_frame (frame : string) : (int * submission list) option =
      match Atom_wire.Control.decode frame with
      | Some (Atom_wire.Control.Submissions { gid; blobs }) ->
          let subs =
            Array.fold_right
              (fun b acc ->
                match (acc, submission_of_bytes b) with
                | Some acc, Some s -> Some (s :: acc)
                | _ -> None)
              blobs (Some [])
          in
          Option.map (fun subs -> (gid, subs)) subs
      | _ -> None
  end

  (* ---- Session: multi-round operation (4.6 policy) ----

     Drives consecutive rounds with fresh group formation per round, filters
     blacklisted users, and lets a [Controller.t] decide the variant after
     disruptions. *)
  module Session = struct
    type t = {
      base_config : Config.t;
      controller : Controller.t;
      mutable round : int;
      board : Bulletin.t;
    }

    let create ?(controller = Controller.create ()) (config : Config.t) : t =
      { base_config = config; controller; round = 0; board = Bulletin.create () }

    type round_report = {
      round : int;
      variant_used : Config.variant;
      outcome : outcome;
      skipped_users : int list; (* blacklisted before submission *)
    }

    (* [submit_fn rng net user msg] builds the submission (exposed so tests
       can inject malicious users). *)
    let run_round (t : t) (rng : Atom_util.Rng.t)
        ?(submit_fn = fun rng net ~user ~entry_gid msg -> submit rng net ~user ~entry_gid msg)
        (messages : (int * string) list) : round_report =
      let variant_used = Controller.variant t.controller in
      let config = { t.base_config with Config.variant = variant_used } in
      let net = setup rng config ~round:t.round () in
      let keep, skipped =
        List.partition (fun (user, _) -> not (Controller.is_blacklisted t.controller user)) messages
      in
      let submissions =
        List.map
          (fun (user, msg) ->
            submit_fn rng net ~user ~entry_gid:(user mod config.Config.n_groups) msg)
          keep
      in
      let outcome = run rng net submissions in
      (match outcome.aborted with
      | None -> Bulletin.publish_round t.board ~round:t.round outcome.delivered
      | Some _ -> ());
      ignore
        (Controller.record t.controller
           ~aborted:(outcome.aborted <> None)
           ~blamed:outcome.blamed);
      let report =
        {
          round = t.round;
          variant_used;
          outcome;
          skipped_users = List.map fst skipped;
        }
      in
      t.round <- t.round + 1;
      report

    let board (t : t) : Bulletin.t = t.board
    let rounds_run (t : t) : int = t.round
  end

end
