(* Distributed runtime: the real-cryptography protocol executed as
   asynchronous group pipelines over the discrete-event network.

   [Protocol.Make] is the synchronous cryptographic ground truth;
   [Simulate.run] is the calibrated large-scale model. This module closes
   the loop between them: every group runs as a simulator process, batches
   of *real* ciphertexts travel between groups through latency- and
   bandwidth-modeled links, and each cryptographic operation charges the
   executing machine with its *measured* wall-clock duration (or, with
   [Calibrated], its Table-3 modeled cost — bit-identical across runs). The
   result is a round whose outputs are cryptographically real and whose
   latency reflects network structure — a laptop-scale stand-in for an
   actual deployment, used by the test suite to confirm that the two
   engines tell the same story.

   The runtime is churn-tolerant (§4.5): a fault plan ([Faults.plan]) can
   fail machines mid-round. Inter-group receives use timeouts instead of
   blocking forever; a group whose quorum collapses detects it (at an
   iteration boundary, or via a receive timeout while parked) and performs
   buddy-group recovery *inside virtual time* — replacement servers collect
   the re-shared sub-shares from the buddy group over modeled links, pay
   for reconstruction, and the re-formed quorum finishes the round with
   degraded latency instead of aborting. Traffic toward dead machines is
   retransmitted with exponential backoff by [Net], so a batch sent while
   the receiver was down lands once recovery brings it back. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (Pr : module type of Protocol.Make (G)) =
struct
  open Atom_sim
  module El = Pr.El

  (* How cryptographic work is charged to machines in virtual time.
     [Measured] times the real computation on the wall clock (faithful but
     host-dependent); [Calibrated] charges per-op costs from a calibration
     table, making [report.latency] a pure function of (seed, fault plan). *)
  type cost_model = Measured | Calibrated of Calibration.t

  type fault_stats = {
    failures_injected : int; (* machines actually killed by the plan *)
    recoveries : int; (* dead member positions resurrected via buddies *)
    retransmits : int;
    timeouts_fired : int; (* recv timeouts that expired *)
    messages_dropped : int; (* messages abandoned after max retries *)
    bytes_dropped : float;
    recovery_latency : float; (* virtual seconds spent inside recovery *)
  }

  type report = {
    outcome : Pr.outcome;
    latency : float; (* virtual seconds: measured compute + modeled network *)
    events : int;
    bytes_sent : float;
    faults : fault_stats;
    abort_error : string option; (* exception text, if a pipeline crashed *)
  }

  let unit_bytes (net : Pr.network) : float =
    float_of_int (net.Pr.width * ((2 * G.element_bytes) + 1 + G.element_bytes))

  (* Raised by a group that struck out waiting for an upstream batch. *)
  exception Upstream_silent of { iter : int; got : int; expected : int }

  (* [obs] defaults to a live metrics registry (tracing off): [fault_stats]
     is assembled from registry counters, so passing [Atom_obs.Ctx.noop]
     zeroes the churn telemetry in the report. Pass a tracing context to get
     per-(group, iteration) spans and phase tracks in virtual time. *)
  let run ?(obs = Atom_obs.Ctx.create ()) ?(clusters = 4) ?(faults : Faults.plan = [])
      ?(loss_prob = 0.) ?(recv_timeout = 2.0) ?(max_timeouts = 32) ?(costs = Measured)
      (rng : Atom_util.Rng.t) (net : Pr.network) (submissions : Pr.submission list) : report =
    let cfg = net.Pr.config in
    let engine = Engine.create ~obs () in
    let reg = Atom_obs.Ctx.metrics obs in
    let tr = Atom_obs.Ctx.tracer obs in
    let simnet = Net.create engine ~loss_prob ~loss_seed:(cfg.Config.seed lxor 0x10ad) in
    let fleet_rng = Atom_util.Rng.create cfg.Config.seed in
    let machines =
      Array.init cfg.Config.n_servers (fun id ->
          Machine.create engine ~id ~cores:(Machine.paper_cores fleet_rng)
            ~bandwidth:(Machine.paper_bandwidth fleet_rng)
            ~cluster:(Atom_util.Rng.int_below fleet_rng clusters))
    in
    (* Mirror pre-existing protocol-level failures into the fleet. *)
    Array.iteri (fun sid dead -> if dead then Machine.fail machines.(sid)) net.Pr.failed;
    (* The fault plan flips machine liveness and the protocol's registry in
       lock-step, on the engine clock. *)
    let injector =
      Faults.install engine ~machines faults
        ~on_fail:(fun sid -> Pr.fail_server net sid)
        ~on_recover:(fun sid -> Pr.recover_server net sid)
    in
    (* Run [f] on [m], charging either its wall-clock duration or the
       modeled cost. *)
    let charge m ~modeled f =
      match costs with
      | Measured ->
          let t0 = Unix.gettimeofday () in
          let result = f () in
          Machine.job m ~seconds:(Unix.gettimeofday () -. t0);
          result
      | Calibrated cal ->
          let result = f () in
          Machine.job m ~seconds:(Float.max 0. (modeled cal));
          result
    in
    let n_groups = cfg.Config.n_groups in
    let iters = net.Pr.topo.Atom_topology.Topology.iterations in
    let quorum = Config.quorum cfg in
    let points = float_of_int net.Pr.width in
    (* Entry verification and initial holdings (synchronous prologue —
       submission arrival is not part of the measured round, matching the
       paper's "first server receives a message" start point). *)
    let seen = Hashtbl.create 256 in
    let accepted, rejected = List.partition (Pr.verify_submission net seen) submissions in
    let rejected_submissions = List.map (fun s -> s.Pr.user) rejected in
    let commitments : (int, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (s : Pr.submission) ->
        match s.Pr.commitment with
        | Some c ->
            Hashtbl.replace commitments s.Pr.entry_gid
              (c :: Option.value ~default:[] (Hashtbl.find_opt commitments s.Pr.entry_gid))
        | None -> ())
      accepted;
    let initial = Array.make n_groups [] in
    List.iter
      (fun (s : Pr.submission) ->
        Array.iter (fun u -> initial.(s.Pr.entry_gid) <- u.Pr.vec :: initial.(s.Pr.entry_gid)) s.Pr.units)
      accepted;
    (* Inter-group transport: one mailbox per (destination group, layer), so
       a batch racing ahead of a slow group parks in its own slot instead of
       being requeued through a polling loop. *)
    let inboxes : El.vec array Mailbox.t array array =
      Array.init n_groups (fun _ -> Array.init (iters + 1) (fun _ -> Mailbox.create engine))
    in
    let exit_box : (int * El.vec array) Mailbox.t = Mailbox.create engine in
    let abort_box : Pr.abort_reason Mailbox.t = Mailbox.create engine in
    (* Churn telemetry shared by all group processes, kept in the registry
       so hosts can read it live and [fault_stats] is just a read-out. *)
    let m_recoveries = Atom_obs.Metrics.counter reg "dist.recoveries" in
    let m_timeouts = Atom_obs.Metrics.counter reg "dist.timeouts" in
    let m_recovery_seconds = Atom_obs.Metrics.counter reg "dist.recovery_seconds" in
    let abort_error = ref None in
    let in_degree ~iter ~gid =
      (* Count groups listing [gid] among their neighbours at [iter]. *)
      let d = ref 0 in
      for g = 0 to n_groups - 1 do
        let nbrs = net.Pr.topo.Atom_topology.Topology.neighbors ~iter ~group:g in
        if Array.exists (( = ) gid) nbrs then incr d
      done;
      !d
    in
    let ub = unit_bytes net in
    let share_bytes = float_of_int (G.element_bytes + 4) (* Shamir index + scalar *) in
    (* The machine a batch for group [gid] should be addressed to: its first
       live member (falling back to position 0 if the whole group is down —
       Net's retransmission then waits out the group's recovery). *)
    let dst_machine (gid : int) : Machine.t =
      let members = net.Pr.groups.(gid).Pr.members in
      let rec pick i =
        if i >= Array.length members then machines.(members.(0))
        else if not net.Pr.failed.(members.(i)) then machines.(members.(i))
        else pick (i + 1)
      in
      pick 0
    in
    (* §4.5 buddy-group recovery, charged in virtual time: for every dead
       position, the replacement server (adopting the dead member's Shamir
       index) waits for the slowest of [quorum] sub-share transfers from the
       buddy group's machines, then pays for reconstructing the share. *)
    let recover_group_timed ?phases (g : Pr.group_state) : unit =
      let t0 = Engine.now engine in
      (* Attribute the healing time to the "recovery" phase, then return the
         track to whatever phase it was interrupted in. *)
      let resume =
        match phases with
        | None -> fun () -> ()
        | Some ph ->
            let before = Atom_obs.Trace.Phase.current ph in
            Atom_obs.Trace.Phase.switch ph "recovery";
            fun () -> Atom_obs.Trace.Phase.switch ph before
      in
      let buddy_members = net.Pr.groups.(g.Pr.buddies.(0)).Pr.members in
      List.iter
        (fun pos ->
          let replacement = machines.(g.Pr.members.(pos - 1)) in
          Machine.recover replacement;
          let slowest = ref 0. in
          for b = 0 to quorum - 1 do
            let bm = machines.(buddy_members.(b mod Array.length buddy_members)) in
            if bm.Machine.id <> replacement.Machine.id then begin
              let d =
                Net.latency simnet bm replacement
                +. Net.transfer_time bm replacement ~bytes:share_bytes
              in
              if d > !slowest then slowest := d
            end
          done;
          Engine.sleep engine !slowest;
          simnet.Net.bytes_sent <- simnet.Net.bytes_sent +. (float_of_int quorum *. share_bytes);
          charge replacement
            ~modeled:(fun cal -> float_of_int quorum *. cal.Calibration.reenc)
            (fun () -> Pr.recover_position net g.Pr.gid pos);
          Atom_obs.Metrics.incr m_recoveries)
        (Pr.dead_positions net g);
      Atom_obs.Metrics.add m_recovery_seconds (Engine.now engine -. t0);
      resume ()
    in
    (* The quorum to route with right now; collapses trigger recovery. *)
    let ensure_quorum ?phases (g : Pr.group_state) : int list =
      match Pr.live_quorum net g with
      | Some q -> q
      | None -> begin
          recover_group_timed ?phases g;
          match Pr.live_quorum net g with
          | Some q -> q
          | None ->
              failwith
                (Printf.sprintf "group %d unrecoverable: buddy recovery left no quorum" g.Pr.gid)
        end
    in
    Array.iter
      (fun (g : Pr.group_state) ->
        Engine.spawn engine (fun () ->
            let gid = g.Pr.gid in
            Atom_obs.Trace.thread_name tr ~tid:gid (Printf.sprintf "group %d" gid);
            (* Exclusive phase accounting: this track is inside exactly one
               of verify/network/shuffle/decrypt/recovery at every instant,
               so its per-phase durations tile the pipeline's lifetime and
               the critical group's total equals the round latency. *)
            let phases = Atom_obs.Trace.Phase.start tr ~tid:gid "verify" in
            let member pos = machines.(g.Pr.members.(pos - 1)) in
            let units = ref (Array.of_list (List.rev initial.(gid))) in
            try
              (* Entry verification runs synchronously in the prologue (the
                 crypto is already checked); charge its modeled cost to the
                 group's first live member so the virtual timeline includes
                 the verify step the paper's round starts with. Under
                 [Measured] the charge is ~0 — the work was timed outside
                 the round. *)
              (match Pr.live_quorum net g with
              | Some (pos :: _) ->
                  charge (member pos)
                    ~modeled:(fun cal ->
                      float_of_int (Array.length !units)
                      *. points *. cal.Calibration.encproof_verify)
                    (fun () -> ())
              | _ -> ());
              for iter = 0 to iters - 1 do
                let span =
                  Atom_obs.Trace.begin_span tr ~cat:"iteration"
                    ~args:[ ("group", Atom_obs.Trace.I gid); ("iter", Atom_obs.Trace.I iter) ]
                    ~tid:gid
                    (Printf.sprintf "iter %d" iter)
                in
                Atom_obs.Trace.Phase.switch phases "network";
                (* Collect this layer's inputs (iteration 0 uses the client
                   submissions directly). Timeouts double as the liveness
                   probe: a group parked here when its machines die heals
                   itself so upstream retransmissions find a live endpoint. *)
                if iter > 0 then begin
                  let expected = in_degree ~iter:(iter - 1) ~gid in
                  let parts = ref [] in
                  let got = ref 0 in
                  let strikes = ref 0 in
                  while !got < expected do
                    match Mailbox.recv_timeout inboxes.(gid).(iter) ~timeout:recv_timeout with
                    | Some batch ->
                        parts := batch :: !parts;
                        incr got
                    | None ->
                        Atom_obs.Metrics.incr m_timeouts;
                        incr strikes;
                        if !strikes > max_timeouts then
                          raise (Upstream_silent { iter; got = !got; expected });
                        (match Pr.live_quorum net g with
                        | Some _ -> ()
                        | None -> recover_group_timed ~phases g)
                  done;
                  units := Array.concat (List.rev !parts)
                end;
                (* Pass 1: sequential real shuffles along the quorum. Members
                   that died since the quorum formed are skipped (their
                   permutation layer is lost, which is harmless). *)
                let quorum_positions = ensure_quorum ~phases g in
                let pk = Pr.group_pk net gid in
                let prev = ref None in
                List.iter
                  (fun pos ->
                    let m = member pos in
                    if m.Machine.alive then begin
                      (match !prev with
                      | Some pm ->
                          Atom_obs.Trace.Phase.switch phases "network";
                          Engine.sleep engine
                            (Net.latency simnet pm m
                            +. Net.transfer_time pm m
                                 ~bytes:(float_of_int (Array.length !units) *. ub))
                      | None -> ());
                      prev := Some m;
                      Atom_obs.Trace.Phase.switch phases "shuffle";
                      units :=
                        charge m
                          ~modeled:(fun cal ->
                            float_of_int (Array.length !units)
                            *. points *. cal.Calibration.shuffle_per_msg)
                          (fun () ->
                            match El.shuffle_vec rng pk !units with
                            | Some (shuffled, _) -> shuffled
                            | None -> [||])
                    end)
                  quorum_positions;
                (* Members may have died during pass 1; the threshold
                   decryption below needs a full live quorum for its
                   Lagrange coefficients, so re-form it (recovering if the
                   group collapsed). *)
                let quorum_positions =
                  if List.for_all (fun pos -> (member pos).Machine.alive) quorum_positions then
                    quorum_positions
                  else ensure_quorum ~phases g
                in
                Atom_obs.Trace.Phase.switch phases "decrypt";
                (* Divide + pass 2: decrypt-and-reencrypt per batch. *)
                let neighbors =
                  net.Pr.topo.Atom_topology.Topology.neighbors ~iter ~group:g.Pr.gid
                in
                let beta = Array.length neighbors in
                let last_iter = iter = iters - 1 in
                let batches = Array.make beta [] in
                Array.iteri (fun i u -> batches.(i mod beta) <- u :: batches.(i mod beta)) !units;
                let batches = Array.map (fun l -> Array.of_list (List.rev l)) batches in
                let outgoing = Array.make beta [||] in
                Array.iteri
                  (fun bi batch ->
                    let next_pk =
                      if last_iter then None else Some (Pr.group_pk net neighbors.(bi))
                    in
                    let current = ref batch in
                    List.iter
                      (fun pos ->
                        let m = member pos in
                        let share = g.Pr.keys.Pr.Dkg.shares.(pos - 1).Pr.Sh.value in
                        let coeff = Pr.Sh.lagrange_at_zero ~xs:quorum_positions ~i:pos in
                        current :=
                          charge m
                            ~modeled:(fun cal ->
                              float_of_int (Array.length !current)
                              *. points *. cal.Calibration.reenc)
                            (fun () ->
                              Array.map
                                (fun v -> fst (El.reenc_vec rng ~share ~coeff ~next_pk v))
                                !current))
                      quorum_positions;
                    outgoing.(bi) <-
                      (if last_iter then !current else Array.map El.clear_y_vec !current))
                  batches;
                (* Forward through the last live quorum member's NIC. *)
                Atom_obs.Trace.Phase.switch phases "network";
                let last = member (List.nth quorum_positions (List.length quorum_positions - 1)) in
                if last_iter then
                  Mailbox.send exit_box (gid, Array.concat (Array.to_list outgoing))
                else
                  Array.iteri
                    (fun bi batch ->
                      let bytes = float_of_int (Array.length batch) *. ub in
                      Net.send simnet ~src:last ~dst:(dst_machine neighbors.(bi)) ~bytes
                        inboxes.(neighbors.(bi)).(iter + 1)
                        batch)
                    outgoing;
                Atom_obs.Trace.end_span tr span
              done;
              Atom_obs.Trace.Phase.stop phases
            with
            | Upstream_silent { iter; got; expected } ->
                Atom_obs.Trace.Phase.stop phases;
                if !abort_error = None then
                  abort_error :=
                    Some
                      (Printf.sprintf
                         "group %d: upstream silent at iteration %d (%d/%d batches after %d timeouts)"
                         gid iter got expected max_timeouts);
                Atom_obs.Log.warn "dist: group %d aborting, upstream silent at iteration %d" gid
                  iter;
                Mailbox.send abort_box (Pr.Group_down { gid });
                Mailbox.send exit_box (gid, [||])
            | e ->
                (* A real crypto/logic bug: record the exception text so it
                   surfaces in the report instead of masquerading as churn. *)
                Atom_obs.Trace.Phase.stop phases;
                let detail = Printexc.to_string e in
                if !abort_error = None then abort_error := Some detail;
                Atom_obs.Log.error "dist: group %d pipeline failed: %s" gid detail;
                Mailbox.send abort_box (Pr.Runtime_failure { gid; detail });
                Mailbox.send exit_box (gid, [||])))
      net.Pr.groups;
    (* Collector: assemble exit holdings, run the variant's endgame. Every
       group sends exactly one exit message — empty on its abort path — so
       the collector always completes and the round ends with whatever was
       delivered. *)
    let result = ref None in
    Engine.spawn engine (fun () ->
        let holdings = Array.make n_groups [||] in
        for _ = 1 to n_groups do
          let gid, units = Mailbox.recv exit_box in
          holdings.(gid) <- units
        done;
        let exits = Pr.decode_exit net holdings in
        let outcome : Pr.outcome =
          match cfg.Config.variant with
          | Config.Basic | Config.Nizk ->
              let delivered =
                List.filter_map
                  (fun (u : Pr.exit_unit) ->
                    if u.Pr.tag = Pr.Msg.tag_message then Some (Pr.Msg.unpad_plaintext u.Pr.payload)
                    else None)
                  exits
              in
              { Pr.delivered; aborted = None; rejected_submissions; blamed = [] }
          | Config.Trap -> begin
              let reason, inner_payloads = Pr.trap_checks net ~commitments exits in
              match reason with
              | Some r ->
                  { Pr.delivered = []; aborted = Some r; rejected_submissions; blamed = [] }
              | None ->
                  let delivered = List.map Pr.Msg.unpad_plaintext (Pr.open_inners net inner_payloads) in
                  { Pr.delivered; aborted = None; rejected_submissions; blamed = [] }
            end
        in
        result := Some outcome);
    let latency = Engine.run engine in
    Machine.publish_fleet reg machines;
    let first_abort = Mailbox.try_recv abort_box in
    let outcome =
      match (!result, first_abort) with
      | Some o, Some reason when o.Pr.aborted = None ->
          (* The endgame survived but a pipeline gave up along the way:
             surface the pipeline's reason as the round verdict. *)
          { o with Pr.aborted = Some reason }
      | Some o, _ -> o
      | None, Some reason ->
          { Pr.delivered = []; aborted = Some reason; rejected_submissions; blamed = [] }
      | None, None ->
          { Pr.delivered = [];
            aborted = Some (Pr.Group_down { gid = -1 });
            rejected_submissions;
            blamed = [] }
    in
    {
      outcome;
      latency;
      events = Engine.events_run engine;
      bytes_sent = simnet.Net.bytes_sent;
      faults =
        (* Assembled from the registry: the counters are the ground truth,
           the report is a read-out. *)
        {
          failures_injected = injector.Faults.failures_injected;
          recoveries = int_of_float (Atom_obs.Metrics.counter_value reg "dist.recoveries");
          retransmits = simnet.Net.retransmits;
          timeouts_fired = int_of_float (Atom_obs.Metrics.counter_value reg "dist.timeouts");
          messages_dropped = simnet.Net.messages_dropped;
          bytes_dropped = simnet.Net.bytes_dropped;
          recovery_latency = Atom_obs.Metrics.counter_value reg "dist.recovery_seconds";
        };
      abort_error = !abort_error;
    }
end
