(* Large-scale modeled execution over the discrete-event simulator.

   This is the engine behind the figure reproductions (Figures 5–11): the
   protocol's *structure* — sequential shuffle / reencrypt chains within
   each anytrust group, staggered machine sharing across groups, layer
   barriers of the square network, per-pair link latencies, NIC
   serialization, TLS connection setup, trustee interaction — is executed
   event by event, while the cryptographic payloads are replaced by
   calibrated virtual CPU charges (Table 3 constants by default, or costs
   re-measured on this host). The paper itself uses this technique for its
   Figure 11 ("we modified the implementation to model the expected latency
   given an input using values shown in Table 3").

   Modeling notes, cross-checked against the paper's own numbers:
   - One group's pipeline is single-threaded per server (a member processes
     its group's batch on one core); multi-core machines serve several
     groups concurrently through a per-machine core semaphore. This
     reproduces the §6.2 arithmetic: 1M messages on 1,024 groups ⇒ 2,048
     trap-variant units of 5 points per group; a 32-stage chain at
     (104.5 + 335)µs per point-unit per stage gives ≈145 s per iteration —
     ten iterations land at the paper's ≈28 min.
   - [intra_parallel] instead spreads one batch across the owning machine's
     cores (the Figure 7 experiment), with a variant-specific parallel
     fraction (trap ≈ 0.99, NIZK ≈ 0.96: proof generation is sequential).
   - The square network is all-to-all between layers, so a layer barrier is
     exact: every group's inputs include the slowest group's batch. *)

open Atom_sim

type params = {
  config : Config.t;
  cal : Calibration.t;
  n_messages : int; (* real user messages entering the round *)
  points_per_msg : int; (* paper packing: ceil(msg_bytes / 32) *)
  dummies : int; (* differential-privacy dummy messages (dialing) *)
  intra_parallel : bool;
  parallel_fraction : float;
  clusters : int;
  wire_bytes_per_point : float; (* serialized (R, c, Y) size per element *)
  layer_overhead : float;
      (* Fixed extra seconds per mixing layer. Default 0. The Figure-11
         reproduction sets the value fitted to the paper's own measurements
         (≈2,000 s per layer at billion-message scale), which the authors
         attribute to connection management: G² inter-layer connections and
         trustee TLS churn (§6.2). *)
}

let microblog ?(cal = Calibration.paper) (config : Config.t) ~(n_messages : int) : params =
  {
    config;
    cal;
    n_messages;
    points_per_msg = (config.Config.msg_bytes + 31) / 32;
    dummies = 0;
    intra_parallel = false;
    parallel_fraction = 0.99;
    clusters = 8;
    wire_bytes_per_point = 100.;
    layer_overhead = 0.;
  }

(* Dialing: 80-byte messages (§5) plus the Vuvuzela-style dummies the
   trustee group injects (µ per trustee server on average). *)
let dialing ?(cal = Calibration.paper) (config : Config.t) ~(n_messages : int) : params =
  let trustees = min config.Config.group_size config.Config.n_servers in
  {
    config = { config with Config.msg_bytes = 80 };
    cal;
    n_messages;
    points_per_msg = (80 + 31) / 32;
    dummies = int_of_float (float_of_int trustees *. config.Config.dummy_mu);
    intra_parallel = false;
    parallel_fraction = 0.99;
    clusters = 8;
    wire_bytes_per_point = 100.;
    layer_overhead = 0.;
  }

(* Analytic time of a single mixing iteration for one k-server group
   (Figures 5, 6 and 7): the sequential shuffle pass then the sequential
   decrypt-and-reencrypt pass, plus intra-group hops. [cores] only matters
   with [intra_parallel] (the Figure-7 experiment); the NIZK variant's proof
   work is mostly sequential, captured by a lower parallel fraction. *)
let one_iteration_seconds ~(cal : Calibration.t) ~(variant : Config.variant) ~(k : int)
    ~(units : int) ~(points : int) ?(cores = 4) ?(intra_parallel = false)
    ?(include_network = true) ?(hop_latency = 0.040) ?(bandwidth = 12.5e6)
    ?(wire_bytes_per_point = 100.) () : float =
  let u = float_of_int units and w = float_of_int points in
  let pf =
    match variant with Config.Nizk -> 0.96 | Config.Trap | Config.Basic -> 0.99
  in
  let par seconds =
    if intra_parallel then
      (seconds *. (1. -. pf)) +. (seconds *. pf /. float_of_int cores)
    else seconds
  in
  let shuffle_stage =
    par (u *. w *. cal.Calibration.shuffle_per_msg)
    +.
    match variant with
    | Config.Nizk ->
        par (u *. w *. cal.Calibration.shufproof_prove_per_msg)
        +. par (u *. w *. cal.Calibration.shufproof_verify_per_msg)
    | Config.Trap | Config.Basic -> 0.
  in
  let reenc_stage =
    par (u *. w *. cal.Calibration.reenc)
    +.
    match variant with
    | Config.Nizk ->
        par (u *. w *. cal.Calibration.reencproof_prove)
        +. par (u *. w *. cal.Calibration.reencproof_verify)
    | Config.Trap | Config.Basic -> 0.
  in
  let hop =
    if include_network then hop_latency +. (u *. w *. wire_bytes_per_point /. bandwidth) else 0.
  in
  (float_of_int k *. (shuffle_stage +. reenc_stage)) +. (2. *. float_of_int (k - 1) *. hop)

type result = {
  latency : float; (* end-to-end round latency, seconds *)
  iteration_times : float array; (* wall-clock end of each mixing layer *)
  bytes_sent : float;
  connections : int;
  events : int;
  max_server_bandwidth : float; (* peak per-server average send rate, B/s *)
  retransmits : int; (* link-layer retries (loss / dead receivers) *)
  messages_dropped : int; (* messages abandoned after max retries *)
  bytes_dropped : float;
}

(* Modeled cost of one §4.5 buddy-group recovery: each dead member's
   replacement server waits for the slowest of [quorum] sub-share transfers
   from the buddy group and pays a Lagrange reconstruction, charged like
   [quorum] re-encryptions. Sequential over dead members, matching the
   distributed runtime's accounting — the closed-form hook behind capacity
   planning for churny fleets. *)
let recovery_seconds ~(cal : Calibration.t) ~(quorum : int) ~(dead : int)
    ?(hop_latency = 0.040) ?(bandwidth = 12.5e6) ?(share_bytes = 36.) () : float =
  if dead <= 0 then 0.
  else
    let per_dead =
      hop_latency +. (share_bytes /. bandwidth)
      +. (float_of_int quorum *. cal.Calibration.reenc)
    in
    float_of_int dead *. per_dead

(* [obs] defaults to no-op observability: metrics and spans cost one dead
   branch each. Pass a tracing context to get per-(group, iteration) spans
   and exclusive phase tracks (verify/shuffle/decrypt/network/barrier/exit)
   stamped in virtual time — pure functions of the seed. *)
let run ?(obs = Atom_obs.Ctx.noop) (p : params) : result =
  Config.validate p.config;
  let cfg = p.config in
  let engine = Engine.create ~obs () in
  let tr = Atom_obs.Ctx.tracer obs in
  let net = Net.create engine in
  let rng = Atom_util.Rng.create cfg.Config.seed in
  let machines =
    Array.init cfg.Config.n_servers (fun id ->
        Machine.create engine ~id ~cores:(Machine.paper_cores rng)
          ~bandwidth:(Machine.paper_bandwidth rng)
          ~cluster:(Atom_util.Rng.int_below rng p.clusters))
  in
  let beacon = Beacon.create ~seed:cfg.Config.seed in
  let formation =
    Group_formation.form beacon ~round:0 ~n_servers:cfg.Config.n_servers
      ~n_groups:cfg.Config.n_groups ~group_size:cfg.Config.group_size ()
  in
  let topo = Config.topology cfg in
  let iters = topo.Atom_topology.Topology.iterations in
  let n_groups = cfg.Config.n_groups in
  let quorum = Config.quorum cfg in
  let trap = cfg.Config.variant = Config.Trap in
  let nizk = cfg.Config.variant = Config.Nizk in
  let w = float_of_int p.points_per_msg in
  (* Units routed per group: traps double the count. *)
  let total_units = (p.n_messages + p.dummies) * if trap then 2 else 1 in
  let units_per_group = (total_units + n_groups - 1) / n_groups in
  let u = float_of_int units_per_group in
  let cal = p.cal in
  (* Single-core job charging, with the Figure-7 intra-batch parallel mode. *)
  let job (m : Machine.t) (seconds : float) : unit =
    let seconds =
      if p.intra_parallel then
        (seconds *. (1. -. p.parallel_fraction))
        +. (seconds *. p.parallel_fraction /. float_of_int m.Machine.cores)
      else seconds
    in
    Machine.job m ~seconds
  in
  (* Spawn a job on each machine and wait for all (NIZK verification, entry
     proof checking). *)
  let parallel_jobs (ms : Machine.t list) (seconds : float) : unit =
    let done_mb = Mailbox.create engine in
    List.iter
      (fun m ->
        Engine.spawn engine (fun () ->
            job m seconds;
            Mailbox.send done_mb ()))
      ms;
    ignore (Mailbox.recv_n done_mb (List.length ms))
  in
  let unit_bytes = w *. p.wire_bytes_per_point in
  let batch_bytes = u *. unit_bytes in
  (* Layer barrier: exact for the square network (all-to-all layers). *)
  let layer_done = Mailbox.create engine in
  let layer_start = Array.init n_groups (fun _ -> Mailbox.create engine) in
  let iteration_times = Array.make iters 0. in
  let finished = Mailbox.create engine in
  (* Coordinator: releases layers and records their completion times. *)
  Engine.spawn engine (fun () ->
      for iter = 0 to iters - 1 do
        Array.iter (fun mb -> Mailbox.send mb iter) layer_start;
        ignore (Mailbox.recv_n layer_done n_groups);
        iteration_times.(iter) <- Engine.now engine;
        (* Cross-layer delivery: each group's inputs include batches from
           other clusters; the barrier closes after the slowest hop. *)
        if iter < iters - 1 then Engine.sleep engine (net.Net.inter_max +. p.layer_overhead)
      done;
      Mailbox.send finished `Mixing_done);
  (* Group pipelines. *)
  Array.iter
    (fun (g : Group_formation.group) ->
      Engine.spawn engine (fun () ->
          let gid = g.Group_formation.gid in
          Atom_obs.Trace.thread_name tr ~tid:gid (Printf.sprintf "group %d" gid);
          (* Exclusive phase accounting: the track is inside exactly one of
             verify/shuffle/decrypt/network/barrier/exit at every instant,
             so phase durations tile the pipeline's lifetime. *)
          let phases = Atom_obs.Trace.Phase.start tr ~tid:gid "verify" in
          let members =
            Array.to_list (Array.sub g.Group_formation.members 0 quorum)
            |> List.map (fun sid -> machines.(sid))
          in
          let last_machine = List.nth members (quorum - 1) in
          (* Entry: all members verify the users' EncProofs in parallel. *)
          parallel_jobs members (u *. w *. cal.Calibration.encproof_verify);
          for iter = 0 to iters - 1 do
            Atom_obs.Trace.Phase.switch phases "barrier";
            let (_ : int) = Mailbox.recv layer_start.(gid) in
            let span =
              Atom_obs.Trace.begin_span tr ~cat:"iteration"
                ~args:[ ("group", Atom_obs.Trace.I gid); ("iter", Atom_obs.Trace.I iter) ]
                ~tid:gid
                (Printf.sprintf "iter %d" iter)
            in
            (* Pass 1: sequential shuffle chain. *)
            let rec chain prev = function
              | [] -> ()
              | m :: rest ->
                  Atom_obs.Trace.Phase.switch phases "shuffle";
                  job m (u *. w *. cal.Calibration.shuffle_per_msg);
                  if nizk then begin
                    job m (u *. w *. cal.Calibration.shufproof_prove_per_msg);
                    let others = List.filter (fun o -> o != m) members in
                    Atom_obs.Trace.Phase.switch phases "verify";
                    parallel_jobs others (u *. w *. cal.Calibration.shufproof_verify_per_msg)
                  end;
                  (match prev with
                  | Some pm ->
                      Atom_obs.Trace.Phase.switch phases "network";
                      Engine.sleep engine
                        (Net.latency net pm m +. Net.transfer_time pm m ~bytes:batch_bytes)
                  | None -> ());
                  chain (Some m) rest
            in
            chain None members;
            (* Pass 2: sequential decrypt-and-reencrypt chain. *)
            let rec chain2 prev = function
              | [] -> ()
              | m :: rest ->
                  Atom_obs.Trace.Phase.switch phases "decrypt";
                  job m (u *. w *. cal.Calibration.reenc);
                  if nizk then begin
                    job m (u *. w *. cal.Calibration.reencproof_prove);
                    let others = List.filter (fun o -> o != m) members in
                    Atom_obs.Trace.Phase.switch phases "verify";
                    parallel_jobs others (u *. w *. cal.Calibration.reencproof_verify)
                  end;
                  (match prev with
                  | Some pm ->
                      Atom_obs.Trace.Phase.switch phases "network";
                      Engine.sleep engine
                        (Net.latency net pm m +. Net.transfer_time pm m ~bytes:batch_bytes)
                  | None -> ());
                  chain2 (Some m) rest
            in
            chain2 None members;
            (* Forward: the last server serializes β batches out its NIC;
               first iteration pays TLS setup toward every neighbour. *)
            if iter < iters - 1 then begin
              Atom_obs.Trace.Phase.switch phases "network";
              let beta =
                Array.length (topo.Atom_topology.Topology.neighbors ~iter ~group:gid)
              in
              if iter = 0 then begin
                job last_machine (float_of_int beta *. net.Net.tls_cpu);
                net.Net.connections_opened <- net.Net.connections_opened + beta
              end;
              Resource.with_resource last_machine.Machine.nic (fun () ->
                  Engine.sleep engine (batch_bytes /. last_machine.Machine.bandwidth));
              net.Net.bytes_sent <- net.Net.bytes_sent +. batch_bytes
            end;
            Atom_obs.Trace.end_span tr span;
            Mailbox.send layer_done ()
          done;
          (* Exit phase. *)
          Atom_obs.Trace.Phase.switch phases "exit";
          if trap then
            (* Decode units, check trap commitments, report to trustees. *)
            job last_machine (u *. cal.Calibration.commit_check);
          Atom_obs.Trace.Phase.stop phases;
          Mailbox.send finished (`Report gid)))
    formation.Group_formation.groups;
  (* Trustee endgame (trap variant): collect G reports over fresh TLS
     connections, release shares, groups open inner ciphertexts. *)
  let trustee_count = min cfg.Config.group_size cfg.Config.n_servers in
  let trustee_machines =
    Group_formation.form_trustees beacon ~round:0 ~n_servers:cfg.Config.n_servers
      ~group_size:trustee_count
    |> Array.map (fun sid -> machines.(sid))
  in
  let final = Mailbox.create engine in
  Engine.spawn engine (fun () ->
      (* The trustee track spans the whole round (started at t = 0), so in
         the trap variant — where the endgame runs past the last group's
         exit — the critical track still tiles [0, latency]: mostly
         "barrier" (waiting out the mixing), then the endgame phases. *)
      let t_tid = n_groups in
      Atom_obs.Trace.thread_name tr ~tid:t_tid "trustees";
      let phases = Atom_obs.Trace.Phase.start tr ~tid:t_tid "barrier" in
      (* Wait for mixing and all G exit reports. *)
      let expected = 1 + n_groups in
      ignore (Mailbox.recv_n finished expected);
      if trap then begin
        (* Each trustee accepts G report connections and processes them. *)
        Atom_obs.Trace.Phase.switch phases "exit";
        let per_trustee = float_of_int n_groups *. (net.Net.tls_cpu +. 1e-5) in
        net.Net.connections_opened <-
          net.Net.connections_opened + (n_groups * Array.length trustee_machines);
        let done_mb = Mailbox.create engine in
        Array.iter
          (fun tm ->
            Engine.spawn engine (fun () ->
                Machine.job tm ~seconds:per_trustee;
                Mailbox.send done_mb ()))
          trustee_machines;
        ignore (Mailbox.recv_n done_mb (Array.length trustee_machines));
        (* Report RTT + share release back to the groups. *)
        Atom_obs.Trace.Phase.switch phases "network";
        Engine.sleep engine (2. *. net.Net.inter_max);
        (* Groups decrypt the inner ciphertexts (half the units). *)
        Atom_obs.Trace.Phase.switch phases "decrypt";
        Engine.sleep engine (u /. 2. *. cal.Calibration.kem_open)
      end;
      Atom_obs.Trace.Phase.stop phases;
      Mailbox.send final ());
  Engine.spawn engine (fun () ->
      let () = Mailbox.recv final in
      ());
  let latency = Engine.run engine in
  Machine.publish_fleet (Atom_obs.Ctx.metrics obs) machines;
  let max_bw =
    (* Peak average send rate per server: forwarded bytes per iteration over
       the iteration time (reporting aid for the §6.2 bandwidth claim). *)
    if latency > 0. then
      float_of_int iters *. batch_bytes /. latency
    else 0.
  in
  {
    latency;
    iteration_times;
    bytes_sent = net.Net.bytes_sent;
    connections = net.Net.connections_opened;
    events = Engine.events_run engine;
    max_server_bandwidth = max_bw;
    retransmits = net.Net.retransmits;
    messages_dropped = net.Net.messages_dropped;
    bytes_dropped = net.Net.bytes_dropped;
  }

(* ---- Pipelined operation (§4.7) ----

   When throughput matters more than latency, different sets of servers man
   different layers of the permutation network and consecutive rounds
   stream through: layer l mixes round r while layer l+1 mixes round r−1.
   The network then emits one round's worth of messages every "one group's
   worth of latency" instead of every T of them. The paper describes but
   does not evaluate this mode; [run_pipelined] makes the trade-off
   measurable (see the `ablation_pipeline` bench). *)

type pipeline_result = {
  first_output : float; (* latency of round 0: unchanged by pipelining *)
  last_output : float;
  output_gap : float; (* mean time between consecutive round outputs *)
  pipelined_rounds : int;
}

let run_pipelined (p : params) ~(rounds : int) : pipeline_result =
  Config.validate p.config;
  if rounds < 1 then invalid_arg "Simulate.run_pipelined: rounds must be >= 1";
  let cfg = p.config in
  let engine = Engine.create () in
  let net = Net.create engine in
  let rng = Atom_util.Rng.create cfg.Config.seed in
  let topo = Config.topology cfg in
  let iters = topo.Atom_topology.Topology.iterations in
  let n_groups = cfg.Config.n_groups in
  let quorum = Config.quorum cfg in
  let trap = cfg.Config.variant = Config.Trap in
  let w = float_of_int p.points_per_msg in
  let total_units = (p.n_messages + p.dummies) * if trap then 2 else 1 in
  let u = float_of_int ((total_units + n_groups - 1) / n_groups) in
  let cal = p.cal in
  (* Each layer is manned by its own server slice: the whole fleet divided
     by T (so one server serves one layer, across several of its groups). *)
  let machines =
    Array.init cfg.Config.n_servers (fun id ->
        Machine.create engine ~id ~cores:(Machine.paper_cores rng)
          ~bandwidth:(Machine.paper_bandwidth rng)
          ~cluster:(Atom_util.Rng.int_below rng p.clusters))
  in
  let per_layer = max 1 (cfg.Config.n_servers / iters) in
  let layer_machine ~layer ~group ~member =
    let base = layer * per_layer in
    machines.((base + ((group * quorum) + member) mod per_layer) mod cfg.Config.n_servers)
  in
  let batch_bytes = u *. w *. p.wire_bytes_per_point in
  (* start.(l).(g) carries round numbers; done_mb.(l) counts completions. *)
  let start = Array.init iters (fun _ -> Array.init n_groups (fun _ -> Mailbox.create engine)) in
  let done_mb = Array.init iters (fun _ -> Mailbox.create engine) in
  let ready = Array.init (iters + 1) (fun _ -> Mailbox.create engine) in
  let output_times = Array.make rounds 0. in
  (* Layer group pipelines. *)
  for layer = 0 to iters - 1 do
    for g = 0 to n_groups - 1 do
      Engine.spawn engine (fun () ->
          for _ = 1 to rounds do
            let (_ : int) = Mailbox.recv start.(layer).(g) in
            let rec chain prev m_idx =
              if m_idx < quorum then begin
                let m = layer_machine ~layer ~group:g ~member:m_idx in
                Machine.job m
                  ~seconds:(u *. w *. (cal.Calibration.shuffle_per_msg +. cal.Calibration.reenc));
                (match prev with
                | Some pm ->
                    Engine.sleep engine
                      (Net.latency net pm m +. Net.transfer_time pm m ~bytes:batch_bytes)
                | None -> ());
                chain (Some m) (m_idx + 1)
              end
            in
            chain None 0;
            Mailbox.send done_mb.(layer) ()
          done)
    done
  done;
  (* Per-layer coordinators; ready.(0) is fed for every round at t = 0
     (users submit ahead of time), ready.(iters) collects outputs. *)
  for r = 0 to rounds - 1 do
    Mailbox.send ready.(0) r
  done;
  for layer = 0 to iters - 1 do
    Engine.spawn engine (fun () ->
        for _ = 1 to rounds do
          let r = Mailbox.recv ready.(layer) in
          Array.iter (fun mb -> Mailbox.send mb r) start.(layer);
          ignore (Mailbox.recv_n done_mb.(layer) n_groups);
          Engine.sleep engine net.Net.inter_max;
          Mailbox.send ready.(layer + 1) r
        done)
  done;
  Engine.spawn engine (fun () ->
      for i = 0 to rounds - 1 do
        let (_ : int) = Mailbox.recv ready.(iters) in
        output_times.(i) <- Engine.now engine
      done);
  ignore (Engine.run engine);
  let gaps =
    if rounds < 2 then [| 0. |]
    else Array.init (rounds - 1) (fun i -> output_times.(i + 1) -. output_times.(i))
  in
  {
    first_output = output_times.(0);
    last_output = output_times.(rounds - 1);
    output_gap = Atom_util.Stats.mean gaps;
    pipelined_rounds = rounds;
  }
