(* Round controller: the §4.6 availability policy.

   The trap variant cannot proactively stop a disruptive user — it detects
   the disruption at the end of the round, aborts, and blames. If the DoS
   persists "after many rounds, Atom can fall back to using NIZKs,
   effectively trading off performance for availability" (§4.6). This state
   machine encodes that policy: consecutive aborted trap rounds beyond a
   threshold switch the deployment to the NIZK variant; a streak of clean
   rounds switches it back. Blamed users are accumulated into a blacklist
   that the operator applies at submission time. *)

type policy = {
  abort_threshold : int; (* consecutive trap aborts before falling back *)
  recovery_threshold : int; (* consecutive clean NIZK rounds before returning *)
}

let default_policy = { abort_threshold = 3; recovery_threshold = 2 }

type t = {
  policy : policy;
  mutable variant : Config.variant;
  mutable consecutive_aborts : int;
  mutable consecutive_clean : int;
  mutable blacklist : int list; (* blamed user ids *)
  mutable rounds_run : int;
  mutable rounds_aborted : int;
  mutable total_recoveries : int; (* buddy-group recoveries across rounds *)
}

let create ?(policy = default_policy) ?(variant = Config.Trap) () : t =
  {
    policy;
    variant;
    consecutive_aborts = 0;
    consecutive_clean = 0;
    blacklist = [];
    rounds_run = 0;
    rounds_aborted = 0;
    total_recoveries = 0;
  }

let variant (t : t) : Config.variant = t.variant
let blacklist (t : t) : int list = t.blacklist
let is_blacklisted (t : t) (user : int) : bool = List.mem user t.blacklist
let total_recoveries (t : t) : int = t.total_recoveries

(* Buddy-group resurrections are churn telemetry an operator watches,
   distinct from disruption aborts: churn never triggers the NIZK
   fallback, so it feeds a plain counter rather than [record]. *)
let note_recoveries (t : t) (n : int) : unit =
  t.total_recoveries <- t.total_recoveries + n

let record (t : t) ~(aborted : bool) ~(blamed : int list) : Config.variant =
  t.rounds_run <- t.rounds_run + 1;
  if aborted then t.rounds_aborted <- t.rounds_aborted + 1;
  t.blacklist <- List.sort_uniq compare (blamed @ t.blacklist);
  (match (t.variant, aborted) with
  | Config.Trap, true ->
      t.consecutive_aborts <- t.consecutive_aborts + 1;
      if t.consecutive_aborts >= t.policy.abort_threshold then begin
        t.variant <- Config.Nizk;
        t.consecutive_aborts <- 0;
        t.consecutive_clean <- 0
      end
  | Config.Trap, false -> t.consecutive_aborts <- 0
  | Config.Nizk, false ->
      t.consecutive_clean <- t.consecutive_clean + 1;
      if t.consecutive_clean >= t.policy.recovery_threshold then begin
        t.variant <- Config.Trap;
        t.consecutive_clean <- 0;
        t.consecutive_aborts <- 0
      end
  | Config.Nizk, true -> t.consecutive_clean <- 0
  | Config.Basic, _ -> () (* no defence, no policy *));
  t.variant
