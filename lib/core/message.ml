(* Message framing: bytes <-> vectors of embedded group elements.

   Every routed unit in a round — plaintext messages in the basic/NIZK
   variants, inner ciphertexts and trap messages in the trap variant — is
   framed as  tag(1) ‖ length(2, BE) ‖ payload ‖ zero-padding  and embedded
   across a fixed number of group elements, so that units of different kinds
   are indistinguishable on the wire (a requirement of §4.4: a server must
   not be able to tell traps from real messages). *)

module Make (G : Atom_group.Group_intf.GROUP) = struct
  let tag_message = 'M' (* inner ciphertext (trap variant) or plaintext unit *)
  let tag_trap = 'T'

  let header_bytes = 3

  (* Number of group elements needed for a [payload_bytes] unit. *)
  let width_for ~(payload_bytes : int) : int =
    (header_bytes + payload_bytes + G.embed_bytes - 1) / G.embed_bytes

  let frame ~(tag : char) (payload : string) ~(width : int) : string =
    let len = String.length payload in
    if len > 0xffff then invalid_arg "Message.frame: payload too long";
    if width < width_for ~payload_bytes:len then invalid_arg "Message.frame: width too small";
    let total = width * G.embed_bytes in
    let b = Bytes.make total '\000' in
    Bytes.set b 0 tag;
    Bytes.set b 1 (Char.chr ((len lsr 8) land 0xff));
    Bytes.set b 2 (Char.chr (len land 0xff));
    Bytes.blit_string payload 0 b header_bytes len;
    Bytes.unsafe_to_string b

  (* Strict inverse of [frame]: unknown tags and any non-zero byte in the
     padding region are rejected, not ignored — otherwise a malicious
     server could smuggle a covert channel through the padding (or mark
     units via the tag byte), breaking §4.4's trap/message
     indistinguishability. *)
  let unframe (framed : string) : (char * string) option =
    if String.length framed < header_bytes then None
    else begin
      let tag = framed.[0] in
      if tag <> tag_message && tag <> tag_trap then None
      else begin
        let len = (Char.code framed.[1] lsl 8) lor Char.code framed.[2] in
        if header_bytes + len > String.length framed then None
        else begin
          let padding_clean = ref true in
          for i = header_bytes + len to String.length framed - 1 do
            if framed.[i] <> '\000' then padding_clean := false
          done;
          if !padding_clean then Some (tag, String.sub framed header_bytes len) else None
        end
      end
    end

  (* Embed a framed unit into [width] group elements. *)
  let embed ~(tag : char) (payload : string) ~(width : int) : G.t array =
    let framed = frame ~tag payload ~width in
    Array.init width (fun i ->
        let chunk = String.sub framed (i * G.embed_bytes) G.embed_bytes in
        match G.embed chunk with
        | Some el -> el
        | None -> assert false (* chunk length = embed_bytes by construction *))

  let extract (els : G.t array) : (char * string) option =
    let chunks = Array.map G.extract els in
    if Array.exists Option.is_none chunks then None
    else unframe (String.concat "" (Array.to_list (Array.map Option.get chunks)))

  (* ---- Trap messages (§4.4): payload = gid(4, BE) ‖ nonce(16) ---- *)

  let trap_nonce_bytes = 16

  let make_trap ~(gid : int) ~(nonce : string) : string =
    if String.length nonce <> trap_nonce_bytes then invalid_arg "Message.make_trap: bad nonce";
    String.init 4 (fun i -> Char.chr ((gid lsr (8 * (3 - i))) land 0xff)) ^ nonce

  let parse_trap (payload : string) : (int * string) option =
    if String.length payload <> 4 + trap_nonce_bytes then None
    else begin
      let gid =
        (Char.code payload.[0] lsl 24)
        lor (Char.code payload.[1] lsl 16)
        lor (Char.code payload.[2] lsl 8)
        lor Char.code payload.[3]
      in
      Some (gid, String.sub payload 4 trap_nonce_bytes)
    end

  (* Commitment to a trap: SHA3-256 of the canonical framed bytes (§4.4 uses
     a hash commitment — the nonce provides the hiding entropy). *)
  let commit_trap ~(width : int) (trap_payload : string) : string =
    Atom_hash.Keccak.sha3_256 (frame ~tag:tag_trap trap_payload ~width)

  (* Pad or reject a user message to the configured plaintext size. *)
  let pad_plaintext ~(msg_bytes : int) (msg : string) : string =
    if String.length msg > msg_bytes then invalid_arg "Message.pad_plaintext: message too long"
    else msg ^ String.make (msg_bytes - String.length msg) '\000'

  let unpad_plaintext (padded : string) : string =
    let n = ref (String.length padded) in
    while !n > 0 && padded.[!n - 1] = '\000' do
      decr n
    done;
    String.sub padded 0 !n
end
