(** Large-scale modeled execution over the discrete-event simulator — the
    engine behind Figures 5–11.

    The protocol's structure (sequential shuffle/reencrypt chains within
    each group, machines staggered across many groups, square-network layer
    barriers, pairwise latencies, NIC serialization, TLS setup, trustee
    endgame) executes event by event; cryptographic payloads are replaced
    by calibrated virtual CPU charges ({!Calibration.paper} by default).
    The paper uses this same technique for its Figure 11. Modeling notes
    and cross-checks against the paper's own arithmetic are in the
    implementation header. *)

type params = {
  config : Config.t;
  cal : Calibration.t;
  n_messages : int;
  points_per_msg : int;  (** paper packing: ceil(msg_bytes / 32) *)
  dummies : int;  (** differential-privacy dummy messages (dialing) *)
  intra_parallel : bool;  (** Figure-7 mode: spread one batch across cores *)
  parallel_fraction : float;
  clusters : int;
  wire_bytes_per_point : float;
  layer_overhead : float;
      (** Fixed extra seconds per mixing layer; the Figure 11 bench sets the
          value fitted to the paper's measured sub-linearity (≈2,000 s at
          billion-message scale, attributed to connection management). *)
}

val microblog : ?cal:Calibration.t -> Config.t -> n_messages:int -> params
(** 160-byte messages (5 points), no dummies. *)

val dialing : ?cal:Calibration.t -> Config.t -> n_messages:int -> params
(** 80-byte messages plus µ-per-trustee DP dummies (§5). *)

val one_iteration_seconds :
  cal:Calibration.t ->
  variant:Config.variant ->
  k:int ->
  units:int ->
  points:int ->
  ?cores:int ->
  ?intra_parallel:bool ->
  ?include_network:bool ->
  ?hop_latency:float ->
  ?bandwidth:float ->
  ?wire_bytes_per_point:float ->
  unit ->
  float
(** Closed-form single-group mixing-iteration time (Figures 5, 6, 7). *)

type result = {
  latency : float;
  iteration_times : float array;
  bytes_sent : float;
  connections : int;
  events : int;
  max_server_bandwidth : float;
  retransmits : int;  (** link-layer retries (loss / dead receivers) *)
  messages_dropped : int;  (** messages abandoned after max retries *)
  bytes_dropped : float;
}

val recovery_seconds :
  cal:Calibration.t ->
  quorum:int ->
  dead:int ->
  ?hop_latency:float ->
  ?bandwidth:float ->
  ?share_bytes:float ->
  unit ->
  float
(** Closed-form cost of §4.5 buddy-group recovery for [dead] lost members:
    per member, one sub-share transfer round from the buddy group plus a
    Lagrange reconstruction charged like [quorum] re-encryptions. Matches
    the distributed runtime's virtual-time accounting. *)

val run : ?obs:Atom_obs.Ctx.t -> params -> result
(** One full round, end to end (entry verification through trustee
    release). Deterministic in [config.seed]: with a tracing [obs] (default
    no-op) the per-(group, iteration) spans and exclusive phase tracks
    (verify/shuffle/decrypt/network/barrier/exit) are stamped in virtual
    time, so identical parameters yield byte-identical traces. *)

type pipeline_result = {
  first_output : float;
  last_output : float;
  output_gap : float;
  pipelined_rounds : int;
}

val run_pipelined : params -> rounds:int -> pipeline_result
(** §4.7 pipelining: layer-dedicated server slices, consecutive rounds in
    flight; the network emits one round per layer-latency. *)
