(** CRC-32 (IEEE), used as the wire frame's body checksum. *)

val string : string -> int
(** CRC of a whole string (in [0, 0xFFFFFFFF]). *)

val update : int -> string -> pos:int -> len:int -> int
(** Incremental: [update crc s ~pos ~len] extends [crc] with a slice. *)
