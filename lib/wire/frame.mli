(** Versioned, length-prefixed binary framing.

    Layout: magic(4) ‖ version(1) ‖ kind(1) ‖ flags(2) ‖ body_len(4) ‖
    crc32(4) ‖ body. Decoders are strict and total: truncation, trailing
    garbage, bad checksums, unknown kinds, oversized bodies and non-zero
    flags all yield [None]; arbitrary bytes never raise. *)

val magic : int
val version : int
val header_bytes : int

val max_body : int
(** Hard ceiling on body size; larger length prefixes are rejected before
    any allocation. *)

(** {2 Registered message kinds} *)

val kind_hello : int
val kind_join : int
val kind_peers : int
val kind_group_assign : int
val kind_barrier : int
val kind_abort : int
val kind_shutdown : int
val kind_ack : int
val kind_submissions : int
val kind_trap_commitments : int
val kind_published : int
val kind_failed : int
val kind_retransmit : int
val kind_stats_request : int
val kind_stats_reply : int
val kind_group_key : int
val kind_batch : int
val kind_shuffle_step : int
val kind_reenc_step : int
val kind_exit_batch : int
val kind_submit : int
val kind_submit_ack : int
val kind_epoch_info : int
val kind_bulletin_announce : int

val kind_names : (int * string) list
(** Every registered kind with its display name (exhaustive — property
    tests iterate this to cover all kinds). *)

val kind_name : int -> string
val kind_known : int -> bool

(** {2 Writer / strict reader primitives} (shared by [Control] and
    [Codec]) *)

module W : sig
  val u8 : Buffer.t -> int -> unit
  val u16 : Buffer.t -> int -> unit
  val u32 : Buffer.t -> int -> unit
  val str32 : Buffer.t -> string -> unit
end

module R : sig
  exception Malformed

  type t

  val of_string : ?pos:int -> ?limit:int -> string -> t
  val fail : unit -> 'a
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val bytes : t -> int -> string
  val str32 : ?max:int -> t -> string

  val src : t -> string
  (** The underlying buffer, for zero-copy reads via {!view} offsets. *)

  val view : t -> int -> int
  (** [view r n] consumes [n] bytes and returns their start offset in
      {!src} — the zero-copy alternative to {!bytes} for fixed-width
      fields parsed in place (group elements, big-endian naturals). *)

  val count : t -> max:int -> int
  (** u32 element count, rejected above [max] (allocation bound). *)

  val expect_end : t -> unit

  val decode : string -> (t -> 'a) -> 'a option
  (** The totality boundary: runs a reader body, catching [Malformed] and
      enforcing that all input was consumed. *)
end

(** {2 Framing} *)

val encode : kind:int -> string -> string
(** @raise Invalid_argument on unregistered kinds or oversized bodies
    (programming errors, not wire input). *)

type header = { kind : int; body_len : int; crc : int }

val read_header : string -> header option
(** Validate the fixed 16-byte prefix (streaming receive path). *)

val decode : string -> (int * string) option
(** Strict whole-frame decode: [(kind, body)]. *)

val kind_of : string -> int option
