(* Control-plane messages: node bring-up, group assignment, iteration
   barriers, abort notices. These are independent of the group backend, so
   they decode without a functor — the transport layer itself uses [Hello]
   to identify peers, and the coordinator drives the round with the rest.

   Body layouts (big-endian; see Frame for the header):

     hello             u32 node_id
     join              u32 node_id ‖ u16 port
     peers             u32 n ‖ n × (u32 node_id ‖ u16 port)
     group_assign      u32 gid ‖ u32 n ‖ n × u32 member
     barrier           u32 iter
     abort             u16 code ‖ str32 detail
     shutdown          (empty)
     ack               u32 token
     submissions       u32 gid ‖ u32 n ‖ n × str32 blob
     trap_commitments  u32 gid ‖ u32 n ‖ n × 32-byte commitment
     published         u32 n ‖ n × str32 plaintext
     failed            u32 n ‖ n × u32 sid
     retransmit        (empty)
     stats_request     u32 token
     stats_reply       u32 token ‖ u32 node_id ‖ str32 snapshot

   Submission blobs are opaque at this layer (their group elements are
   validated by [Protocol.Wire.submission_of_bytes] at the protocol
   boundary); everything else is fully validated here. *)

type t =
  | Hello of { node_id : int }
  | Join of { node_id : int; port : int }
  | Peers of { peers : (int * int) array (* node_id, port *) }
  | Group_assign of { gid : int; members : int array }
  | Barrier of { iter : int }
  | Abort of { code : int; detail : string }
  | Shutdown
  | Ack of { token : int }
  | Submissions of { gid : int; blobs : string array }
  | Trap_commitments of { gid : int; commitments : string array }
  | Published of { plaintexts : string array }
  | Failed of { sids : int array }
      (** These servers are presumed dead: reroute their roles (§4.5). *)
  | Retransmit  (** Re-send retained in-flight frames (recovery nudge). *)
  | Stats_request of { token : int }
      (** Serve your observability snapshot now; echoed in the reply. *)
  | Stats_reply of { token : int; node_id : int; snapshot : string }
      (** [snapshot] is an atom-metrics/1 JSON document ([Atom_obs.Snapshot]);
          opaque at this layer, strictly decoded by the receiver. *)

(* Abort codes (carried on the wire; the detail string is for humans). *)
let abort_bad_frame = 1
let abort_proof_rejected = 2
let abort_bad_assignment = 3
let abort_internal = 4

let max_nodes = 1 lsl 16
let max_items = 1 lsl 16
let max_blob = 1 lsl 20

(* A stats snapshot carrying a full trace buffer outgrows [max_blob]; its
   own cap still keeps a hostile length prefix from driving allocation
   beyond the frame-level [Frame.max_body]. *)
let max_snapshot = 1 lsl 24
let commitment_bytes = 32

let encode (msg : t) : string =
  let b = Buffer.create 64 in
  let kind =
    match msg with
    | Hello { node_id } ->
        Frame.W.u32 b node_id;
        Frame.kind_hello
    | Join { node_id; port } ->
        Frame.W.u32 b node_id;
        Frame.W.u16 b port;
        Frame.kind_join
    | Peers { peers } ->
        Frame.W.u32 b (Array.length peers);
        Array.iter
          (fun (id, port) ->
            Frame.W.u32 b id;
            Frame.W.u16 b port)
          peers;
        Frame.kind_peers
    | Group_assign { gid; members } ->
        Frame.W.u32 b gid;
        Frame.W.u32 b (Array.length members);
        Array.iter (Frame.W.u32 b) members;
        Frame.kind_group_assign
    | Barrier { iter } ->
        Frame.W.u32 b iter;
        Frame.kind_barrier
    | Abort { code; detail } ->
        Frame.W.u16 b code;
        Frame.W.str32 b detail;
        Frame.kind_abort
    | Shutdown -> Frame.kind_shutdown
    | Ack { token } ->
        Frame.W.u32 b token;
        Frame.kind_ack
    | Submissions { gid; blobs } ->
        Frame.W.u32 b gid;
        Frame.W.u32 b (Array.length blobs);
        Array.iter (Frame.W.str32 b) blobs;
        Frame.kind_submissions
    | Trap_commitments { gid; commitments } ->
        Frame.W.u32 b gid;
        Frame.W.u32 b (Array.length commitments);
        Array.iter
          (fun c ->
            if String.length c <> commitment_bytes then
              invalid_arg "Control.encode: commitment must be 32 bytes";
            Buffer.add_string b c)
          commitments;
        Frame.kind_trap_commitments
    | Published { plaintexts } ->
        Frame.W.u32 b (Array.length plaintexts);
        Array.iter (Frame.W.str32 b) plaintexts;
        Frame.kind_published
    | Failed { sids } ->
        Frame.W.u32 b (Array.length sids);
        Array.iter (Frame.W.u32 b) sids;
        Frame.kind_failed
    | Retransmit -> Frame.kind_retransmit
    | Stats_request { token } ->
        Frame.W.u32 b token;
        Frame.kind_stats_request
    | Stats_reply { token; node_id; snapshot } ->
        Frame.W.u32 b token;
        Frame.W.u32 b node_id;
        Frame.W.str32 b snapshot;
        Frame.kind_stats_reply
  in
  Frame.encode ~kind (Buffer.contents b)

let decode_body (kind : int) (body : string) : t option =
  let open Frame.R in
  decode body (fun r ->
      if kind = Frame.kind_hello then Hello { node_id = u32 r }
      else if kind = Frame.kind_join then
        let node_id = u32 r in
        Join { node_id; port = u16 r }
      else if kind = Frame.kind_peers then
        let n = count r ~max:max_nodes in
        Peers
          {
            peers =
              Array.init n (fun _ ->
                  let id = u32 r in
                  (id, u16 r));
          }
      else if kind = Frame.kind_group_assign then
        let gid = u32 r in
        let n = count r ~max:max_nodes in
        Group_assign { gid; members = Array.init n (fun _ -> u32 r) }
      else if kind = Frame.kind_barrier then Barrier { iter = u32 r }
      else if kind = Frame.kind_abort then
        let code = u16 r in
        Abort { code; detail = str32 ~max:max_blob r }
      else if kind = Frame.kind_shutdown then Shutdown
      else if kind = Frame.kind_ack then Ack { token = u32 r }
      else if kind = Frame.kind_submissions then
        let gid = u32 r in
        let n = count r ~max:max_items in
        Submissions { gid; blobs = Array.init n (fun _ -> str32 ~max:max_blob r) }
      else if kind = Frame.kind_trap_commitments then
        let gid = u32 r in
        let n = count r ~max:max_items in
        Trap_commitments { gid; commitments = Array.init n (fun _ -> bytes r commitment_bytes) }
      else if kind = Frame.kind_published then
        let n = count r ~max:max_items in
        Published { plaintexts = Array.init n (fun _ -> str32 ~max:max_blob r) }
      else if kind = Frame.kind_failed then
        let n = count r ~max:max_nodes in
        Failed { sids = Array.init n (fun _ -> u32 r) }
      else if kind = Frame.kind_retransmit then Retransmit
      else if kind = Frame.kind_stats_request then Stats_request { token = u32 r }
      else if kind = Frame.kind_stats_reply then
        let token = u32 r in
        let node_id = u32 r in
        Stats_reply { token; node_id; snapshot = str32 ~max:max_snapshot r }
      else fail ())

let decode (framed : string) : t option =
  match Frame.decode framed with
  | None -> None
  | Some (kind, body) -> decode_body kind body
