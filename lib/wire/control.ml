(* Control-plane messages: node bring-up, group assignment, iteration
   barriers, abort notices. These are independent of the group backend, so
   they decode without a functor — the transport layer itself uses [Hello]
   to identify peers, and the coordinator drives the round with the rest.

   Body layouts (big-endian; see Frame for the header):

     hello             u32 node_id
     join              u32 node_id ‖ u16 port
     peers             u32 n ‖ n × (u32 node_id ‖ u16 port)
     group_assign      u32 gid ‖ u32 n ‖ n × u32 member
     barrier           u32 iter
     abort             u16 code ‖ str32 detail
     shutdown          (empty)
     ack               u32 token
     submissions       u32 gid ‖ u32 n ‖ n × str32 blob
     trap_commitments  u32 gid ‖ u32 n ‖ n × 32-byte commitment
     published         u32 n ‖ n × str32 plaintext
     failed            u32 n ‖ n × u32 sid
     retransmit        (empty)
     stats_request     u32 token
     stats_reply       u32 token ‖ u32 node_id ‖ str32 snapshot
     submit            u32 client ‖ u16 port ‖ u32 token ‖ u32 gid ‖
                       u32 epoch ‖ str32 blob ‖ str32 pow
     submit_ack        u32 token ‖ u8 status ‖ u32 epoch ‖ u32 retry_ms ‖
                       u32 queue_len
     epoch_info        u32 epoch ‖ u32 pow_bits ‖ u32 queue_cap ‖
                       u32 queue_len
     bulletin_announce u32 epoch ‖ 32-byte digest ‖ str32 signature ‖
                       u32 n ‖ n × str32 post

   Submission blobs are opaque at this layer (their group elements are
   validated by [Protocol.Wire.submission_of_bytes] at the protocol
   boundary); everything else is fully validated here. A [Submit] with an
   empty blob is an epoch query: the serving node answers [Epoch_info]
   instead of admitting anything. [port] is the client's own listen port,
   so the node can register a return path for the ack on transports that
   need explicit peer wiring. *)

type t =
  | Hello of { node_id : int }
  | Join of { node_id : int; port : int }
  | Peers of { peers : (int * int) array (* node_id, port *) }
  | Group_assign of { gid : int; members : int array }
  | Barrier of { iter : int }
  | Abort of { code : int; detail : string }
  | Shutdown
  | Ack of { token : int }
  | Submissions of { gid : int; blobs : string array }
  | Trap_commitments of { gid : int; commitments : string array }
  | Published of { plaintexts : string array }
  | Failed of { sids : int array }
      (** These servers are presumed dead: reroute their roles (§4.5). *)
  | Retransmit  (** Re-send retained in-flight frames (recovery nudge). *)
  | Stats_request of { token : int }
      (** Serve your observability snapshot now; echoed in the reply. *)
  | Stats_reply of { token : int; node_id : int; snapshot : string }
      (** [snapshot] is an atom-metrics/1 JSON document ([Atom_obs.Snapshot]);
          opaque at this layer, strictly decoded by the receiver. *)
  | Submit of {
      client : int;
      port : int;  (** Client's listen port (return path for the ack). *)
      token : int;  (** Client-chosen, echoed verbatim in the ack. *)
      gid : int;  (** Entry group the onion targets. *)
      epoch : int;  (** Advisory; the node assigns the actual epoch. *)
      blob : string;  (** Opaque onion ([Protocol.Wire] submission bytes). *)
      pow : string;  (** Hashcash nonce; empty when PoW is disabled. *)
    }
  | Submit_ack of {
      token : int;
      status : int;  (** [submit_accepted] / [submit_retry] / [submit_rejected]. *)
      epoch : int;  (** Epoch the submission was admitted into (accept). *)
      retry_ms : int;  (** Backpressure hint (retry status). *)
      queue_len : int;  (** Serving node's current epoch-queue depth. *)
    }
  | Epoch_info of { epoch : int; pow_bits : int; queue_cap : int; queue_len : int }
      (** Collecting epoch plus the admission parameters a client needs. *)
  | Bulletin_announce of {
      epoch : int;
      digest : string;  (** 32-byte sealed-bulletin digest. *)
      signature : string;  (** Publisher's Schnorr signature over the digest. *)
      posts : string array;  (** The sealed epoch output, in bulletin order. *)
    }

(* Abort codes (carried on the wire; the detail string is for humans). *)
let abort_bad_frame = 1
let abort_proof_rejected = 2
let abort_bad_assignment = 3
let abort_internal = 4

let max_nodes = 1 lsl 16
let max_items = 1 lsl 16
let max_blob = 1 lsl 20

(* A stats snapshot carrying a full trace buffer outgrows [max_blob]; its
   own cap still keeps a hostile length prefix from driving allocation
   beyond the frame-level [Frame.max_body]. *)
let max_snapshot = 1 lsl 24
let commitment_bytes = 32

(* Submission-plane bounds: a hostile client must not drive allocation
   past one blob; PoW nonces and signatures are small fixed-cost items. *)
let max_pow = 64
let max_sig = 256

(* Submit_ack statuses. *)
let submit_accepted = 0
let submit_retry = 1
let submit_rejected = 2

let encode (msg : t) : string =
  let b = Buffer.create 64 in
  let kind =
    match msg with
    | Hello { node_id } ->
        Frame.W.u32 b node_id;
        Frame.kind_hello
    | Join { node_id; port } ->
        Frame.W.u32 b node_id;
        Frame.W.u16 b port;
        Frame.kind_join
    | Peers { peers } ->
        Frame.W.u32 b (Array.length peers);
        Array.iter
          (fun (id, port) ->
            Frame.W.u32 b id;
            Frame.W.u16 b port)
          peers;
        Frame.kind_peers
    | Group_assign { gid; members } ->
        Frame.W.u32 b gid;
        Frame.W.u32 b (Array.length members);
        Array.iter (Frame.W.u32 b) members;
        Frame.kind_group_assign
    | Barrier { iter } ->
        Frame.W.u32 b iter;
        Frame.kind_barrier
    | Abort { code; detail } ->
        Frame.W.u16 b code;
        Frame.W.str32 b detail;
        Frame.kind_abort
    | Shutdown -> Frame.kind_shutdown
    | Ack { token } ->
        Frame.W.u32 b token;
        Frame.kind_ack
    | Submissions { gid; blobs } ->
        Frame.W.u32 b gid;
        Frame.W.u32 b (Array.length blobs);
        Array.iter (Frame.W.str32 b) blobs;
        Frame.kind_submissions
    | Trap_commitments { gid; commitments } ->
        Frame.W.u32 b gid;
        Frame.W.u32 b (Array.length commitments);
        Array.iter
          (fun c ->
            if String.length c <> commitment_bytes then
              invalid_arg "Control.encode: commitment must be 32 bytes";
            Buffer.add_string b c)
          commitments;
        Frame.kind_trap_commitments
    | Published { plaintexts } ->
        Frame.W.u32 b (Array.length plaintexts);
        Array.iter (Frame.W.str32 b) plaintexts;
        Frame.kind_published
    | Failed { sids } ->
        Frame.W.u32 b (Array.length sids);
        Array.iter (Frame.W.u32 b) sids;
        Frame.kind_failed
    | Retransmit -> Frame.kind_retransmit
    | Stats_request { token } ->
        Frame.W.u32 b token;
        Frame.kind_stats_request
    | Stats_reply { token; node_id; snapshot } ->
        Frame.W.u32 b token;
        Frame.W.u32 b node_id;
        Frame.W.str32 b snapshot;
        Frame.kind_stats_reply
    | Submit { client; port; token; gid; epoch; blob; pow } ->
        Frame.W.u32 b client;
        Frame.W.u16 b port;
        Frame.W.u32 b token;
        Frame.W.u32 b gid;
        Frame.W.u32 b epoch;
        Frame.W.str32 b blob;
        Frame.W.str32 b pow;
        Frame.kind_submit
    | Submit_ack { token; status; epoch; retry_ms; queue_len } ->
        Frame.W.u32 b token;
        Frame.W.u8 b status;
        Frame.W.u32 b epoch;
        Frame.W.u32 b retry_ms;
        Frame.W.u32 b queue_len;
        Frame.kind_submit_ack
    | Epoch_info { epoch; pow_bits; queue_cap; queue_len } ->
        Frame.W.u32 b epoch;
        Frame.W.u32 b pow_bits;
        Frame.W.u32 b queue_cap;
        Frame.W.u32 b queue_len;
        Frame.kind_epoch_info
    | Bulletin_announce { epoch; digest; signature; posts } ->
        if String.length digest <> commitment_bytes then
          invalid_arg "Control.encode: bulletin digest must be 32 bytes";
        Frame.W.u32 b epoch;
        Buffer.add_string b digest;
        Frame.W.str32 b signature;
        Frame.W.u32 b (Array.length posts);
        Array.iter (Frame.W.str32 b) posts;
        Frame.kind_bulletin_announce
  in
  Frame.encode ~kind (Buffer.contents b)

let decode_body (kind : int) (body : string) : t option =
  let open Frame.R in
  decode body (fun r ->
      if kind = Frame.kind_hello then Hello { node_id = u32 r }
      else if kind = Frame.kind_join then
        let node_id = u32 r in
        Join { node_id; port = u16 r }
      else if kind = Frame.kind_peers then
        let n = count r ~max:max_nodes in
        Peers
          {
            peers =
              Array.init n (fun _ ->
                  let id = u32 r in
                  (id, u16 r));
          }
      else if kind = Frame.kind_group_assign then
        let gid = u32 r in
        let n = count r ~max:max_nodes in
        Group_assign { gid; members = Array.init n (fun _ -> u32 r) }
      else if kind = Frame.kind_barrier then Barrier { iter = u32 r }
      else if kind = Frame.kind_abort then
        let code = u16 r in
        Abort { code; detail = str32 ~max:max_blob r }
      else if kind = Frame.kind_shutdown then Shutdown
      else if kind = Frame.kind_ack then Ack { token = u32 r }
      else if kind = Frame.kind_submissions then
        let gid = u32 r in
        let n = count r ~max:max_items in
        Submissions { gid; blobs = Array.init n (fun _ -> str32 ~max:max_blob r) }
      else if kind = Frame.kind_trap_commitments then
        let gid = u32 r in
        let n = count r ~max:max_items in
        Trap_commitments { gid; commitments = Array.init n (fun _ -> bytes r commitment_bytes) }
      else if kind = Frame.kind_published then
        let n = count r ~max:max_items in
        Published { plaintexts = Array.init n (fun _ -> str32 ~max:max_blob r) }
      else if kind = Frame.kind_failed then
        let n = count r ~max:max_nodes in
        Failed { sids = Array.init n (fun _ -> u32 r) }
      else if kind = Frame.kind_retransmit then Retransmit
      else if kind = Frame.kind_stats_request then Stats_request { token = u32 r }
      else if kind = Frame.kind_stats_reply then
        let token = u32 r in
        let node_id = u32 r in
        Stats_reply { token; node_id; snapshot = str32 ~max:max_snapshot r }
      else if kind = Frame.kind_submit then
        let client = u32 r in
        let port = u16 r in
        let token = u32 r in
        let gid = u32 r in
        let epoch = u32 r in
        let blob = str32 ~max:max_blob r in
        Submit { client; port; token; gid; epoch; blob; pow = str32 ~max:max_pow r }
      else if kind = Frame.kind_submit_ack then
        let token = u32 r in
        let status = u8 r in
        if status > submit_rejected then fail ();
        let epoch = u32 r in
        let retry_ms = u32 r in
        Submit_ack { token; status; epoch; retry_ms; queue_len = u32 r }
      else if kind = Frame.kind_epoch_info then
        let epoch = u32 r in
        let pow_bits = u32 r in
        let queue_cap = u32 r in
        Epoch_info { epoch; pow_bits; queue_cap; queue_len = u32 r }
      else if kind = Frame.kind_bulletin_announce then
        let epoch = u32 r in
        let digest = bytes r commitment_bytes in
        let signature = str32 ~max:max_sig r in
        let n = count r ~max:max_items in
        Bulletin_announce
          { epoch; digest; signature; posts = Array.init n (fun _ -> str32 ~max:max_blob r) }
      else fail ())

let decode (framed : string) : t option =
  match Frame.decode framed with
  | None -> None
  | Some (kind, body) -> decode_body kind body
