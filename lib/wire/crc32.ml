(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.

   The wire header carries a CRC of the frame body so a flipped bit on the
   wire is caught before a strict decoder ever parses the payload. CRC is
   an integrity check against accidents, not an authenticator — transport
   security is TLS's job in a real deployment (DESIGN.md). *)

let table : int array =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let update (crc : int) (s : string) ~(pos : int) ~(len : int) : int =
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let string (s : string) : int = update 0 s ~pos:0 ~len:(String.length s)
