(* Versioned, length-prefixed binary framing for everything that crosses a
   machine boundary.

   Frame layout (all integers big-endian):

     offset  size  field
     0       4     magic     "ATOM" (0x41544F4D)
     4       1     version   (currently 2)
     5       1     kind      (registered message kind)
     6       2     flags     (reserved, must be 0)
     8       4     body_len
     12      4     crc32     (IEEE CRC-32 of the body)
     16      ...   body

   Version policy: a decoder accepts exactly the versions it knows
   (currently only 2) and rejects everything else — there is no silent
   downgrade. Adding a message kind is a same-version change (old peers
   reject unknown kinds loudly); changing the layout of an existing kind
   bumps [version]. Version 2 added send-timestamps to the data-plane
   step frames and an absolute iteration index to exit batches (epoch
   pipelining).

   Decoders are strict and total: truncated, oversized, trailing-garbage,
   bad-checksum, unknown-kind, and non-zero-flag inputs all return [None];
   no exception escapes on arbitrary bytes. *)

let magic = 0x41544F4D
let version = 2
let header_bytes = 16

(* Frames larger than this are rejected outright — a malicious length
   prefix must not make a node allocate unbounded memory. 64 MiB clears a
   1M-message batch at paper scale while still bounding allocation. *)
let max_body = 1 lsl 26

(* ---- Message kinds ----

   One byte on the wire. Control-plane kinds (node bring-up, barriers,
   aborts) are G-independent and decoded by [Control]; data-plane kinds
   (ciphertext batches, proof-carrying steps) depend on the group backend
   and are decoded by [Codec.Make]. *)

let kind_hello = 0x01
let kind_join = 0x02
let kind_peers = 0x03
let kind_group_assign = 0x04
let kind_barrier = 0x05
let kind_abort = 0x06
let kind_shutdown = 0x07
let kind_ack = 0x08
let kind_submissions = 0x09
let kind_trap_commitments = 0x0a
let kind_published = 0x0b
let kind_failed = 0x0c
let kind_retransmit = 0x0d
let kind_stats_request = 0x0e
let kind_stats_reply = 0x0f
let kind_group_key = 0x10
let kind_batch = 0x11
let kind_shuffle_step = 0x12
let kind_reenc_step = 0x13
let kind_exit_batch = 0x14

(* Client-facing submission plane (ingest). Control-plane: G-independent,
   onion payloads travel as opaque blobs validated at the protocol layer. *)
let kind_submit = 0x15
let kind_submit_ack = 0x16
let kind_epoch_info = 0x17
let kind_bulletin_announce = 0x18

let kind_names : (int * string) list =
  [
    (kind_hello, "hello");
    (kind_join, "join");
    (kind_peers, "peers");
    (kind_group_assign, "group_assign");
    (kind_barrier, "barrier");
    (kind_abort, "abort");
    (kind_shutdown, "shutdown");
    (kind_ack, "ack");
    (kind_submissions, "submissions");
    (kind_trap_commitments, "trap_commitments");
    (kind_published, "published");
    (kind_failed, "failed");
    (kind_retransmit, "retransmit");
    (kind_stats_request, "stats_request");
    (kind_stats_reply, "stats_reply");
    (kind_group_key, "group_key");
    (kind_batch, "batch");
    (kind_shuffle_step, "shuffle_step");
    (kind_reenc_step, "reenc_step");
    (kind_exit_batch, "exit_batch");
    (kind_submit, "submit");
    (kind_submit_ack, "submit_ack");
    (kind_epoch_info, "epoch_info");
    (kind_bulletin_announce, "bulletin_announce");
  ]

let kind_name (k : int) : string =
  match List.assoc_opt k kind_names with
  | Some n -> n
  | None -> Printf.sprintf "unknown(0x%02x)" k

let kind_known (k : int) : bool = List.mem_assoc k kind_names

(* ---- Writer primitives ---- *)

module W = struct
  let u8 (b : Buffer.t) (v : int) = Buffer.add_char b (Char.chr (v land 0xff))

  let u16 (b : Buffer.t) (v : int) =
    u8 b (v lsr 8);
    u8 b v

  let u32 (b : Buffer.t) (v : int) =
    u8 b (v lsr 24);
    u8 b (v lsr 16);
    u8 b (v lsr 8);
    u8 b v

  (* Length-prefixed byte string. *)
  let str32 (b : Buffer.t) (s : string) =
    u32 b (String.length s);
    Buffer.add_string b s
end

(* ---- Strict reader ----

   A cursor over an immutable string. Every read checks bounds and raises
   the private [Malformed] exception, which only [decode] catches — so a
   decoder body reads linearly and totality is enforced at the boundary. *)

module R = struct
  exception Malformed

  type t = { s : string; mutable pos : int; limit : int }

  let of_string ?(pos = 0) ?limit (s : string) : t =
    let limit = match limit with Some l -> l | None -> String.length s in
    { s; pos; limit }

  let fail () = raise Malformed
  let remaining (r : t) : int = r.limit - r.pos
  let need (r : t) (n : int) = if n < 0 || r.pos + n > r.limit then fail ()

  let u8 (r : t) : int =
    need r 1;
    let v = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let u16 (r : t) : int =
    let a = u8 r in
    let b = u8 r in
    (a lsl 8) lor b

  let u32 (r : t) : int =
    let a = u16 r in
    let b = u16 r in
    (a lsl 16) lor b

  let bytes (r : t) (n : int) : string =
    need r n;
    let s = String.sub r.s r.pos n in
    r.pos <- r.pos + n;
    s

  (* Zero-copy slice: consume [n] bytes and return their start offset in
     [src] instead of materializing a substring — decoders that parse a
     fixed-width field in place ([Nat.of_bytes_be_sub], element decoders)
     skip the per-field allocation. *)
  let src (r : t) : string = r.s

  let view (r : t) (n : int) : int =
    need r n;
    let pos = r.pos in
    r.pos <- pos + n;
    pos

  let str32 ?(max = max_body) (r : t) : string =
    let n = u32 r in
    if n > max then fail ();
    bytes r n

  (* Bounded count prefix: an attacker-controlled element count must never
     drive an allocation bigger than the bytes actually present. *)
  let count (r : t) ~(max : int) : int =
    let n = u32 r in
    if n > max then fail ();
    n

  let expect_end (r : t) = if r.pos <> r.limit then fail ()

  (* The totality boundary: every decoder runs under this. *)
  let decode (s : string) (f : t -> 'a) : 'a option =
    let r = of_string s in
    match
      let v = f r in
      expect_end r;
      v
    with
    | v -> Some v
    | exception Malformed -> None
end

(* ---- Framing ---- *)

let encode ~(kind : int) (body : string) : string =
  if String.length body > max_body then invalid_arg "Frame.encode: body too large";
  if not (kind_known kind) then invalid_arg "Frame.encode: unregistered kind";
  let b = Buffer.create (header_bytes + String.length body) in
  W.u32 b magic;
  W.u8 b version;
  W.u8 b kind;
  W.u16 b 0;
  W.u32 b (String.length body);
  W.u32 b (Crc32.string body);
  Buffer.add_string b body;
  Buffer.contents b

type header = { kind : int; body_len : int; crc : int }

(* Parse and validate the fixed 16-byte prefix (streaming receive path:
   read 16 bytes, learn [body_len], read the body, then [decode] the whole
   frame). Rejects bad magic/version/flags and oversized bodies. *)
let read_header (s : string) : header option =
  if String.length s < header_bytes then None
  else
    R.decode (String.sub s 0 header_bytes) (fun r ->
        if R.u32 r <> magic then R.fail ();
        if R.u8 r <> version then R.fail ();
        let kind = R.u8 r in
        if R.u16 r <> 0 then R.fail ();
        let body_len = R.u32 r in
        if body_len > max_body then R.fail ();
        let crc = R.u32 r in
        if not (kind_known kind) then R.fail ();
        { kind; body_len; crc })

(* Full strict decode of one frame: header valid, body length exact (no
   trailing garbage), checksum matches. *)
let decode (s : string) : (int * string) option =
  match read_header s with
  | None -> None
  | Some h ->
      if String.length s <> header_bytes + h.body_len then None
      else
        let body = String.sub s header_bytes h.body_len in
        if Crc32.string body <> h.crc then None else Some (h.kind, body)

let kind_of (s : string) : int option =
  match read_header s with Some h -> Some h.kind | None -> None
