(** Control-plane messages: node bring-up, group assignment, iteration
    barriers, aborts, stats, and the client submission plane. These are
    independent of the group backend, so they decode without a functor —
    and they carry no group elements, so the {!Validation} policies of the
    data-plane codec do not apply here: everything is fully validated by
    the structural decode itself. Submission blobs and stats snapshots are
    opaque at this layer and strictly decoded by their consumers
    ([Protocol.Wire.submission_of_bytes], [Atom_obs.Snapshot]).

    Decoders are strict and total: arbitrary bytes yield [None], never an
    exception. *)

type t =
  | Hello of { node_id : int }
  | Join of { node_id : int; port : int }
  | Peers of { peers : (int * int) array  (** (node_id, port) pairs. *) }
  | Group_assign of { gid : int; members : int array }
  | Barrier of { iter : int }
  | Abort of { code : int; detail : string }
  | Shutdown
  | Ack of { token : int }
  | Submissions of { gid : int; blobs : string array }
  | Trap_commitments of { gid : int; commitments : string array }
  | Published of { plaintexts : string array }
  | Failed of { sids : int array }
      (** These servers are presumed dead: reroute their roles (§4.5). *)
  | Retransmit  (** Re-send retained in-flight frames (recovery nudge). *)
  | Stats_request of { token : int }
      (** Serve your observability snapshot now; echoed in the reply. *)
  | Stats_reply of { token : int; node_id : int; snapshot : string }
      (** [snapshot] is an atom-metrics/1 JSON document ([Atom_obs.Snapshot]);
          opaque at this layer, strictly decoded by the receiver. *)
  | Submit of {
      client : int;
      port : int;  (** Client's listen port (return path for the ack). *)
      token : int;  (** Client-chosen, echoed verbatim in the ack. *)
      gid : int;  (** Entry group the onion targets. *)
      epoch : int;  (** Advisory; the node assigns the actual epoch. *)
      blob : string;  (** Opaque onion ([Protocol.Wire] submission bytes). *)
      pow : string;  (** Hashcash nonce; empty when PoW is disabled. *)
    }
  | Submit_ack of {
      token : int;
      status : int;  (** [submit_accepted] / [submit_retry] / [submit_rejected]. *)
      epoch : int;  (** Epoch the submission was admitted into (accept). *)
      retry_ms : int;  (** Backpressure hint (retry status). *)
      queue_len : int;  (** Serving node's current epoch-queue depth. *)
    }
  | Epoch_info of { epoch : int; pow_bits : int; queue_cap : int; queue_len : int }
      (** Collecting epoch plus the admission parameters a client needs. *)
  | Bulletin_announce of {
      epoch : int;
      digest : string;  (** 32-byte sealed-bulletin digest. *)
      signature : string;  (** Publisher's Schnorr signature over the digest. *)
      posts : string array;  (** The sealed epoch output, in bulletin order. *)
    }

(** {2 Abort codes} (carried on the wire; the detail string is for humans) *)

val abort_bad_frame : int
val abort_proof_rejected : int
val abort_bad_assignment : int
val abort_internal : int

(** {2 Allocation bounds} (a hostile length prefix must never drive
    allocation past the bytes actually present) *)

val max_nodes : int
val max_items : int
val max_blob : int

val max_snapshot : int
(** Stats snapshots outgrow [max_blob] (they can carry a trace buffer). *)

val commitment_bytes : int
val max_pow : int
val max_sig : int

(** {2 Submit_ack statuses} *)

val submit_accepted : int
val submit_retry : int
val submit_rejected : int

(** {2 Codec} *)

val encode : t -> string
(** A complete frame (header + body), ready for the transport.
    @raise Invalid_argument on malformed fixed-width fields (a digest or
    commitment that is not 32 bytes) — programming errors, not wire
    input. *)

val decode_body : int -> string -> t option
(** [decode_body kind body] — for callers that already split the frame. *)

val decode : string -> t option
(** Full strict decode of one frame. *)
