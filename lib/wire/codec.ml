(* Data-plane codecs: every message whose payload contains group elements —
   ciphertext batches, proof-carrying shuffle / decrypt-and-reencrypt
   steps, group public keys. Parametric over the group backend (and its
   ElGamal instantiation) exactly like the protocol engine itself.

   Proof objects travel as opaque length-prefixed blobs at this layer; the
   proof modules' own [of_bytes] decoders (which validate every element)
   run at the protocol boundary, keeping the wire layer free of the zkp
   dependency while every byte still gets validated before use.

   Body layouts (big-endian; header per Frame):

     cipher       u8 has_y=0 ⇒ R ‖ c          (2·eb + 1 bytes)
                  u8 has_y=1 ⇒ R ‖ c ‖ Y      (3·eb + 1 bytes)
                  (exactly Elgamal.cipher_to_bytes: R ‖ c ‖ flag [‖ Y])
     vec          u16 width ‖ width × cipher
     vecs         u32 count ‖ count × vec
     proofs       u32 count ‖ count × str32

     group_key    u32 gid ‖ element
     batch        u32 dst_gid ‖ u32 iter ‖ u32 src_gid ‖ u64 sent_at ‖
                  vecs input ‖ vecs output ‖ proofs
     shuffle_step u32 gid ‖ u32 iter ‖ u16 step ‖ u64 sent_at ‖
                  vecs input ‖ vecs output ‖ str32 proof
     reenc_step   u32 gid ‖ u32 iter ‖ u32 batch_idx ‖ u16 step ‖
                  u64 sent_at ‖ vecs input ‖ vecs output ‖ proofs
     exit_batch   u32 gid ‖ u32 iter ‖ u32 batch_idx ‖ vecs input ‖
                  vecs output ‖ proofs

   [sent_at] is the sender's process-relative clock in microseconds at
   encode time (0 when the sender has no clock): pure telemetry, letting
   the merged cluster trace split a receiver's recv-wait into "peer still
   computing" vs. "frame in flight". It is never used for protocol
   decisions. [exit_batch.iter] is the absolute iteration of the final
   layer, so pipelined epochs (absolute iter = epoch·T + layer) keep exit
   collection keyed by epoch.

   Strict and total like every decoder in this library: arbitrary bytes
   yield [None], never an exception, and every group element is validated
   by the backend codec on the way in. Decoders take
   [?validate:[`Eager|`Deferred]] (default [`Eager]): [`Deferred] decodes
   group elements with structural checks only ([G.of_bytes_unchecked]),
   deferring subgroup membership to batch verification at first use —
   the intake hot path's fast decode. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (El : module type of Atom_elgamal.Elgamal.Make (G)) =
struct
  type msg =
    | Group_key of { gid : int; pk : G.t }
    | Batch of {
        gid : int; (* destination group *)
        iter : int; (* destination absolute iteration (epoch·T + layer) *)
        src_gid : int;
        sent_at : int; (* sender clock, µs; 0 = unclocked *)
        input : El.vec array; (* pre-final-step state, for proof checks *)
        output : El.vec array; (* proven output (Y not yet cleared) *)
        proofs : string array; (* last ReEnc step's proofs, per unit *)
      }
    | Shuffle_step of {
        gid : int;
        iter : int;
        step : int; (* quorum index of the receiving member *)
        sent_at : int;
        input : El.vec array;
        output : El.vec array;
        proof : string; (* ShufProof bytes; empty in the basic variant *)
      }
    | Reenc_step of {
        gid : int;
        iter : int;
        batch_idx : int;
        step : int;
        sent_at : int;
        input : El.vec array;
        output : El.vec array;
        proofs : string array;
      }
    | Exit_batch of {
        gid : int;
        iter : int; (* absolute iteration of the final layer *)
        batch_idx : int;
        input : El.vec array;
        output : El.vec array;
        proofs : string array;
      }

  let max_width = 4096
  let max_proof = Frame.max_body

  (* ---- writers ---- *)

  (* 63-bit OCaml ints cover u64 timestamps for any plausible uptime. *)
  let write_u64 (b : Buffer.t) (v : int) =
    Frame.W.u32 b (v lsr 32);
    Frame.W.u32 b v

  let write_vec (b : Buffer.t) (v : El.vec) =
    if Array.length v > max_width then invalid_arg "Codec.write_vec: width too large";
    Frame.W.u16 b (Array.length v);
    Array.iter (fun ct -> Buffer.add_string b (El.cipher_to_bytes ct)) v

  let write_vecs (b : Buffer.t) (vs : El.vec array) =
    Frame.W.u32 b (Array.length vs);
    Array.iter (write_vec b) vs

  let write_proofs (b : Buffer.t) (ps : string array) =
    Frame.W.u32 b (Array.length ps);
    Array.iter (Frame.W.str32 b) ps

  (* ---- readers ---- *)

  let read_u64 (r : Frame.R.t) : int =
    let hi = Frame.R.u32 r in
    let lo = Frame.R.u32 r in
    (hi lsl 32) lor lo

  (* [`Deferred] skips the subgroup-membership exponentiation per element
     (structural length/range checks remain); callers owe a batched
     membership check before the elements reach secret-dependent ops. *)
  let el_decoder = function `Eager -> G.of_bytes | `Deferred -> G.of_bytes_unchecked

  let read_cipher ~validate (r : Frame.R.t) : El.cipher =
    let eb = G.element_bytes in
    let dec = el_decoder validate in
    let el s = match dec s with Some e -> e | None -> Frame.R.fail () in
    let rr = el (Frame.R.bytes r eb) in
    let c = el (Frame.R.bytes r eb) in
    match Frame.R.u8 r with
    | 0 -> { El.r = rr; c; y = None }
    | 1 -> { El.r = rr; c; y = Some (el (Frame.R.bytes r eb)) }
    | _ -> Frame.R.fail ()

  let read_vec ~validate (r : Frame.R.t) : El.vec =
    let w = Frame.R.u16 r in
    if w > max_width then Frame.R.fail ();
    Array.init w (fun _ -> read_cipher ~validate r)

  let read_vecs ~validate (r : Frame.R.t) : El.vec array =
    (* Each vec consumes ≥ 2 bytes, so [remaining] bounds the allocation. *)
    let n = Frame.R.count r ~max:(Frame.R.remaining r) in
    Array.init n (fun _ -> read_vec ~validate r)

  let read_proofs (r : Frame.R.t) : string array =
    let n = Frame.R.count r ~max:(Frame.R.remaining r) in
    Array.init n (fun _ -> Frame.R.str32 ~max:max_proof r)

  let read_element ~validate (r : Frame.R.t) : G.t =
    match el_decoder validate (Frame.R.bytes r G.element_bytes) with
    | Some e -> e
    | None -> Frame.R.fail ()

  (* ---- message codec ---- *)

  let encode (msg : msg) : string =
    let b = Buffer.create 256 in
    let kind =
      match msg with
      | Group_key { gid; pk } ->
          Frame.W.u32 b gid;
          Buffer.add_string b (G.to_bytes pk);
          Frame.kind_group_key
      | Batch { gid; iter; src_gid; sent_at; input; output; proofs } ->
          Frame.W.u32 b gid;
          Frame.W.u32 b iter;
          Frame.W.u32 b src_gid;
          write_u64 b sent_at;
          write_vecs b input;
          write_vecs b output;
          write_proofs b proofs;
          Frame.kind_batch
      | Shuffle_step { gid; iter; step; sent_at; input; output; proof } ->
          Frame.W.u32 b gid;
          Frame.W.u32 b iter;
          Frame.W.u16 b step;
          write_u64 b sent_at;
          write_vecs b input;
          write_vecs b output;
          Frame.W.str32 b proof;
          Frame.kind_shuffle_step
      | Reenc_step { gid; iter; batch_idx; step; sent_at; input; output; proofs } ->
          Frame.W.u32 b gid;
          Frame.W.u32 b iter;
          Frame.W.u32 b batch_idx;
          Frame.W.u16 b step;
          write_u64 b sent_at;
          write_vecs b input;
          write_vecs b output;
          write_proofs b proofs;
          Frame.kind_reenc_step
      | Exit_batch { gid; iter; batch_idx; input; output; proofs } ->
          Frame.W.u32 b gid;
          Frame.W.u32 b iter;
          Frame.W.u32 b batch_idx;
          write_vecs b input;
          write_vecs b output;
          write_proofs b proofs;
          Frame.kind_exit_batch
    in
    Frame.encode ~kind (Buffer.contents b)

  let decode_body ?(validate = `Eager) (kind : int) (body : string) : msg option =
    let open Frame.R in
    decode body (fun r ->
        if kind = Frame.kind_group_key then
          let gid = u32 r in
          Group_key { gid; pk = read_element ~validate r }
        else if kind = Frame.kind_batch then
          let gid = u32 r in
          let iter = u32 r in
          let src_gid = u32 r in
          let sent_at = read_u64 r in
          let input = read_vecs ~validate r in
          let output = read_vecs ~validate r in
          Batch { gid; iter; src_gid; sent_at; input; output; proofs = read_proofs r }
        else if kind = Frame.kind_shuffle_step then
          let gid = u32 r in
          let iter = u32 r in
          let step = u16 r in
          let sent_at = read_u64 r in
          let input = read_vecs ~validate r in
          let output = read_vecs ~validate r in
          Shuffle_step
            { gid; iter; step; sent_at; input; output; proof = str32 ~max:max_proof r }
        else if kind = Frame.kind_reenc_step then
          let gid = u32 r in
          let iter = u32 r in
          let batch_idx = u32 r in
          let step = u16 r in
          let sent_at = read_u64 r in
          let input = read_vecs ~validate r in
          let output = read_vecs ~validate r in
          Reenc_step
            { gid; iter; batch_idx; step; sent_at; input; output; proofs = read_proofs r }
        else if kind = Frame.kind_exit_batch then
          let gid = u32 r in
          let iter = u32 r in
          let batch_idx = u32 r in
          let input = read_vecs ~validate r in
          let output = read_vecs ~validate r in
          Exit_batch { gid; iter; batch_idx; input; output; proofs = read_proofs r }
        else fail ())

  let decode ?(validate = `Eager) (framed : string) : msg option =
    match Frame.decode framed with
    | None -> None
    | Some (kind, body) -> decode_body ~validate kind body
end
