(* Data-plane codecs: every message whose payload contains group elements —
   ciphertext batches, proof-carrying shuffle / decrypt-and-reencrypt
   steps, group public keys. Parametric over the group backend (and its
   ElGamal instantiation) exactly like the protocol engine itself.

   Proof objects travel as opaque length-prefixed blobs at this layer; the
   proof modules' own [of_bytes] decoders (which validate every element)
   run at the protocol boundary, keeping the wire layer free of the zkp
   dependency while every byte still gets validated before use.

   Body layouts (big-endian; header per Frame):

     cipher       u8 has_y=0 ⇒ R ‖ c          (2·eb + 1 bytes)
                  u8 has_y=1 ⇒ R ‖ c ‖ Y      (3·eb + 1 bytes)
                  (exactly Elgamal.cipher_to_bytes: R ‖ c ‖ flag [‖ Y])
     vec          u16 width ‖ width × cipher
     vecs         u32 count ‖ count × vec
     proofs       u32 count ‖ count × str32

     group_key    u32 gid ‖ element
     batch        u32 dst_gid ‖ u32 iter ‖ u32 src_gid ‖ u64 sent_at ‖
                  vecs input ‖ vecs output ‖ proofs
     shuffle_step u32 gid ‖ u32 iter ‖ u16 step ‖ u64 sent_at ‖
                  vecs input ‖ vecs output ‖ str32 proof
     reenc_step   u32 gid ‖ u32 iter ‖ u32 batch_idx ‖ u16 step ‖
                  u64 sent_at ‖ vecs input ‖ vecs output ‖ proofs
     exit_batch   u32 gid ‖ u32 iter ‖ u32 batch_idx ‖ vecs input ‖
                  vecs output ‖ proofs

   [sent_at] is the sender's process-relative clock in microseconds at
   encode time (0 when the sender has no clock): pure telemetry, letting
   the merged cluster trace split a receiver's recv-wait into "peer still
   computing" vs. "frame in flight". It is never used for protocol
   decisions. [exit_batch.iter] is the absolute iteration of the final
   layer, so pipelined epochs (absolute iter = epoch·T + layer) keep exit
   collection keyed by epoch.

   Decode runs in two phases under every [Validation] policy:

   1. One structural parse of the body, strict and total. Group elements
      are decoded as [G.Unverified.elt] views straight off the receive
      buffer ([Frame.R.view] offsets + [G.Unverified.of_bytes_sub] — no
      per-element substring copies), accumulated in wire order, with a
      [raw] skeleton recording the message shape (per-cipher Y-flags) so
      the bytes are parsed exactly once.
   2. A membership discharge, scheduled by the policy: [Eager] discharges
      per element (fail-fast), [Batched] runs one amortized
      [discharge_batch] over the whole frame and returns the finished
      [msg], [Deferred] returns the undischarged [deferred] so the caller
      can dedup / route cheaply and [discharge] later — which also
      reports *which* element was a non-member.

   Strict and total like every decoder in this library: arbitrary bytes
   yield [None], never an exception. A frame containing a non-member
   element is rejected under every policy; only the timing of the check
   differs. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (El : module type of Atom_elgamal.Elgamal.Make (G)) =
struct
  type msg =
    | Group_key of { gid : int; pk : G.t }
    | Batch of {
        gid : int; (* destination group *)
        iter : int; (* destination absolute iteration (epoch·T + layer) *)
        src_gid : int;
        sent_at : int; (* sender clock, µs; 0 = unclocked *)
        input : El.vec array; (* pre-final-step state, for proof checks *)
        output : El.vec array; (* proven output (Y not yet cleared) *)
        proofs : string array; (* last ReEnc step's proofs, per unit *)
      }
    | Shuffle_step of {
        gid : int;
        iter : int;
        step : int; (* quorum index of the receiving member *)
        sent_at : int;
        input : El.vec array;
        output : El.vec array;
        proof : string; (* ShufProof bytes; empty in the basic variant *)
      }
    | Reenc_step of {
        gid : int;
        iter : int;
        batch_idx : int;
        step : int;
        sent_at : int;
        input : El.vec array;
        output : El.vec array;
        proofs : string array;
      }
    | Exit_batch of {
        gid : int;
        iter : int; (* absolute iteration of the final layer *)
        batch_idx : int;
        input : El.vec array;
        output : El.vec array;
        proofs : string array;
      }

  let max_width = 4096
  let max_proof = Frame.max_body

  (* ---- writers ---- *)

  (* 63-bit OCaml ints cover u64 timestamps for any plausible uptime. *)
  let write_u64 (b : Buffer.t) (v : int) =
    Frame.W.u32 b (v lsr 32);
    Frame.W.u32 b v

  let write_vec (b : Buffer.t) (v : El.vec) =
    if Array.length v > max_width then invalid_arg "Codec.write_vec: width too large";
    Frame.W.u16 b (Array.length v);
    Array.iter (fun ct -> Buffer.add_string b (El.cipher_to_bytes ct)) v

  let write_vecs (b : Buffer.t) (vs : El.vec array) =
    Frame.W.u32 b (Array.length vs);
    Array.iter (write_vec b) vs

  let write_proofs (b : Buffer.t) (ps : string array) =
    Frame.W.u32 b (Array.length ps);
    Array.iter (Frame.W.str32 b) ps

  (* ---- structural parse (phase 1) ----

     The skeleton mirrors [msg] with every group element factored out into
     one flat accumulator: a cipher is its per-position Y-flag, a vec is a
     flag array, and elements live in [elts] in exact wire order. [build]
     re-threads a discharged element array through the same shape. *)

  type raw =
    | R_group_key of { gid : int }
    | R_batch of {
        gid : int;
        iter : int;
        src_gid : int;
        sent_at : int;
        input : bool array array;
        output : bool array array;
        proofs : string array;
      }
    | R_shuffle_step of {
        gid : int;
        iter : int;
        step : int;
        sent_at : int;
        input : bool array array;
        output : bool array array;
        proof : string;
      }
    | R_reenc_step of {
        gid : int;
        iter : int;
        batch_idx : int;
        step : int;
        sent_at : int;
        input : bool array array;
        output : bool array array;
        proofs : string array;
      }
    | R_exit_batch of {
        gid : int;
        iter : int;
        batch_idx : int;
        input : bool array array;
        output : bool array array;
        proofs : string array;
      }

  type deferred = { raw : raw; elts : G.Unverified.elt array }
  (** A structurally-parsed frame whose elements' membership checks are
      still owed; release the message with {!discharge}. *)

  (* Growable element accumulator ([elt] is abstract, so growth seeds new
     storage with the pushed value instead of a dummy). Body length bounds
     the element count, so capacity is bounded by [Frame.max_body]. *)
  type acc = { mutable els : G.Unverified.elt array; mutable n : int }

  let acc_push (a : acc) (e : G.Unverified.elt) =
    let cap = Array.length a.els in
    if a.n = cap then begin
      let grown = Array.make (max 64 (2 * cap)) e in
      Array.blit a.els 0 grown 0 a.n;
      a.els <- grown
    end;
    a.els.(a.n) <- e;
    a.n <- a.n + 1

  let read_u64 (r : Frame.R.t) : int =
    let hi = Frame.R.u32 r in
    let lo = Frame.R.u32 r in
    (hi lsl 32) lor lo

  (* One element: a zero-copy view into the receive buffer, structurally
     decoded in place. *)
  let read_elt (acc : acc) (r : Frame.R.t) : unit =
    let pos = Frame.R.view r G.element_bytes in
    match G.Unverified.of_bytes_sub (Frame.R.src r) ~pos with
    | Some e -> acc_push acc e
    | None -> Frame.R.fail ()

  let read_cipher (acc : acc) (r : Frame.R.t) : bool =
    read_elt acc r;
    (* R *)
    read_elt acc r;
    (* c *)
    match Frame.R.u8 r with
    | 0 -> false
    | 1 ->
        read_elt acc r;
        (* Y *)
        true
    | _ -> Frame.R.fail ()

  let read_vec (acc : acc) (r : Frame.R.t) : bool array =
    let w = Frame.R.u16 r in
    if w > max_width then Frame.R.fail ();
    Array.init w (fun _ -> read_cipher acc r)

  let read_vecs (acc : acc) (r : Frame.R.t) : bool array array =
    (* Each vec consumes ≥ 2 bytes, so [remaining] bounds the allocation. *)
    let n = Frame.R.count r ~max:(Frame.R.remaining r) in
    Array.init n (fun _ -> read_vec acc r)

  let read_proofs (r : Frame.R.t) : string array =
    let n = Frame.R.count r ~max:(Frame.R.remaining r) in
    Array.init n (fun _ -> Frame.R.str32 ~max:max_proof r)

  let parse_body (kind : int) (body : string) : deferred option =
    let acc = { els = [||]; n = 0 } in
    let open Frame.R in
    decode body (fun r ->
        let raw =
          if kind = Frame.kind_group_key then begin
            let gid = u32 r in
            read_elt acc r;
            R_group_key { gid }
          end
          else if kind = Frame.kind_batch then
            let gid = u32 r in
            let iter = u32 r in
            let src_gid = u32 r in
            let sent_at = read_u64 r in
            let input = read_vecs acc r in
            let output = read_vecs acc r in
            R_batch { gid; iter; src_gid; sent_at; input; output; proofs = read_proofs r }
          else if kind = Frame.kind_shuffle_step then
            let gid = u32 r in
            let iter = u32 r in
            let step = u16 r in
            let sent_at = read_u64 r in
            let input = read_vecs acc r in
            let output = read_vecs acc r in
            R_shuffle_step
              { gid; iter; step; sent_at; input; output; proof = str32 ~max:max_proof r }
          else if kind = Frame.kind_reenc_step then
            let gid = u32 r in
            let iter = u32 r in
            let batch_idx = u32 r in
            let step = u16 r in
            let sent_at = read_u64 r in
            let input = read_vecs acc r in
            let output = read_vecs acc r in
            R_reenc_step
              { gid; iter; batch_idx; step; sent_at; input; output; proofs = read_proofs r }
          else if kind = Frame.kind_exit_batch then
            let gid = u32 r in
            let iter = u32 r in
            let batch_idx = u32 r in
            let input = read_vecs acc r in
            let output = read_vecs acc r in
            R_exit_batch { gid; iter; batch_idx; input; output; proofs = read_proofs r }
          else fail ()
        in
        { raw; elts = Array.sub acc.els 0 acc.n })

  (* ---- rebuild (phase 2) ---- *)

  let build (raw : raw) (els : G.t array) : msg =
    let k = ref 0 in
    let next () =
      let e = els.(!k) in
      incr k;
      e
    in
    let cipher has_y =
      let r = next () in
      let c = next () in
      let y = if has_y then Some (next ()) else None in
      { El.r; c; y }
    in
    let vec flags = Array.init (Array.length flags) (fun i -> cipher flags.(i)) in
    let vecs fss = Array.init (Array.length fss) (fun i -> vec fss.(i)) in
    match raw with
    | R_group_key { gid } -> Group_key { gid; pk = next () }
    | R_batch { gid; iter; src_gid; sent_at; input; output; proofs } ->
        let input = vecs input in
        let output = vecs output in
        Batch { gid; iter; src_gid; sent_at; input; output; proofs }
    | R_shuffle_step { gid; iter; step; sent_at; input; output; proof } ->
        let input = vecs input in
        let output = vecs output in
        Shuffle_step { gid; iter; step; sent_at; input; output; proof }
    | R_reenc_step { gid; iter; batch_idx; step; sent_at; input; output; proofs } ->
        let input = vecs input in
        let output = vecs output in
        Reenc_step { gid; iter; batch_idx; step; sent_at; input; output; proofs }
    | R_exit_batch { gid; iter; batch_idx; input; output; proofs } ->
        let input = vecs input in
        let output = vecs output in
        Exit_batch { gid; iter; batch_idx; input; output; proofs }

  let discharge ?pool (d : deferred) : (msg, int) result =
    match G.Unverified.discharge_batch ?pool d.elts with
    | Ok els -> Ok (build d.raw els)
    | Error i -> Error i

  type decoded = Msg of msg | Unchecked of deferred

  let force ?pool (d : decoded) : msg option =
    match d with
    | Msg m -> Some m
    | Unchecked d -> ( match discharge ?pool d with Ok m -> Some m | Error _ -> None)

  (* ---- message codec ---- *)

  let encode (msg : msg) : string =
    let b = Buffer.create 256 in
    let kind =
      match msg with
      | Group_key { gid; pk } ->
          Frame.W.u32 b gid;
          Buffer.add_string b (G.to_bytes pk);
          Frame.kind_group_key
      | Batch { gid; iter; src_gid; sent_at; input; output; proofs } ->
          Frame.W.u32 b gid;
          Frame.W.u32 b iter;
          Frame.W.u32 b src_gid;
          write_u64 b sent_at;
          write_vecs b input;
          write_vecs b output;
          write_proofs b proofs;
          Frame.kind_batch
      | Shuffle_step { gid; iter; step; sent_at; input; output; proof } ->
          Frame.W.u32 b gid;
          Frame.W.u32 b iter;
          Frame.W.u16 b step;
          write_u64 b sent_at;
          write_vecs b input;
          write_vecs b output;
          Frame.W.str32 b proof;
          Frame.kind_shuffle_step
      | Reenc_step { gid; iter; batch_idx; step; sent_at; input; output; proofs } ->
          Frame.W.u32 b gid;
          Frame.W.u32 b iter;
          Frame.W.u32 b batch_idx;
          Frame.W.u16 b step;
          write_u64 b sent_at;
          write_vecs b input;
          write_vecs b output;
          write_proofs b proofs;
          Frame.kind_reenc_step
      | Exit_batch { gid; iter; batch_idx; input; output; proofs } ->
          Frame.W.u32 b gid;
          Frame.W.u32 b iter;
          Frame.W.u32 b batch_idx;
          write_vecs b input;
          write_vecs b output;
          write_proofs b proofs;
          Frame.kind_exit_batch
    in
    Frame.encode ~kind (Buffer.contents b)

  let decode_body ?pool ?(policy = Validation.Eager) (kind : int) (body : string) :
      decoded option =
    match parse_body kind body with
    | None -> None
    | Some d -> (
        match policy with
        | Validation.Deferred -> Some (Unchecked d)
        | Validation.Batched -> (
            match discharge ?pool d with Ok m -> Some (Msg m) | Error _ -> None)
        | Validation.Eager ->
            (* Fail-fast per-element discharge; [G.one] only seeds the
               output array and every slot is overwritten before use. *)
            let n = Array.length d.elts in
            let out = Array.make n G.one in
            let rec go i =
              if i >= n then Some (Msg (build d.raw out))
              else
                match G.Unverified.discharge d.elts.(i) with
                | Some e ->
                    out.(i) <- e;
                    go (i + 1)
                | None -> None
            in
            go 0)

  let decode ?pool ?policy (framed : string) : decoded option =
    match Frame.decode framed with
    | None -> None
    | Some (kind, body) -> decode_body ?pool ?policy kind body
end
