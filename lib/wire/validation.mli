(** Group-element validation policy for the data-plane codecs.

    Every policy accepts exactly the same set of frames — a frame carrying
    a non-member element is rejected under all three — they differ only in
    *when* the membership check runs and what the caller holds before it
    has run:

    - {!Eager}: each element is membership-checked as it is decoded
      (fail-fast, the conservative default);
    - {!Batched}: the frame is decoded structurally (zero-copy views over
      the receive buffer) and a single amortized {!Group_intf.GROUP}
      [check_batch]-style discharge covers every element before the
      message is released — the data-plane hot path;
    - {!Deferred}: structural decode only; the caller gets a typed
      undischarged value ([Codec.Make.deferred]) and must discharge it
      explicitly, which also reports *which* element failed.

    Control-plane frames ({!Control}) carry no group elements, so no
    policy applies there. *)

type t = Eager | Batched | Deferred

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} ([None] on anything else) — for CLI flags and
    benchmark labels. *)

val all : t list
(** Every policy, in declaration order (benchmark sweeps). *)
