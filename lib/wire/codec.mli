(** Data-plane codecs: every wire message whose payload contains group
    elements — ciphertext batches, proof-carrying shuffle /
    decrypt-and-reencrypt steps, group public keys. Parametric over the
    group backend (and its ElGamal instantiation) exactly like the
    protocol engine itself.

    Decode is two-phase: one strict structural parse of the body (group
    elements become {!Atom_group.Group_intf.GROUP.Unverified} views read
    in place off the receive buffer, no per-element copies), then a
    membership discharge scheduled by the {!Validation} policy. Every
    policy accepts exactly the same frames; see {!Validation} for the
    semantics and DESIGN.md, "Wire validation policies", for the
    soundness argument.

    Decoders are strict and total: arbitrary bytes yield [None], never an
    exception. Encoders raise [Invalid_argument] only on violated size
    caps — programming errors, not wire input. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (El : module type of Atom_elgamal.Elgamal.Make (G)) : sig
  type msg =
    | Group_key of { gid : int; pk : G.t }
    | Batch of {
        gid : int;  (** Destination group. *)
        iter : int;  (** Destination absolute iteration (epoch·T + layer). *)
        src_gid : int;
        sent_at : int;  (** Sender clock, µs; 0 = unclocked. Telemetry only. *)
        input : El.vec array;  (** Pre-final-step state, for proof checks. *)
        output : El.vec array;  (** Proven output (Y not yet cleared). *)
        proofs : string array;  (** Last ReEnc step's proofs, per unit. *)
      }
    | Shuffle_step of {
        gid : int;
        iter : int;
        step : int;  (** Quorum index of the receiving member. *)
        sent_at : int;
        input : El.vec array;
        output : El.vec array;
        proof : string;  (** ShufProof bytes; empty in the basic variant. *)
      }
    | Reenc_step of {
        gid : int;
        iter : int;
        batch_idx : int;
        step : int;
        sent_at : int;
        input : El.vec array;
        output : El.vec array;
        proofs : string array;
      }
    | Exit_batch of {
        gid : int;
        iter : int;  (** Absolute iteration of the final layer. *)
        batch_idx : int;
        input : El.vec array;
        output : El.vec array;
        proofs : string array;
      }

  val max_width : int
  (** Per-vec cipher cap (encode raises above it; decode rejects). *)

  val max_proof : int
  (** Per-proof blob cap. *)

  val encode : msg -> string
  (** A complete frame (header + body), ready for the transport. *)

  type deferred
  (** A structurally-parsed frame whose elements' membership checks are
      still owed. The elements inside are
      {!Atom_group.Group_intf.GROUP.Unverified} values — they cannot reach
      group arithmetic until {!discharge} releases the message. *)

  val discharge : ?pool:Atom_exec.Pool.t -> deferred -> (msg, int) result
  (** Run the owed membership checks (one amortized batch over every
      element of the frame, spread over [?pool] when given) and build the
      message. [Error i] names the first non-member element, in wire
      order — the per-element fallback that reports *which* element a
      hostile peer planted. *)

  type decoded = Msg of msg | Unchecked of deferred
      (** [Msg] under {!Validation.Eager} / {!Validation.Batched} (the
          frame is fully validated); [Unchecked] under
          {!Validation.Deferred}. *)

  val force : ?pool:Atom_exec.Pool.t -> decoded -> msg option
  (** Collapse a [decoded] to a validated message, discharging if the
      policy deferred ([None] on a non-member element). *)

  val decode_body : ?pool:Atom_exec.Pool.t -> ?policy:Validation.t -> int -> string -> decoded option
  (** [decode_body kind body] — for callers that already split the frame
      (the streaming receive path). [policy] defaults to
      {!Validation.Eager}; [?pool] spreads a [Batched] discharge. *)

  val decode : ?pool:Atom_exec.Pool.t -> ?policy:Validation.t -> string -> decoded option
  (** Full strict decode of one frame. [None] on anything malformed — bad
      framing, bad structure, or (under [Eager]/[Batched]) a non-member
      element. *)
end
