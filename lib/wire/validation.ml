(* First-class group-element validation policy for the data-plane codecs,
   replacing the old ad-hoc [?validate:[`Eager|`Deferred]] flag. See
   DESIGN.md, "Wire validation policies". *)

type t =
  | Eager  (** Per-element membership discharge during decode. *)
  | Batched
      (** Structural decode, then one amortized membership check over every
          element of the frame before the message is released. *)
  | Deferred
      (** Structural decode only; the caller receives an undischarged value
          and owes an explicit discharge before the elements can reach
          group arithmetic. *)

let to_string = function Eager -> "eager" | Batched -> "batched" | Deferred -> "deferred"

let of_string = function
  | "eager" -> Some Eager
  | "batched" -> Some Batched
  | "deferred" -> Some Deferred
  | _ -> None

let all = [ Eager; Batched; Deferred ]
