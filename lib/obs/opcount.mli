(** Global group-operation tallies, bumped by the GROUP backends on every
    exported exponentiation-shaped call. One integer increment per
    multi-hundred-microsecond field operation: free to leave on.

    Composite fast-path calls count once at their own level (a [pow2] is
    not also an [msm]), so a snapshot diff reads as calls the protocol
    made. *)

type snapshot = {
  pow : int;
  pow_gen : int;
  pow2 : int;
  msm_calls : int;
  msm_terms : int;
  batch_calls : int;
  batch_scalars : int;
}

val zero : snapshot

val note_pow : unit -> unit
val note_pow_gen : unit -> unit
val note_pow2 : unit -> unit
val note_msm : terms:int -> unit
val note_batch : scalars:int -> unit

val snapshot : unit -> snapshot
val diff : snapshot -> snapshot -> snapshot
(** [diff after before]. *)

val reset : unit -> unit
val total_calls : snapshot -> int
val pp : Format.formatter -> snapshot -> unit

val publish : Metrics.t -> ?prefix:string -> snapshot -> unit
(** Mirror as gauges (default prefix ["group.ops."]). *)
