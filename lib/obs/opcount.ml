(* Global group-operation tallies.

   The GROUP backends bump these on every exported exponentiation-shaped
   call, so Table-3-style cost attribution ("how many pows did that round
   actually perform, and at what multi-exponentiation sizes?") is measured
   rather than inferred from protocol arithmetic. Counters are global
   [Atomic] ints bumped unconditionally: an uncontended atomic increment
   against multi-hundred-microsecond field operations is unmeasurable,
   which is what lets the crypto bench run uninstrumented-fast with
   observability compiled in — and lets pool workers note ops from any
   domain without losing counts.

   Composite fast-path entry points count once at their own level — a
   [pow2] does not also count as an [msm] — so a snapshot diff reads as
   "calls the protocol made", not "calls the backend internally
   decomposed into". *)

type snapshot = {
  pow : int; (* variable-base single exponentiations *)
  pow_gen : int; (* fixed-base (generator) exponentiations *)
  pow2 : int; (* double-scalar products (sigma verification shape) *)
  msm_calls : int;
  msm_terms : int; (* total terms across all msm calls *)
  batch_calls : int; (* pow_batch + pow_gen_batch invocations *)
  batch_scalars : int; (* total scalars across batch calls *)
}

let zero = { pow = 0; pow_gen = 0; pow2 = 0; msm_calls = 0; msm_terms = 0; batch_calls = 0; batch_scalars = 0 }

let c_pow = Atomic.make 0
let c_pow_gen = Atomic.make 0
let c_pow2 = Atomic.make 0
let c_msm_calls = Atomic.make 0
let c_msm_terms = Atomic.make 0
let c_batch_calls = Atomic.make 0
let c_batch_scalars = Atomic.make 0

let note_pow () = Atomic.incr c_pow
let note_pow_gen () = Atomic.incr c_pow_gen
let note_pow2 () = Atomic.incr c_pow2

let note_msm ~(terms : int) =
  Atomic.incr c_msm_calls;
  ignore (Atomic.fetch_and_add c_msm_terms terms)

let note_batch ~(scalars : int) =
  Atomic.incr c_batch_calls;
  ignore (Atomic.fetch_and_add c_batch_scalars scalars)

let snapshot () : snapshot =
  {
    pow = Atomic.get c_pow;
    pow_gen = Atomic.get c_pow_gen;
    pow2 = Atomic.get c_pow2;
    msm_calls = Atomic.get c_msm_calls;
    msm_terms = Atomic.get c_msm_terms;
    batch_calls = Atomic.get c_batch_calls;
    batch_scalars = Atomic.get c_batch_scalars;
  }

let diff (after : snapshot) (before : snapshot) : snapshot =
  {
    pow = after.pow - before.pow;
    pow_gen = after.pow_gen - before.pow_gen;
    pow2 = after.pow2 - before.pow2;
    msm_calls = after.msm_calls - before.msm_calls;
    msm_terms = after.msm_terms - before.msm_terms;
    batch_calls = after.batch_calls - before.batch_calls;
    batch_scalars = after.batch_scalars - before.batch_scalars;
  }

let reset () =
  Atomic.set c_pow 0;
  Atomic.set c_pow_gen 0;
  Atomic.set c_pow2 0;
  Atomic.set c_msm_calls 0;
  Atomic.set c_msm_terms 0;
  Atomic.set c_batch_calls 0;
  Atomic.set c_batch_scalars 0

let total_calls (s : snapshot) : int =
  s.pow + s.pow_gen + s.pow2 + s.msm_calls + s.batch_calls

let pp (fmt : Format.formatter) (s : snapshot) : unit =
  Format.fprintf fmt
    "group ops: pow %d  pow_gen %d  pow2 %d  msm %d (%d terms)  batch %d (%d scalars)"
    s.pow s.pow_gen s.pow2 s.msm_calls s.msm_terms s.batch_calls s.batch_scalars

(* Mirror a snapshot into a registry as gauges, so --metrics dumps carry
   the op tallies next to the runtime counters. *)
let publish (reg : Metrics.t) ?(prefix = "group.ops.") (s : snapshot) : unit =
  let set name v = Metrics.set (Metrics.gauge reg (prefix ^ name)) (float_of_int v) in
  set "pow" s.pow;
  set "pow_gen" s.pow_gen;
  set "pow2" s.pow2;
  set "msm_calls" s.msm_calls;
  set "msm_terms" s.msm_terms;
  set "batch_calls" s.batch_calls;
  set "batch_scalars" s.batch_scalars
