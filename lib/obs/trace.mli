(** Span tracing against a pluggable clock, exported as Chrome trace_event
    JSON (loadable in Perfetto / chrome://tracing) and as plain-text
    per-phase breakdowns.

    The clock is bound by the host: the discrete-event engine binds its
    virtual [now], making traces a pure function of (seed, plan) — two
    identical runs serialize byte-identically; a bench may bind a wall
    clock instead. Tracks (tid) are protocol entities (one per group
    pipeline), labelled with {!thread_name} metadata. *)

type arg = S of string | I of int | F of float

type event = {
  name : string;
  cat : string;
  ph : char;  (** 'X' complete span, 'i' instant, 'M' metadata *)
  ts : float;  (** seconds on the bound clock *)
  dur : float;  (** seconds; 0 unless [ph = 'X'] *)
  tid : int;
  args : (string * arg) list;
}

type t

val create : unit -> t
(** A live tracer. Its clock reads 0 until {!set_clock}. *)

val noop : t
(** Records nothing; every operation is a cheap no-op. *)

val enabled : t -> bool
val set_clock : t -> (unit -> float) -> unit
val now : t -> float

type span

val begin_span : t -> ?cat:string -> ?args:(string * arg) list -> tid:int -> string -> span
val end_span : t -> span -> unit
(** Emits the completed span; idempotent. *)

val with_span : t -> ?cat:string -> ?args:(string * arg) list -> tid:int -> string -> (unit -> 'a) -> 'a

val instant : t -> ?cat:string -> ?args:(string * arg) list -> tid:int -> string -> unit
(** A point event (e.g. a fault injection). *)

val thread_name : t -> tid:int -> string -> unit
(** Label a track; rendered as the lane name by trace viewers. *)

val events : t -> event list
(** In emission order. *)

val event_count : t -> int
val clear : t -> unit

val open_phases : t -> (int * string * float) list
(** The live {!Phase} trackers as [(tid, phase, since)], tid-sorted — what
    every track is doing right now. This is the open-span summary a stats
    snapshot carries; closed spans are in {!events}. *)

val to_chrome_json : t -> string
(** The full trace as [{"traceEvents": [...]}] with microsecond
    timestamps. Deterministic: equal event lists serialize to equal
    bytes. *)

(** One process's event buffer in a merged cluster trace: a Chrome pid
    (its own Perfetto lane group), a process_name label, and a clock
    offset added to every timestamp so all lanes share the coordinator's
    timebase (offsets come from the coordinator's handshake receipt
    times). *)
type lane = {
  lane_pid : int;
  lane_name : string;
  lane_offset : float;  (** seconds, added to every event timestamp *)
  lane_events : event list;
}

val to_chrome_json_lanes : lane list -> string
(** Merge per-process buffers into one Chrome trace: each lane's events
    under its own pid with a process_name metadata record, timestamps
    shifted by the lane offset. Deterministic for equal inputs. *)

val json_escape : string -> string
(** JSON string-body escaping (backslash, quote, control bytes), shared
    with the snapshot codec. *)

(** Exclusive phase accounting: a tracker keeps its track inside exactly
    one leaf phase at every instant, so a track's phase durations tile its
    lifetime — no gaps, no double counting. Consecutive segments of the
    same phase are merged and zero-length segments dropped. *)
module Phase : sig
  type tracker

  val cat : string
  (** The category marking phase spans ("phase"); {!Breakdown} aggregates
      only these. *)

  val start : t -> ?args:(string * arg) list -> tid:int -> string -> tracker
  val current : tracker -> string

  val switch : tracker -> ?args:(string * arg) list -> string -> unit
  (** Close the running segment at the clock's now and enter the named
      phase. No-op when already in it. *)

  val stop : tracker -> unit
  (** Close the final segment. The tracker is dead afterwards. *)
end

(** Per-phase aggregation over recorded phase spans. *)
module Breakdown : sig
  type track = {
    tid : int;
    phases : (string * float) list;  (** phase → total seconds, canonical order *)
    total : float;
    t_end : float;  (** close time of the track's last phase segment *)
  }

  val tracks : event list -> track list

  val critical : event list -> track option
  (** The track whose final phase segment closes last — the chain that
      determined the round's end. Its [total] equals the round latency
      when phases tile the track (see {!Phase}). *)

  val totals : event list -> (string * float) list
  (** Phase totals summed across all tracks (core-seconds view). *)

  val render : ?label:string -> latency:float -> event list -> string
  (** Plain-text table: critical-track seconds and share of [latency] per
      phase, all-track totals, and a coverage line showing the sum-vs-
      latency invariant. *)
end
