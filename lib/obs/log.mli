(** Leveled library logging, off by default.

    Atom's libraries never write to stdout: diagnostics route through here
    and are dropped unless a host raises the level with {!set_level}.
    Enabled messages go to stderr (or a caller-supplied sink). Disabled
    statements cost one branch. *)

type level = Debug | Info | Warn | Error

val set_level : level option -> unit
(** [Some l] enables messages at [l] and above; [None] (the default)
    silences everything. *)

val get_level : unit -> level option

val set_sink : (level -> string -> unit) -> unit
(** Redirect enabled messages (default: stderr, ["[atom:<level>] ..."]). *)

val reset_sink : unit -> unit
val enabled_at : level -> bool

val logf : level -> ('a, unit, string, unit) format4 -> 'a
val debug : ('a, unit, string, unit) format4 -> 'a
val info : ('a, unit, string, unit) format4 -> 'a
val warn : ('a, unit, string, unit) format4 -> 'a
val error : ('a, unit, string, unit) format4 -> 'a
