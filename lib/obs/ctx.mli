(** The observability context threaded through the runtime: a metrics
    registry and a tracer created together. Pass one to [Engine.create];
    the engine binds its virtual clock into the tracer, so spans are
    timestamped in virtual time and traces replay byte-identically. *)

type t

val noop : t
(** Metrics and tracing both disabled; every record is a cheap no-op. *)

val create : ?tracing:bool -> unit -> t
(** A live context. Tracing is off unless requested — metrics are bounded
    in memory, a trace grows with the run. *)

val metrics : t -> Metrics.t
val tracer : t -> Trace.t
val enabled : t -> bool
val tracing : t -> bool

val bind_clock : t -> (unit -> float) -> unit
(** Point the tracer's clock at a time source (the engine's virtual
    [now]). Later bindings win; no-op on {!noop}. *)
