(** atom-metrics/1: the machine-readable observability snapshot.

    One JSON document carrying a process's metrics registry (histogram
    quantiles precomputed), its open-span summary, and optionally its
    trace buffer — served live over [Ctrl.Stats_request], written
    periodically by [atom_node --stats-every], dumped at exit, and parsed
    back by the cluster launcher with {!of_json}.

    The decoder is total (malformed input returns [Error], never raises)
    and strict (unknown fields and schema mismatches are rejected), and
    inverts the encoder bit-exactly: [of_json (to_json s) = Ok s]. *)

val schema : string
(** ["atom-metrics/1"]. Bumps when the document layout changes. *)

type hist = {
  h_lo : float;
  h_hi : float;
  h_count : int;
  h_sum : float;
  h_min : float;  (** exact observed; 0 when empty *)
  h_max : float;
  h_below : int;
  h_above : int;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_buckets : int array;
}

type metric = Counter of float | Gauge of float | Histogram of hist

type open_span = { os_tid : int; os_phase : string; os_since : float }

type t = {
  node_id : int;
  now : float;  (** the process clock at snapshot time (s) *)
  metrics : (string * metric) list;  (** name-sorted, as [Metrics.dump] *)
  open_spans : open_span list;
  events : Trace.event list;  (** trace buffer; [[]] unless requested *)
}

val of_ctx : node_id:int -> ?now:float -> ?include_trace:bool -> Ctx.t -> t
(** Capture the context's current state. [now] defaults to the tracer's
    clock reading (0 for an unbound or noop tracer); [include_trace]
    (default false) copies the full event buffer into the snapshot. *)

val counters : t -> (string * float) list
(** Just the counters — the shape report builders sum across nodes. *)

val counter_value : t -> string -> float
(** Counter by name; 0 when absent or not a counter. *)

val to_json : t -> string
(** The snapshot as one deterministic JSON document. *)

val of_json : string -> (t, string) result
(** Strict total inverse of {!to_json}; the error is a human-readable
    path to the first offending field. *)
