(* Metrics registry: named counters, gauges, and fixed-bucket histograms.

   Built for hot paths: a counter is one mutable float cell, so recording
   costs a load and a store. Disabling goes through the registry, not the
   call sites — [noop] hands out shared scratch cells (counters, gauges)
   and inactive histograms, so instrumented code runs unchanged and
   branch-free whether observability is on or off. Metric objects are
   find-or-create by name, letting independent subsystems accumulate into
   the same cell; name enumeration is sorted so dumps are deterministic.

   Histograms use equal-width buckets over [lo, hi] with the same bucket
   convention as [Atom_util.Stats.bucket_index] (last bucket closed at
   [hi]); out-of-range observations are tallied separately rather than
   dropped, and sum/count/min/max are exact regardless of bucketing. *)

type counter = { mutable c : float }
type gauge = { mutable g : float }

type histogram = {
  active : bool;
  lo : float;
  hi : float;
  counts : int array;
  mutable sum : float;
  mutable n : int;
  mutable minv : float;
  mutable maxv : float;
  mutable below : int; (* observations < lo *)
  mutable above : int; (* observations > hi *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  enabled : bool;
  tbl : (string, metric) Hashtbl.t;
}

let create () : t = { enabled = true; tbl = Hashtbl.create 64 }
let noop : t = { enabled = false; tbl = Hashtbl.create 1 }
let enabled (t : t) : bool = t.enabled

(* Shared scratch cells handed out by the noop registry: writes land
   somewhere harmless instead of paying a branch at every record site. *)
let scratch_counter : counter = { c = 0. }
let scratch_gauge : gauge = { g = 0. }

let scratch_histogram : histogram =
  {
    active = false;
    lo = 0.;
    hi = 1.;
    counts = [||];
    sum = 0.;
    n = 0;
    minv = infinity;
    maxv = neg_infinity;
    below = 0;
    above = 0;
  }

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let find_or_create (t : t) (name : string) (make : unit -> metric) (want : string) : metric =
  match Hashtbl.find_opt t.tbl name with
  | Some m ->
      if kind_name m <> want then
        invalid_arg
          (Printf.sprintf "Metrics: %S already registered as a %s, requested as a %s" name
             (kind_name m) want);
      m
  | None ->
      let m = make () in
      Hashtbl.add t.tbl name m;
      m

let counter (t : t) (name : string) : counter =
  if not t.enabled then scratch_counter
  else
    match find_or_create t name (fun () -> Counter { c = 0. }) "counter" with
    | Counter c -> c
    | _ -> assert false

let gauge (t : t) (name : string) : gauge =
  if not t.enabled then scratch_gauge
  else
    match find_or_create t name (fun () -> Gauge { g = 0. }) "gauge" with
    | Gauge g -> g
    | _ -> assert false

let histogram (t : t) ?(buckets = 16) ~(lo : float) ~(hi : float) (name : string) : histogram =
  if buckets <= 0 || hi <= lo then invalid_arg "Metrics.histogram";
  if not t.enabled then scratch_histogram
  else
    match
      find_or_create t name
        (fun () ->
          Histogram
            {
              active = true;
              lo;
              hi;
              counts = Array.make buckets 0;
              sum = 0.;
              n = 0;
              minv = infinity;
              maxv = neg_infinity;
              below = 0;
              above = 0;
            })
        "histogram"
    with
    | Histogram h -> h
    | _ -> assert false

let incr (c : counter) : unit = c.c <- c.c +. 1.
let add (c : counter) (v : float) : unit = c.c <- c.c +. v
let value (c : counter) : float = c.c
let set (g : gauge) (v : float) : unit = g.g <- v
let gauge_value (g : gauge) : float = g.g

let observe (h : histogram) (x : float) : unit =
  if h.active then begin
    h.sum <- h.sum +. x;
    h.n <- h.n + 1;
    if x < h.minv then h.minv <- x;
    if x > h.maxv then h.maxv <- x;
    match Atom_util.Stats.bucket_index ~buckets:(Array.length h.counts) ~lo:h.lo ~hi:h.hi x with
    | Some b -> h.counts.(b) <- h.counts.(b) + 1
    | None -> if x < h.lo then h.below <- h.below + 1 else h.above <- h.above + 1
  end

let hist_count (h : histogram) : int = h.n
let hist_sum (h : histogram) : float = h.sum
let hist_mean (h : histogram) : float = if h.n = 0 then 0. else h.sum /. float_of_int h.n

(* Structural accessors for serializers (the JSON snapshot codec): the
   bucket bounds and raw tallies, with the empty-histogram min/max
   normalized to 0 so no infinity ever reaches a wire format. *)
let hist_lo (h : histogram) : float = h.lo
let hist_hi (h : histogram) : float = h.hi
let hist_buckets (h : histogram) : int array = Array.copy h.counts
let hist_min (h : histogram) : float = if h.n = 0 then 0. else h.minv
let hist_max (h : histogram) : float = if h.n = 0 then 0. else h.maxv
let hist_below (h : histogram) : int = h.below
let hist_above (h : histogram) : int = h.above

(* Percentile estimate from the bucket counts: linear interpolation inside
   the bucket containing the target rank; under/overflow tallies clamp to
   lo/hi. Exact min/max are used for the extreme ranks. *)
let hist_quantile (h : histogram) (p : float) : float =
  if h.n = 0 then 0.
  else if p <= 0. then h.minv
  else if p >= 100. then h.maxv
  else begin
    let buckets = Array.length h.counts in
    let width = (h.hi -. h.lo) /. float_of_int buckets in
    let target = p /. 100. *. float_of_int h.n in
    let rec walk b acc =
      if b >= buckets then h.maxv
      else begin
        let acc' = acc +. float_of_int h.counts.(b) in
        if acc' >= target && h.counts.(b) > 0 then
          let frac = (target -. acc) /. float_of_int h.counts.(b) in
          h.lo +. (width *. (float_of_int b +. frac))
        else walk (b + 1) acc'
      end
    in
    (* Interpolation assumes observations spread through the bucket; clamp
       to the observed range so coarse buckets never report a quantile
       outside [min, max]. *)
    Float.min h.maxv (Float.max h.minv (walk 0 (float_of_int h.below)))
  end

type view =
  | V_counter of float
  | V_gauge of float
  | V_histogram of histogram

let dump (t : t) : (string * view) list =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | Counter c -> V_counter c.c
        | Gauge g -> V_gauge g.g
        | Histogram h -> V_histogram h
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let find (t : t) (name : string) : view option =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> Some (V_counter c.c)
  | Some (Gauge g) -> Some (V_gauge g.g)
  | Some (Histogram h) -> Some (V_histogram h)
  | None -> None

(* Counter value by name, 0 if absent — the "registry read" shape used by
   report builders (e.g. [Distributed.report]'s fault stats). *)
let counter_value (t : t) (name : string) : float =
  match Hashtbl.find_opt t.tbl name with Some (Counter c) -> c.c | _ -> 0.

let pp (fmt : Format.formatter) (t : t) : unit =
  let entries = dump t in
  if entries = [] then Format.fprintf fmt "(no metrics recorded)@."
  else begin
    Format.fprintf fmt "%-44s %14s@." "metric" "value";
    List.iter
      (fun (name, v) ->
        match v with
        | V_counter c ->
            if Float.is_integer c then Format.fprintf fmt "%-44s %14.0f@." name c
            else Format.fprintf fmt "%-44s %14.4f@." name c
        | V_gauge g -> Format.fprintf fmt "%-44s %14.4g@." name g
        | V_histogram h ->
            Format.fprintf fmt
              "%-44s count %-8d mean %.3e  p50 %.3e  p90 %.3e  p99 %.3e  max %.3e@." name h.n
              (hist_mean h) (hist_quantile h 50.) (hist_quantile h 90.) (hist_quantile h 99.)
              (if h.n = 0 then 0. else h.maxv))
      entries
  end
