(** Metrics registry: named counters, gauges, and fixed-bucket histograms.

    Recording is a load and a store on a mutable cell — cheap enough to
    leave on in hot paths. The {!noop} registry hands out shared scratch
    cells, so instrumented code is branch-free either way and a disabled
    run records nothing. Metrics are find-or-create by name; dumps are
    name-sorted and therefore deterministic. *)

type t

val create : unit -> t
(** A live registry that accumulates everything recorded against it. *)

val noop : t
(** The disabled registry: hands out shared scratch cells; records
    nothing; {!dump} is always empty. *)

val enabled : t -> bool
(** [false] exactly for {!noop}. Guard expensive label construction
    (e.g. [Printf.sprintf] metric names) on this. *)

type counter
type gauge
type histogram

val counter : t -> string -> counter
(** Find or create. @raise Invalid_argument if the name is already
    registered as a different kind. *)

val gauge : t -> string -> gauge

val histogram : t -> ?buckets:int -> lo:float -> hi:float -> string -> histogram
(** Equal-width buckets over [lo, hi] following
    {!Atom_util.Stats.bucket_index} (last bucket closed at [hi]);
    out-of-range observations are tallied in separate under/overflow cells
    and still contribute to sum/count/min/max. Default 16 buckets. *)

val incr : counter -> unit
val add : counter -> float -> unit
val value : counter -> float

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float

val hist_quantile : histogram -> float -> float
(** Percentile estimate by linear interpolation inside the target bucket;
    the extreme ranks return the exact observed min/max. 0 when empty. *)

val hist_lo : histogram -> float
val hist_hi : histogram -> float

val hist_buckets : histogram -> int array
(** A copy of the per-bucket tallies (empty for the noop scratch cell). *)

val hist_min : histogram -> float
(** Exact observed minimum; 0 when empty (never an infinity — safe to
    serialize). *)

val hist_max : histogram -> float

val hist_below : histogram -> int
(** Observations under [lo] (tallied, not bucketed). *)

val hist_above : histogram -> int

type view =
  | V_counter of float
  | V_gauge of float
  | V_histogram of histogram

val dump : t -> (string * view) list
(** All metrics, sorted by name. *)

val find : t -> string -> view option

val counter_value : t -> string -> float
(** Counter value by name; 0 when absent or not a counter. The registry-
    read primitive used to assemble end-of-run reports. *)

val pp : Format.formatter -> t -> unit
(** Plain-text table of every metric (deterministic order). *)
