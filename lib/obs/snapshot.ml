(* atom-metrics/1: the machine-readable observability snapshot.

   One JSON document captures a process's whole observability surface at
   an instant: every metric in the registry (with histogram quantiles
   computed at encode time), the open-span summary (what each phase
   tracker is doing right now), and optionally the full trace buffer.
   It is what a node serves over Ctrl.Stats_request, writes periodically
   with --stats-every, and dumps at exit — one format everywhere, parsed
   back by the strict decoder below (which replaced the old text-dump
   scraping in atom_cli).

   The codec is hand-rolled (this tree carries no JSON dependency) and
   mirrors the wire layer's discipline: the decoder is total — truncated,
   malformed, type-confused, schema-mismatched or over-deep input returns
   [Error], never an exception — and strict: unknown fields in known
   objects are rejected, so drift between encoder and decoder is loud.

   Round-trip contract: [of_json (to_json s) = Ok s], bit-exact. Floats
   serialize via %.0f when integral (parses back exactly) and %.17g
   otherwise (shortest-round-trip superset); trace-arg floats always
   carry a '.' or exponent so the I/F distinction survives the trip. *)

let schema = "atom-metrics/1"

type hist = {
  h_lo : float;
  h_hi : float;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_below : int;
  h_above : int;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_buckets : int array;
}

type metric = Counter of float | Gauge of float | Histogram of hist

type open_span = { os_tid : int; os_phase : string; os_since : float }

type t = {
  node_id : int;
  now : float; (* the process clock at snapshot time (s) *)
  metrics : (string * metric) list; (* name-sorted, as Metrics.dump *)
  open_spans : open_span list;
  events : Trace.event list; (* trace buffer; [] unless requested *)
}

let of_ctx ~(node_id : int) ?now ?(include_trace = false) (ctx : Ctx.t) : t =
  let tr = Ctx.tracer ctx in
  let now =
    match now with Some n -> n | None -> if Trace.enabled tr then Trace.now tr else 0.
  in
  let metrics =
    List.map
      (fun (name, v) ->
        match v with
        | Metrics.V_counter c -> (name, Counter c)
        | Metrics.V_gauge g -> (name, Gauge g)
        | Metrics.V_histogram h ->
            ( name,
              Histogram
                {
                  h_lo = Metrics.hist_lo h;
                  h_hi = Metrics.hist_hi h;
                  h_count = Metrics.hist_count h;
                  h_sum = Metrics.hist_sum h;
                  h_min = Metrics.hist_min h;
                  h_max = Metrics.hist_max h;
                  h_below = Metrics.hist_below h;
                  h_above = Metrics.hist_above h;
                  h_p50 = Metrics.hist_quantile h 50.;
                  h_p90 = Metrics.hist_quantile h 90.;
                  h_p99 = Metrics.hist_quantile h 99.;
                  h_buckets = Metrics.hist_buckets h;
                } ))
      (Metrics.dump (Ctx.metrics ctx))
  in
  let open_spans =
    List.map
      (fun (tid, phase, since) -> { os_tid = tid; os_phase = phase; os_since = since })
      (Trace.open_phases tr)
  in
  let events = if include_trace then Trace.events tr else [] in
  { node_id; now; metrics; open_spans; events }

let counters (s : t) : (string * float) list =
  List.filter_map (function name, Counter c -> Some (name, c) | _ -> None) s.metrics

let counter_value (s : t) (name : string) : float =
  match List.assoc_opt name s.metrics with Some (Counter c) -> c | _ -> 0.

(* ---- encoder ---- *)

(* Integral floats print as plain integers (exact round-trip, compact);
   everything else as %.17g, which OCaml's float_of_string inverts
   bit-exactly. Never called on nan/inf — the registry normalizes the
   only infinity source (empty-histogram min/max) to 0. *)
let fnum (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(* Trace-arg floats must parse back as floats, not ints: force a '.' on
   integral values so the decoder can tell [F 2.] from [I 2]. *)
let fnum_arg (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let jstr (buf : Buffer.t) (s : string) : unit =
  Buffer.add_char buf '"';
  Buffer.add_string buf (Trace.json_escape s);
  Buffer.add_char buf '"'

let to_json (s : t) : string =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\"schema\":";
  jstr buf schema;
  add (Printf.sprintf ",\"node_id\":%d,\"now\":%s,\"metrics\":[" s.node_id (fnum s.now));
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char buf ',';
      add "{\"name\":";
      jstr buf name;
      (match m with
      | Counter c -> add (Printf.sprintf ",\"kind\":\"counter\",\"value\":%s" (fnum c))
      | Gauge g -> add (Printf.sprintf ",\"kind\":\"gauge\",\"value\":%s" (fnum g))
      | Histogram h ->
          add
            (Printf.sprintf
               ",\"kind\":\"histogram\",\"lo\":%s,\"hi\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"below\":%d,\"above\":%d,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":[%s]"
               (fnum h.h_lo) (fnum h.h_hi) h.h_count (fnum h.h_sum) (fnum h.h_min)
               (fnum h.h_max) h.h_below h.h_above (fnum h.h_p50) (fnum h.h_p90)
               (fnum h.h_p99)
               (String.concat "," (Array.to_list (Array.map string_of_int h.h_buckets)))));
      Buffer.add_char buf '}')
    s.metrics;
  add "],\"open_spans\":[";
  List.iteri
    (fun i os ->
      if i > 0 then Buffer.add_char buf ',';
      add (Printf.sprintf "{\"tid\":%d,\"phase\":" os.os_tid);
      jstr buf os.os_phase;
      add (Printf.sprintf ",\"since\":%s}" (fnum os.os_since)))
    s.open_spans;
  add "],\"trace\":[";
  List.iteri
    (fun i (ev : Trace.event) ->
      if i > 0 then Buffer.add_char buf ',';
      add "{\"name\":";
      jstr buf ev.Trace.name;
      add ",\"cat\":";
      jstr buf ev.Trace.cat;
      add (Printf.sprintf ",\"ph\":\"%c\",\"ts\":%s,\"dur\":%s,\"tid\":%d,\"args\":{" ev.Trace.ph
             (fnum ev.Trace.ts) (fnum ev.Trace.dur) ev.Trace.tid);
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_char buf ',';
          jstr buf k;
          Buffer.add_char buf ':';
          match v with
          | Trace.S str -> jstr buf str
          | Trace.I n -> add (string_of_int n)
          | Trace.F f -> add (fnum_arg f))
        ev.Trace.args;
      add "}}")
    s.events;
  add "]}";
  Buffer.contents buf

(* ---- strict total decoder ---- *)

type jv =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstr of string
  | Jarr of jv list
  | Jobj of (string * jv) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt
let max_depth = 32

(* Minimal recursive-descent JSON parser: full grammar (the decoder must
   be total on arbitrary bytes), bounded nesting depth, \uXXXX decoded to
   UTF-8. Numbers keep the int/float distinction of their literal so
   trace-arg types survive the round trip. *)
let parse (s : string) : jv =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then bad "unexpected end of input";
    let c = s.[!pos] in
    incr pos;
    c
  in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    let g = next () in
    if g <> c then bad "expected %C at byte %d, got %C" c (!pos - 1) g
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> bad "bad hex digit %C" c
  in
  let utf8 (buf : Buffer.t) (cp : int) =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          (match next () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let cp =
                (hex (next ()) lsl 12) lor (hex (next ()) lsl 8) lor (hex (next ()) lsl 4)
                lor hex (next ())
              in
              utf8 buf cp
          | c -> bad "bad escape \\%C" c);
          go ())
      | c when Char.code c < 0x20 -> bad "raw control byte in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then bad "bad number at byte %d" d0
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Jfloat (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Jint i
      | None -> Jfloat (float_of_string lit)
  in
  let rec value depth =
    if depth > max_depth then bad "nesting deeper than %d" max_depth;
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Jobj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match next () with
            | ',' -> members ()
            | '}' -> ()
            | c -> bad "expected ',' or '}', got %C" c
          in
          members ();
          Jobj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Jarr []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            let v = value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match next () with
            | ',' -> elems ()
            | ']' -> ()
            | c -> bad "expected ',' or ']', got %C" c
          in
          elems ();
          Jarr (List.rev !items)
        end
    | Some 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; Jbool true)
        else bad "bad literal at byte %d" !pos
    | Some 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; Jbool false)
        else bad "bad literal at byte %d" !pos
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (pos := !pos + 4; Jnull)
        else bad "bad literal at byte %d" !pos
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> bad "unexpected %C at byte %d" c !pos
  in
  let v = value 0 in
  skip_ws ();
  if !pos <> n then bad "trailing bytes after document";
  v

(* Schema destructuring: every known object is matched field-for-field —
   missing or extra keys fail, so encoder/decoder drift cannot pass
   silently. [fields] consumes an object against a spec in order-
   independent fashion. *)

let obj (where : string) = function Jobj kvs -> kvs | _ -> bad "%s: expected an object" where
let arr (where : string) = function Jarr vs -> vs | _ -> bad "%s: expected an array" where
let str (where : string) = function Jstr s -> s | _ -> bad "%s: expected a string" where
let int_ (where : string) = function Jint i -> i | _ -> bad "%s: expected an integer" where

let num (where : string) = function
  | Jint i -> float_of_int i
  | Jfloat f -> f
  | _ -> bad "%s: expected a number" where

let get (where : string) (kvs : (string * jv) list) (k : string) : jv =
  match List.assoc_opt k kvs with
  | Some v -> v
  | None -> bad "%s: missing field %S" where k

let check_keys (where : string) (kvs : (string * jv) list) (known : string list) : unit =
  List.iter
    (fun (k, _) -> if not (List.mem k known) then bad "%s: unknown field %S" where k)
    kvs

let decode_hist (where : string) (kvs : (string * jv) list) : hist =
  check_keys where kvs
    [ "name"; "kind"; "lo"; "hi"; "count"; "sum"; "min"; "max"; "below"; "above"; "p50";
      "p90"; "p99"; "buckets" ];
  {
    h_lo = num where (get where kvs "lo");
    h_hi = num where (get where kvs "hi");
    h_count = int_ where (get where kvs "count");
    h_sum = num where (get where kvs "sum");
    h_min = num where (get where kvs "min");
    h_max = num where (get where kvs "max");
    h_below = int_ where (get where kvs "below");
    h_above = int_ where (get where kvs "above");
    h_p50 = num where (get where kvs "p50");
    h_p90 = num where (get where kvs "p90");
    h_p99 = num where (get where kvs "p99");
    h_buckets =
      Array.of_list (List.map (int_ (where ^ ".buckets")) (arr where (get where kvs "buckets")));
  }

let decode_metric (i : int) (v : jv) : string * metric =
  let where = Printf.sprintf "metrics[%d]" i in
  let kvs = obj where v in
  let name = str (where ^ ".name") (get where kvs "name") in
  match str (where ^ ".kind") (get where kvs "kind") with
  | "counter" ->
      check_keys where kvs [ "name"; "kind"; "value" ];
      (name, Counter (num where (get where kvs "value")))
  | "gauge" ->
      check_keys where kvs [ "name"; "kind"; "value" ];
      (name, Gauge (num where (get where kvs "value")))
  | "histogram" -> (name, Histogram (decode_hist where kvs))
  | k -> bad "%s: unknown metric kind %S" where k

let decode_open_span (i : int) (v : jv) : open_span =
  let where = Printf.sprintf "open_spans[%d]" i in
  let kvs = obj where v in
  check_keys where kvs [ "tid"; "phase"; "since" ];
  {
    os_tid = int_ where (get where kvs "tid");
    os_phase = str where (get where kvs "phase");
    os_since = num where (get where kvs "since");
  }

let decode_event (i : int) (v : jv) : Trace.event =
  let where = Printf.sprintf "trace[%d]" i in
  let kvs = obj where v in
  check_keys where kvs [ "name"; "cat"; "ph"; "ts"; "dur"; "tid"; "args" ];
  let ph_s = str (where ^ ".ph") (get where kvs "ph") in
  if String.length ph_s <> 1 then bad "%s.ph: expected a single character" where;
  let args =
    List.map
      (fun (k, av) ->
        match av with
        | Jstr s -> (k, Trace.S s)
        | Jint n -> (k, Trace.I n)
        | Jfloat f -> (k, Trace.F f)
        | _ -> bad "%s.args.%s: expected string or number" where k)
      (obj (where ^ ".args") (get where kvs "args"))
  in
  {
    Trace.name = str where (get where kvs "name");
    cat = str where (get where kvs "cat");
    ph = ph_s.[0];
    ts = num where (get where kvs "ts");
    dur = num where (get where kvs "dur");
    tid = int_ where (get where kvs "tid");
    args;
  }

let of_json (doc : string) : (t, string) result =
  match
    let kvs = obj "snapshot" (parse doc) in
    check_keys "snapshot" kvs [ "schema"; "node_id"; "now"; "metrics"; "open_spans"; "trace" ];
    let got = str "schema" (get "snapshot" kvs "schema") in
    if got <> schema then bad "schema mismatch: expected %S, got %S" schema got;
    {
      node_id = int_ "node_id" (get "snapshot" kvs "node_id");
      now = num "now" (get "snapshot" kvs "now");
      metrics = List.mapi decode_metric (arr "metrics" (get "snapshot" kvs "metrics"));
      open_spans =
        List.mapi decode_open_span (arr "open_spans" (get "snapshot" kvs "open_spans"));
      events = List.mapi decode_event (arr "trace" (get "snapshot" kvs "trace"));
    }
  with
  | s -> Ok s
  | exception Bad m -> Error m
  | exception _ -> Error "malformed snapshot"
