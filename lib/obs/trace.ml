(* Span-based tracing against a pluggable clock.

   The clock is whatever the host binds — the discrete-event engine's
   virtual [now] for simulator and distributed runs (making traces a pure
   function of (seed, plan): two identical runs serialize byte-identically),
   or a wall clock for the crypto bench. Spans are Chrome trace_event
   "complete" events ('X': ts + dur); tracks (tid) are protocol entities —
   one per group pipeline, one per coordinator — named via metadata events
   so Perfetto renders a labelled lane per group.

   [Phase] is the accounting discipline on top: a phase tracker keeps its
   track inside exactly one leaf phase span at every instant, so the phase
   durations of a track tile its lifetime with no gaps or overlap — the
   per-phase breakdown of the round-critical track must sum to the round
   latency by construction. *)

type arg = S of string | I of int | F of float

type event = {
  name : string;
  cat : string;
  ph : char; (* 'X' complete span, 'i' instant, 'M' metadata *)
  ts : float; (* seconds on the bound clock *)
  dur : float; (* seconds; 0 unless ph = 'X' *)
  tid : int;
  args : (string * arg) list;
}

type t = {
  enabled : bool;
  mutable clock : unit -> float;
  mutable rev_events : event list;
  mutable count : int;
  (* Live phase trackers, tid -> (current phase, entered at). This is the
     "open span" surface a stats snapshot reports: closed spans are in
     [rev_events]; what the track is doing *right now* lives here. *)
  open_tbl : (int, string * float) Hashtbl.t;
}

let create () : t =
  { enabled = true; clock = (fun () -> 0.); rev_events = []; count = 0; open_tbl = Hashtbl.create 8 }

let noop : t =
  { enabled = false; clock = (fun () -> 0.); rev_events = []; count = 0; open_tbl = Hashtbl.create 1 }
let enabled (t : t) : bool = t.enabled
let set_clock (t : t) (clock : unit -> float) : unit = if t.enabled then t.clock <- clock
let now (t : t) : float = t.clock ()

let emit (t : t) (ev : event) : unit =
  t.rev_events <- ev :: t.rev_events;
  t.count <- t.count + 1

let events (t : t) : event list = List.rev t.rev_events
let event_count (t : t) : int = t.count

let clear (t : t) : unit =
  t.rev_events <- [];
  t.count <- 0

(* (tid, phase, since) for every live phase tracker, tid-sorted. *)
let open_phases (t : t) : (int * string * float) list =
  Hashtbl.fold (fun tid (name, since) acc -> (tid, name, since) :: acc) t.open_tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_start : float;
  sp_args : (string * arg) list;
  mutable sp_closed : bool;
}

let null_span = { sp_name = ""; sp_cat = ""; sp_tid = 0; sp_start = 0.; sp_args = []; sp_closed = true }

let begin_span (t : t) ?(cat = "") ?(args = []) ~(tid : int) (name : string) : span =
  if not t.enabled then null_span
  else { sp_name = name; sp_cat = cat; sp_tid = tid; sp_start = t.clock (); sp_args = args; sp_closed = false }

let end_span (t : t) (sp : span) : unit =
  if t.enabled && not sp.sp_closed then begin
    sp.sp_closed <- true;
    emit t
      {
        name = sp.sp_name;
        cat = sp.sp_cat;
        ph = 'X';
        ts = sp.sp_start;
        dur = t.clock () -. sp.sp_start;
        tid = sp.sp_tid;
        args = sp.sp_args;
      }
  end

let with_span (t : t) ?cat ?args ~(tid : int) (name : string) (f : unit -> 'a) : 'a =
  let sp = begin_span t ?cat ?args ~tid name in
  match f () with
  | v ->
      end_span t sp;
      v
  | exception e ->
      end_span t sp;
      raise e

let instant (t : t) ?(cat = "") ?(args = []) ~(tid : int) (name : string) : unit =
  if t.enabled then emit t { name; cat; ph = 'i'; ts = t.clock (); dur = 0.; tid; args }

let thread_name (t : t) ~(tid : int) (name : string) : unit =
  if t.enabled then
    emit t { name = "thread_name"; cat = ""; ph = 'M'; ts = 0.; dur = 0.; tid; args = [ ("name", S name) ] }

(* ---- Phase tracker ---- *)

module Phase = struct
  type tracker = {
    tr : t;
    tid : int;
    mutable cur : string;
    mutable since : float;
    mutable args : (string * arg) list;
    mutable stopped : bool;
  }

  let cat = "phase"

  let start (tr : t) ?(args = []) ~(tid : int) (name : string) : tracker =
    let since = if tr.enabled then tr.clock () else 0. in
    if tr.enabled then Hashtbl.replace tr.open_tbl tid (name, since);
    { tr; tid; cur = name; since; args; stopped = false }

  let current (p : tracker) : string = p.cur

  (* Close the running segment (dropping zero-length ones: a phase the
     track merely passed through adds nothing to the breakdown and would
     bloat the trace). *)
  let flush (p : tracker) (t1 : float) : unit =
    if t1 > p.since then
      emit p.tr
        { name = p.cur; cat; ph = 'X'; ts = p.since; dur = t1 -. p.since; tid = p.tid; args = p.args }

  let switch (p : tracker) ?args (name : string) : unit =
    if p.tr.enabled && not p.stopped && name <> p.cur then begin
      let t1 = p.tr.clock () in
      flush p t1;
      p.cur <- name;
      p.since <- t1;
      Hashtbl.replace p.tr.open_tbl p.tid (name, t1);
      match args with Some a -> p.args <- a | None -> ()
    end

  let stop (p : tracker) : unit =
    if p.tr.enabled && not p.stopped then begin
      p.stopped <- true;
      Hashtbl.remove p.tr.open_tbl p.tid;
      flush p (p.tr.clock ())
    end
end

(* ---- Chrome trace_event JSON ---- *)

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let arg_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%.6g" f

(* Microsecond timestamps printed with fixed sub-µs precision, so equal
   clock readings always serialize to equal bytes. *)
let us (seconds : float) : string = Printf.sprintf "%.3f" (seconds *. 1e6)

let event_json ?(pid = 1) ?(offset = 0.) (buf : Buffer.t) (ev : event) : unit =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%s"
       (json_escape ev.name)
       (json_escape (if ev.cat = "" then "atom" else ev.cat))
       ev.ph
       (us ((if ev.ph = 'M' then 0. else offset) +. ev.ts)));
  if ev.ph = 'X' then Buffer.add_string buf (Printf.sprintf ",\"dur\":%s" (us ev.dur));
  Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid ev.tid);
  if ev.args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (json_escape k) (arg_json v)))
      ev.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}'

let to_chrome_json (t : t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      event_json buf ev)
    (events t);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ---- Merged multi-process traces ----

   A cluster run yields one event buffer per node, each timestamped on
   that node's own clock (seconds since its process start). A lane gives
   the buffer a Chrome pid (its own swimlane group in Perfetto), a
   process_name metadata label, and a clock offset: the merge shifts every
   timestamp by the lane's offset so all lanes share the receiving
   coordinator's timebase. Alignment uses the coordinator's handshake
   timestamps — a node's clock starts ticking moments before its Join
   frame lands, so offset = (coordinator clock at Join) bounds the skew by
   the connection setup time, plenty for eyeballing cross-node phases. *)

type lane = {
  lane_pid : int;
  lane_name : string;
  lane_offset : float; (* added to every event timestamp (s) *)
  lane_events : event list;
}

let to_chrome_json_lanes (lanes : lane list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let put ?pid ?offset ev =
    if !first then first := false else Buffer.add_string buf ",\n";
    event_json ?pid ?offset buf ev
  in
  List.iter
    (fun l ->
      put ~pid:l.lane_pid
        {
          name = "process_name";
          cat = "";
          ph = 'M';
          ts = 0.;
          dur = 0.;
          tid = 0;
          args = [ ("name", S l.lane_name) ];
        };
      List.iter (fun ev -> put ~pid:l.lane_pid ~offset:l.lane_offset ev) l.lane_events)
    lanes;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ---- Per-phase breakdown ---- *)

module Breakdown = struct
  type track = {
    tid : int;
    phases : (string * float) list; (* phase -> total seconds, canonical order *)
    total : float; (* sum of the phase durations *)
    t_end : float; (* when the track's last phase segment closed *)
  }

  (* Fixed presentation order for the protocol phases; anything else
     follows alphabetically. The simulator uses the virtual-time subset
     (verify/shuffle/decrypt/network/...); the wall-clock node runtime adds
     reenc/send/recv-wait. Relative order of the original names is
     unchanged, so pre-existing breakdowns render identically. *)
  let canonical =
    [ "verify"; "shuffle"; "reenc"; "decrypt"; "network"; "send"; "recv-wait"; "recovery";
      "barrier"; "exit" ]

  let phase_rank name =
    let rec idx i = function
      | [] -> None
      | x :: _ when x = name -> Some i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 canonical

  let order_phases (ps : (string * float) list) : (string * float) list =
    List.sort
      (fun (a, _) (b, _) ->
        match (phase_rank a, phase_rank b) with
        | Some i, Some j -> compare i j
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> compare a b)
      ps

  let tracks (evs : event list) : track list =
    let tbl : (int, (string, float) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
    let ends : (int, float) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        if ev.ph = 'X' && ev.cat = Phase.cat then begin
          let per =
            match Hashtbl.find_opt tbl ev.tid with
            | Some h -> h
            | None ->
                let h = Hashtbl.create 8 in
                Hashtbl.add tbl ev.tid h;
                h
          in
          Hashtbl.replace per ev.name
            ((match Hashtbl.find_opt per ev.name with Some v -> v | None -> 0.) +. ev.dur);
          let fin = ev.ts +. ev.dur in
          match Hashtbl.find_opt ends ev.tid with
          | Some e when e >= fin -> ()
          | _ -> Hashtbl.replace ends ev.tid fin
        end)
      evs;
    Hashtbl.fold
      (fun tid per acc ->
        let phases = order_phases (Hashtbl.fold (fun k v l -> (k, v) :: l) per []) in
        {
          tid;
          phases;
          total = List.fold_left (fun a (_, v) -> a +. v) 0. phases;
          t_end = (match Hashtbl.find_opt ends tid with Some e -> e | None -> 0.);
        }
        :: acc)
      tbl []
    |> List.sort (fun a b -> compare a.tid b.tid)

  (* The critical track: the one whose final phase segment closes last —
     the chain that determined the round's end. Ties break toward the
     lowest tid, deterministically. *)
  let critical (evs : event list) : track option =
    List.fold_left
      (fun best t ->
        match best with
        | Some b when b.t_end >= t.t_end -> best
        | _ -> Some t)
      None (tracks evs)

  (* Aggregate phase totals across every track (core-seconds view). *)
  let totals (evs : event list) : (string * float) list =
    let acc : (string, float) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun tr ->
        List.iter
          (fun (name, v) ->
            Hashtbl.replace acc name
              ((match Hashtbl.find_opt acc name with Some x -> x | None -> 0.) +. v))
          tr.phases)
      (tracks evs);
    order_phases (Hashtbl.fold (fun k v l -> (k, v) :: l) acc [])

  (* Render the per-phase table for the critical track next to the
     all-track totals. [latency] is the reported round latency; the
     critical track's phases tile its lifetime, so their sum matches it
     (the coverage line makes the invariant visible). *)
  let render ?(label = "track") ~(latency : float) (evs : event list) : string =
    let buf = Buffer.create 512 in
    (match critical evs with
    | None -> Buffer.add_string buf "(no phase spans recorded)\n"
    | Some crit ->
        let tot = totals evs in
        Buffer.add_string buf
          (Printf.sprintf "per-phase round breakdown (critical %s %d):\n" label crit.tid);
        Buffer.add_string buf
          (Printf.sprintf "  %-10s %14s %7s %18s\n" "phase" "critical (s)" "share" "all tracks (s)");
        List.iter
          (fun (name, total_all) ->
            let v = match List.assoc_opt name crit.phases with Some v -> v | None -> 0. in
            let share = if latency > 0. then 100. *. v /. latency else 0. in
            Buffer.add_string buf
              (Printf.sprintf "  %-10s %14.6f %6.1f%% %18.6f\n" name v share total_all))
          tot;
        let share = if latency > 0. then 100. *. crit.total /. latency else 0. in
        Buffer.add_string buf (Printf.sprintf "  %-10s %14.6f %6.1f%%\n" "total" crit.total share);
        Buffer.add_string buf
          (Printf.sprintf "  round latency %.6f s  (critical-path coverage %.2f%%)\n" latency share));
    Buffer.contents buf
end
