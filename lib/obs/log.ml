(* Leveled library logging, off by default.

   Library code must never write to stdout unannounced: anything the Atom
   libraries want to say goes through here, is disabled unless a host
   explicitly raises the level, and lands on stderr (or a caller-supplied
   sink) — never stdout, which belongs to the CLI's structured output.
   Disabled log statements cost one branch and allocate nothing. *)

type level = Debug | Info | Warn | Error

let level_value = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

(* [None] = logging off entirely (the default). *)
let current : level option ref = ref None

let default_sink (lvl : level) (msg : string) : unit =
  Printf.eprintf "[atom:%s] %s\n%!" (level_name lvl) msg

let sink : (level -> string -> unit) ref = ref default_sink

let set_level (l : level option) : unit = current := l
let get_level () : level option = !current
let set_sink (f : level -> string -> unit) : unit = sink := f
let reset_sink () : unit = sink := default_sink

let enabled_at (lvl : level) : bool =
  match !current with None -> false | Some min -> level_value lvl >= level_value min

let logf (lvl : level) fmt =
  if enabled_at lvl then Printf.ksprintf (fun s -> !sink lvl s) fmt
  else Printf.ifprintf () fmt

let debug fmt = logf Debug fmt
let info fmt = logf Info fmt
let warn fmt = logf Warn fmt
let error fmt = logf Error fmt
