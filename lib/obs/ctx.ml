(* The observability context threaded through the runtime: one metrics
   registry plus one tracer, created together and passed to
   [Engine.create], which binds its virtual clock into the tracer. A
   context is cheap and per-run; [noop] disables everything at once. *)

type t = { metrics : Metrics.t; trace : Trace.t }

let noop : t = { metrics = Metrics.noop; trace = Trace.noop }

let create ?(tracing = false) () : t =
  { metrics = Metrics.create (); trace = (if tracing then Trace.create () else Trace.noop) }

let metrics (t : t) : Metrics.t = t.metrics
let tracer (t : t) : Trace.t = t.trace
let enabled (t : t) : bool = Metrics.enabled t.metrics
let tracing (t : t) : bool = Trace.enabled t.trace

let bind_clock (t : t) (clock : unit -> float) : unit = Trace.set_clock t.trace clock
