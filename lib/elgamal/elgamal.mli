(** Atom's rerandomizable, out-of-order re-encryptable ElGamal (paper
    Appendix A).

    A ciphertext is a triple (R, c, Y). With Y = ⊥ it is a plain ElGamal
    ciphertext under the current group key; once a group starts
    re-encrypting, Y holds the randomness binding the ciphertext to the
    *current* group while R accumulates randomness toward the *next* group,
    which is what lets each group member strip its own key share out of
    order. Operations that NIZKs later attest to also return their secret
    witnesses. *)

module Make (G : Atom_group.Group_intf.GROUP) : sig
  type keypair = { sk : G.Scalar.t; pk : G.t }

  val keygen : Atom_util.Rng.t -> keypair

  val combine_pks : G.t list -> G.t
  (** Anytrust group key: the product of member keys (secret = sum of
      shares, never materialized). *)

  type cipher = { r : G.t; c : G.t; y : G.t option }

  val cipher_equal : cipher -> cipher -> bool
  val cipher_to_bytes : cipher -> string
  val cipher_of_bytes : string -> cipher option

  val enc : Atom_util.Rng.t -> G.t -> G.t -> cipher * G.Scalar.t
  (** [enc rng pk m] encrypts a group element, returning the randomness
      (the EncProof witness). *)

  val dec : G.Scalar.t -> cipher -> G.t option
  (** Full-key decryption; [None] on mid-reencryption (Y ≠ ⊥) ciphertexts. *)

  val rerandomize : Atom_util.Rng.t -> G.t -> cipher -> (cipher * G.Scalar.t) option
  (** Fresh randomness under the same key; [None] when Y ≠ ⊥. *)

  type shuffle_witness = { permutation : int array; rerands : G.Scalar.t array }

  val shuffle :
    ?pool:Atom_exec.Pool.t ->
    Atom_util.Rng.t ->
    G.t ->
    cipher array ->
    (cipher array * shuffle_witness) option
  (** Rerandomize-and-permute (the per-server piece of Algorithm 1 step 1);
      output.(i) = rerandomize(input.(permutation.(i))). Like every batch
      entry point below, takes an optional execution pool; randomness is
      always drawn sequentially on the caller, so results are identical
      for every pool size. *)

  type reenc_witness = { stripped : G.t; fresh : G.Scalar.t }

  val reenc :
    Atom_util.Rng.t ->
    share:G.Scalar.t ->
    ?coeff:G.Scalar.t ->
    next_pk:G.t option ->
    cipher ->
    cipher * reenc_witness
  (** One server's decrypt-and-reencrypt step. [coeff] is the Lagrange
      coefficient for threshold (many-trust) quorums; [next_pk = None] is
      the exit layer's X' = ⊥. *)

  val clear_y : cipher -> cipher
  (** Last server of a group: drop Y before forwarding (all of this group's
      layers are peeled). *)

  val plaintext_of_exit : cipher -> G.t
  (** After the exit layer finished stripping, the plaintext sits in [c]. *)

  (* Vector ciphertexts: one component per embedded group element. *)
  type vec = cipher array

  val enc_vec :
    ?pool:Atom_exec.Pool.t -> Atom_util.Rng.t -> G.t -> G.t array -> vec * G.Scalar.t array

  val dec_vec : ?pool:Atom_exec.Pool.t -> G.Scalar.t -> vec -> G.t array option

  val reenc_vec :
    ?pool:Atom_exec.Pool.t ->
    Atom_util.Rng.t ->
    share:G.Scalar.t ->
    ?coeff:G.Scalar.t ->
    next_pk:G.t option ->
    vec ->
    vec * reenc_witness array

  val clear_y_vec : vec -> vec

  type vec_shuffle_witness = { vperm : int array; vrerands : G.Scalar.t array array }

  val shuffle_vec :
    ?pool:Atom_exec.Pool.t ->
    Atom_util.Rng.t ->
    G.t ->
    vec array ->
    (vec array * vec_shuffle_witness) option
  (** One shared permutation across messages, independent rerandomization
      per component. *)

  val vec_to_bytes : vec -> string

  (** Hybrid IND-CCA2 encryption (ElGamal KEM + AEAD, Appendix A): the
      non-malleable inner envelope of the trap variant. *)
  module Kem : sig
    type sealed = { share : G.t; box : string }

    val derive_key : G.t -> string
    val nonce : string
    val enc : Atom_util.Rng.t -> G.t -> string -> sealed
    val dec : G.Scalar.t -> sealed -> string option

    val partial : G.Scalar.t -> sealed -> G.t
    (** One trustee's decryption share R^{x_i}. *)

    val dec_with_partials : G.t list -> sealed -> string option
    (** Open with every trustee's share — the all-or-nothing release of
        §4.4. *)

    val to_bytes : sealed -> string
    val of_bytes : string -> sealed option
  end
end
