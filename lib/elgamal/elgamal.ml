(* Atom's rerandomizable ElGamal variant (paper Appendix A).

   A ciphertext is a triple (R, c, Y):
   - Y = ⊥ : a plain ElGamal ciphertext (R, c) = (g^r, m·X^r) under the
     current group key X.
   - Y ≠ ⊥ : mid-reencryption state. Y holds the randomness used to encrypt
     for the *current* group while R accumulates the randomness toward the
     *next* group, which is what lets servers decrypt "out of order": each
     group member strips its own share x_s via c ← c / Y^{x_s} while adding
     fresh randomness toward the next group's key.

   Every operation that a NIZK must later attest to also returns its secret
   witness (encryption randomness, permutation, rerandomization exponents);
   callers that do not need the witness simply drop it. *)

module Make (G : Atom_group.Group_intf.GROUP) = struct
  type keypair = { sk : G.Scalar.t; pk : G.t }

  let keygen (rng : Atom_util.Rng.t) : keypair =
    let sk = G.Scalar.random rng in
    { sk; pk = G.pow_gen sk }

  (* The public key of an anytrust group is the product of the members'
     public keys, so that the matching secret key is the (never materialized)
     sum of the members' secrets. Computed as a unit-scalar MSM so curve
     backends pay one affine normalization for the whole product instead of
     one per fold step. *)
  let combine_pks (pks : G.t list) : G.t =
    G.msm (Array.of_list (List.map (fun pk -> (pk, G.Scalar.one)) pks))

  type cipher = { r : G.t; c : G.t; y : G.t option }

  let cipher_equal a b =
    G.equal a.r b.r && G.equal a.c b.c
    &&
    match (a.y, b.y) with
    | None, None -> true
    | Some ya, Some yb -> G.equal ya yb
    | _ -> false

  let cipher_to_bytes (ct : cipher) : string =
    let y_part = match ct.y with None -> "\000" | Some y -> "\001" ^ G.to_bytes y in
    G.to_bytes ct.r ^ G.to_bytes ct.c ^ y_part

  let cipher_of_bytes (s : string) : cipher option =
    let eb = G.element_bytes in
    if String.length s < (2 * eb) + 1 then None
    else begin
      match (G.of_bytes (String.sub s 0 eb), G.of_bytes (String.sub s eb eb)) with
      | Some r, Some c -> begin
          match s.[2 * eb] with
          | '\000' when String.length s = (2 * eb) + 1 -> Some { r; c; y = None }
          | '\001' when String.length s = (3 * eb) + 1 -> begin
              match G.of_bytes (String.sub s ((2 * eb) + 1) eb) with
              | Some y -> Some { r; c; y = Some y }
              | None -> None
            end
          | _ -> None
        end
      | _ -> None
    end

  (* c ← Enc(X, m): fresh ElGamal encryption; also returns the randomness
     (the witness for EncProof). *)
  let enc (rng : Atom_util.Rng.t) (pk : G.t) (m : G.t) : cipher * G.Scalar.t =
    let r = G.Scalar.random rng in
    ({ r = G.pow_gen r; c = G.mul m (G.pow pk r); y = None }, r)

  (* Plain decryption with a full secret key; fails on mid-reencryption
     ciphertexts, as in the paper ("if Y ≠ ⊥ the algorithm fails"). *)
  let dec (sk : G.Scalar.t) (ct : cipher) : G.t option =
    match ct.y with Some _ -> None | None -> Some (G.div ct.c (G.pow ct.r sk))

  (* Rerandomize under the same key (the per-ciphertext piece of Shuffle).
     Only valid when Y = ⊥. *)
  let rerandomize (rng : Atom_util.Rng.t) (pk : G.t) (ct : cipher) : (cipher * G.Scalar.t) option =
    match ct.y with
    | Some _ -> None
    | None ->
        let r' = G.Scalar.random rng in
        Some
          ( { r = G.mul ct.r (G.pow_gen r'); c = G.mul ct.c (G.pow pk r'); y = None },
            r' )

  type shuffle_witness = { permutation : int array; rerands : G.Scalar.t array }

  (* C' ← Shuffle(X, C): rerandomize all ciphertexts then permute, returning
     the witness needed for a proof of shuffle. The convention is
     output.(i) = rerandomize(input.(permutation.(i)), rerands.(i)). *)
  let shuffle ?pool (rng : Atom_util.Rng.t) (pk : G.t) (cts : cipher array) :
      (cipher array * shuffle_witness) option =
    if Array.exists (fun ct -> ct.y <> None) cts then None
    else begin
      let n = Array.length cts in
      let permutation = Atom_util.Rng.permutation rng n in
      let rerands = Array.init n (fun _ -> G.Scalar.random rng) in
      let gr = G.pow_gen_batch ?pool rerands in
      let pkr = G.pow_batch ?pool pk rerands in
      let out =
        Atom_exec.Pool.tabulate ?pool n (fun i ->
            let src = cts.(permutation.(i)) in
            { r = G.mul src.r gr.(i); c = G.mul src.c pkr.(i); y = None })
      in
      Some (out, { permutation; rerands })
    end

  type reenc_witness = { stripped : G.t; (* D = Y^(coeff·share) *) fresh : G.Scalar.t (* r' *) }

  (* ReEnc(x_s, X', (R, c, Y)) — one server's decrypt-and-reencrypt step.

     [coeff] is the Lagrange coefficient for threshold (many-trust) groups;
     [Scalar.one] for plain anytrust groups where shares are additive.
     [next_pk = None] encodes X' = ⊥ (the exit layer: strip only). *)
  let reenc (rng : Atom_util.Rng.t) ~(share : G.Scalar.t) ?(coeff = G.Scalar.one)
      ~(next_pk : G.t option) (ct : cipher) : cipher * reenc_witness =
    let y, r = match ct.y with None -> (ct.r, G.one) | Some y -> (y, ct.r) in
    let d = G.pow y (G.Scalar.mul coeff share) in
    let ctmp = G.div ct.c d in
    match next_pk with
    | None -> ({ r; c = ctmp; y = Some y }, { stripped = d; fresh = G.Scalar.zero })
    | Some pk' ->
        let r' = G.Scalar.random rng in
        ( { r = G.mul r (G.pow_gen r'); c = G.mul ctmp (G.pow pk' r'); y = Some y },
          { stripped = d; fresh = r' } )

  (* The last server of a group clears Y before forwarding: all of this
     group's layers have been peeled and the ciphertext is now a plain
     encryption under the next group's key. *)
  let clear_y (ct : cipher) : cipher = { ct with y = None }

  (* After the exit layer finished stripping, the plaintext sits in [c]. *)
  let plaintext_of_exit (ct : cipher) : G.t = ct.c

  (* ---- Vector ciphertexts: one component per embedded group element. ---- *)

  type vec = cipher array

  (* Batch encryption: all the fixed-base work (g^{r_i} from the comb
     table, pk^{r_i} from one window table) is normalized with a single
     inversion per batch instead of one per exponentiation. Randomness is
     drawn in the same order as the elementwise path — and always on the
     caller, before any parallel region. *)
  let enc_vec ?pool rng pk (ms : G.t array) : vec * G.Scalar.t array =
    let rs = Array.init (Array.length ms) (fun _ -> G.Scalar.random rng) in
    let gr = G.pow_gen_batch ?pool rs in
    let pkr = G.pow_batch ?pool pk rs in
    let cts =
      Atom_exec.Pool.tabulate ?pool (Array.length ms) (fun i ->
          { r = gr.(i); c = G.mul ms.(i) pkr.(i); y = None })
    in
    (cts, rs)

  let dec_vec ?pool sk (v : vec) : G.t array option =
    let out = Atom_exec.Pool.map ?pool (dec sk) v in
    if Array.exists Option.is_none out then None else Some (Array.map Option.get out)

  (* Batch re-encryption. The strip factors D_i = Y_i^{x_eff} have distinct
     bases and cannot share tables, but they are mutually independent and
     go to the pool one exponentiation per index; the fresh-randomness half
     (g^{r'_i} and X'^{r'_i}) is pure fixed-base work and batches.
     Randomness is drawn in the same order as the elementwise path, on the
     caller, before any parallel region. *)
  let reenc_vec ?pool rng ~share ?(coeff = G.Scalar.one) ~next_pk (v : vec) :
      vec * reenc_witness array =
    let n = Array.length v in
    let x_eff = G.Scalar.mul coeff share in
    let ys = Array.map (fun ct -> match ct.y with None -> ct.r | Some y -> y) v in
    let rs = Array.map (fun ct -> match ct.y with None -> G.one | Some _ -> ct.r) v in
    match next_pk with
    | None ->
        let ds = Atom_exec.Pool.map ?pool (fun y -> G.pow y x_eff) ys in
        let wits = Array.init n (fun i -> { stripped = ds.(i); fresh = G.Scalar.zero }) in
        let out =
          Atom_exec.Pool.tabulate ?pool n (fun i ->
              { r = rs.(i); c = G.div v.(i).c ds.(i); y = Some ys.(i) })
        in
        (out, wits)
    | Some pk' ->
        let fresh = Array.init n (fun _ -> G.Scalar.random rng) in
        let ds = Atom_exec.Pool.map ?pool (fun y -> G.pow y x_eff) ys in
        let gr = G.pow_gen_batch ?pool fresh in
        let pkr = G.pow_batch ?pool pk' fresh in
        let wits = Array.init n (fun i -> { stripped = ds.(i); fresh = fresh.(i) }) in
        let out =
          Atom_exec.Pool.tabulate ?pool n (fun i ->
              { r = G.mul rs.(i) gr.(i); c = G.mul (G.div v.(i).c ds.(i)) pkr.(i); y = Some ys.(i) })
        in
        (out, wits)

  let clear_y_vec (v : vec) : vec = Array.map clear_y v

  type vec_shuffle_witness = { vperm : int array; vrerands : G.Scalar.t array array (* n × width *) }

  (* Shuffle a batch of vector ciphertexts: one shared permutation across
     messages, independent rerandomization per component. Convention:
     output.(j) = rerandomize(input.(vperm.(j))) with exponents vrerands.(j). *)
  let shuffle_vec ?pool (rng : Atom_util.Rng.t) (pk : G.t) (vs : vec array) :
      (vec array * vec_shuffle_witness) option =
    if Array.exists (fun v -> Array.exists (fun ct -> Option.is_some ct.y) v) vs then None
    else begin
      let n = Array.length vs in
      let vperm = Atom_util.Rng.permutation rng n in
      (* Draw all rerandomization exponents in the elementwise order, then
         batch the fixed-base work across the whole n × width matrix. *)
      let vrerands =
        Array.init n (fun j ->
            Array.init (Array.length vs.(vperm.(j))) (fun _ -> G.Scalar.random rng))
      in
      let flat = Array.concat (Array.to_list vrerands) in
      let gr = G.pow_gen_batch ?pool flat in
      let pkr = G.pow_batch ?pool pk flat in
      let offsets = Array.make n 0 in
      let off = ref 0 in
      for j = 0 to n - 1 do
        offsets.(j) <- !off;
        off := !off + Array.length vs.(vperm.(j))
      done;
      let out =
        Atom_exec.Pool.tabulate ?pool n (fun j ->
            let src = vs.(vperm.(j)) in
            let base = offsets.(j) in
            Array.mapi
              (fun w ct ->
                { r = G.mul ct.r gr.(base + w); c = G.mul ct.c pkr.(base + w); y = None })
              src)
      in
      Some (out, { vperm; vrerands })
    end

  let vec_to_bytes (v : vec) : string =
    String.concat "" (Array.to_list (Array.map cipher_to_bytes v))

  (* ---- Hybrid IND-CCA2 encryption (KEM + AEAD), Appendix A. ----

     Used for the *inner* ciphertexts of the trap variant: non-malleability
     prevents a malicious server from producing a related ciphertext. The
     KEM share R is bound into the AEAD as associated data. *)
  module Kem = struct
    type sealed = { share : G.t; (* R = g^r *) box : string (* AEAD(k, m) *) }

    let derive_key (k : G.t) : string = Atom_hash.Sha256.digest_list [ "atom-kem-v1"; G.to_bytes k ]
    let nonce = String.make Atom_cipher.Aead.nonce_len '\000' (* fresh key per message *)

    let enc (rng : Atom_util.Rng.t) (pk : G.t) (m : string) : sealed =
      let r = G.Scalar.random rng in
      let share = G.pow_gen r in
      let key = derive_key (G.pow pk r) in
      { share; box = Atom_cipher.Aead.encrypt ~key ~nonce ~aad:(G.to_bytes share) m }

    let dec (sk : G.Scalar.t) (s : sealed) : string option =
      let key = derive_key (G.pow s.share sk) in
      Atom_cipher.Aead.decrypt ~key ~nonce ~aad:(G.to_bytes s.share) s.box

    (* Threshold opening: each trustee i (with additive share x_i) publishes
       D_i = R^{x_i}; the KEM secret is Π D_i. All trustees are needed —
       exactly the all-or-nothing release of §4.4. *)
    let partial (sk_share : G.Scalar.t) (s : sealed) : G.t = G.pow s.share sk_share

    let dec_with_partials (partials : G.t list) (s : sealed) : string option =
      let key = derive_key (List.fold_left G.mul G.one partials) in
      Atom_cipher.Aead.decrypt ~key ~nonce ~aad:(G.to_bytes s.share) s.box

    let to_bytes (s : sealed) : string =
      let len = String.length s.box in
      G.to_bytes s.share
      ^ String.init 4 (fun i -> Char.chr ((len lsr (8 * (3 - i))) land 0xff))
      ^ s.box

    let of_bytes (b : string) : sealed option =
      let eb = G.element_bytes in
      if String.length b < eb + 4 then None
      else begin
        match G.of_bytes (String.sub b 0 eb) with
        | None -> None
        | Some share ->
            let len =
              (Char.code b.[eb] lsl 24)
              lor (Char.code b.[eb + 1] lsl 16)
              lor (Char.code b.[eb + 2] lsl 8)
              lor Char.code b.[eb + 3]
            in
            if String.length b <> eb + 4 + len then None
            else Some { share; box = String.sub b (eb + 4) len }
      end
  end
end
