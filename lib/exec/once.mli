(** Domain-safe lazy initialization: a thunk run at most once, its value
    published through an [Atomic] so later reads are a single atomic load.
    Replaces ['a lazy_t] where multiple domains may race to force (OCaml 5
    raises [Lazy.Undefined] on a concurrent force). *)

type 'a t

val make : (unit -> 'a) -> 'a t

val get : 'a t -> 'a
(** Runs the thunk on first call (builders from other domains block until
    it finishes); afterwards returns the cached value. If the thunk
    raises, the exception propagates and the cell stays empty, so a later
    [get] retries. *)
