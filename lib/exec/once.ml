(* Domain-safe lazy initialization.

   [Lazy.force] is not safe under concurrent forcing in OCaml 5 (a second
   forcer raises [Lazy.Undefined]); this cell is. The value is published
   through an [Atomic], so the fast path after initialization is a single
   atomic load; the slow path serializes builders behind a mutex and
   re-checks, so the thunk runs exactly once even when several domains
   race to the first [get]. *)

type 'a t = { mu : Mutex.t; cell : 'a option Atomic.t; f : unit -> 'a }

let make f = { mu = Mutex.create (); cell = Atomic.make None; f }

let get t =
  match Atomic.get t.cell with
  | Some v -> v
  | None ->
      Mutex.lock t.mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.mu)
        (fun () ->
          match Atomic.get t.cell with
          | Some v -> v
          | None ->
              let v = t.f () in
              Atomic.set t.cell (Some v);
              v)
