(** A deterministic work-sharing domain pool for the crypto hot paths.

    [run pool ~n f] executes [f i] for every [i] in [0, n), spread over a
    fixed set of worker domains plus the calling thread, and returns when
    all of them have run. Chunks of the index range are claimed from a
    shared atomic cursor, so load balances dynamically — but because each
    index writes only its own result slot and the pool never combines
    values, the output is bit-identical for every pool size (including
    the sequential fallback). Callers that fold chunk partials themselves
    must fold in index order with an exact associative operation (modular
    arithmetic qualifies; floats do not).

    A pool drives one job at a time. A nested [run] from inside a job
    body — e.g. a batched verifier calling a batched exponentiation — or
    a concurrent [run] from another systhread silently degrades to
    sequential execution on the calling thread, so one process-wide pool
    can be shared without deadlock. The callback must therefore be safe
    to run on worker domains: draw randomness and mutate shared state
    {e before} entering the parallel region.

    The {e default pool} is created lazily from the [ATOM_DOMAINS]
    environment variable (unset, invalid, or [1] means "no pool":
    everything runs sequentially) and is what [?pool]-taking APIs fall
    back to when no explicit pool is passed. *)

type t

val create : ?obs:Atom_obs.Ctx.t -> domains:int -> unit -> t
(** A pool that runs jobs on [domains] domains total: [domains - 1]
    spawned workers plus the caller. [domains = 1] is a valid pool that
    always runs sequentially. When [obs] is given (default
    {!Atom_obs.Ctx.noop}), the pool records [exec.pool.jobs] and
    [exec.pool.chunks] counters, an [exec.pool.queue_depth] gauge
    (pending chunks of the job in flight), an
    [exec.pool.worker_busy_seconds] histogram (per-participant busy time
    for each job), [exec.pool.minor_words] / [exec.pool.promoted_words]
    counters (GC words allocated/promoted inside jobs, summed over the
    participating domains — OCaml 5 GC counters are per-domain, so the
    deltas attribute allocation to the job precisely), and — when tracing
    is on — a [pool.run] span per job.
    @raise Invalid_argument unless [1 <= domains <= 64]. *)

val size : t -> int
(** Total domains, caller included. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Must not be called while a job is
    in flight; idempotent afterwards. *)

val run : ?pool:t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [run ?pool ~n f] runs [f 0 .. f (n-1)], each exactly once. Without
    [?pool] the {!default} pool (if any) is used. Small ranges, 1-domain
    pools, and nested/concurrent entries run sequentially on the caller.
    [chunk] overrides the scheduling granularity (indices claimed per
    cursor fetch; default [n / (domains * 4)], at least 1) — results are
    identical for every chunk size, only load balance changes. If any
    [f i] raises, one such exception is re-raised after every index has
    been attempted or the cursor exhausted. *)

val tabulate : ?pool:t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [tabulate ?pool n f] is [[| f 0; ...; f (n-1) |]] with the work
    spread over the pool. [f] must be pure (deterministic per index) —
    [f 0] runs first on the caller to seed the result array, the rest in
    pool order. *)

val map : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?pool f a] is [Array.map f a] with the work spread over the
    pool; same purity requirement as {!tabulate}. *)

val default : unit -> t option
(** The process-wide pool, created on first use from [ATOM_DOMAINS].
    [None] when parallelism is off. *)

val set_default : t option -> unit
(** Override the default pool (tests; [atom_node --domains]). Does not
    shut the previous pool down — callers own that. *)

val resolve : t option -> t option
(** [resolve pool] is the pool a [?pool] argument denotes: itself when
    explicit, otherwise {!default}. *)

val auto_domains : unit -> int
(** The pool size a node should use when neither [--domains] nor
    [ATOM_DOMAINS] says otherwise: [Domain.recommended_domain_count ()],
    capped by the [recommended_domains] a `bench parallel` run measured —
    read from [BENCH_parallel.json] in [$ATOM_BENCH_DIR] or the working
    directory. The cap only applies when that file's [host_cores] matches
    this host's core count: a recommendation measured on different
    hardware (say a 1-core CI runner) says nothing about this machine.
    Always in [1, 64]. *)
