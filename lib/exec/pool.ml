(* A deterministic work-sharing domain pool.

   One job at a time: [run] publishes a chunked index range [0, n), the
   caller and the worker domains claim chunks from a shared atomic cursor,
   and the caller blocks until every chunk has been executed. Scheduling
   is dynamic (whichever domain is free takes the next chunk) but the
   *results* are bit-identical for any pool size because each index is
   computed independently and written to its own slot — the pool never
   combines values itself, so there is no floating-point or ordering
   sensitivity to hide. Callers that do combine (an MSM folding chunk
   partials) must combine in index order with an associative operation;
   see the determinism note in the interface.

   Reentrancy and thread safety: a pool runs one job at a time. A nested
   [run] from inside a job body, or a concurrent [run] from another
   systhread, simply executes sequentially on the calling thread (the
   [in_flight] test-and-set fails), so sharing one pool process-wide is
   safe and deadlock-free. *)

type job = {
  body : int -> unit;
  jn : int;
  chunk : int;
  next : int Atomic.t;
  mutable failed : exn option; (* first exception, under the pool mutex *)
}

type t = {
  domains : int;
  mu : Mutex.t;
  work_cv : Condition.t; (* workers: a new job (or stop) was published *)
  done_cv : Condition.t; (* caller: the last active worker left the job *)
  mutable job : job option;
  mutable gen : int; (* bumped per job so workers never re-run one *)
  mutable active : int; (* workers currently inside the job *)
  mutable stop : bool;
  in_flight : bool Atomic.t; (* claims the pool for a single caller *)
  mutable workers : unit Domain.t list;
  busy : float array; (* per-slot busy seconds for the current job *)
  minor : float array; (* per-slot minor words allocated during the job *)
  promoted : float array; (* per-slot words promoted during the job *)
  timed : bool;
  tracer : Atom_obs.Trace.t;
  m_jobs : Atom_obs.Metrics.counter;
  m_chunks : Atom_obs.Metrics.counter;
  m_queue : Atom_obs.Metrics.gauge;
  m_busy : Atom_obs.Metrics.histogram;
  m_minor : Atom_obs.Metrics.counter;
  m_promoted : Atom_obs.Metrics.counter;
}

let size t = t.domains

(* Claim and execute chunks until the cursor passes the end. Exceptions
   are captured into the job (first one wins) so the protocol always
   reaches "all chunks claimed" and the caller can re-raise after the
   join — a worker must never die with the pool still running. *)
let promoted_words () =
  let _, promoted, _ = Gc.counters () in
  promoted

let run_chunks t slot (j : job) =
  let t0 = if t.timed then Unix.gettimeofday () else 0.0 in
  (* GC counters are per-domain in OCaml 5, so a slot's delta really is
     the allocation its share of the job caused. *)
  let minor0 = if t.timed then Gc.minor_words () else 0.0 in
  let promoted0 = if t.timed then promoted_words () else 0.0 in
  let worked = ref false in
  (try
     let continue = ref true in
     while !continue do
       let lo = Atomic.fetch_and_add j.next j.chunk in
       if lo >= j.jn then continue := false
       else begin
         worked := true;
         Atom_obs.Metrics.incr t.m_chunks;
         let hi = min j.jn (lo + j.chunk) in
         for i = lo to hi - 1 do
           j.body i
         done
       end
     done
   with e ->
     Mutex.lock t.mu;
     if j.failed = None then j.failed <- Some e;
     Mutex.unlock t.mu);
  if t.timed && !worked then begin
    t.busy.(slot) <- t.busy.(slot) +. (Unix.gettimeofday () -. t0);
    t.minor.(slot) <- t.minor.(slot) +. (Gc.minor_words () -. minor0);
    t.promoted.(slot) <- t.promoted.(slot) +. (promoted_words () -. promoted0)
  end

let worker_main t slot =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mu;
    while (not t.stop) && (t.gen = !seen || t.job = None) do
      Condition.wait t.work_cv t.mu
    done;
    if t.stop then begin
      Mutex.unlock t.mu;
      running := false
    end
    else begin
      let j = match t.job with Some j -> j | None -> assert false in
      seen := t.gen;
      t.active <- t.active + 1;
      Mutex.unlock t.mu;
      run_chunks t slot j;
      Mutex.lock t.mu;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.done_cv;
      Mutex.unlock t.mu
    end
  done

let create ?(obs = Atom_obs.Ctx.noop) ~domains () =
  if domains < 1 || domains > 64 then
    invalid_arg "Atom_exec.Pool.create: domains must be in [1, 64]";
  let reg = Atom_obs.Ctx.metrics obs in
  let t =
    {
      domains;
      mu = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      job = None;
      gen = 0;
      active = 0;
      stop = false;
      in_flight = Atomic.make false;
      workers = [];
      busy = Array.make domains 0.0;
      minor = Array.make domains 0.0;
      promoted = Array.make domains 0.0;
      timed = Atom_obs.Metrics.enabled reg;
      tracer = Atom_obs.Ctx.tracer obs;
      m_jobs = Atom_obs.Metrics.counter reg "exec.pool.jobs";
      m_chunks = Atom_obs.Metrics.counter reg "exec.pool.chunks";
      m_queue = Atom_obs.Metrics.gauge reg "exec.pool.queue_depth";
      m_busy =
        Atom_obs.Metrics.histogram reg ~lo:0.0 ~hi:1.0 "exec.pool.worker_busy_seconds";
      m_minor = Atom_obs.Metrics.counter reg "exec.pool.minor_words";
      m_promoted = Atom_obs.Metrics.counter reg "exec.pool.promoted_words";
    }
  in
  t.workers <- List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker_main t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.mu;
  if t.stop then Mutex.unlock t.mu
  else begin
    t.stop <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mu;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(* ---- the default (process-wide) pool ---- *)

type default_state = Unset | Set of t option

let default_mu = Mutex.create ()
let default_cell : default_state Atomic.t = Atomic.make Unset

let domains_from_env () =
  match Sys.getenv_opt "ATOM_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some d when d >= 1 -> min d 64 | _ -> 1)

let set_default p =
  Mutex.lock default_mu;
  Atomic.set default_cell (Set p);
  Mutex.unlock default_mu

let default () =
  match Atomic.get default_cell with
  | Set p -> p
  | Unset ->
      Mutex.lock default_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock default_mu)
        (fun () ->
          match Atomic.get default_cell with
          | Set p -> p
          | Unset ->
              let d = domains_from_env () in
              let p =
                if d <= 1 then None
                else begin
                  let p = create ~domains:d () in
                  at_exit (fun () -> shutdown p);
                  Some p
                end
              in
              Atomic.set default_cell (Set p);
              p)

let resolve = function Some _ as p -> p | None -> default ()

(* ---- running work ---- *)

let sequential n body =
  for i = 0 to n - 1 do
    body i
  done

(* Publish the job, take part in it from slot 0, then wait for the last
   worker to leave. A worker that wakes after the cursor is exhausted
   claims nothing and goes back to sleep, so the join only has to wait
   for workers that actually entered the job. *)
let run_on (t : t) ?chunk n body =
  Atom_obs.Metrics.incr t.m_jobs;
  (* Default granularity: 4 chunks per domain. Enough slack for dynamic
     balancing when per-index cost is skewed, while keeping cursor traffic
     and per-chunk bookkeeping negligible now that the allocation-free
     kernels have made per-index cost far more uniform (re-tuned from 8
     chunks per domain alongside the flat-limb refactor). *)
  let chunk =
    match chunk with Some c when c >= 1 -> c | _ -> max 1 (n / (t.domains * 4))
  in
  let j = { body; jn = n; chunk; next = Atomic.make 0; failed = None } in
  if t.timed then begin
    Array.fill t.busy 0 t.domains 0.0;
    Array.fill t.minor 0 t.domains 0.0;
    Array.fill t.promoted 0 t.domains 0.0;
    Atom_obs.Metrics.set t.m_queue (float_of_int ((n + chunk - 1) / chunk))
  end;
  Mutex.lock t.mu;
  t.job <- Some j;
  t.gen <- t.gen + 1;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.mu;
  run_chunks t 0 j;
  Mutex.lock t.mu;
  while t.active > 0 do
    Condition.wait t.done_cv t.mu
  done;
  t.job <- None;
  Mutex.unlock t.mu;
  if t.timed then begin
    Atom_obs.Metrics.set t.m_queue 0.0;
    Array.iter (fun b -> if b > 0.0 then Atom_obs.Metrics.observe t.m_busy b) t.busy;
    Array.iter (fun w -> if w > 0.0 then Atom_obs.Metrics.add t.m_minor w) t.minor;
    Array.iter (fun w -> if w > 0.0 then Atom_obs.Metrics.add t.m_promoted w) t.promoted
  end;
  match j.failed with Some e -> raise e | None -> ()

let run ?pool ?chunk ~n body =
  if n > 0 then
    match resolve pool with
    | None -> sequential n body
    | Some t ->
        if t.domains <= 1 || n < 4 then sequential n body
        else if not (Atomic.compare_and_set t.in_flight false true) then
          (* Nested or concurrent entry: the pool is already driving a
             job; degrade to the calling thread. *)
          sequential n body
        else
          Fun.protect
            ~finally:(fun () -> Atomic.set t.in_flight false)
            (fun () ->
              Atom_obs.Trace.with_span t.tracer ~cat:"exec"
                ~args:[ ("n", Atom_obs.Trace.I n) ]
                ~tid:0 "pool.run"
                (fun () -> run_on t ?chunk n body))

let tabulate ?pool ?chunk n f =
  if n <= 0 then [||]
  else begin
    let first = f 0 in
    let out = Array.make n first in
    run ?pool ?chunk ~n:(n - 1) (fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let map ?pool ?chunk f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    run ?pool ?chunk ~n:(n - 1) (fun i -> out.(i + 1) <- f a.(i + 1));
    out
  end

(* ---- measured runtime default ----

   [auto_domains] is the pool size a node should use when nobody said
   otherwise: the host's core count, capped by the recommendation a
   `bench parallel` run measured on comparable hardware. The committed
   BENCH_parallel.json records the core count it was measured on; a
   recommendation measured on a 1-core CI container must not cap a 32-core
   deployment, so the cap only applies when the measuring host's core
   count matches this one. The scan is a dumb substring search so the
   bench JSON needs no parser dependency here. *)

let scan_json_int (s : string) (key : string) : int option =
  let needle = "\"" ^ key ^ "\":" in
  let nl = String.length needle and sl = String.length s in
  let rec at i =
    if i + nl > sl then None
    else if String.sub s i nl = needle then begin
      let j = ref (i + nl) in
      while !j < sl && (s.[!j] = ' ' || s.[!j] = '\t') do
        incr j
      done;
      let start = !j in
      while !j < sl && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j > start then int_of_string_opt (String.sub s start (!j - start)) else None
    end
    else at (i + 1)
  in
  at 0

let bench_parallel_path () =
  let name = "BENCH_parallel.json" in
  match Sys.getenv_opt "ATOM_BENCH_DIR" with
  | Some d when Sys.file_exists (Filename.concat d name) -> Some (Filename.concat d name)
  | _ -> if Sys.file_exists name then Some name else None

let measured_recommendation () : (int * int) option =
  match bench_parallel_path () with
  | None -> None
  | Some path -> (
      match
        try
          In_channel.with_open_bin path (fun ic ->
              Some (In_channel.input_all ic))
        with Sys_error _ -> None
      with
      | None -> None
      | Some body -> (
          match (scan_json_int body "recommended_domains", scan_json_int body "host_cores") with
          | Some r, Some hc when r >= 1 -> Some (r, hc)
          | Some r, None when r >= 1 -> Some (r, 0)
          | _ -> None))

let auto_domains () =
  let cores = max 1 (min 64 (Domain.recommended_domain_count ())) in
  match measured_recommendation () with
  | Some (r, hc) when hc = cores -> max 1 (min cores r)
  | _ -> cores
