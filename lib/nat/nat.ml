(* Arbitrary-precision natural numbers.

   Representation: little-endian [int array] of limbs in base 2^26.  The
   canonical form has no trailing zero limbs; zero is the empty array.  Base
   2^26 keeps every limb product below 2^52, so schoolbook multiplication can
   accumulate in OCaml's 63-bit native ints without overflow. *)

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1
let limb_base = 1 lsl limb_bits

type t = int array

let zero : t = [||]
let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int (x : int) : t =
  if x < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs x = if x = 0 then [] else (x land limb_mask) :: limbs (x lsr limb_bits) in
  Array.of_list (limbs x)

let one = of_int 1
let two = of_int 2

let to_int_opt (a : t) : int option =
  (* max_int has 62 usable bits: at most 3 limbs of 26 bits, checked. *)
  let n = Array.length a in
  if n > 3 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor a.(i)
    done;
    if !ok then Some !v else None
  end

let to_int_exn a =
  match to_int_opt a with
  | Some v -> v
  | None -> invalid_arg "Nat.to_int_exn: does not fit"

let num_limbs = Array.length

let compare (a : t) (b : t) : int =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0

let bit_length (a : t) : int =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0

let test_bit (a : t) (i : int) : bool =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let is_even a = not (test_bit a 0)
let is_odd a = test_bit a 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize out

(* a - b; raises if b > a. *)
let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      out.(i) <- s + limb_base;
      borrow := 1
    end
    else begin
      out.(i) <- s;
      borrow := 0
    end
  done;
  normalize out

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = out.(i + j) + (ai * b.(j)) + !carry in
          out.(i + j) <- s land limb_mask;
          carry := s lsr limb_bits
        done;
        (* Propagate the final carry (may span several limbs). *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = out.(!k) + !carry in
          out.(!k) <- s land limb_mask;
          carry := s lsr limb_bits;
          incr k
        done
      end
    done;
    normalize out
  end

let shift_left (a : t) (bits : int) : t =
  if bits < 0 then invalid_arg "Nat.shift_left";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    let out = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl off in
      out.(i + limbs) <- out.(i + limbs) lor (v land limb_mask);
      out.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize out
  end

let shift_right (a : t) (bits : int) : t =
  if bits < 0 then invalid_arg "Nat.shift_right";
  if is_zero a || bits = 0 then a
  else begin
    let limbs = bits / limb_bits and off = bits mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr off in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - off)) land limb_mask else 0 in
        out.(i) <- if off = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize out
    end
  end

(* Long division, binary shift-and-subtract.  O(bits * limbs): fine for the
   cold paths (parameter generation, conversions); hot modular arithmetic
   goes through Montgomery contexts in [Modarith]. *)
let div_rem (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = bit_length a - bit_length b in
    let q = Array.make (Array.length a) 0 in
    let r = ref a in
    for i = shift downto 0 do
      let shifted = shift_left b i in
      if compare !r shifted >= 0 then begin
        r := sub !r shifted;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let div a b = fst (div_rem a b)
let rem a b = snd (div_rem a b)

(* Remainder by a small positive int (must be < 2^31 so the accumulator
   (r * limb_base + limb) stays within native int range). *)
let mod_small (a : t) (m : int) : int =
  if m <= 0 then invalid_arg "Nat.mod_small";
  if m >= 1 lsl 31 then invalid_arg "Nat.mod_small: modulus too large";
  let r = ref 0 in
  for i = Array.length a - 1 downto 0 do
    r := (((!r lsl limb_bits) lor a.(i)) mod m)
  done;
  !r

let div_small (a : t) (d : int) : t * int =
  if d <= 0 then invalid_arg "Nat.div_small";
  if d >= 1 lsl 31 then invalid_arg "Nat.div_small: divisor too large";
  let n = Array.length a in
  let out = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    out.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize out, !r)

let of_bytes_be_sub (s : string) ~(pos : int) ~(len : int) : t =
  if pos < 0 || len < 0 || pos + len > String.length s then invalid_arg "Nat.of_bytes_be_sub";
  let bits = len * 8 in
  let limbs = ((bits + limb_bits - 1) / limb_bits) + 1 in
  let out = Array.make limbs 0 in
  let acc = ref 0 and acc_bits = ref 0 and limb = ref 0 in
  for i = pos + len - 1 downto pos do
    acc := !acc lor (Char.code s.[i] lsl !acc_bits);
    acc_bits := !acc_bits + 8;
    while !acc_bits >= limb_bits do
      out.(!limb) <- !acc land limb_mask;
      acc := !acc lsr limb_bits;
      acc_bits := !acc_bits - limb_bits;
      incr limb
    done
  done;
  if !acc_bits > 0 then out.(!limb) <- !acc;
  normalize out

let of_bytes_be (s : string) : t = of_bytes_be_sub s ~pos:0 ~len:(String.length s)

let to_bytes_be ?(length : int option) (a : t) : string =
  let byte_len = (bit_length a + 7) / 8 in
  let len = match length with None -> max byte_len 1 | Some l -> l in
  if byte_len > len then invalid_arg "Nat.to_bytes_be: does not fit";
  let out = Bytes.make len '\000' in
  for i = 0 to byte_len - 1 do
    (* i-th byte from the little end. *)
    let bit = i * 8 in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    let v = a.(limb) lsr off in
    let v =
      if off > limb_bits - 8 && limb + 1 < Array.length a then v lor (a.(limb + 1) lsl (limb_bits - off))
      else v
    in
    Bytes.set out (len - 1 - i) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

let of_hex (h : string) : t = of_bytes_be (Atom_util.Hex.decode (if String.length h mod 2 = 1 then "0" ^ h else h))

let to_hex (a : t) : string =
  let s = Atom_util.Hex.encode (to_bytes_be a) in
  (* Strip leading zeros but keep at least one digit. *)
  let n = String.length s in
  let i = ref 0 in
  while !i < n - 1 && s.[!i] = '0' do
    incr i
  done;
  String.sub s !i (n - !i)

let to_decimal (a : t) : string =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = div_small a 1_000_000_000 in
        if is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go a;
    Buffer.contents buf
  end

let of_decimal (s : string) : t =
  let acc = ref zero and ten = of_int 10 in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Nat.of_decimal")
    s;
  !acc

let pp fmt a = Format.pp_print_string fmt (to_decimal a)

(* Uniform value in [0, bound) by rejection sampling over [bit_length bound]
   random bits. *)
let random_below (rng : Atom_util.Rng.t) (bound : t) : t =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let bits = bit_length bound in
  let bytes = (bits + 7) / 8 in
  let excess = (bytes * 8) - bits in
  let rec go () =
    let raw = Bytes.of_string (Atom_util.Rng.bytes rng bytes) in
    (* Mask excess high bits so the rejection rate is below 1/2. *)
    Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) land (0xff lsr excess)));
    let v = of_bytes_be (Bytes.unsafe_to_string raw) in
    if compare v bound < 0 then v else go ()
  in
  go ()

let random_bits (rng : Atom_util.Rng.t) (bits : int) : t =
  if bits <= 0 then invalid_arg "Nat.random_bits";
  let bytes = (bits + 7) / 8 in
  let excess = (bytes * 8) - bits in
  let raw = Bytes.of_string (Atom_util.Rng.bytes rng bytes) in
  Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) land (0xff lsr excess)));
  (* Force the top bit so the result has exactly [bits] bits. *)
  Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) lor (1 lsl (7 - excess))));
  of_bytes_be (Bytes.unsafe_to_string raw)
