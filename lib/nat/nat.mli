(** Arbitrary-precision natural numbers.

    Little-endian arrays of base-2²⁶ limbs. All operations are on
    non-negative values; {!sub} raises on a negative result. Hot modular
    arithmetic should go through {!Modarith} (Montgomery form); the division
    here is a simple binary long division intended for cold paths. *)

type t

val limb_bits : int

val zero : t
val one : t
val two : t
val is_zero : t -> bool

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int_opt : t -> int option
val to_int_exn : t -> int

val num_limbs : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool

val bit_length : t -> int
val test_bit : t -> int -> bool
val is_even : t -> bool
val is_odd : t -> bool

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val div_rem : t -> t -> t * t
(** @raise Division_by_zero *)

val div : t -> t -> t
val rem : t -> t -> t

val mod_small : t -> int -> int
(** Remainder by a small (< 2³¹) positive int. *)

val div_small : t -> int -> t * int

val of_bytes_be : string -> t

val of_bytes_be_sub : string -> pos:int -> len:int -> t
(** [of_bytes_be_sub s ~pos ~len] reads the big-endian value of
    [s.[pos .. pos+len-1]] without materializing the substring — the
    zero-copy decode primitive for wire parsers.
    @raise Invalid_argument on an out-of-range slice. *)

val to_bytes_be : ?length:int -> t -> string
(** Big-endian bytes; zero-padded to [length] when given.
    @raise Invalid_argument if the value does not fit in [length] bytes. *)

val of_hex : string -> t
val to_hex : t -> string
val of_decimal : string -> t
val to_decimal : t -> string
val pp : Format.formatter -> t -> unit

val random_below : Atom_util.Rng.t -> t -> t
(** Uniform in [0, bound), rejection-sampled. *)

val random_bits : Atom_util.Rng.t -> int -> t
(** Uniform with exactly [bits] bits (top bit forced). *)
