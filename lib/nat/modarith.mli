(** Montgomery modular arithmetic for a fixed odd modulus.

    A {!ctx} is built once per modulus; elements ({!el}) are fixed-width limb
    arrays kept in Montgomery form. Inversion uses Fermat's little theorem
    and therefore requires a prime modulus — every context in this repository
    (field primes, curve orders, Schnorr subgroup orders) is prime.

    A ctx is safe to share across domains and systhreads: the mutable
    working state (CIOS scratch accumulators, the window-table cache) is
    kept per-domain via [Domain.DLS] and checked out per operation, so a
    single group instance can back an {!Atom_exec.Pool} worker set or a
    threaded TCP cluster without per-thread instances. *)

type ctx

type el = int array
(** A fixed-width little-endian limb buffer (base 2^26) in Montgomery form.
    The representation is exposed so callers (the group layer) can hold
    elements in preallocated flat buffers and use the in-place session API
    below; treat the limbs themselves as opaque. *)

val create : Nat.t -> ctx
(** @raise Invalid_argument if the modulus is even or < 3. *)

val modulus : ctx -> Nat.t

val of_nat : ctx -> Nat.t -> el
(** Reduce mod the modulus and enter Montgomery form. *)

val to_nat : ctx -> el -> Nat.t
val of_int : ctx -> int -> el

(** {1 Wire parse: plain values}

    The wire-decode fast path. A {!plain} is a fixed-width limb value
    that has {e not} entered Montgomery form: {!parse_be_sub} reads it
    straight off a receive buffer (no [Nat] round trip) and range-checks
    it against the modulus, {!plain_leq} compares it against a
    precomputed threshold with one limb loop, and {!mont_of_plain} pays
    the Montgomery entry multiplication only when the element is released
    to arithmetic — so a structural decoder can parse thousands of
    elements per frame and batch the expensive step. *)

type plain

val parse_be_sub : ctx -> string -> pos:int -> len:int -> plain option
(** Big-endian value of [s.[pos .. pos+len-1]]. [None] when the slice is
    out of range or the value is ≥ the modulus. Total: never raises on
    wire input. *)

val plain_is_zero : plain -> bool

val plain_of_nat : ctx -> Nat.t -> plain
(** For precomputing comparison thresholds (e.g. the canonical-range
    bound q).
    @raise Invalid_argument if the value exceeds the context width. *)

val plain_leq : plain -> plain -> bool

val mont_of_plain : ctx -> plain -> el
(** Enter Montgomery form: one multiplication by R². The value must come
    from {!parse_be_sub} or {!plain_of_nat} of the same context (already
    reduced). *)

val zero : ctx -> el
val one : ctx -> el
val equal : el -> el -> bool
val is_zero : el -> bool
val copy : el -> el

val add : ctx -> el -> el -> el
val sub : ctx -> el -> el -> el
val neg : ctx -> el -> el
val mul : ctx -> el -> el -> el

val mont_sqr : ctx -> el -> el
(** Specialized Montgomery squaring: computes each cross-limb product once
    and doubles it, roughly halving the schoolbook work of a general
    multiplication. *)

val sqr : ctx -> el -> el
(** [sqr ctx a] = [mont_sqr ctx a]. *)

val double : ctx -> el -> el

val pow : ctx -> el -> Nat.t -> el
(** [pow ctx b e] is b^e mod m; the exponent is a plain natural. Window
    tables for recently used bases are kept in a small per-context MRU
    cache, so repeated exponentiations of a fixed base (a generator, a
    public key) skip table construction. *)

val msm : ctx -> (el * Nat.t) array -> el
(** [msm ctx [|(b1, e1); ...|]] is Π bᵢ^eᵢ mod m via Straus interleaving:
    all pairs share one run of squarings, so an n-term product costs about
    one exponentiation's squarings plus n window-digit multiplications per
    window. Zero exponents are skipped; the empty product is [one]. *)

val msm_slice : ctx -> (el * Nat.t) array -> lo:int -> hi:int -> el
(** [msm] restricted to pairs.(lo..hi-1), without materializing a sub-array.
    Used by pooled MSM to hand each worker a chunk allocation-free.
    @raise Invalid_argument on an out-of-range slice. *)

val inv : ctx -> el -> el
(** Inverse via Fermat (prime modulus only).
    @raise Division_by_zero on zero. *)

(** {1 Flat-buffer / in-place API}

    The allocation-free surface. [alloc] makes a destination buffer once;
    the [S] operations then write results in place, drawing temporaries
    from a per-domain arena of preallocated slots. A {!with_session} scope
    checks the domain-local state out once for a whole ladder (a curve
    scalar-mult, an MSM run) instead of per field op, and releases every
    arena slot taken inside it when it ends.

    Rules: session values ([S.t]) must not escape their scope, must not be
    shared across threads, and must not be held across calls that may run
    the same ctx on this thread re-entrantly (e.g. [Atom_exec.Pool] jobs) —
    the re-entrant call would silently fall back to a throwaway working
    state. Buffers from [S.take] are only valid until the session (or the
    enclosing [S.mark]/[S.release] pair) ends. *)

val alloc : ctx -> el
(** A fresh zeroed destination buffer of the context's width. *)

val copy_into : dst:el -> el -> unit
val set_zero : el -> unit
val set_one : ctx -> el -> unit

module S : sig
  type t

  val mul : t -> dst:el -> el -> el -> unit
  (** [dst] may alias either operand. *)

  val sqr : t -> dst:el -> el -> unit
  (** [dst] may alias the operand. *)

  val add : t -> dst:el -> el -> el -> unit
  val sub : t -> dst:el -> el -> el -> unit

  val pow : t -> dst:el -> el -> Nat.t -> unit
  (** [dst] may alias the base (the window table copies it first). *)

  val take : t -> el
  (** Check a scratch element out of the arena: stale contents, valid
      until the enclosing release point. *)

  val mark : t -> int
  val release : t -> int -> unit
  (** [release s (mark s)] frees every slot taken since, en masse. Use
      around per-step temporaries inside long ladders so the arena's
      high-water mark stays at the per-step working set. *)
end

val with_session : ctx -> (S.t -> 'a) -> 'a
(** Run [f] with the calling domain's working state pinned. Arena slots
    taken inside are released on exit (also on exception). *)

(** {1 Reference implementations}

    Structurally independent slow paths ([Nat] schoolbook multiply +
    binary long division, square-and-multiply pow) used by property tests
    to pin the CIOS kernels byte-identical. Not for production use. *)
module Ref : sig
  val mul : ctx -> el -> el -> el
  val sqr : ctx -> el -> el
  val add : ctx -> el -> el -> el
  val sub : ctx -> el -> el -> el
  val pow : ctx -> el -> Nat.t -> el
  val msm : ctx -> (el * Nat.t) array -> el
end
