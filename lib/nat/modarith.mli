(** Montgomery modular arithmetic for a fixed odd modulus.

    A {!ctx} is built once per modulus; elements ({!el}) are fixed-width limb
    arrays kept in Montgomery form. Inversion uses Fermat's little theorem
    and therefore requires a prime modulus — every context in this repository
    (field primes, curve orders, Schnorr subgroup orders) is prime.

    A ctx is safe to share across domains and systhreads: the mutable
    working state (CIOS scratch accumulators, the window-table cache) is
    kept per-domain via [Domain.DLS] and checked out per operation, so a
    single group instance can back an {!Atom_exec.Pool} worker set or a
    threaded TCP cluster without per-thread instances. *)

type ctx
type el

val create : Nat.t -> ctx
(** @raise Invalid_argument if the modulus is even or < 3. *)

val modulus : ctx -> Nat.t

val of_nat : ctx -> Nat.t -> el
(** Reduce mod the modulus and enter Montgomery form. *)

val to_nat : ctx -> el -> Nat.t
val of_int : ctx -> int -> el

val zero : ctx -> el
val one : ctx -> el
val equal : el -> el -> bool
val is_zero : el -> bool
val copy : el -> el

val add : ctx -> el -> el -> el
val sub : ctx -> el -> el -> el
val neg : ctx -> el -> el
val mul : ctx -> el -> el -> el

val mont_sqr : ctx -> el -> el
(** Specialized Montgomery squaring: computes each cross-limb product once
    and doubles it, roughly halving the schoolbook work of a general
    multiplication. *)

val sqr : ctx -> el -> el
(** [sqr ctx a] = [mont_sqr ctx a]. *)

val double : ctx -> el -> el

val pow : ctx -> el -> Nat.t -> el
(** [pow ctx b e] is b^e mod m; the exponent is a plain natural. Window
    tables for recently used bases are kept in a small per-context MRU
    cache, so repeated exponentiations of a fixed base (a generator, a
    public key) skip table construction. *)

val msm : ctx -> (el * Nat.t) array -> el
(** [msm ctx [|(b1, e1); ...|]] is Π bᵢ^eᵢ mod m via Straus interleaving:
    all pairs share one run of squarings, so an n-term product costs about
    one exponentiation's squarings plus n window-digit multiplications per
    window. Zero exponents are skipped; the empty product is [one]. *)

val inv : ctx -> el -> el
(** Inverse via Fermat (prime modulus only).
    @raise Division_by_zero on zero. *)
