(* Montgomery modular arithmetic for a fixed odd modulus.

   Elements are fixed-width little-endian limb arrays (base 2^26) kept in
   Montgomery form (x·R mod m with R = 2^(26k)).  Multiplication uses the
   CIOS (coarsely integrated operand scanning) algorithm; with 26-bit limbs
   every intermediate product fits comfortably in a 63-bit native int. *)

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1

type el = int array

(* The mutable working state of a context: CIOS accumulators reused across
   calls, and the MRU window-table cache. Kept per-domain via [Domain.DLS]
   so one ctx can serve every domain of a pool, and checked out per
   operation (the [in_use] flag) so systhreads sharing a domain's storage
   can't interleave mid-multiplication — see [with_tls]. *)
type tls = {
  scratch : int array; (* k+2 CIOS accumulator for mont_mul *)
  scratch_sqr : int array; (* 2k+1 accumulator for mont_sqr *)
  mutable pow_cache : (el * el array) list; (* MRU base -> window table *)
  mutable in_use : bool;
}

type ctx = {
  modulus : Nat.t;
  m : int array; (* k limbs of the modulus *)
  k : int;
  m0inv : int; (* -m^{-1} mod 2^26 *)
  r2 : int array; (* R^2 mod m, for entering Montgomery form *)
  one_m : int array; (* R mod m, i.e. 1 in Montgomery form *)
  one_plain : int array; (* plain 1, the fixed second operand of to_nat *)
  tls : tls Domain.DLS.key;
}

let fresh_tls (k : int) : tls =
  {
    scratch = Array.make (k + 2) 0;
    scratch_sqr = Array.make ((2 * k) + 1) 0;
    pow_cache = [];
    in_use = false;
  }

(* Check the domain-local state out for the duration of one exported
   operation. The load-test-store on [in_use] contains no allocation or
   function call, so a systhread cannot be preempted inside it; if the
   domain's state is already held (another systhread of this domain is
   mid-operation), fall back to a throwaway allocation — correctness
   first, the fast path second. Internal helpers take the [tls] record
   explicitly and never re-enter [with_tls] while holding it. *)
let with_tls (ctx : ctx) (f : tls -> 'a) : 'a =
  let t = Domain.DLS.get ctx.tls in
  if t.in_use then f (fresh_tls ctx.k)
  else begin
    t.in_use <- true;
    match f t with
    | v ->
        t.in_use <- false;
        v
    | exception e ->
        t.in_use <- false;
        raise e
  end

(* Widen a Nat (canonical, possibly short) to exactly k limbs, going through
   the byte serialization so Nat's representation stays abstract. *)
let widen (k : int) (a : Nat.t) : int array =
  let bytes = Nat.to_bytes_be a in
  let out = Array.make k 0 in
  let n = String.length bytes in
  let acc = ref 0 and acc_bits = ref 0 and limb = ref 0 in
  (try
     for i = n - 1 downto 0 do
       acc := !acc lor (Char.code bytes.[i] lsl !acc_bits);
       acc_bits := !acc_bits + 8;
       while !acc_bits >= limb_bits do
         if !limb >= k then raise Exit;
         out.(!limb) <- !acc land limb_mask;
         acc := !acc lsr limb_bits;
         acc_bits := !acc_bits - limb_bits;
         incr limb
       done
     done;
     if !acc_bits > 0 && !limb < k then out.(!limb) <- !acc
     else if !acc <> 0 && !limb >= k then raise Exit
   with Exit -> invalid_arg "Modarith.widen: value too large");
  out

let narrow (a : int array) : Nat.t =
  let k = Array.length a in
  let byte_len = ((k * limb_bits) + 7) / 8 in
  let out = Bytes.make byte_len '\000' in
  for i = 0 to byte_len - 1 do
    let bit = i * 8 in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    if limb < k then begin
      let v = a.(limb) lsr off in
      let v =
        if off > limb_bits - 8 && limb + 1 < k then v lor (a.(limb + 1) lsl (limb_bits - off)) else v
      in
      Bytes.set out (byte_len - 1 - i) (Char.chr (v land 0xff))
    end
  done;
  Nat.of_bytes_be (Bytes.unsafe_to_string out)

(* Comparison of fixed-width limb arrays. *)
let cmp_limbs (a : int array) (b : int array) : int =
  let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
  go (Array.length a - 1)

(* a <- a - b (fixed width, assumes a >= b). *)
let sub_in_place (a : int array) (b : int array) : unit =
  let borrow = ref 0 in
  for i = 0 to Array.length a - 1 do
    let s = a.(i) - b.(i) - !borrow in
    if s < 0 then begin
      a.(i) <- s + (1 lsl limb_bits);
      borrow := 1
    end
    else begin
      a.(i) <- s;
      borrow := 0
    end
  done

let create (modulus : Nat.t) : ctx =
  if Nat.is_even modulus || Nat.compare modulus (Nat.of_int 3) < 0 then
    invalid_arg "Modarith.create: modulus must be odd and >= 3";
  let k = (Nat.bit_length modulus + limb_bits - 1) / limb_bits in
  let m = widen k modulus in
  (* m0inv = -m[0]^{-1} mod 2^26 via Newton iteration. *)
  let m0 = m.(0) in
  let x = ref 1 in
  for _ = 1 to 5 do
    (* Mask the inner term first so the product stays below 2^52. *)
    x := !x * ((2 - (m0 * !x)) land limb_mask) land limb_mask
  done;
  let m0inv = (1 lsl limb_bits) - !x land limb_mask in
  let m0inv = m0inv land limb_mask in
  (* R mod m by doubling 1, 26k times, with conditional subtraction. *)
  let double_mod (a : int array) : unit =
    let carry = ref 0 in
    for i = 0 to k - 1 do
      let s = (a.(i) lsl 1) lor !carry in
      a.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done;
    if !carry = 1 || cmp_limbs a m >= 0 then sub_in_place a m
  in
  let one_m = Array.make k 0 in
  one_m.(0) <- 1;
  for _ = 1 to k * limb_bits do
    double_mod one_m
  done;
  (* R^2 mod m: double R mod m another 26k times. *)
  let r2 = Array.copy one_m in
  for _ = 1 to k * limb_bits do
    double_mod r2
  done;
  let one_plain = Array.make k 0 in
  one_plain.(0) <- 1;
  {
    modulus;
    m;
    k;
    m0inv;
    r2;
    one_m;
    one_plain;
    tls = Domain.DLS.new_key (fun () -> fresh_tls k);
  }

(* Montgomery multiplication: result = a*b*R^{-1} mod m (CIOS). The
   accumulator lives in [t.scratch]: mont_mul_t never calls itself and the
   inputs are never the scratch array, so reuse is safe. *)
let mont_mul_t (ctx : ctx) (tl : tls) (a : el) (b : el) : el =
  let k = ctx.k and m = ctx.m and m0inv = ctx.m0inv in
  let t = tl.scratch in
  Array.fill t 0 (k + 2) 0;
  for i = 0 to k - 1 do
    let ai = a.(i) in
    (* t += ai * b *)
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = t.(j) + (ai * b.(j)) + !c in
      t.(j) <- s land limb_mask;
      c := s lsr limb_bits
    done;
    let s = t.(k) + !c in
    t.(k) <- s land limb_mask;
    t.(k + 1) <- t.(k + 1) + (s lsr limb_bits);
    (* reduce one limb *)
    let mfac = t.(0) * m0inv land limb_mask in
    let s0 = t.(0) + (mfac * m.(0)) in
    let c = ref (s0 lsr limb_bits) in
    for j = 1 to k - 1 do
      let s = t.(j) + (mfac * m.(j)) + !c in
      t.(j - 1) <- s land limb_mask;
      c := s lsr limb_bits
    done;
    let s = t.(k) + !c in
    t.(k - 1) <- s land limb_mask;
    t.(k) <- t.(k + 1) + (s lsr limb_bits);
    t.(k + 1) <- 0
  done;
  let out = Array.sub t 0 k in
  if t.(k) <> 0 || cmp_limbs out ctx.m >= 0 then sub_in_place out ctx.m;
  out

(* Montgomery squaring: a*a*R^{-1} mod m. Exploits product symmetry — each
   cross term a_i·a_j (i<j) is computed once and doubled, so the schoolbook
   phase does ~k²/2 limb products instead of CIOS's k². The doubling-heavy
   curve ladder (jac_double is 5 squarings per step) lands here. Bounds: a
   doubled cross product is < 2^53 and carries stay < 2^28, so every
   intermediate fits a 62-bit native int. *)
let mont_sqr_t (ctx : ctx) (tl : tls) (a : el) : el =
  let k = ctx.k and m = ctx.m and m0inv = ctx.m0inv in
  let t = tl.scratch_sqr in
  Array.fill t 0 ((2 * k) + 1) 0;
  (* t <- a·a, with symmetry. *)
  for i = 0 to k - 1 do
    let ai = a.(i) in
    let s = t.(2 * i) + (ai * ai) in
    t.(2 * i) <- s land limb_mask;
    let c = ref (s lsr limb_bits) in
    let idx = ref ((2 * i) + 1) in
    for j = i + 1 to k - 1 do
      let p = ai * a.(j) in
      let s = t.(!idx) + p + p + !c in
      t.(!idx) <- s land limb_mask;
      c := s lsr limb_bits;
      incr idx
    done;
    while !c <> 0 do
      let s = t.(!idx) + !c in
      t.(!idx) <- s land limb_mask;
      c := s lsr limb_bits;
      incr idx
    done
  done;
  (* Montgomery reduction of the 2k-limb product, one limb at a time. *)
  for i = 0 to k - 1 do
    let mfac = t.(i) * m0inv land limb_mask in
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = t.(i + j) + (mfac * m.(j)) + !c in
      t.(i + j) <- s land limb_mask;
      c := s lsr limb_bits
    done;
    let idx = ref (i + k) in
    while !c <> 0 do
      let s = t.(!idx) + !c in
      t.(!idx) <- s land limb_mask;
      c := s lsr limb_bits;
      incr idx
    done
  done;
  let out = Array.sub t k k in
  if t.(2 * k) <> 0 || cmp_limbs out ctx.m >= 0 then sub_in_place out ctx.m;
  out

let of_nat (ctx : ctx) (a : Nat.t) : el =
  let reduced = if Nat.compare a ctx.modulus >= 0 then Nat.rem a ctx.modulus else a in
  with_tls ctx (fun t -> mont_mul_t ctx t (widen ctx.k reduced) ctx.r2)

let to_nat (ctx : ctx) (a : el) : Nat.t =
  narrow (with_tls ctx (fun t -> mont_mul_t ctx t a ctx.one_plain))

let zero (ctx : ctx) : el = Array.make ctx.k 0
let one (ctx : ctx) : el = Array.copy ctx.one_m
let of_int ctx i = of_nat ctx (Nat.of_int i)

let equal (a : el) (b : el) : bool = cmp_limbs a b = 0
let is_zero (a : el) = Array.for_all (fun x -> x = 0) a

let add (ctx : ctx) (a : el) (b : el) : el =
  let k = ctx.k in
  let out = Array.make k 0 in
  let carry = ref 0 in
  for i = 0 to k - 1 do
    let s = a.(i) + b.(i) + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  if !carry = 1 || cmp_limbs out ctx.m >= 0 then sub_in_place out ctx.m;
  out

let sub (ctx : ctx) (a : el) (b : el) : el =
  let k = ctx.k in
  let out = Array.make k 0 in
  let borrow = ref 0 in
  for i = 0 to k - 1 do
    let s = a.(i) - b.(i) - !borrow in
    if s < 0 then begin
      out.(i) <- s + (1 lsl limb_bits);
      borrow := 1
    end
    else begin
      out.(i) <- s;
      borrow := 0
    end
  done;
  if !borrow = 1 then begin
    (* add modulus back *)
    let carry = ref 0 in
    for i = 0 to k - 1 do
      let s = out.(i) + ctx.m.(i) + !carry in
      out.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done
  end;
  out

let neg (ctx : ctx) (a : el) : el = if is_zero a then Array.copy a else sub ctx (zero ctx) a
let mul (ctx : ctx) (a : el) (b : el) : el = with_tls ctx (fun t -> mont_mul_t ctx t a b)
let sqr (ctx : ctx) (a : el) : el = with_tls ctx (fun t -> mont_sqr_t ctx t a)
let mont_sqr = sqr

let double ctx a = add ctx a a

(* Small MRU cache of 4-bit window tables, so exponentiations with a
   long-lived base (the Schnorr generator, a group public key) skip table
   construction. The cache is part of the domain-local state, so each
   domain of a pool warms its own copy. Lookup is a linear scan with limb
   comparison — at most [pow_cache_cap] k-limb compares, negligible next
   to an exponentiation. One-shot bases cost one table build either way;
   they merely churn the tail of the list. *)
let pow_cache_cap = 8

let pow_table (ctx : ctx) (tl : tls) (base : el) : el array =
  let rec extract acc = function
    | [] -> None
    | ((b, _) as hit) :: rest when cmp_limbs b base = 0 -> Some (hit, List.rev_append acc rest)
    | entry :: rest -> extract (entry :: acc) rest
  in
  match extract [] tl.pow_cache with
  | Some ((_, table) as hit, rest) ->
      tl.pow_cache <- hit :: rest;
      table
  | None ->
      let table = Array.make 16 (one ctx) in
      table.(1) <- Array.copy base;
      for i = 2 to 15 do
        table.(i) <- mont_mul_t ctx tl table.(i - 1) base
      done;
      let cache = (Array.copy base, table) :: tl.pow_cache in
      tl.pow_cache <- List.filteri (fun i _ -> i < pow_cache_cap) cache;
      table

(* 4-bit window [w] of exponent [e]. *)
let nibble_of (e : Nat.t) (w : int) : int =
  (if Nat.test_bit e ((4 * w) + 3) then 8 else 0)
  lor (if Nat.test_bit e ((4 * w) + 2) then 4 else 0)
  lor (if Nat.test_bit e ((4 * w) + 1) then 2 else 0)
  lor if Nat.test_bit e (4 * w) then 1 else 0

(* Fixed 4-bit-window exponentiation; exponent is a plain Nat. *)
let pow_t (ctx : ctx) (tl : tls) (base : el) (e : Nat.t) : el =
  if Nat.is_zero e then one ctx
  else begin
    let table = pow_table ctx tl base in
    let bits = Nat.bit_length e in
    let windows = (bits + 3) / 4 in
    let acc = ref (one ctx) in
    for w = windows - 1 downto 0 do
      if w <> windows - 1 then begin
        acc := mont_sqr_t ctx tl !acc;
        acc := mont_sqr_t ctx tl !acc;
        acc := mont_sqr_t ctx tl !acc;
        acc := mont_sqr_t ctx tl !acc
      end;
      let nibble = nibble_of e w in
      if nibble <> 0 then acc := mont_mul_t ctx tl !acc table.(nibble)
    done;
    !acc
  end

let pow (ctx : ctx) (base : el) (e : Nat.t) : el = with_tls ctx (fun t -> pow_t ctx t base e)

(* Straus interleaved multi-scalar multiplication: Π base_i^{e_i} with one
   shared run of squarings across all pairs — 4 squarings per window total
   instead of 4 per window per base. Window tables are built lazily to the
   largest digit an exponent can produce, so a unit-exponent pair (common
   in the batched shuffle verifier) costs a single table slot. The cached
   [pow_table] is deliberately not consulted: MSM callers pass crowds of
   one-shot bases that would flush it. *)
let msm_t (ctx : ctx) (tl : tls) (pairs : (el * Nat.t) array) : el =
  let live = List.filter (fun (_, e) -> not (Nat.is_zero e)) (Array.to_list pairs) in
  match live with
  | [] -> one ctx
  | live ->
      let live = Array.of_list live in
      let max_bits = Array.fold_left (fun acc (_, e) -> max acc (Nat.bit_length e)) 0 live in
      let windows = (max_bits + 3) / 4 in
      let tables =
        Array.map
          (fun (b, e) ->
            let max_d = if Nat.bit_length e > 4 then 15 else Nat.to_int_exn e in
            let t = Array.make (max_d + 1) (one ctx) in
            if max_d >= 1 then t.(1) <- b;
            for d = 2 to max_d do
              t.(d) <- mont_mul_t ctx tl t.(d - 1) b
            done;
            t)
          live
      in
      let acc = ref (one ctx) in
      for w = windows - 1 downto 0 do
        if w <> windows - 1 then begin
          acc := mont_sqr_t ctx tl !acc;
          acc := mont_sqr_t ctx tl !acc;
          acc := mont_sqr_t ctx tl !acc;
          acc := mont_sqr_t ctx tl !acc
        end;
        Array.iteri
          (fun i (_, e) ->
            let nib = nibble_of e w in
            if nib <> 0 then acc := mont_mul_t ctx tl !acc tables.(i).(nib))
          live
      done;
      !acc

let msm (ctx : ctx) (pairs : (el * Nat.t) array) : el = with_tls ctx (fun t -> msm_t ctx t pairs)

(* Modular inverse via Fermat: only valid when the modulus is prime, which
   holds for every context in this repo (field primes and group orders). *)
let inv (ctx : ctx) (a : el) : el =
  if is_zero a then raise Division_by_zero;
  with_tls ctx (fun t -> pow_t ctx t a (Nat.sub ctx.modulus Nat.two))

let modulus ctx = ctx.modulus

let copy (a : el) : el = Array.copy a
