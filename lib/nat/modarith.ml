(* Montgomery modular arithmetic for a fixed odd modulus.

   Elements are fixed-width little-endian limb arrays (base 2^26) kept in
   Montgomery form (x·R mod m with R = 2^(26k)).  Multiplication uses the
   CIOS (coarsely integrated operand scanning) algorithm; with 26-bit limbs
   every intermediate product fits comfortably in a 63-bit native int.

   Memory discipline (the flat-limb refactor): an [el] is a flat unboxed
   buffer of native-int limbs, and every hot kernel is *destination-passing*
   — [mont_mul_into] and friends write into a caller-provided k-limb buffer
   and allocate nothing. Temporaries come from a per-domain arena of
   preallocated k-limb slots ([tls.slots]) handed out in stack order and
   released en masse when the enclosing operation (or {!with_session} scope)
   ends, so the steady-state inner loops of pow/msm touch the minor heap
   zero times. The boxed world (fresh [el] results, [Nat.t] conversions)
   exists only at the API edge. The classic allocating implementations are
   retained verbatim-in-spirit under {!Ref} — property tests pin the flat
   kernels byte-identical to them. *)

let limb_bits = 26
let limb_mask = (1 lsl limb_bits) - 1

type el = int array

(* The mutable working state of a context: CIOS accumulators reused across
   calls, the arena of k-limb scratch slots, and the MRU window-table
   cache. Kept per-domain via [Domain.DLS] so one ctx can serve every
   domain of a pool, and checked out per operation (the [in_use] flag) so
   systhreads sharing a domain's storage can't interleave mid-
   multiplication — see [with_tls]. *)
type tls = {
  scratch : int array; (* k+2 CIOS accumulator for mont_mul *)
  scratch_sqr : int array; (* 2k+1 accumulator for mont_sqr *)
  mutable slots : int array array; (* arena of k-limb scratch elements *)
  mutable top : int; (* arena stack pointer *)
  mutable pow_cache : (el * el array) list; (* MRU base -> window table *)
  mutable in_use : bool;
}

type ctx = {
  modulus : Nat.t;
  m : int array; (* k limbs of the modulus *)
  k : int;
  m0inv : int; (* -m^{-1} mod 2^26 *)
  r2 : int array; (* R^2 mod m, for entering Montgomery form *)
  one_m : int array; (* R mod m, i.e. 1 in Montgomery form *)
  one_plain : int array; (* plain 1, the fixed second operand of to_nat *)
  tls : tls Domain.DLS.key;
}

let fresh_tls (k : int) : tls =
  {
    scratch = Array.make (k + 2) 0;
    scratch_sqr = Array.make ((2 * k) + 1) 0;
    slots = [||];
    top = 0;
    pow_cache = [];
    in_use = false;
  }

(* Check the domain-local state out for the duration of one exported
   operation. The load-test-store on [in_use] contains no allocation or
   function call, so a systhread cannot be preempted inside it; if the
   domain's state is already held (another systhread of this domain is
   mid-operation), fall back to a throwaway allocation — correctness
   first, the fast path second. Internal helpers take the [tls] record
   explicitly and never re-enter [with_tls] while holding it. *)
let with_tls (ctx : ctx) (f : tls -> 'a) : 'a =
  let t = Domain.DLS.get ctx.tls in
  if t.in_use then f (fresh_tls ctx.k)
  else begin
    t.in_use <- true;
    match f t with
    | v ->
        t.in_use <- false;
        v
    | exception e ->
        t.in_use <- false;
        raise e
  end

(* ---- the arena: preallocated k-limb slots, stack discipline ---- *)

let arena_mark (t : tls) : int = t.top

let arena_release (t : tls) (mark : int) : unit = t.top <- mark

(* Hand out the next preallocated slot, growing the arena (amortized,
   start-up only) when the high-water mark rises. Slot contents are
   arbitrary stale limbs — callers always fully overwrite. *)
let arena_take (ctx : ctx) (t : tls) : el =
  if t.top = Array.length t.slots then begin
    let old = Array.length t.slots in
    let grown = max 16 (2 * old) in
    t.slots <-
      Array.init grown (fun i -> if i < old then t.slots.(i) else Array.make ctx.k 0)
  end;
  let v = t.slots.(t.top) in
  t.top <- t.top + 1;
  v

(* Widen a Nat (canonical, possibly short) to exactly k limbs, going through
   the byte serialization so Nat's representation stays abstract. *)
let widen (k : int) (a : Nat.t) : int array =
  let bytes = Nat.to_bytes_be a in
  let out = Array.make k 0 in
  let n = String.length bytes in
  let acc = ref 0 and acc_bits = ref 0 and limb = ref 0 in
  (try
     for i = n - 1 downto 0 do
       acc := !acc lor (Char.code bytes.[i] lsl !acc_bits);
       acc_bits := !acc_bits + 8;
       while !acc_bits >= limb_bits do
         if !limb >= k then raise Exit;
         out.(!limb) <- !acc land limb_mask;
         acc := !acc lsr limb_bits;
         acc_bits := !acc_bits - limb_bits;
         incr limb
       done
     done;
     if !acc_bits > 0 && !limb < k then out.(!limb) <- !acc
     else if !acc <> 0 && !limb >= k then raise Exit
   with Exit -> invalid_arg "Modarith.widen: value too large");
  out

let narrow (a : int array) : Nat.t =
  let k = Array.length a in
  let byte_len = ((k * limb_bits) + 7) / 8 in
  let out = Bytes.make byte_len '\000' in
  for i = 0 to byte_len - 1 do
    let bit = i * 8 in
    let limb = bit / limb_bits and off = bit mod limb_bits in
    if limb < k then begin
      let v = a.(limb) lsr off in
      let v =
        if off > limb_bits - 8 && limb + 1 < k then v lor (a.(limb + 1) lsl (limb_bits - off)) else v
      in
      Bytes.set out (byte_len - 1 - i) (Char.chr (v land 0xff))
    end
  done;
  Nat.of_bytes_be (Bytes.unsafe_to_string out)

(* Comparison of fixed-width limb arrays. A plain loop, not a local
   recursive function: the latter captures [a]/[b] in a heap-allocated
   closure, and this runs inside the allocation-free kernels. *)
let cmp_limbs (a : int array) (b : int array) : int =
  let i = ref (Array.length a - 1) and r = ref 0 in
  while !r = 0 && !i >= 0 do
    let ai = Array.unsafe_get a !i and bi = Array.unsafe_get b !i in
    if ai <> bi then r := if ai < bi then -1 else 1;
    decr i
  done;
  !r

(* a <- a - b (fixed width, assumes a >= b). *)
let sub_in_place (a : int array) (b : int array) : unit =
  let borrow = ref 0 in
  for i = 0 to Array.length a - 1 do
    let s = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
    if s < 0 then begin
      Array.unsafe_set a i (s + (1 lsl limb_bits));
      borrow := 1
    end
    else begin
      Array.unsafe_set a i s;
      borrow := 0
    end
  done

let create (modulus : Nat.t) : ctx =
  if Nat.is_even modulus || Nat.compare modulus (Nat.of_int 3) < 0 then
    invalid_arg "Modarith.create: modulus must be odd and >= 3";
  let k = (Nat.bit_length modulus + limb_bits - 1) / limb_bits in
  let m = widen k modulus in
  (* m0inv = -m[0]^{-1} mod 2^26 via Newton iteration. *)
  let m0 = m.(0) in
  let x = ref 1 in
  for _ = 1 to 5 do
    (* Mask the inner term first so the product stays below 2^52. *)
    x := !x * ((2 - (m0 * !x)) land limb_mask) land limb_mask
  done;
  let m0inv = (1 lsl limb_bits) - !x land limb_mask in
  let m0inv = m0inv land limb_mask in
  (* R mod m by doubling 1, 26k times, with conditional subtraction. *)
  let double_mod (a : int array) : unit =
    let carry = ref 0 in
    for i = 0 to k - 1 do
      let s = (a.(i) lsl 1) lor !carry in
      a.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done;
    if !carry = 1 || cmp_limbs a m >= 0 then sub_in_place a m
  in
  let one_m = Array.make k 0 in
  one_m.(0) <- 1;
  for _ = 1 to k * limb_bits do
    double_mod one_m
  done;
  (* R^2 mod m: double R mod m another 26k times. *)
  let r2 = Array.copy one_m in
  for _ = 1 to k * limb_bits do
    double_mod r2
  done;
  let one_plain = Array.make k 0 in
  one_plain.(0) <- 1;
  {
    modulus;
    m;
    k;
    m0inv;
    r2;
    one_m;
    one_plain;
    tls = Domain.DLS.new_key (fun () -> fresh_tls k);
  }

(* ---- allocation-free kernels ----

   Every [_into] kernel writes its result into a caller-provided k-limb
   destination and allocates nothing: the CIOS accumulator lives in the
   checked-out [tls], the operands are only read, and the final copy-out
   happens after every operand read, so [dst] may alias [a] or [b].
   Inner loops use unsafe accessors — widths are fixed at [ctx.k] by
   construction and the kernels are pinned against {!Ref} by property
   tests. *)

(* dst <- a*b*R^{-1} mod m (CIOS). *)
let mont_mul_into (ctx : ctx) (tl : tls) (dst : el) (a : el) (b : el) : unit =
  let k = ctx.k and m = ctx.m and m0inv = ctx.m0inv in
  let t = tl.scratch in
  Array.fill t 0 (k + 2) 0;
  for i = 0 to k - 1 do
    let ai = Array.unsafe_get a i in
    (* t += ai * b *)
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = Array.unsafe_get t j + (ai * Array.unsafe_get b j) + !c in
      Array.unsafe_set t j (s land limb_mask);
      c := s lsr limb_bits
    done;
    let s = t.(k) + !c in
    t.(k) <- s land limb_mask;
    t.(k + 1) <- t.(k + 1) + (s lsr limb_bits);
    (* reduce one limb *)
    let mfac = t.(0) * m0inv land limb_mask in
    let s0 = t.(0) + (mfac * Array.unsafe_get m 0) in
    let c = ref (s0 lsr limb_bits) in
    for j = 1 to k - 1 do
      let s = Array.unsafe_get t j + (mfac * Array.unsafe_get m j) + !c in
      Array.unsafe_set t (j - 1) (s land limb_mask);
      c := s lsr limb_bits
    done;
    let s = t.(k) + !c in
    t.(k - 1) <- s land limb_mask;
    t.(k) <- t.(k + 1) + (s lsr limb_bits);
    t.(k + 1) <- 0
  done;
  let over = t.(k) <> 0 in
  Array.blit t 0 dst 0 k;
  if over || cmp_limbs dst ctx.m >= 0 then sub_in_place dst ctx.m

(* dst <- a*a*R^{-1} mod m. Exploits product symmetry — each cross term
   a_i·a_j (i<j) is computed once and doubled, so the schoolbook phase
   does ~k²/2 limb products instead of CIOS's k². The doubling-heavy
   curve ladder (jdbl is 5 squarings per step) lands here. Bounds: a
   doubled cross product is < 2^53 and carries stay < 2^28, so every
   intermediate fits a 62-bit native int. *)
let mont_sqr_into (ctx : ctx) (tl : tls) (dst : el) (a : el) : unit =
  let k = ctx.k and m = ctx.m and m0inv = ctx.m0inv in
  let t = tl.scratch_sqr in
  Array.fill t 0 ((2 * k) + 1) 0;
  (* t <- a·a, with symmetry. *)
  for i = 0 to k - 1 do
    let ai = Array.unsafe_get a i in
    let s = t.(2 * i) + (ai * ai) in
    t.(2 * i) <- s land limb_mask;
    let c = ref (s lsr limb_bits) in
    let idx = ref ((2 * i) + 1) in
    for j = i + 1 to k - 1 do
      let p = ai * Array.unsafe_get a j in
      let s = Array.unsafe_get t !idx + p + p + !c in
      Array.unsafe_set t !idx (s land limb_mask);
      c := s lsr limb_bits;
      incr idx
    done;
    while !c <> 0 do
      let s = t.(!idx) + !c in
      t.(!idx) <- s land limb_mask;
      c := s lsr limb_bits;
      incr idx
    done
  done;
  (* Montgomery reduction of the 2k-limb product, one limb at a time. *)
  for i = 0 to k - 1 do
    let mfac = t.(i) * m0inv land limb_mask in
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s = Array.unsafe_get t (i + j) + (mfac * Array.unsafe_get m j) + !c in
      Array.unsafe_set t (i + j) (s land limb_mask);
      c := s lsr limb_bits
    done;
    let idx = ref (i + k) in
    while !c <> 0 do
      let s = t.(!idx) + !c in
      t.(!idx) <- s land limb_mask;
      c := s lsr limb_bits;
      incr idx
    done
  done;
  let over = t.(2 * k) <> 0 in
  Array.blit t k dst 0 k;
  if over || cmp_limbs dst ctx.m >= 0 then sub_in_place dst ctx.m

(* dst <- a + b mod m; no scratch needed, dst may alias a or b. *)
let add_into (ctx : ctx) (dst : el) (a : el) (b : el) : unit =
  let k = ctx.k in
  let carry = ref 0 in
  for i = 0 to k - 1 do
    let s = Array.unsafe_get a i + Array.unsafe_get b i + !carry in
    Array.unsafe_set dst i (s land limb_mask);
    carry := s lsr limb_bits
  done;
  if !carry = 1 || cmp_limbs dst ctx.m >= 0 then sub_in_place dst ctx.m

(* dst <- a - b mod m. *)
let sub_into (ctx : ctx) (dst : el) (a : el) (b : el) : unit =
  let k = ctx.k in
  let borrow = ref 0 in
  for i = 0 to k - 1 do
    let s = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
    if s < 0 then begin
      Array.unsafe_set dst i (s + (1 lsl limb_bits));
      borrow := 1
    end
    else begin
      Array.unsafe_set dst i s;
      borrow := 0
    end
  done;
  if !borrow = 1 then begin
    (* add modulus back *)
    let carry = ref 0 in
    for i = 0 to k - 1 do
      let s = dst.(i) + ctx.m.(i) + !carry in
      dst.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done
  end

(* Boxed conveniences over the kernels (one result allocation each). *)
let mont_mul_t (ctx : ctx) (tl : tls) (a : el) (b : el) : el =
  let out = Array.make ctx.k 0 in
  mont_mul_into ctx tl out a b;
  out

let of_nat (ctx : ctx) (a : Nat.t) : el =
  let reduced = if Nat.compare a ctx.modulus >= 0 then Nat.rem a ctx.modulus else a in
  with_tls ctx (fun t -> mont_mul_t ctx t (widen ctx.k reduced) ctx.r2)

let to_nat (ctx : ctx) (a : el) : Nat.t =
  narrow (with_tls ctx (fun t -> mont_mul_t ctx t a ctx.one_plain))

(* ---- wire parse: plain values ----

   The wire-decode fast path. [of_nat] costs a Nat round trip (widen
   re-serializes through bytes) on top of the Montgomery entry
   multiplication; a structural decoder validating thousands of elements
   per frame cannot afford either until the element is actually released
   to arithmetic. [parse_be_sub] reads the wire bytes straight into a
   k-limb plain value and range-checks it against the modulus with one
   limb compare; [plain_leq] gives threshold checks (canonical-range
   membership) the same way; [mont_of_plain] pays the one entry
   multiplication at discharge time. *)

type plain = int array

let parse_be_sub (ctx : ctx) (s : string) ~(pos : int) ~(len : int) : plain option =
  if pos < 0 || len < 0 || pos + len > String.length s then None
  else begin
    let k = ctx.k in
    let out = Array.make k 0 in
    let acc = ref 0 and acc_bits = ref 0 and limb = ref 0 in
    let fits = ref true in
    for i = pos + len - 1 downto pos do
      acc := !acc lor (Char.code (String.unsafe_get s i) lsl !acc_bits);
      acc_bits := !acc_bits + 8;
      while !acc_bits >= limb_bits do
        let l = !acc land limb_mask in
        if !limb < k then out.(!limb) <- l else if l <> 0 then fits := false;
        acc := !acc lsr limb_bits;
        acc_bits := !acc_bits - limb_bits;
        incr limb
      done
    done;
    if !acc_bits > 0 then
      if !limb < k then out.(!limb) <- !acc else if !acc <> 0 then fits := false;
    if !fits && cmp_limbs out ctx.m < 0 then Some out else None
  end

let plain_is_zero (a : plain) : bool = Array.for_all (fun x -> x = 0) a
let plain_leq (a : plain) (b : plain) : bool = cmp_limbs a b <= 0
let plain_of_nat (ctx : ctx) (a : Nat.t) : plain = widen ctx.k a

let mont_of_plain (ctx : ctx) (a : plain) : el =
  with_tls ctx (fun t -> mont_mul_t ctx t a ctx.r2)

let zero (ctx : ctx) : el = Array.make ctx.k 0
let one (ctx : ctx) : el = Array.copy ctx.one_m
let of_int ctx i = of_nat ctx (Nat.of_int i)

let equal (a : el) (b : el) : bool = cmp_limbs a b = 0
let is_zero (a : el) = Array.for_all (fun x -> x = 0) a

let alloc (ctx : ctx) : el = Array.make ctx.k 0
let copy_into ~(dst : el) (a : el) : unit = Array.blit a 0 dst 0 (Array.length dst)
let set_zero (dst : el) : unit = Array.fill dst 0 (Array.length dst) 0
let set_one (ctx : ctx) (dst : el) : unit = Array.blit ctx.one_m 0 dst 0 ctx.k

let add (ctx : ctx) (a : el) (b : el) : el =
  let out = Array.make ctx.k 0 in
  add_into ctx out a b;
  out

let sub (ctx : ctx) (a : el) (b : el) : el =
  let out = Array.make ctx.k 0 in
  sub_into ctx out a b;
  out

let neg (ctx : ctx) (a : el) : el = if is_zero a then Array.copy a else sub ctx (zero ctx) a
let mul (ctx : ctx) (a : el) (b : el) : el = with_tls ctx (fun t -> mont_mul_t ctx t a b)

let sqr (ctx : ctx) (a : el) : el =
  with_tls ctx (fun t ->
      let out = Array.make ctx.k 0 in
      mont_sqr_into ctx t out a;
      out)

let mont_sqr = sqr

let double ctx a = add ctx a a

(* Small MRU cache of 4-bit window tables, so exponentiations with a
   long-lived base (the Schnorr generator, a group public key) skip table
   construction. The cache is part of the domain-local state, so each
   domain of a pool warms its own copy. Lookup is a linear scan with limb
   comparison — at most [pow_cache_cap] k-limb compares, negligible next
   to an exponentiation. One-shot bases cost one table build either way;
   they merely churn the tail of the list. Cached tables are built once
   and only read afterwards, so the steady-state pow of a warm base
   allocates nothing beyond its result. *)
let pow_cache_cap = 8

let pow_table (ctx : ctx) (tl : tls) (base : el) : el array =
  let rec extract acc = function
    | [] -> None
    | ((b, _) as hit) :: rest when cmp_limbs b base = 0 -> Some (hit, List.rev_append acc rest)
    | entry :: rest -> extract (entry :: acc) rest
  in
  match extract [] tl.pow_cache with
  | Some ((_, table) as hit, rest) ->
      tl.pow_cache <- hit :: rest;
      table
  | None ->
      let table = Array.make 16 (one ctx) in
      table.(1) <- Array.copy base;
      for i = 2 to 15 do
        table.(i) <- mont_mul_t ctx tl table.(i - 1) base
      done;
      let cache = (Array.copy base, table) :: tl.pow_cache in
      tl.pow_cache <- List.filteri (fun i _ -> i < pow_cache_cap) cache;
      table

(* 4-bit window [w] of exponent [e]. *)
let nibble_of (e : Nat.t) (w : int) : int =
  (if Nat.test_bit e ((4 * w) + 3) then 8 else 0)
  lor (if Nat.test_bit e ((4 * w) + 2) then 4 else 0)
  lor (if Nat.test_bit e ((4 * w) + 1) then 2 else 0)
  lor if Nat.test_bit e (4 * w) then 1 else 0

(* Fixed 4-bit-window exponentiation into [dst]; the accumulator IS the
   destination, squared and multiplied in place, so a warm-cache pow
   allocates nothing. [dst] may alias [base]: the window table is built
   (from copies) before [dst] is first written. *)
let pow_into_t (ctx : ctx) (tl : tls) (dst : el) (base : el) (e : Nat.t) : unit =
  if Nat.is_zero e then set_one ctx dst
  else begin
    let table = pow_table ctx tl base in
    let bits = Nat.bit_length e in
    let windows = (bits + 3) / 4 in
    set_one ctx dst;
    for w = windows - 1 downto 0 do
      if w <> windows - 1 then begin
        mont_sqr_into ctx tl dst dst;
        mont_sqr_into ctx tl dst dst;
        mont_sqr_into ctx tl dst dst;
        mont_sqr_into ctx tl dst dst
      end;
      let nibble = nibble_of e w in
      if nibble <> 0 then mont_mul_into ctx tl dst dst table.(nibble)
    done
  end

let pow (ctx : ctx) (base : el) (e : Nat.t) : el =
  with_tls ctx (fun t ->
      let out = Array.make ctx.k 0 in
      pow_into_t ctx t out base e;
      out)

(* Straus interleaved multi-scalar multiplication over [lo, hi):
   dst <- Π base_i^{e_i} with one shared run of squarings across all pairs
   — 4 squarings per window total instead of 4 per window per base.
   Window tables are built lazily to the largest digit an exponent can
   produce, so a unit-exponent pair (common in the batched shuffle
   verifier) costs a single table slot. Table entries beyond the base
   itself live in the arena; only the per-call table spines are fresh.
   The cached [pow_table] is deliberately not consulted: MSM callers pass
   crowds of one-shot bases that would flush it. [dst] must not alias any
   base (the public wrappers allocate it fresh). *)
let msm_into_t (ctx : ctx) (tl : tls) (dst : el) (pairs : (el * Nat.t) array) (lo : int)
    (hi : int) : unit =
  let mark = arena_mark tl in
  let nl = ref 0 in
  for i = lo to hi - 1 do
    if not (Nat.is_zero (snd pairs.(i))) then incr nl
  done;
  if !nl = 0 then set_one ctx dst
  else begin
    let nl = !nl in
    let idx = Array.make nl 0 in
    let tables = Array.make nl [||] in
    let j = ref 0 and max_bits = ref 0 in
    for i = lo to hi - 1 do
      let b, e = pairs.(i) in
      if not (Nat.is_zero e) then begin
        idx.(!j) <- i;
        max_bits := max !max_bits (Nat.bit_length e);
        let max_d = if Nat.bit_length e > 4 then 15 else Nat.to_int_exn e in
        let t = Array.make (max_d + 1) b in
        (* t.(0) is never read (zero digits are skipped); t.(1) aliases the
           caller's base, which is only ever read. *)
        for d = 2 to max_d do
          let slot = arena_take ctx tl in
          mont_mul_into ctx tl slot t.(d - 1) b;
          t.(d) <- slot
        done;
        tables.(!j) <- t;
        incr j
      end
    done;
    let windows = (!max_bits + 3) / 4 in
    set_one ctx dst;
    for w = windows - 1 downto 0 do
      if w <> windows - 1 then begin
        mont_sqr_into ctx tl dst dst;
        mont_sqr_into ctx tl dst dst;
        mont_sqr_into ctx tl dst dst;
        mont_sqr_into ctx tl dst dst
      end;
      for jj = 0 to nl - 1 do
        let e = snd pairs.(idx.(jj)) in
        let nib = nibble_of e w in
        if nib <> 0 then mont_mul_into ctx tl dst dst tables.(jj).(nib)
      done
    done;
    arena_release tl mark
  end

let msm_slice (ctx : ctx) (pairs : (el * Nat.t) array) ~(lo : int) ~(hi : int) : el =
  if lo < 0 || hi > Array.length pairs || lo > hi then invalid_arg "Modarith.msm_slice";
  with_tls ctx (fun t ->
      let out = Array.make ctx.k 0 in
      msm_into_t ctx t out pairs lo hi;
      out)

let msm (ctx : ctx) (pairs : (el * Nat.t) array) : el =
  msm_slice ctx pairs ~lo:0 ~hi:(Array.length pairs)

(* Modular inverse via Fermat: only valid when the modulus is prime, which
   holds for every context in this repo (field primes and group orders). *)
let inv (ctx : ctx) (a : el) : el =
  if is_zero a then raise Division_by_zero;
  with_tls ctx (fun t ->
      let out = Array.make ctx.k 0 in
      pow_into_t ctx t out a (Nat.sub ctx.modulus Nat.two);
      out)

let modulus ctx = ctx.modulus

let copy (a : el) : el = Array.copy a

(* ---- sessions: scoped access to the in-place kernels ---- *)

(* A session pins the domain-local working state for a whole ladder (a
   curve scalar-mult, an MSM window run) instead of checking it out per
   field op. Arena slots taken inside the session are released when it
   ends. Holding a session, the public one-shot ops on the same ctx from
   the same thread still work (they fall back to a throwaway tls), so a
   session can never deadlock — but hot paths should stay on the session
   ops. *)
module S = struct
  type t = { sctx : ctx; stl : tls }

  let mul (s : t) ~(dst : el) (a : el) (b : el) : unit = mont_mul_into s.sctx s.stl dst a b
  let sqr (s : t) ~(dst : el) (a : el) : unit = mont_sqr_into s.sctx s.stl dst a
  let add (s : t) ~(dst : el) (a : el) (b : el) : unit = add_into s.sctx dst a b
  let sub (s : t) ~(dst : el) (a : el) (b : el) : unit = sub_into s.sctx dst a b
  let pow (s : t) ~(dst : el) (base : el) (e : Nat.t) : unit = pow_into_t s.sctx s.stl dst base e
  let take (s : t) : el = arena_take s.sctx s.stl
  let mark (s : t) : int = arena_mark s.stl
  let release (s : t) (m : int) : unit = arena_release s.stl m
end

let with_session (ctx : ctx) (f : S.t -> 'a) : 'a =
  with_tls ctx (fun tl ->
      let mark = arena_mark tl in
      match f { S.sctx = ctx; stl = tl } with
      | v ->
          arena_release tl mark;
          v
      | exception e ->
          arena_release tl mark;
          raise e)

(* ---- retained reference implementations ----

   Deliberately naive and structurally independent of the CIOS kernels:
   products via [Nat]'s schoolbook multiply, reduction via [Nat]'s binary
   long division, exponentiation by square-and-multiply over those. The
   property suite pins every flat kernel byte-identical to these across
   random operands on all three backend moduli. Cold-path only. *)
module Ref = struct
  let mul (ctx : ctx) (a : el) (b : el) : el =
    of_nat ctx (Nat.rem (Nat.mul (to_nat ctx a) (to_nat ctx b)) ctx.modulus)

  let sqr (ctx : ctx) (a : el) : el = mul ctx a a

  let add (ctx : ctx) (a : el) (b : el) : el =
    of_nat ctx (Nat.rem (Nat.add (to_nat ctx a) (to_nat ctx b)) ctx.modulus)

  let sub (ctx : ctx) (a : el) (b : el) : el =
    (* a - b mod m as a + (m - b): to_nat is always < m. *)
    of_nat ctx
      (Nat.rem (Nat.add (to_nat ctx a) (Nat.sub ctx.modulus (to_nat ctx b))) ctx.modulus)

  let pow (ctx : ctx) (base : el) (e : Nat.t) : el =
    let bits = Nat.bit_length e in
    let acc = ref (one ctx) in
    for i = bits - 1 downto 0 do
      acc := mul ctx !acc !acc;
      if Nat.test_bit e i then acc := mul ctx !acc base
    done;
    !acc

  let msm (ctx : ctx) (pairs : (el * Nat.t) array) : el =
    Array.fold_left (fun acc (b, e) -> mul ctx acc (pow ctx b e)) (one ctx) pairs
end
