(* Small statistics helpers used by tests and the benchmark harness. *)

let mean (xs : float array) : float =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

(* Linear interpolation between closest ranks (the "exclusive of the
   endpoints only when interpolating" convention used by numpy's default):
   rank = p/100 * (n-1); p = 0 and p = 100 are exactly the min and max, and
   a single-element array returns that element for every p. *)
let percentile (xs : float array) (p : float) : float =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg "Stats.percentile: p must be in [0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = min (n - 1) (int_of_float (Float.ceil rank)) in
  let frac = rank -. Float.floor rank in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.

(* Pearson chi-square statistic against a uniform expectation; used by the
   mixing-quality tests to check that permutation networks produce
   near-uniform output positions. *)
let chi_square_uniform (counts : int array) : float =
  let n = Array.fold_left ( + ) 0 counts in
  let k = Array.length counts in
  if k = 0 || n = 0 then 0.
  else
    let expected = float_of_int n /. float_of_int k in
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts

(* Total variation distance between an empirical distribution (counts) and
   the uniform distribution over the same support. *)
let tv_distance_uniform (counts : int array) : float =
  let n = Array.fold_left ( + ) 0 counts in
  let k = Array.length counts in
  if k = 0 || n = 0 then 0.
  else
    let u = 1. /. float_of_int k in
    let acc =
      Array.fold_left
        (fun acc c -> acc +. Float.abs ((float_of_int c /. float_of_int n) -. u))
        0. counts
    in
    acc /. 2.

(* Bucket of [x] in a [buckets]-way equal-width partition of [lo, hi].
   Half-open buckets [lo + i*w, lo + (i+1)*w) except the last, which is
   closed — a value exactly at [hi] counts in the final bucket instead of
   falling off the edge. [None] for values outside [lo, hi]. *)
let bucket_index ~(buckets : int) ~(lo : float) ~(hi : float) (x : float) : int option =
  if buckets <= 0 || hi <= lo then invalid_arg "Stats.bucket_index";
  if Float.is_nan x || x < lo || x > hi then None
  else begin
    let b = int_of_float ((x -. lo) /. (hi -. lo) *. float_of_int buckets) in
    Some (if b >= buckets then buckets - 1 else b)
  end

let histogram ~(buckets : int) ~(lo : float) ~(hi : float) (xs : float array) :
    int array =
  if buckets <= 0 || hi <= lo then invalid_arg "Stats.histogram";
  let h = Array.make buckets 0 in
  Array.iter
    (fun x ->
      match bucket_index ~buckets ~lo ~hi x with
      | Some b -> h.(b) <- h.(b) + 1
      | None -> ())
    xs;
  h
