(** Statistics helpers for tests and the benchmark harness. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0..100]: linear interpolation between
    closest ranks at rank [p/100 * (n-1)]. [p = 0] is the minimum, [p =
    100] the maximum, and a single-element array returns its element for
    every [p].
    @raise Invalid_argument on an empty array or [p] outside [0, 100]. *)

val median : float array -> float

val chi_square_uniform : int array -> float
(** Pearson chi-square statistic of the counts against a uniform expectation
    over all cells. *)

val tv_distance_uniform : int array -> float
(** Total-variation distance between the empirical distribution given by
    [counts] and the uniform distribution on the same support. *)

val bucket_index : buckets:int -> lo:float -> hi:float -> float -> int option
(** Index of the equal-width bucket of [lo, hi] containing the value:
    half-open buckets except the last, which includes [hi] exactly. [None]
    outside [lo, hi] (or on NaN).
    @raise Invalid_argument when [buckets <= 0] or [hi <= lo]. *)

val histogram : buckets:int -> lo:float -> hi:float -> float array -> int array
(** Bucket counts per {!bucket_index}; out-of-range values are dropped. *)
