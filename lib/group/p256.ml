(* NIST P-256 (secp256r1), the curve used by the paper's prototype (§5).

   Short Weierstrass y² = x³ − 3x + b over the P-256 field prime. Internal
   arithmetic uses Jacobian projective coordinates over the generic
   Montgomery contexts of [Atom_nat.Modarith]; the public element type is
   the canonical affine form so that [equal] and [to_bytes] are structural.

   The Jacobian engine is allocation-free in steady state: a working point
   ([jp]) is three preallocated flat limb buffers, the curve formulas write
   through [Modarith.S] sessions, and every temporary comes from the
   per-domain arena — a whole scalar ladder allocates nothing beyond its
   destination point. The boxed affine world exists only at the public API
   edge ([to_affine]/[to_affine_batch] canonicalize whatever Jacobian
   representative the in-place schedule produced, so public results are
   unchanged).

   Message embedding is try-and-increment: a 28-byte payload is placed in a
   fixed slice of the x-coordinate together with a 16-bit counter, and the
   counter is advanced until x³ − 3x + b is a square (probability 1/2 per
   attempt). The paper packs 32 bytes per point; we reserve 4 bytes of
   framing, and the modeled cost tables use the paper's packing so figure
   shapes are unaffected (see DESIGN.md, Known deviations). *)

open Atom_nat

let p = Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
let n = Nat.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"
let b_const = Nat.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"
let gx = Nat.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
let gy = Nat.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"

let fp = Modarith.create p
let fb = Modarith.of_nat fp b_const
let three = Modarith.of_int fp 3
let sqrt_exp = Nat.shift_right (Nat.add p Nat.one) 2 (* (p+1)/4; valid since p ≡ 3 mod 4 *)

module Scalar = struct
  type t = Modarith.el

  let fq = Modarith.create n
  let order = n
  let zero = Modarith.zero fq
  let one = Modarith.one fq
  let of_nat v = Modarith.of_nat fq v
  let to_nat s = Modarith.to_nat fq s
  let of_int i = Modarith.of_int fq i
  let add = Modarith.add fq
  let sub = Modarith.sub fq
  let mul = Modarith.mul fq
  let neg = Modarith.neg fq
  let inv = Modarith.inv fq
  let equal = Modarith.equal
  let is_zero = Modarith.is_zero
  let random rng = of_nat (Nat.random_below rng order)
  let of_bytes_mod s = of_nat (Nat.of_bytes_be s)
  let to_bytes s = Nat.to_bytes_be ~length:32 (to_nat s)
end

type t = Inf | Aff of Modarith.el * Modarith.el
type scalar = Scalar.t

let name = "p256"
let one = Inf
let equal a b =
  match (a, b) with
  | Inf, Inf -> true
  | Aff (x1, y1), Aff (x2, y2) -> Modarith.equal x1 x2 && Modarith.equal y1 y2
  | _ -> false

let is_one = function Inf -> true | Aff _ -> false

(* y² = x³ - 3x + b *)
let rhs_of_x (x : Modarith.el) : Modarith.el =
  let x3 = Modarith.mul fp (Modarith.sqr fp x) x in
  Modarith.add fp (Modarith.sub fp x3 (Modarith.mul fp three x)) fb

let on_curve = function
  | Inf -> true
  | Aff (x, y) -> Modarith.equal (Modarith.sqr fp y) (rhs_of_x x)

(* ---- Jacobian internals, in place over flat field buffers ----

   A [jp] is a Jacobian point whose coordinates are preallocated limb
   buffers: [jp_fresh] allocates a long-lived point, [jp_take] checks one
   out of the session arena (valid until the enclosing release point).
   Infinity is z = 0. The formulas below stage new coordinates in arena
   temporaries and copy back at the end, so every read of the old point
   precedes the writes and a point can safely be its own destination. *)

type jp = { x : Modarith.el; y : Modarith.el; z : Modarith.el }

let jp_fresh () = { x = Modarith.alloc fp; y = Modarith.alloc fp; z = Modarith.alloc fp }

let jp_take s = { x = Modarith.S.take s; y = Modarith.S.take s; z = Modarith.S.take s }

let jp_is_inf pt = Modarith.is_zero pt.z

let jp_set_inf pt =
  Modarith.set_one fp pt.x;
  Modarith.set_one fp pt.y;
  Modarith.set_zero pt.z

let jp_set_aff pt xa ya =
  Modarith.copy_into ~dst:pt.x xa;
  Modarith.copy_into ~dst:pt.y ya;
  Modarith.set_one fp pt.z

let jp_copy ~dst src =
  Modarith.copy_into ~dst:dst.x src.x;
  Modarith.copy_into ~dst:dst.y src.y;
  Modarith.copy_into ~dst:dst.z src.z

let jp_of_point pt = function Inf -> jp_set_inf pt | Aff (x, y) -> jp_set_aff pt x y

(* pt <- 2·pt: dbl-2001-b for a = -3. *)
let jdbl (s : Modarith.S.t) (pt : jp) : unit =
  if jp_is_inf pt || Modarith.is_zero pt.y then jp_set_inf pt
  else begin
    let m = Modarith.S.mark s in
    let delta = Modarith.S.take s and gamma = Modarith.S.take s and beta = Modarith.S.take s in
    let alpha = Modarith.S.take s and t = Modarith.S.take s and u = Modarith.S.take s in
    let x3 = Modarith.S.take s and y3 = Modarith.S.take s and z3 = Modarith.S.take s in
    Modarith.S.sqr s ~dst:delta pt.z;
    Modarith.S.sqr s ~dst:gamma pt.y;
    Modarith.S.mul s ~dst:beta pt.x gamma;
    Modarith.S.sub s ~dst:t pt.x delta;
    Modarith.S.add s ~dst:u pt.x delta;
    Modarith.S.mul s ~dst:alpha t u;
    Modarith.S.mul s ~dst:alpha three alpha;
    (* x3 = α² − 8β *)
    Modarith.S.add s ~dst:t beta beta;
    Modarith.S.add s ~dst:t t t;
    (* t = 4β, kept for y3 *)
    Modarith.S.add s ~dst:u t t;
    Modarith.S.sqr s ~dst:x3 alpha;
    Modarith.S.sub s ~dst:x3 x3 u;
    (* z3 = (y+z)² − γ − δ *)
    Modarith.S.add s ~dst:z3 pt.y pt.z;
    Modarith.S.sqr s ~dst:z3 z3;
    Modarith.S.sub s ~dst:z3 z3 gamma;
    Modarith.S.sub s ~dst:z3 z3 delta;
    (* y3 = α·(4β − x3) − 8γ² *)
    Modarith.S.sub s ~dst:t t x3;
    Modarith.S.mul s ~dst:y3 alpha t;
    Modarith.S.sqr s ~dst:u gamma;
    Modarith.S.add s ~dst:u u u;
    Modarith.S.add s ~dst:u u u;
    Modarith.S.add s ~dst:u u u;
    Modarith.S.sub s ~dst:y3 y3 u;
    Modarith.copy_into ~dst:pt.x x3;
    Modarith.copy_into ~dst:pt.y y3;
    Modarith.copy_into ~dst:pt.z z3;
    Modarith.S.release s m
  end

(* p1 <- p1 + (x2, y2), affine second operand (z2 = 1): madd-2004-hmv,
   ~4 field mults cheaper than the general Jacobian add. *)
let jadd_aff (s : Modarith.S.t) (p1 : jp) (x2 : Modarith.el) (y2 : Modarith.el) : unit =
  if jp_is_inf p1 then jp_set_aff p1 x2 y2
  else begin
    let m = Modarith.S.mark s in
    let z1z1 = Modarith.S.take s and u2 = Modarith.S.take s and s2 = Modarith.S.take s in
    let h = Modarith.S.take s and r = Modarith.S.take s in
    Modarith.S.sqr s ~dst:z1z1 p1.z;
    Modarith.S.mul s ~dst:u2 x2 z1z1;
    Modarith.S.mul s ~dst:s2 p1.z z1z1;
    Modarith.S.mul s ~dst:s2 y2 s2;
    Modarith.S.sub s ~dst:h u2 p1.x;
    Modarith.S.sub s ~dst:r s2 p1.y;
    if Modarith.is_zero h then begin
      let dbl = Modarith.is_zero r in
      Modarith.S.release s m;
      if dbl then jdbl s p1 else jp_set_inf p1
    end
    else begin
      let hh = Modarith.S.take s and hhh = Modarith.S.take s and v = Modarith.S.take s in
      let x3 = Modarith.S.take s and y3 = Modarith.S.take s and t = Modarith.S.take s in
      Modarith.S.sqr s ~dst:hh h;
      Modarith.S.mul s ~dst:hhh h hh;
      Modarith.S.mul s ~dst:v p1.x hh;
      Modarith.S.sqr s ~dst:x3 r;
      Modarith.S.sub s ~dst:x3 x3 hhh;
      Modarith.S.add s ~dst:t v v;
      Modarith.S.sub s ~dst:x3 x3 t;
      Modarith.S.sub s ~dst:y3 v x3;
      Modarith.S.mul s ~dst:y3 r y3;
      Modarith.S.mul s ~dst:t p1.y hhh;
      Modarith.S.sub s ~dst:y3 y3 t;
      Modarith.S.mul s ~dst:p1.z p1.z h;
      Modarith.copy_into ~dst:p1.x x3;
      Modarith.copy_into ~dst:p1.y y3;
      Modarith.S.release s m
    end
  end

(* p1 <- p1 + p2; p2 is only read. (p1 == p2 degenerates to h = r = 0 and
   takes the doubling branch, so physical aliasing is still correct.) *)
let jadd (s : Modarith.S.t) (p1 : jp) (p2 : jp) : unit =
  if jp_is_inf p1 then jp_copy ~dst:p1 p2
  else if jp_is_inf p2 then ()
  else begin
    let m = Modarith.S.mark s in
    let z1z1 = Modarith.S.take s and z2z2 = Modarith.S.take s in
    let u1 = Modarith.S.take s and u2 = Modarith.S.take s in
    let s1 = Modarith.S.take s and s2 = Modarith.S.take s in
    let h = Modarith.S.take s and r = Modarith.S.take s in
    Modarith.S.sqr s ~dst:z1z1 p1.z;
    Modarith.S.sqr s ~dst:z2z2 p2.z;
    Modarith.S.mul s ~dst:u1 p1.x z2z2;
    Modarith.S.mul s ~dst:u2 p2.x z1z1;
    Modarith.S.mul s ~dst:s1 p2.z z2z2;
    Modarith.S.mul s ~dst:s1 p1.y s1;
    Modarith.S.mul s ~dst:s2 p1.z z1z1;
    Modarith.S.mul s ~dst:s2 p2.y s2;
    Modarith.S.sub s ~dst:h u2 u1;
    Modarith.S.sub s ~dst:r s2 s1;
    if Modarith.is_zero h then begin
      let dbl = Modarith.is_zero r in
      Modarith.S.release s m;
      if dbl then jdbl s p1 else jp_set_inf p1
    end
    else begin
      let hh = Modarith.S.take s and hhh = Modarith.S.take s and v = Modarith.S.take s in
      let x3 = Modarith.S.take s and y3 = Modarith.S.take s and t = Modarith.S.take s in
      Modarith.S.sqr s ~dst:hh h;
      Modarith.S.mul s ~dst:hhh h hh;
      Modarith.S.mul s ~dst:v u1 hh;
      Modarith.S.sqr s ~dst:x3 r;
      Modarith.S.sub s ~dst:x3 x3 hhh;
      Modarith.S.add s ~dst:t v v;
      Modarith.S.sub s ~dst:x3 x3 t;
      Modarith.S.sub s ~dst:y3 v x3;
      Modarith.S.mul s ~dst:y3 r y3;
      Modarith.S.mul s ~dst:t s1 hhh;
      Modarith.S.sub s ~dst:y3 y3 t;
      Modarith.S.mul s ~dst:p1.z p1.z p2.z;
      Modarith.S.mul s ~dst:p1.z p1.z h;
      Modarith.copy_into ~dst:p1.x x3;
      Modarith.copy_into ~dst:p1.y y3;
      Modarith.S.release s m
    end
  end

(* Canonicalization back to the boxed affine world. These run outside any
   session (Fermat inversion and the public allocating ops), and their
   results are fresh buffers — never aliases of the (reusable) jp ones. *)
let to_affine (j : jp) : t =
  if jp_is_inf j then Inf
  else begin
    let zinv = Modarith.inv fp j.z in
    let zinv2 = Modarith.sqr fp zinv in
    let zinv3 = Modarith.mul fp zinv2 zinv in
    Aff (Modarith.mul fp j.x zinv2, Modarith.mul fp j.y zinv3)
  end

(* Montgomery's simultaneous-inversion trick: normalize a whole batch of
   Jacobian points with a single field inversion (plus 3 mults per point
   for the prefix bookkeeping). *)
let to_affine_batch (js : jp array) : t array =
  let n = Array.length js in
  let prefix = Array.make n (Modarith.one fp) in
  let acc = ref (Modarith.one fp) in
  for i = 0 to n - 1 do
    prefix.(i) <- !acc;
    if not (jp_is_inf js.(i)) then acc := Modarith.mul fp !acc js.(i).z
  done;
  let out = Array.make n Inf in
  let inv_acc = ref (Modarith.inv fp !acc) in
  for i = n - 1 downto 0 do
    let j = js.(i) in
    if not (jp_is_inf j) then begin
      let zinv = Modarith.mul fp !inv_acc prefix.(i) in
      inv_acc := Modarith.mul fp !inv_acc j.z;
      let zinv2 = Modarith.sqr fp zinv in
      out.(i) <- Aff (Modarith.mul fp j.x zinv2, Modarith.mul fp j.y (Modarith.mul fp zinv2 zinv))
    end
  done;
  out

let mul a b =
  match (a, b) with
  | Inf, _ -> b
  | _, Inf -> a
  | Aff (ax, ay), Aff (bx, by) ->
      let r = jp_fresh () in
      Modarith.with_session fp (fun s ->
          jp_set_aff r ax ay;
          jadd_aff s r bx by);
      to_affine r

let inv = function Inf -> Inf | Aff (x, y) -> Aff (x, Modarith.neg fp y)
let div a b = mul a (inv b)

let generator = Aff (Modarith.of_nat fp gx, Modarith.of_nat fp gy)

(* ---- Fast-path scalar-multiplication engine ----

   Four ingredients (see DESIGN.md, "Performance engineering"):
   - mixed Jacobian+affine addition, ~4 field mults cheaper than the
     general Jacobian add, used everywhere a precomputed table is affine;
   - batch affine normalization (Montgomery's simultaneous-inversion
     trick): k points cost one Fermat inversion instead of k;
   - a precomputed fixed-base comb table for the generator (64 4-bit
     windows × 15 entries), making [pow_gen] a doubling-free sum of ≤ 64
     table lookups;
   - an MRU cache of per-base affine window tables for long-lived bases
     (public keys): the table is built on a base's second sighting, so
     one-shot bases never pay the normalization inversion. *)

let nibble_of (e : Nat.t) (w : int) : int =
  (if Nat.test_bit e ((4 * w) + 3) then 8 else 0)
  lor (if Nat.test_bit e ((4 * w) + 2) then 4 else 0)
  lor (if Nat.test_bit e ((4 * w) + 1) then 2 else 0)
  lor if Nat.test_bit e (4 * w) then 1 else 0

(* Fixed-base comb table: gen_table.(w).(d-1) = (d·16^w)·G in affine,
   for the 64 4-bit windows of a P-256 scalar. d·16^w is never ≡ 0 mod n
   (it is positive, < 2^256 < 2n, and ≠ n by parity), so every entry is
   finite. Built on first use with one batch normalization (~1 ms, once);
   [Once] rather than [lazy] because pool workers may race to force it. *)
let gen_table : t array array Atom_exec.Once.t =
  Atom_exec.Once.make (fun () ->
      let windows = 64 in
      let flat = Array.init (windows * 15) (fun _ -> jp_fresh ()) in
      let base = jp_fresh () in
      Modarith.with_session fp (fun s ->
          jp_of_point base generator;
          for w = 0 to windows - 1 do
            jp_copy ~dst:flat.(w * 15) base;
            for d = 2 to 15 do
              jp_copy ~dst:flat.((w * 15) + d - 1) flat.((w * 15) + d - 2);
              jadd s flat.((w * 15) + d - 1) base
            done;
            if w < windows - 1 then begin
              jdbl s base;
              jdbl s base;
              jdbl s base;
              jdbl s base
            end
          done);
      let aff = to_affine_batch flat in
      Array.init windows (fun w -> Array.sub aff (w * 15) 15))

(* dst <- g^e: one mixed addition per nonzero nibble, no doublings at all.
   Callers force [gen_table] before entering the session. *)
let comb_into (s : Modarith.S.t) (dst : jp) (e : Nat.t) : unit =
  let table = Atom_exec.Once.get gen_table in
  let windows = (Nat.bit_length e + 3) / 4 in
  jp_set_inf dst;
  for w = 0 to windows - 1 do
    let d = nibble_of e w in
    if d <> 0 then
      match table.(w).(d - 1) with Inf -> () | Aff (x, y) -> jadd_aff s dst x y
  done

let comb_point (e : Nat.t) : t =
  ignore (Atom_exec.Once.get gen_table);
  let r = jp_fresh () in
  Modarith.with_session fp (fun s -> comb_into s r e);
  to_affine r

let pow_gen (k : scalar) : t =
  Atom_obs.Opcount.note_pow_gen ();
  let e = Scalar.to_nat k in
  if Nat.is_zero e then Inf else comb_point e

(* 15-entry affine window table for an arbitrary base: one batch
   normalization (one inversion) per table. *)
let affine_table (base : t) : t array =
  let jt = Array.init 15 (fun _ -> jp_fresh ()) in
  (match base with
  | Inf -> Array.iter jp_set_inf jt
  | Aff (bx, by) ->
      Modarith.with_session fp (fun s ->
          jp_set_aff jt.(0) bx by;
          for d = 1 to 14 do
            jp_copy ~dst:jt.(d) jt.(d - 1);
            jadd_aff s jt.(d) bx by
          done));
  to_affine_batch jt

(* MRU cache of per-base affine tables, for long-lived bases (group public
   keys, DKG share keys). A base's first sighting only records its key; the
   table is built — and the inversion spent — from the second sighting on,
   so one-shot bases (shuffle commitments, fresh ciphertext components)
   cost nothing beyond an O(cap) key scan. Domain-local: each pool worker
   warms its own copy, so there is no cross-domain sharing to synchronize
   (systhread interleavings within a domain can at worst waste a rebuild —
   tables are deterministic in the base). *)
type base_entry = { key : t; mutable table : t array option }

let base_cache_key : base_entry list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let base_cache_cap = 16

let cached_table (base : t) : t array option =
  let base_cache = Domain.DLS.get base_cache_key in
  let rec extract acc = function
    | [] -> None
    | e :: rest when equal e.key base -> Some (e, List.rev_append acc rest)
    | e :: rest -> extract (e :: acc) rest
  in
  match extract [] !base_cache with
  | Some (e, rest) ->
      base_cache := e :: rest;
      let table =
        match e.table with
        | Some t -> t
        | None ->
            let t = affine_table base in
            e.table <- Some t;
            t
      in
      Some table
  | None ->
      let tail = List.filteri (fun i _ -> i < base_cache_cap - 1) !base_cache in
      base_cache := { key = base; table = None } :: tail;
      None

(* dst <- base^e, 4-bit windowed double-and-add over an affine table. *)
let windowed_into (s : Modarith.S.t) (dst : jp) (tab : t array) (e : Nat.t) : unit =
  let windows = (Nat.bit_length e + 3) / 4 in
  jp_set_inf dst;
  for w = windows - 1 downto 0 do
    if w <> windows - 1 then begin
      jdbl s dst;
      jdbl s dst;
      jdbl s dst;
      jdbl s dst
    end;
    let d = nibble_of e w in
    if d <> 0 then
      match tab.(d - 1) with Inf -> () | Aff (x, y) -> jadd_aff s dst x y
  done

(* One-shot path: per-call Jacobian table on the arena, no inversion spent
   on it. *)
let windowed_oneshot_into (s : Modarith.S.t) (dst : jp) (bx : Modarith.el) (by : Modarith.el)
    (e : Nat.t) : unit =
  let m = Modarith.S.mark s in
  let table = Array.init 16 (fun _ -> jp_take s) in
  jp_set_aff table.(1) bx by;
  for i = 2 to 15 do
    jp_copy ~dst:table.(i) table.(i - 1);
    jadd_aff s table.(i) bx by
  done;
  let windows = (Nat.bit_length e + 3) / 4 in
  jp_set_inf dst;
  for w = windows - 1 downto 0 do
    if w <> windows - 1 then begin
      jdbl s dst;
      jdbl s dst;
      jdbl s dst;
      jdbl s dst
    end;
    let d = nibble_of e w in
    if d <> 0 then jadd s dst table.(d)
  done;
  Modarith.S.release s m

let pow (base : t) (k : scalar) : t =
  Atom_obs.Opcount.note_pow ();
  let e = Scalar.to_nat k in
  if Nat.is_zero e || is_one base then Inf
  else if equal base generator then comb_point e
  else begin
    let r = jp_fresh () in
    (match (cached_table base, base) with
    | Some tab, _ -> Modarith.with_session fp (fun s -> windowed_into s r tab e)
    | None, Aff (bx, by) -> Modarith.with_session fp (fun s -> windowed_oneshot_into s r bx by e)
    | None, Inf -> assert false);
    to_affine r
  end

(* ---- Multi-scalar multiplication ---- *)

(* Straus (shared doublings, per-base 4-bit window tables) for small
   batches, over the pair slice [lo, hi). A pair's window table is either a
   cached affine table or a per-call Jacobian table on the arena, built
   only up to the largest nibble the scalar can produce — tiny scalars
   (e.g. the all-ones MSM of combine_pks) skip table construction
   entirely. *)
type straus_tab = T_aff of t array | T_jac of jp array

let msm_straus (bases : t array) (exps : Nat.t array) ~(lo : int) ~(hi : int)
    ~(use_cache : bool) : jp =
  let n = hi - lo in
  let acc = jp_fresh () in
  Modarith.with_session fp (fun s ->
      let m0 = Modarith.S.mark s in
      let max_bits = ref 0 in
      for i = lo to hi - 1 do
        max_bits := max !max_bits (Nat.bit_length exps.(i))
      done;
      let tabs =
        Array.init n (fun j ->
            let i = lo + j in
            match (if use_cache then cached_table bases.(i) else None) with
            | Some tab -> T_aff tab
            | None ->
                let max_d = if Nat.bit_length exps.(i) > 4 then 15 else Nat.to_int_exn exps.(i) in
                let table = Array.init (max_d + 1) (fun _ -> jp_take s) in
                (match bases.(i) with
                | Inf -> Array.iter jp_set_inf table
                | Aff (bx, by) ->
                    if max_d >= 1 then jp_set_aff table.(1) bx by;
                    for d = 2 to max_d do
                      jp_copy ~dst:table.(d) table.(d - 1);
                      jadd_aff s table.(d) bx by
                    done);
                T_jac table)
      in
      let windows = (!max_bits + 3) / 4 in
      jp_set_inf acc;
      for w = windows - 1 downto 0 do
        if w <> windows - 1 then begin
          jdbl s acc;
          jdbl s acc;
          jdbl s acc;
          jdbl s acc
        end;
        for j = 0 to n - 1 do
          let d = nibble_of exps.(lo + j) w in
          if d <> 0 then
            match tabs.(j) with
            | T_aff tab -> (
                match tab.(d - 1) with Inf -> () | Aff (x, y) -> jadd_aff s acc x y)
            | T_jac table -> jadd s acc table.(d)
        done
      done;
      Modarith.S.release s m0);
  acc

(* Pippenger bucket method for large batches: per window, drop each point
   into the bucket of its digit, then aggregate buckets with two running
   sums. ~(256/c)·(n + 2^{c+1}) additions overall. Windows are mutually
   independent, so a pool computes the per-window sums in parallel (each
   worker in its own session, buckets on its own arena); the combine
   (c doublings between windows, ≈256 doublings total) stays on the caller
   and is negligible next to the bucket work. The affine result is
   identical either way — [to_affine] canonicalizes whatever Jacobian
   representative the addition order produced. *)
let msm_pippenger ?pool (bases : t array) (exps : Nat.t array) : jp =
  let n = Array.length bases in
  let c = if n < 512 then 6 else if n < 2048 then 7 else 8 in
  let max_bits = ref 0 in
  for i = 0 to n - 1 do
    max_bits := max !max_bits (Nat.bit_length exps.(i))
  done;
  let digit e off =
    let d = ref 0 in
    for b = c - 1 downto 0 do
      d := (!d lsl 1) lor if Nat.test_bit e (off + b) then 1 else 0
    done;
    !d
  in
  let nwin = (!max_bits + c - 1) / c in
  let nbuckets = (1 lsl c) - 1 in
  let window_sum w =
    let sum = jp_fresh () in
    Modarith.with_session fp (fun s ->
        let m = Modarith.S.mark s in
        let buckets =
          Array.init nbuckets (fun _ ->
              let b = jp_take s in
              jp_set_inf b;
              b)
        in
        for i = 0 to n - 1 do
          let d = digit exps.(i) (w * c) in
          if d <> 0 then
            match bases.(i) with Inf -> () | Aff (x, y) -> jadd_aff s buckets.(d - 1) x y
        done;
        let run = jp_take s in
        jp_set_inf run;
        jp_set_inf sum;
        for d = nbuckets - 1 downto 0 do
          jadd s run buckets.(d);
          jadd s sum run
        done;
        Modarith.S.release s m);
    sum
  in
  let wsums = Atom_exec.Pool.tabulate ?pool nwin window_sum in
  let acc = jp_fresh () in
  Modarith.with_session fp (fun s ->
      jp_set_inf acc;
      for w = nwin - 1 downto 0 do
        if w <> nwin - 1 then
          for _ = 1 to c do
            jdbl s acc
          done;
        jadd s acc wsums.(w)
      done);
  acc

let pippenger_threshold = 200

(* Below the Pippenger threshold a pooled MSM splits the pairs into
   contiguous chunks, runs Straus on each slice independently (no sub-array
   materialization), and adds the chunk partials in index order on the
   caller. *)
let msm_straus_pooled pool (bases : t array) (exps : Nat.t array) : jp =
  let n = Array.length bases in
  let nchunks = min n (Atom_exec.Pool.size pool * 4) in
  let partials =
    Atom_exec.Pool.tabulate ~pool nchunks (fun ci ->
        let lo = ci * n / nchunks and hi = (ci + 1) * n / nchunks in
        msm_straus bases exps ~lo ~hi ~use_cache:false)
  in
  let acc = jp_fresh () in
  Modarith.with_session fp (fun s ->
      jp_set_inf acc;
      Array.iter (fun partial -> jadd s acc partial) partials);
  acc

let msm_pool_threshold = 64

let msm_raw ?pool (pairs : (t * scalar) array) : t =
  (* Generator terms collapse into a single comb exponent (g^a·g^b = g^{a+b});
     identity bases and zero scalars drop out. The cache is consulted only
     for small MSMs — flooding it with a shuffle-sized batch of one-shot
     bases would evict the long-lived public keys. *)
  let gen_k = ref Scalar.zero in
  let rest = ref [] in
  Array.iter
    (fun (x, k) ->
      if is_one x || Scalar.is_zero k then ()
      else if equal x generator then gen_k := Scalar.add !gen_k k
      else rest := (x, Scalar.to_nat k) :: !rest)
    pairs;
  let rest = Array.of_list !rest in
  let n = Array.length rest in
  let main =
    if n = 0 then None
    else begin
      let bases = Array.map fst rest and exps = Array.map snd rest in
      if n > pippenger_threshold then Some (msm_pippenger ?pool bases exps)
      else begin
        match Atom_exec.Pool.resolve pool with
        | Some pl when n >= msm_pool_threshold && Atom_exec.Pool.size pl > 1 ->
            (* The cache is never consulted here: it only applies to MSMs
               of <= 8 pairs, far below the pooling threshold. *)
            Some (msm_straus_pooled pl bases exps)
        | _ -> Some (msm_straus bases exps ~lo:0 ~hi:n ~use_cache:(Array.length pairs <= 8))
      end
    end
  in
  match (main, Scalar.is_zero !gen_k) with
  | None, true -> Inf
  | None, false -> comb_point (Scalar.to_nat !gen_k)
  | Some j, true -> to_affine j
  | Some j, false ->
      ignore (Atom_exec.Once.get gen_table);
      let g = jp_fresh () in
      Modarith.with_session fp (fun s ->
          comb_into s g (Scalar.to_nat !gen_k);
          jadd s j g);
      to_affine j

let msm ?pool (pairs : (t * scalar) array) : t =
  Atom_obs.Opcount.note_msm ~terms:(Array.length pairs);
  msm_raw ?pool pairs

(* pow2 goes through [msm_raw] so it tallies as one composite op, not also
   as an msm call. *)
let pow2 (a : t) (j : scalar) (b : t) (k : scalar) : t =
  Atom_obs.Opcount.note_pow2 ();
  msm_raw [| (a, j); (b, k) |]

(* ---- Batch fixed-base exponentiation with one shared normalization ----

   The per-scalar ladders are independent and go to the pool, each worker
   running in its own session on its own arena; the single shared
   normalization inversion stays on the caller. Any table the ladders read
   (the comb table, a per-base affine table) is built on the caller before
   the parallel region and only read inside it. *)

let pow_gen_batch_raw ?pool (ks : scalar array) : t array =
  ignore (Atom_exec.Once.get gen_table);
  to_affine_batch
    (Atom_exec.Pool.map ?pool
       (fun k ->
         let e = Scalar.to_nat k in
         let r = jp_fresh () in
         if Nat.is_zero e then jp_set_inf r
         else Modarith.with_session fp (fun s -> comb_into s r e);
         r)
       ks)

let pow_gen_batch ?pool (ks : scalar array) : t array =
  Atom_obs.Opcount.note_batch ~scalars:(Array.length ks);
  pow_gen_batch_raw ?pool ks

let pow_batch ?pool (base : t) (ks : scalar array) : t array =
  Atom_obs.Opcount.note_batch ~scalars:(Array.length ks);
  if Array.length ks = 0 then [||]
  else if is_one base then Array.map (fun _ -> Inf) ks
  else if equal base generator then pow_gen_batch_raw ?pool ks
  else begin
    let tab = match cached_table base with Some t -> t | None -> affine_table base in
    to_affine_batch
      (Atom_exec.Pool.map ?pool
         (fun k ->
           let e = Scalar.to_nat k in
           let r = jp_fresh () in
           if Nat.is_zero e then jp_set_inf r
           else Modarith.with_session fp (fun s -> windowed_into s r tab e);
           r)
         ks)
  end

let element_bytes = 33

let to_bytes = function
  | Inf -> String.make element_bytes '\000'
  | Aff (x, y) ->
      let y_odd = Nat.is_odd (Modarith.to_nat fp y) in
      let prefix = if y_odd then '\003' else '\002' in
      String.make 1 prefix ^ Nat.to_bytes_be ~length:32 (Modarith.to_nat fp x)

(* Square root mod p via (p+1)/4; returns None if the input is a
   non-residue. *)
let sqrt (v : Modarith.el) : Modarith.el option =
  let r = Modarith.pow fp v sqrt_exp in
  if Modarith.equal (Modarith.sqr fp r) v then Some r else None

(* Decode [element_bytes] at [pos] without materializing the slice (the
   x-coordinate is read straight out of the buffer). Decompression solves
   the curve equation for y and the cofactor is 1, so a decoded point is
   on the curve by construction — decode is inherently validating. *)
let of_bytes_sub s ~pos =
  if pos < 0 || pos + element_bytes > String.length s then None
  else
    match s.[pos] with
    | '\000' ->
        let rec all_zero i = i >= element_bytes || (s.[pos + i] = '\000' && all_zero (i + 1)) in
        if all_zero 1 then Some Inf else None
    | '\002' | '\003' -> begin
        let xv = Nat.of_bytes_be_sub s ~pos:(pos + 1) ~len:32 in
        if Nat.compare xv p >= 0 then None
        else begin
          let x = Modarith.of_nat fp xv in
          match sqrt (rhs_of_x x) with
          | None -> None
          | Some y ->
              let y_odd = Nat.is_odd (Modarith.to_nat fp y) in
              let want_odd = s.[pos] = '\003' in
              let y = if y_odd = want_odd then y else Modarith.neg fp y in
              Some (Aff (x, y))
        end
      end
    | _ -> None

let of_bytes s = if String.length s <> element_bytes then None else of_bytes_sub s ~pos:0

(* Membership is the curve equation; [Inf] is the group identity and a
   member. Only hand-built [Aff] values can fail (the type is exposed for
   known-answer tests), so the batch check over decoded frames is pure
   defense in depth — but it is cheap (two squarings and two
   multiplications per point, no inversion) and pools above the
   [Naive_check] threshold. *)
let is_member = on_curve

include Group_intf.Naive_check (struct
  type nonrec t = t

  let is_member = is_member
end)

(* Decode already validates (see [of_bytes_sub]), so there is nothing
   left to defer: [elt] is the point itself and discharge re-runs the
   curve equation only as a cross-check on hand-built values that could
   enter through the exposed constructor. *)
module Unverified = struct
  type elt = t

  let of_bytes = of_bytes
  let of_bytes_sub = of_bytes_sub
  let discharge (e : elt) : t option = if on_curve e then Some e else None

  let discharge_batch ?pool (els : elt array) : (t array, int) result =
    if check_batch ?pool els then Ok els
    else Error (match find_non_member els with Some i -> i | None -> 0)
end

let embed_bytes = 28
let embed_marker = '\x01'

let embed payload =
  if String.length payload > embed_bytes then None
  else begin
    let padded = String.make (embed_bytes - String.length payload) '\000' ^ payload in
    let rec try_counter counter =
      if counter > 0xffff then None (* probability 2^-65536: unreachable *)
      else begin
        let xb =
          Bytes.of_string
            (String.concat ""
               [
                 "\000"; padded;
                 String.init 2 (fun i -> Char.chr ((counter lsr (8 * (1 - i))) land 0xff));
                 String.make 1 embed_marker;
               ])
        in
        let x = Modarith.of_nat fp (Nat.of_bytes_be (Bytes.to_string xb)) in
        match sqrt (rhs_of_x x) with
        | Some y -> Some (Aff (x, y))
        | None -> try_counter (counter + 1)
      end
    in
    try_counter 0
  end

let extract = function
  | Inf -> None
  | Aff (x, _) ->
      let xb = Nat.to_bytes_be ~length:32 (Modarith.to_nat fp x) in
      if xb.[0] = '\000' && xb.[31] = embed_marker then Some (String.sub xb 1 embed_bytes)
      else None

let random rng = pow_gen (Scalar.random rng)
let hash_to_scalar msg = Scalar.of_bytes_mod (Atom_hash.Sha256.digest msg)

(* Hash-to-curve by try-and-increment on hashed x candidates; the resulting
   point has a publicly unknown discrete log. *)
let of_hash label =
  let rec go ctr =
    let digest = Atom_hash.Sha256.digest_list [ "p256-of-hash"; label; string_of_int ctr ] in
    let xv = Nat.of_bytes_be digest in
    if Nat.compare xv p >= 0 then go (ctr + 1)
    else begin
      let x = Modarith.of_nat fp xv in
      match sqrt (rhs_of_x x) with
      | Some y when not (Modarith.is_zero y) -> Aff (x, y)
      | _ -> go (ctr + 1)
    end
  in
  go 0
