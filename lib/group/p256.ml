(* NIST P-256 (secp256r1), the curve used by the paper's prototype (§5).

   Short Weierstrass y² = x³ − 3x + b over the P-256 field prime. Internal
   arithmetic uses Jacobian projective coordinates over the generic
   Montgomery contexts of [Atom_nat.Modarith]; the public element type is
   the canonical affine form so that [equal] and [to_bytes] are structural.

   Message embedding is try-and-increment: a 28-byte payload is placed in a
   fixed slice of the x-coordinate together with a 16-bit counter, and the
   counter is advanced until x³ − 3x + b is a square (probability 1/2 per
   attempt). The paper packs 32 bytes per point; we reserve 4 bytes of
   framing, and the modeled cost tables use the paper's packing so figure
   shapes are unaffected (see DESIGN.md, Known deviations). *)

open Atom_nat

let p = Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
let n = Nat.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"
let b_const = Nat.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"
let gx = Nat.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
let gy = Nat.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"

let fp = Modarith.create p
let fb = Modarith.of_nat fp b_const
let three = Modarith.of_int fp 3
let sqrt_exp = Nat.shift_right (Nat.add p Nat.one) 2 (* (p+1)/4; valid since p ≡ 3 mod 4 *)

module Scalar = struct
  type t = Modarith.el

  let fq = Modarith.create n
  let order = n
  let zero = Modarith.zero fq
  let one = Modarith.one fq
  let of_nat v = Modarith.of_nat fq v
  let to_nat s = Modarith.to_nat fq s
  let of_int i = Modarith.of_int fq i
  let add = Modarith.add fq
  let sub = Modarith.sub fq
  let mul = Modarith.mul fq
  let neg = Modarith.neg fq
  let inv = Modarith.inv fq
  let equal = Modarith.equal
  let is_zero = Modarith.is_zero
  let random rng = of_nat (Nat.random_below rng order)
  let of_bytes_mod s = of_nat (Nat.of_bytes_be s)
  let to_bytes s = Nat.to_bytes_be ~length:32 (to_nat s)
end

type t = Inf | Aff of Modarith.el * Modarith.el
type scalar = Scalar.t

let name = "p256"
let one = Inf
let equal a b =
  match (a, b) with
  | Inf, Inf -> true
  | Aff (x1, y1), Aff (x2, y2) -> Modarith.equal x1 x2 && Modarith.equal y1 y2
  | _ -> false

let is_one = function Inf -> true | Aff _ -> false

(* y² = x³ - 3x + b *)
let rhs_of_x (x : Modarith.el) : Modarith.el =
  let x3 = Modarith.mul fp (Modarith.sqr fp x) x in
  Modarith.add fp (Modarith.sub fp x3 (Modarith.mul fp three x)) fb

let on_curve = function
  | Inf -> true
  | Aff (x, y) -> Modarith.equal (Modarith.sqr fp y) (rhs_of_x x)

(* ---- Jacobian internals ---- *)

type jac = { jx : Modarith.el; jy : Modarith.el; jz : Modarith.el }

let jac_inf = { jx = Modarith.one fp; jy = Modarith.one fp; jz = Modarith.zero fp }
let jac_is_inf j = Modarith.is_zero j.jz

let to_jac = function
  | Inf -> jac_inf
  | Aff (x, y) -> { jx = x; jy = y; jz = Modarith.one fp }

let to_affine (j : jac) : t =
  if jac_is_inf j then Inf
  else begin
    let zinv = Modarith.inv fp j.jz in
    let zinv2 = Modarith.sqr fp zinv in
    let zinv3 = Modarith.mul fp zinv2 zinv in
    Aff (Modarith.mul fp j.jx zinv2, Modarith.mul fp j.jy zinv3)
  end

(* dbl-2001-b for a = -3. *)
let jac_double (pt : jac) : jac =
  if jac_is_inf pt || Modarith.is_zero pt.jy then jac_inf
  else begin
    let delta = Modarith.sqr fp pt.jz in
    let gamma = Modarith.sqr fp pt.jy in
    let beta = Modarith.mul fp pt.jx gamma in
    let alpha =
      Modarith.mul fp three (Modarith.mul fp (Modarith.sub fp pt.jx delta) (Modarith.add fp pt.jx delta))
    in
    let eight_beta = Modarith.double fp (Modarith.double fp (Modarith.double fp beta)) in
    let x3 = Modarith.sub fp (Modarith.sqr fp alpha) eight_beta in
    let z3 =
      Modarith.sub fp
        (Modarith.sub fp (Modarith.sqr fp (Modarith.add fp pt.jy pt.jz)) gamma)
        delta
    in
    let four_beta = Modarith.double fp (Modarith.double fp beta) in
    let gamma2 = Modarith.sqr fp gamma in
    let eight_gamma2 = Modarith.double fp (Modarith.double fp (Modarith.double fp gamma2)) in
    let y3 = Modarith.sub fp (Modarith.mul fp alpha (Modarith.sub fp four_beta x3)) eight_gamma2 in
    { jx = x3; jy = y3; jz = z3 }
  end

let jac_add (p1 : jac) (p2 : jac) : jac =
  if jac_is_inf p1 then p2
  else if jac_is_inf p2 then p1
  else begin
    let z1z1 = Modarith.sqr fp p1.jz in
    let z2z2 = Modarith.sqr fp p2.jz in
    let u1 = Modarith.mul fp p1.jx z2z2 in
    let u2 = Modarith.mul fp p2.jx z1z1 in
    let s1 = Modarith.mul fp p1.jy (Modarith.mul fp p2.jz z2z2) in
    let s2 = Modarith.mul fp p2.jy (Modarith.mul fp p1.jz z1z1) in
    let h = Modarith.sub fp u2 u1 in
    let r = Modarith.sub fp s2 s1 in
    if Modarith.is_zero h then if Modarith.is_zero r then jac_double p1 else jac_inf
    else begin
      let hh = Modarith.sqr fp h in
      let hhh = Modarith.mul fp h hh in
      let v = Modarith.mul fp u1 hh in
      let x3 =
        Modarith.sub fp (Modarith.sub fp (Modarith.sqr fp r) hhh) (Modarith.double fp v)
      in
      let y3 =
        Modarith.sub fp (Modarith.mul fp r (Modarith.sub fp v x3)) (Modarith.mul fp s1 hhh)
      in
      let z3 = Modarith.mul fp h (Modarith.mul fp p1.jz p2.jz) in
      { jx = x3; jy = y3; jz = z3 }
    end
  end

let mul a b = to_affine (jac_add (to_jac a) (to_jac b))

let inv = function Inf -> Inf | Aff (x, y) -> Aff (x, Modarith.neg fp y)
let div a b = mul a (inv b)

let generator = Aff (Modarith.of_nat fp gx, Modarith.of_nat fp gy)

(* ---- Fast-path scalar-multiplication engine ----

   Four ingredients (see DESIGN.md, "Performance engineering"):
   - mixed Jacobian+affine addition, ~4 field mults cheaper than the
     general Jacobian add, used everywhere a precomputed table is affine;
   - batch affine normalization (Montgomery's simultaneous-inversion
     trick): k points cost one Fermat inversion instead of k;
   - a precomputed fixed-base comb table for the generator (64 4-bit
     windows × 15 entries), making [pow_gen] a doubling-free sum of ≤ 64
     table lookups;
   - an MRU cache of per-base affine window tables for long-lived bases
     (public keys): the table is built on a base's second sighting, so
     one-shot bases never pay the normalization inversion. *)

let nibble_of (e : Nat.t) (w : int) : int =
  (if Nat.test_bit e ((4 * w) + 3) then 8 else 0)
  lor (if Nat.test_bit e ((4 * w) + 2) then 4 else 0)
  lor (if Nat.test_bit e ((4 * w) + 1) then 2 else 0)
  lor if Nat.test_bit e (4 * w) then 1 else 0

(* Mixed addition p1 + (x2, y2) where the second operand is affine
   (z2 = 1): madd-2004-hmv. *)
let jac_add_aff (p1 : jac) (x2 : Modarith.el) (y2 : Modarith.el) : jac =
  if jac_is_inf p1 then { jx = x2; jy = y2; jz = Modarith.one fp }
  else begin
    let z1z1 = Modarith.sqr fp p1.jz in
    let u2 = Modarith.mul fp x2 z1z1 in
    let s2 = Modarith.mul fp y2 (Modarith.mul fp p1.jz z1z1) in
    let h = Modarith.sub fp u2 p1.jx in
    let r = Modarith.sub fp s2 p1.jy in
    if Modarith.is_zero h then if Modarith.is_zero r then jac_double p1 else jac_inf
    else begin
      let hh = Modarith.sqr fp h in
      let hhh = Modarith.mul fp h hh in
      let v = Modarith.mul fp p1.jx hh in
      let x3 =
        Modarith.sub fp (Modarith.sub fp (Modarith.sqr fp r) hhh) (Modarith.double fp v)
      in
      let y3 =
        Modarith.sub fp (Modarith.mul fp r (Modarith.sub fp v x3)) (Modarith.mul fp p1.jy hhh)
      in
      { jx = x3; jy = y3; jz = Modarith.mul fp p1.jz h }
    end
  end

let jac_add_point (p1 : jac) (p2 : t) : jac =
  match p2 with Inf -> p1 | Aff (x, y) -> jac_add_aff p1 x y

(* Montgomery's simultaneous-inversion trick: normalize a whole batch of
   Jacobian points with a single field inversion (plus 3 mults per point
   for the prefix bookkeeping). *)
let to_affine_batch (js : jac array) : t array =
  let n = Array.length js in
  let prefix = Array.make n (Modarith.one fp) in
  let acc = ref (Modarith.one fp) in
  for i = 0 to n - 1 do
    prefix.(i) <- !acc;
    if not (jac_is_inf js.(i)) then acc := Modarith.mul fp !acc js.(i).jz
  done;
  let out = Array.make n Inf in
  let inv_acc = ref (Modarith.inv fp !acc) in
  for i = n - 1 downto 0 do
    let j = js.(i) in
    if not (jac_is_inf j) then begin
      let zinv = Modarith.mul fp !inv_acc prefix.(i) in
      inv_acc := Modarith.mul fp !inv_acc j.jz;
      let zinv2 = Modarith.sqr fp zinv in
      out.(i) <-
        Aff (Modarith.mul fp j.jx zinv2, Modarith.mul fp j.jy (Modarith.mul fp zinv2 zinv))
    end
  done;
  out

(* Fixed-base comb table: gen_table.(w).(d-1) = (d·16^w)·G in affine,
   for the 64 4-bit windows of a P-256 scalar. d·16^w is never ≡ 0 mod n
   (it is positive, < 2^256 < 2n, and ≠ n by parity), so every entry is
   finite. Built on first use with one batch normalization (~1 ms, once);
   [Once] rather than [lazy] because pool workers may race to force it. *)
let gen_table : t array array Atom_exec.Once.t =
  Atom_exec.Once.make (fun () ->
    begin
      let windows = 64 in
      let flat = Array.make (windows * 15) jac_inf in
      let base = ref (to_jac generator) in
      for w = 0 to windows - 1 do
        flat.(w * 15) <- !base;
        for d = 2 to 15 do
          flat.((w * 15) + d - 1) <- jac_add flat.((w * 15) + d - 2) !base
        done;
        if w < windows - 1 then
          base := jac_double (jac_double (jac_double (jac_double flat.(w * 15))))
      done;
      let aff = to_affine_batch flat in
      Array.init windows (fun w -> Array.sub aff (w * 15) 15)
    end)

(* g^e as a Jacobian point: one mixed addition per nonzero nibble, no
   doublings at all. *)
let comb_jac (e : Nat.t) : jac =
  let table = Atom_exec.Once.get gen_table in
  let windows = (Nat.bit_length e + 3) / 4 in
  let acc = ref jac_inf in
  for w = 0 to windows - 1 do
    let d = nibble_of e w in
    if d <> 0 then acc := jac_add_point !acc table.(w).(d - 1)
  done;
  !acc

let pow_gen (k : scalar) : t =
  Atom_obs.Opcount.note_pow_gen ();
  let e = Scalar.to_nat k in
  if Nat.is_zero e then Inf else to_affine (comb_jac e)

(* 15-entry affine window table for an arbitrary base: one batch
   normalization (one inversion) per table. *)
let affine_table (base : t) : t array =
  let bj = to_jac base in
  let jt = Array.make 15 jac_inf in
  jt.(0) <- bj;
  for d = 1 to 14 do
    jt.(d) <- jac_add jt.(d - 1) bj
  done;
  to_affine_batch jt

(* MRU cache of per-base affine tables, for long-lived bases (group public
   keys, DKG share keys). A base's first sighting only records its key; the
   table is built — and the inversion spent — from the second sighting on,
   so one-shot bases (shuffle commitments, fresh ciphertext components)
   cost nothing beyond an O(cap) key scan. Domain-local: each pool worker
   warms its own copy, so there is no cross-domain sharing to synchronize
   (systhread interleavings within a domain can at worst waste a rebuild —
   tables are deterministic in the base). *)
type base_entry = { key : t; mutable table : t array option }

let base_cache_key : base_entry list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let base_cache_cap = 16

let cached_table (base : t) : t array option =
  let base_cache = Domain.DLS.get base_cache_key in
  let rec extract acc = function
    | [] -> None
    | e :: rest when equal e.key base -> Some (e, List.rev_append acc rest)
    | e :: rest -> extract (e :: acc) rest
  in
  match extract [] !base_cache with
  | Some (e, rest) ->
      base_cache := e :: rest;
      let table =
        match e.table with
        | Some t -> t
        | None ->
            let t = affine_table base in
            e.table <- Some t;
            t
      in
      Some table
  | None ->
      let tail = List.filteri (fun i _ -> i < base_cache_cap - 1) !base_cache in
      base_cache := { key = base; table = None } :: tail;
      None

(* 4-bit windowed double-and-add over an affine table. *)
let windowed_jac (tab : t array) (e : Nat.t) : jac =
  let windows = (Nat.bit_length e + 3) / 4 in
  let acc = ref jac_inf in
  for w = windows - 1 downto 0 do
    if w <> windows - 1 then begin
      acc := jac_double !acc;
      acc := jac_double !acc;
      acc := jac_double !acc;
      acc := jac_double !acc
    end;
    let d = nibble_of e w in
    if d <> 0 then acc := jac_add_point !acc tab.(d - 1)
  done;
  !acc

(* One-shot path: per-call Jacobian table, no inversion spent on it. *)
let windowed_jac_oneshot (base : t) (e : Nat.t) : jac =
  let table = Array.make 16 jac_inf in
  table.(1) <- to_jac base;
  for i = 2 to 15 do
    table.(i) <- jac_add table.(i - 1) table.(1)
  done;
  let windows = (Nat.bit_length e + 3) / 4 in
  let acc = ref jac_inf in
  for w = windows - 1 downto 0 do
    if w <> windows - 1 then begin
      acc := jac_double !acc;
      acc := jac_double !acc;
      acc := jac_double !acc;
      acc := jac_double !acc
    end;
    let d = nibble_of e w in
    if d <> 0 then acc := jac_add !acc table.(d)
  done;
  !acc

let pow (base : t) (k : scalar) : t =
  Atom_obs.Opcount.note_pow ();
  let e = Scalar.to_nat k in
  if Nat.is_zero e || is_one base then Inf
  else if equal base generator then to_affine (comb_jac e)
  else begin
    match cached_table base with
    | Some tab -> to_affine (windowed_jac tab e)
    | None -> to_affine (windowed_jac_oneshot base e)
  end

(* ---- Multi-scalar multiplication ---- *)

(* Straus (shared doublings, per-base 4-bit window tables) for small batches.
   Tables are Jacobian and built only up to the largest nibble the scalar
   can produce, so tiny scalars (e.g. the all-ones MSM of combine_pks) skip
   table construction entirely. *)
let msm_straus (bases : t array) (exps : Nat.t array) ~(use_cache : bool) : jac =
  let n = Array.length bases in
  let max_bits = ref 0 in
  for i = 0 to n - 1 do
    max_bits := max !max_bits (Nat.bit_length exps.(i))
  done;
  let adders =
    Array.init n (fun i ->
        let cached = if use_cache then cached_table bases.(i) else None in
        match cached with
        | Some tab -> fun acc d -> jac_add_point acc tab.(d - 1)
        | None ->
            let max_d =
              if Nat.bit_length exps.(i) > 4 then 15 else Nat.to_int_exn exps.(i)
            in
            let table = Array.make (max_d + 1) jac_inf in
            if max_d >= 1 then table.(1) <- to_jac bases.(i);
            for d = 2 to max_d do
              table.(d) <- jac_add table.(d - 1) table.(1)
            done;
            fun acc d -> jac_add acc table.(d))
  in
  let windows = (!max_bits + 3) / 4 in
  let acc = ref jac_inf in
  for w = windows - 1 downto 0 do
    if w <> windows - 1 then begin
      acc := jac_double !acc;
      acc := jac_double !acc;
      acc := jac_double !acc;
      acc := jac_double !acc
    end;
    for i = 0 to n - 1 do
      let d = nibble_of exps.(i) w in
      if d <> 0 then acc := adders.(i) !acc d
    done
  done;
  !acc

(* Pippenger bucket method for large batches: per window, drop each point
   into the bucket of its digit, then aggregate buckets with two running
   sums. ~(256/c)·(n + 2^{c+1}) additions overall. Windows are mutually
   independent, so a pool computes the per-window sums in parallel; the
   combine (c doublings between windows, ≈256 doublings total) stays on
   the caller and is negligible next to the bucket work. The affine result
   is identical either way — [to_affine] canonicalizes whatever Jacobian
   representative the addition order produced. *)
let msm_pippenger ?pool (bases : t array) (exps : Nat.t array) : jac =
  let n = Array.length bases in
  let c = if n < 512 then 6 else if n < 2048 then 7 else 8 in
  let points = Array.map to_jac bases in
  let max_bits = ref 0 in
  for i = 0 to n - 1 do
    max_bits := max !max_bits (Nat.bit_length exps.(i))
  done;
  let digit e off =
    let d = ref 0 in
    for b = c - 1 downto 0 do
      d := (!d lsl 1) lor if Nat.test_bit e (off + b) then 1 else 0
    done;
    !d
  in
  let nwin = (!max_bits + c - 1) / c in
  let nbuckets = (1 lsl c) - 1 in
  let window_sum w =
    let buckets = Array.make nbuckets jac_inf in
    for i = 0 to n - 1 do
      let d = digit exps.(i) (w * c) in
      if d <> 0 then buckets.(d - 1) <- jac_add buckets.(d - 1) points.(i)
    done;
    let run = ref jac_inf and sum = ref jac_inf in
    for d = nbuckets - 1 downto 0 do
      run := jac_add !run buckets.(d);
      sum := jac_add !sum !run
    done;
    !sum
  in
  let wsums = Atom_exec.Pool.tabulate ?pool nwin window_sum in
  let acc = ref jac_inf in
  for w = nwin - 1 downto 0 do
    if w <> nwin - 1 then
      for _ = 1 to c do
        acc := jac_double !acc
      done;
    acc := jac_add !acc wsums.(w)
  done;
  !acc

let pippenger_threshold = 200

(* Below the Pippenger threshold a pooled MSM splits the pairs into
   contiguous chunks, runs Straus on each independently, and adds the
   chunk partials in index order on the caller. *)
let msm_straus_pooled pool (bases : t array) (exps : Nat.t array) : jac =
  let n = Array.length bases in
  let nchunks = min n (Atom_exec.Pool.size pool * 4) in
  let partials =
    Atom_exec.Pool.tabulate ~pool nchunks (fun ci ->
        let lo = ci * n / nchunks and hi = (ci + 1) * n / nchunks in
        msm_straus (Array.sub bases lo (hi - lo)) (Array.sub exps lo (hi - lo)) ~use_cache:false)
  in
  Array.fold_left jac_add jac_inf partials

let msm_pool_threshold = 64

let msm_raw ?pool (pairs : (t * scalar) array) : t =
  (* Generator terms collapse into a single comb exponent (g^a·g^b = g^{a+b});
     identity bases and zero scalars drop out. The cache is consulted only
     for small MSMs — flooding it with a shuffle-sized batch of one-shot
     bases would evict the long-lived public keys. *)
  let gen_k = ref Scalar.zero in
  let rest = ref [] in
  Array.iter
    (fun (x, k) ->
      if is_one x || Scalar.is_zero k then ()
      else if equal x generator then gen_k := Scalar.add !gen_k k
      else rest := (x, Scalar.to_nat k) :: !rest)
    pairs;
  let comb_part =
    if Scalar.is_zero !gen_k then jac_inf else comb_jac (Scalar.to_nat !gen_k)
  in
  let rest = Array.of_list !rest in
  let n = Array.length rest in
  let main =
    if n = 0 then jac_inf
    else begin
      let bases = Array.map fst rest and exps = Array.map snd rest in
      if n > pippenger_threshold then msm_pippenger ?pool bases exps
      else begin
        match Atom_exec.Pool.resolve pool with
        | Some pl when n >= msm_pool_threshold && Atom_exec.Pool.size pl > 1 ->
            (* The cache is never consulted here: it only applies to MSMs
               of <= 8 pairs, far below the pooling threshold. *)
            msm_straus_pooled pl bases exps
        | _ -> msm_straus bases exps ~use_cache:(Array.length pairs <= 8)
      end
    end
  in
  to_affine (jac_add main comb_part)

let msm ?pool (pairs : (t * scalar) array) : t =
  Atom_obs.Opcount.note_msm ~terms:(Array.length pairs);
  msm_raw ?pool pairs

(* pow2 goes through [msm_raw] so it tallies as one composite op, not also
   as an msm call. *)
let pow2 (a : t) (j : scalar) (b : t) (k : scalar) : t =
  Atom_obs.Opcount.note_pow2 ();
  msm_raw [| (a, j); (b, k) |]

(* ---- Batch fixed-base exponentiation with one shared normalization ----

   The per-scalar ladders are independent and go to the pool; the single
   shared normalization inversion stays on the caller. Any table the
   ladders read (the comb table, a per-base affine table) is built on the
   caller before the parallel region and only read inside it. *)

let pow_gen_batch_raw ?pool (ks : scalar array) : t array =
  ignore (Atom_exec.Once.get gen_table);
  to_affine_batch
    (Atom_exec.Pool.map ?pool
       (fun k ->
         let e = Scalar.to_nat k in
         if Nat.is_zero e then jac_inf else comb_jac e)
       ks)

let pow_gen_batch ?pool (ks : scalar array) : t array =
  Atom_obs.Opcount.note_batch ~scalars:(Array.length ks);
  pow_gen_batch_raw ?pool ks

let pow_batch ?pool (base : t) (ks : scalar array) : t array =
  Atom_obs.Opcount.note_batch ~scalars:(Array.length ks);
  if Array.length ks = 0 then [||]
  else if is_one base then Array.map (fun _ -> Inf) ks
  else if equal base generator then pow_gen_batch_raw ?pool ks
  else begin
    let tab = match cached_table base with Some t -> t | None -> affine_table base in
    to_affine_batch
      (Atom_exec.Pool.map ?pool
         (fun k ->
           let e = Scalar.to_nat k in
           if Nat.is_zero e then jac_inf else windowed_jac tab e)
         ks)
  end

let element_bytes = 33

let to_bytes = function
  | Inf -> String.make element_bytes '\000'
  | Aff (x, y) ->
      let y_odd = Nat.is_odd (Modarith.to_nat fp y) in
      let prefix = if y_odd then '\003' else '\002' in
      String.make 1 prefix ^ Nat.to_bytes_be ~length:32 (Modarith.to_nat fp x)

(* Square root mod p via (p+1)/4; returns None if the input is a
   non-residue. *)
let sqrt (v : Modarith.el) : Modarith.el option =
  let r = Modarith.pow fp v sqrt_exp in
  if Modarith.equal (Modarith.sqr fp r) v then Some r else None

let of_bytes s =
  if String.length s <> element_bytes then None
  else if s = String.make element_bytes '\000' then Some Inf
  else begin
    match s.[0] with
    | '\002' | '\003' -> begin
        let xv = Nat.of_bytes_be (String.sub s 1 32) in
        if Nat.compare xv p >= 0 then None
        else begin
          let x = Modarith.of_nat fp xv in
          match sqrt (rhs_of_x x) with
          | None -> None
          | Some y ->
              let y_odd = Nat.is_odd (Modarith.to_nat fp y) in
              let want_odd = s.[0] = '\003' in
              let y = if y_odd = want_odd then y else Modarith.neg fp y in
              Some (Aff (x, y))
        end
      end
    | _ -> None
  end

let embed_bytes = 28
let embed_marker = '\x01'

let embed payload =
  if String.length payload > embed_bytes then None
  else begin
    let padded = String.make (embed_bytes - String.length payload) '\000' ^ payload in
    let rec try_counter counter =
      if counter > 0xffff then None (* probability 2^-65536: unreachable *)
      else begin
        let xb =
          Bytes.of_string
            (String.concat ""
               [
                 "\000"; padded;
                 String.init 2 (fun i -> Char.chr ((counter lsr (8 * (1 - i))) land 0xff));
                 String.make 1 embed_marker;
               ])
        in
        let x = Modarith.of_nat fp (Nat.of_bytes_be (Bytes.to_string xb)) in
        match sqrt (rhs_of_x x) with
        | Some y -> Some (Aff (x, y))
        | None -> try_counter (counter + 1)
      end
    in
    try_counter 0
  end

let extract = function
  | Inf -> None
  | Aff (x, _) ->
      let xb = Nat.to_bytes_be ~length:32 (Modarith.to_nat fp x) in
      if xb.[0] = '\000' && xb.[31] = embed_marker then Some (String.sub xb 1 embed_bytes)
      else None

let random rng = pow_gen (Scalar.random rng)
let hash_to_scalar msg = Scalar.of_bytes_mod (Atom_hash.Sha256.digest msg)

(* Hash-to-curve by try-and-increment on hashed x candidates; the resulting
   point has a publicly unknown discrete log. *)
let of_hash label =
  let rec go ctr =
    let digest = Atom_hash.Sha256.digest_list [ "p256-of-hash"; label; string_of_int ctr ] in
    let xv = Nat.of_bytes_be digest in
    if Nat.compare xv p >= 0 then go (ctr + 1)
    else begin
      let x = Modarith.of_nat fp xv in
      match sqrt (rhs_of_x x) with
      | Some y when not (Modarith.is_zero y) -> Aff (x, y)
      | _ -> go (ctr + 1)
    end
  in
  go 0
