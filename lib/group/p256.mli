(** NIST P-256 (secp256r1), the curve used by the paper's prototype (§5).

    The full {!Group_intf.GROUP} surface — including the [?pool]-taking
    multi-exponentiation batch entry points — plus the handful of
    curve-level hooks the known-answer tests inspect. Everything else
    (Jacobian internals, comb and window tables, the Straus/Pippenger
    engines) is private to the implementation. *)

open Atom_nat

type t = Inf | Aff of Modarith.el * Modarith.el
    (** Canonical affine representation, exposed so known-answer tests can
        check raw coordinates; [equal] is structural. Construct values
        through the group operations or [of_bytes] — a hand-built [Aff]
        is not guaranteed to lie on the curve. *)

include Group_intf.GROUP with type t := t

val on_curve : t -> bool
(** Does the point satisfy the curve equation? (Always [true] for values
    produced by this module.) *)

val p : Nat.t
(** The field prime. *)

val n : Nat.t
(** The group order (= [Scalar.order]). *)

val fp : Modarith.ctx
(** The field context, for tests that inspect coordinates. *)
