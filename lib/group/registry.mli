(** First-class-module handles on the available group backends.

    Every backend implements the full {!Group_intf.GROUP} signature
    including the pooled multi-exponentiation fast path: [P256] with comb
    tables, Straus / Pippenger and batch affine normalization, [Zp] with
    the honest {!Group_intf.Naive_multi} fallbacks. *)

val p256 : unit -> (module Group_intf.GROUP)

val zp_test : unit -> (module Group_intf.GROUP)
(** 96-bit Schnorr group: fast, for tests and examples. *)

val zp_medium : unit -> (module Group_intf.GROUP)
(** 256-bit Schnorr group: realistic size without curve arithmetic. *)

val available : (string * (unit -> (module Group_intf.GROUP))) list
(** Name → constructor, in presentation order. *)

val by_name : string -> (module Group_intf.GROUP)
(** @raise Invalid_argument on an unknown name (listing the known ones). *)
