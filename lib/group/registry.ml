(* First-class-module handles on the available group backends.

   Every backend implements the full [Group_intf.GROUP] signature including
   the multi-exponentiation fast path: [P256] with comb tables, Straus /
   Pippenger and batch affine normalization, [Zp] with the honest
   [Group_intf.Naive_multi] fallbacks (whose Montgomery contexts still cache
   fixed-base window tables). *)

let p256 () : (module Group_intf.GROUP) = (module P256)

let zp_test = Zp.test_group
(** 96-bit Schnorr group: fast, for tests and examples. *)

let zp_medium = Zp.medium_group
(** 256-bit Schnorr group: realistic size without curve arithmetic. *)

let available : (string * (unit -> (module Group_intf.GROUP))) list =
  [ ("p256", p256); ("zp-test", zp_test); ("zp-medium", zp_medium) ]

let by_name (name : string) : (module Group_intf.GROUP) =
  match List.assoc_opt name available with
  | Some make -> make ()
  | None ->
      invalid_arg
        (Printf.sprintf "Registry.by_name: unknown group %S (available: %s)" name
           (String.concat ", " (List.map fst available)))
