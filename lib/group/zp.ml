(* Schnorr group backend: the order-q subgroup of quadratic residues of Z_p*
   where p = 2q + 1 is a safe prime.

   Much faster than P-256 in pure OCaml, so the protocol test-suites run on
   this backend; the P-256 backend matches the paper's prototype. Message
   embedding uses the classic QR trick: for p ≡ 3 (mod 4), exactly one of
   {c, p−c} is a quadratic residue, and exactly one of them is < p/2, so a
   payload c ∈ [1, p/2) maps bijectively onto QR(p). *)

open Atom_nat

type params = { p : Nat.t; q : Nat.t; g : Nat.t }

let derive_params ~(bits : int) ~(seed : int) : params =
  let rng = Atom_util.Rng.create seed in
  let p, q = Prime.random_safe_prime rng ~bits in
  (* 4 = 2^2 is always a quadratic residue, hence a generator of the order-q
     subgroup (q prime means every non-identity QR generates it). *)
  { p; q; g = Nat.of_int 4 }

let make (params : params) : (module Group_intf.GROUP) =
  let module G = struct
    let name = Printf.sprintf "zp-%d" (Nat.bit_length params.p)
    let ctx_p = Modarith.create params.p
    let ctx_q = Modarith.create params.q

    module Scalar = struct
      type t = Modarith.el

      let order = params.q
      let zero = Modarith.zero ctx_q
      let one = Modarith.one ctx_q
      let of_nat n = Modarith.of_nat ctx_q n
      let to_nat s = Modarith.to_nat ctx_q s
      let of_int i = Modarith.of_int ctx_q i
      let add = Modarith.add ctx_q
      let sub = Modarith.sub ctx_q
      let mul = Modarith.mul ctx_q
      let neg = Modarith.neg ctx_q
      let inv = Modarith.inv ctx_q
      let equal = Modarith.equal
      let is_zero = Modarith.is_zero
      let random rng = of_nat (Nat.random_below rng order)
      let of_bytes_mod s = of_nat (Nat.of_bytes_be s)
      let scalar_bytes = (Nat.bit_length params.q + 7) / 8
      let to_bytes s = Nat.to_bytes_be ~length:scalar_bytes (to_nat s)
    end

    type t = Modarith.el
    type scalar = Scalar.t

    let generator = Modarith.of_nat ctx_p params.g
    let one = Modarith.one ctx_p
    let mul = Modarith.mul ctx_p
    let inv = Modarith.inv ctx_p
    let div a b = mul a (inv b)
    let pow_raw x k = Modarith.pow ctx_p x (Scalar.to_nat k)
    let pow_gen_raw k = pow_raw generator k

    let pow x k =
      Atom_obs.Opcount.note_pow ();
      pow_raw x k

    let pow_gen k =
      Atom_obs.Opcount.note_pow_gen ();
      pow_gen_raw k

    (* Multi-exponentiation. The batch-pow entry points are honest
       fallbacks — [Modarith.pow]'s per-context table cache already gives
       repeated fixed-base calls (pow_gen, pow pk) their speedup, and Z_p*
       has no affine-normalization cost to batch — but [msm]/[pow2] ride
       Straus interleaving in Modarith so the batched shuffle verifier's
       single big product shares its squarings here too. The functor gets
       the raw pows so a batch call tallies once, as a batch. *)
    include Group_intf.Naive_multi (struct
      type nonrec t = t
      type nonrec scalar = scalar

      let one = one
      let mul = mul
      let pow = pow_raw
      let pow_gen = pow_gen_raw
    end)

    let pow_batch ?pool x ks =
      Atom_obs.Opcount.note_batch ~scalars:(Array.length ks);
      pow_batch ?pool x ks

    let pow_gen_batch ?pool ks =
      Atom_obs.Opcount.note_batch ~scalars:(Array.length ks);
      pow_gen_batch ?pool ks

    (* A pooled MSM splits the pairs into contiguous chunks, runs Straus
       on each chunk independently, and folds the chunk partials in index
       order. Modular multiplication is exact and elements are canonical
       (fully reduced Montgomery form), so the fold equals the one-shot
       Straus product bit for bit regardless of the chunk count. *)
    let msm_pool_threshold = 64

    let msm_raw ?pool pairs =
      let nat_pairs = Array.map (fun (x, k) -> (x, Scalar.to_nat k)) pairs in
      let n = Array.length nat_pairs in
      match Atom_exec.Pool.resolve pool with
      | Some p when n >= msm_pool_threshold && Atom_exec.Pool.size p > 1 ->
          let nchunks = min n (Atom_exec.Pool.size p * 4) in
          let partials =
            Atom_exec.Pool.tabulate ~pool:p nchunks (fun c ->
                let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
                Modarith.msm_slice ctx_p nat_pairs ~lo ~hi)
          in
          Array.fold_left (Modarith.mul ctx_p) (Modarith.one ctx_p) partials
      | _ -> Modarith.msm ctx_p nat_pairs

    let msm ?pool pairs =
      Atom_obs.Opcount.note_msm ~terms:(Array.length pairs);
      msm_raw ?pool pairs

    (* One composite op: must not also tally as an msm call. *)
    let pow2 a j b k =
      Atom_obs.Opcount.note_pow2 ();
      msm_raw [| (a, j); (b, k) |]

    let equal = Modarith.equal
    let is_one x = equal x one
    let element_bytes = (Nat.bit_length params.p + 7) / 8
    let to_bytes x = Nat.to_bytes_be ~length:element_bytes (Modarith.to_nat ctx_p x)

    (* Legendre symbol via Euler's criterion: x^q mod p (q = (p-1)/2). *)
    let is_qr (x : Modarith.el) : bool =
      Nat.equal (Modarith.to_nat ctx_p (Modarith.pow ctx_p x params.q)) Nat.one

    let of_bytes s =
      if String.length s <> element_bytes then None
      else begin
        let v = Nat.of_bytes_be s in
        if Nat.is_zero v || Nat.compare v params.p >= 0 then None
        else begin
          let el = Modarith.of_nat ctx_p v in
          if is_qr el then Some el else None
        end
      end

    (* Structural checks only: the QR (subgroup) test above is a full
       exponentiation and dominates decode cost, so the deferred-validation
       decode path skips it here and batch-verifies membership later. *)
    let of_bytes_unchecked s =
      if String.length s <> element_bytes then None
      else begin
        let v = Nat.of_bytes_be s in
        if Nat.is_zero v || Nat.compare v params.p >= 0 then None
        else Some (Modarith.of_nat ctx_p v)
      end

    (* Payload must stay below p/2 with margin: reserve 9 bits. *)
    let embed_bytes = (Nat.bit_length params.p - 9) / 8

    let embed payload =
      if String.length payload > embed_bytes then None
      else begin
        (* c in [1, p/2): the +1 shift avoids zero. *)
        let c = Nat.add (Nat.of_bytes_be payload) Nat.one in
        let el = Modarith.of_nat ctx_p c in
        if is_qr el then Some el else Some (Modarith.neg ctx_p el)
      end

    (* Eager (not [lazy]): extract may run on pool worker domains, and a
       concurrently forced lazy raises in OCaml 5. *)
    let half_p = Nat.shift_right params.p 1

    let extract el =
      let v = Modarith.to_nat ctx_p el in
      let c = if Nat.compare v half_p < 0 then v else Nat.sub params.p v in
      if Nat.is_zero c then None
      else begin
        let payload = Nat.sub c Nat.one in
        if Nat.bit_length payload > embed_bytes * 8 then None
        else Some (Nat.to_bytes_be ~length:embed_bytes payload)
      end

    let random rng = pow_gen (Scalar.random rng)
    let hash_to_scalar msg = Scalar.of_bytes_mod (Atom_hash.Sha256.digest msg)

    (* Hash-to-group: square the hash value to land in QR(p); nobody knows
       its discrete log w.r.t. the generator. *)
    let of_hash label =
      let rec go ctr =
        let digest = Atom_hash.Sha256.digest_list [ "zp-of-hash"; label; string_of_int ctr ] in
        let v = Nat.rem (Nat.of_bytes_be digest) params.p in
        let el = Modarith.sqr ctx_p (Modarith.of_nat ctx_p v) in
        if Modarith.is_zero el || is_one el then go (ctr + 1) else el
      in
      go 0
  end in
  (module G)

(* Cached deterministic parameter sets. [Once], not [lazy]: group
   construction may be requested from several threads (a test harness
   spinning up per-thread nodes), and concurrent forcing of a lazy is an
   error in OCaml 5. *)
let test_params = Atom_exec.Once.make (fun () -> derive_params ~bits:96 ~seed:0x5af3)
let medium_params = Atom_exec.Once.make (fun () -> derive_params ~bits:256 ~seed:0x5af4)

let test_group () : (module Group_intf.GROUP) = make (Atom_exec.Once.get test_params)
let medium_group () : (module Group_intf.GROUP) = make (Atom_exec.Once.get medium_params)
