(* Schnorr group backend over a safe prime p = 2q + 1, represented as the
   group of *signed quadratic residues* QR⁺(p) (Hofheinz–Kiltz): the set
   {1, …, q} under a∘b = |a·b mod p|, where |x| = min(x, p − x) picks the
   smaller of the two representatives of {x, −x}.

   For a safe prime, x ↦ |x| is a group isomorphism QR(p) → QR⁺(p) (every
   class {x, −x} contains exactly one quadratic residue and exactly one
   value ≤ q, and the map respects multiplication up to sign), so QR⁺ is
   cyclic of prime order q and DDH-equivalent to the classic residue
   subgroup. The payoff is the decode path: membership in QR⁺ is the range
   check 1 ≤ v ≤ q on the canonical representative — constant time in
   group operations — where membership in QR(p) costs a full Euler-
   criterion exponentiation x^q mod p per element. Wire decode of a
   ciphertext batch is therefore structural, and the batched-validation
   machinery ([check_batch], [Unverified.discharge_batch]) runs at memory
   speed instead of exponentiation speed.

   Much faster than P-256 in pure OCaml, so the protocol test-suites run
   on this backend; the P-256 backend matches the paper's prototype.
   Message embedding is the classic half-range bijection, now with no
   residue test at all: payloads map to c ∈ [1, q] directly, which *is*
   the canonical range. *)

open Atom_nat

type params = { p : Nat.t; q : Nat.t; g : Nat.t }

let derive_params ~(bits : int) ~(seed : int) : params =
  let rng = Atom_util.Rng.create seed in
  let p, q = Prime.random_safe_prime rng ~bits in
  (* 4 = 2² is a quadratic residue, and |4| = 4 (any plausible q exceeds
     4), so 4 generates QR⁺ (q prime means every non-identity element
     generates it). *)
  { p; q; g = Nat.of_int 4 }

let make (params : params) : (module Group_intf.GROUP) =
  let module G = struct
    let name = Printf.sprintf "zp-%d" (Nat.bit_length params.p)
    let ctx_p = Modarith.create params.p
    let ctx_q = Modarith.create params.q

    module Scalar = struct
      type t = Modarith.el

      let order = params.q
      let zero = Modarith.zero ctx_q
      let one = Modarith.one ctx_q
      let of_nat n = Modarith.of_nat ctx_q n
      let to_nat s = Modarith.to_nat ctx_q s
      let of_int i = Modarith.of_int ctx_q i
      let add = Modarith.add ctx_q
      let sub = Modarith.sub ctx_q
      let mul = Modarith.mul ctx_q
      let neg = Modarith.neg ctx_q
      let inv = Modarith.inv ctx_q
      let equal = Modarith.equal
      let is_zero = Modarith.is_zero
      let random rng = of_nat (Nat.random_below rng order)
      let of_bytes_mod s = of_nat (Nat.of_bytes_be s)
      let scalar_bytes = (Nat.bit_length params.q + 7) / 8
      let to_bytes s = Nat.to_bytes_be ~length:scalar_bytes (to_nat s)
    end

    type t = Modarith.el
    type scalar = Scalar.t

    (* Canonicalize a Z_p* value into QR⁺: pick the representative ≤ q of
       the class {x, −x}. Every public operation ends here, so [equal] and
       [to_bytes] stay structural. *)
    let norm (x : Modarith.el) : Modarith.el =
      if Nat.leq (Modarith.to_nat ctx_p x) params.q then x else Modarith.neg ctx_p x

    let generator = Modarith.of_nat ctx_p params.g
    let one = Modarith.one ctx_p
    let mul a b = norm (Modarith.mul ctx_p a b)
    let inv a = norm (Modarith.inv ctx_p a)
    let div a b = mul a (inv b)
    let pow_raw x k = norm (Modarith.pow ctx_p x (Scalar.to_nat k))
    let pow_gen_raw k = pow_raw generator k

    let pow x k =
      Atom_obs.Opcount.note_pow ();
      pow_raw x k

    let pow_gen k =
      Atom_obs.Opcount.note_pow_gen ();
      pow_gen_raw k

    (* Multi-exponentiation. The batch-pow entry points are honest
       fallbacks — [Modarith.pow]'s per-context table cache already gives
       repeated fixed-base calls (pow_gen, pow pk) their speedup, and Z_p*
       has no affine-normalization cost to batch — but [msm]/[pow2] ride
       Straus interleaving in Modarith so the batched shuffle verifier's
       single big product shares its squarings here too. The functor gets
       the raw pows so a batch call tallies once, as a batch. *)
    include Group_intf.Naive_multi (struct
      type nonrec t = t
      type nonrec scalar = scalar

      let one = one
      let mul = mul
      let pow = pow_raw
      let pow_gen = pow_gen_raw
    end)

    let pow_batch ?pool x ks =
      Atom_obs.Opcount.note_batch ~scalars:(Array.length ks);
      pow_batch ?pool x ks

    let pow_gen_batch ?pool ks =
      Atom_obs.Opcount.note_batch ~scalars:(Array.length ks);
      pow_gen_batch ?pool ks

    (* A pooled MSM splits the pairs into contiguous chunks, runs Straus
       on each chunk independently, and folds the chunk partials in index
       order. The sign components of the partials multiply out exactly
       like the underlying Z_p* values, so one [norm] on the folded
       product lands on the same canonical element as normalizing every
       step — the fold equals the one-shot Straus product bit for bit
       regardless of the chunk count. *)
    let msm_pool_threshold = 64

    let msm_raw ?pool pairs =
      let nat_pairs = Array.map (fun (x, k) -> (x, Scalar.to_nat k)) pairs in
      let n = Array.length nat_pairs in
      norm
        (match Atom_exec.Pool.resolve pool with
        | Some p when n >= msm_pool_threshold && Atom_exec.Pool.size p > 1 ->
            let nchunks = min n (Atom_exec.Pool.size p * 4) in
            let partials =
              Atom_exec.Pool.tabulate ~pool:p nchunks (fun c ->
                  let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
                  Modarith.msm_slice ctx_p nat_pairs ~lo ~hi)
            in
            Array.fold_left (Modarith.mul ctx_p) (Modarith.one ctx_p) partials
        | _ -> Modarith.msm ctx_p nat_pairs)

    let msm ?pool pairs =
      Atom_obs.Opcount.note_msm ~terms:(Array.length pairs);
      msm_raw ?pool pairs

    (* One composite op: must not also tally as an msm call. *)
    let pow2 a j b k =
      Atom_obs.Opcount.note_pow2 ();
      msm_raw [| (a, j); (b, k) |]

    let equal = Modarith.equal
    let is_one x = equal x one
    let element_bytes = (Nat.bit_length params.p + 7) / 8
    let to_bytes x = Nat.to_bytes_be ~length:element_bytes (Modarith.to_nat ctx_p x)

    (* Membership in QR⁺ is the canonical-range check — no exponentiation.
       Values built by this module are canonical by construction; the
       check exists for decode-time verification and defense in depth. *)
    let is_member (x : t) : bool =
      let v = Modarith.to_nat ctx_p x in
      (not (Nat.is_zero v)) && Nat.leq v params.q

    include Group_intf.Naive_check (struct
      type nonrec t = t

      let is_member = is_member
    end)

    (* The canonical-range bound in plain limb form, for the wire-decode
       fast path's threshold compares. *)
    let q_plain = Modarith.plain_of_nat ctx_p params.q

    let of_bytes s =
      if String.length s <> element_bytes then None
      else
        match Modarith.parse_be_sub ctx_p s ~pos:0 ~len:element_bytes with
        | Some v when (not (Modarith.plain_is_zero v)) && Modarith.plain_leq v q_plain ->
            Some (Modarith.mont_of_plain ctx_p v)
        | _ -> None

    (* Structurally decoded, membership (the canonical-range check) still
       owed. [elt] is the plain limb value straight off the wire: discharge
       is one limb compare against [q_plain] plus the Montgomery entry
       multiplication — which [discharge_batch] amortizes over a pool, so
       the expensive half of decoding a frame parallelizes while the
       structural parse stays a single cheap pass. *)
    module Unverified = struct
      type elt = Modarith.plain

      let of_bytes_sub s ~pos =
        match Modarith.parse_be_sub ctx_p s ~pos ~len:element_bytes with
        | Some v when not (Modarith.plain_is_zero v) -> Some v
        | _ -> None

      let of_bytes s = if String.length s <> element_bytes then None else of_bytes_sub s ~pos:0

      let discharge (v : elt) : t option =
        if Modarith.plain_leq v q_plain then Some (Modarith.mont_of_plain ctx_p v) else None

      let pool_threshold = 256

      let discharge_batch ?pool (us : elt array) : (t array, int) result =
        let n = Array.length us in
        let rec scan i =
          if i >= n then None
          else if Modarith.plain_leq us.(i) q_plain then scan (i + 1)
          else Some i
        in
        match scan 0 with
        | Some i -> Error i
        | None -> (
            let conv = Modarith.mont_of_plain ctx_p in
            match Atom_exec.Pool.resolve pool with
            | Some p when n >= pool_threshold && Atom_exec.Pool.size p > 1 ->
                Ok (Atom_exec.Pool.map ~pool:p conv us)
            | _ -> Ok (Array.map conv us))
    end

    (* Payload must stay below q with margin: reserve 9 bits. *)
    let embed_bytes = (Nat.bit_length params.p - 9) / 8

    (* c ∈ [1, q] *is* the canonical range, so embedding needs no residue
       test and no sign fix-up — the +1 shift only avoids zero. *)
    let embed payload =
      if String.length payload > embed_bytes then None
      else Some (Modarith.of_nat ctx_p (Nat.add (Nat.of_bytes_be payload) Nat.one))

    let extract el =
      let v = Modarith.to_nat ctx_p el in
      if Nat.is_zero v then None
      else begin
        let payload = Nat.sub v Nat.one in
        if Nat.bit_length payload > embed_bytes * 8 then None
        else Some (Nat.to_bytes_be ~length:embed_bytes payload)
      end

    let random rng = pow_gen (Scalar.random rng)
    let hash_to_scalar msg = Scalar.of_bytes_mod (Atom_hash.Sha256.digest msg)

    (* Hash-to-group: square the hash value to land in QR(p), then fold to
       the canonical representative; nobody knows its discrete log w.r.t.
       the generator. *)
    let of_hash label =
      let rec go ctr =
        let digest = Atom_hash.Sha256.digest_list [ "zp-of-hash"; label; string_of_int ctr ] in
        let v = Nat.rem (Nat.of_bytes_be digest) params.p in
        let el = norm (Modarith.sqr ctx_p (Modarith.of_nat ctx_p v)) in
        if Modarith.is_zero el || is_one el then go (ctr + 1) else el
      in
      go 0
  end in
  (module G)

(* Cached deterministic parameter sets. [Once], not [lazy]: group
   construction may be requested from several threads (a test harness
   spinning up per-thread nodes), and concurrent forcing of a lazy is an
   error in OCaml 5. *)
let test_params_once = Atom_exec.Once.make (fun () -> derive_params ~bits:96 ~seed:0x5af3)
let medium_params_once = Atom_exec.Once.make (fun () -> derive_params ~bits:256 ~seed:0x5af4)

let test_params () : params = Atom_exec.Once.get test_params_once
let medium_params () : params = Atom_exec.Once.get medium_params_once

let test_group () : (module Group_intf.GROUP) = make (test_params ())
let medium_group () : (module Group_intf.GROUP) = make (medium_params ())
