(* The cyclic-group abstraction underneath all of Atom's cryptography.

   Two backends implement this signature: [P256] (the curve the paper's
   prototype uses) and [Zp] (a Schnorr group over a safe prime, much faster
   in pure OCaml and used to keep the end-to-end protocol tests quick).
   Everything above — ElGamal, NIZKs, verifiable shuffles, secret sharing,
   the Atom protocol itself — is a functor over [GROUP]. *)

open Atom_nat

module type GROUP = sig
  val name : string

  (** Scalars: the field Z_q where q is the (prime) group order. *)
  module Scalar : sig
    type t

    val order : Nat.t
    val zero : t
    val one : t
    val of_nat : Nat.t -> t
    val to_nat : t -> Nat.t
    val of_int : int -> t
    val add : t -> t -> t
    val sub : t -> t -> t
    val mul : t -> t -> t
    val neg : t -> t

    val inv : t -> t
    (** @raise Division_by_zero on zero. *)

    val equal : t -> t -> bool
    val is_zero : t -> bool

    val random : Atom_util.Rng.t -> t
    (** Uniform in [0, q). *)

    val of_bytes_mod : string -> t
    (** Interpret big-endian bytes modulo q (hash-to-scalar). *)

    val to_bytes : t -> string
    (** Fixed-length big-endian encoding. *)
  end

  type t
  (** A group element. Values are canonical: [equal] is structural. *)

  type scalar = Scalar.t

  val generator : t
  val one : t
  (** The identity element. *)

  val mul : t -> t -> t
  (** The group operation. *)

  val inv : t -> t
  val div : t -> t -> t

  val pow : t -> scalar -> t
  (** [pow x k] is x^k (scalar multiplication for curves). *)

  val pow_gen : scalar -> t
  (** [pow_gen k] = [pow generator k]. Backends may serve this from a
      precomputed fixed-base table. *)

  (* Fast-path multi-exponentiation. Every operation below is semantically
     a composition of [pow] and [mul]; backends are free to implement them
     with shared-doubling tricks (Shamir/Straus, Pippenger buckets) and
     batch affine normalization. [Naive_multi] provides honest fallbacks.

     The batch entry points take an optional [?pool]: an
     [Atom_exec.Pool.t] to spread the work over. Results are bit-identical
     for every pool size (and for no pool at all) — parallelism is purely
     an execution-time concern. When [?pool] is omitted the process-wide
     default pool ([ATOM_DOMAINS]) applies. *)

  val pow2 : t -> scalar -> t -> scalar -> t
  (** [pow2 a j b k] = a^j · b^k (double-scalar multiplication, the shape of
      every sigma-protocol verification equation). *)

  val msm : ?pool:Atom_exec.Pool.t -> (t * scalar) array -> t
  (** Multi-scalar multiplication: [msm [|(x1,k1);…|]] = Π xi^ki; the empty
      product is [one]. *)

  val pow_batch : ?pool:Atom_exec.Pool.t -> t -> scalar array -> t array
  (** [pow_batch x ks] = [|x^k1; x^k2; …|]: one base, many scalars. The
      base's window table is built once and curve backends normalize the
      whole batch with a single field inversion. *)

  val pow_gen_batch : ?pool:Atom_exec.Pool.t -> scalar array -> t array
  (** [pow_gen_batch ks] = [pow_batch generator ks], served from the
      fixed-base table. *)

  val equal : t -> t -> bool
  val is_one : t -> bool

  val element_bytes : int
  (** Length of the canonical encoding. *)

  val to_bytes : t -> string

  val of_bytes : string -> t option
  (** Decode with full validation (subgroup / curve membership); [None] on
      malformed input. *)

  (* ---- Membership verification ----

     Wire decode used to spend a full exponentiation per element on the
     subgroup check; both backends now verify membership structurally
     (P-256 decompression solves the curve equation; Zp uses the group of
     signed quadratic residues, where membership is a range check on the
     canonical representative). The batch API below is the decode hot
     path's single entry point, and [Unverified] is the typed escape hatch
     for deferring even that check. *)

  val is_member : t -> bool
  (** Full membership predicate on an already-constructed value. [true]
      for everything produced by this module's own operations; only
      hand-built representations (e.g. a raw affine point) can fail. *)

  val check_batch : ?pool:Atom_exec.Pool.t -> t array -> bool
  (** One membership verdict for a whole batch ([true] for the empty
      batch). Equivalent to [Array.for_all is_member] but free to amortize
      (and to spread across [?pool]); a single non-member anywhere in the
      batch makes the whole batch fail. *)

  val find_non_member : t array -> int option
  (** Index of the first non-member, for diagnostics after a failed
      {!check_batch}: the per-element fallback that names the culprit. *)

  (** Structurally-decoded elements whose membership check is still owed.

      [elt] is deliberately NOT [t]: an undischarged element cannot reach
      group arithmetic by construction — the only way out is {!discharge}
      (or {!discharge_batch}), which runs the membership check. This
      closes the old [of_bytes_unchecked] hole where deferred-validation
      values were ordinary [t]s. Backends whose structural decode is
      already fully validating (P-256) discharge for free; Zp defers its
      canonical-range subgroup check to discharge time. *)
  module Unverified : sig
    type elt

    val of_bytes : string -> elt option
    (** Structural checks only (length / field range); [None] on malformed
        input. Accepts a superset of {!of_bytes}: anything it accepts that
        full validation would reject is caught at discharge. *)

    val of_bytes_sub : string -> pos:int -> elt option
    (** [of_bytes_sub s ~pos] decodes [element_bytes] bytes at [pos]
        without copying the slice — the zero-copy view decode for wire
        parsers. [None] on a short buffer or malformed encoding. *)

    val discharge : elt -> t option
    (** Run the membership check; [None] on a non-member. *)

    val discharge_batch : ?pool:Atom_exec.Pool.t -> elt array -> (t array, int) result
    (** Discharge a whole batch with one amortized check; on failure
        falls back to per-element checks and reports the index of the
        first non-member as [Error i]. *)
  end

  val embed_bytes : int
  (** Payload capacity of {!embed}, in bytes. *)

  val embed : string -> t option
  (** Encode up to [embed_bytes] bytes of payload as a group element
      (left-padded with zeros). [None] only on oversized input. *)

  val extract : t -> string option
  (** Recover the [embed_bytes]-byte payload from an embedded element;
      [None] if the element does not carry an embedding. *)

  val random : Atom_util.Rng.t -> t
  (** A uniform group element (with known-nothing discrete log only if the
      RNG is secret; simulation-grade). *)

  val hash_to_scalar : string -> scalar
  (** Fiat–Shamir hash: SHA-256 of the input, reduced mod q. *)

  val of_hash : string -> t
  (** Derive a group element with publicly unknown discrete log from a label
      (hash-to-group). Used for the independent commitment generators of the
      verifiable shuffle. *)
end

(** What a backend must provide before the multi-exponentiation fast path
    is bolted on. *)
module type POW_CORE = sig
  type t
  type scalar

  val one : t
  val mul : t -> t -> t
  val pow : t -> scalar -> t
  val pow_gen : scalar -> t
end

(** Honest (naive-composition) fallbacks for the multi-exponentiation
    operations, for backends without a bespoke fast path. Results agree
    with the specialized implementations by construction — the property
    tests pin the specialized paths against these shapes. *)
module Naive_multi (B : POW_CORE) = struct
  let pow2 a j b k = B.mul (B.pow a j) (B.pow b k)

  (* Per-term exponentiations go to the pool; the fold stays on the
     caller, in index order, so the result matches the sequential fold
     exactly (group multiplication is exact and canonical). *)
  let msm ?pool pairs =
    let terms = Atom_exec.Pool.map ?pool (fun (x, k) -> B.pow x k) pairs in
    Array.fold_left B.mul B.one terms

  let pow_batch ?pool x ks = Atom_exec.Pool.map ?pool (B.pow x) ks
  let pow_gen_batch ?pool ks = Atom_exec.Pool.map ?pool B.pow_gen ks
end

(** What a backend must provide before the batch membership API is bolted
    on. *)
module type MEMBER_CORE = sig
  type t

  val is_member : t -> bool
end

(** Honest per-element fallback for the batch membership API: sequential
    short-circuit scan for small batches, a pooled sweep above
    [pool_threshold]. Backends with a cheaper amortized check (a combined
    random-linear-combination verification, say) override; the property
    tests pin any specialized path against this shape. *)
module Naive_check (B : MEMBER_CORE) = struct
  let pool_threshold = 256

  let check_batch ?pool (els : B.t array) : bool =
    let n = Array.length els in
    match Atom_exec.Pool.resolve pool with
    | Some p when n >= pool_threshold && Atom_exec.Pool.size p > 1 ->
        Array.for_all Fun.id (Atom_exec.Pool.map ~pool:p B.is_member els)
    | _ ->
        let rec go i = i >= n || (B.is_member els.(i) && go (i + 1)) in
        go 0

  let find_non_member (els : B.t array) : int option =
    let n = Array.length els in
    let rec go i = if i >= n then None else if B.is_member els.(i) then go (i + 1) else Some i in
    go 0
end
