(** Schnorr group backend over a safe prime p = 2q + 1, represented as the
    group of signed quadratic residues QR⁺(p): the set {1, …, q} under
    a∘b = |a·b mod p|, isomorphic to the classic residue subgroup QR(p)
    (Hofheinz–Kiltz). The representation makes subgroup membership a
    range check (1 ≤ v ≤ q) on the canonical encoding instead of an
    Euler-criterion exponentiation, so wire decode validates elements
    structurally — see DESIGN.md, "Wire validation policies".

    Much faster than P-256 in pure OCaml, so the protocol test-suites run
    on this backend. Groups are built from {!params}; the derived test and
    medium parameter sets are cached, but each [test_group] /
    [medium_group] call builds a fresh first-class module (instances are
    safe to share across domains and threads either way — see
    {!Atom_nat.Modarith}). *)

open Atom_nat

type params = { p : Nat.t; q : Nat.t; g : Nat.t }

val derive_params : bits:int -> seed:int -> params
(** Deterministically derive a safe-prime group of the given size. *)

val make : params -> (module Group_intf.GROUP)

val test_params : unit -> params
(** The cached 96-bit parameter set behind {!test_group} — exposed so the
    validation soundness tests can craft non-canonical encodings
    (q < v < p) that structural decode accepts and discharge rejects. *)

val medium_params : unit -> params
(** The cached 256-bit parameter set behind {!medium_group}. *)

val test_group : unit -> (module Group_intf.GROUP)
(** 96-bit group (cached parameters): fast, for tests and examples. *)

val medium_group : unit -> (module Group_intf.GROUP)
(** 256-bit group (cached parameters): realistic modulus size without
    curve arithmetic. *)
