(** Schnorr group backend: the order-q subgroup of quadratic residues of
    Z_p* where p = 2q + 1 is a safe prime.

    Much faster than P-256 in pure OCaml, so the protocol test-suites run
    on this backend. Groups are built from {!params}; the derived test and
    medium parameter sets are cached, but each [test_group] /
    [medium_group] call builds a fresh first-class module (instances are
    safe to share across domains and threads either way — see
    {!Atom_nat.Modarith}). *)

open Atom_nat

type params = { p : Nat.t; q : Nat.t; g : Nat.t }

val derive_params : bits:int -> seed:int -> params
(** Deterministically derive a safe-prime group of the given size. *)

val make : params -> (module Group_intf.GROUP)

val test_group : unit -> (module Group_intf.GROUP)
(** 96-bit group (cached parameters): fast, for tests and examples. *)

val medium_group : unit -> (module Group_intf.GROUP)
(** 256-bit group (cached parameters): realistic modulus size without
    curve arithmetic. *)
