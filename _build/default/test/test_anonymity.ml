(* Statistical anonymity checks on the real protocol: the paper's anonymity
   definition requires the final permutation of honest messages to be
   indistinguishable from random (§2.2). We measure the empirical
   distribution of a target message's output position over many rounds with
   fresh randomness and test uniformity, plus the pairwise-unlinkability
   smoke checks. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
open Atom_core

(* One cheap round (basic variant — anonymity stems from mixing, which is
   identical across variants). Returns the output position of user 0's
   message. *)
let target_position ~seed : int =
  let config = Config.tiny ~variant:Config.Basic ~seed () in
  let r = Atom_util.Rng.create (31337 + seed) in
  let net = Pr.setup r config () in
  let n_users = 6 in
  let msgs = List.init n_users (fun i -> Printf.sprintf "anon-%d" i) in
  let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
  let outcome = Pr.run r net subs in
  assert (outcome.Pr.aborted = None);
  let rec find i = function
    | [] -> -1
    | m :: rest -> if m = "anon-0" then i else find (i + 1) rest
  in
  find 0 outcome.Pr.delivered

let test_output_position_uniform () =
  let rounds = 180 and slots = 6 in
  let counts = Array.make slots 0 in
  for seed = 1 to rounds do
    let p = target_position ~seed in
    Alcotest.(check bool) "message delivered" true (p >= 0 && p < slots);
    counts.(p) <- counts.(p) + 1
  done;
  (* Chi-square with 5 dof: 99.9th percentile is 20.5. *)
  let chi = Atom_util.Stats.chi_square_uniform counts in
  Alcotest.(check bool)
    (Printf.sprintf "position uniform (chi2 = %.1f, counts %s)" chi
       (String.concat "," (Array.to_list (Array.map string_of_int counts))))
    true (chi < 20.5)

(* Two messages entering through the SAME entry group must not stay
   correlated: over many rounds the event "user 0's message precedes user
   4's" (they share entry group 0 in the tiny config) should be a fair
   coin. *)
let test_same_entry_group_unlinkable () =
  let rounds = 120 in
  let before = ref 0 in
  for seed = 1000 to 999 + rounds do
    let config = Config.tiny ~variant:Config.Basic ~seed () in
    let r = Atom_util.Rng.create (777 + seed) in
    let net = Pr.setup r config () in
    let msgs = List.init 6 (fun i -> Printf.sprintf "pair-%d" i) in
    let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
    let outcome = Pr.run r net subs in
    let pos target =
      let rec find i = function
        | [] -> -1
        | m :: rest -> if m = target then i else find (i + 1) rest
      in
      find 0 outcome.Pr.delivered
    in
    if pos "pair-0" < pos "pair-4" then incr before
  done;
  (* Binomial(120, 1/2): P[|X - 60| > 22] < 0.01%. *)
  Alcotest.(check bool)
    (Printf.sprintf "order is a fair coin (%d/%d)" !before rounds)
    true
    (abs (!before - (rounds / 2)) <= 22)

(* The adversary observing ciphertext bytes at an intermediate hop learns
   nothing: rerandomized ciphertexts of the same plaintext under the same
   key are (computationally) fresh — byte-level check that nothing is
   preserved. *)
let test_rerandomization_refreshes_bytes () =
  let r = Atom_util.Rng.create 2718 in
  let module El = Pr.El in
  let kp = El.keygen r in
  let m = G.random r in
  let ct, _ = El.enc r kp.El.pk m in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 50 do
    let ct', _ = Option.get (El.rerandomize r kp.El.pk ct) in
    let bytes = El.cipher_to_bytes ct' in
    Alcotest.(check bool) "fresh bytes" false (Hashtbl.mem seen bytes);
    Hashtbl.add seen bytes ()
  done

let suite =
  ( "anonymity",
    [
      Alcotest.test_case "output position uniform" `Slow test_output_position_uniform;
      Alcotest.test_case "same entry group unlinkable" `Slow test_same_entry_group_unlinkable;
      Alcotest.test_case "rerandomization refreshes bytes" `Quick test_rerandomization_refreshes_bytes;
    ] )
