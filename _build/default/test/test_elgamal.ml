(* Tests for atom_elgamal: the Appendix-A rerandomizable / out-of-order
   re-encryptable ElGamal variant and the IND-CCA2 KEM envelope. *)

module Run (G : Atom_group.Group_intf.GROUP) = struct
  module El = Atom_elgamal.Elgamal.Make (G)

  let rng () = Atom_util.Rng.create (Atom_util.Rng.hash_string ("elgamal" ^ G.name))

  let test_enc_dec () =
    let r = rng () in
    for _ = 1 to 5 do
      let kp = El.keygen r in
      let m = G.random r in
      let ct, _ = El.enc r kp.El.pk m in
      match El.dec kp.El.sk ct with
      | Some m' -> Alcotest.(check bool) "roundtrip" true (G.equal m m')
      | None -> Alcotest.fail "decryption failed"
    done

  let test_dec_wrong_key () =
    let r = rng () in
    let kp = El.keygen r and kp2 = El.keygen r in
    let m = G.random r in
    let ct, _ = El.enc r kp.El.pk m in
    match El.dec kp2.El.sk ct with
    | Some m' -> Alcotest.(check bool) "wrong key garbles" false (G.equal m m')
    | None -> Alcotest.fail "plain dec should not fail"

  let test_rerandomize () =
    let r = rng () in
    let kp = El.keygen r in
    let m = G.random r in
    let ct, _ = El.enc r kp.El.pk m in
    match El.rerandomize r kp.El.pk ct with
    | None -> Alcotest.fail "rerandomize failed"
    | Some (ct', _) ->
        Alcotest.(check bool) "ciphertext changed" false (El.cipher_equal ct ct');
        Alcotest.(check bool) "plaintext preserved" true
          (G.equal m (Option.get (El.dec kp.El.sk ct')))

  let test_anytrust_group_key () =
    (* The group key is the product of member keys; decrypting requires every
       member's share. *)
    let r = rng () in
    let members = List.init 4 (fun _ -> El.keygen r) in
    let gpk = El.combine_pks (List.map (fun kp -> kp.El.pk) members) in
    let m = G.random r in
    let ct, _ = El.enc r gpk m in
    (* Strip shares one by one via reenc with next_pk = None. *)
    let final =
      List.fold_left
        (fun ct kp -> fst (El.reenc r ~share:kp.El.sk ~next_pk:None ct))
        ct members
    in
    Alcotest.(check bool) "plaintext recovered" true (G.equal m (El.plaintext_of_exit final));
    (* With one member missing the result is garbage. *)
    let partial =
      match members with
      | _ :: rest ->
          List.fold_left (fun ct kp -> fst (El.reenc r ~share:kp.El.sk ~next_pk:None ct)) ct rest
      | [] -> assert false
    in
    Alcotest.(check bool) "missing share garbles" false
      (G.equal m (El.plaintext_of_exit partial))

  (* The heart of Atom: a ciphertext encrypted only to the entry group can be
     routed through a chain of groups, each collectively stripping its own
     layer while re-encrypting toward the next group, out of order. *)
  let test_out_of_order_pipeline () =
    let r = rng () in
    let n_groups = 4 and k = 3 in
    let groups =
      Array.init n_groups (fun _ -> Array.init k (fun _ -> El.keygen r))
    in
    let gpk g = El.combine_pks (Array.to_list (Array.map (fun kp -> kp.El.pk) groups.(g))) in
    let m = G.random r in
    let ct0, _ = El.enc r (gpk 0) m in
    let ct = ref ct0 in
    for g = 0 to n_groups - 1 do
      let next_pk = if g = n_groups - 1 then None else Some (gpk (g + 1)) in
      (* Each server in the group strips its share and re-encrypts. *)
      Array.iter (fun kp -> ct := fst (El.reenc r ~share:kp.El.sk ~next_pk !ct)) groups.(g);
      if g < n_groups - 1 then begin
        ct := El.clear_y !ct;
        (* Between groups the ciphertext is a plain encryption under the next
           group key: shuffling (rerandomization) must be possible. *)
        match El.rerandomize r (gpk (g + 1)) !ct with
        | Some (ct', _) -> ct := ct'
        | None -> Alcotest.fail "mid-route rerandomize failed"
      end
    done;
    Alcotest.(check bool) "plaintext after 4 groups" true (G.equal m (El.plaintext_of_exit !ct))

  let test_dec_fails_mid_reenc () =
    let r = rng () in
    let kp = El.keygen r in
    let m = G.random r in
    let ct, _ = El.enc r kp.El.pk m in
    let mid, _ = El.reenc r ~share:kp.El.sk ~next_pk:(Some kp.El.pk) ct in
    Alcotest.(check bool) "Y <> bot rejected by Dec" true (El.dec kp.El.sk mid = None);
    Alcotest.(check bool) "Y <> bot rejected by rerandomize" true
      (El.rerandomize r kp.El.pk mid = None)

  let test_shuffle_preserves_multiset () =
    let r = rng () in
    let kp = El.keygen r in
    let msgs = Array.init 8 (fun _ -> G.random r) in
    let cts = Array.map (fun m -> fst (El.enc r kp.El.pk m)) msgs in
    match El.shuffle r kp.El.pk cts with
    | None -> Alcotest.fail "shuffle failed"
    | Some (out, wit) ->
        Alcotest.(check int) "same count" 8 (Array.length out);
        (* Decrypting the outputs yields the same multiset of messages. *)
        let dec_out = Array.map (fun ct -> Option.get (El.dec kp.El.sk ct)) out in
        Array.iteri
          (fun i ct_out ->
            ignore ct_out;
            Alcotest.(check bool) "witness consistent" true
              (G.equal dec_out.(i) msgs.(wit.El.permutation.(i))))
          out;
        let key m = Atom_util.Hex.encode (G.to_bytes m) in
        let sort a = List.sort compare (List.map key (Array.to_list a)) in
        Alcotest.(check (list string)) "multiset preserved" (sort msgs) (sort dec_out)

  let test_vec_roundtrip () =
    let r = rng () in
    let kp = El.keygen r in
    let ms = Array.init 3 (fun _ -> G.random r) in
    let v, _ = El.enc_vec r kp.El.pk ms in
    match El.dec_vec kp.El.sk v with
    | None -> Alcotest.fail "vec dec failed"
    | Some ms' ->
        Alcotest.(check int) "width" 3 (Array.length ms');
        Array.iteri (fun i m -> Alcotest.(check bool) "component" true (G.equal m ms'.(i))) ms

  let test_cipher_serialization () =
    let r = rng () in
    let kp = El.keygen r in
    let m = G.random r in
    let ct, _ = El.enc r kp.El.pk m in
    (match El.cipher_of_bytes (El.cipher_to_bytes ct) with
    | Some ct' -> Alcotest.(check bool) "y=bot roundtrip" true (El.cipher_equal ct ct')
    | None -> Alcotest.fail "decode failed");
    let mid, _ = El.reenc r ~share:kp.El.sk ~next_pk:(Some kp.El.pk) ct in
    (match El.cipher_of_bytes (El.cipher_to_bytes mid) with
    | Some ct' -> Alcotest.(check bool) "y<>bot roundtrip" true (El.cipher_equal mid ct')
    | None -> Alcotest.fail "decode failed");
    Alcotest.(check bool) "garbage rejected" true (El.cipher_of_bytes "nonsense" = None)

  let test_multiplicative_homomorphism () =
    (* ElGamal is multiplicatively homomorphic: Enc(m1)*Enc(m2) decrypts to
       m1*m2 — the property rerandomization (multiplying by Enc(1)) relies
       on. *)
    let r = rng () in
    let kp = El.keygen r in
    for _ = 1 to 5 do
      let m1 = G.random r and m2 = G.random r in
      let c1, _ = El.enc r kp.El.pk m1 and c2, _ = El.enc r kp.El.pk m2 in
      let prod = { El.r = G.mul c1.El.r c2.El.r; El.c = G.mul c1.El.c c2.El.c; El.y = None } in
      Alcotest.(check bool) "homomorphic" true
        (G.equal (G.mul m1 m2) (Option.get (El.dec kp.El.sk prod)))
    done

  let test_rerandomize_composes () =
    let r = rng () in
    let kp = El.keygen r in
    let m = G.random r in
    let ct, _ = El.enc r kp.El.pk m in
    let ct = ref ct in
    for _ = 1 to 10 do
      ct := fst (Option.get (El.rerandomize r kp.El.pk !ct))
    done;
    Alcotest.(check bool) "10x rerandomized still decrypts" true
      (G.equal m (Option.get (El.dec kp.El.sk !ct)))

  let test_kem_roundtrip () =
    let r = rng () in
    let kp = El.keygen r in
    let msg = "inner plaintext: dialing request for bob" in
    let sealed = El.Kem.enc r kp.El.pk msg in
    Alcotest.(check (option string)) "roundtrip" (Some msg) (El.Kem.dec kp.El.sk sealed);
    (* Serialization roundtrip. *)
    (match El.Kem.of_bytes (El.Kem.to_bytes sealed) with
    | Some sealed' -> Alcotest.(check (option string)) "serialized" (Some msg) (El.Kem.dec kp.El.sk sealed')
    | None -> Alcotest.fail "kem decode failed")

  let test_kem_non_malleable () =
    let r = rng () in
    let kp = El.keygen r in
    let sealed = El.Kem.enc r kp.El.pk "attack at dawn" in
    (* Tamper with the box: must fail to decrypt. *)
    let bytes = Bytes.of_string sealed.El.Kem.box in
    Bytes.set bytes 0 (Char.chr (Char.code (Bytes.get bytes 0) lxor 1));
    let tampered = { sealed with El.Kem.box = Bytes.to_string bytes } in
    Alcotest.(check (option string)) "tampered box" None (El.Kem.dec kp.El.sk tampered);
    (* Swap the KEM share: AAD binding must break it. *)
    let other = El.Kem.enc r kp.El.pk "attack at dawn" in
    let spliced = { sealed with El.Kem.share = other.El.Kem.share } in
    Alcotest.(check (option string)) "spliced share" None (El.Kem.dec kp.El.sk spliced)

  let test_kem_threshold () =
    let r = rng () in
    (* Trustees with additive shares: pk = g^(x1+x2+x3). *)
    let trustees = List.init 3 (fun _ -> El.keygen r) in
    let pk = El.combine_pks (List.map (fun kp -> kp.El.pk) trustees) in
    let sealed = El.Kem.enc r pk "trap-protected inner ciphertext" in
    let partials = List.map (fun kp -> El.Kem.partial kp.El.sk sealed) trustees in
    Alcotest.(check (option string)) "all partials" (Some "trap-protected inner ciphertext")
      (El.Kem.dec_with_partials partials sealed);
    (* One missing trustee: failure (all-or-nothing release, §4.4). *)
    Alcotest.(check (option string)) "missing partial" None
      (El.Kem.dec_with_partials (List.tl partials) sealed)

  let cases =
    let n = G.name in
    [
      Alcotest.test_case (n ^ " enc/dec") `Quick test_enc_dec;
      Alcotest.test_case (n ^ " wrong key") `Quick test_dec_wrong_key;
      Alcotest.test_case (n ^ " rerandomize") `Quick test_rerandomize;
      Alcotest.test_case (n ^ " anytrust group key") `Quick test_anytrust_group_key;
      Alcotest.test_case (n ^ " out-of-order pipeline") `Quick test_out_of_order_pipeline;
      Alcotest.test_case (n ^ " dec rejects mid-reenc") `Quick test_dec_fails_mid_reenc;
      Alcotest.test_case (n ^ " shuffle multiset") `Quick test_shuffle_preserves_multiset;
      Alcotest.test_case (n ^ " vector ciphertexts") `Quick test_vec_roundtrip;
      Alcotest.test_case (n ^ " serialization") `Quick test_cipher_serialization;
      Alcotest.test_case (n ^ " multiplicative homomorphism") `Quick test_multiplicative_homomorphism;
      Alcotest.test_case (n ^ " rerandomize composes") `Quick test_rerandomize_composes;
      Alcotest.test_case (n ^ " kem roundtrip") `Quick test_kem_roundtrip;
      Alcotest.test_case (n ^ " kem non-malleable") `Quick test_kem_non_malleable;
      Alcotest.test_case (n ^ " kem threshold") `Quick test_kem_threshold;
    ]
end

let suite () =
  let module G_zp = (val Atom_group.Registry.zp_test ()) in
  let module Zp_run = Run (G_zp) in
  let module P256_run = Run (Atom_group.P256) in
  ("elgamal", Zp_run.cases @ P256_run.cases)
