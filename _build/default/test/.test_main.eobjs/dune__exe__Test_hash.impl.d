test/test_hash.ml: Alcotest Atom_hash Atom_util Char Hmac Keccak List Printf QCheck2 QCheck_alcotest Sha256 String
