test/test_secret.ml: Alcotest Array Atom_elgamal Atom_group Atom_nat Atom_secret Atom_util List Option Printf QCheck2 QCheck_alcotest
