test/test_extended.ml: Alcotest Array Atom_core Atom_group Atom_util Beacon Char Config Controller Dialing Group_formation List Printf QCheck2 QCheck_alcotest Simulate String
