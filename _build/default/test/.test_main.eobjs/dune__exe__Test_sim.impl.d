test/test_sim.ml: Alcotest Array Atom_sim Atom_util Engine Float List Machine Mailbox Net Resource
