test/test_zkp.ml: Alcotest Array Atom_elgamal Atom_group Atom_util Atom_zkp List Option Printf
