test/test_cipher.ml: Aead Alcotest Atom_cipher Atom_util Bytes Chacha20 Char List Poly1305 Printf QCheck2 QCheck_alcotest String
