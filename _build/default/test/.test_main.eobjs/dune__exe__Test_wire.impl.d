test/test_wire.ml: Alcotest Array Atom_core Atom_group Atom_util Bulletin Bytes Char Config Controller List Option Printf QCheck2 QCheck_alcotest String
