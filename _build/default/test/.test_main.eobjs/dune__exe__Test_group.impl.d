test/test_group.ml: Alcotest Atom_group Atom_nat Atom_util Nat Option Printf String
