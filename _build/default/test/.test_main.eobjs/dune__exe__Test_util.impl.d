test/test_util.ml: Alcotest Array Atom_util Float Fun Hex List QCheck2 QCheck_alcotest Rng Stats
