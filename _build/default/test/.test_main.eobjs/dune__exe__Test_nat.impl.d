test/test_nat.ml: Alcotest Array Atom_nat Atom_util Char List Modarith Nat Prime Printf QCheck2 QCheck_alcotest String
