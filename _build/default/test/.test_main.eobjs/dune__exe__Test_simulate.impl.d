test/test_simulate.ml: Alcotest Array Atom_core Atom_util Calibration Config Printf Simulate
