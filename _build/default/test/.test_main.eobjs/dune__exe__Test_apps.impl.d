test/test_apps.ml: Alcotest Array Atom_core Atom_group Atom_util Bulletin Config Cost_model Dialing List Printf String
