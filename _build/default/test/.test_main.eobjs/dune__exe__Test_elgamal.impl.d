test/test_elgamal.ml: Alcotest Array Atom_elgamal Atom_group Atom_util Bytes Char List Option
