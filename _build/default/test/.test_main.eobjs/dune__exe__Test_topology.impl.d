test/test_topology.ml: Alcotest Array Atom_topology Atom_util Fun Group_sizing List Printf Topology
