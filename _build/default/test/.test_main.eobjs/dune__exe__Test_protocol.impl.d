test/test_protocol.ml: Alcotest Array Atom_core Atom_group Atom_util Beacon Config Group_formation List Option Printf String
