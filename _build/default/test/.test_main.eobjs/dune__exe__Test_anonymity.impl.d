test/test_anonymity.ml: Alcotest Array Atom_core Atom_group Atom_util Config Hashtbl List Option Printf String
