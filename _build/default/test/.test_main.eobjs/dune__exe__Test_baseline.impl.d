test/test_baseline.ml: Alcotest Atom_baseline Atom_util Bytes Dpf List Printf Riposte String Vuvuzela
