(* Tests for the two applications (§5): the bulletin board and the dialing
   protocol with differential-privacy dummies, including an end-to-end
   dialing flow over the real protocol engine. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
module El = Pr.El
open Atom_core

let test_bulletin () =
  let b = Bulletin.create () in
  Bulletin.publish_round b ~round:0 [ "first"; "second" ];
  Bulletin.publish_round b ~round:1 [ "third" ];
  Alcotest.(check (list string)) "round 0" [ "first"; "second" ] (Bulletin.read_round b ~round:0);
  Alcotest.(check (list string)) "round 1" [ "third" ] (Bulletin.read_round b ~round:1);
  Alcotest.(check (list string)) "missing round" [] (Bulletin.read_round b ~round:7);
  Alcotest.(check int) "size" 3 (Bulletin.size b)

let test_dialing_codec () =
  let rid = Dialing.id_of_user "bob" in
  Alcotest.(check int) "id length" Dialing.id_bytes (String.length rid);
  let msg = Dialing.encode ~recipient:rid ~payload:"alice-key-material" in
  (match Dialing.decode msg with
  | Some (r, p) ->
      Alcotest.(check string) "recipient" rid r;
      Alcotest.(check string) "payload" "alice-key-material" p
  | None -> Alcotest.fail "decode failed");
  Alcotest.(check bool) "short rejected" true (Dialing.decode "abc" = None)

let test_mailbox_assignment () =
  (* Deterministic, in range, and reasonably spread. *)
  let mailboxes = 16 in
  let ids = List.init 200 (fun i -> Dialing.id_of_user (Printf.sprintf "user-%d" i)) in
  let counts = Array.make mailboxes 0 in
  List.iter
    (fun id ->
      let mb = Dialing.mailbox_of ~mailboxes id in
      Alcotest.(check bool) "in range" true (mb >= 0 && mb < mailboxes);
      Alcotest.(check int) "deterministic" mb (Dialing.mailbox_of ~mailboxes id);
      counts.(mb) <- counts.(mb) + 1)
    ids;
  Alcotest.(check bool) "spread" true (Atom_util.Stats.chi_square_uniform counts < 50.)

let test_deliver_download () =
  let mailboxes = 8 in
  let bob = Dialing.id_of_user "bob" and carol = Dialing.id_of_user "carol" in
  let delivered =
    [
      Dialing.encode ~recipient:bob ~payload:"from-alice";
      Dialing.encode ~recipient:carol ~payload:"from-dave";
      Dialing.encode ~recipient:bob ~payload:"from-erin";
    ]
  in
  let st = Dialing.deliver ~mailboxes delivered in
  let bob_gets = List.sort compare (Dialing.download st ~mailboxes ~recipient_id:bob) in
  Alcotest.(check (list string)) "bob's dials" [ "from-alice"; "from-erin" ] bob_gets;
  Alcotest.(check (list string)) "carol's dials" [ "from-dave" ]
    (Dialing.download st ~mailboxes ~recipient_id:carol);
  Alcotest.(check (list string)) "stranger gets nothing" []
    (Dialing.download st ~mailboxes ~recipient_id:(Dialing.id_of_user "mallory"))

let test_dummies () =
  let rng = Atom_util.Rng.create 31 in
  let dummies =
    Dialing.generate_dummies rng ~trustees:4 ~mu:50. ~b:10. ~mailboxes:8 ~payload_bytes:32
  in
  let n = List.length dummies in
  (* 4 trustees x (50 +/- noise): far from zero, near 200. *)
  Alcotest.(check bool) (Printf.sprintf "count %d plausible" n) true (n > 100 && n < 300);
  List.iter
    (fun d -> Alcotest.(check bool) "well-formed" true (Dialing.decode d <> None))
    dummies;
  (* DP accounting. *)
  Alcotest.(check (float 1e-9)) "epsilon" 0.1 (Dialing.epsilon ~b:10.);
  Alcotest.(check bool) "delta small" true (Dialing.delta ~mu:50. ~b:10. < 0.005)

(* End-to-end dialing over the real protocol: Alice dials Bob through Atom;
   Bob downloads his mailbox and recovers Alice's key, with dummies mixed
   in. *)
let test_dialing_end_to_end () =
  let r = Atom_util.Rng.create 0xd1a1 in
  let config = { (Config.tiny ~variant:Config.Trap ()) with Config.msg_bytes = 72 } in
  let net = Pr.setup r config () in
  (* Bob's long-term keypair; Alice seals her identity key to him. *)
  let bob_kp = El.keygen r in
  let bob_id = Dialing.id_of_user "bob" in
  let alice_key = "alice-ephemeral-key-0001" in
  let sealed = El.Kem.to_bytes (El.Kem.enc r bob_kp.El.pk alice_key) in
  Alcotest.(check bool) "dial fits" true
    (Dialing.id_bytes + String.length sealed <= config.Config.msg_bytes);
  let dial = Dialing.encode ~recipient:bob_id ~payload:sealed in
  (* Other users' cover dials. *)
  let others =
    List.init 5 (fun i ->
        Dialing.encode
          ~recipient:(Dialing.id_of_user (Printf.sprintf "user%d" i))
          ~payload:(Atom_util.Rng.bytes r 16))
  in
  let msgs = dial :: others in
  let subs =
    List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod config.Config.n_groups) m) msgs
  in
  let outcome = Pr.run r net subs in
  Alcotest.(check bool) "round clean" true (outcome.Pr.aborted = None);
  let st = Dialing.deliver ~mailboxes:config.Config.mailboxes outcome.Pr.delivered in
  let payloads =
    Dialing.download st ~mailboxes:config.Config.mailboxes ~recipient_id:bob_id
  in
  Alcotest.(check int) "one dial for bob" 1 (List.length payloads);
  (match El.Kem.of_bytes (List.hd payloads) with
  | Some s -> Alcotest.(check (option string)) "bob decrypts" (Some alice_key) (El.Kem.dec bob_kp.El.sk s)
  | None -> Alcotest.fail "payload not a KEM box")

let test_cost_model () =
  let e4 = Cost_model.server_estimate ~cores:4 () in
  (* §7: ~2,700 reenc/s and ~9,200 shuffle/s per 4-core server; ~300 KB/s
     rate-matched bandwidth; ~$7.2/month egress. *)
  Alcotest.(check bool) "reenc rate" true
    (e4.Cost_model.reenc_msgs_per_sec > 2_000. && e4.Cost_model.reenc_msgs_per_sec < 4_000.);
  Alcotest.(check bool) "shuffle rate" true
    (e4.Cost_model.shuffle_msgs_per_sec > 7_000. && e4.Cost_model.shuffle_msgs_per_sec < 12_000.);
  Alcotest.(check bool) "bandwidth ~300KB/s" true
    (e4.Cost_model.bandwidth_bytes_per_sec > 2e5 && e4.Cost_model.bandwidth_bytes_per_sec < 4e5);
  Alcotest.(check bool) "egress cost ~$7" true
    (e4.Cost_model.bandwidth_month > 4. && e4.Cost_model.bandwidth_month < 10.);
  Alcotest.(check (float 1e-9)) "compute $146" 146. e4.Cost_model.compute_month;
  (* 36-core scales ~linearly (§7: ~$65/month bandwidth). *)
  let e36 = Cost_model.server_estimate ~cores:36 () in
  Alcotest.(check bool) "36-core egress ~$65" true
    (e36.Cost_model.bandwidth_month > 40. && e36.Cost_model.bandwidth_month < 90.)

let suite =
  ( "apps",
    [
      Alcotest.test_case "bulletin board" `Quick test_bulletin;
      Alcotest.test_case "dialing codec" `Quick test_dialing_codec;
      Alcotest.test_case "mailbox assignment" `Quick test_mailbox_assignment;
      Alcotest.test_case "deliver/download" `Quick test_deliver_download;
      Alcotest.test_case "dp dummies" `Quick test_dummies;
      Alcotest.test_case "dialing end-to-end" `Quick test_dialing_end_to_end;
      Alcotest.test_case "deployment cost model" `Quick test_cost_model;
    ] )
