(* Tests for atom_baseline: DPF correctness, Riposte toy round, and the
   calibrated comparator models behind Table 12. *)

open Atom_baseline

let test_dpf_point_function () =
  let rng = Atom_util.Rng.create 41 in
  let rows = 5 and cols = 7 and cell_bytes = 16 in
  let ka, kb = Dpf.gen rng ~rows ~cols ~cell_bytes ~row:2 ~col:4 "secret!" in
  let a = Dpf.expand ka and b = Dpf.expand kb in
  let combined = Dpf.xor_strings (Bytes.to_string a) (Bytes.to_string b) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let cell = String.sub combined (((r * cols) + c) * cell_bytes) cell_bytes in
      if r = 2 && c = 4 then
        Alcotest.(check string) "target cell" ("secret!" ^ String.make 9 '\000') cell
      else
        Alcotest.(check string) (Printf.sprintf "zero cell %d,%d" r c)
          (String.make cell_bytes '\000') cell
    done
  done

let test_dpf_share_looks_random () =
  (* A single key's expansion reveals nothing: it is never all-zero and the
     two shares differ everywhere except by the point function. *)
  let rng = Atom_util.Rng.create 42 in
  let ka, kb = Dpf.gen rng ~rows:4 ~cols:4 ~cell_bytes:8 ~row:0 ~col:0 "x" in
  let a = Bytes.to_string (Dpf.expand ka) and b = Bytes.to_string (Dpf.expand kb) in
  Alcotest.(check bool) "share A not zero" true (a <> String.make (String.length a) '\000');
  Alcotest.(check bool) "shares differ" true (a <> b)

let test_dpf_key_size_sublinear () =
  let rng = Atom_util.Rng.create 43 in
  let size n =
    let ka, _ = Dpf.gen rng ~rows:n ~cols:n ~cell_bytes:8 ~row:0 ~col:0 "m" in
    Dpf.key_bytes ka
  in
  (* Table has n² cells; the key grows ~linearly in n (i.e., sqrt of cells). *)
  let s8 = size 8 and s32 = size 32 in
  Alcotest.(check bool)
    (Printf.sprintf "key grows sublinearly in cells (%d -> %d)" s8 s32)
    true
    (s32 < 16 * s8)

let test_dpf_invalid_args () =
  let rng = Atom_util.Rng.create 44 in
  Alcotest.check_raises "cell out of range" (Invalid_argument "Dpf.gen: cell out of range")
    (fun () -> ignore (Dpf.gen rng ~rows:2 ~cols:2 ~cell_bytes:4 ~row:2 ~col:0 "m"));
  Alcotest.check_raises "message too large" (Invalid_argument "Dpf.gen: message too large")
    (fun () -> ignore (Dpf.gen rng ~rows:2 ~cols:2 ~cell_bytes:2 ~row:0 ~col:0 "toolong"))

let test_riposte_toy_round () =
  let rng = Atom_util.Rng.create 45 in
  let messages = List.init 6 (fun i -> Printf.sprintf "riposte-msg-%d" i) in
  let res = Riposte.run_toy rng ~headroom:64 ~messages ~cell_bytes:32 () in
  (* All messages appear (collisions are possible but unlikely at 4x
     headroom with this seed). *)
  List.iter
    (fun m ->
      Alcotest.(check bool) ("delivered " ^ m) true (List.mem m res.Riposte.delivered))
    messages;
  (* Quadratic server work: the per-server byte count is M x table. *)
  Alcotest.(check bool) "server work recorded" true (res.Riposte.server_bytes_processed > 0)

let test_riposte_quadratic_cost () =
  let rng = Atom_util.Rng.create 46 in
  let work m =
    let messages = List.init m (fun i -> Printf.sprintf "m%d" i) in
    (Riposte.run_toy rng ~messages ~cell_bytes:8 ()).Riposte.server_bytes_processed
  in
  let w8 = work 8 and w32 = work 32 in
  (* 4x messages -> ~16x server work (table grows with M too). *)
  let ratio = float_of_int w32 /. float_of_int w8 in
  Alcotest.(check bool) (Printf.sprintf "quadratic growth (%.1fx)" ratio) true (ratio > 8.)

let test_table12_models () =
  (* The published calibration points. *)
  Alcotest.(check (float 1e-6)) "riposte 1M" 669.2 (Riposte.latency_minutes ~messages:1_000_000);
  Alcotest.(check (float 1e-6)) "vuvuzela 1M" 0.5 (Vuvuzela.dial_latency_minutes ~users:1_000_000);
  (* Shapes: Riposte quadratic, Vuvuzela linear. *)
  Alcotest.(check (float 1e-6)) "riposte 2M = 4x" (4. *. 669.2)
    (Riposte.latency_minutes ~messages:2_000_000);
  Alcotest.(check (float 1e-6)) "vuvuzela 2M = 2x" 1.0
    (Vuvuzela.dial_latency_minutes ~users:2_000_000);
  Alcotest.(check bool) "neither scales horizontally" false
    (Riposte.scales_horizontally || Vuvuzela.scales_horizontally)

let suite =
  ( "baseline",
    [
      Alcotest.test_case "dpf point function" `Quick test_dpf_point_function;
      Alcotest.test_case "dpf share randomness" `Quick test_dpf_share_looks_random;
      Alcotest.test_case "dpf key size" `Quick test_dpf_key_size_sublinear;
      Alcotest.test_case "dpf invalid args" `Quick test_dpf_invalid_args;
      Alcotest.test_case "riposte toy round" `Quick test_riposte_toy_round;
      Alcotest.test_case "riposte quadratic cost" `Quick test_riposte_quadratic_cost;
      Alcotest.test_case "table 12 comparator models" `Quick test_table12_models;
    ] )
