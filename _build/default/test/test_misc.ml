(* Remaining corners: Fiat–Shamir transcript disambiguation, wire-level
   tamper-at-entry, DP dummy clamping, controller edge cases, sizing math
   edges, and deterministic proof generation. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
module El = Pr.El
module P = Pr.P
open Atom_core

(* Length-prefixed transcripts: ["ab"; "c"] and ["a"; "bc"] concatenate to
   the same bytes but must yield different challenges — the classic
   ambiguity attack the framing prevents. *)
let test_transcript_disambiguation () =
  let digest parts =
    let tr = Atom_zkp.Transcript.create ~domain:"d" in
    Atom_zkp.Transcript.add_list tr parts;
    Atom_zkp.Transcript.digest tr
  in
  Alcotest.(check bool) "split points matter" false (digest [ "ab"; "c" ] = digest [ "a"; "bc" ]);
  Alcotest.(check bool) "empty part matters" false (digest [ "ab" ] = digest [ "ab"; "" ]);
  Alcotest.(check string) "deterministic" (digest [ "x"; "y" ]) (digest [ "x"; "y" ]);
  (* Domains separate streams. *)
  let tr1 = Atom_zkp.Transcript.create ~domain:"one" in
  let tr2 = Atom_zkp.Transcript.create ~domain:"two" in
  Atom_zkp.Transcript.add tr1 "same";
  Atom_zkp.Transcript.add tr2 "same";
  Alcotest.(check bool) "domain separation" false
    (Atom_zkp.Transcript.digest tr1 = Atom_zkp.Transcript.digest tr2);
  (* digest_n produces distinct, deterministic challenges. *)
  let tr = Atom_zkp.Transcript.create ~domain:"n" in
  Atom_zkp.Transcript.add tr "seed";
  let a = Atom_zkp.Transcript.digest_n tr 4 in
  Alcotest.(check int) "four challenges" 4 (Array.length a);
  Alcotest.(check int) "all distinct" 4
    (List.length (List.sort_uniq compare (Array.to_list a)))

(* A submission tampered in transit (post-serialization) either fails to
   decode or is rejected by the entry group's proof check — never accepted. *)
let test_wire_tamper_rejected_at_entry () =
  let r = Atom_util.Rng.create 0x3141 in
  let config = Config.tiny ~variant:Config.Basic ~seed:101 () in
  let net = Pr.setup r config () in
  let s = Pr.submit r net ~user:0 ~entry_gid:1 "tamper target" in
  let bytes = Pr.Wire.submission_to_bytes s in
  let seen () = Hashtbl.create 4 in
  let flips = 30 in
  let rr = Atom_util.Rng.create 0x5926 in
  for _ = 1 to flips do
    let i = Atom_util.Rng.int_below rr (String.length bytes) in
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Atom_util.Rng.int_below rr 8)));
    match Pr.Wire.submission_of_bytes (Bytes.to_string b) with
    | None -> () (* malformed: dropped *)
    | Some s' ->
        (* Decoded: either metadata changed (user/gid — harmless routing
           fields the user signs nothing over) or the crypto check fails. *)
        if s'.Pr.user = s.Pr.user && s'.Pr.entry_gid = s.Pr.entry_gid then
          Alcotest.(check bool) "mutated ciphertext/proof rejected" false
            (Pr.verify_submission net (seen ()) s')
  done;
  (* The untouched original still verifies. *)
  Alcotest.(check bool) "original accepted" true
    (Pr.verify_submission net (seen ()) (Option.get (Pr.Wire.submission_of_bytes bytes)))

let test_dummy_count_clamped () =
  (* With b >> mu the Laplace noise often drives the count negative; it must
     clamp to zero and never go below. *)
  let rng = Atom_util.Rng.create 6 in
  let zeros = ref 0 in
  for _ = 1 to 2000 do
    let n = Dialing.dummy_count rng ~mu:1. ~b:50. in
    Alcotest.(check bool) "non-negative" true (n >= 0);
    if n = 0 then incr zeros
  done;
  Alcotest.(check bool) "clamp actually bites" true (!zeros > 500)

let test_controller_basic_variant_inert () =
  let c = Controller.create ~variant:Config.Basic () in
  for _ = 1 to 5 do
    ignore (Controller.record c ~aborted:true ~blamed:[ 1 ])
  done;
  (* No policy for the basic variant: it never switches. *)
  Alcotest.(check bool) "stays basic" true (Controller.variant c = Config.Basic);
  Alcotest.(check (list int)) "still collects blame" [ 1 ] (Controller.blacklist c)

let test_log_sum_exp_edges () =
  let module Gs = Atom_topology.Group_sizing in
  Alcotest.(check (float 1e-12)) "empty" neg_infinity (Gs.log_sum_exp []);
  Alcotest.(check (float 1e-9)) "single" (-3.) (Gs.log_sum_exp [ -3. ]);
  (* log(e^a + e^a) = a + log 2 *)
  Alcotest.(check (float 1e-9)) "doubling" (-3. +. log 2.) (Gs.log_sum_exp [ -3.; -3. ]);
  (* Extreme magnitudes do not overflow. *)
  let v = Gs.log_sum_exp [ -1000.; -1001. ] in
  Alcotest.(check bool) "no underflow to -inf" true (Float.is_finite v && v < -999.);
  (* log_choose sanity: C(5,2) = 10. *)
  Alcotest.(check (float 1e-9)) "choose" (log 10.) (Gs.log_choose 5 2)

(* Proofs are deterministic in the RNG: identical streams produce identical
   proofs (reproducibility of experiments), and different streams produce
   different proofs for the same statement (blinding actually randomizes). *)
let test_proofs_deterministic_in_rng () =
  let make seed =
    let r = Atom_util.Rng.create seed in
    let kp = El.keygen r in
    let m = G.random r in
    let ct, randomness = El.enc r kp.El.pk m in
    (kp, ct, P.Enc_proof.prove r ~pk:kp.El.pk ~context:"det" ct ~randomness)
  in
  let _, _, p1 = make 42 and _, _, p2 = make 42 in
  Alcotest.(check string) "same stream, same proof" (P.Enc_proof.to_bytes p1)
    (P.Enc_proof.to_bytes p2);
  (* Same statement, different blinding. *)
  let r = Atom_util.Rng.create 42 in
  let kp = El.keygen r in
  let m = G.random r in
  let ct, randomness = El.enc r kp.El.pk m in
  let pa = P.Enc_proof.prove r ~pk:kp.El.pk ~context:"det" ct ~randomness in
  let pb = P.Enc_proof.prove r ~pk:kp.El.pk ~context:"det" ct ~randomness in
  Alcotest.(check bool) "fresh blinding" false (P.Enc_proof.to_bytes pa = P.Enc_proof.to_bytes pb);
  Alcotest.(check bool) "both verify" true
    (P.Enc_proof.verify ~pk:kp.El.pk ~context:"det" ct pa
    && P.Enc_proof.verify ~pk:kp.El.pk ~context:"det" ct pb)

(* The trustee group withholds keys when ANY group reports a violation —
   check the count-mismatch path specifically (drop without replacement). *)
let test_trap_drop_without_replacement_always_caught () =
  for seed = 1 to 5 do
    let r = Atom_util.Rng.create (9000 + seed) in
    let config = Config.tiny ~variant:Config.Trap ~seed () in
    let net = Pr.setup r config () in
    let msgs = List.init 5 (fun i -> Printf.sprintf "drop-%d" i) in
    let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
    let fired = ref false in
    let adversary =
      {
        Pr.no_adversary with
        Pr.tamper =
          (fun ~iter ~gid ~next_pk:_ batch ->
            if iter = 1 && gid = 0 && Array.length batch > 0 && not !fired then begin
              fired := true;
              Array.sub batch 0 (Array.length batch - 1) (* outright drop *)
            end
            else batch);
      }
    in
    let outcome = Pr.run r net ~adversary subs in
    Alcotest.(check bool) "dropped" true !fired;
    (* Unlike replacement (50% escape), an outright drop is ALWAYS caught:
       either a trap is missing or the trap/inner counts disagree. *)
    Alcotest.(check bool) "always aborts" true (outcome.Pr.aborted <> None)
  done

(* Cross-round replay: the proof context binds the round number, so a
   submission recorded in round 0 is rejected by round 1's entry group even
   though the group key sampling could, in principle, repeat. *)
let test_cross_round_replay_rejected () =
  let config = Config.tiny ~variant:Config.Basic ~seed:202 () in
  let r = Atom_util.Rng.create 77 in
  let net0 = Pr.setup r config ~round:0 () in
  let s = Pr.submit r net0 ~user:0 ~entry_gid:0 "replay me" in
  Alcotest.(check bool) "valid in round 0" true
    (Pr.verify_submission net0 (Hashtbl.create 4) s);
  let net1 = Pr.setup r config ~round:1 () in
  Alcotest.(check bool) "rejected in round 1" false
    (Pr.verify_submission net1 (Hashtbl.create 4) s)

let test_dkg_verify_dealing_direct () =
  let module Dkg = Pr.Dkg in
  let r = Atom_util.Rng.create 88 in
  let d = Dkg.deal r ~dealer:1 ~k:5 ~threshold:3 in
  for member = 1 to 5 do
    Alcotest.(check bool) (Printf.sprintf "member %d accepts" member) true
      (Dkg.verify_dealing d ~member)
  done;
  (* Corrupt one sub-share: exactly that member rejects. *)
  d.Dkg.shares.(2) <-
    { d.Dkg.shares.(2) with Pr.Sh.value = G.Scalar.add d.Dkg.shares.(2).Pr.Sh.value G.Scalar.one };
  Alcotest.(check bool) "victim rejects" false (Dkg.verify_dealing d ~member:3);
  Alcotest.(check bool) "others unaffected" true (Dkg.verify_dealing d ~member:1)

let test_points_per_msg () =
  (* Paper packing: 160-byte microblog = 5 points, 80-byte dialing = 3. *)
  let cfg = Config.paper_default in
  Alcotest.(check int) "microblog points" 5
    (Simulate.microblog cfg ~n_messages:1).Simulate.points_per_msg;
  Alcotest.(check int) "dialing points" 3
    (Simulate.dialing cfg ~n_messages:1).Simulate.points_per_msg;
  (* Dialing adds the trustees' dummies. *)
  Alcotest.(check int) "dialing dummies" (33 * 13_000)
    (Simulate.dialing cfg ~n_messages:1).Simulate.dummies

let prop_modarith_pow_homomorphism =
  QCheck2.Test.make ~name:"modarith pow is a homomorphism" ~count:50
    QCheck2.Gen.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (x, y) ->
      let module M = Atom_nat.Modarith in
      let module N = Atom_nat.Nat in
      let ctx = M.create (N.of_int 1_000_003 (* prime *)) in
      let g = M.of_int ctx 2 in
      M.equal
        (M.pow ctx g (N.of_int (x + y)))
        (M.mul ctx (M.pow ctx g (N.of_int x)) (M.pow ctx g (N.of_int y))))

let suite =
  ( "misc",
    [
      Alcotest.test_case "transcript disambiguation" `Quick test_transcript_disambiguation;
      Alcotest.test_case "wire tamper rejected at entry" `Quick test_wire_tamper_rejected_at_entry;
      Alcotest.test_case "dummy count clamped" `Quick test_dummy_count_clamped;
      Alcotest.test_case "controller inert for basic" `Quick test_controller_basic_variant_inert;
      Alcotest.test_case "log-space math edges" `Quick test_log_sum_exp_edges;
      Alcotest.test_case "proofs deterministic in rng" `Quick test_proofs_deterministic_in_rng;
      Alcotest.test_case "drop without replacement always caught" `Quick
        test_trap_drop_without_replacement_always_caught;
      Alcotest.test_case "cross-round replay rejected" `Quick test_cross_round_replay_rejected;
      Alcotest.test_case "dkg verify_dealing direct" `Quick test_dkg_verify_dealing_direct;
      Alcotest.test_case "paper message packing" `Quick test_points_per_msg;
      QCheck_alcotest.to_alcotest prop_modarith_pow_homomorphism;
    ] )
