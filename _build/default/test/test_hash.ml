(* Tests for atom_hash against official FIPS 180-4 / FIPS 202 / RFC 4231
   vectors, plus structural properties. *)

open Atom_hash

let check_hex name expected actual = Alcotest.(check string) name expected (Atom_util.Hex.encode actual)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc");
  check_hex "two-block message" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_million_a () =
  check_hex "million a" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha256_streaming () =
  (* Feeding in arbitrary chunks must match the one-shot digest. *)
  let msg = String.init 1000 (fun i -> Char.chr (i land 0xff)) in
  let oneshot = Sha256.digest msg in
  let rng = Atom_util.Rng.create 21 in
  for _ = 1 to 20 do
    let st = Sha256.init () in
    let pos = ref 0 in
    while !pos < String.length msg do
      let take = min (Atom_util.Rng.int_below rng 130 + 1) (String.length msg - !pos) in
      Sha256.feed st (String.sub msg !pos take);
      pos := !pos + take
    done;
    Alcotest.(check string) "chunked = oneshot" oneshot (Sha256.finalize st)
  done

let test_sha256_length_boundaries () =
  (* Padding edge cases: lengths around the 55/56/64 byte boundaries. *)
  List.iter
    (fun n ->
      let m = String.make n 'x' in
      let st = Sha256.init () in
      Sha256.feed st m;
      Alcotest.(check string) (Printf.sprintf "len %d" n) (Sha256.digest m) (Sha256.finalize st))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_sha3_vectors () =
  check_hex "sha3-256 empty" "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
    (Keccak.sha3_256 "");
  check_hex "sha3-256 abc" "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
    (Keccak.sha3_256 "abc");
  check_hex "sha3-512 empty"
    "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"
    (Keccak.sha3_512 "")

let test_shake128 () =
  check_hex "shake128 empty 32" "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"
    (Keccak.shake128 ~out_len:32 "");
  (* XOF property: a longer output extends a shorter one. *)
  let short = Keccak.shake128 ~out_len:16 "atom" in
  let long = Keccak.shake128 ~out_len:200 "atom" in
  Alcotest.(check string) "prefix property" short (String.sub long 0 16);
  Alcotest.(check int) "length" 200 (String.length long)

let test_sha3_rate_boundaries () =
  (* Message lengths around the 136-byte rate boundary must all differ and be
     32 bytes long. *)
  let digests =
    List.map (fun n -> Keccak.sha3_256 (String.make n 'y')) [ 0; 1; 135; 136; 137; 271; 272; 273 ]
  in
  List.iter (fun d -> Alcotest.(check int) "digest length" 32 (String.length d)) digests;
  let uniq = List.sort_uniq compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length uniq)

let test_hmac_rfc4231 () =
  check_hex "rfc4231 case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.hmac_sha256 ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "rfc4231 case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hmac_sha256 ~key:"Jefe" "what do ya want for nothing?")

let test_hkdf_rfc5869 () =
  (* RFC 5869 Appendix A, test case 1. *)
  let ikm = String.make 22 '\x0b' in
  let salt = Atom_util.Hex.decode "000102030405060708090a0b0c" in
  let info = Atom_util.Hex.decode "f0f1f2f3f4f5f6f7f8f9" in
  let okm = Hmac.hkdf ~salt ~ikm ~info ~len:42 () in
  Alcotest.(check string) "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Atom_util.Hex.encode okm)

let test_hkdf_basic () =
  let okm = Hmac.hkdf ~salt:"salt" ~ikm:"input key material" ~info:"ctx" ~len:42 () in
  Alcotest.(check int) "length" 42 (String.length okm);
  (* Deterministic and sensitive to each input. *)
  Alcotest.(check string) "deterministic" okm
    (Hmac.hkdf ~salt:"salt" ~ikm:"input key material" ~info:"ctx" ~len:42 ());
  let okm2 = Hmac.hkdf ~salt:"salt" ~ikm:"input key material" ~info:"ctx2" ~len:42 () in
  Alcotest.(check bool) "info matters" true (okm <> okm2)

let prop_sha256_deterministic =
  QCheck2.Test.make ~name:"sha256 deterministic, 32 bytes" ~count:200
    QCheck2.Gen.(string_size (int_bound 300))
    (fun s -> Sha256.digest s = Sha256.digest s && String.length (Sha256.digest s) = 32)

let prop_sha3_no_trivial_collisions =
  QCheck2.Test.make ~name:"sha3-256 distinct on distinct inputs" ~count:200
    QCheck2.Gen.(pair (string_size (int_bound 100)) (string_size (int_bound 100)))
    (fun (a, b) -> a = b || Keccak.sha3_256 a <> Keccak.sha3_256 b)

let prop_digest_list_concat =
  QCheck2.Test.make ~name:"sha256 digest_list = digest of concat" ~count:100
    QCheck2.Gen.(list_size (int_bound 8) (string_size (int_bound 50)))
    (fun parts -> Sha256.digest_list parts = Sha256.digest (String.concat "" parts))

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "hash",
    [
      Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
      Alcotest.test_case "sha256 million a" `Slow test_sha256_million_a;
      Alcotest.test_case "sha256 streaming" `Quick test_sha256_streaming;
      Alcotest.test_case "sha256 padding boundaries" `Quick test_sha256_length_boundaries;
      Alcotest.test_case "sha3 FIPS vectors" `Quick test_sha3_vectors;
      Alcotest.test_case "shake128" `Quick test_shake128;
      Alcotest.test_case "sha3 rate boundaries" `Quick test_sha3_rate_boundaries;
      Alcotest.test_case "hmac RFC 4231" `Quick test_hmac_rfc4231;
      Alcotest.test_case "hkdf RFC 5869" `Quick test_hkdf_rfc5869;
      Alcotest.test_case "hkdf" `Quick test_hkdf_basic;
      q prop_sha256_deterministic;
      q prop_sha3_no_trivial_collisions;
      q prop_digest_list_concat;
    ] )
