(* Wire-format serialization (proofs, submissions) and the multi-round
   Session driver with the §4.6 fallback policy. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
module El = Pr.El
module P = Pr.P
module Shuf = Pr.Shuf
module Msg = Pr.Msg
open Atom_core

let rng () = Atom_util.Rng.create 0x31e7

let test_enc_proof_roundtrip () =
  let r = rng () in
  let kp = El.keygen r in
  let m = G.random r in
  let ct, randomness = El.enc r kp.El.pk m in
  let pi = P.Enc_proof.prove r ~pk:kp.El.pk ~context:"c" ct ~randomness in
  match P.Enc_proof.of_bytes (P.Enc_proof.to_bytes pi) with
  | None -> Alcotest.fail "decode failed"
  | Some pi' ->
      Alcotest.(check bool) "decoded proof verifies" true
        (P.Enc_proof.verify ~pk:kp.El.pk ~context:"c" ct pi');
      Alcotest.(check bool) "garbage rejected" true (P.Enc_proof.of_bytes "junk" = None)

let test_dleq_roundtrip () =
  let r = rng () in
  let x = G.Scalar.random r in
  let g2 = G.random r in
  let h1 = G.pow_gen x and h2 = G.pow g2 x in
  let pi = P.Dleq.prove r ~context:"d" ~g1:G.generator ~h1 ~g2 ~h2 ~x in
  match P.Dleq.of_bytes (P.Dleq.to_bytes pi) with
  | None -> Alcotest.fail "decode failed"
  | Some pi' ->
      Alcotest.(check bool) "decoded dleq verifies" true
        (P.Dleq.verify ~context:"d" ~g1:G.generator ~h1 ~g2 ~h2 pi');
      (* Trailing bytes rejected. *)
      Alcotest.(check bool) "trailing rejected" true
        (P.Dleq.of_bytes (P.Dleq.to_bytes pi ^ "\000") = None)

let test_reenc_proof_roundtrip () =
  let r = rng () in
  let kp = El.keygen r and next = El.keygen r in
  let m = G.random r in
  let ct, _ = El.enc r kp.El.pk m in
  List.iter
    (fun next_pk ->
      let ct', pi = P.Reenc_proof.reenc_with_proof r ~share:kp.El.sk ~next_pk ~context:"x" ct in
      match P.Reenc_proof.of_bytes (P.Reenc_proof.to_bytes pi) with
      | None -> Alcotest.fail "decode failed"
      | Some pi' ->
          Alcotest.(check bool) "decoded reenc proof verifies" true
            (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk ~context:"x" ~input:ct ~output:ct' pi'))
    [ Some next.El.pk; None ]

let test_shuffle_proof_roundtrip () =
  let r = rng () in
  let kp = El.keygen r in
  let input = Array.init 5 (fun _ -> fst (El.enc_vec r kp.El.pk [| G.random r; G.random r |])) in
  let output, witness = Option.get (El.shuffle_vec r kp.El.pk input) in
  let pi = Shuf.prove r ~pk:kp.El.pk ~context:"s" ~input ~output ~witness in
  let bytes = Shuf.to_bytes pi in
  (match Shuf.of_bytes bytes with
  | None -> Alcotest.fail "decode failed"
  | Some pi' ->
      Alcotest.(check bool) "decoded shuffle proof verifies" true
        (Shuf.verify ~pk:kp.El.pk ~context:"s" ~input ~output pi'));
  (* Any truncation is rejected. *)
  Alcotest.(check bool) "truncated rejected" true
    (Shuf.of_bytes (String.sub bytes 0 (String.length bytes - 1)) = None);
  Alcotest.(check bool) "empty rejected" true (Shuf.of_bytes "" = None)

let test_shuffle_proof_bitflip () =
  let r = rng () in
  let kp = El.keygen r in
  let input = Array.init 3 (fun _ -> fst (El.enc_vec r kp.El.pk [| G.random r |])) in
  let output, witness = Option.get (El.shuffle_vec r kp.El.pk input) in
  let pi = Shuf.prove r ~pk:kp.El.pk ~context:"s" ~input ~output ~witness in
  let bytes = Shuf.to_bytes pi in
  (* Flip a byte in 20 random positions: decode must fail or verification
     must reject (never accept). *)
  let rr = rng () in
  for _ = 1 to 20 do
    let i = Atom_util.Rng.int_below rr (String.length bytes - 8) + 8 in
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
    match Shuf.of_bytes (Bytes.to_string b) with
    | None -> ()
    | Some pi' ->
        Alcotest.(check bool) "corrupted proof rejected" false
          (Shuf.verify ~pk:kp.El.pk ~context:"s" ~input ~output pi')
  done;
  ignore pi

let test_submission_roundtrip () =
  let r = rng () in
  List.iter
    (fun variant ->
      let config = Config.tiny ~variant () in
      let net = Pr.setup r config () in
      let s = Pr.submit r net ~user:5 ~entry_gid:2 "wire format test" in
      match Pr.Wire.submission_of_bytes (Pr.Wire.submission_to_bytes s) with
      | None -> Alcotest.fail "submission decode failed"
      | Some s' ->
          Alcotest.(check int) "user" 5 s'.Pr.user;
          Alcotest.(check int) "gid" 2 s'.Pr.entry_gid;
          Alcotest.(check int) "units" (Array.length s.Pr.units) (Array.length s'.Pr.units);
          Alcotest.(check (option string)) "commitment" s.Pr.commitment s'.Pr.commitment)
    [ Config.Basic; Config.Trap ]

let test_round_from_decoded_submissions () =
  (* Serialize every submission, decode on the "server side", run the
     round: everything still verifies and delivers. *)
  let r = rng () in
  let config = Config.tiny ~variant:Config.Trap ~seed:91 () in
  let net = Pr.setup r config () in
  let msgs = List.init 5 (fun i -> Printf.sprintf "wired-%d" i) in
  let decoded =
    List.mapi
      (fun i m ->
        let s = Pr.submit r net ~user:i ~entry_gid:(i mod 4) m in
        Option.get (Pr.Wire.submission_of_bytes (Pr.Wire.submission_to_bytes s)))
      msgs
  in
  let outcome = Pr.run r net decoded in
  Alcotest.(check bool) "no abort" true (outcome.Pr.aborted = None);
  Alcotest.(check (list string)) "delivered" (List.sort compare msgs)
    (List.sort compare outcome.Pr.delivered)

let prop_submission_decode_total =
  QCheck2.Test.make ~name:"submission_of_bytes never raises" ~count:300
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 300))
    (fun s -> match Pr.Wire.submission_of_bytes s with Some _ | None -> true)

(* ---- Session driver ---- *)

let session_config = Config.tiny ~variant:Config.Trap ~seed:1234 ()

let honest_messages n = List.init n (fun i -> (i, Printf.sprintf "sess-%d" i))

let test_session_clean_rounds () =
  let r = rng () in
  let session = Pr.Session.create session_config in
  for _ = 1 to 3 do
    let report = Pr.Session.run_round session r (honest_messages 4) in
    Alcotest.(check bool) "clean" true (report.Pr.Session.outcome.Pr.aborted = None);
    Alcotest.(check bool) "trap variant" true (report.Pr.Session.variant_used = Config.Trap)
  done;
  Alcotest.(check int) "rounds counted" 3 (Pr.Session.rounds_run session);
  Alcotest.(check int) "board accumulates" 12 (Bulletin.size (Pr.Session.board session))

(* A disruptive user submits a bogus commitment; the round aborts, blame
   identifies them, the session blacklists them and the next round runs
   clean without their traffic. *)
let test_session_blames_and_blacklists () =
  let r = rng () in
  let session = Pr.Session.create session_config in
  let evil_submit rng net ~user ~entry_gid msg =
    let s = Pr.submit rng net ~user ~entry_gid msg in
    if user = 2 then { s with Pr.commitment = Some (String.make 32 '?') } else s
  in
  let report = Pr.Session.run_round session r ~submit_fn:evil_submit (honest_messages 4) in
  Alcotest.(check bool) "aborted" true (report.Pr.Session.outcome.Pr.aborted <> None);
  Alcotest.(check (list int)) "blamed" [ 2 ] report.Pr.Session.outcome.Pr.blamed;
  (* Next round: user 2 is filtered out before submission. *)
  let report2 = Pr.Session.run_round session r (honest_messages 4) in
  Alcotest.(check (list int)) "skipped" [ 2 ] report2.Pr.Session.skipped_users;
  Alcotest.(check bool) "clean" true (report2.Pr.Session.outcome.Pr.aborted = None);
  Alcotest.(check int) "three honest messages" 3
    (List.length report2.Pr.Session.outcome.Pr.delivered)

(* A Sybil disruptor uses a fresh user id every round, defeating the
   blacklist; after [abort_threshold] consecutive aborts the controller
   falls back to the NIZK variant, where users cannot halt rounds at all
   (§4.6). *)
let test_session_falls_back_to_nizk () =
  let r = rng () in
  let session = Pr.Session.create session_config in
  let round = ref 0 in
  let sybil_submit rng net ~user ~entry_gid msg =
    let s = Pr.submit rng net ~user ~entry_gid msg in
    (* a different disruptor id each round *)
    if user = 100 + !round then { s with Pr.commitment = Some (String.make 32 '!') } else s
  in
  let aborted_rounds = ref 0 in
  let variant_seen = ref Config.Trap in
  for _ = 1 to 4 do
    let messages = honest_messages 3 @ [ (100 + !round, "sybil junk") ] in
    let report = Pr.Session.run_round session r ~submit_fn:sybil_submit messages in
    if report.Pr.Session.outcome.Pr.aborted <> None then incr aborted_rounds;
    variant_seen := Controller.variant (session.Pr.Session.controller);
    incr round
  done;
  Alcotest.(check int) "three trap rounds aborted" 3 !aborted_rounds;
  Alcotest.(check bool) "controller fell back to nizk" true (!variant_seen = Config.Nizk);
  (* In the NIZK variant the same junk cannot stop the round (the sybil's
     submission has no trap/commitment structure to poison). *)
  let report = Pr.Session.run_round session r (honest_messages 3 @ [ (999, "sybil junk") ]) in
  Alcotest.(check bool) "nizk round used" true (report.Pr.Session.variant_used = Config.Nizk);
  Alcotest.(check bool) "nizk round clean" true (report.Pr.Session.outcome.Pr.aborted = None);
  Alcotest.(check int) "all four delivered" 4
    (List.length report.Pr.Session.outcome.Pr.delivered)

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "wire",
    [
      Alcotest.test_case "enc proof roundtrip" `Quick test_enc_proof_roundtrip;
      Alcotest.test_case "dleq roundtrip" `Quick test_dleq_roundtrip;
      Alcotest.test_case "reenc proof roundtrip" `Quick test_reenc_proof_roundtrip;
      Alcotest.test_case "shuffle proof roundtrip" `Quick test_shuffle_proof_roundtrip;
      Alcotest.test_case "shuffle proof bitflips" `Quick test_shuffle_proof_bitflip;
      Alcotest.test_case "submission roundtrip" `Quick test_submission_roundtrip;
      Alcotest.test_case "round from decoded submissions" `Quick test_round_from_decoded_submissions;
      Alcotest.test_case "session clean rounds" `Quick test_session_clean_rounds;
      Alcotest.test_case "session blame + blacklist" `Quick test_session_blames_and_blacklists;
      Alcotest.test_case "session nizk fallback" `Quick test_session_falls_back_to_nizk;
      q prop_submission_decode_total;
    ] )
