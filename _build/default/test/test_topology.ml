(* Tests for atom_topology: group sizing (Appendix B / Figure 13) and the
   random permutation networks of §3. *)

open Atom_topology

let test_paper_group_sizes () =
  (* §4.1: f = 20%, G = 1024, 2^-64 -> k = 32 for plain anytrust. *)
  Alcotest.(check int) "h=1 gives k=32" 32 (Group_sizing.paper_config ~h:1);
  (* §4.5 quotes k >= 33 for h = 2, which matches the heuristic
     k(h) = k(1) + (h−1) (keep a 32-wide anytrust quorum after h−1
     failures); the binomial tail itself gives 31 (single group) / 35
     (union bound over G). All three are reported in EXPERIMENTS.md. *)
  Alcotest.(check int) "h=2 single-group tail" 31
    (Group_sizing.required_group_size ~union_bound:false ~f:0.2 ~groups:1024 ~h:2
       ~security_bits:64 ());
  Alcotest.(check int) "h=2 union-bound tail" 35
    (Group_sizing.required_group_size ~f:0.2 ~groups:1024 ~h:2 ~security_bits:64 ());
  Alcotest.(check int) "h=2 paper heuristic" 33 (Group_sizing.paper_heuristic ~h:2)

let test_group_size_monotonicity () =
  let k h = Group_sizing.paper_config ~h in
  for h = 1 to 19 do
    Alcotest.(check bool) (Printf.sprintf "k(h=%d) <= k(h=%d)" h (h + 1)) true (k h <= k (h + 1))
  done;
  (* Figure 13 end point: h=20 needs around 70 servers. *)
  Alcotest.(check bool) "h=20 in figure range" true (k 20 >= 60 && k 20 <= 80);
  (* More adversaries -> bigger groups. *)
  let k_f f = Group_sizing.required_group_size ~f ~groups:1024 ~h:1 ~security_bits:64 () in
  Alcotest.(check bool) "f monotone" true (k_f 0.1 < k_f 0.2 && k_f 0.2 < k_f 0.3);
  (* Trivial cases. *)
  Alcotest.(check int) "f=0" 3
    (Group_sizing.required_group_size ~f:0. ~groups:10 ~h:3 ~security_bits:64 ())

let test_failure_probability_values () =
  (* Cross-check the log-space tail against a directly computable case:
     k=4, h=1, f=0.5 -> 0.5^4 = 2^-4. *)
  Alcotest.(check (float 1e-9)) "simple tail" (-4.)
    (Group_sizing.log2_group_failure ~k:4 ~h:1 ~f:0.5);
  (* k=3, h=2, f=0.5: P[<2 honest] = P[0]+P[1] = 1/8 + 3/8 = 0.5 -> -1. *)
  Alcotest.(check (float 1e-9)) "two-term tail" (-1.)
    (Group_sizing.log2_group_failure ~k:3 ~h:2 ~f:0.5);
  (* h > k: certain failure. *)
  Alcotest.(check (float 1e-9)) "h > k" 0. (Group_sizing.log2_group_failure ~k:2 ~h:3 ~f:0.2)

let test_square_structure () =
  let t = Topology.square ~groups:4 ~iterations:3 in
  Alcotest.(check int) "iterations" 3 t.Topology.iterations;
  for iter = 0 to 2 do
    for g = 0 to 3 do
      Alcotest.(check (array int)) "complete bipartite" [| 0; 1; 2; 3 |]
        (t.Topology.neighbors ~iter ~group:g)
    done
  done

let test_butterfly_structure () =
  let t = Topology.butterfly ~groups:8 ~repetitions:2 in
  Alcotest.(check int) "iterations = levels * reps" 6 t.Topology.iterations;
  (* Level 0 pairs along bit 0. *)
  Alcotest.(check (array int)) "level 0 of node 2" [| 2; 3 |] (t.Topology.neighbors ~iter:0 ~group:2);
  (* Level 1 pairs along bit 1. *)
  Alcotest.(check (array int)) "level 1 of node 2" [| 2; 0 |] (t.Topology.neighbors ~iter:1 ~group:2);
  (* Level 2 pairs along bit 2; then wraps around. *)
  Alcotest.(check (array int)) "level 2 of node 2" [| 2; 6 |] (t.Topology.neighbors ~iter:2 ~group:2);
  Alcotest.(check (array int)) "wrap to level 0" [| 2; 3 |] (t.Topology.neighbors ~iter:3 ~group:2);
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Topology.butterfly: groups must be 2^k") (fun () ->
      ignore (Topology.butterfly ~groups:6 ~repetitions:1))

let is_permutation (a : int array) : bool =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  sorted = Array.init (Array.length a) Fun.id

let test_simulate_is_permutation () =
  let rng = Atom_util.Rng.create 7 in
  List.iter
    (fun (t, messages) ->
      for _ = 1 to 5 do
        let final = Topology.simulate rng t ~messages in
        Alcotest.(check bool)
          (Printf.sprintf "%s permutation" t.Topology.name)
          true (is_permutation final)
      done)
    [
      (Topology.square ~groups:4 ~iterations:6, 16);
      (Topology.butterfly_paper ~groups:8, 32);
      (Topology.square ~groups:1 ~iterations:2, 7);
      (Topology.square ~groups:5 ~iterations:4, 23 (* uneven batches *));
    ]

(* Joint exit-group distribution of two messages sharing an entry group:
   with T = 1 the square network can never place them in the same exit
   group (round-robin split), a strong deviation from uniform; with enough
   iterations the joint distribution approaches uniform. *)
let joint_exit_tv (t : Topology.t) ~(messages : int) ~(trials : int) ~seed : float =
  let rng = Atom_util.Rng.create seed in
  let groups = t.Topology.groups in
  let per_group = messages / groups in
  let counts = Array.make (groups * groups) 0 in
  for _ = 1 to trials do
    let final = Topology.simulate rng t ~messages in
    (* messages 0 and [groups] both enter group 0 *)
    let g0 = final.(0) / per_group and g1 = final.(groups) / per_group in
    let idx = (g0 * groups) + g1 in
    counts.(idx) <- counts.(idx) + 1
  done;
  (* Compare against the true uniform-permutation joint law is close to
     uniform over distinct-slot pairs; the uniform-over-cells TV is a good
     mixing proxy. *)
  Atom_util.Stats.tv_distance_uniform counts

let test_square_mixing_improves () =
  let messages = 16 in
  let tv1 = joint_exit_tv (Topology.square ~groups:4 ~iterations:1) ~messages ~trials:3000 ~seed:11 in
  let tv6 = joint_exit_tv (Topology.square ~groups:4 ~iterations:6) ~messages ~trials:3000 ~seed:12 in
  Alcotest.(check bool)
    (Printf.sprintf "T=1 badly mixed (tv=%.3f)" tv1)
    true (tv1 > 0.15);
  Alcotest.(check bool)
    (Printf.sprintf "T=6 well mixed (tv=%.3f)" tv6)
    true (tv6 < 0.08);
  Alcotest.(check bool) "monotone improvement" true (tv6 < tv1)

let test_butterfly_mixing () =
  (* The iterated butterfly also mixes: marginal of one message near
     uniform. *)
  let t = Topology.butterfly_paper ~groups:4 in
  let rng = Atom_util.Rng.create 13 in
  let tv = Topology.mixing_tv rng t ~messages:16 ~trials:2000 in
  Alcotest.(check bool) (Printf.sprintf "butterfly marginal (tv=%.3f)" tv) true (tv < 0.1)

let test_depth_comparison () =
  (* §3: butterfly needs O(log² G) iterations vs O(1) for square — the
     reason the paper picks the square network. *)
  let square = Topology.square ~groups:1024 ~iterations:10 in
  let butterfly = Topology.butterfly_paper ~groups:1024 in
  Alcotest.(check int) "square depth" 10 square.Topology.iterations;
  Alcotest.(check int) "butterfly depth = 2 log² G" 200 butterfly.Topology.iterations;
  (* per-iteration fan-out: G vs 2 *)
  Alcotest.(check int) "square fanout" 1024
    (Array.length (square.Topology.neighbors ~iter:0 ~group:0));
  Alcotest.(check int) "butterfly fanout" 2
    (Array.length (butterfly.Topology.neighbors ~iter:0 ~group:0))

let suite =
  ( "topology",
    [
      Alcotest.test_case "paper group sizes" `Quick test_paper_group_sizes;
      Alcotest.test_case "group size monotonicity" `Quick test_group_size_monotonicity;
      Alcotest.test_case "failure probability values" `Quick test_failure_probability_values;
      Alcotest.test_case "square structure" `Quick test_square_structure;
      Alcotest.test_case "butterfly structure" `Quick test_butterfly_structure;
      Alcotest.test_case "simulate produces permutations" `Quick test_simulate_is_permutation;
      Alcotest.test_case "square mixing improves with T" `Slow test_square_mixing_improves;
      Alcotest.test_case "butterfly mixing" `Slow test_butterfly_mixing;
      Alcotest.test_case "depth comparison" `Quick test_depth_comparison;
    ] )
