(* Tests for atom_util: hex codec, deterministic RNG, statistics helpers. *)

open Atom_util

let test_hex_roundtrip () =
  let cases = [ ""; "\x00"; "\xff"; "atom"; "\x01\x23\x45\x67\x89\xab\xcd\xef" ] in
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s)))
    cases;
  Alcotest.(check string) "known" "0123456789abcdef" (Hex.encode "\x01\x23\x45\x67\x89\xab\xcd\xef");
  Alcotest.(check string) "uppercase accepted" "\xab\xcd" (Hex.decode "ABCD")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: not a hex digit") (fun () ->
      ignore (Hex.decode "zz"))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 c then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.next_int64 parent) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_below_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int_below rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_below_uniform () =
  let rng = Rng.create 2 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int_below rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  (* chi-square with 9 dof: 99.9th percentile is ~27.9 *)
  Alcotest.(check bool) "chi-square sane" true (Stats.chi_square_uniform counts < 30.)

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_permutation () =
  let rng = Rng.create 4 in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_rng_laplace_mean () =
  let rng = Rng.create 5 in
  let n = 200_000 in
  let sum = ref 0. and sum_abs = ref 0. in
  for _ = 1 to n do
    let x = Rng.laplace rng ~b:2.0 in
    sum := !sum +. x;
    sum_abs := !sum_abs +. Float.abs x
  done;
  let mean = !sum /. float_of_int n and mean_abs = !sum_abs /. float_of_int n in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  (* E|X| = b for Laplace(0,b) *)
  Alcotest.(check bool) "scale near b" true (Float.abs (mean_abs -. 2.0) < 0.05)

let test_rng_exponential_mean () =
  let rng = Rng.create 6 in
  let n = 200_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:3.0
  done;
  Alcotest.(check bool) "mean near 3" true (Float.abs ((!sum /. float_of_int n) -. 3.0) < 0.05)

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 2.5 (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile xs 100.)

let test_stats_tv_uniform () =
  Alcotest.(check (float 1e-9)) "uniform counts" 0. (Stats.tv_distance_uniform [| 5; 5; 5; 5 |]);
  Alcotest.(check (float 1e-9)) "point mass" 0.75 (Stats.tv_distance_uniform [| 20; 0; 0; 0 |])

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:4 ~lo:0. ~hi:4. [| 0.5; 1.5; 1.7; 3.9; 5.0 |] in
  Alcotest.(check (array int)) "histogram" [| 1; 2; 0; 1 |] h

let qcheck_hex_roundtrip =
  QCheck2.Test.make ~name:"hex roundtrip (random strings)" ~count:500
    QCheck2.Gen.(string_size (int_bound 64))
    (fun s -> Hex.decode (Hex.encode s) = s)

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "util",
    [
      Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
      Alcotest.test_case "hex invalid input" `Quick test_hex_invalid;
      Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
      Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
      Alcotest.test_case "rng int_below range" `Quick test_rng_int_below_range;
      Alcotest.test_case "rng int_below uniformity" `Quick test_rng_int_below_uniform;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng permutation" `Quick test_rng_permutation;
      Alcotest.test_case "rng laplace moments" `Slow test_rng_laplace_mean;
      Alcotest.test_case "rng exponential mean" `Slow test_rng_exponential_mean;
      Alcotest.test_case "stats basics" `Quick test_stats_basic;
      Alcotest.test_case "stats tv distance" `Quick test_stats_tv_uniform;
      Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
      q qcheck_hex_roundtrip;
    ] )
