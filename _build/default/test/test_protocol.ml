(* End-to-end tests of the Atom protocol engine (real cryptography):
   correctness of all three variants, active-attack detection, malicious
   users + blame, fail-stop churn, and buddy-group recovery. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
module El = Pr.El
module Msg = Pr.Msg
open Atom_core

let rng () = Atom_util.Rng.create 0xa70e

let messages_of n = List.init n (fun i -> Printf.sprintf "message-%02d" i)

let submit_all r net msgs =
  List.mapi
    (fun i msg ->
      Pr.submit r net ~user:i ~entry_gid:(i mod net.Pr.config.Config.n_groups) msg)
    msgs

let check_delivery ?(extra_ok = false) (msgs : string list) (outcome : Pr.outcome) =
  Alcotest.(check bool) "no abort" true (outcome.Pr.aborted = None);
  let sent = List.sort compare msgs in
  let got = List.sort compare outcome.Pr.delivered in
  if extra_ok then
    List.iter
      (fun m -> Alcotest.(check bool) ("delivered " ^ m) true (List.mem m got))
      sent
  else Alcotest.(check (list string)) "all messages delivered" sent got

let test_variant variant () =
  let r = rng () in
  let config = Config.tiny ~variant () in
  let net = Pr.setup r config () in
  let msgs = messages_of 8 in
  let outcome = Pr.run r net (submit_all r net msgs) in
  check_delivery msgs outcome;
  Alcotest.(check (list int)) "no rejections" [] outcome.Pr.rejected_submissions;
  Alcotest.(check (list int)) "no blame" [] outcome.Pr.blamed

(* The output order must not reveal the input order: with everything honest,
   the permutation should differ across seeds (smoke test for mixing — the
   statistical version lives in the topology suite). *)
let test_output_order_varies () =
  let config = Config.tiny ~variant:Config.Basic () in
  let orders =
    List.map
      (fun seed ->
        let r = Atom_util.Rng.create seed in
        let net = Pr.setup r { config with Config.seed } () in
        let msgs = messages_of 8 in
        (Pr.run r net (submit_all r net msgs)).Pr.delivered)
      [ 1; 2; 3 ]
  in
  match orders with
  | [ a; b; c ] ->
      Alcotest.(check bool) "orders differ" true (a <> b || b <> c);
      Alcotest.(check (list string)) "same multiset" (List.sort compare a) (List.sort compare b)
  | _ -> assert false

let test_invalid_proof_rejected () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Basic () in
  let net = Pr.setup r config () in
  let msgs = messages_of 4 in
  let subs = submit_all r net msgs in
  (* Corrupt user 2's submission: re-encrypt the vec so proofs break. *)
  let subs =
    List.map
      (fun s ->
        if s.Pr.user <> 2 then s
        else begin
          let u = s.Pr.units.(0) in
          let vec', _ = Option.get (El.rerandomize r (Pr.group_pk net s.Pr.entry_gid) u.Pr.vec.(0)) in
          let bad_vec = Array.copy u.Pr.vec in
          bad_vec.(0) <- vec';
          { s with Pr.units = [| { u with Pr.vec = bad_vec } |] }
        end)
      subs
  in
  let outcome = Pr.run r net subs in
  Alcotest.(check (list int)) "user 2 rejected" [ 2 ] outcome.Pr.rejected_submissions;
  Alcotest.(check int) "other messages delivered" 3 (List.length outcome.Pr.delivered)

let test_duplicate_ciphertext_rejected () =
  (* A malicious user replays another user's exact submission ciphertext:
     the entry group's duplicate check catches it (§3). *)
  let r = rng () in
  let config = Config.tiny ~variant:Config.Basic () in
  let net = Pr.setup r config () in
  let s0 = Pr.submit r net ~user:0 ~entry_gid:0 "victim message" in
  let clone = { s0 with Pr.user = 1 } in
  let outcome = Pr.run r net [ s0; clone ] in
  Alcotest.(check (list int)) "replay rejected" [ 1 ] outcome.Pr.rejected_submissions;
  Alcotest.(check (list string)) "victim delivered" [ "victim message" ] outcome.Pr.delivered

let test_nizk_catches_bad_shuffle () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Nizk () in
  let net = Pr.setup r config () in
  let msgs = messages_of 6 in
  let adversary =
    { Pr.no_adversary with Pr.cheat_shuffle = (fun ~iter ~gid -> iter = 1 && gid = 0) }
  in
  let outcome = Pr.run r net ~adversary (submit_all r net msgs) in
  (match outcome.Pr.aborted with
  | Some (Pr.Shuffle_proof_rejected { gid = 0; iter = 1 }) -> ()
  | other ->
      Alcotest.failf "expected shuffle proof rejection, got %s"
        (match other with None -> "no abort" | Some _ -> "different abort"));
  Alcotest.(check (list string)) "nothing delivered" [] outcome.Pr.delivered

let test_nizk_catches_forward_tampering () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Nizk () in
  let net = Pr.setup r config () in
  let msgs = messages_of 6 in
  let adversary =
    {
      Pr.no_adversary with
      Pr.tamper =
        (fun ~iter ~gid ~next_pk batch ->
          if iter = 0 && gid = 1 && Array.length batch > 0 then begin
            let b = Array.copy batch in
            b.(0) <- Pr.garbage_unit r net ~next_pk;
            b
          end
          else batch);
    }
  in
  let outcome = Pr.run r net ~adversary (submit_all r net msgs) in
  (match outcome.Pr.aborted with
  | Some (Pr.Reenc_proof_rejected _) -> ()
  | _ -> Alcotest.fail "expected reenc proof rejection")

(* Trap variant vs a tampering server: replacing one unit hits a trap with
   probability 1/2 (abort) and a real message otherwise (one message lost,
   no deanonymization). Checked over repeated rounds. *)
let test_trap_detection_probability () =
  let aborts = ref 0 and losses = ref 0 and runs = 20 in
  for seed = 1 to runs do
    let r = Atom_util.Rng.create (1000 + seed) in
    let config = { (Config.tiny ~variant:Config.Trap ~seed ()) with Config.n_groups = 2 } in
    let net = Pr.setup r config () in
    let msgs = messages_of 6 in
    let tampered = ref false in
    let adversary =
      {
        Pr.no_adversary with
        Pr.tamper =
          (fun ~iter ~gid ~next_pk batch ->
            if iter = 1 && gid = 0 && Array.length batch > 0 && not !tampered then begin
              tampered := true;
              let b = Array.copy batch in
              b.(0) <- Pr.garbage_unit r net ~next_pk;
              b
            end
            else batch);
      }
    in
    let outcome = Pr.run r net ~adversary (submit_all r net msgs) in
    Alcotest.(check bool) "tamper happened" true !tampered;
    match outcome.Pr.aborted with
    | Some _ -> incr aborts
    | None ->
        (* Undetected: exactly one message lost, the rest unharmed. *)
        Alcotest.(check int) "one message lost" 5 (List.length outcome.Pr.delivered);
        incr losses
  done;
  (* p = 1/2 per tamper: 20 trials, expect both outcomes to occur well away
     from 0 (P[<=2] < 0.1%). *)
  Alcotest.(check bool)
    (Printf.sprintf "aborts=%d losses=%d" !aborts !losses)
    true
    (!aborts >= 3 && !losses >= 3)

let test_trap_bad_user_blamed () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Trap () in
  let net = Pr.setup r config () in
  let msgs = messages_of 4 in
  let subs = submit_all r net msgs in
  (* User 1 lies: commitment does not match any trap it submitted. *)
  let subs =
    List.map
      (fun s ->
        if s.Pr.user = 1 then { s with Pr.commitment = Some (String.make 32 'x') } else s)
      subs
  in
  let outcome = Pr.run r net subs in
  Alcotest.(check bool) "round aborted" true (outcome.Pr.aborted <> None);
  Alcotest.(check (list int)) "user 1 blamed" [ 1 ] outcome.Pr.blamed

let test_trap_duplicate_inner_blamed () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Trap () in
  let net = Pr.setup r config () in
  (* Users 2 and 3 collude: both route the same inner ciphertext. *)
  let honest = [ Pr.submit r net ~user:0 ~entry_gid:0 "honest-a"; Pr.submit r net ~user:1 ~entry_gid:1 "honest-b" ] in
  let padded = Msg.pad_plaintext ~msg_bytes:net.Pr.config.Config.msg_bytes "colluder" in
  let inner = El.Kem.to_bytes (El.Kem.enc r net.Pr.trustee_pk padded) in
  let colluder user gid =
    let nonce = Atom_util.Rng.bytes r Msg.trap_nonce_bytes in
    let trap = Msg.make_trap ~gid ~nonce in
    let unit_m = Pr.encrypt_unit r net ~gid ~tag:Msg.tag_message inner in
    let unit_t = Pr.encrypt_unit r net ~gid ~tag:Msg.tag_trap trap in
    {
      Pr.user;
      Pr.entry_gid = gid;
      Pr.units = [| unit_m; unit_t |];
      Pr.commitment = Some (Msg.commit_trap ~width:net.Pr.width trap);
    }
  in
  let outcome = Pr.run r net (honest @ [ colluder 2 2; colluder 3 3 ]) in
  (match outcome.Pr.aborted with
  | Some Pr.Duplicate_inner -> ()
  | _ -> Alcotest.fail "expected duplicate-inner abort");
  (* At least the second submitter of the duplicate is blamed. *)
  Alcotest.(check bool) "a colluder is blamed" true
    (List.exists (fun u -> u = 2 || u = 3) outcome.Pr.blamed)

(* Fail-stop churn (§4.5): with h = 2 the group rides out one failure. *)
let churn_config seed : Config.t =
  {
    (Config.tiny ~variant:Config.Trap ~seed ()) with
    Config.n_servers = 16;
    Config.n_groups = 3;
    Config.group_size = 4;
    Config.h = 2;
  }

let test_churn_tolerated () =
  let r = rng () in
  let config = churn_config 7 in
  let net = Pr.setup r config () in
  (* Fail one member of group 0. *)
  Pr.fail_server net net.Pr.groups.(0).Pr.members.(1);
  let msgs = messages_of 6 in
  let outcome = Pr.run r net (submit_all r net msgs) in
  check_delivery msgs outcome

let test_group_down_and_recovery () =
  let r = rng () in
  let config = churn_config 8 in
  let net = Pr.setup r config () in
  (* Two failures in a 4-server group with quorum 3: the group is down. *)
  Pr.fail_server net net.Pr.groups.(0).Pr.members.(0);
  Pr.fail_server net net.Pr.groups.(0).Pr.members.(2);
  let msgs = messages_of 6 in
  let outcome = Pr.run r net (submit_all r net msgs) in
  (match outcome.Pr.aborted with
  | Some (Pr.Group_down { gid = 0 }) -> ()
  | _ -> Alcotest.fail "expected group 0 down");
  (* Buddy-group recovery restores the shares; the next round succeeds. *)
  Alcotest.(check bool) "recovery succeeds" true (Pr.recover_group net 0);
  let outcome = Pr.run r net (submit_all r net msgs) in
  check_delivery msgs outcome

let test_anytrust_sampling_property () =
  (* With f = 20% of servers malicious and the paper's sizing, sampled
     groups essentially always contain an honest server. Tiny scale: just
     check the checker itself. *)
  let beacon = Beacon.create ~seed:5 in
  let formation =
    Group_formation.form beacon ~round:0 ~n_servers:40 ~n_groups:10 ~group_size:12 ()
  in
  Alcotest.(check bool) "honest everywhere (f=0.2)" true
    (Group_formation.all_groups_have_honest formation ~malicious:(fun s -> s mod 5 = 0));
  Alcotest.(check bool) "all malicious fails" false
    (Group_formation.all_groups_have_honest formation ~malicious:(fun _ -> true))

let test_staggering () =
  (* §4.7: a server appearing in several groups should occupy different
     pipeline positions. *)
  let beacon = Beacon.create ~seed:6 in
  let formation = Group_formation.form beacon ~round:0 ~n_servers:8 ~n_groups:8 ~group_size:8 () in
  (* With group_size = n_servers every group has everyone; position of
     server s in group g is (index + gid) rotation, so positions differ. *)
  let positions server =
    Array.to_list
      (Array.map
         (fun (g : Group_formation.group) ->
           let pos = ref (-1) in
           Array.iteri (fun i m -> if m = server then pos := i) g.Group_formation.members;
           !pos)
         formation.Group_formation.groups)
  in
  let p0 = positions 0 in
  Alcotest.(check bool) "server 0 occupies multiple positions" true
    (List.length (List.sort_uniq compare p0) > 1)

let suite =
  ( "protocol",
    [
      Alcotest.test_case "basic variant end-to-end" `Quick (test_variant Config.Basic);
      Alcotest.test_case "nizk variant end-to-end" `Quick (test_variant Config.Nizk);
      Alcotest.test_case "trap variant end-to-end" `Quick (test_variant Config.Trap);
      Alcotest.test_case "output order varies" `Quick test_output_order_varies;
      Alcotest.test_case "invalid enc proof rejected" `Quick test_invalid_proof_rejected;
      Alcotest.test_case "duplicate ciphertext rejected" `Quick test_duplicate_ciphertext_rejected;
      Alcotest.test_case "nizk catches bad shuffle" `Quick test_nizk_catches_bad_shuffle;
      Alcotest.test_case "nizk catches forward tampering" `Quick test_nizk_catches_forward_tampering;
      Alcotest.test_case "trap detection probability" `Slow test_trap_detection_probability;
      Alcotest.test_case "trap bad user blamed" `Quick test_trap_bad_user_blamed;
      Alcotest.test_case "trap duplicate inner blamed" `Quick test_trap_duplicate_inner_blamed;
      Alcotest.test_case "churn tolerated (h=2)" `Quick test_churn_tolerated;
      Alcotest.test_case "group down and buddy recovery" `Quick test_group_down_and_recovery;
      Alcotest.test_case "anytrust sampling" `Quick test_anytrust_sampling_property;
      Alcotest.test_case "staggering" `Quick test_staggering;
    ] )
