(* Tests for atom_zkp: EncProof, DLEQ, ReEncProof, and the verifiable
   shuffle. Soundness is exercised by active tampering: every mutation an
   Atom adversary could attempt on the proven statements must be caught. *)

module Run (G : Atom_group.Group_intf.GROUP) = struct
  module El = Atom_elgamal.Elgamal.Make (G)
  module P = Atom_zkp.Proofs.Make (G) (El)
  module Shuf = Atom_zkp.Shuffle_proof.Make (G) (El)

  let rng () = Atom_util.Rng.create (Atom_util.Rng.hash_string ("zkp" ^ G.name))

  let test_enc_proof () =
    let r = rng () in
    let kp = El.keygen r in
    let m = G.random r in
    let ct, randomness = El.enc r kp.El.pk m in
    let pi = P.Enc_proof.prove r ~pk:kp.El.pk ~context:"group-7" ct ~randomness in
    Alcotest.(check bool) "valid proof accepted" true
      (P.Enc_proof.verify ~pk:kp.El.pk ~context:"group-7" ct pi);
    (* Binding to the entry group id: replaying at another group fails. *)
    Alcotest.(check bool) "other group rejected" false
      (P.Enc_proof.verify ~pk:kp.El.pk ~context:"group-8" ct pi);
    (* A rerandomized copy of the ciphertext invalidates the proof — this is
       what stops the duplicate-plaintext attack of §3. *)
    let ct', _ = Option.get (El.rerandomize r kp.El.pk ct) in
    Alcotest.(check bool) "rerandomized copy rejected" false
      (P.Enc_proof.verify ~pk:kp.El.pk ~context:"group-7" ct' pi)

  let test_enc_proof_vec () =
    let r = rng () in
    let kp = El.keygen r in
    let ms = Array.init 3 (fun _ -> G.random r) in
    let v, rands = El.enc_vec r kp.El.pk ms in
    let pis = P.Enc_proof.prove_vec r ~pk:kp.El.pk ~context:"g" v ~randomness:rands in
    Alcotest.(check bool) "vector proof accepted" true
      (P.Enc_proof.verify_vec ~pk:kp.El.pk ~context:"g" v pis);
    (* Component count mismatch rejected. *)
    Alcotest.(check bool) "truncated rejected" false
      (P.Enc_proof.verify_vec ~pk:kp.El.pk ~context:"g" v (Array.sub pis 0 2))

  let test_dleq () =
    let r = rng () in
    let x = G.Scalar.random r in
    let g2 = G.random r in
    let h1 = G.pow_gen x and h2 = G.pow g2 x in
    let pi = P.Dleq.prove r ~context:"t" ~g1:G.generator ~h1 ~g2 ~h2 ~x in
    Alcotest.(check bool) "valid dleq" true
      (P.Dleq.verify ~context:"t" ~g1:G.generator ~h1 ~g2 ~h2 pi);
    (* Different exponent on the second pair must fail. *)
    let h2_bad = G.mul h2 g2 in
    Alcotest.(check bool) "unequal logs rejected" false
      (P.Dleq.verify ~context:"t" ~g1:G.generator ~h1 ~g2 ~h2:h2_bad pi);
    Alcotest.(check bool) "wrong context rejected" false
      (P.Dleq.verify ~context:"u" ~g1:G.generator ~h1 ~g2 ~h2 pi)

  let test_reenc_proof_chain () =
    let r = rng () in
    let k = 3 in
    let group = Array.init k (fun _ -> El.keygen r) in
    let gpk = El.combine_pks (Array.to_list (Array.map (fun kp -> kp.El.pk) group)) in
    let next = El.keygen r in
    let m = G.random r in
    let ct0, _ = El.enc r gpk m in
    (* Each server re-encrypts with proof; every proof verifies against its
       own input/output pair. *)
    let ct = ref ct0 in
    Array.iter
      (fun kp ->
        let ct', pi =
          P.Reenc_proof.reenc_with_proof r ~share:kp.El.sk ~next_pk:(Some next.El.pk)
            ~context:"iter-0" !ct
        in
        Alcotest.(check bool) "step verifies" true
          (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk:(Some next.El.pk) ~context:"iter-0"
             ~input:!ct ~output:ct' pi);
        (* Verifying against a mutated output must fail. *)
        let bad = { ct' with El.c = G.mul ct'.El.c G.generator } in
        Alcotest.(check bool) "tampered output rejected" false
          (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk:(Some next.El.pk) ~context:"iter-0"
             ~input:!ct ~output:bad pi);
        ct := ct')
      group;
    (* After the full pass the ciphertext decrypts under the next key. *)
    let ct = El.clear_y !ct in
    Alcotest.(check bool) "chain correct" true (G.equal m (Option.get (El.dec next.El.sk ct)))

  let test_reenc_proof_exit_layer () =
    let r = rng () in
    let kp = El.keygen r in
    let m = G.random r in
    let ct, _ = El.enc r kp.El.pk m in
    let ct', pi =
      P.Reenc_proof.reenc_with_proof r ~share:kp.El.sk ~next_pk:None ~context:"exit" ct
    in
    Alcotest.(check bool) "exit step verifies" true
      (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk:None ~context:"exit" ~input:ct ~output:ct'
         pi);
    Alcotest.(check bool) "plaintext exposed" true (G.equal m (El.plaintext_of_exit ct'));
    (* A server that lies about the plaintext is caught. *)
    let forged = { ct' with El.c = G.mul ct'.El.c G.generator } in
    Alcotest.(check bool) "forged exit rejected" false
      (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk:None ~context:"exit" ~input:ct ~output:forged
         pi)

  let test_reenc_proof_wrong_share () =
    let r = rng () in
    let kp = El.keygen r and other = El.keygen r in
    let m = G.random r in
    let ct, _ = El.enc r kp.El.pk m in
    let ct', pi =
      P.Reenc_proof.reenc_with_proof r ~share:other.El.sk ~next_pk:None ~context:"x" ct
    in
    (* The proof itself is consistent, but verifies only against the actual
       share's public key — claiming it used [kp]'s share fails. *)
    Alcotest.(check bool) "wrong eff_pk rejected" false
      (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk:None ~context:"x" ~input:ct ~output:ct' pi)

  let make_batch r pk n width =
    Array.init n (fun _ ->
        let ms = Array.init width (fun _ -> G.random r) in
        fst (El.enc_vec r pk ms))

  let test_shuffle_proof_complete () =
    let r = rng () in
    let kp = El.keygen r in
    List.iter
      (fun (n, width) ->
        let input = make_batch r kp.El.pk n width in
        let output, witness = Option.get (El.shuffle_vec r kp.El.pk input) in
        let pi = Shuf.prove r ~pk:kp.El.pk ~context:"ctx" ~input ~output ~witness in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d w=%d accepted" n width)
          true
          (Shuf.verify ~pk:kp.El.pk ~context:"ctx" ~input ~output pi))
      [ (1, 1); (2, 1); (8, 1); (4, 2) ]

  let test_shuffle_proof_tamper () =
    let r = rng () in
    let kp = El.keygen r in
    let input = make_batch r kp.El.pk 6 1 in
    let output, witness = Option.get (El.shuffle_vec r kp.El.pk input) in
    let pi = Shuf.prove r ~pk:kp.El.pk ~context:"ctx" ~input ~output ~witness in
    (* 1. Replacing one output ciphertext with a fresh encryption. *)
    let forged = Array.copy output in
    forged.(3) <- fst (El.enc_vec r kp.El.pk [| G.random r |]);
    Alcotest.(check bool) "replaced output rejected" false
      (Shuf.verify ~pk:kp.El.pk ~context:"ctx" ~input ~output:forged pi);
    (* 2. Duplicating one output over another (drop + duplicate attack). *)
    let dup = Array.copy output in
    dup.(2) <- dup.(4);
    Alcotest.(check bool) "duplicated output rejected" false
      (Shuf.verify ~pk:kp.El.pk ~context:"ctx" ~input ~output:dup pi);
    (* 3. Swapping two outputs after the proof was made. *)
    let swapped = Array.copy output in
    let tmp = swapped.(0) in
    swapped.(0) <- swapped.(1);
    swapped.(1) <- tmp;
    Alcotest.(check bool) "swapped outputs rejected" false
      (Shuf.verify ~pk:kp.El.pk ~context:"ctx" ~input ~output:swapped pi);
    (* 4. Mutating one input. *)
    let bad_input = Array.copy input in
    bad_input.(0) <- fst (El.enc_vec r kp.El.pk [| G.random r |]);
    Alcotest.(check bool) "mutated input rejected" false
      (Shuf.verify ~pk:kp.El.pk ~context:"ctx" ~input:bad_input ~output pi);
    (* 5. Wrong group key. *)
    let kp2 = El.keygen r in
    Alcotest.(check bool) "wrong pk rejected" false
      (Shuf.verify ~pk:kp2.El.pk ~context:"ctx" ~input ~output pi);
    (* 6. Wrong context (different generators). *)
    Alcotest.(check bool) "wrong context rejected" false
      (Shuf.verify ~pk:kp.El.pk ~context:"other" ~input ~output pi)

  let test_shuffle_proof_not_a_permutation () =
    let r = rng () in
    let kp = El.keygen r in
    let input = make_batch r kp.El.pk 4 1 in
    (* An adversarial "shuffle" that drops input 0 and duplicates input 1:
       build it by rerandomizing manually, then try to prove it with a forged
       witness. The proof must not verify. *)
    let fake_perm = [| 1; 1; 2; 3 |] in
    let rerands = Array.init 4 (fun _ -> [| G.Scalar.random r |]) in
    let output =
      Array.init 4 (fun j ->
          Array.mapi
            (fun w ct ->
              let r' = rerands.(j).(w) in
              { El.r = G.mul ct.El.r (G.pow_gen r');
                El.c = G.mul ct.El.c (G.pow kp.El.pk r');
                El.y = None })
            input.(fake_perm.(j)))
    in
    let witness = { El.vperm = fake_perm; El.vrerands = rerands } in
    let pi = Shuf.prove r ~pk:kp.El.pk ~context:"ctx" ~input ~output ~witness in
    Alcotest.(check bool) "non-permutation rejected" false
      (Shuf.verify ~pk:kp.El.pk ~context:"ctx" ~input ~output pi)

  let test_shuffle_decrypts_correctly () =
    let r = rng () in
    let kp = El.keygen r in
    let msgs = Array.init 5 (fun _ -> G.random r) in
    let input = Array.map (fun m -> fst (El.enc_vec r kp.El.pk [| m |])) msgs in
    let output, witness = Option.get (El.shuffle_vec r kp.El.pk input) in
    let pi = Shuf.prove r ~pk:kp.El.pk ~context:"c" ~input ~output ~witness in
    Alcotest.(check bool) "proof ok" true (Shuf.verify ~pk:kp.El.pk ~context:"c" ~input ~output pi);
    let key m = Atom_util.Hex.encode (G.to_bytes m) in
    let out_msgs =
      Array.map (fun v -> key (Option.get (El.dec kp.El.sk v.(0)))) output
    in
    Alcotest.(check (list string)) "multiset preserved"
      (List.sort compare (Array.to_list (Array.map key msgs)))
      (List.sort compare (Array.to_list out_msgs))

  let cases =
    let n = G.name in
    [
      Alcotest.test_case (n ^ " enc proof") `Quick test_enc_proof;
      Alcotest.test_case (n ^ " enc proof vec") `Quick test_enc_proof_vec;
      Alcotest.test_case (n ^ " dleq") `Quick test_dleq;
      Alcotest.test_case (n ^ " reenc proof chain") `Quick test_reenc_proof_chain;
      Alcotest.test_case (n ^ " reenc proof exit") `Quick test_reenc_proof_exit_layer;
      Alcotest.test_case (n ^ " reenc proof wrong share") `Quick test_reenc_proof_wrong_share;
      Alcotest.test_case (n ^ " shuffle proof complete") `Quick test_shuffle_proof_complete;
      Alcotest.test_case (n ^ " shuffle proof tamper") `Quick test_shuffle_proof_tamper;
      Alcotest.test_case (n ^ " shuffle proof non-permutation") `Quick
        test_shuffle_proof_not_a_permutation;
      Alcotest.test_case (n ^ " shuffle + decrypt") `Quick test_shuffle_decrypts_correctly;
    ]
end

let suite () =
  let module G_zp = (val Atom_group.Registry.zp_test ()) in
  let module Zp_run = Run (G_zp) in
  ("zkp", Zp_run.cases)

let suite_p256 () =
  let module P256_run = Run (Atom_group.P256) in
  ("zkp-p256", P256_run.cases)
