(* Tests for atom_secret: Shamir, Feldman VSS, dealerless DKG, buddy-group
   re-sharing, and the integration with threshold ElGamal decryption that
   Atom's many-trust groups rely on (§4.5). *)

module G = (val Atom_group.Registry.zp_test ())
module Sh = Atom_secret.Shamir.Make (G)
module Dkg = Atom_secret.Dkg.Make (G)
module El = Atom_elgamal.Elgamal.Make (G)
module S = G.Scalar

let rng () = Atom_util.Rng.create 0x5ec4e7

let scalar_eq = Alcotest.testable (fun fmt s -> Atom_nat.Nat.pp fmt (S.to_nat s)) S.equal

let test_split_reconstruct () =
  let r = rng () in
  let secret = S.random r in
  let shares, _ = Sh.split r ~threshold:3 ~n:5 secret in
  (* Any 3 shares reconstruct. *)
  let combos = [ [ 0; 1; 2 ]; [ 0; 2; 4 ]; [ 2; 3; 4 ]; [ 0; 1; 4 ] ] in
  List.iter
    (fun combo ->
      let subset = List.map (fun i -> shares.(i)) combo in
      Alcotest.check scalar_eq "reconstruct" secret (Sh.reconstruct subset))
    combos;
  (* All 5 also reconstruct. *)
  Alcotest.check scalar_eq "all shares" secret (Sh.reconstruct (Array.to_list shares))

let test_below_threshold_useless () =
  let r = rng () in
  let secret = S.random r in
  let shares, _ = Sh.split r ~threshold:3 ~n:5 secret in
  (* 2 shares interpolate to something else (w.h.p. over a 96-bit field). *)
  let wrong = Sh.reconstruct [ shares.(0); shares.(1) ] in
  Alcotest.(check bool) "2 shares do not reconstruct" false (S.equal wrong secret)

let test_threshold_one () =
  let r = rng () in
  let secret = S.random r in
  let shares, _ = Sh.split r ~threshold:1 ~n:4 secret in
  (* Degree-0 polynomial: every share is the secret itself. *)
  Array.iter (fun (s : Sh.share) -> Alcotest.check scalar_eq "constant poly" secret s.Sh.value) shares

let test_duplicate_shares_rejected () =
  let r = rng () in
  let shares, _ = Sh.split r ~threshold:2 ~n:3 (S.random r) in
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Shamir.reconstruct: duplicate share indices") (fun () ->
      ignore (Sh.reconstruct [ shares.(0); shares.(0) ]))

let test_invalid_params () =
  let r = rng () in
  Alcotest.check_raises "threshold 0" (Invalid_argument "Shamir.split: need 1 <= threshold <= n")
    (fun () -> ignore (Sh.split r ~threshold:0 ~n:3 S.one));
  Alcotest.check_raises "threshold > n" (Invalid_argument "Shamir.split: need 1 <= threshold <= n")
    (fun () -> ignore (Sh.split r ~threshold:4 ~n:3 S.one))

let test_feldman () =
  let r = rng () in
  let secret = S.random r in
  let shares, coeffs = Sh.split r ~threshold:3 ~n:5 secret in
  let comms = Sh.commit coeffs in
  Array.iter
    (fun s -> Alcotest.(check bool) "share verifies" true (Sh.verify_share comms s))
    shares;
  (* Corrupted share fails. *)
  let bad = { shares.(2) with Sh.value = S.add shares.(2).Sh.value S.one } in
  Alcotest.(check bool) "bad share rejected" false (Sh.verify_share comms bad);
  (* Wrong index fails. *)
  let misattributed = { shares.(2) with Sh.idx = 4 } in
  Alcotest.(check bool) "wrong index rejected" false (Sh.verify_share comms misattributed);
  (* secret_pk = g^secret *)
  Alcotest.(check bool) "secret pk" true (G.equal (Sh.secret_pk comms) (G.pow_gen secret))

let test_dkg_basic () =
  let r = rng () in
  let res = Dkg.run r ~k:5 ~threshold:3 () in
  Alcotest.(check (list int)) "no disqualifications" [] res.Dkg.disqualified;
  (* Reconstructing from any 3 shares gives a secret matching the group pk. *)
  let subset = [ res.Dkg.shares.(0); res.Dkg.shares.(2); res.Dkg.shares.(4) ] in
  let sk = Sh.reconstruct subset in
  Alcotest.(check bool) "group pk consistent" true (G.equal res.Dkg.group_pk (G.pow_gen sk));
  (* Every member's share matches its public commitment. *)
  for j = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "share_pk %d" j)
      true
      (G.equal (Dkg.share_pk res j) (G.pow_gen res.Dkg.shares.(j - 1).Sh.value))
  done

let test_dkg_malicious_dealer () =
  let r = rng () in
  let res = Dkg.run r ~k:5 ~threshold:3 ~malicious_dealers:[ 2 ] () in
  Alcotest.(check (list int)) "dealer 2 disqualified" [ 2 ] res.Dkg.disqualified;
  (* The remaining protocol is still consistent. *)
  let sk = Sh.reconstruct [ res.Dkg.shares.(1); res.Dkg.shares.(2); res.Dkg.shares.(3) ] in
  Alcotest.(check bool) "group pk consistent" true (G.equal res.Dkg.group_pk (G.pow_gen sk))

(* Threshold decryption through the reenc path: exactly how a many-trust
   group of k = 5 with h = 3 honest servers operates with only
   k − (h−1) = 3 participants. *)
let test_threshold_elgamal_via_reenc () =
  let r = rng () in
  let k = 5 and h = 3 in
  let threshold = k - (h - 1) in
  let res = Dkg.run r ~k ~threshold () in
  let m = G.random r in
  let ct, _ = El.enc r res.Dkg.group_pk m in
  (* Any [threshold]-subset decrypts by Lagrange-weighted stripping. *)
  List.iter
    (fun participating ->
      let ct' =
        List.fold_left
          (fun ct idx ->
            let coeff = Sh.lagrange_at_zero ~xs:participating ~i:idx in
            fst
              (El.reenc r ~share:res.Dkg.shares.(idx - 1).Sh.value ~coeff ~next_pk:None ct))
          ct participating
      in
      Alcotest.(check bool) "threshold decrypt" true (G.equal m (El.plaintext_of_exit ct')))
    [ [ 1; 2; 3 ]; [ 1; 3; 5 ]; [ 2; 4; 5 ]; [ 3; 4; 5 ] ];
  (* A subset below the threshold fails. *)
  let too_few = [ 1; 2 ] in
  let ct' =
    List.fold_left
      (fun ct idx ->
        let coeff = Sh.lagrange_at_zero ~xs:too_few ~i:idx in
        fst (El.reenc r ~share:res.Dkg.shares.(idx - 1).Sh.value ~coeff ~next_pk:None ct))
      ct too_few
  in
  Alcotest.(check bool) "below threshold fails" false (G.equal m (El.plaintext_of_exit ct'))

(* Threshold re-encryption toward a next group: the full many-trust mixing
   step with a failed server. *)
let test_threshold_reenc_with_failure () =
  let r = rng () in
  let k = 4 and h = 2 in
  let threshold = k - (h - 1) in
  let res = Dkg.run r ~k ~threshold () in
  let next = El.keygen r in
  let m = G.random r in
  let ct, _ = El.enc r res.Dkg.group_pk m in
  (* Server 3 fails: the other three (= threshold) route the message. *)
  let participating = [ 1; 2; 4 ] in
  let ct' =
    List.fold_left
      (fun ct idx ->
        let coeff = Sh.lagrange_at_zero ~xs:participating ~i:idx in
        fst
          (El.reenc r ~share:res.Dkg.shares.(idx - 1).Sh.value ~coeff
             ~next_pk:(Some next.El.pk) ct))
      ct participating
  in
  let ct' = El.clear_y ct' in
  Alcotest.(check bool) "reencrypted for next group" true
    (G.equal m (Option.get (El.dec next.El.sk ct')))

let test_reshare_recover () =
  let r = rng () in
  let res = Dkg.run r ~k:4 ~threshold:3 () in
  let lost = res.Dkg.shares.(1) in
  (* Member 2 re-shares its share to a 5-member buddy group, threshold 3. *)
  let rs = Dkg.reshare r ~threshold':3 ~buddies:5 lost in
  (* Buddy sub-shares verify against the re-sharing commitments. *)
  Array.iter
    (fun s -> Alcotest.(check bool) "sub-share verifies" true (Sh.verify_share rs.Dkg.sub_comms s))
    rs.Dkg.sub_shares;
  (* A replacement server recovers the lost share from any 3 buddies. *)
  let recovered = Dkg.recover rs ~from:[ 1; 3; 5 ] in
  Alcotest.(check int) "index preserved" lost.Sh.idx recovered.Sh.idx;
  Alcotest.check scalar_eq "value recovered" lost.Sh.value recovered.Sh.value;
  (* Group keeps functioning with the recovered share. *)
  let m = G.random r in
  let ct, _ = El.enc r res.Dkg.group_pk m in
  let participating = [ 1; 2; 3 ] in
  let shares = [ res.Dkg.shares.(0); recovered; res.Dkg.shares.(2) ] in
  let ct' =
    List.fold_left2
      (fun ct idx share ->
        let coeff = Sh.lagrange_at_zero ~xs:participating ~i:idx in
        fst (El.reenc r ~share:share.Sh.value ~coeff ~next_pk:None ct))
      ct participating shares
  in
  Alcotest.(check bool) "decrypt with recovered share" true (G.equal m (El.plaintext_of_exit ct'))

let test_exponentiation_count () =
  (* Sanity on the cost model the simulator charges for group setup. *)
  Alcotest.(check bool) "monotone in k" true
    (Dkg.exponentiation_count ~k:8 ~threshold:4 > Dkg.exponentiation_count ~k:4 ~threshold:4);
  Alcotest.(check bool) "monotone in threshold" true
    (Dkg.exponentiation_count ~k:8 ~threshold:8 > Dkg.exponentiation_count ~k:8 ~threshold:4)

let prop_reconstruct =
  QCheck2.Test.make ~name:"shamir reconstruct on random subsets" ~count:50
    QCheck2.Gen.(pair (int_range 1 6) (int_range 0 1000))
    (fun (threshold, seed) ->
      let r = Atom_util.Rng.create seed in
      let n = threshold + Atom_util.Rng.int_below r 4 in
      let secret = S.random r in
      let shares, _ = Sh.split r ~threshold ~n secret in
      (* pick a random subset of exactly [threshold] shares *)
      let order = Atom_util.Rng.permutation r n in
      let subset = List.init threshold (fun i -> shares.(order.(i))) in
      S.equal secret (Sh.reconstruct subset))

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "secret",
    [
      Alcotest.test_case "split/reconstruct" `Quick test_split_reconstruct;
      Alcotest.test_case "below threshold useless" `Quick test_below_threshold_useless;
      Alcotest.test_case "threshold one" `Quick test_threshold_one;
      Alcotest.test_case "duplicate shares rejected" `Quick test_duplicate_shares_rejected;
      Alcotest.test_case "invalid params" `Quick test_invalid_params;
      Alcotest.test_case "feldman vss" `Quick test_feldman;
      Alcotest.test_case "dkg basic" `Quick test_dkg_basic;
      Alcotest.test_case "dkg malicious dealer" `Quick test_dkg_malicious_dealer;
      Alcotest.test_case "threshold elgamal via reenc" `Quick test_threshold_elgamal_via_reenc;
      Alcotest.test_case "threshold reenc with failure" `Quick test_threshold_reenc_with_failure;
      Alcotest.test_case "buddy reshare/recover" `Quick test_reshare_recover;
      Alcotest.test_case "dkg cost model" `Quick test_exponentiation_count;
      q prop_reconstruct;
    ] )
