(* Tests for the modeled large-scale simulator: the headline evaluation
   claims of §6 must hold in simulation (shape and, where the paper is
   explicit, approximate magnitude). *)

open Atom_core

let paper_cfg n =
  { Config.paper_default with Config.n_servers = n; Config.n_groups = n }

let test_headline_latency () =
  (* §6.2 / Table 12: one million microblog messages, 1,024 servers,
     28.2 min. Accept ±20%. *)
  let r = Simulate.run (Simulate.microblog (paper_cfg 1024) ~n_messages:1_000_000) in
  let minutes = r.Simulate.latency /. 60. in
  Alcotest.(check bool)
    (Printf.sprintf "28 min +/- 20%% (got %.1f)" minutes)
    true
    (minutes > 22. && minutes < 34.)

let test_latency_linear_in_messages () =
  (* Figure 9: latency grows linearly with the number of messages. *)
  let latency m = (Simulate.run (Simulate.microblog (paper_cfg 256) ~n_messages:m)).Simulate.latency in
  let l1 = latency 100_000 and l2 = latency 200_000 and l4 = latency 400_000 in
  Alcotest.(check bool) "monotone" true (l1 < l2 && l2 < l4);
  let r21 = l2 /. l1 and r42 = l4 /. l2 in
  Alcotest.(check bool)
    (Printf.sprintf "doubling messages ~doubles latency (%.2f, %.2f)" r21 r42)
    true
    (r21 > 1.6 && r21 < 2.4 && r42 > 1.6 && r42 < 2.4)

let test_horizontal_scalability () =
  (* Figure 10: twice the servers, half the latency (roughly). *)
  let latency n = (Simulate.run (Simulate.microblog (paper_cfg n) ~n_messages:250_000)).Simulate.latency in
  let l128 = latency 128 and l256 = latency 256 and l512 = latency 512 in
  let s1 = l128 /. l256 and s2 = l256 /. l512 in
  Alcotest.(check bool)
    (Printf.sprintf "near-linear speedup (%.2f, %.2f)" s1 s2)
    true
    (s1 > 1.6 && s1 < 2.4 && s2 > 1.6 && s2 < 2.4)

let test_dialing_faster_than_microblog () =
  (* Figure 9: dialing (80 B) is cheaper per message than microblogging
     (160 B) once real traffic dominates the ~410k fixed DP dummies. *)
  let cfg = paper_cfg 256 in
  let mb = (Simulate.run (Simulate.microblog cfg ~n_messages:1_500_000)).Simulate.latency in
  let dl = (Simulate.run (Simulate.dialing cfg ~n_messages:1_500_000)).Simulate.latency in
  Alcotest.(check bool) (Printf.sprintf "dialing %.0fs < microblog %.0fs" dl mb) true (dl < mb)

let test_nizk_slower_factor () =
  (* §6.1: the NIZK variant is about 4x slower than the trap variant. *)
  let t_trap =
    Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant:Config.Trap ~k:32 ~units:2048
      ~points:1 ()
  in
  let t_nizk =
    Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant:Config.Nizk ~k:32 ~units:1024
      ~points:1 ()
  in
  let ratio = t_nizk /. t_trap in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f in [3, 5]" ratio) true (ratio > 3. && ratio < 5.)

let test_iteration_time_linear_in_group_size () =
  (* Figure 6: mixing time linear in k. *)
  let t k =
    Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant:Config.Trap ~k ~units:2048
      ~points:1 ()
  in
  let r = t 64 /. t 32 in
  Alcotest.(check bool) (Printf.sprintf "t(64)/t(32) = %.2f" r) true (r > 1.8 && r < 2.2)

let test_cores_speedup () =
  (* Figure 7: near-linear speedup for trap, sub-linear for NIZK. *)
  (* Compute-bound experiment: the paper's speedups require the network
     share to be negligible (see EXPERIMENTS.md). *)
  let t variant cores =
    Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant ~k:32 ~units:1024 ~points:1
      ~cores ~intra_parallel:true ~include_network:false ()
  in
  let trap_speedup = t Config.Trap 4 /. t Config.Trap 36 in
  let nizk_speedup = t Config.Nizk 4 /. t Config.Nizk 36 in
  Alcotest.(check bool)
    (Printf.sprintf "trap speedup %.1f near-linear" trap_speedup)
    true
    (trap_speedup > 6. && trap_speedup < 9.);
  Alcotest.(check bool)
    (Printf.sprintf "nizk speedup %.1f sub-linear" nizk_speedup)
    true
    (nizk_speedup > 2.5 && nizk_speedup < 6.);
  Alcotest.(check bool) "nizk < trap" true (nizk_speedup < trap_speedup)

let test_deterministic () =
  let run () = (Simulate.run (Simulate.microblog (paper_cfg 128) ~n_messages:50_000)).Simulate.latency in
  Alcotest.(check (float 1e-9)) "same latency" (run ()) (run ())

let test_bandwidth_claim () =
  (* §6.2: Atom servers use less than 1 MB/s on average. *)
  let r = Simulate.run (Simulate.microblog (paper_cfg 1024) ~n_messages:1_000_000) in
  Alcotest.(check bool)
    (Printf.sprintf "per-server send rate %.0f B/s < 1MB/s" r.Simulate.max_server_bandwidth)
    true
    (r.Simulate.max_server_bandwidth < 1e6)

let test_iteration_times_structure () =
  let r = Simulate.run (Simulate.microblog (paper_cfg 128) ~n_messages:100_000) in
  let t = r.Simulate.iteration_times in
  Alcotest.(check int) "T layers recorded" 10 (Array.length t);
  for i = 1 to Array.length t - 1 do
    Alcotest.(check bool) "monotone" true (t.(i) > t.(i - 1))
  done;
  (* Steady-state layers are equally paced (first may differ: entry+TLS). *)
  let gaps = Array.init 8 (fun i -> t.(i + 2) -. t.(i + 1)) in
  let spread = Atom_util.Stats.stddev gaps /. Atom_util.Stats.mean gaps in
  Alcotest.(check bool) (Printf.sprintf "even pacing (cv %.3f)" spread) true (spread < 0.05)

let test_trap_doubles_basic () =
  (* The trap variant routes twice the units of the basic variant: its
     latency should be roughly double. *)
  let cfg v = { (paper_cfg 128) with Config.variant = v } in
  let l v = (Simulate.run (Simulate.microblog (cfg v) ~n_messages:200_000)).Simulate.latency in
  let ratio = l Config.Trap /. l Config.Basic in
  Alcotest.(check bool) (Printf.sprintf "trap/basic = %.2f" ratio) true (ratio > 1.6 && ratio < 2.4)

let test_layer_overhead_additive () =
  let p = Simulate.microblog (paper_cfg 128) ~n_messages:50_000 in
  let base = (Simulate.run p).Simulate.latency in
  let with_oh = (Simulate.run { p with Simulate.layer_overhead = 100. }).Simulate.latency in
  (* T = 10 layers; the overhead sleeps apply between layers (9 gaps). *)
  Alcotest.(check (float 5.)) "overhead additive" (base +. 900.) with_oh

let suite =
  ( "simulate",
    [
      Alcotest.test_case "headline 1M/1024 latency" `Quick test_headline_latency;
      Alcotest.test_case "latency linear in messages" `Quick test_latency_linear_in_messages;
      Alcotest.test_case "horizontal scalability" `Quick test_horizontal_scalability;
      Alcotest.test_case "dialing cheaper than microblog" `Quick test_dialing_faster_than_microblog;
      Alcotest.test_case "nizk ~4x slower" `Quick test_nizk_slower_factor;
      Alcotest.test_case "iteration linear in group size" `Quick test_iteration_time_linear_in_group_size;
      Alcotest.test_case "cores speedup (fig 7)" `Quick test_cores_speedup;
      Alcotest.test_case "simulator determinism" `Quick test_deterministic;
      Alcotest.test_case "bandwidth under 1MB/s" `Quick test_bandwidth_claim;
      Alcotest.test_case "iteration time structure" `Quick test_iteration_times_structure;
      Alcotest.test_case "trap doubles basic" `Quick test_trap_doubles_basic;
      Alcotest.test_case "layer overhead additive" `Quick test_layer_overhead_additive;
    ] )
