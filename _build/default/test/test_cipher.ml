(* Tests for atom_cipher against RFC 8439 vectors, plus AEAD tamper
   resistance (the property Atom's trap variant relies on, §4.4). *)

open Atom_cipher

let hex = Atom_util.Hex.decode

let rfc_key = hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
let sunscreen =
  "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."

let test_chacha20_block () =
  (* RFC 8439 §2.3.2 *)
  let nonce = hex "000000090000004a00000000" in
  let block = Bytes.to_string (Chacha20.block ~key:rfc_key ~nonce ~counter:1) in
  Alcotest.(check string) "keystream block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (Atom_util.Hex.encode block)

let test_chacha20_encrypt () =
  (* RFC 8439 §2.4.2 *)
  let nonce = hex "000000000000004a00000000" in
  let ct = Chacha20.encrypt ~key:rfc_key ~nonce ~counter:1 sunscreen in
  Alcotest.(check string) "ciphertext"
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d"
    (Atom_util.Hex.encode ct);
  Alcotest.(check string) "roundtrip" sunscreen (Chacha20.decrypt ~key:rfc_key ~nonce ~counter:1 ct)

let test_poly1305_rfc () =
  (* RFC 8439 §2.5.2 *)
  let key = hex "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b" in
  let tag = Poly1305.mac ~key "Cryptographic Forum Research Group" in
  Alcotest.(check string) "tag" "a8061dc1305136c6c22b8baf0c0127a9" (Atom_util.Hex.encode tag);
  Alcotest.(check bool) "verify ok" true
    (Poly1305.verify ~key ~tag "Cryptographic Forum Research Group");
  Alcotest.(check bool) "verify bad" false (Poly1305.verify ~key ~tag "cryptographic Forum Research Group")

let test_poly1305_edge_lengths () =
  let key = hex "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b" in
  List.iter
    (fun n ->
      let tag = Poly1305.mac ~key (String.make n 'z') in
      Alcotest.(check int) (Printf.sprintf "len %d" n) 16 (String.length tag))
    [ 0; 1; 15; 16; 17; 31; 32; 33; 100 ]

let test_aead_rfc () =
  (* RFC 8439 §2.8.2 *)
  let key = hex "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f" in
  let nonce = hex "070000004041424344454647" in
  let aad = hex "50515253c0c1c2c3c4c5c6c7" in
  let sealed = Aead.encrypt ~key ~nonce ~aad sunscreen in
  Alcotest.(check string) "ciphertext+tag"
    ("d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d63dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b3692ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc3ff4def08e4b7a9de576d26586cec64b6116"
    ^ "1ae10b594f09e26a7e902ecbd0600691")
    (Atom_util.Hex.encode sealed);
  (match Aead.decrypt ~key ~nonce ~aad sealed with
  | Some pt -> Alcotest.(check string) "decrypt" sunscreen pt
  | None -> Alcotest.fail "decryption failed")

let test_aead_tamper () =
  let key = String.make 32 'k' and nonce = String.make 12 'n' in
  let sealed = Aead.encrypt ~key ~nonce ~aad:"hdr" "secret payload" in
  (* Flipping any single byte must break authentication. *)
  for i = 0 to String.length sealed - 1 do
    let b = Bytes.of_string sealed in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Alcotest.(check (option string))
      (Printf.sprintf "bit flip at %d rejected" i)
      None
      (Aead.decrypt ~key ~nonce ~aad:"hdr" (Bytes.to_string b))
  done;
  (* Wrong AAD must break authentication. *)
  Alcotest.(check (option string)) "wrong aad" None (Aead.decrypt ~key ~nonce ~aad:"hdx" sealed);
  (* Truncation must be rejected. *)
  Alcotest.(check (option string)) "truncated" None
    (Aead.decrypt ~key ~nonce ~aad:"hdr" (String.sub sealed 0 10))

let prop_chacha_roundtrip =
  QCheck2.Test.make ~name:"chacha20 roundtrip" ~count:200
    QCheck2.Gen.(triple (string_size (return 32)) (string_size (return 12)) (string_size (int_bound 300)))
    (fun (key, nonce, msg) ->
      Chacha20.decrypt ~key ~nonce ~counter:0 (Chacha20.encrypt ~key ~nonce ~counter:0 msg) = msg)

let prop_aead_roundtrip =
  QCheck2.Test.make ~name:"aead roundtrip" ~count:200
    QCheck2.Gen.(
      quad (string_size (return 32)) (string_size (return 12)) (string_size (int_bound 40))
        (string_size (int_bound 300)))
    (fun (key, nonce, aad, msg) ->
      Aead.decrypt ~key ~nonce ~aad (Aead.encrypt ~key ~nonce ~aad msg) = Some msg)

let prop_aead_key_sensitivity =
  QCheck2.Test.make ~name:"aead wrong key rejected" ~count:100
    QCheck2.Gen.(triple (string_size (return 32)) (string_size (return 32)) (string_size (int_bound 100)))
    (fun (k1, k2, msg) ->
      k1 = k2
      || Aead.decrypt ~key:k2 ~nonce:(String.make 12 '\000')
           (Aead.encrypt ~key:k1 ~nonce:(String.make 12 '\000') msg)
         = None)

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "cipher",
    [
      Alcotest.test_case "chacha20 RFC block" `Quick test_chacha20_block;
      Alcotest.test_case "chacha20 RFC encryption" `Quick test_chacha20_encrypt;
      Alcotest.test_case "poly1305 RFC" `Quick test_poly1305_rfc;
      Alcotest.test_case "poly1305 edge lengths" `Quick test_poly1305_edge_lengths;
      Alcotest.test_case "aead RFC" `Quick test_aead_rfc;
      Alcotest.test_case "aead tamper detection" `Quick test_aead_tamper;
      q prop_chacha_roundtrip;
      q prop_aead_roundtrip;
      q prop_aead_key_sensitivity;
    ] )
