(* Extended coverage: the §4.6 fallback controller, §7 weighted load
   balancing, §4.7 pipelining, butterfly end-to-end, multi-round operation,
   the basic variant's (intentional) vulnerability, malformed-input fuzzing,
   and a P-256 end-to-end smoke test. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
module El = Pr.El
module Msg = Pr.Msg
open Atom_core

let rng () = Atom_util.Rng.create 0xe47e

(* ---- Controller (§4.6 fallback policy) ---- *)

let test_controller_fallback () =
  let c = Controller.create () in
  Alcotest.(check bool) "starts trap" true (Controller.variant c = Config.Trap);
  (* Two aborts: still trap. *)
  ignore (Controller.record c ~aborted:true ~blamed:[ 9 ]);
  ignore (Controller.record c ~aborted:true ~blamed:[]);
  Alcotest.(check bool) "still trap" true (Controller.variant c = Config.Trap);
  (* Third consecutive abort: falls back to NIZK. *)
  let v = Controller.record c ~aborted:true ~blamed:[ 12 ] in
  Alcotest.(check bool) "fell back to nizk" true (v = Config.Nizk);
  (* Blamed users accumulated. *)
  Alcotest.(check (list int)) "blacklist" [ 9; 12 ] (Controller.blacklist c);
  Alcotest.(check bool) "is_blacklisted" true (Controller.is_blacklisted c 9);
  (* Two clean NIZK rounds: returns to trap. *)
  ignore (Controller.record c ~aborted:false ~blamed:[]);
  let v = Controller.record c ~aborted:false ~blamed:[] in
  Alcotest.(check bool) "recovered to trap" true (v = Config.Trap)

let test_controller_abort_streak_resets () =
  let c = Controller.create () in
  ignore (Controller.record c ~aborted:true ~blamed:[]);
  ignore (Controller.record c ~aborted:false ~blamed:[]);
  ignore (Controller.record c ~aborted:true ~blamed:[]);
  ignore (Controller.record c ~aborted:true ~blamed:[]);
  (* Streak was broken: 2 consecutive aborts only, still trap. *)
  Alcotest.(check bool) "streak reset" true (Controller.variant c = Config.Trap)

(* ---- Weighted load balancing (§7) ---- *)

let test_weighted_membership_skew () =
  let beacon = Beacon.create ~seed:12 in
  let n = 40 in
  (* Server 0 has 20x the weight of everyone else. *)
  let weights = Array.init n (fun i -> if i = 0 then 20. else 1.) in
  let counts = Array.make n 0 in
  for round = 0 to 49 do
    let f = Group_formation.form_weighted beacon ~round ~weights ~n_groups:8 ~group_size:5 () in
    Array.iter
      (fun (g : Group_formation.group) ->
        Array.iter (fun s -> counts.(s) <- counts.(s) + 1) g.Group_formation.members)
      f.Group_formation.groups
  done;
  let mean_rest =
    float_of_int (Array.fold_left ( + ) 0 counts - counts.(0)) /. float_of_int (n - 1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "heavy server in more groups (%d vs %.1f)" counts.(0) mean_rest)
    true
    (float_of_int counts.(0) > 2. *. mean_rest)

let test_weighted_formation_valid () =
  let beacon = Beacon.create ~seed:13 in
  let weights = Array.init 20 (fun i -> 1. +. float_of_int (i mod 5)) in
  let f = Group_formation.form_weighted beacon ~round:0 ~weights ~n_groups:6 ~group_size:4 () in
  Array.iter
    (fun (g : Group_formation.group) ->
      let members = Array.to_list g.Group_formation.members in
      Alcotest.(check int) "distinct members" 4 (List.length (List.sort_uniq compare members));
      List.iter
        (fun s -> Alcotest.(check bool) "in range" true (s >= 0 && s < 20))
        members)
    f.Group_formation.groups

let test_weighted_security_tradeoff () =
  (* If the adversary controls the heavy servers, skewed assignment makes
     an all-malicious group far more likely than uniform assignment. *)
  let n = 30 in
  let malicious s = s < 6 in
  (* 20% of servers *)
  let heavy_adversary = Array.init n (fun i -> if malicious i then 10. else 1.) in
  let uniform = Array.make n 1. in
  let beacon = Beacon.create ~seed:14 in
  let risk weights =
    Group_formation.estimate_all_malicious ~trials:300
      ~form:(fun ~round ->
        Group_formation.form_weighted beacon ~round ~weights ~n_groups:6 ~group_size:4 ())
      ~malicious
  in
  let skewed = risk heavy_adversary and flat = risk uniform in
  Alcotest.(check bool)
    (Printf.sprintf "skewed %.3f > uniform %.3f" skewed flat)
    true (skewed > flat)

(* ---- Pipelining (§4.7) ---- *)

let test_pipelining_throughput () =
  let cfg = { Config.paper_default with Config.n_servers = 256; Config.n_groups = 64 } in
  let p = Simulate.microblog cfg ~n_messages:50_000 in
  let r = Simulate.run_pipelined p ~rounds:5 in
  Alcotest.(check int) "rounds" 5 r.Simulate.pipelined_rounds;
  Alcotest.(check bool) "outputs ordered" true (r.Simulate.last_output > r.Simulate.first_output);
  (* The pipeline emits rounds much faster than one full traversal. *)
  Alcotest.(check bool)
    (Printf.sprintf "gap %.1fs << first %.1fs" r.Simulate.output_gap r.Simulate.first_output)
    true
    (r.Simulate.output_gap < r.Simulate.first_output /. 3.)

let test_pipelining_deterministic () =
  let cfg = { Config.paper_default with Config.n_servers = 128; Config.n_groups = 32 } in
  let p = Simulate.microblog cfg ~n_messages:10_000 in
  let a = Simulate.run_pipelined p ~rounds:3 and b = Simulate.run_pipelined p ~rounds:3 in
  Alcotest.(check (float 1e-9)) "deterministic" a.Simulate.last_output b.Simulate.last_output

(* ---- Butterfly topology, real crypto ---- *)

let test_butterfly_end_to_end () =
  let r = rng () in
  let config =
    { (Config.tiny ~variant:Config.Trap ()) with Config.topology = Config.Butterfly 2 }
  in
  let net = Pr.setup r config () in
  let msgs = List.init 6 (fun i -> Printf.sprintf "bfly-%d" i) in
  let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
  let outcome = Pr.run r net subs in
  Alcotest.(check bool) "no abort" true (outcome.Pr.aborted = None);
  Alcotest.(check (list string)) "delivered" (List.sort compare msgs)
    (List.sort compare outcome.Pr.delivered)

(* ---- Basic variant is vulnerable (motivation for §4.3/§4.4) ---- *)

let test_basic_variant_tamper_undetected () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Basic () in
  let net = Pr.setup r config () in
  let msgs = List.init 6 (fun i -> Printf.sprintf "basic-%d" i) in
  let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
  let fired = ref false in
  let adversary =
    {
      Pr.no_adversary with
      Pr.tamper =
        (fun ~iter ~gid ~next_pk batch ->
          if iter = 1 && gid = 0 && Array.length batch > 0 && not !fired then begin
            fired := true;
            let b = Array.copy batch in
            b.(0) <- Pr.garbage_unit r net ~next_pk;
            b
          end
          else batch);
    }
  in
  let outcome = Pr.run r net ~adversary subs in
  Alcotest.(check bool) "tampered" true !fired;
  (* No defence: the round completes, one original silently replaced by the
     adversary's forgery, nobody notices. *)
  Alcotest.(check bool) "no abort" true (outcome.Pr.aborted = None);
  let originals = List.filter (fun m -> List.mem m msgs) outcome.Pr.delivered in
  Alcotest.(check int) "one original lost" 5 (List.length originals)

(* ---- Multi-round operation with per-round groups ---- *)

let test_multi_round_fresh_groups () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Trap ~seed:33 () in
  let members round =
    let net = Pr.setup r config ~round () in
    Array.to_list (Array.map (fun g -> Array.to_list g.Pr.members) net.Pr.groups)
  in
  (* Fresh randomness each round: group compositions differ. *)
  Alcotest.(check bool) "groups change across rounds" true (members 0 <> members 1);
  (* And each round works end to end. *)
  List.iter
    (fun round ->
      let net = Pr.setup r config ~round () in
      let msgs = List.init 4 (fun i -> Printf.sprintf "r%d-m%d" round i) in
      let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
      let outcome = Pr.run r net subs in
      Alcotest.(check int) (Printf.sprintf "round %d delivers" round) 4
        (List.length outcome.Pr.delivered))
    [ 0; 1 ]

(* ---- NIZK variant + churn combined ---- *)

let test_nizk_with_churn () =
  let r = rng () in
  let config =
    {
      (Config.tiny ~variant:Config.Nizk ~seed:44 ()) with
      Config.n_servers = 16;
      Config.n_groups = 3;
      Config.group_size = 4;
      Config.h = 2;
    }
  in
  let net = Pr.setup r config () in
  Pr.fail_server net net.Pr.groups.(1).Pr.members.(0);
  let msgs = List.init 6 (fun i -> Printf.sprintf "nc-%d" i) in
  let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 3) m) msgs in
  let outcome = Pr.run r net subs in
  Alcotest.(check bool) "no abort" true (outcome.Pr.aborted = None);
  Alcotest.(check int) "all delivered" 6 (List.length outcome.Pr.delivered)

(* ---- Intersection attack by servers (§7) ----

   A malicious entry server targets one user round after round, replacing
   one of the user's two submitted units (it cannot tell trap from inner
   ciphertext). Each attempt is caught with probability 1/2, so the attack
   survives only ~2 rounds in expectation — Atom limits intersection
   attacks rather than allowing them silently. *)

let test_intersection_attack_is_caught () =
  let caught_after = ref [] in
  for trial = 1 to 8 do
    let rec attack_round round =
      if round > 30 then Alcotest.fail "attack never caught (p = 2^-30)"
      else begin
        let config = Config.tiny ~variant:Config.Trap ~seed:(trial * 100 + round) () in
        let r = Atom_util.Rng.create (trial * 1000 + round) in
        let net = Pr.setup r config () in
        let msgs = List.init 6 (fun i -> Printf.sprintf "ia-%d" i) in
        (* The attacker replaces a unit in the target's entry group at the
           first iteration — the closest point to the user where units are
           already anonymous ciphertexts (it cannot tell the user's trap
           from the inner message, which is the whole point of §4.4). *)
        let fired = ref false in
        let adversary =
          {
            Pr.no_adversary with
            Pr.tamper =
              (fun ~iter ~gid ~next_pk batch ->
                if iter = 0 && gid = 0 && Array.length batch > 0 && not !fired then begin
                  fired := true;
                  let b = Array.copy batch in
                  b.(0) <- Pr.garbage_unit r net ~next_pk;
                  b
                end
                else batch);
          }
        in
        let honest_subs =
          List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs
        in
        let outcome = Pr.run r net ~adversary honest_subs in
        match outcome.Pr.aborted with
        | Some _ -> caught_after := round :: !caught_after
        | None -> attack_round (round + 1)
      end
    in
    attack_round 1
  done;
  let rounds = List.map float_of_int !caught_after in
  let mean = Atom_util.Stats.mean (Array.of_list rounds) in
  (* Geometric(1/2): mean 2; allow wide slack for 8 trials. *)
  Alcotest.(check bool)
    (Printf.sprintf "caught quickly (mean %.1f rounds)" mean)
    true
    (mean >= 1.0 && mean <= 5.0)

(* ---- Fuzzing malformed inputs ---- *)

let gen_bytes = QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 200))

let prop_cipher_of_bytes_total =
  QCheck2.Test.make ~name:"cipher_of_bytes never raises" ~count:300 gen_bytes (fun s ->
      match El.cipher_of_bytes s with Some _ | None -> true)

let prop_kem_of_bytes_total =
  QCheck2.Test.make ~name:"Kem.of_bytes never raises" ~count:300 gen_bytes (fun s ->
      match El.Kem.of_bytes s with Some _ | None -> true)

let prop_group_of_bytes_total =
  QCheck2.Test.make ~name:"G.of_bytes never raises" ~count:300 gen_bytes (fun s ->
      match G.of_bytes s with Some _ | None -> true)

let prop_p256_of_bytes_total =
  QCheck2.Test.make ~name:"P256.of_bytes never raises" ~count:100 gen_bytes (fun s ->
      match Atom_group.P256.of_bytes s with Some _ | None -> true)

let prop_message_frame_roundtrip =
  QCheck2.Test.make ~name:"message framing roundtrip" ~count:200
    QCheck2.Gen.(pair (string_size (int_bound 60)) (int_range 0 3))
    (fun (payload, extra) ->
      let width = Msg.width_for ~payload_bytes:(String.length payload) + extra in
      let els = Msg.embed ~tag:'M' payload ~width in
      Msg.extract els = Some ('M', payload))

let prop_dialing_codec_roundtrip =
  QCheck2.Test.make ~name:"dialing codec roundtrip" ~count:200
    QCheck2.Gen.(pair (string_size (return 8)) (string_size (int_bound 80)))
    (fun (rid, payload) -> Dialing.decode (Dialing.encode ~recipient:rid ~payload) = Some (rid, payload))

let test_message_framing_errors () =
  Alcotest.check_raises "width too small" (Invalid_argument "Message.frame: width too small")
    (fun () -> ignore (Msg.frame ~tag:'M' (String.make 100 'x') ~width:1));
  Alcotest.(check bool) "garbage extract" true
    (Msg.unframe "" = None);
  (* Truncated length field. *)
  Alcotest.(check bool) "length overrun" true (Msg.unframe "M\xff\xff" = None)

(* ---- P-256 end-to-end smoke (the paper's actual curve) ---- *)

let test_p256_protocol_smoke () =
  let module Pr256 = Atom_core.Protocol.Make (Atom_group.P256) in
  let r = Atom_util.Rng.create 0x9256 in
  let config =
    {
      (Config.tiny ~variant:Config.Trap ~seed:66 ()) with
      Config.n_servers = 4;
      Config.n_groups = 2;
      Config.group_size = 2;
      Config.topology = Config.Square 2;
    }
  in
  let net = Pr256.setup r config () in
  let msgs = [ "p256 msg A"; "p256 msg B" ] in
  let subs = List.mapi (fun i m -> Pr256.submit r net ~user:i ~entry_gid:(i mod 2) m) msgs in
  let outcome = Pr256.run r net subs in
  Alcotest.(check bool) "no abort" true (outcome.Pr256.aborted = None);
  Alcotest.(check (list string)) "delivered" (List.sort compare msgs)
    (List.sort compare outcome.Pr256.delivered)

(* ---- Wide (multi-element) messages end to end ---- *)

let test_wide_messages_end_to_end () =
  let r = rng () in
  let config = { (Config.tiny ~variant:Config.Trap ~seed:88 ()) with Config.msg_bytes = 160 } in
  let net = Pr.setup r config () in
  Alcotest.(check bool) "wide units" true (net.Pr.width >= 10);
  let msgs =
    List.init 4 (fun i ->
        Printf.sprintf "a full tweet-length message (160 bytes max) number %d: %s" i
          (String.make 60 'x'))
  in
  let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
  let outcome = Pr.run r net subs in
  Alcotest.(check bool) "no abort" true (outcome.Pr.aborted = None);
  Alcotest.(check (list string)) "delivered intact" (List.sort compare msgs)
    (List.sort compare outcome.Pr.delivered)

(* ---- Cross-validation: real engine op counts vs the simulator's charge
   formula (the basis of Figures 5–11). For U routed units, quorum q and T
   iterations, the closed form is U·q·T unit-shuffles and U·q·T
   unit-reencrypts; entry verification touches every vector component of
   every unit once per group member... here per submission unit. *)

let test_op_counts_match_model () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Trap ~seed:55 () in
  let net = Pr.setup r config () in
  let users = 8 in
  let msgs = List.init users (fun i -> Printf.sprintf "oc-%d" i) in
  let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
  let outcome = Pr.run r net subs in
  Alcotest.(check bool) "clean round" true (outcome.Pr.aborted = None);
  let ops = Pr.op_counts () in
  let units = 2 * users (* trap doubles *) in
  let quorum = Config.quorum config in
  let t = Config.iterations config in
  Alcotest.(check int) "unit shuffles = U*q*T" (units * quorum * t) ops.Pr.unit_shuffles;
  Alcotest.(check int) "unit reencs = U*q*T" (units * quorum * t) ops.Pr.unit_reencs;
  (* Each submission has 2 units of [width] components verified once. *)
  Alcotest.(check int) "encproof verifies" (units * net.Pr.width) ops.Pr.encproof_verifies;
  Alcotest.(check int) "kem opens = messages" users ops.Pr.kem_opens

(* ---- Distributed runtime: real crypto over the simulated network ---- *)

module Dist = Atom_core.Distributed.Make (G) (Pr)

let test_distributed_round () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Trap ~seed:77 () in
  let net = Pr.setup r config () in
  let msgs = List.init 6 (fun i -> Printf.sprintf "dist-%d" i) in
  let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
  let report = Dist.run r net subs in
  Alcotest.(check bool) "no abort" true (report.Dist.outcome.Pr.aborted = None);
  Alcotest.(check (list string)) "delivered over the network" (List.sort compare msgs)
    (List.sort compare report.Dist.outcome.Pr.delivered);
  (* The round took virtual time: compute charges + link latencies. *)
  Alcotest.(check bool)
    (Printf.sprintf "latency %.3fs > pure network floor" report.Dist.latency)
    true
    (report.Dist.latency > 0.1);
  Alcotest.(check bool) "network carried bytes" true (report.Dist.bytes_sent > 0.)

let test_distributed_matches_synchronous () =
  (* Same network, same submissions: the asynchronous runtime delivers the
     same message multiset as the synchronous ground-truth engine. *)
  let config = Config.tiny ~variant:Config.Basic ~seed:78 () in
  let msgs = List.init 5 (fun i -> Printf.sprintf "match-%d" i) in
  let run_with engine_runner =
    let r = Atom_util.Rng.create 4242 in
    let net = Pr.setup r config () in
    let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
    engine_runner r net subs
  in
  let sync = run_with (fun r net subs -> (Pr.run r net subs).Pr.delivered) in
  let dist = run_with (fun r net subs -> (Dist.run r net subs).Dist.outcome.Pr.delivered) in
  Alcotest.(check (list string)) "same multiset" (List.sort compare sync) (List.sort compare dist)

let test_distributed_basic_and_trap () =
  List.iter
    (fun variant ->
      let r = rng () in
      let config = Config.tiny ~variant ~seed:79 () in
      let net = Pr.setup r config () in
      let msgs = List.init 4 (fun i -> Printf.sprintf "dv-%d" i) in
      let subs = List.mapi (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod 4) m) msgs in
      let report = Dist.run r net subs in
      Alcotest.(check int) "all delivered" 4 (List.length report.Dist.outcome.Pr.delivered))
    [ Config.Basic; Config.Trap ]

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "extended",
    [
      Alcotest.test_case "controller fallback to nizk" `Quick test_controller_fallback;
      Alcotest.test_case "controller streak reset" `Quick test_controller_abort_streak_resets;
      Alcotest.test_case "weighted membership skew" `Quick test_weighted_membership_skew;
      Alcotest.test_case "weighted formation validity" `Quick test_weighted_formation_valid;
      Alcotest.test_case "weighted security tradeoff" `Quick test_weighted_security_tradeoff;
      Alcotest.test_case "pipelining throughput" `Quick test_pipelining_throughput;
      Alcotest.test_case "pipelining determinism" `Quick test_pipelining_deterministic;
      Alcotest.test_case "butterfly end-to-end" `Quick test_butterfly_end_to_end;
      Alcotest.test_case "basic variant vulnerable" `Quick test_basic_variant_tamper_undetected;
      Alcotest.test_case "multi-round fresh groups" `Quick test_multi_round_fresh_groups;
      Alcotest.test_case "nizk with churn" `Quick test_nizk_with_churn;
      Alcotest.test_case "intersection attack caught" `Slow test_intersection_attack_is_caught;
      Alcotest.test_case "op counts match simulator model" `Quick test_op_counts_match_model;
      Alcotest.test_case "wide messages end-to-end" `Quick test_wide_messages_end_to_end;
      Alcotest.test_case "distributed round" `Quick test_distributed_round;
      Alcotest.test_case "distributed matches synchronous" `Quick test_distributed_matches_synchronous;
      Alcotest.test_case "distributed basic and trap" `Quick test_distributed_basic_and_trap;
      Alcotest.test_case "message framing errors" `Quick test_message_framing_errors;
      Alcotest.test_case "p256 protocol smoke" `Slow test_p256_protocol_smoke;
      q prop_cipher_of_bytes_total;
      q prop_kem_of_bytes_total;
      q prop_group_of_bytes_total;
      q prop_p256_of_bytes_total;
      q prop_message_frame_roundtrip;
      q prop_dialing_codec_roundtrip;
    ] )
