(* Anonymous microblogging (§5): protest organizers post to a public
   bulletin board over several rounds while bystander traffic provides the
   anonymity set — and a malicious server tries to tamper mid-round.

     dune exec examples/microblogging.exe *)

module G = (val Atom_group.Registry.zp_test ())
module Proto = Atom_core.Protocol.Make (G)
open Atom_core

let organizers =
  [|
    "protest at liberty square, 6pm friday";
    "bring cameras. document everything";
    "legal aid hotline: 555-0199";
  |]

let bystander rng i = Printf.sprintf "cat picture thread #%d (%04x)" i (Atom_util.Rng.int_below rng 0xffff)

let run_round ~round ~tamper (board : Bulletin.t) =
  let config = { (Config.tiny ~variant:Config.Trap ~seed:(900 + round) ()) with Config.msg_bytes = 48 } in
  let rng = Atom_util.Rng.create (7000 + round) in
  let net = Proto.setup rng config ~round () in
  (* One organizer message per round, hidden among bystanders. *)
  let msgs = organizers.(round mod Array.length organizers) :: List.init 7 (bystander rng) in
  let submissions =
    List.mapi
      (fun i m -> Proto.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m)
      msgs
  in
  let adversary =
    if not tamper then Proto.no_adversary
    else
      (* A malicious last server replaces one unit in iteration 1. With
         probability 1/2 it hits a trap and the whole round aborts; traps
         make large-scale selective dropping a losing game (§4.4). *)
      let fired = ref false in
      {
        Proto.no_adversary with
        Proto.tamper =
          (fun ~iter ~gid ~next_pk batch ->
            if iter = 1 && gid = 0 && Array.length batch > 0 && not !fired then begin
              fired := true;
              let b = Array.copy batch in
              b.(0) <- Proto.garbage_unit rng net ~next_pk;
              b
            end
            else batch);
      }
  in
  let outcome = Proto.run rng net ~adversary submissions in
  match outcome.Proto.aborted with
  | None ->
      Bulletin.publish_round board ~round outcome.Proto.delivered;
      Printf.printf "round %d: %d posts published%s\n" round
        (List.length outcome.Proto.delivered)
        (if tamper then " (tampering went unnoticed: one message silently lost)" else "")
  | Some _ ->
      Printf.printf
        "round %d: ABORTED — the tampered unit was a trap; trustees withheld the keys,\n\
        \          no plaintext was revealed and the round can be rerun\n"
        round

let () =
  let board = Bulletin.create () in
  (* Three honest rounds. *)
  for round = 0 to 2 do
    run_round ~round ~tamper:false board
  done;
  (* Rounds with an actively malicious server; repeat until both outcomes
     (abort, silent single loss) have been seen. *)
  print_endline "-- now with a tampering server --";
  for round = 3 to 9 do
    run_round ~round ~tamper:true board
  done;
  Printf.printf "\nbulletin board after all rounds (%d posts):\n" (Bulletin.size board);
  List.iter (fun (round, body) -> Printf.printf "  [round %d] %s\n" round body) (Bulletin.read_all board)
