examples/microblogging.mli:
