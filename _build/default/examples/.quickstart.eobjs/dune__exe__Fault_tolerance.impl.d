examples/fault_tolerance.ml: Array Atom_core Atom_group Atom_util Config List Printf
