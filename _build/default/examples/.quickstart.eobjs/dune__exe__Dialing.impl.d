examples/dialing.ml: Atom_core Atom_group Atom_util Config Dialing List Printf
