examples/quickstart.ml: Atom_core Atom_group Atom_util Bulletin Config List Printf
