examples/capacity_planning.ml: Atom_core Config Cost_model List Printf Simulate
