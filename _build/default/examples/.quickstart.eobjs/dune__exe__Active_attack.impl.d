examples/active_attack.ml: Array Atom_core Atom_group Atom_util Config List Printf String
