examples/microblogging.ml: Array Atom_core Atom_group Atom_util Bulletin Config List Printf
