examples/active_attack.mli:
