examples/dialing.mli:
