examples/quickstart.mli:
