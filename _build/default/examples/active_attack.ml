(* Active attacks and both defences (§4.3, §4.4, §4.6):

   1. NIZK variant: a malicious server cheats during its shuffle and is
      caught immediately by the verifiable-shuffle check.
   2. Trap variant: a malicious server replaces units; each replacement is
      a coin flip against a trap. Repeated over rounds, the abort rate
      converges to 1/2 per tampered unit.
   3. Malicious *users* disrupt a trap round; the §4.6 blame procedure
      identifies them after the abort.

     dune exec examples/active_attack.exe *)

module G = (val Atom_group.Registry.zp_test ())
module Proto = Atom_core.Protocol.Make (G)
module El = Proto.El
module Msg = Proto.Msg
open Atom_core

let submit_all rng net config msgs =
  List.mapi
    (fun i m -> Proto.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m)
    msgs

let nizk_demo () =
  print_endline "== 1. NIZK variant vs a cheating shuffler ==";
  let config = Config.tiny ~variant:Config.Nizk ~seed:21 () in
  let rng = Atom_util.Rng.create 1 in
  let net = Proto.setup rng config () in
  let adversary =
    { Proto.no_adversary with Proto.cheat_shuffle = (fun ~iter ~gid -> iter = 2 && gid = 1) }
  in
  let msgs = List.init 6 (fun i -> Printf.sprintf "nizk-msg-%d" i) in
  let outcome = Proto.run rng net ~adversary (submit_all rng net config msgs) in
  match outcome.Proto.aborted with
  | Some (Proto.Shuffle_proof_rejected { gid; iter }) ->
      Printf.printf "caught: group %d, iteration %d — shuffle proof rejected, round aborted\n\n" gid
        iter
  | _ -> print_endline "unexpected outcome\n"

let trap_demo () =
  print_endline "== 2. Trap variant vs a unit-replacing server (10 rounds) ==";
  let aborts = ref 0 and losses = ref 0 in
  for seed = 1 to 10 do
    let config = Config.tiny ~variant:Config.Trap ~seed:(30 + seed) () in
    let rng = Atom_util.Rng.create (60 + seed) in
    let net = Proto.setup rng config () in
    let fired = ref false in
    let adversary =
      {
        Proto.no_adversary with
        Proto.tamper =
          (fun ~iter ~gid ~next_pk batch ->
            if iter = 1 && gid = 0 && Array.length batch > 0 && not !fired then begin
              fired := true;
              let b = Array.copy batch in
              b.(0) <- Proto.garbage_unit rng net ~next_pk;
              b
            end
            else batch);
      }
    in
    let msgs = List.init 6 (fun i -> Printf.sprintf "trap-msg-%d" i) in
    let outcome = Proto.run rng net ~adversary (submit_all rng net config msgs) in
    match outcome.Proto.aborted with
    | Some _ -> incr aborts
    | None -> incr losses
  done;
  Printf.printf
    "rounds aborted (hit a trap): %d; rounds with one silent loss: %d  — each replacement\n\
     is a 1/2 coin flip, so kappa replacements survive with probability 2^-kappa\n\n"
    !aborts !losses

let blame_demo () =
  print_endline "== 3. Malicious users identified by the blame procedure (4.6) ==";
  let config = Config.tiny ~variant:Config.Trap ~seed:77 () in
  let rng = Atom_util.Rng.create 99 in
  let net = Proto.setup rng config () in
  let honest = List.init 4 (fun i -> Printf.sprintf "honest-%d" i) in
  let subs = submit_all rng net config honest in
  (* User 2 submits a commitment matching no trap (a disruption attempt). *)
  let subs =
    List.map
      (fun s ->
        if s.Proto.user = 2 then { s with Proto.commitment = Some (String.make 32 '!') }
        else s)
      subs
  in
  let outcome = Proto.run rng net subs in
  (match outcome.Proto.aborted with
  | Some _ -> print_endline "round aborted: some trap commitment had no matching trap"
  | None -> print_endline "unexpected: round succeeded");
  Printf.printf "entry groups revealed their round keys and decrypted the submissions;\n";
  Printf.printf "blamed users: [%s] — operator can now blacklist them (4.6)\n"
    (String.concat "; " (List.map string_of_int outcome.Proto.blamed))

let () =
  nizk_demo ();
  trap_demo ();
  blame_demo ()
