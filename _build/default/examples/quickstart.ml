(* Quickstart: the smallest complete Atom round.

   Six users each submit a short message; the network of 12 servers in 4
   anytrust groups mixes them for 4 iterations of the square network; the
   exit groups publish the anonymized plaintexts. Run with:

     dune exec examples/quickstart.exe *)

module G = (val Atom_group.Registry.zp_test ())
module Proto = Atom_core.Protocol.Make (G)
open Atom_core

let () =
  (* 1. Configure a tiny trap-variant network (see Config.paper_default for
     the 1,024-server evaluation configuration). *)
  let config = Config.tiny ~variant:Config.Trap ~seed:2024 () in
  let rng = Atom_util.Rng.create config.Config.seed in

  (* 2. Form anytrust groups, run the distributed key generation, pick the
     trustees. *)
  let net = Proto.setup rng config () in
  Printf.printf "network: %d servers, %d groups of %d, %d mixing iterations\n"
    config.Config.n_servers config.Config.n_groups config.Config.group_size
    (Config.iterations config);

  (* 3. Users encrypt their messages and submit to entry groups of their
     choice (with proofs of plaintext knowledge and trap commitments). *)
  let messages =
    [ "free the press"; "meet at dawn"; "vote on thursday"; "whistle while you work";
      "the cake is real"; "hello, anonymity" ]
  in
  let submissions =
    List.mapi
      (fun i msg ->
        Proto.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) msg)
      messages
  in

  (* 4. Run the round: shuffle, divide, decrypt-and-reencrypt through the
     permutation network, then the trap checks and trustee key release. *)
  let outcome = Proto.run rng net submissions in

  (* 5. Publish to the bulletin board. *)
  match outcome.Proto.aborted with
  | Some _ -> print_endline "round aborted — tampering detected"
  | None ->
      let board = Bulletin.create () in
      Bulletin.publish_round board ~round:0 outcome.Proto.delivered;
      Printf.printf "bulletin board (%d posts, order reveals nothing):\n" (Bulletin.size board);
      List.iter (fun m -> Printf.printf "  * %s\n" m) (Bulletin.read_round board ~round:0)
