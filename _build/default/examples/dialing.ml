(* Dialing (§5): Alice bootstraps a shared secret with Bob through Atom,
   the way Vuvuzela/Alpenhorn-style messengers establish conversations.

   Alice seals her ephemeral public key to Bob's long-term key, addresses
   it to Bob's identifier, and sends it through the mix alongside other
   users' dials and the trustees' differential-privacy dummies. Bob
   downloads his whole mailbox and trial-decrypts.

     dune exec examples/dialing.exe *)

module G = (val Atom_group.Registry.zp_test ())
module Proto = Atom_core.Protocol.Make (G)
module El = Proto.El
open Atom_core

let () =
  let config = { (Config.tiny ~variant:Config.Trap ~seed:5 ()) with Config.msg_bytes = 72 } in
  let rng = Atom_util.Rng.create 0xd1a1 in
  let net = Proto.setup rng config () in

  (* Long-term identities. *)
  let bob = El.keygen rng in
  let bob_id = Dialing.id_of_user "bob@example" in
  let carol = El.keygen rng in
  let carol_id = Dialing.id_of_user "carol@example" in

  (* Alice dials Bob; Dave dials Carol; three more users send cover dials. *)
  let alice_eph = "alice-x25519-ephemeral-pk" in
  let dial_bob =
    Dialing.encode ~recipient:bob_id
      ~payload:(El.Kem.to_bytes (El.Kem.enc rng bob.El.pk alice_eph))
  in
  let dial_carol =
    Dialing.encode ~recipient:carol_id
      ~payload:(El.Kem.to_bytes (El.Kem.enc rng carol.El.pk "dave-ephemeral-pk"))
  in
  let cover i =
    Dialing.encode
      ~recipient:(Dialing.id_of_user (Printf.sprintf "cover-%d" i))
      ~payload:(Atom_util.Rng.bytes rng 20)
  in
  (* The trustee group's differential-privacy dummies ride along. *)
  let dummies =
    Dialing.generate_dummies rng ~trustees:config.Config.group_size ~mu:config.Config.dummy_mu
      ~b:config.Config.dummy_b ~mailboxes:config.Config.mailboxes ~payload_bytes:20
  in
  let all_dials = [ dial_bob; dial_carol; cover 0; cover 1; cover 2 ] @ dummies in
  Printf.printf "round input: %d real dials + %d DP dummies (eps=%.2f, delta=%.2e per round)\n"
    5 (List.length dummies)
    (Dialing.epsilon ~b:config.Config.dummy_b)
    (Dialing.delta ~mu:config.Config.dummy_mu ~b:config.Config.dummy_b);

  let submissions =
    List.mapi
      (fun i m -> Proto.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m)
      all_dials
  in
  let outcome = Proto.run rng net submissions in
  (match outcome.Proto.aborted with
  | Some _ -> failwith "round aborted"
  | None -> ());

  (* Exit servers sort everything into mailboxes. *)
  let st = Dialing.deliver ~mailboxes:config.Config.mailboxes outcome.Proto.delivered in
  Printf.printf "delivered %d units into %d mailboxes\n"
    (List.length outcome.Proto.delivered)
    config.Config.mailboxes;

  (* Bob downloads his mailbox and trial-decrypts every payload. *)
  let bob_payloads = Dialing.download st ~mailboxes:config.Config.mailboxes ~recipient_id:bob_id in
  Printf.printf "bob's mailbox: %d candidate payloads\n" (List.length bob_payloads);
  List.iter
    (fun payload ->
      match El.Kem.of_bytes payload with
      | Some sealed -> begin
          match El.Kem.dec bob.El.sk sealed with
          | Some key -> Printf.printf "bob recovered a dial: %S — call established!\n" key
          | None -> print_endline "bob: undecryptable payload (someone else's dial or a dummy)"
        end
      | None -> print_endline "bob: not a KEM box (dummy traffic)")
    bob_payloads
