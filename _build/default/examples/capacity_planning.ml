(* Capacity planning with the calibrated simulator: an operator wants to
   know how many volunteer servers Atom needs to serve a target user count
   within a latency budget, and what each volunteer will pay (§7).

     dune exec examples/capacity_planning.exe *)

open Atom_core

let cfg n = { Config.paper_default with Config.n_servers = n; Config.n_groups = n }

let () =
  let users = 2_000_000 and budget_min = 30. in
  Printf.printf "target: %d microblogging users per round within %.0f minutes\n\n" users budget_min;
  Printf.printf "%-10s %14s %14s\n" "servers" "latency (min)" "within budget";
  let chosen = ref None in
  List.iter
    (fun n ->
      let r = Simulate.run (Simulate.microblog (cfg n) ~n_messages:users) in
      let minutes = r.Simulate.latency /. 60. in
      let ok = minutes <= budget_min in
      if ok && !chosen = None then chosen := Some (n, minutes);
      Printf.printf "%-10d %14.1f %14s\n" n minutes (if ok then "yes" else "no"))
    [ 256; 512; 1024; 2048 ];
  (match !chosen with
  | Some (n, minutes) ->
      Printf.printf "\n=> %d servers meet the budget (%.1f min per round)\n" n minutes;
      (* What each volunteer pays (§7): *)
      let e = Cost_model.server_estimate ~cores:4 () in
      Printf.printf
        "   a 4-core volunteer: $%.0f/month compute + $%.2f/month egress at %.0f KB/s\n"
        e.Cost_model.compute_month e.Cost_model.bandwidth_month
        (e.Cost_model.bandwidth_bytes_per_sec /. 1e3);
      (* And how often a dialing round could run for the same population: *)
      let d = Simulate.run (Simulate.dialing (cfg n) ~n_messages:users) in
      Printf.printf "   dialing for the same population: %.1f min per round\n"
        (d.Simulate.latency /. 60.)
  | None -> print_endline "\n=> no configuration tested meets the budget; add servers");
  (* Throughput mode: if the deployment cares about messages/hour rather
     than per-round latency, pipelining (§4.7) changes the calculus. *)
  let p = Simulate.microblog (cfg 512) ~n_messages:users in
  let piped = Simulate.run_pipelined p ~rounds:6 in
  Printf.printf
    "\npipelined (512 servers): first round at %.1f min, then one round every %.1f min\n"
    (piped.Simulate.first_output /. 60.)
    (piped.Simulate.output_gap /. 60.)
