(* HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). *)

let block_size = 64

let hmac_sha256 ~(key : string) (msg : string) : string =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let pad c =
    String.init block_size (fun i ->
        let k = if i < String.length key then Char.code key.[i] else 0 in
        Char.chr (k lxor c))
  in
  Sha256.digest (pad 0x5c ^ Sha256.digest (pad 0x36 ^ msg))

let hkdf_extract ?(salt = "") (ikm : string) : string =
  let salt = if salt = "" then String.make 32 '\000' else salt in
  hmac_sha256 ~key:salt ikm

let hkdf_expand ~(prk : string) ~(info : string) ~(len : int) : string =
  if len > 255 * 32 then invalid_arg "Hmac.hkdf_expand: too long";
  let buf = Buffer.create len in
  let t = ref "" and i = ref 1 in
  while Buffer.length buf < len do
    t := hmac_sha256 ~key:prk (!t ^ info ^ String.make 1 (Char.chr !i));
    Buffer.add_string buf !t;
    incr i
  done;
  String.sub (Buffer.contents buf) 0 len

let hkdf ?salt ~(ikm : string) ~(info : string) ~(len : int) () : string =
  hkdf_expand ~prk:(hkdf_extract ?salt ikm) ~info ~len
