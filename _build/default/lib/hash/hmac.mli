(** HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). *)

val hmac_sha256 : key:string -> string -> string
(** 32-byte authentication tag. *)

val hkdf_extract : ?salt:string -> string -> string
val hkdf_expand : prk:string -> info:string -> len:int -> string
val hkdf : ?salt:string -> ikm:string -> info:string -> len:int -> unit -> string
(** Extract-then-expand in one call. *)
