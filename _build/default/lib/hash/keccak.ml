(* Keccak-f[1600] and SHA3-256 (FIPS 202).

   Atom uses SHA-3 for the cryptographic commitments to trap messages (§4.4).
   Round constants and rotation offsets are generated from the Keccak LFSR
   and the rho/pi walk instead of being hardcoded; the official FIPS 202 test
   vectors are pinned in the test suite. *)

(* Round constants via the degree-8 LFSR x^8 + x^6 + x^5 + x^4 + 1. *)
let round_constants : int64 array =
  let rc_bit t =
    let t = t mod 255 in
    if t = 0 then 1
    else begin
      let r = ref 0x01 in
      for _ = 1 to t do
        let hi = !r lsr 7 in
        r := ((!r lsl 1) lxor (hi * 0x71)) land 0xff
      done;
      !r land 1
    end
  in
  Array.init 24 (fun i ->
      let rc = ref 0L in
      for j = 0 to 6 do
        if rc_bit ((7 * i) + j) = 1 then
          rc := Int64.logor !rc (Int64.shift_left 1L ((1 lsl j) - 1))
      done;
      !rc)

(* Rho rotation offsets via the (x, y) -> (y, 2x + 3y) walk. *)
let rho_offsets : int array =
  let off = Array.make 25 0 in
  let x = ref 1 and y = ref 0 in
  for t = 0 to 23 do
    off.(!x + (5 * !y)) <- (t + 1) * (t + 2) / 2 mod 64;
    let nx = !y and ny = ((2 * !x) + (3 * !y)) mod 5 in
    x := nx;
    y := ny
  done;
  off

let rotl64 x n =
  if n = 0 then x else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f (st : int64 array) : unit =
  let c = Array.make 5 0L and d = Array.make 5 0L and b = Array.make 25 0L in
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor st.(x)
          (Int64.logxor st.(x + 5)
             (Int64.logxor st.(x + 10) (Int64.logxor st.(x + 15) st.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for x = 0 to 4 do
      for y = 0 to 4 do
        st.(x + (5 * y)) <- Int64.logxor st.(x + (5 * y)) d.(x)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let nx = y and ny = ((2 * x) + (3 * y)) mod 5 in
        b.(nx + (5 * ny)) <- rotl64 st.(x + (5 * y)) rho_offsets.(x + (5 * y))
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        st.(x + (5 * y)) <-
          Int64.logxor
            b.(x + (5 * y))
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    st.(0) <- Int64.logxor st.(0) round_constants.(round)
  done

(* Sponge with rate [rate] bytes, [0x06] domain padding (SHA-3), squeezing
   [out_len] bytes. *)
let sponge ~(rate : int) ~(out_len : int) (msg : string) : string =
  let st = Array.make 25 0L in
  let xor_byte idx v =
    let lane = idx / 8 and off = idx mod 8 in
    st.(lane) <- Int64.logxor st.(lane) (Int64.shift_left (Int64.of_int v) (8 * off))
  in
  let n = String.length msg in
  let blocks = n / rate in
  for b = 0 to blocks - 1 do
    for i = 0 to rate - 1 do
      xor_byte i (Char.code msg.[(b * rate) + i])
    done;
    keccak_f st
  done;
  (* last (partial) block with padding *)
  let rem = n - (blocks * rate) in
  for i = 0 to rem - 1 do
    xor_byte i (Char.code msg.[(blocks * rate) + i])
  done;
  xor_byte rem 0x06;
  xor_byte (rate - 1) 0x80;
  keccak_f st;
  let out = Buffer.create out_len in
  let squeezed = ref 0 in
  while !squeezed < out_len do
    let take = min rate (out_len - !squeezed) in
    for i = 0 to take - 1 do
      let lane = i / 8 and off = i mod 8 in
      Buffer.add_char out
        (Char.chr (Int64.to_int (Int64.shift_right_logical st.(lane) (8 * off)) land 0xff))
    done;
    squeezed := !squeezed + take;
    if !squeezed < out_len then keccak_f st
  done;
  Buffer.contents out

let sha3_256 (msg : string) : string = sponge ~rate:136 ~out_len:32 msg
let sha3_512 (msg : string) : string = sponge ~rate:72 ~out_len:64 msg

let shake128 ~(out_len : int) (msg : string) : string =
  (* SHAKE padding uses 0x1f instead of 0x06; reuse the sponge by patching the
     domain byte is not possible from outside, so inline the variant. *)
  let rate = 168 in
  let st = Array.make 25 0L in
  let xor_byte idx v =
    let lane = idx / 8 and off = idx mod 8 in
    st.(lane) <- Int64.logxor st.(lane) (Int64.shift_left (Int64.of_int v) (8 * off))
  in
  let n = String.length msg in
  let blocks = n / rate in
  for b = 0 to blocks - 1 do
    for i = 0 to rate - 1 do
      xor_byte i (Char.code msg.[(b * rate) + i])
    done;
    keccak_f st
  done;
  let rem = n - (blocks * rate) in
  for i = 0 to rem - 1 do
    xor_byte i (Char.code msg.[(blocks * rate) + i])
  done;
  xor_byte rem 0x1f;
  xor_byte (rate - 1) 0x80;
  keccak_f st;
  let out = Buffer.create out_len in
  let squeezed = ref 0 in
  while !squeezed < out_len do
    let take = min rate (out_len - !squeezed) in
    for i = 0 to take - 1 do
      let lane = i / 8 and off = i mod 8 in
      Buffer.add_char out
        (Char.chr (Int64.to_int (Int64.shift_right_logical st.(lane) (8 * off)) land 0xff))
    done;
    squeezed := !squeezed + take;
    if !squeezed < out_len then keccak_f st
  done;
  Buffer.contents out

let hex_sha3_256 s = Atom_util.Hex.encode (sha3_256 s)
