lib/hash/hmac.ml: Buffer Char Sha256 String
