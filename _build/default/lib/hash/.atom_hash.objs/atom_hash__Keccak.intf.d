lib/hash/keccak.mli:
