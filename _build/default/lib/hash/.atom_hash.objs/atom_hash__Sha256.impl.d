lib/hash/sha256.ml: Array Atom_nat Atom_util Bytes Char Lazy List Nat String
