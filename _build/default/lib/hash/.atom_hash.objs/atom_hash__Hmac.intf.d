lib/hash/hmac.mli:
