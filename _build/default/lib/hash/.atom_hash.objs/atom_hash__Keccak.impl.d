lib/hash/keccak.ml: Array Atom_util Buffer Char Int64 String
