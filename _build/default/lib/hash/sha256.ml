(* SHA-256 (FIPS 180-4).

   The round constants are the fractional parts of cube roots of the first 64
   primes and the initial state the fractional parts of square roots of the
   first 8 primes; we derive both with exact integer root extraction over
   [Atom_nat.Nat] rather than hardcoding 72 magic numbers, and the test suite
   pins the official FIPS test vectors. *)

open Atom_nat

let mask32 = 0xffffffff

(* floor(n-th root of x) by binary search. *)
let integer_root (x : Nat.t) (n : int) : Nat.t =
  let rec pow_nat b e = if e = 0 then Nat.one else Nat.mul b (pow_nat b (e - 1)) in
  let hi_bits = (Nat.bit_length x / n) + 1 in
  let rec search lo hi =
    (* invariant: lo^n <= x < hi^n *)
    if Nat.compare (Nat.add lo Nat.one) hi >= 0 then lo
    else
      let mid = Nat.shift_right (Nat.add lo hi) 1 in
      if Nat.compare (pow_nat mid n) x <= 0 then search mid hi else search lo mid
  in
  search Nat.zero (Nat.shift_left Nat.one hi_bits)

let first_primes count =
  let primes = ref [] and n = ref 2 in
  while List.length !primes < count do
    if Atom_nat.Prime.is_probable_prime (Nat.of_int !n) then primes := !n :: !primes;
    incr n
  done;
  List.rev !primes

(* frac(p^(1/root)) * 2^32, i.e. floor(root-th root of p * 2^(32*root)) mod 2^32 *)
let frac_root_constant p ~root =
  let scaled = Nat.shift_left (Nat.of_int p) (32 * root) in
  Nat.to_int_exn (integer_root scaled root) land mask32

let k = lazy (Array.of_list (List.map (frac_root_constant ~root:3) (first_primes 64)))
let h0 = lazy (Array.of_list (List.map (frac_root_constant ~root:2) (first_primes 8)))

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

type t = {
  mutable h : int array;
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes fed *)
}

let init () = { h = Array.copy (Lazy.force h0); buf = Bytes.create 64; buf_len = 0; total = 0 }

let compress (st : t) (block : Bytes.t) (off : int) : unit =
  let k = Lazy.force k in
  let w = Array.make 64 0 in
  for i = 0 to 15 do
    w.(i) <-
      (Char.code (Bytes.get block (off + (4 * i))) lsl 24)
      lor (Char.code (Bytes.get block (off + (4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get block (off + (4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get block (off + (4 * i) + 3))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
    let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask32
  done;
  let a = ref st.h.(0) and b = ref st.h.(1) and c = ref st.h.(2) and d = ref st.h.(3) in
  let e = ref st.h.(4) and f = ref st.h.(5) and g = ref st.h.(6) and h = ref st.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) in
    let temp1 = (!h + s1 + ch + k.(i) + w.(i)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask32 in
    h := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask32
  done;
  st.h.(0) <- (st.h.(0) + !a) land mask32;
  st.h.(1) <- (st.h.(1) + !b) land mask32;
  st.h.(2) <- (st.h.(2) + !c) land mask32;
  st.h.(3) <- (st.h.(3) + !d) land mask32;
  st.h.(4) <- (st.h.(4) + !e) land mask32;
  st.h.(5) <- (st.h.(5) + !f) land mask32;
  st.h.(6) <- (st.h.(6) + !g) land mask32;
  st.h.(7) <- (st.h.(7) + !h) land mask32

let feed_bytes (st : t) (s : Bytes.t) (pos : int) (len : int) : unit =
  st.total <- st.total + len;
  let pos = ref pos and remaining = ref len in
  (* Fill a partial buffer first. *)
  if st.buf_len > 0 then begin
    let take = min !remaining (64 - st.buf_len) in
    Bytes.blit s !pos st.buf st.buf_len take;
    st.buf_len <- st.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if st.buf_len = 64 then begin
      compress st st.buf 0;
      st.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress st s !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit s !pos st.buf 0 !remaining;
    st.buf_len <- !remaining
  end

let feed st s = feed_bytes st (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize (st : t) : string =
  let bit_len = st.total * 8 in
  let pad_len =
    let rem = (st.total + 1 + 8) mod 64 in
    if rem = 0 then 1 + 8 else 1 + 8 + (64 - rem)
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len - 1 - i) (Char.chr ((bit_len lsr (8 * i)) land 0xff))
  done;
  feed_bytes st pad 0 pad_len;
  assert (st.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set out (4 * i) (Char.chr ((st.h.(i) lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((st.h.(i) lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((st.h.(i) lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (st.h.(i) land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest (s : string) : string =
  let st = init () in
  feed st s;
  finalize st

let digest_list (parts : string list) : string =
  let st = init () in
  List.iter (feed st) parts;
  finalize st

let hex s = Atom_util.Hex.encode (digest s)
