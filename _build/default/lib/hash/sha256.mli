(** SHA-256 (FIPS 180-4), streaming and one-shot. *)

type t

val init : unit -> t
val feed : t -> string -> unit
val finalize : t -> string
(** 32-byte digest; the state must not be reused afterwards. *)

val digest : string -> string
(** One-shot 32-byte digest. *)

val digest_list : string list -> string
(** Digest of the concatenation of [parts]. *)

val hex : string -> string
(** Hex-encoded one-shot digest. *)
