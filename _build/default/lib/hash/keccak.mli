(** Keccak-f[1600] sponge constructions (FIPS 202). *)

val sha3_256 : string -> string
(** 32-byte SHA3-256 digest. Used for Atom's trap-message commitments. *)

val sha3_512 : string -> string
(** 64-byte SHA3-512 digest. *)

val shake128 : out_len:int -> string -> string
(** SHAKE128 extendable-output function. *)

val hex_sha3_256 : string -> string
