(** Deterministic pseudo-random number generator (xoshiro256** seeded via
    SplitMix64).

    Simulation-grade, not cryptographic: used wherever an experiment must be
    reproducible from a seed — topology sampling, workload generation, fault
    injection, and blinding factors in simulated (non-adversarial) runs. *)

type t

val create : int -> t
(** Create a generator from an integer seed. Equal seeds give equal streams. *)

val create_string : string -> t
(** Create a generator from a string label (hashed to a seed). *)

val split : t -> t
(** Derive an independent child stream; advances the parent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits53 : t -> int
(** 53 uniform random bits as a non-negative [int]. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int_below : t -> int -> int
(** [int_below t n] is uniform in [0, n); rejection-sampled (no modulo bias). *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool
val byte : t -> int

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniform string. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0..n-1]. *)

val exponential : t -> mean:float -> float
val laplace : t -> b:float -> float
(** Laplace(0, b) sample, as used for differential-privacy dummy counts. *)

val gaussian : t -> float
(** Standard normal sample. *)

val hash_string : string -> int
(** The (stable) string-to-seed fold used by {!create_string}. *)
