(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s]. *)

val decode : string -> string
(** [decode h] parses a hex string (either case) back into raw bytes.
    @raise Invalid_argument on odd length or non-hex characters. *)
