(* Small statistics helpers used by tests and the benchmark harness. *)

let mean (xs : float array) : float =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let percentile (xs : float array) (p : float) : float =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) and hi = int_of_float (Float.ceil rank) in
  let frac = rank -. Float.floor rank in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let median xs = percentile xs 50.

(* Pearson chi-square statistic against a uniform expectation; used by the
   mixing-quality tests to check that permutation networks produce
   near-uniform output positions. *)
let chi_square_uniform (counts : int array) : float =
  let n = Array.fold_left ( + ) 0 counts in
  let k = Array.length counts in
  if k = 0 || n = 0 then 0.
  else
    let expected = float_of_int n /. float_of_int k in
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts

(* Total variation distance between an empirical distribution (counts) and
   the uniform distribution over the same support. *)
let tv_distance_uniform (counts : int array) : float =
  let n = Array.fold_left ( + ) 0 counts in
  let k = Array.length counts in
  if k = 0 || n = 0 then 0.
  else
    let u = 1. /. float_of_int k in
    let acc =
      Array.fold_left
        (fun acc c -> acc +. Float.abs ((float_of_int c /. float_of_int n) -. u))
        0. counts
    in
    acc /. 2.

let histogram ~(buckets : int) ~(lo : float) ~(hi : float) (xs : float array) :
    int array =
  if buckets <= 0 || hi <= lo then invalid_arg "Stats.histogram";
  let h = Array.make buckets 0 in
  Array.iter
    (fun x ->
      if x >= lo && x < hi then begin
        let b = int_of_float ((x -. lo) /. (hi -. lo) *. float_of_int buckets) in
        let b = if b >= buckets then buckets - 1 else b in
        h.(b) <- h.(b) + 1
      end)
    xs;
  h
