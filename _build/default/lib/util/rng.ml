(* Deterministic random number generator: xoshiro256** seeded via SplitMix64.
   Simulation-grade (not cryptographic): every experiment in this repo must be
   reproducible from a seed, so we cannot use [Random]'s global state. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 (state : int64 ref) : int64 =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create (seed : int) : t =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

(* FNV-1a, used only to fold a string seed into an int. *)
let hash_string (s : string) : int =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let create_string seed = create (hash_string seed)

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 (t : t) : int64 =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split (t : t) : t =
  let st = ref (next_int64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let bits53 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11)

let float t = Float.of_int (bits53 t) *. 0x1p-53

(* Uniform in [0, n) by rejection to avoid modulo bias. *)
let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: bound must be positive";
  if n land (n - 1) = 0 then bits53 t land (n - 1)
  else
    let limit = 1 lsl 53 in
    let bucket = limit / n * n in
    let rec go () =
      let v = bits53 t in
      if v < bucket then v mod n else go ()
    in
    go ()

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range";
  lo + int_below t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let byte t = Int64.to_int (Int64.logand (next_int64 t) 0xffL)

let bytes t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (byte t))
  done;
  Bytes.unsafe_to_string out

let shuffle_in_place t (a : 'a array) : unit =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let exponential t ~mean =
  let u = float t in
  (* Clamp away from 0 so log is finite. *)
  let u = if u <= 0. then 0x1p-53 else u in
  -.mean *. log u

(* Laplace(0, b): used for Vuvuzela-style differential-privacy dummy counts. *)
let laplace t ~b =
  let u = float t -. 0.5 in
  let s = if u < 0. then -1. else 1. in
  -.b *. s *. log (1. -. (2. *. Float.abs u))

let gaussian t =
  (* Box–Muller. *)
  let u1 = Float.max (float t) 0x1p-53 and u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
