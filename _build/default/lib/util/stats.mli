(** Statistics helpers for tests and the benchmark harness. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0..100], linear interpolation. *)

val median : float array -> float

val chi_square_uniform : int array -> float
(** Pearson chi-square statistic of the counts against a uniform expectation
    over all cells. *)

val tv_distance_uniform : int array -> float
(** Total-variation distance between the empirical distribution given by
    [counts] and the uniform distribution on the same support. *)

val histogram : buckets:int -> lo:float -> hi:float -> float array -> int array
