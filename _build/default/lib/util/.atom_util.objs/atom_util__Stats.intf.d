lib/util/stats.mli:
