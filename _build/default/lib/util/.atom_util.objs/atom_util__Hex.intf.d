lib/util/hex.mli:
