lib/util/rng.mli:
