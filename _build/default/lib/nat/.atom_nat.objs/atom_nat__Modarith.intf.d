lib/nat/modarith.mli: Nat
