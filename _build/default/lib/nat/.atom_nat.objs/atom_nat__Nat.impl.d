lib/nat/nat.ml: Array Atom_util Buffer Bytes Char Format Printf Stdlib String
