lib/nat/nat.mli: Atom_util Format
