lib/nat/modarith.ml: Array Bytes Char Nat String
