lib/nat/prime.mli: Atom_util Nat
