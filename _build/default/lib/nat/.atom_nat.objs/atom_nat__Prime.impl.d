lib/nat/prime.ml: Array Atom_util List Modarith Nat
