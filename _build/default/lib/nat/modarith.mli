(** Montgomery modular arithmetic for a fixed odd modulus.

    A {!ctx} is built once per modulus; elements ({!el}) are fixed-width limb
    arrays kept in Montgomery form. Inversion uses Fermat's little theorem
    and therefore requires a prime modulus — every context in this repository
    (field primes, curve orders, Schnorr subgroup orders) is prime. *)

type ctx
type el

val create : Nat.t -> ctx
(** @raise Invalid_argument if the modulus is even or < 3. *)

val modulus : ctx -> Nat.t

val of_nat : ctx -> Nat.t -> el
(** Reduce mod the modulus and enter Montgomery form. *)

val to_nat : ctx -> el -> Nat.t
val of_int : ctx -> int -> el

val zero : ctx -> el
val one : ctx -> el
val equal : el -> el -> bool
val is_zero : el -> bool
val copy : el -> el

val add : ctx -> el -> el -> el
val sub : ctx -> el -> el -> el
val neg : ctx -> el -> el
val mul : ctx -> el -> el -> el
val sqr : ctx -> el -> el
val double : ctx -> el -> el

val pow : ctx -> el -> Nat.t -> el
(** [pow ctx b e] is b^e mod m; the exponent is a plain natural. *)

val inv : ctx -> el -> el
(** Inverse via Fermat (prime modulus only).
    @raise Division_by_zero on zero. *)
