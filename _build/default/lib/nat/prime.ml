(* Primality testing and (safe-)prime generation.

   Miller–Rabin over Montgomery contexts. For candidates below 3.3·10^24 the
   first 13 prime bases are a deterministic test; larger candidates use the
   deterministic bases plus extra rounds with pseudo-random bases, which is
   ample for parameter generation (not adversarial input validation). *)

let small_primes =
  [| 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89; 97;
     101; 103; 107; 109; 113; 127; 131; 137; 139; 149; 151; 157; 163; 167; 173; 179; 181; 191; 193;
     197; 199; 211; 223; 227; 229; 233; 239; 241; 251; 257; 263; 269; 271; 277; 281; 283; 293 |]

let deterministic_bases = [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41 ]

(* One Miller–Rabin round: n - 1 = d·2^s with d odd. *)
let mr_round (ctx : Modarith.ctx) ~(d : Nat.t) ~(s : int) (base : Nat.t) : bool =
  let n = Modarith.modulus ctx in
  let n1 = Nat.sub n Nat.one in
  let b = Nat.rem base n in
  if Nat.is_zero b then true
  else begin
    let x = Modarith.pow ctx (Modarith.of_nat ctx b) d in
    let x_nat = Modarith.to_nat ctx x in
    if Nat.equal x_nat Nat.one || Nat.equal x_nat n1 then true
    else begin
      let cur = ref x and ok = ref false and i = ref 1 in
      while (not !ok) && !i < s do
        cur := Modarith.sqr ctx !cur;
        if Nat.equal (Modarith.to_nat ctx !cur) n1 then ok := true;
        incr i
      done;
      !ok
    end
  end

let is_probable_prime ?(extra_rounds = 16) ?rng (n : Nat.t) : bool =
  match Nat.to_int_opt n with
  | Some v when v < 2 -> false
  | Some v when v < 4 -> true (* 2, 3 *)
  | _ ->
      if Nat.is_even n then false
      else begin
        let divisible =
          Array.exists
            (fun p ->
              Nat.mod_small n p = 0
              && not (match Nat.to_int_opt n with Some v -> v = p | None -> false))
            small_primes
        in
        if divisible then false
        else begin
          let ctx = Modarith.create n in
          let n1 = Nat.sub n Nat.one in
          let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else (d, s) in
          let d, s = split n1 0 in
          let det_ok = List.for_all (fun b -> mr_round ctx ~d ~s (Nat.of_int b)) deterministic_bases in
          if not det_ok then false
          else if Nat.bit_length n <= 81 then true (* deterministic below 3.3e24 *)
          else begin
            let rng = match rng with Some r -> r | None -> Atom_util.Rng.create 0x9e3779b9 in
            let rec rounds i =
              if i = 0 then true
              else
                let b = Nat.add Nat.two (Nat.random_below rng (Nat.sub n (Nat.of_int 4))) in
                mr_round ctx ~d ~s b && rounds (i - 1)
            in
            rounds extra_rounds
          end
        end
      end

let random_prime (rng : Atom_util.Rng.t) ~(bits : int) : Nat.t =
  if bits < 3 then invalid_arg "Prime.random_prime: need >= 3 bits";
  let rec go () =
    let cand = Nat.random_bits rng bits in
    let cand = if Nat.is_even cand then Nat.add cand Nat.one else cand in
    if Nat.bit_length cand = bits && is_probable_prime ~rng cand then cand else go ()
  in
  go ()

(* A safe prime p = 2q + 1 with q prime.  Fast sieving: p and q must both be
   coprime to the small primes, checked cheaply before Miller–Rabin. *)
let random_safe_prime (rng : Atom_util.Rng.t) ~(bits : int) : Nat.t * Nat.t =
  if bits < 5 then invalid_arg "Prime.random_safe_prime: need >= 5 bits";
  let rec go () =
    let q = Nat.random_bits rng (bits - 1) in
    let q = if Nat.is_even q then Nat.add q Nat.one else q in
    let p = Nat.add (Nat.shift_left q 1) Nat.one in
    let sieve_ok =
      Array.for_all
        (fun sp ->
          let qm = Nat.mod_small q sp and pm = Nat.mod_small p sp in
          (qm <> 0 || (match Nat.to_int_opt q with Some v -> v = sp | None -> false))
          && (pm <> 0 || match Nat.to_int_opt p with Some v -> v = sp | None -> false))
        small_primes
    in
    if
      sieve_ok
      && Nat.bit_length p = bits
      && is_probable_prime ~rng q
      && is_probable_prime ~rng p
    then (p, q)
    else go ()
  in
  go ()
