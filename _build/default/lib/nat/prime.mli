(** Primality testing and prime generation (Miller–Rabin). *)

val is_probable_prime : ?extra_rounds:int -> ?rng:Atom_util.Rng.t -> Nat.t -> bool
(** Deterministic for candidates up to 81 bits (first 13 prime bases);
    probabilistic with [extra_rounds] random bases beyond that. Intended for
    parameter generation, not validation of adversarial inputs. *)

val random_prime : Atom_util.Rng.t -> bits:int -> Nat.t
(** A random probable prime with exactly [bits] bits. *)

val random_safe_prime : Atom_util.Rng.t -> bits:int -> Nat.t * Nat.t
(** [(p, q)] with p = 2q + 1, both probable primes, p of exactly [bits]
    bits. *)
