(* Verifiable shuffle of ElGamal vectors — a commitment-consistent proof of
   shuffle in the style of Terelius–Wikström (the production descendant of
   the Neff shuffle [59] the paper uses; see DESIGN.md for the
   substitution rationale).

   Statement: output = π(rerandomized input) under group key X, for a secret
   permutation π and secret exponents s. Structure:

   1. Pedersen commitments c_j = g^{r_j}·h_{π(j)} to the permutation, over
      generators h_1..h_n with unknown discrete logs ([G.of_hash]).
   2. Fiat–Shamir challenges u_1..u_n; the prover works with the permuted
      u'_i = u_{π⁻¹(i)} without revealing them.
   3. A chain ĉ_i = g^{ŝ_i}·ĉ_{i-1}^{u'_i} whose endpoint pins Π u'_i = Π u_i
      (Schwartz–Zippel: together with Σ-consistency from the commitments this
      forces u' to be a permutation of u).
   4. A sigma protocol, with one shared challenge v, proving consistent
      openings of:
        (A)  Π c_j^{u_j}          = g^{r̄}·Π h_i^{u'_i}
        (B)  Π c_j / Π h_i        = g^{r̂}
        (C)  ĉ_n / h^{Π u_j}      = g^{d}
        (D)  ĉ_i                  = g^{ŝ_i}·ĉ_{i-1}^{u'_i}        (each i)
        (E)  Π (e'_j)^{u_j}       = Enc(1; s̃)·Π e_i^{u'_i}        (each
             ciphertext column, both components)

   Messages are vector ciphertexts (width ≥ 1 group elements, one shared
   permutation); relation (E) is proven once per column. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (El : module type of Atom_elgamal.Elgamal.Make (G)) =
struct
  module S = G.Scalar

  type t = {
    perm_comm : G.t array; (* c_j *)
    chain : G.t array; (* ĉ_1..ĉ_n *)
    t_a : G.t;
    t_b : G.t;
    t_c : G.t;
    t_chain : G.t array; (* t̂_i *)
    t_er : G.t array; (* per column: announcement for the R component *)
    t_ec : G.t array; (* per column: announcement for the c component *)
    k_rbar : S.t;
    k_rhat : S.t;
    k_d : S.t;
    k_s : S.t array; (* per column *)
    k_prime : S.t array; (* n *)
    k_hat : S.t array; (* n *)
  }

  let generator_h (context : string) : G.t = G.of_hash ("shuffle-h\000" ^ context)
  let generator_hi (context : string) (i : int) : G.t =
    G.of_hash (Printf.sprintf "shuffle-hi\000%s\000%d" context i)

  let statement_transcript ~(pk : G.t) ~(context : string) (input : El.vec array)
      (output : El.vec array) : Transcript.t =
    let tr = Transcript.create ~domain:"shuffle-proof" in
    Transcript.add tr context;
    Transcript.add tr (G.to_bytes pk);
    Array.iter (fun v -> Transcript.add tr (El.vec_to_bytes v)) input;
    Array.iter (fun v -> Transcript.add tr (El.vec_to_bytes v)) output;
    tr

  let challenges_u (tr : Transcript.t) (n : int) : S.t array =
    Array.map G.hash_to_scalar (Transcript.digest_n tr n)

  (* width of the vector ciphertexts; all must agree. *)
  let width_of (vs : El.vec array) : int option =
    if Array.length vs = 0 then None
    else begin
      let w = Array.length vs.(0) in
      if w = 0 || Array.exists (fun v -> Array.length v <> w) vs then None else Some w
    end

  let prove (rng : Atom_util.Rng.t) ~(pk : G.t) ~(context : string) ~(input : El.vec array)
      ~(output : El.vec array) ~(witness : El.vec_shuffle_witness) : t =
    let n = Array.length input in
    let width = match width_of input with Some w -> w | None -> invalid_arg "Shuffle_proof.prove" in
    let perm = witness.El.vperm in
    let h = generator_h context in
    let hi = Array.init n (generator_hi context) in
    (* 1. permutation commitments *)
    let r = Array.init n (fun _ -> S.random rng) in
    let perm_comm = Array.init n (fun j -> G.mul (G.pow_gen r.(j)) hi.(perm.(j))) in
    (* 2. challenges u, permuted u' *)
    let tr = statement_transcript ~pk ~context input output in
    Array.iter (fun c -> Transcript.add tr (G.to_bytes c)) perm_comm;
    let u = challenges_u tr n in
    let uprime = Array.make n S.zero in
    Array.iteri (fun j uj -> uprime.(perm.(j)) <- uj) u;
    (* 3. chain *)
    let shat = Array.init n (fun _ -> S.random rng) in
    let chain = Array.make n G.one in
    let d = ref S.zero in
    let prev = ref h in
    for i = 0 to n - 1 do
      chain.(i) <- G.mul (G.pow_gen shat.(i)) (G.pow !prev uprime.(i));
      d := S.add shat.(i) (S.mul uprime.(i) !d);
      prev := chain.(i)
    done;
    (* secrets of the aggregate relations *)
    let rbar = Array.fold_left ( fun acc (rj, uj) -> S.add acc (S.mul rj uj)) S.zero
        (Array.map2 (fun a b -> (a, b)) r u) in
    let rhat = Array.fold_left S.add S.zero r in
    let stilde =
      Array.init width (fun w ->
          let acc = ref S.zero in
          for j = 0 to n - 1 do
            acc := S.add !acc (S.mul witness.El.vrerands.(j).(w) u.(j))
          done;
          !acc)
    in
    (* 4. sigma announcements *)
    let w_rbar = S.random rng and w_rhat = S.random rng and w_d = S.random rng in
    let w_s = Array.init width (fun _ -> S.random rng) in
    let w_prime = Array.init n (fun _ -> S.random rng) in
    let w_hat = Array.init n (fun _ -> S.random rng) in
    let t_a =
      let acc = ref (G.pow_gen w_rbar) in
      for i = 0 to n - 1 do
        acc := G.mul !acc (G.pow hi.(i) w_prime.(i))
      done;
      !acc
    in
    let t_b = G.pow_gen w_rhat in
    let t_c = G.pow_gen w_d in
    let t_chain =
      Array.init n (fun i ->
          let prev = if i = 0 then h else chain.(i - 1) in
          G.mul (G.pow_gen w_hat.(i)) (G.pow prev w_prime.(i)))
    in
    let t_er =
      Array.init width (fun w ->
          let acc = ref (G.pow_gen w_s.(w)) in
          for i = 0 to n - 1 do
            acc := G.mul !acc (G.pow input.(i).(w).El.r w_prime.(i))
          done;
          !acc)
    in
    let t_ec =
      Array.init width (fun w ->
          let acc = ref (G.pow pk w_s.(w)) in
          for i = 0 to n - 1 do
            acc := G.mul !acc (G.pow input.(i).(w).El.c w_prime.(i))
          done;
          !acc)
    in
    (* 5. challenge v over everything *)
    Array.iter (fun c -> Transcript.add tr (G.to_bytes c)) chain;
    Transcript.add_list tr [ G.to_bytes t_a; G.to_bytes t_b; G.to_bytes t_c ];
    Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) t_chain;
    Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) t_er;
    Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) t_ec;
    let v = G.hash_to_scalar (Transcript.digest tr) in
    (* 6. responses *)
    let resp w x = S.add w (S.mul v x) in
    {
      perm_comm;
      chain;
      t_a;
      t_b;
      t_c;
      t_chain;
      t_er;
      t_ec;
      k_rbar = resp w_rbar rbar;
      k_rhat = resp w_rhat rhat;
      k_d = resp w_d !d;
      k_s = Array.init width (fun w -> resp w_s.(w) stilde.(w));
      k_prime = Array.init n (fun i -> resp w_prime.(i) uprime.(i));
      k_hat = Array.init n (fun i -> resp w_hat.(i) shat.(i));
    }

  let verify ~(pk : G.t) ~(context : string) ~(input : El.vec array) ~(output : El.vec array)
      (pi : t) : bool =
    let n = Array.length input in
    match width_of input with
    | None -> false
    | Some width ->
        Array.length output = n
        && width_of output = Some width
        && Array.length pi.perm_comm = n
        && Array.length pi.chain = n
        && Array.length pi.t_chain = n
        && Array.length pi.k_prime = n
        && Array.length pi.k_hat = n
        && Array.length pi.t_er = width
        && Array.length pi.t_ec = width
        && Array.length pi.k_s = width
        && (not (Array.exists (fun v -> Array.exists (fun ct -> Option.is_some ct.El.y) v) input))
        && (not (Array.exists (fun v -> Array.exists (fun ct -> Option.is_some ct.El.y) v) output))
        && begin
             let h = generator_h context in
             let hi = Array.init n (generator_hi context) in
             let tr = statement_transcript ~pk ~context input output in
             Array.iter (fun c -> Transcript.add tr (G.to_bytes c)) pi.perm_comm;
             let u = challenges_u tr n in
             Array.iter (fun c -> Transcript.add tr (G.to_bytes c)) pi.chain;
             Transcript.add_list tr [ G.to_bytes pi.t_a; G.to_bytes pi.t_b; G.to_bytes pi.t_c ];
             Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) pi.t_chain;
             Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) pi.t_er;
             Array.iter (fun x -> Transcript.add tr (G.to_bytes x)) pi.t_ec;
             let v = G.hash_to_scalar (Transcript.digest tr) in
             (* statement aggregates *)
             let big_a =
               let acc = ref G.one in
               for j = 0 to n - 1 do
                 acc := G.mul !acc (G.pow pi.perm_comm.(j) u.(j))
               done;
               !acc
             in
             let big_b =
               let num = Array.fold_left G.mul G.one pi.perm_comm in
               let den = Array.fold_left G.mul G.one hi in
               G.div num den
             in
             let u_prod = Array.fold_left S.mul S.one u in
             let big_c = G.div pi.chain.(n - 1) (G.pow h u_prod) in
             (* (A) g^{k_rbar} Π hi^{k'_i} = t_a · A^v *)
             let lhs_a =
               let acc = ref (G.pow_gen pi.k_rbar) in
               for i = 0 to n - 1 do
                 acc := G.mul !acc (G.pow hi.(i) pi.k_prime.(i))
               done;
               !acc
             in
             let ok_a = G.equal lhs_a (G.mul pi.t_a (G.pow big_a v)) in
             (* (B) *)
             let ok_b = G.equal (G.pow_gen pi.k_rhat) (G.mul pi.t_b (G.pow big_b v)) in
             (* (C) *)
             let ok_c = G.equal (G.pow_gen pi.k_d) (G.mul pi.t_c (G.pow big_c v)) in
             (* (D) chain steps *)
             let ok_d = ref true in
             for i = 0 to n - 1 do
               let prev = if i = 0 then h else pi.chain.(i - 1) in
               let lhs = G.mul (G.pow_gen pi.k_hat.(i)) (G.pow prev pi.k_prime.(i)) in
               let rhs = G.mul pi.t_chain.(i) (G.pow pi.chain.(i) v) in
               if not (G.equal lhs rhs) then ok_d := false
             done;
             (* (E) per column, both components *)
             let ok_e = ref true in
             for w = 0 to width - 1 do
               let e_r =
                 let acc = ref G.one in
                 for j = 0 to n - 1 do
                   acc := G.mul !acc (G.pow output.(j).(w).El.r u.(j))
                 done;
                 !acc
               in
               let e_c =
                 let acc = ref G.one in
                 for j = 0 to n - 1 do
                   acc := G.mul !acc (G.pow output.(j).(w).El.c u.(j))
                 done;
                 !acc
               in
               let lhs_r =
                 let acc = ref (G.pow_gen pi.k_s.(w)) in
                 for i = 0 to n - 1 do
                   acc := G.mul !acc (G.pow input.(i).(w).El.r pi.k_prime.(i))
                 done;
                 !acc
               in
               let lhs_c =
                 let acc = ref (G.pow pk pi.k_s.(w)) in
                 for i = 0 to n - 1 do
                   acc := G.mul !acc (G.pow input.(i).(w).El.c pi.k_prime.(i))
                 done;
                 !acc
               in
               if not (G.equal lhs_r (G.mul pi.t_er.(w) (G.pow e_r v))) then ok_e := false;
               if not (G.equal lhs_c (G.mul pi.t_ec.(w) (G.pow e_c v))) then ok_e := false
             done;
             ok_a && ok_b && ok_c && !ok_d && !ok_e
           end

  (* ---- Serialization ----

     Wire layout: u32 n, u32 width, then the fixed-width fields in a fixed
     order. Group elements and scalars use the backend's canonical
     encodings, so decoding validates every element. *)

  let scalar_bytes = String.length (S.to_bytes S.zero)

  let u32 (n : int) : string =
    String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xff))

  let to_bytes (pi : t) : string =
    let buf = Buffer.create 4096 in
    let el e = Buffer.add_string buf (G.to_bytes e) in
    let sc x = Buffer.add_string buf (S.to_bytes x) in
    Buffer.add_string buf (u32 (Array.length pi.perm_comm));
    Buffer.add_string buf (u32 (Array.length pi.t_er));
    Array.iter el pi.perm_comm;
    Array.iter el pi.chain;
    el pi.t_a;
    el pi.t_b;
    el pi.t_c;
    Array.iter el pi.t_chain;
    Array.iter el pi.t_er;
    Array.iter el pi.t_ec;
    sc pi.k_rbar;
    sc pi.k_rhat;
    sc pi.k_d;
    Array.iter sc pi.k_s;
    Array.iter sc pi.k_prime;
    Array.iter sc pi.k_hat;
    Buffer.contents buf

  let of_bytes (s : string) : t option =
    let pos = ref 0 in
    let fail = ref false in
    let read_u32 () =
      if !pos + 4 > String.length s then begin
        fail := true;
        0
      end
      else begin
        let v =
          (Char.code s.[!pos] lsl 24)
          lor (Char.code s.[!pos + 1] lsl 16)
          lor (Char.code s.[!pos + 2] lsl 8)
          lor Char.code s.[!pos + 3]
        in
        pos := !pos + 4;
        v
      end
    in
    let read_el () =
      if !fail || !pos + G.element_bytes > String.length s then begin
        fail := true;
        G.one
      end
      else begin
        match G.of_bytes (String.sub s !pos G.element_bytes) with
        | Some e ->
            pos := !pos + G.element_bytes;
            e
        | None ->
            fail := true;
            G.one
      end
    in
    let read_sc () =
      if !fail || !pos + scalar_bytes > String.length s then begin
        fail := true;
        S.zero
      end
      else begin
        let v = S.of_bytes_mod (String.sub s !pos scalar_bytes) in
        pos := !pos + scalar_bytes;
        v
      end
    in
    let n = read_u32 () in
    let width = read_u32 () in
    if !fail || n < 1 || n > 1_000_000 || width < 1 || width > 4096 then None
    else begin
      let els k = Array.init k (fun _ -> read_el ()) in
      let scs k = Array.init k (fun _ -> read_sc ()) in
      let perm_comm = els n in
      let chain = els n in
      let t_a = read_el () in
      let t_b = read_el () in
      let t_c = read_el () in
      let t_chain = els n in
      let t_er = els width in
      let t_ec = els width in
      let k_rbar = read_sc () in
      let k_rhat = read_sc () in
      let k_d = read_sc () in
      let k_s = scs width in
      let k_prime = scs n in
      let k_hat = scs n in
      if !fail || !pos <> String.length s then None
      else
        Some
          {
            perm_comm;
            chain;
            t_a;
            t_b;
            t_c;
            t_chain;
            t_er;
            t_ec;
            k_rbar;
            k_rhat;
            k_d;
            k_s;
            k_prime;
            k_hat;
          }
    end
end
