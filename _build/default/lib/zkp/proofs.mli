(** Sigma-protocol NIZKs (Fiat–Shamir): the paper's EncProof and ReEncProof.

    [Enc_proof] is the Appendix-A Schnorr proof of plaintext knowledge with
    the entry-group id bound into the challenge (anti-replay, §3);
    [Dleq] is the Chaum–Pedersen discrete-log-equality proof [20];
    [Reenc_proof] composes two DLEQs into verifiable
    decrypt-and-reencrypt. All proof objects have byte codecs whose
    decoders validate every group element. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (El : module type of Atom_elgamal.Elgamal.Make (G)) : sig
  val scalar_bytes : int
  val read_element : string -> int -> (G.t * int) option
  val read_scalar : string -> int -> (G.Scalar.t * int) option

  module Enc_proof : sig
    type t = { a : G.t; u : G.Scalar.t }

    val prove :
      Atom_util.Rng.t -> pk:G.t -> context:string -> El.cipher -> randomness:G.Scalar.t -> t
    (** Prove knowledge of the encryption randomness; [context] binds the
        proof to the entry group. *)

    val verify : pk:G.t -> context:string -> El.cipher -> t -> bool
    val to_bytes : t -> string
    val of_bytes : string -> t option

    val prove_vec :
      Atom_util.Rng.t -> pk:G.t -> context:string -> El.vec -> randomness:G.Scalar.t array ->
      t array

    val verify_vec : pk:G.t -> context:string -> El.vec -> t array -> bool
  end

  module Dleq : sig
    type t = { a1 : G.t; a2 : G.t; u : G.Scalar.t }

    val prove :
      Atom_util.Rng.t -> context:string -> g1:G.t -> h1:G.t -> g2:G.t -> h2:G.t ->
      x:G.Scalar.t -> t
    (** Prove log_{g1} h1 = log_{g2} h2 = x. *)

    val verify : context:string -> g1:G.t -> h1:G.t -> g2:G.t -> h2:G.t -> t -> bool
    val to_bytes : t -> string
    val of_bytes_at : string -> int -> (t * int) option
    val of_bytes : string -> t option
  end

  module Reenc_proof : sig
    type t = { stripped : G.t; strip_proof : Dleq.t; rerand_proof : Dleq.t option }

    val reenc_with_proof :
      Atom_util.Rng.t -> share:G.Scalar.t -> ?coeff:G.Scalar.t -> next_pk:G.t option ->
      context:string -> El.cipher -> El.cipher * t
    (** Perform one server's ReEnc step and prove it: one DLEQ for the
        stripped factor D = Y^{x_eff} against the server's effective public
        share, one DLEQ for the fresh rerandomization (absent at the exit
        layer). *)

    val verify :
      eff_pk:G.t -> next_pk:G.t option -> context:string -> input:El.cipher ->
      output:El.cipher -> t -> bool

    val to_bytes : t -> string
    val of_bytes : string -> t option

    val reenc_vec_with_proof :
      Atom_util.Rng.t -> share:G.Scalar.t -> ?coeff:G.Scalar.t -> next_pk:G.t option ->
      context:string -> El.vec -> El.vec * t array

    val verify_vec :
      eff_pk:G.t -> next_pk:G.t option -> context:string -> input:El.vec -> output:El.vec ->
      t array -> bool
  end
end
