lib/zkp/shuffle_proof.mli: Atom_elgamal Atom_group Atom_util
