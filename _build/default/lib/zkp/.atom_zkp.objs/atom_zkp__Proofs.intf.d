lib/zkp/proofs.mli: Atom_elgamal Atom_group Atom_util
