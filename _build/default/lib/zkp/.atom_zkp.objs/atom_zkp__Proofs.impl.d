lib/zkp/proofs.ml: Array Atom_elgamal Atom_group Atom_util Option String Transcript
