lib/zkp/transcript.mli:
