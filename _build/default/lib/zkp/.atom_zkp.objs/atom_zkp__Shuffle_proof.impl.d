lib/zkp/shuffle_proof.ml: Array Atom_elgamal Atom_group Atom_util Buffer Char Option Printf String Transcript
