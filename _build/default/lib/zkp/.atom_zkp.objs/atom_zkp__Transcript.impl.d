lib/zkp/transcript.ml: Array Atom_hash Buffer Char List String
