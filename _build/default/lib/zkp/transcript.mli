(** Fiat–Shamir transcripts: a running hash over length-prefixed,
    domain-separated parts (length prefixing rules out concatenation
    ambiguity). *)

type t

val create : domain:string -> t
val add : t -> string -> unit
val add_list : t -> string list -> unit

val digest : t -> string
(** 32-byte challenge seed over everything added so far. *)

val digest_n : t -> int -> string array
(** A stream of [n] independent challenge seeds. *)
