(* Fiat–Shamir transcripts.

   A transcript is a running hash over length-prefixed, domain-separated
   parts; length prefixing rules out ambiguity attacks where two different
   part sequences serialize to the same byte stream. *)

type t = { buf : Buffer.t }

let create ~(domain : string) : t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "atom-fs-v1\000";
  Buffer.add_string buf domain;
  Buffer.add_char buf '\000';
  { buf }

let add (t : t) (part : string) : unit =
  let len = String.length part in
  for i = 3 downto 0 do
    Buffer.add_char t.buf (Char.chr ((len lsr (8 * i)) land 0xff))
  done;
  Buffer.add_string t.buf part

let add_list (t : t) (parts : string list) : unit = List.iter (add t) parts

let digest (t : t) : string = Atom_hash.Sha256.digest (Buffer.contents t.buf)

(* Derive a stream of independent challenges from one transcript state. *)
let digest_n (t : t) (n : int) : string array =
  let base = digest t in
  Array.init n (fun i -> Atom_hash.Sha256.digest_list [ base; string_of_int i ])
