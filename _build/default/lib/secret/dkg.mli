(** Dealerless distributed key generation — the paper's DVSS [67],
    implemented as joint-Feldman: every member deals a Shamir sharing of a
    fresh random value; cheating dealers are detected by the Feldman checks
    and disqualified; the group key is the product of qualified dealers'
    degree-0 commitments. Also provides the §4.5 buddy-group re-sharing. *)

module Make (G : Atom_group.Group_intf.GROUP) : sig
  module Sh : module type of Shamir.Make (G)

  type dealing = { dealer : int; comms : Sh.commitments; shares : Sh.share array }

  val deal : Atom_util.Rng.t -> dealer:int -> k:int -> threshold:int -> dealing
  val verify_dealing : dealing -> member:int -> bool

  type result = {
    k : int;
    threshold : int;
    group_pk : G.t;
    shares : Sh.share array;
    combined_comms : Sh.commitments;
    disqualified : int list;
  }

  val share_pk : result -> int -> G.t
  (** The public key of member [j]'s combined share (for ReEncProof
      verification against threshold quorums). *)

  val run :
    Atom_util.Rng.t -> k:int -> threshold:int -> ?malicious_dealers:int list -> unit -> result
  (** Full protocol among the k members; [malicious_dealers] lets tests
      inject corrupt dealings (they are detected and disqualified). *)

  val exponentiation_count : k:int -> threshold:int -> int
  (** Operation count for one run — the cost model behind Table 4. *)

  type reshare = { source_idx : int; sub_shares : Sh.share array; sub_comms : Sh.commitments }

  val reshare : Atom_util.Rng.t -> threshold':int -> buddies:int -> Sh.share -> reshare
  (** §4.5: re-share one member's share to a buddy group. *)

  val recover : reshare -> from:int list -> Sh.share
  (** A replacement server reconstructs the lost share from >= threshold'
      buddy sub-shares. *)
end
