(* Shamir secret sharing and Feldman verifiable secret sharing over a
   group's scalar field.

   Shares are evaluations of a random degree-(t−1) polynomial with the
   secret at f(0); share indices are the non-zero field points 1..n. The
   Feldman commitments g^{a_k} let any party check its share against the
   dealer (the building block of the dealerless DKG in [Dkg]). *)

module Make (G : Atom_group.Group_intf.GROUP) = struct
  module S = G.Scalar

  type share = { idx : int; (* in 1..n *) value : S.t }

  (* Evaluate Σ coeffs.(k) · x^k by Horner's rule. *)
  let eval_poly (coeffs : S.t array) (x : S.t) : S.t =
    let acc = ref S.zero in
    for k = Array.length coeffs - 1 downto 0 do
      acc := S.add coeffs.(k) (S.mul x !acc)
    done;
    !acc

  (* Split [secret] into [n] shares, any [threshold] of which reconstruct.
     Also returns the polynomial coefficients (the dealer's witness, needed
     for Feldman commitments). *)
  let split (rng : Atom_util.Rng.t) ~(threshold : int) ~(n : int) (secret : S.t) :
      share array * S.t array =
    if threshold < 1 || threshold > n then invalid_arg "Shamir.split: need 1 <= threshold <= n";
    let coeffs = Array.init threshold (fun k -> if k = 0 then secret else S.random rng) in
    let shares = Array.init n (fun i -> { idx = i + 1; value = eval_poly coeffs (S.of_int (i + 1)) }) in
    (shares, coeffs)

  (* Lagrange coefficient λ_i for interpolating at x = 0 from points [xs]:
     λ_i = Π_{j ≠ i} x_j / (x_j − x_i). *)
  let lagrange_at_zero ~(xs : int list) ~(i : int) : S.t =
    if not (List.mem i xs) then invalid_arg "Shamir.lagrange_at_zero: i not in xs";
    let xi = S.of_int i in
    List.fold_left
      (fun acc j ->
        if j = i then acc
        else begin
          let xj = S.of_int j in
          S.mul acc (S.mul xj (S.inv (S.sub xj xi)))
        end)
      S.one xs

  let reconstruct (shares : share list) : S.t =
    let xs = List.map (fun s -> s.idx) shares in
    (match List.sort_uniq compare xs with
    | uniq when List.length uniq <> List.length xs ->
        invalid_arg "Shamir.reconstruct: duplicate share indices"
    | _ -> ());
    List.fold_left
      (fun acc s -> S.add acc (S.mul s.value (lagrange_at_zero ~xs ~i:s.idx)))
      S.zero shares

  (* ---- Feldman VSS ---- *)

  type commitments = G.t array
  (* A_k = g^{a_k} for each polynomial coefficient. *)

  let commit (coeffs : S.t array) : commitments = Array.map G.pow_gen coeffs

  (* The public key of share [idx]: g^{f(idx)} = Π_k A_k^{idx^k}. *)
  let share_pk (comms : commitments) (idx : int) : G.t =
    let x = S.of_int idx in
    let acc = ref G.one and xp = ref S.one in
    Array.iter
      (fun a ->
        acc := G.mul !acc (G.pow a !xp);
        xp := S.mul !xp x)
      comms;
    !acc

  let verify_share (comms : commitments) (s : share) : bool =
    G.equal (G.pow_gen s.value) (share_pk comms s.idx)

  let secret_pk (comms : commitments) : G.t =
    if Array.length comms = 0 then G.one else comms.(0)
end
