(** Shamir secret sharing and Feldman VSS over a group's scalar field. *)

module Make (G : Atom_group.Group_intf.GROUP) : sig
  type share = { idx : int; (* 1..n *) value : G.Scalar.t }

  val eval_poly : G.Scalar.t array -> G.Scalar.t -> G.Scalar.t

  val split :
    Atom_util.Rng.t -> threshold:int -> n:int -> G.Scalar.t -> share array * G.Scalar.t array
  (** Shares plus the polynomial coefficients (the dealer's witness).
      @raise Invalid_argument unless 1 <= threshold <= n. *)

  val lagrange_at_zero : xs:int list -> i:int -> G.Scalar.t
  (** Interpolation weight of point [i] at x = 0 among points [xs]. *)

  val reconstruct : share list -> G.Scalar.t
  (** Needs >= threshold shares with distinct indices.
      @raise Invalid_argument on duplicates. *)

  type commitments = G.t array
  (** Feldman commitments A_k = g^{a_k}. *)

  val commit : G.Scalar.t array -> commitments

  val share_pk : commitments -> int -> G.t
  (** g^{f(idx)} — publicly derivable from the commitments. *)

  val verify_share : commitments -> share -> bool
  val secret_pk : commitments -> G.t
end
