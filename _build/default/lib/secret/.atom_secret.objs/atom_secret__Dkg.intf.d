lib/secret/dkg.mli: Atom_group Atom_util Shamir
