lib/secret/shamir.mli: Atom_group Atom_util
