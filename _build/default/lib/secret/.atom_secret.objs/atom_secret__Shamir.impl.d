lib/secret/shamir.ml: Array Atom_group Atom_util List
