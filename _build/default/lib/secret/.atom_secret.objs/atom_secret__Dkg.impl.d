lib/secret/dkg.ml: Array Atom_group Atom_util List Shamir
