(* Dealerless distributed key generation (the paper's DVSS [67]).

   Joint-Feldman: every group member deals a Shamir sharing of a fresh
   random value with Feldman commitments; members verify every share they
   receive against the dealer's commitments and disqualify cheating dealers.
   The group secret is the (never materialized) sum of qualified dealers'
   values; member j's share of it is the sum of the sub-shares it received;
   the group public key is the product of the qualified dealers' degree-0
   commitments.

   The computational pattern — k dealings of k shares each, k² share
   verifications of [threshold] exponentiations — is what Table 4 measures
   as "group setup latency". [dealing_cost] exposes the counts so the
   simulator can charge virtual time for them. *)

module Make (G : Atom_group.Group_intf.GROUP) = struct
  module Sh = Shamir.Make (G)
  module S = G.Scalar

  type dealing = {
    dealer : int; (* 1..k *)
    comms : Sh.commitments;
    shares : Sh.share array; (* share.(j-1) is for member j *)
  }

  let deal (rng : Atom_util.Rng.t) ~(dealer : int) ~(k : int) ~(threshold : int) : dealing =
    let secret = S.random rng in
    let shares, coeffs = Sh.split rng ~threshold ~n:k secret in
    { dealer; comms = Sh.commit coeffs; shares }

  (* Member j's view of dealing d: the sub-share plus its validity. *)
  let verify_dealing (d : dealing) ~(member : int) : bool =
    Sh.verify_share d.comms d.shares.(member - 1)

  type result = {
    k : int;
    threshold : int;
    group_pk : G.t;
    shares : Sh.share array; (* member j's combined share at index j *)
    combined_comms : Sh.commitments; (* Π over dealers: pins every share_pk *)
    disqualified : int list;
  }

  (* The public key of member j's combined share, derivable by anyone from
     the combined commitments: g^{F(j)} where F = Σ qualified dealers' f_d. *)
  let share_pk (r : result) (j : int) : G.t = Sh.share_pk r.combined_comms j

  (* Run the full protocol among honest members. [malicious_dealers] lets
     tests inject dealers who hand out corrupted shares; they are detected
     and disqualified exactly as in the complaint phase of the protocol. *)
  let run (rng : Atom_util.Rng.t) ~(k : int) ~(threshold : int)
      ?(malicious_dealers : int list = []) () : result =
    let dealings =
      Array.init k (fun i ->
          let d = deal rng ~dealer:(i + 1) ~k ~threshold in
          if List.mem (i + 1) malicious_dealers then begin
            (* Corrupt one sub-share: the victim's Feldman check fails. *)
            let victim = (i + 1) mod k in
            d.shares.(victim) <-
              { d.shares.(victim) with Sh.value = S.add d.shares.(victim).Sh.value S.one };
            d
          end
          else d)
    in
    let disqualified =
      Array.to_list dealings
      |> List.filter_map (fun d ->
             let all_ok =
               Array.for_all (fun (s : Sh.share) -> Sh.verify_share d.comms s) d.shares
             in
             if all_ok then None else Some d.dealer)
    in
    let qualified = Array.to_list dealings |> List.filter (fun d -> not (List.mem d.dealer disqualified)) in
    if qualified = [] then invalid_arg "Dkg.run: no qualified dealers";
    let shares =
      Array.init k (fun j ->
          let value =
            List.fold_left
              (fun acc (d : dealing) -> S.add acc d.shares.(j).Sh.value)
              S.zero qualified
          in
          { Sh.idx = j + 1; Sh.value = value })
    in
    let combined_comms =
      Array.init threshold (fun c ->
          List.fold_left (fun acc (d : dealing) -> G.mul acc d.comms.(c)) G.one qualified)
    in
    let group_pk = combined_comms.(0) in
    { k; threshold; group_pk; shares; combined_comms; disqualified }

  (* Operation counts for one DKG run, used by the cost model: each of the k
     dealers performs [threshold] commitment exponentiations and k share
     evaluations; each member verifies k shares at [threshold + 1]
     exponentiations each. *)
  let exponentiation_count ~(k : int) ~(threshold : int) : int =
    (k * threshold) + (k * k * (threshold + 1))

  (* ---- Buddy-group re-sharing (§4.5) ----

     Each member re-shares its own share of the group key to a buddy group;
     if the member (or its whole group) fails, any [threshold'] buddies can
     hand the sub-shares to a replacement server, which reconstructs the
     lost share and takes over its index. *)

  type reshare = { source_idx : int; sub_shares : Sh.share array; sub_comms : Sh.commitments }

  let reshare (rng : Atom_util.Rng.t) ~(threshold' : int) ~(buddies : int)
      (s : Sh.share) : reshare =
    let sub_shares, coeffs = Sh.split rng ~threshold:threshold' ~n:buddies s.Sh.value in
    { source_idx = s.Sh.idx; sub_shares; sub_comms = Sh.commit coeffs }

  let recover (r : reshare) ~(from : int list) : Sh.share =
    let subs = List.map (fun b -> r.sub_shares.(b - 1)) from in
    { Sh.idx = r.source_idx; Sh.value = Sh.reconstruct subs }
end
