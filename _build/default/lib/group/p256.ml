(* NIST P-256 (secp256r1), the curve used by the paper's prototype (§5).

   Short Weierstrass y² = x³ − 3x + b over the P-256 field prime. Internal
   arithmetic uses Jacobian projective coordinates over the generic
   Montgomery contexts of [Atom_nat.Modarith]; the public element type is
   the canonical affine form so that [equal] and [to_bytes] are structural.

   Message embedding is try-and-increment: a 28-byte payload is placed in a
   fixed slice of the x-coordinate together with a 16-bit counter, and the
   counter is advanced until x³ − 3x + b is a square (probability 1/2 per
   attempt). The paper packs 32 bytes per point; we reserve 4 bytes of
   framing, and the modeled cost tables use the paper's packing so figure
   shapes are unaffected (see DESIGN.md, Known deviations). *)

open Atom_nat

let p = Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
let n = Nat.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"
let b_const = Nat.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"
let gx = Nat.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
let gy = Nat.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"

let fp = Modarith.create p
let fb = Modarith.of_nat fp b_const
let three = Modarith.of_int fp 3
let sqrt_exp = Nat.shift_right (Nat.add p Nat.one) 2 (* (p+1)/4; valid since p ≡ 3 mod 4 *)

module Scalar = struct
  type t = Modarith.el

  let fq = Modarith.create n
  let order = n
  let zero = Modarith.zero fq
  let one = Modarith.one fq
  let of_nat v = Modarith.of_nat fq v
  let to_nat s = Modarith.to_nat fq s
  let of_int i = Modarith.of_int fq i
  let add = Modarith.add fq
  let sub = Modarith.sub fq
  let mul = Modarith.mul fq
  let neg = Modarith.neg fq
  let inv = Modarith.inv fq
  let equal = Modarith.equal
  let is_zero = Modarith.is_zero
  let random rng = of_nat (Nat.random_below rng order)
  let of_bytes_mod s = of_nat (Nat.of_bytes_be s)
  let to_bytes s = Nat.to_bytes_be ~length:32 (to_nat s)
end

type t = Inf | Aff of Modarith.el * Modarith.el
type scalar = Scalar.t

let name = "p256"
let one = Inf
let equal a b =
  match (a, b) with
  | Inf, Inf -> true
  | Aff (x1, y1), Aff (x2, y2) -> Modarith.equal x1 x2 && Modarith.equal y1 y2
  | _ -> false

let is_one = function Inf -> true | Aff _ -> false

(* y² = x³ - 3x + b *)
let rhs_of_x (x : Modarith.el) : Modarith.el =
  let x3 = Modarith.mul fp (Modarith.sqr fp x) x in
  Modarith.add fp (Modarith.sub fp x3 (Modarith.mul fp three x)) fb

let on_curve = function
  | Inf -> true
  | Aff (x, y) -> Modarith.equal (Modarith.sqr fp y) (rhs_of_x x)

(* ---- Jacobian internals ---- *)

type jac = { jx : Modarith.el; jy : Modarith.el; jz : Modarith.el }

let jac_inf = { jx = Modarith.one fp; jy = Modarith.one fp; jz = Modarith.zero fp }
let jac_is_inf j = Modarith.is_zero j.jz

let to_jac = function
  | Inf -> jac_inf
  | Aff (x, y) -> { jx = x; jy = y; jz = Modarith.one fp }

let to_affine (j : jac) : t =
  if jac_is_inf j then Inf
  else begin
    let zinv = Modarith.inv fp j.jz in
    let zinv2 = Modarith.sqr fp zinv in
    let zinv3 = Modarith.mul fp zinv2 zinv in
    Aff (Modarith.mul fp j.jx zinv2, Modarith.mul fp j.jy zinv3)
  end

(* dbl-2001-b for a = -3. *)
let jac_double (pt : jac) : jac =
  if jac_is_inf pt || Modarith.is_zero pt.jy then jac_inf
  else begin
    let delta = Modarith.sqr fp pt.jz in
    let gamma = Modarith.sqr fp pt.jy in
    let beta = Modarith.mul fp pt.jx gamma in
    let alpha =
      Modarith.mul fp three (Modarith.mul fp (Modarith.sub fp pt.jx delta) (Modarith.add fp pt.jx delta))
    in
    let eight_beta = Modarith.double fp (Modarith.double fp (Modarith.double fp beta)) in
    let x3 = Modarith.sub fp (Modarith.sqr fp alpha) eight_beta in
    let z3 =
      Modarith.sub fp
        (Modarith.sub fp (Modarith.sqr fp (Modarith.add fp pt.jy pt.jz)) gamma)
        delta
    in
    let four_beta = Modarith.double fp (Modarith.double fp beta) in
    let gamma2 = Modarith.sqr fp gamma in
    let eight_gamma2 = Modarith.double fp (Modarith.double fp (Modarith.double fp gamma2)) in
    let y3 = Modarith.sub fp (Modarith.mul fp alpha (Modarith.sub fp four_beta x3)) eight_gamma2 in
    { jx = x3; jy = y3; jz = z3 }
  end

let jac_add (p1 : jac) (p2 : jac) : jac =
  if jac_is_inf p1 then p2
  else if jac_is_inf p2 then p1
  else begin
    let z1z1 = Modarith.sqr fp p1.jz in
    let z2z2 = Modarith.sqr fp p2.jz in
    let u1 = Modarith.mul fp p1.jx z2z2 in
    let u2 = Modarith.mul fp p2.jx z1z1 in
    let s1 = Modarith.mul fp p1.jy (Modarith.mul fp p2.jz z2z2) in
    let s2 = Modarith.mul fp p2.jy (Modarith.mul fp p1.jz z1z1) in
    let h = Modarith.sub fp u2 u1 in
    let r = Modarith.sub fp s2 s1 in
    if Modarith.is_zero h then if Modarith.is_zero r then jac_double p1 else jac_inf
    else begin
      let hh = Modarith.sqr fp h in
      let hhh = Modarith.mul fp h hh in
      let v = Modarith.mul fp u1 hh in
      let x3 =
        Modarith.sub fp (Modarith.sub fp (Modarith.sqr fp r) hhh) (Modarith.double fp v)
      in
      let y3 =
        Modarith.sub fp (Modarith.mul fp r (Modarith.sub fp v x3)) (Modarith.mul fp s1 hhh)
      in
      let z3 = Modarith.mul fp h (Modarith.mul fp p1.jz p2.jz) in
      { jx = x3; jy = y3; jz = z3 }
    end
  end

let mul a b = to_affine (jac_add (to_jac a) (to_jac b))

let inv = function Inf -> Inf | Aff (x, y) -> Aff (x, Modarith.neg fp y)
let div a b = mul a (inv b)

(* 4-bit fixed-window scalar multiplication. *)
let pow (base : t) (k : scalar) : t =
  let e = Scalar.to_nat k in
  if Nat.is_zero e || is_one base then Inf
  else begin
    let table = Array.make 16 jac_inf in
    table.(1) <- to_jac base;
    for i = 2 to 15 do
      table.(i) <- jac_add table.(i - 1) table.(1)
    done;
    let bits = Nat.bit_length e in
    let windows = (bits + 3) / 4 in
    let acc = ref jac_inf in
    for w = windows - 1 downto 0 do
      if w <> windows - 1 then begin
        acc := jac_double !acc;
        acc := jac_double !acc;
        acc := jac_double !acc;
        acc := jac_double !acc
      end;
      let nibble =
        (if Nat.test_bit e ((4 * w) + 3) then 8 else 0)
        lor (if Nat.test_bit e ((4 * w) + 2) then 4 else 0)
        lor (if Nat.test_bit e ((4 * w) + 1) then 2 else 0)
        lor if Nat.test_bit e (4 * w) then 1 else 0
      in
      if nibble <> 0 then acc := jac_add !acc table.(nibble)
    done;
    to_affine !acc
  end

let generator = Aff (Modarith.of_nat fp gx, Modarith.of_nat fp gy)
let pow_gen k = pow generator k

let element_bytes = 33

let to_bytes = function
  | Inf -> String.make element_bytes '\000'
  | Aff (x, y) ->
      let y_odd = Nat.is_odd (Modarith.to_nat fp y) in
      let prefix = if y_odd then '\003' else '\002' in
      String.make 1 prefix ^ Nat.to_bytes_be ~length:32 (Modarith.to_nat fp x)

(* Square root mod p via (p+1)/4; returns None if the input is a
   non-residue. *)
let sqrt (v : Modarith.el) : Modarith.el option =
  let r = Modarith.pow fp v sqrt_exp in
  if Modarith.equal (Modarith.sqr fp r) v then Some r else None

let of_bytes s =
  if String.length s <> element_bytes then None
  else if s = String.make element_bytes '\000' then Some Inf
  else begin
    match s.[0] with
    | '\002' | '\003' -> begin
        let xv = Nat.of_bytes_be (String.sub s 1 32) in
        if Nat.compare xv p >= 0 then None
        else begin
          let x = Modarith.of_nat fp xv in
          match sqrt (rhs_of_x x) with
          | None -> None
          | Some y ->
              let y_odd = Nat.is_odd (Modarith.to_nat fp y) in
              let want_odd = s.[0] = '\003' in
              let y = if y_odd = want_odd then y else Modarith.neg fp y in
              Some (Aff (x, y))
        end
      end
    | _ -> None
  end

let embed_bytes = 28
let embed_marker = '\x01'

let embed payload =
  if String.length payload > embed_bytes then None
  else begin
    let padded = String.make (embed_bytes - String.length payload) '\000' ^ payload in
    let rec try_counter counter =
      if counter > 0xffff then None (* probability 2^-65536: unreachable *)
      else begin
        let xb =
          Bytes.of_string
            (String.concat ""
               [
                 "\000"; padded;
                 String.init 2 (fun i -> Char.chr ((counter lsr (8 * (1 - i))) land 0xff));
                 String.make 1 embed_marker;
               ])
        in
        let x = Modarith.of_nat fp (Nat.of_bytes_be (Bytes.to_string xb)) in
        match sqrt (rhs_of_x x) with
        | Some y -> Some (Aff (x, y))
        | None -> try_counter (counter + 1)
      end
    in
    try_counter 0
  end

let extract = function
  | Inf -> None
  | Aff (x, _) ->
      let xb = Nat.to_bytes_be ~length:32 (Modarith.to_nat fp x) in
      if xb.[0] = '\000' && xb.[31] = embed_marker then Some (String.sub xb 1 embed_bytes)
      else None

let random rng = pow_gen (Scalar.random rng)
let hash_to_scalar msg = Scalar.of_bytes_mod (Atom_hash.Sha256.digest msg)

(* Hash-to-curve by try-and-increment on hashed x candidates; the resulting
   point has a publicly unknown discrete log. *)
let of_hash label =
  let rec go ctr =
    let digest = Atom_hash.Sha256.digest_list [ "p256-of-hash"; label; string_of_int ctr ] in
    let xv = Nat.of_bytes_be digest in
    if Nat.compare xv p >= 0 then go (ctr + 1)
    else begin
      let x = Modarith.of_nat fp xv in
      match sqrt (rhs_of_x x) with
      | Some y when not (Modarith.is_zero y) -> Aff (x, y)
      | _ -> go (ctr + 1)
    end
  in
  go 0
