lib/group/p256.ml: Array Atom_hash Atom_nat Bytes Char Modarith Nat String
