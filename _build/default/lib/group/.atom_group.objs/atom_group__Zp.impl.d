lib/group/zp.ml: Atom_hash Atom_nat Atom_util Group_intf Lazy Modarith Nat Prime Printf String
