lib/group/group_intf.ml: Atom_nat Atom_util Nat
