lib/group/registry.ml: Group_intf P256 Printf Zp
