(* First-class-module handles on the available group backends. *)

let p256 () : (module Group_intf.GROUP) = (module P256)

let zp_test = Zp.test_group
(** 96-bit Schnorr group: fast, for tests and examples. *)

let zp_medium = Zp.medium_group
(** 256-bit Schnorr group: realistic size without curve arithmetic. *)

let by_name = function
  | "p256" -> p256 ()
  | "zp-test" -> zp_test ()
  | "zp-medium" -> zp_medium ()
  | other -> invalid_arg (Printf.sprintf "Registry.by_name: unknown group %S" other)
