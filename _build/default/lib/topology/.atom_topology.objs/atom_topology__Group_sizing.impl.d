lib/topology/group_sizing.ml: Float Hashtbl List
