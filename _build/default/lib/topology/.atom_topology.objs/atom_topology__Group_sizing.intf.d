lib/topology/group_sizing.mli:
