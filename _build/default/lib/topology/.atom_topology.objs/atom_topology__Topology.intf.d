lib/topology/topology.mli: Atom_util
