lib/topology/topology.ml: Array Atom_util Float List
