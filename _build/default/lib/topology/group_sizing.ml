(* Anytrust / many-trust group sizing (§4.1 and Appendix B).

   A group of k servers sampled from a population with adversarial fraction
   f must contain at least h honest servers except with negligible
   probability. The failure probability of one group is the binomial tail
     Pr[< h honest] = Σ_{i=0}^{h-1} C(k,i) (1−f)^i f^{k−i}
   and the union bound over G groups multiplies by G. Computed in log space
   — the probabilities of interest sit near 2⁻⁶⁴. *)

let log_factorial : int -> float =
  let cache = Hashtbl.create 512 in
  let rec go n =
    if n <= 1 then 0.
    else
      match Hashtbl.find_opt cache n with
      | Some v -> v
      | None ->
          let v = go (n - 1) +. log (float_of_int n) in
          Hashtbl.add cache n v;
          v
  in
  go

let log_choose k i = log_factorial k -. log_factorial i -. log_factorial (k - i)

let log_sum_exp (xs : float list) : float =
  match xs with
  | [] -> neg_infinity
  | _ ->
      let m = List.fold_left Float.max neg_infinity xs in
      if m = neg_infinity then neg_infinity
      else m +. log (List.fold_left (fun acc x -> acc +. exp (x -. m)) 0. xs)

(* log2 Pr[fewer than h honest servers in a group of k], adversary fraction f. *)
let log2_group_failure ~(k : int) ~(h : int) ~(f : float) : float =
  if h > k then 0. (* certain failure *)
  else begin
    let terms =
      List.init h (fun i ->
          log_choose k i +. (float_of_int i *. log (1. -. f)) +. (float_of_int (k - i) *. log f))
    in
    log_sum_exp terms /. log 2.
  end

(* Smallest k such that the failure probability (union-bounded over
   [groups] groups when [union_bound]) is below 2^-security_bits. *)
let required_group_size ?(union_bound = true) ~(f : float) ~(groups : int) ~(h : int)
    ~(security_bits : int) () : int =
  if f <= 0. then h
  else begin
    let budget = -.float_of_int security_bits in
    let slack = if union_bound then Float.log2 (float_of_int groups) else 0. in
    let rec go k =
      if k > 10_000 then invalid_arg "Group_sizing.required_group_size: no feasible k"
      else if slack +. log2_group_failure ~k ~h ~f < budget then k
      else go (k + 1)
    in
    go (max h 1)
  end

(* The paper's evaluation configuration: f = 20%, G = 1024, 2^-64. *)
let paper_config ~(h : int) : int =
  required_group_size ~f:0.2 ~groups:1024 ~h ~security_bits:64 ()

(* The sizing rule the paper's §4.5 example uses (k = 33 for h = 2): keep a
   full 32-server anytrust quorum alive after h−1 fail-stops. Figure 13, by
   contrast, follows the binomial tail above. *)
let paper_heuristic ~(h : int) : int = paper_config ~h:1 + (h - 1)
