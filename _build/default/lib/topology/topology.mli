(** Random permutation network topologies (§3).

    A topology wires [groups] mixing nodes into [iterations] layers;
    [neighbors ~iter ~group] lists the β successors that node [group]
    splits its shuffled batch across in iteration [iter]. *)

type t = {
  name : string;
  groups : int;
  iterations : int;
  neighbors : iter:int -> group:int -> int array;
}

val square : groups:int -> iterations:int -> t
(** Håstad's square-lattice shuffle [40]: complete bipartite layers
    (β = G); O(1) iterations suffice, the paper uses T = 10. *)

val butterfly : groups:int -> repetitions:int -> t
(** Iterated butterfly [26]: β = 2, one address bit per level, log₂ G
    levels per repetition. @raise Invalid_argument unless G is a power of
    two. *)

val butterfly_paper : groups:int -> t
(** 2·log₂ G repetitions — the O(log² G) depth quoted in §3. *)

val simulate : Atom_util.Rng.t -> t -> messages:int -> int array
(** Run the network on abstract message ids with honest uniform shuffles;
    returns each message's final global position. Always a permutation. *)

val mixing_tv : Atom_util.Rng.t -> t -> messages:int -> trials:int -> float
(** Total-variation distance of message 0's final-position distribution
    from uniform, estimated over [trials] runs. *)
