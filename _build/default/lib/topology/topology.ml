(* Random permutation network topologies (§3).

   A topology wires [groups] logical mixing nodes into [iterations] layers;
   [neighbors ~iter ~group] lists the β successor nodes that node [group]
   splits its shuffled batch across in iteration [iter]. Two instances:

   - Square (Håstad's square-lattice shuffle [40]): every node connects to
     every node in the next layer (β = G), so with M = G² messages each
     iteration alternately permutes "rows" and "columns" of the message
     matrix. O(1) iterations suffice; the paper uses T = 10.

   - Iterated butterfly [26]: β = 2, nodes pair up along one address bit per
     level; O(log² G) total depth. Shallower per-iteration fan-out but many
     more iterations — the trade-off §3 discusses.

   [simulate] runs the permutation network on abstract message ids with an
   honest uniform shuffle at every node, returning the final position of
   every message. It is the measurement tool for the mixing-quality
   experiments (how close the output is to a uniform random permutation). *)

type t = {
  name : string;
  groups : int;
  iterations : int;
  neighbors : iter:int -> group:int -> int array;
}

let square ~(groups : int) ~(iterations : int) : t =
  if groups < 1 then invalid_arg "Topology.square: need >= 1 group";
  let all = Array.init groups (fun i -> i) in
  { name = "square"; groups; iterations; neighbors = (fun ~iter:_ ~group:_ -> all) }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let butterfly ~(groups : int) ~(repetitions : int) : t =
  if not (is_power_of_two groups) then invalid_arg "Topology.butterfly: groups must be 2^k";
  let levels = int_of_float (Float.round (Float.log2 (float_of_int groups))) in
  let levels = max levels 1 in
  {
    name = "butterfly";
    groups;
    iterations = levels * repetitions;
    neighbors =
      (fun ~iter ~group ->
        let bit = iter mod levels in
        [| group; group lxor (1 lsl bit) |]);
  }

(* Standard repetition count for an almost-ideal permutation [26]:
   O(log M) passes; we use 2·log2(G) passes of the log2(G)-level butterfly,
   giving the O(log² G) total depth quoted in §3. *)
let butterfly_paper ~(groups : int) : t =
  let levels = max 1 (int_of_float (Float.round (Float.log2 (float_of_int groups)))) in
  butterfly ~groups ~repetitions:(2 * levels)

(* ---- Abstract execution on message ids ---- *)

(* Distribute the (already shuffled) batch of node [g] round-robin across
   its neighbors; returns per-neighbor message lists, preserving order. *)
let split_batch (msgs : 'a list) (n_neighbors : int) : 'a list array =
  let buckets = Array.make n_neighbors [] in
  List.iteri (fun i m -> buckets.(i mod n_neighbors) <- m :: buckets.(i mod n_neighbors)) msgs;
  Array.map List.rev buckets

(* Run the network with honest uniform shuffles; input message i starts at
   node (i mod groups). Returns [final_slot] where final_slot.(i) is the
   global output position of message i (node-major order). *)
let simulate (rng : Atom_util.Rng.t) (t : t) ~(messages : int) : int array =
  let holdings = Array.make t.groups [] in
  for i = messages - 1 downto 0 do
    holdings.(i mod t.groups) <- i :: holdings.(i mod t.groups)
  done;
  for iter = 0 to t.iterations - 1 do
    let incoming = Array.make t.groups [] in
    for g = 0 to t.groups - 1 do
      (* Shuffle this node's batch. *)
      let batch = Array.of_list holdings.(g) in
      Atom_util.Rng.shuffle_in_place rng batch;
      let nbrs = t.neighbors ~iter ~group:g in
      let buckets = split_batch (Array.to_list batch) (Array.length nbrs) in
      Array.iteri (fun bi bucket -> incoming.(nbrs.(bi)) <- bucket :: incoming.(nbrs.(bi))) buckets
    done;
    for g = 0 to t.groups - 1 do
      holdings.(g) <- List.concat (List.rev incoming.(g))
    done
  done;
  (* Final shuffle inside each exit node, then flatten node-major. *)
  let final = Array.make messages (-1) in
  let pos = ref 0 in
  for g = 0 to t.groups - 1 do
    let batch = Array.of_list holdings.(g) in
    Atom_util.Rng.shuffle_in_place rng batch;
    Array.iter
      (fun msg ->
        final.(msg) <- !pos;
        incr pos)
      batch
  done;
  final

(* Empirical mixing quality: total-variation distance between the final
   position distribution of message 0 and uniform, over [trials] runs.
   An ideal permutation network gives TV → 0 as trials grow. *)
let mixing_tv (rng : Atom_util.Rng.t) (t : t) ~(messages : int) ~(trials : int) : float =
  let counts = Array.make messages 0 in
  for _ = 1 to trials do
    let final = simulate rng t ~messages in
    counts.(final.(0)) <- counts.(final.(0)) + 1
  done;
  Atom_util.Stats.tv_distance_uniform counts
