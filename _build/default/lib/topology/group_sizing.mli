(** Anytrust / many-trust group sizing (§4.1, Appendix B, Figure 13).

    Computes, in log space, the binomial-tail probability that a group of k
    servers sampled from a population with adversarial fraction f contains
    fewer than h honest members, and inverts it for the smallest safe k. *)

val log2_group_failure : k:int -> h:int -> f:float -> float
(** log₂ Pr[fewer than h honest servers among k]. *)

val required_group_size :
  ?union_bound:bool -> f:float -> groups:int -> h:int -> security_bits:int -> unit -> int
(** Smallest k with failure probability below 2^-security_bits;
    [union_bound] (default true) multiplies by the number of groups. *)

val paper_config : h:int -> int
(** f = 0.2, G = 1024, 2⁻⁶⁴ — the paper's evaluation setting (Figure 13). *)

val paper_heuristic : h:int -> int
(** The §4.5 example's rule k(h) = k(1) + h − 1 (yields 33 for h = 2). *)

val log_sum_exp : float list -> float
val log_choose : int -> int -> float
