lib/elgamal/elgamal.mli: Atom_group Atom_util
