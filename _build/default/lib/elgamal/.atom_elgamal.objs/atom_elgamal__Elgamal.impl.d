lib/elgamal/elgamal.ml: Array Atom_cipher Atom_group Atom_hash Atom_util Char List Option String
