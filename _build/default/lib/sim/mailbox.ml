(* Typed mailboxes for inter-process messages.

   [recv] blocks (suspends the calling process) until a message is
   available; [send] enqueues and wakes one waiting receiver. Wake-ups go
   through the engine's event queue so message delivery order remains
   deterministic. *)

type 'a t = {
  engine : Engine.t;
  q : 'a Queue.t;
  waiters : (unit -> unit) Queue.t;
  name : string;
}

let create ?(name = "mailbox") (engine : Engine.t) : 'a t =
  { engine; q = Queue.create (); waiters = Queue.create (); name }

let length (m : 'a t) : int = Queue.length m.q

let send (m : 'a t) (v : 'a) : unit =
  Queue.push v m.q;
  if not (Queue.is_empty m.waiters) then begin
    let wake = Queue.pop m.waiters in
    Engine.schedule m.engine ~delay:0. wake
  end

let recv (m : 'a t) : 'a =
  let rec go () =
    match Queue.take_opt m.q with
    | Some v -> v
    | None ->
        Engine.suspend (fun wake -> Queue.push wake m.waiters);
        go ()
  in
  go ()

(* Receive exactly [n] messages. *)
let recv_n (m : 'a t) (n : int) : 'a list = List.init n (fun _ -> recv m)

let try_recv (m : 'a t) : 'a option = Queue.take_opt m.q
