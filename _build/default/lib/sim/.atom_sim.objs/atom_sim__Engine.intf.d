lib/sim/engine.mli:
