lib/sim/machine.mli: Atom_util Engine Multi_resource Resource
