lib/sim/machine.ml: Atom_util Engine Multi_resource Resource
