lib/sim/net.mli: Engine Hashtbl Machine Mailbox
