lib/sim/multi_resource.mli: Engine
