lib/sim/multi_resource.ml: Engine Queue
