lib/sim/net.ml: Atom_util Engine Float Hashtbl Machine Mailbox Printf Resource
