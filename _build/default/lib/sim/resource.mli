(** FIFO-fair exclusive resource (mutex with queueing).

    Models physical occupancy: a CPU running one group's shuffle, a NIC
    serializing bytes. Ownership is handed to the next waiter directly on
    release, so arrival order is service order. *)

type t

val create : Engine.t -> t

val acquire : t -> unit
(** Blocking; must run inside a process. *)

val release : t -> unit
(** @raise Invalid_argument if not held. *)

val with_resource : t -> (unit -> 'a) -> 'a
(** Acquire/release around [f], exception-safe. *)

val utilization : t -> total_time:float -> float
(** Fraction of [total_time] the resource was held. *)
