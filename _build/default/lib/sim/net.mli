(** Network model: clustered pairwise latency (40 ms intra, 80–160 ms
    inter, as injected by the paper with tc — Figure 8), bandwidth-limited
    transfers serialized on the sender's NIC, and per-directed-pair TLS
    connection setup (one RTT + a CPU charge on first use). *)

type t = {
  engine : Engine.t;
  intra_latency : float;
  inter_min : float;
  inter_max : float;
  tls_cpu : float;
  established : (int * int, unit) Hashtbl.t;
  mutable connections_opened : int;
  mutable bytes_sent : float;
}

val default_tls_cpu : float

val create :
  ?intra_latency:float ->
  ?inter_min:float ->
  ?inter_max:float ->
  ?tls_cpu:float ->
  Engine.t ->
  t

val latency : t -> Machine.t -> Machine.t -> float
(** One-way propagation latency; deterministic and symmetric per cluster
    pair. *)

val transfer_time : Machine.t -> Machine.t -> bytes:float -> float
(** Serialization time at min(sender, receiver) bandwidth. *)

val ensure_connection : t -> Machine.t -> Machine.t -> unit
(** Charge the TLS handshake on first use of a directed pair. Must run
    inside a process. *)

val send : t -> src:Machine.t -> dst:Machine.t -> bytes:float -> 'a Mailbox.t -> 'a -> unit
(** Blocking send (back-pressure on the sender's NIC); delivery is
    scheduled after propagation. Messages to dead machines are dropped
    (fail-stop). Must run inside a process. *)

val send_async : t -> src:Machine.t -> dst:Machine.t -> bytes:float -> 'a Mailbox.t -> 'a -> unit
(** Fire-and-forget wrapper usable outside a process. *)
