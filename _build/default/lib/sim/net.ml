(* Network model.

   The paper injects 40–160 ms pairwise latencies with tc and groups servers
   into latency clusters (Figure 8): links within a cluster take 40 ms,
   links across clusters 80–160 ms. We reproduce that: pairwise latency is a
   deterministic function of the endpoints' clusters (hashed so each cluster
   pair gets a stable value in the range), transfers are serialized on the
   sender's NIC at min(sender, receiver) bandwidth, and the first use of a
   directed pair pays a connection-setup cost (TLS handshake: one round trip
   plus a fixed CPU charge) — the overhead that makes Figure 11's trustee
   group sub-linear at huge scale. *)

type t = {
  engine : Engine.t;
  intra_latency : float;
  inter_min : float;
  inter_max : float;
  tls_cpu : float; (* handshake compute cost, seconds *)
  established : (int * int, unit) Hashtbl.t;
  mutable connections_opened : int;
  mutable bytes_sent : float;
}

let default_tls_cpu = 0.001

let create ?(intra_latency = 0.040) ?(inter_min = 0.080) ?(inter_max = 0.160)
    ?(tls_cpu = default_tls_cpu) (engine : Engine.t) : t =
  {
    engine;
    intra_latency;
    inter_min;
    inter_max;
    tls_cpu;
    established = Hashtbl.create 4096;
    connections_opened = 0;
    bytes_sent = 0.;
  }

(* One-way propagation latency between two machines. *)
let latency (net : t) (src : Machine.t) (dst : Machine.t) : float =
  if src.Machine.cluster = dst.Machine.cluster then net.intra_latency
  else begin
    let key =
      Printf.sprintf "lat:%d:%d"
        (min src.Machine.cluster dst.Machine.cluster)
        (max src.Machine.cluster dst.Machine.cluster)
    in
    let h = Atom_util.Rng.hash_string key in
    let frac = float_of_int (h land 0xffff) /. 65536. in
    net.inter_min +. (frac *. (net.inter_max -. net.inter_min))
  end

let transfer_time (src : Machine.t) (dst : Machine.t) ~(bytes : float) : float =
  bytes /. Float.min src.Machine.bandwidth dst.Machine.bandwidth

(* Ensure a connection exists; charges the sender for the handshake on first
   use. Must run inside a process. *)
let ensure_connection (net : t) (src : Machine.t) (dst : Machine.t) : unit =
  let key = (src.Machine.id, dst.Machine.id) in
  if not (Hashtbl.mem net.established key) then begin
    Hashtbl.add net.established key ();
    net.connections_opened <- net.connections_opened + 1;
    Machine.compute net.engine src ~serial:net.tls_cpu ~parallel:0.;
    Engine.sleep net.engine (2. *. latency net src dst)
  end

(* Send [bytes] from [src] to [dst], delivering [msg] into [mailbox] after
   serialization + propagation. Blocks the caller for the NIC serialization
   time (back-pressure); propagation happens asynchronously. *)
let send (net : t) ~(src : Machine.t) ~(dst : Machine.t) ~(bytes : float) (mailbox : 'a Mailbox.t)
    (msg : 'a) : unit =
  if not dst.Machine.alive then () (* dropped on the floor: fail-stop *)
  else begin
    ensure_connection net src dst;
    let tx = transfer_time src dst ~bytes in
    Resource.with_resource src.Machine.nic (fun () -> Engine.sleep net.engine tx);
    net.bytes_sent <- net.bytes_sent +. bytes;
    let lat = latency net src dst in
    Engine.schedule net.engine ~delay:lat (fun () -> Mailbox.send mailbox msg)
  end

(* Fire-and-forget variant usable from outside a process context. *)
let send_async (net : t) ~(src : Machine.t) ~(dst : Machine.t) ~(bytes : float)
    (mailbox : 'a Mailbox.t) (msg : 'a) : unit =
  Engine.spawn net.engine (fun () -> send net ~src ~dst ~bytes mailbox msg)
