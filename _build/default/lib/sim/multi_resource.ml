(* A counting semaphore: a resource with [capacity] identical slots.

   Models a multi-core machine serving several anytrust-group pipelines at
   once (§4.7): each single-threaded job occupies one core-slot; when all
   cores are busy, jobs queue FIFO. *)

type t = {
  engine : Engine.t;
  capacity : int;
  mutable in_use : int;
  waiters : (unit -> unit) Queue.t;
  mutable total_core_time : float;
}

let create (engine : Engine.t) ~(capacity : int) : t =
  if capacity < 1 then invalid_arg "Multi_resource.create: capacity must be >= 1";
  { engine; capacity; in_use = 0; waiters = Queue.create (); total_core_time = 0. }

let acquire (r : t) : unit =
  if r.in_use < r.capacity then r.in_use <- r.in_use + 1
  else begin
    Engine.suspend (fun wake -> Queue.push wake r.waiters)
    (* Ownership of a slot is transferred directly by [release]. *)
  end

let release (r : t) : unit =
  if r.in_use <= 0 then invalid_arg "Multi_resource.release: nothing held";
  match Queue.take_opt r.waiters with
  | Some wake -> Engine.schedule r.engine ~delay:0. wake (* slot handed over; in_use unchanged *)
  | None -> r.in_use <- r.in_use - 1

let with_slot (r : t) (f : unit -> 'a) : 'a =
  acquire r;
  match f () with
  | v ->
      release r;
      v
  | exception e ->
      release r;
      raise e

(* Run a single-core job of [seconds]; blocks until a slot frees up. *)
let job (r : t) (seconds : float) : unit =
  if seconds > 0. then
    with_slot r (fun () ->
        r.total_core_time <- r.total_core_time +. seconds;
        Engine.sleep r.engine seconds)
