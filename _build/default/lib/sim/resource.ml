(* A FIFO-fair exclusive resource.

   Used to model physical occupancy: a server staggered across many anytrust
   groups (§4.7) is still one machine — while it shuffles for one group its
   CPU is unavailable to the others, and a NIC serializes outgoing bytes.
   [with_resource] gives the critical-section discipline. *)

type t = {
  engine : Engine.t;
  mutable busy : bool;
  waiters : (unit -> unit) Queue.t;
  mutable total_busy_time : float;
  mutable acquired_at : float;
}

let create (engine : Engine.t) : t =
  { engine; busy = false; waiters = Queue.create (); total_busy_time = 0.; acquired_at = 0. }

let acquire (r : t) : unit =
  if r.busy then begin
    Engine.suspend (fun wake -> Queue.push wake r.waiters);
    (* Woken by release: ownership is transferred directly (busy stays set),
       which preserves FIFO fairness. *)
    assert r.busy
  end
  else r.busy <- true;
  r.acquired_at <- Engine.now r.engine

let release (r : t) : unit =
  if not r.busy then invalid_arg "Resource.release: not held";
  r.total_busy_time <- r.total_busy_time +. (Engine.now r.engine -. r.acquired_at);
  match Queue.take_opt r.waiters with
  | Some wake ->
      (* Hand over directly; the resource never becomes observably free. *)
      Engine.schedule r.engine ~delay:0. wake
  | None -> r.busy <- false

let with_resource (r : t) (f : unit -> 'a) : 'a =
  acquire r;
  match f () with
  | v ->
      release r;
      v
  | exception e ->
      release r;
      raise e

let utilization (r : t) ~(total_time : float) : float =
  if total_time <= 0. then 0. else r.total_busy_time /. total_time
