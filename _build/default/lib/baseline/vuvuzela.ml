(* Vuvuzela [72] and Alpenhorn [50] baselines for Table 12 (dialing).

   Centralized anytrust chains of three 36-core servers; both dial one
   million users in about 0.5 min in their published configurations. Their
   cost is linear in the user count (hybrid crypto, fixed server set), and
   their per-server bandwidth is ~166 MB/s versus Atom's <1 MB/s (§6.2). *)

let published_latency_min = 0.5
let published_users = 1_000_000.
let server_bandwidth_bytes = 166e6

let dial_latency_minutes ~(users : int) : float =
  published_latency_min *. (float_of_int users /. published_users)

let scales_horizontally = false

(* Tamper exposure (§6.2): a malicious Vuvuzela/Alpenhorn server can drop
   all but one honest user's messages — the survivors keep only the
   differential-privacy guarantee, not anonymity among all honest users.
   Atom's trap/NIZK defences bound dropping instead. *)
let malicious_server_can_drop_all_but_one = true
