(** Two-server distributed point function (√n construction, Gilboa–Ishai),
    the primitive under the Riposte baseline [22].

    The XOR of the two servers' expanded tables is zero everywhere except
    the secret cell, which holds the written message; a single share reveals
    nothing. Key size is O(√n); each write costs each server Θ(n) PRG
    expansion — the quadratic round cost Table 12 contrasts with Atom. *)

type key

val seed_bytes : int
val prg : seed:string -> len:int -> string
val xor_strings : string -> string -> string

val gen :
  Atom_util.Rng.t ->
  rows:int ->
  cols:int ->
  cell_bytes:int ->
  row:int ->
  col:int ->
  string ->
  key * key
(** Keys for writing a message at the secret (row, col).
    @raise Invalid_argument on out-of-range cell or oversized message. *)

val expand : key -> Bytes.t
(** One server's table share (rows × cols × cell_bytes). *)

type server

val server : rows:int -> cols:int -> cell_bytes:int -> server
val apply_write : server -> key -> unit
val combine : server -> server -> string array array
(** XOR the two accumulators to reveal the written table. *)

val key_bytes : key -> int
