(* Two-server distributed point function, √n construction (Gilboa–Ishai,
   as used by Riposte [22]).

   A writer wants to add message m at a secret cell (row i, col j) of an
   r×c table replicated at two non-colluding servers, revealing the cell to
   neither. Each key holds one PRG seed and one flag bit per row plus one
   shared correction word; a row's expansion is
       PRG(seed) ⊕ (flag · cw).
   For every row except i the two servers' seeds and flags agree, so their
   expansions cancel; at row i the seeds differ and exactly one flag is
   set, leaving  PRG(sA) ⊕ PRG(sB) ⊕ cw = e_j·m.  Key size is O(√n).

   This is the executable core of the Riposte baseline: every write makes
   *each server* expand the whole table — Θ(n) work per write, Θ(M·n)
   per round, the quadratic cost Table 12 contrasts with Atom. *)

let seed_bytes = 32

let prg ~(seed : string) ~(len : int) : string =
  (* ChaCha20 keystream as the PRG. *)
  Atom_cipher.Chacha20.xor ~key:seed ~nonce:(String.make 12 '\000') ~counter:0
    (String.make len '\000')

let xor_strings (a : string) (b : string) : string =
  if String.length a <> String.length b then invalid_arg "Dpf.xor_strings: length mismatch";
  String.init (String.length a) (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

type key = {
  rows : int;
  cols : int;
  cell_bytes : int;
  seeds : string array; (* one per row *)
  flags : bool array; (* one per row *)
  cw : string; (* correction word, cols × cell_bytes *)
}

(* Generate the two keys for writing [msg] at (row, col). *)
let gen (rng : Atom_util.Rng.t) ~(rows : int) ~(cols : int) ~(cell_bytes : int) ~(row : int)
    ~(col : int) (msg : string) : key * key =
  if row < 0 || row >= rows || col < 0 || col >= cols then invalid_arg "Dpf.gen: cell out of range";
  if String.length msg > cell_bytes then invalid_arg "Dpf.gen: message too large";
  let msg = msg ^ String.make (cell_bytes - String.length msg) '\000' in
  let row_len = cols * cell_bytes in
  let seeds_a = Array.init rows (fun _ -> Atom_util.Rng.bytes rng seed_bytes) in
  let seeds_b = Array.mapi (fun r s -> if r = row then Atom_util.Rng.bytes rng seed_bytes else s) seeds_a in
  let flags_a = Array.init rows (fun _ -> Atom_util.Rng.bool rng) in
  let flags_b = Array.mapi (fun r f -> if r = row then not f else f) flags_a in
  (* cw = PRG(sA[i]) ⊕ PRG(sB[i]) ⊕ e_col·msg *)
  let target = Bytes.make row_len '\000' in
  Bytes.blit_string msg 0 target (col * cell_bytes) cell_bytes;
  let cw =
    xor_strings
      (xor_strings (prg ~seed:seeds_a.(row) ~len:row_len) (prg ~seed:seeds_b.(row) ~len:row_len))
      (Bytes.to_string target)
  in
  ( { rows; cols; cell_bytes; seeds = seeds_a; flags = flags_a; cw },
    { rows; cols; cell_bytes; seeds = seeds_b; flags = flags_b; cw } )

(* Expand a key into a full table share (rows × cols × cell_bytes). *)
let expand (k : key) : Bytes.t =
  let row_len = k.cols * k.cell_bytes in
  let out = Bytes.create (k.rows * row_len) in
  for r = 0 to k.rows - 1 do
    let base = prg ~seed:k.seeds.(r) ~len:row_len in
    let line = if k.flags.(r) then xor_strings base k.cw else base in
    Bytes.blit_string line 0 out (r * row_len) row_len
  done;
  out

(* A server's table accumulator. *)
type server = { mutable table : Bytes.t; rows : int; cols : int; cell_bytes : int }

let server ~(rows : int) ~(cols : int) ~(cell_bytes : int) : server =
  { table = Bytes.make (rows * cols * cell_bytes) '\000'; rows; cols; cell_bytes }

let apply_write (s : server) (k : key) : unit =
  if (k.rows, k.cols, k.cell_bytes) <> (s.rows, s.cols, s.cell_bytes) then
    invalid_arg "Dpf.apply_write: shape mismatch";
  let share = expand k in
  for i = 0 to Bytes.length s.table - 1 do
    Bytes.set s.table i
      (Char.chr (Char.code (Bytes.get s.table i) lxor Char.code (Bytes.get share i)))
  done

(* Combine the two servers' tables to reveal the written plaintexts. *)
let combine (a : server) (b : server) : string array array =
  let table = xor_strings (Bytes.to_string a.table) (Bytes.to_string b.table) in
  Array.init a.rows (fun r ->
      Array.init a.cols (fun c ->
          String.sub table (((r * a.cols) + c) * a.cell_bytes) a.cell_bytes))

let key_bytes (k : key) : int =
  (Array.length k.seeds * seed_bytes) + Array.length k.flags + String.length k.cw
