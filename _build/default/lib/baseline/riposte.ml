(* Riposte baseline [22] for Table 12.

   Two faces:
   - [run_toy]: an executable miniature — M writers produce DPF keys, the
     two servers expand and accumulate them, and the combined table yields
     the anonymized messages. Exercises the real quadratic server cost on
     small instances.
   - [latency_minutes]: the analytic model used in the comparison table,
     calibrated to the published figure the paper compares against (three
     36-core servers handling one million 160-byte messages in 669.2 min).
     Server work per write is Θ(table size) and the table holds Θ(M) cells,
     so a round is Θ(M²). *)

type toy_result = {
  delivered : string list;
  server_bytes_processed : int; (* per server: M × table bytes *)
  key_bytes_per_write : int;
}

let run_toy (rng : Atom_util.Rng.t) ?(headroom = 4) ~(messages : string list)
    ~(cell_bytes : int) () : toy_result =
  let m = List.length messages in
  (* Table sized [headroom]x the write count; the real Riposte sizes the
     table O(M) and handles residual birthday collisions with retries. *)
  let cells = max 4 (headroom * m) in
  let rows = int_of_float (Float.ceil (sqrt (float_of_int cells))) in
  let cols = rows in
  let a = Dpf.server ~rows ~cols ~cell_bytes in
  let b = Dpf.server ~rows ~cols ~cell_bytes in
  let key_bytes = ref 0 in
  List.iter
    (fun msg ->
      let row = Atom_util.Rng.int_below rng rows and col = Atom_util.Rng.int_below rng cols in
      let ka, kb = Dpf.gen rng ~rows ~cols ~cell_bytes ~row ~col msg in
      key_bytes := Dpf.key_bytes ka;
      Dpf.apply_write a ka;
      Dpf.apply_write b kb)
    messages;
  let table = Dpf.combine a b in
  let delivered =
    Array.to_list table |> List.concat_map Array.to_list
    |> List.filter_map (fun cell ->
           let trimmed =
             let n = ref (String.length cell) in
             while !n > 0 && cell.[!n - 1] = '\000' do
               decr n
             done;
             String.sub cell 0 !n
           in
           if trimmed = "" then None else Some trimmed)
  in
  {
    delivered;
    server_bytes_processed = m * rows * cols * cell_bytes;
    key_bytes_per_write = !key_bytes;
  }

(* Published configuration: 3 × c4.8xlarge, one million messages in
   669.2 minutes. Quadratic in the message count. *)
let published_latency_min = 669.2
let published_messages = 1_000_000.

let latency_minutes ~(messages : int) : float =
  let ratio = float_of_int messages /. published_messages in
  published_latency_min *. ratio *. ratio

(* Why Riposte cannot scale horizontally (§6.2): replacing each logical
   server with a cluster leaves the anytrust assumption at one compromised
   machine per cluster. *)
let scales_horizontally = false
