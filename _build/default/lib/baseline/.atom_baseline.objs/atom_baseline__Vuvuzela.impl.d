lib/baseline/vuvuzela.ml:
