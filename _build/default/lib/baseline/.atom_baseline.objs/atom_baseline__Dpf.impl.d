lib/baseline/dpf.ml: Array Atom_cipher Atom_util Bytes Char String
