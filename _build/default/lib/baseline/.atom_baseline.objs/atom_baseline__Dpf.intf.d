lib/baseline/dpf.mli: Atom_util Bytes
