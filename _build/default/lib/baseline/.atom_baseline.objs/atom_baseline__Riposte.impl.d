lib/baseline/riposte.ml: Array Atom_util Dpf Float List String
