lib/core/calibration.ml: Array Atom_elgamal Atom_group Atom_hash Atom_util Atom_zkp Format Option Printf String Unix
