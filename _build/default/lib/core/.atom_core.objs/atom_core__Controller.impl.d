lib/core/controller.ml: Config List
