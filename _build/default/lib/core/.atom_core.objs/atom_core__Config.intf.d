lib/core/config.mli: Atom_topology
