lib/core/bulletin.mli:
