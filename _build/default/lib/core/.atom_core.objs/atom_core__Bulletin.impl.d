lib/core/bulletin.ml: List
