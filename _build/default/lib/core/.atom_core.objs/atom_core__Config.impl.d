lib/core/config.ml: Atom_topology Float
