lib/core/controller.mli: Config
