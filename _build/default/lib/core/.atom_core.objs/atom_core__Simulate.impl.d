lib/core/simulate.ml: Array Atom_sim Atom_topology Atom_util Beacon Calibration Config Engine Group_formation List Machine Mailbox Net Resource
