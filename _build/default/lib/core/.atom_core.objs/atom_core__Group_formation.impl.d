lib/core/group_formation.ml: Array Atom_util Beacon Fun
