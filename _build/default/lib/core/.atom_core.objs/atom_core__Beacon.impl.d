lib/core/beacon.ml: Atom_util Printf
