lib/core/dialing.ml: Array Atom_hash Atom_util Char Float List String
