lib/core/group_formation.mli: Atom_util Beacon
