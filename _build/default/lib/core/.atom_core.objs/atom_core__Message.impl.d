lib/core/message.ml: Array Atom_group Atom_hash Bytes Char Option String
