lib/core/dialing.mli: Atom_util
