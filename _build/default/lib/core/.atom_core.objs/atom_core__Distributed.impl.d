lib/core/distributed.ml: Array Atom_group Atom_sim Atom_topology Atom_util Config Engine Hashtbl List Machine Mailbox Net Option Protocol Unix
