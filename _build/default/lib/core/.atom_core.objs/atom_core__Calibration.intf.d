lib/core/calibration.mli: Atom_group Format
