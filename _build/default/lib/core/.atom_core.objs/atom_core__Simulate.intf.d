lib/core/simulate.mli: Calibration Config
