lib/core/cost_model.ml: Calibration
