lib/core/beacon.mli: Atom_util
