(* Public randomness beacon (§4.1).

   Atom assumes an unbiased public randomness source [14, 68] so that
   anytrust groups are sampled verifiably at random each round. We model it
   as a seeded PRG: everyone derives the same per-round stream from
   (system seed, round number), which preserves the only property the
   protocol uses — public, unbiased, per-round-fresh randomness — while
   keeping every experiment reproducible. *)

type t = { seed : int }

let create ~(seed : int) : t = { seed }

let round_rng (b : t) ~(round : int) ~(purpose : string) : Atom_util.Rng.t =
  Atom_util.Rng.create_string (Printf.sprintf "beacon:%d:%d:%s" b.seed round purpose)
