(** Public bulletin board — the microblogging application (§5). *)

type t

val create : unit -> t
val publish_round : t -> round:int -> string list -> unit
val read_round : t -> round:int -> string list
val read_all : t -> (int * string) list
val size : t -> int
