(* Public bulletin board — the microblogging application (§5).

   The exit servers of a successful round post the anonymized plaintexts;
   readers fetch by round. The board is untrusted for anonymity (everything
   on it is already anonymized) and trivially shardable, so it is plain
   state here. *)

type post = { round : int; body : string }
type t = { mutable posts : post list (* chronological *) }

let create () : t = { posts = [] }

let publish_round (t : t) ~(round : int) (messages : string list) : unit =
  t.posts <- t.posts @ List.map (fun body -> { round; body }) messages

let read_round (t : t) ~(round : int) : string list =
  List.filter_map (fun p -> if p.round = round then Some p.body else None) t.posts

let read_all (t : t) : (int * string) list = List.map (fun p -> (p.round, p.body)) t.posts

let size (t : t) : int = List.length t.posts
