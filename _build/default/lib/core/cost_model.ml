(* Deployment cost estimates (§7).

   Rate-matching argument: a server's bandwidth need is bounded by the rate
   at which its CPU can push messages through ReEnc/Shuffle, times the wire
   size of a message. Dollar figures use the paper's September-2017 AWS
   prices; they are parameters, not constants of nature. *)

type aws_prices = {
  four_core_month : float;
  thirty_six_core_month : float;
  egress_per_gb : float;
}

let paper_prices : aws_prices =
  { four_core_month = 146.; thirty_six_core_month = 1165.; egress_per_gb = 0.009 }

(* Messages per second one core sustains for each operation. *)
let reenc_rate (cal : Calibration.t) : float = 1. /. cal.Calibration.reenc
let shuffle_rate (cal : Calibration.t) : float = 1. /. cal.Calibration.shuffle_per_msg

(* Upper-bound bandwidth (bytes/second) to rate-match the compute, for
   32-byte messages. *)
let rate_match_bandwidth (cal : Calibration.t) ~(msg_bytes : int) : float * float =
  let b = float_of_int msg_bytes in
  (reenc_rate cal *. b, shuffle_rate cal *. b)

let seconds_per_month = 30.44 *. 24. *. 3600.

(* Monthly egress cost at a constant send rate. *)
let bandwidth_cost_month (prices : aws_prices) ~(bytes_per_second : float) : float =
  bytes_per_second *. seconds_per_month /. 1e9 *. prices.egress_per_gb

type estimate = {
  compute_month : float;
  bandwidth_month : float;
  reenc_msgs_per_sec : float;
  shuffle_msgs_per_sec : float;
  bandwidth_bytes_per_sec : float;
}

let server_estimate ?(prices = paper_prices) ?(cal = Calibration.paper) ~(cores : int) () :
    estimate =
  let _, shuffle_bw = rate_match_bandwidth cal ~msg_bytes:32 in
  (* The bound scales linearly with cores (§7). *)
  let scale = float_of_int cores /. 4. in
  let bw = shuffle_bw *. scale in
  {
    compute_month =
      (if cores <= 4 then prices.four_core_month
       else prices.four_core_month *. scale (* interpolate; 36-core matches the quote *));
    bandwidth_month = bandwidth_cost_month prices ~bytes_per_second:bw;
    reenc_msgs_per_sec = reenc_rate cal *. scale;
    shuffle_msgs_per_sec = shuffle_rate cal *. scale;
    bandwidth_bytes_per_sec = bw;
  }
