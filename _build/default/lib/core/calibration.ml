(* Per-primitive cost tables.

   The modeled simulator charges virtual CPU time per cryptographic
   operation. Two sources:

   - [paper]: the constants of Table 3 (measured by the authors on EC2
     c4.xlarge with Go + P-256 assembly). Using these makes the reproduced
     figures directly comparable with the paper's.
   - [measure]: re-measured on this host with this repo's pure-OCaml
     backends; slower in absolute terms, same shape.

   All costs are seconds per 32-byte message block (one group element); a
   W-block message costs W times as much, matching "the latency increases
   linearly with the message size" (§6.1). *)

type t = {
  name : string;
  enc : float;
  reenc : float;
  shuffle_per_msg : float;
  encproof_prove : float;
  encproof_verify : float;
  reencproof_prove : float;
  reencproof_verify : float;
  shufproof_prove_per_msg : float;
  shufproof_verify_per_msg : float;
  kem_open : float; (* decrypt one inner ciphertext at the exit *)
  commit_check : float; (* hash commitment verification *)
}

(* Table 3 (32-byte messages; Shuffle/ShufProof amortized over 1,024). *)
let paper : t =
  {
    name = "paper-table3";
    enc = 1.40e-4;
    reenc = 3.35e-4;
    shuffle_per_msg = 0.107 /. 1024.;
    encproof_prove = 1.62e-4;
    encproof_verify = 1.39e-4;
    reencproof_prove = 6.55e-4;
    reencproof_verify = 4.46e-4;
    shufproof_prove_per_msg = 0.757 /. 1024.;
    shufproof_verify_per_msg = 1.41 /. 1024.;
    kem_open = 2.0e-4;
    commit_check = 1.0e-6;
  }

let scale (c : t) (factor : float) : t =
  {
    c with
    name = Printf.sprintf "%s-x%.2f" c.name factor;
    enc = c.enc *. factor;
    reenc = c.reenc *. factor;
    shuffle_per_msg = c.shuffle_per_msg *. factor;
    encproof_prove = c.encproof_prove *. factor;
    encproof_verify = c.encproof_verify *. factor;
    reencproof_prove = c.reencproof_prove *. factor;
    reencproof_verify = c.reencproof_verify *. factor;
    shufproof_prove_per_msg = c.shufproof_prove_per_msg *. factor;
    shufproof_verify_per_msg = c.shufproof_verify_per_msg *. factor;
    kem_open = c.kem_open *. factor;
  }

let time_it ?(reps = 10) (f : unit -> unit) : float =
  (* warm-up *)
  f ();
  let start = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  (Unix.gettimeofday () -. start) /. float_of_int reps

(* Re-measure Table 3 on this host with a given group backend. *)
let measure (module G : Atom_group.Group_intf.GROUP) ?(shuffle_batch = 256) () : t =
  let module El = Atom_elgamal.Elgamal.Make (G) in
  let module P = Atom_zkp.Proofs.Make (G) (El) in
  let module Shuf = Atom_zkp.Shuffle_proof.Make (G) (El) in
  let rng = Atom_util.Rng.create 0xca11b in
  let kp = El.keygen rng in
  let next = El.keygen rng in
  let m = G.random rng in
  let ct, randomness = El.enc rng kp.El.pk m in
  let enc = time_it (fun () -> ignore (El.enc rng kp.El.pk m)) in
  let reenc =
    time_it (fun () -> ignore (El.reenc rng ~share:kp.El.sk ~next_pk:(Some next.El.pk) ct))
  in
  let batch = Array.init shuffle_batch (fun _ -> [| fst (El.enc rng kp.El.pk m) |]) in
  let shuffle_total = time_it ~reps:3 (fun () -> ignore (El.shuffle_vec rng kp.El.pk batch)) in
  let encproof_prove =
    time_it (fun () -> ignore (P.Enc_proof.prove rng ~pk:kp.El.pk ~context:"c" ct ~randomness))
  in
  let pi = P.Enc_proof.prove rng ~pk:kp.El.pk ~context:"c" ct ~randomness in
  let encproof_verify =
    time_it (fun () -> ignore (P.Enc_proof.verify ~pk:kp.El.pk ~context:"c" ct pi))
  in
  let reencproof_prove =
    time_it (fun () ->
        ignore
          (P.Reenc_proof.reenc_with_proof rng ~share:kp.El.sk ~next_pk:(Some next.El.pk)
             ~context:"c" ct))
  in
  let out, rpi =
    P.Reenc_proof.reenc_with_proof rng ~share:kp.El.sk ~next_pk:(Some next.El.pk) ~context:"c" ct
  in
  let reencproof_verify =
    time_it (fun () ->
        ignore
          (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk:(Some next.El.pk) ~context:"c" ~input:ct
             ~output:out rpi))
  in
  let shuffled, witness = Option.get (El.shuffle_vec rng kp.El.pk batch) in
  let shufproof_prove_total =
    time_it ~reps:2 (fun () ->
        ignore (Shuf.prove rng ~pk:kp.El.pk ~context:"c" ~input:batch ~output:shuffled ~witness))
  in
  let spi = Shuf.prove rng ~pk:kp.El.pk ~context:"c" ~input:batch ~output:shuffled ~witness in
  let shufproof_verify_total =
    time_it ~reps:2 (fun () ->
        ignore (Shuf.verify ~pk:kp.El.pk ~context:"c" ~input:batch ~output:shuffled spi))
  in
  let sealed = El.Kem.enc rng kp.El.pk (String.make 160 'x') in
  let kem_open = time_it (fun () -> ignore (El.Kem.dec kp.El.sk sealed)) in
  let commit_check =
    time_it ~reps:100 (fun () -> ignore (Atom_hash.Keccak.sha3_256 (String.make 48 'y')))
  in
  let n = float_of_int shuffle_batch in
  {
    name = "measured-" ^ G.name;
    enc;
    reenc;
    shuffle_per_msg = shuffle_total /. n;
    encproof_prove;
    encproof_verify;
    reencproof_prove;
    reencproof_verify;
    shufproof_prove_per_msg = shufproof_prove_total /. n;
    shufproof_verify_per_msg = shufproof_verify_total /. n;
    kem_open;
    commit_check;
  }

let pp (fmt : Format.formatter) (c : t) : unit =
  Format.fprintf fmt
    "@[<v>calibration %s (seconds):@,\
     Enc              %.3e@,\
     ReEnc            %.3e@,\
     Shuffle/msg      %.3e@,\
     EncProof         prove %.3e  verify %.3e@,\
     ReEncProof       prove %.3e  verify %.3e@,\
     ShufProof/msg    prove %.3e  verify %.3e@,\
     KEM open         %.3e@]" c.name c.enc c.reenc c.shuffle_per_msg c.encproof_prove
    c.encproof_verify c.reencproof_prove c.reencproof_verify c.shufproof_prove_per_msg
    c.shufproof_verify_per_msg c.kem_open
