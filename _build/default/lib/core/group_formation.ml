(* Anytrust / many-trust group formation (§4.1, §4.5, §4.7).

   Each round, the beacon samples [n_groups] groups of [group_size] distinct
   servers from the population. Within a group the member order is staggered
   by group id (§4.7) so a server holding position 0 in one group holds a
   later position in another, which keeps every machine busy once the
   pipeline fills.

   Each group also picks [n_buddies] buddy groups for key recovery (§4.5). *)

type group = {
  gid : int;
  members : int array; (* server ids, pipeline order after staggering *)
  buddies : int array; (* gids of buddy groups *)
}

type t = { groups : group array; memberships : int list array (* server id -> gids *) }

let form (beacon : Beacon.t) ~(round : int) ~(n_servers : int) ~(n_groups : int)
    ~(group_size : int) ?(n_buddies = 1) () : t =
  if group_size > n_servers then invalid_arg "Group_formation.form: group larger than population";
  let rng = Beacon.round_rng beacon ~round ~purpose:"groups" in
  let memberships = Array.make n_servers [] in
  let groups =
    Array.init n_groups (fun gid ->
        (* Sample [group_size] distinct servers: partial Fisher-Yates. *)
        let pool = Array.init n_servers Fun.id in
        for i = 0 to group_size - 1 do
          let j = i + Atom_util.Rng.int_below rng (n_servers - i) in
          let tmp = pool.(i) in
          pool.(i) <- pool.(j);
          pool.(j) <- tmp
        done;
        let members = Array.sub pool 0 group_size in
        (* Staggering: rotate the pipeline order by gid. *)
        let rotated =
          Array.init group_size (fun i -> members.((i + gid) mod group_size))
        in
        let buddies =
          Array.init n_buddies (fun b -> (gid + 1 + b) mod n_groups)
        in
        Array.iter (fun s -> memberships.(s) <- gid :: memberships.(s)) rotated;
        { gid; members = rotated; buddies })
  in
  { groups; memberships }

(* Sample the extra trustee group for the trap variant (§4.4). *)
let form_trustees (beacon : Beacon.t) ~(round : int) ~(n_servers : int) ~(group_size : int) :
    int array =
  let rng = Beacon.round_rng beacon ~round ~purpose:"trustees" in
  let pool = Array.init n_servers Fun.id in
  for i = 0 to group_size - 1 do
    let j = i + Atom_util.Rng.int_below rng (n_servers - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 group_size

(* Check the anytrust property for a concrete adversary set (test hook). *)
let all_groups_have_honest (t : t) ~(malicious : int -> bool) : bool =
  Array.for_all (fun g -> Array.exists (fun s -> not (malicious s)) g.members) t.groups

(* ---- Capacity-weighted assignment (§7, "Load balancing") ----

   Powerful servers can appear in more groups, raising utilization — at a
   security cost: if the adversary controls high-capacity servers, the
   probability that some group is entirely malicious grows. [form_weighted]
   samples each group's members without replacement with probability
   proportional to [weights]; [estimate_all_malicious] measures the
   resulting risk by Monte Carlo so the trade-off can be quantified
   (`ablation_loadbalance` bench). *)

let weighted_sample_distinct (rng : Atom_util.Rng.t) (weights : float array) (count : int) :
    int array =
  let n = Array.length weights in
  if count > n then invalid_arg "Group_formation.weighted_sample_distinct";
  let w = Array.copy weights in
  let total = ref (Array.fold_left ( +. ) 0. w) in
  Array.init count (fun _ ->
      let x = Atom_util.Rng.float rng *. !total in
      let acc = ref 0. and chosen = ref (-1) and i = ref 0 in
      while !chosen < 0 && !i < n do
        acc := !acc +. w.(!i);
        if x < !acc && w.(!i) > 0. then chosen := !i;
        incr i
      done;
      let c = if !chosen >= 0 then !chosen else n - 1 in
      total := !total -. w.(c);
      w.(c) <- 0.;
      c)

let form_weighted (beacon : Beacon.t) ~(round : int) ~(weights : float array)
    ~(n_groups : int) ~(group_size : int) ?(n_buddies = 1) () : t =
  let n_servers = Array.length weights in
  if group_size > n_servers then
    invalid_arg "Group_formation.form_weighted: group larger than population";
  let rng = Beacon.round_rng beacon ~round ~purpose:"groups-weighted" in
  let memberships = Array.make n_servers [] in
  let groups =
    Array.init n_groups (fun gid ->
        let members = weighted_sample_distinct rng weights group_size in
        let rotated = Array.init group_size (fun i -> members.((i + gid) mod group_size)) in
        Array.iter (fun s -> memberships.(s) <- gid :: memberships.(s)) rotated;
        { gid; members = rotated; buddies = Array.init n_buddies (fun b -> (gid + 1 + b) mod n_groups) })
  in
  { groups; memberships }

(* Monte-Carlo estimate of Pr[some group has no honest member] for a given
   formation policy. *)
let estimate_all_malicious ~(trials : int)
    ~(form : round:int -> t) ~(malicious : int -> bool) : float =
  let bad = ref 0 in
  for round = 1 to trials do
    let f = form ~round in
    if not (all_groups_have_honest f ~malicious) then incr bad
  done;
  float_of_int !bad /. float_of_int trials
