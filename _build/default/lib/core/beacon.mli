(** Public randomness beacon (§4.1).

    Stands in for an unbiased public randomness source [14, 68]: everyone
    derives the same per-round stream from (seed, round, purpose), which is
    the only property Atom's group sampling needs, and keeps experiments
    reproducible. *)

type t

val create : seed:int -> t
val round_rng : t -> round:int -> purpose:string -> Atom_util.Rng.t
