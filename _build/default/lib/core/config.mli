(** Protocol configuration (§4, §6.2). *)

type variant =
  | Basic  (** §4.2: no active-attack protection (analysis/baseline only) *)
  | Nizk  (** §4.3: verifiable shuffles + verifiable decryption *)
  | Trap  (** §4.4: trap messages + trustee group *)

type topology_kind =
  | Square of int  (** Håstad square network with T iterations *)
  | Butterfly of int  (** iterated butterfly with this many repetitions *)

type t = {
  variant : variant;
  n_servers : int;
  n_groups : int;
  group_size : int;  (** k *)
  h : int;  (** required honest servers per group; quorum = k − (h−1) *)
  f : float;  (** assumed adversarial fraction (sizing only) *)
  topology : topology_kind;
  msg_bytes : int;
  seed : int;
  mailboxes : int;  (** dialing mailbox count (§5) *)
  dummy_mu : float;  (** mean DP dummies per trustee (Vuvuzela mechanism) *)
  dummy_b : float;  (** Laplace scale of the dummy count *)
}

val quorum : t -> int
(** k − (h − 1): members needed to route a batch (§4.5). *)

val iterations : t -> int
val topology : t -> Atom_topology.Topology.t

val validate : t -> unit
(** @raise Invalid_argument on inconsistent parameters. *)

val paper_default : t
(** The §6.2 evaluation deployment: 1,024 servers, 1,024 groups of 33 with
    h = 2, square T = 10, trap variant, 160-byte messages, µ = 13,000. *)

val tiny : ?variant:variant -> ?seed:int -> unit -> t
(** A 12-server, 4-group configuration for tests and examples running real
    cryptography. *)
