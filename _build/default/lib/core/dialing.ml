(* The dialing application (§5): Alpenhorn/Vuvuzela-style call
   establishment over Atom.

   To dial, Alice sends (Bob's identifier ‖ her key material encrypted to
   Bob) through the Atom network; the exit layer drops each dial into
   mailbox id mod m; Bob downloads his whole mailbox and trial-decrypts.
   The trustee group pads every mailbox with Laplace-noised dummy dials
   (Vuvuzela's differential-privacy mechanism [72]) so mailbox sizes do not
   reveal how often a user is dialed. *)

let id_bytes = 8

(* A dial message: recipient id ‖ payload (e.g., AEAD-boxed sender key).
   The paper's simple scheme is 80 bytes total. *)
let encode ~(recipient : string) ~(payload : string) : string =
  if String.length recipient <> id_bytes then invalid_arg "Dialing.encode: id must be 8 bytes";
  recipient ^ payload

let decode (msg : string) : (string * string) option =
  if String.length msg < id_bytes then None
  else Some (String.sub msg 0 id_bytes, String.sub msg id_bytes (String.length msg - id_bytes))

(* Identifier of a user (e.g., a hash of their long-term public key). *)
let id_of_user (name : string) : string = String.sub (Atom_hash.Sha256.digest name) 0 id_bytes

let mailbox_of ~(mailboxes : int) (recipient_id : string) : int =
  (* Universal-hash style load balancing, as in §4.4's forwarding rule. *)
  let h = Atom_hash.Sha256.digest ("mailbox" ^ recipient_id) in
  let v =
    (Char.code h.[0] lsl 24) lor (Char.code h.[1] lsl 16) lor (Char.code h.[2] lsl 8)
    lor Char.code h.[3]
  in
  v mod mailboxes

type mailbox_state = { contents : string list array }

(* Sort a round's delivered dial messages into mailboxes. *)
let deliver ~(mailboxes : int) (delivered : string list) : mailbox_state =
  let contents = Array.make mailboxes [] in
  List.iter
    (fun msg ->
      match decode msg with
      | Some (rid, _) ->
          let mb = mailbox_of ~mailboxes rid in
          contents.(mb) <- msg :: contents.(mb)
      | None -> ())
    delivered;
  { contents }

let download (st : mailbox_state) ~(mailboxes : int) ~(recipient_id : string) : string list =
  let mb = mailbox_of ~mailboxes recipient_id in
  List.filter_map
    (fun msg ->
      match decode msg with
      | Some (rid, payload) when rid = recipient_id -> Some payload
      | _ -> None)
    st.contents.(mb)

(* ---- Differential-privacy dummies (Vuvuzela mechanism) ----

   Each trustee adds max(0, round(mu + Laplace(b))) dummies addressed to
   random mailboxes. Adding/removing one real dial changes a mailbox count
   by 1, so each round is (1/b)-DP per trustee; delta accounts for the
   clamping at zero. *)

let dummy_count (rng : Atom_util.Rng.t) ~(mu : float) ~(b : float) : int =
  let v = mu +. Atom_util.Rng.laplace rng ~b in
  max 0 (int_of_float (Float.round v))

let generate_dummies (rng : Atom_util.Rng.t) ~(trustees : int) ~(mu : float) ~(b : float)
    ~(mailboxes : int) ~(payload_bytes : int) : string list =
  List.concat
    (List.init trustees (fun _ ->
         let n = dummy_count rng ~mu ~b in
         List.init n (fun _ ->
             (* A dummy targets a random mailbox via a random id. *)
             let rid = Atom_util.Rng.bytes rng id_bytes in
             ignore (mailbox_of ~mailboxes rid);
             encode ~recipient:rid ~payload:(Atom_util.Rng.bytes rng payload_bytes))))

let epsilon ~(b : float) : float = 1. /. b

let delta ~(mu : float) ~(b : float) : float =
  (* P[Laplace(b) < -mu] = exp(-mu/b) / 2: the probability the clamp bites
     and the dummy count leaks. *)
  0.5 *. exp (-.mu /. b)
