(* Distributed runtime: the real-cryptography protocol executed as
   asynchronous group pipelines over the discrete-event network.

   [Protocol.Make] is the synchronous cryptographic ground truth;
   [Simulate.run] is the calibrated large-scale model. This module closes
   the loop between them: every group runs as a simulator process, batches
   of *real* ciphertexts travel between groups through latency- and
   bandwidth-modeled links, and each cryptographic operation charges the
   executing machine with its *measured* wall-clock duration. The result is
   a round whose outputs are cryptographically real and whose latency
   reflects network structure — a laptop-scale stand-in for an actual
   deployment, used by the test suite to confirm that the two engines tell
   the same story. *)

module Make
    (G : Atom_group.Group_intf.GROUP)
    (Pr : module type of Protocol.Make (G)) =
struct
  open Atom_sim
  module El = Pr.El

  type report = {
    outcome : Pr.outcome;
    latency : float; (* virtual seconds: measured compute + modeled network *)
    events : int;
    bytes_sent : float;
  }

  (* Run [f] on [machine]: the real work happens now (wall clock), and the
     machine is charged that duration in virtual time. *)
  let timed_job (m : Machine.t) (f : unit -> 'a) : 'a =
    let t0 = Unix.gettimeofday () in
    let result = f () in
    Machine.job m ~seconds:(Unix.gettimeofday () -. t0);
    result

  let unit_bytes (net : Pr.network) : float =
    float_of_int (net.Pr.width * ((2 * G.element_bytes) + 1 + G.element_bytes))

  let run ?(clusters = 4) (rng : Atom_util.Rng.t) (net : Pr.network)
      (submissions : Pr.submission list) : report =
    let cfg = net.Pr.config in
    let engine = Engine.create () in
    let simnet = Net.create engine in
    let fleet_rng = Atom_util.Rng.create cfg.Config.seed in
    let machines =
      Array.init cfg.Config.n_servers (fun id ->
          Machine.create engine ~id ~cores:(Machine.paper_cores fleet_rng)
            ~bandwidth:(Machine.paper_bandwidth fleet_rng)
            ~cluster:(Atom_util.Rng.int_below fleet_rng clusters))
    in
    let n_groups = cfg.Config.n_groups in
    let iters = net.Pr.topo.Atom_topology.Topology.iterations in
    (* Entry verification and initial holdings (synchronous prologue —
       submission arrival is not part of the measured round, matching the
       paper's "first server receives a message" start point). *)
    let seen = Hashtbl.create 256 in
    let accepted, rejected = List.partition (Pr.verify_submission net seen) submissions in
    let rejected_submissions = List.map (fun s -> s.Pr.user) rejected in
    let commitments : (int, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (s : Pr.submission) ->
        match s.Pr.commitment with
        | Some c ->
            Hashtbl.replace commitments s.Pr.entry_gid
              (c :: Option.value ~default:[] (Hashtbl.find_opt commitments s.Pr.entry_gid))
        | None -> ())
      accepted;
    let initial = Array.make n_groups [] in
    List.iter
      (fun (s : Pr.submission) ->
        Array.iter (fun u -> initial.(s.Pr.entry_gid) <- u.Pr.vec :: initial.(s.Pr.entry_gid)) s.Pr.units)
      accepted;
    (* Inter-group transport: per-group mailboxes carrying (iter, batch).
       Every group sends to every in-neighbour each iteration (possibly an
       empty batch) so receivers can count arrivals. *)
    let inboxes : (int * El.vec array) Mailbox.t array =
      Array.init n_groups (fun _ -> Mailbox.create engine)
    in
    let exit_box : (int * El.vec array) Mailbox.t = Mailbox.create engine in
    let abort_box : Pr.abort_reason Mailbox.t = Mailbox.create engine in
    let in_degree ~iter ~gid =
      (* Count groups listing [gid] among their neighbours at [iter]. *)
      let d = ref 0 in
      for g = 0 to n_groups - 1 do
        let nbrs = net.Pr.topo.Atom_topology.Topology.neighbors ~iter ~group:g in
        if Array.exists (( = ) gid) nbrs then incr d
      done;
      !d
    in
    let ub = unit_bytes net in
    Array.iter
      (fun (g : Pr.group_state) ->
        Engine.spawn engine (fun () ->
            let quorum_positions =
              match Pr.live_quorum net g with
              | Some q -> q
              | None ->
                  Mailbox.send abort_box (Pr.Group_down { gid = g.Pr.gid });
                  []
            in
            if quorum_positions <> [] then begin
              let member pos = machines.(g.Pr.members.(pos - 1)) in
              let units = ref (Array.of_list (List.rev initial.(g.Pr.gid))) in
              (try
                 for iter = 0 to iters - 1 do
                   (* Collect this layer's inputs (iteration 0 uses the
                      client submissions directly). *)
                   if iter > 0 then begin
                     let expected = in_degree ~iter:(iter - 1) ~gid:g.Pr.gid in
                     let parts = ref [] in
                     for _ = 1 to expected do
                       let rec take () =
                         let it, batch = Mailbox.recv inboxes.(g.Pr.gid) in
                         if it = iter then parts := batch :: !parts
                         else begin
                           (* A batch for a later layer raced ahead; requeue. *)
                           Mailbox.send inboxes.(g.Pr.gid) (it, batch);
                           Engine.sleep engine 1e-4;
                           take ()
                         end
                       in
                       take ()
                     done;
                     units := Array.concat !parts
                   end;
                   (* Pass 1: sequential real shuffles along the quorum. *)
                   let pk = Pr.group_pk net g.Pr.gid in
                   let prev = ref None in
                   List.iter
                     (fun pos ->
                       let m = member pos in
                       (match !prev with
                       | Some pm ->
                           Engine.sleep engine
                             (Net.latency simnet pm m
                             +. Net.transfer_time pm m
                                  ~bytes:(float_of_int (Array.length !units) *. ub))
                       | None -> ());
                       prev := Some m;
                       units :=
                         timed_job m (fun () ->
                             match El.shuffle_vec rng pk !units with
                             | Some (shuffled, _) -> shuffled
                             | None -> [||]))
                     quorum_positions;
                   (* Divide + pass 2: decrypt-and-reencrypt per batch. *)
                   let neighbors =
                     net.Pr.topo.Atom_topology.Topology.neighbors ~iter ~group:g.Pr.gid
                   in
                   let beta = Array.length neighbors in
                   let last_iter = iter = iters - 1 in
                   let batches = Array.make beta [] in
                   Array.iteri (fun i u -> batches.(i mod beta) <- u :: batches.(i mod beta)) !units;
                   let batches = Array.map (fun l -> Array.of_list (List.rev l)) batches in
                   let outgoing = Array.make beta [||] in
                   Array.iteri
                     (fun bi batch ->
                       let next_pk =
                         if last_iter then None else Some (Pr.group_pk net neighbors.(bi))
                       in
                       let current = ref batch in
                       List.iter
                         (fun pos ->
                           let m = member pos in
                           let share = g.Pr.keys.Pr.Dkg.shares.(pos - 1).Pr.Sh.value in
                           let coeff = Pr.Sh.lagrange_at_zero ~xs:quorum_positions ~i:pos in
                           current :=
                             timed_job m (fun () ->
                                 Array.map
                                   (fun v -> fst (El.reenc_vec rng ~share ~coeff ~next_pk v))
                                   !current))
                         quorum_positions;
                       outgoing.(bi) <-
                         (if last_iter then !current else Array.map El.clear_y_vec !current))
                     batches;
                   (* Forward through the last member's NIC. *)
                   let last = member (List.nth quorum_positions (List.length quorum_positions - 1)) in
                   if last_iter then
                     Mailbox.send exit_box (g.Pr.gid, Array.concat (Array.to_list outgoing))
                   else
                     Array.iteri
                       (fun bi batch ->
                         let bytes = float_of_int (Array.length batch) *. ub in
                         let dst = machines.(net.Pr.groups.(neighbors.(bi)).Pr.members.(0)) in
                         Net.send simnet ~src:last ~dst ~bytes inboxes.(neighbors.(bi))
                           (iter + 1, batch))
                       outgoing
                 done
               with e ->
                 ignore e;
                 Mailbox.send abort_box (Pr.Group_down { gid = g.Pr.gid }))
            end))
      net.Pr.groups;
    (* Collector: assemble exit holdings, run the variant's endgame. *)
    let result = ref None in
    Engine.spawn engine (fun () ->
        let holdings = Array.make n_groups [||] in
        for _ = 1 to n_groups do
          let gid, units = Mailbox.recv exit_box in
          holdings.(gid) <- units
        done;
        let exits = Pr.decode_exit net holdings in
        let outcome : Pr.outcome =
          match cfg.Config.variant with
          | Config.Basic | Config.Nizk ->
              let delivered =
                List.filter_map
                  (fun (u : Pr.exit_unit) ->
                    if u.Pr.tag = Pr.Msg.tag_message then Some (Pr.Msg.unpad_plaintext u.Pr.payload)
                    else None)
                  exits
              in
              { Pr.delivered; aborted = None; rejected_submissions; blamed = [] }
          | Config.Trap -> begin
              let reason, inner_payloads = Pr.trap_checks net ~commitments exits in
              match reason with
              | Some r ->
                  { Pr.delivered = []; aborted = Some r; rejected_submissions; blamed = [] }
              | None ->
                  let delivered = List.map Pr.Msg.unpad_plaintext (Pr.open_inners net inner_payloads) in
                  { Pr.delivered; aborted = None; rejected_submissions; blamed = [] }
            end
        in
        result := Some outcome);
    let latency = Engine.run engine in
    let outcome =
      match (!result, Mailbox.try_recv abort_box) with
      | Some o, _ -> o
      | None, Some reason ->
          { Pr.delivered = []; aborted = Some reason; rejected_submissions; blamed = [] }
      | None, None ->
          { Pr.delivered = [];
            aborted = Some (Pr.Group_down { gid = -1 });
            rejected_submissions;
            blamed = [] }
    in
    {
      outcome;
      latency;
      events = Engine.events_run engine;
      bytes_sent = simnet.Net.bytes_sent;
    }
end
