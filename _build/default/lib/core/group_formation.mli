(** Anytrust / many-trust group formation (§4.1, §4.5, §4.7).

    Groups are freshly sampled from the beacon each round; member order is
    staggered by group id so a server holds different pipeline positions in
    different groups (keeping machines busy once the network fills). Each
    group names buddy groups for key recovery. *)

type group = {
  gid : int;
  members : int array;  (** server ids in pipeline order (staggered) *)
  buddies : int array;
}

type t = { groups : group array; memberships : int list array }

val form :
  Beacon.t ->
  round:int ->
  n_servers:int ->
  n_groups:int ->
  group_size:int ->
  ?n_buddies:int ->
  unit ->
  t
(** Uniform sampling without replacement per group. *)

val form_trustees : Beacon.t -> round:int -> n_servers:int -> group_size:int -> int array
(** The extra trustee group of the trap variant (§4.4). *)

val all_groups_have_honest : t -> malicious:(int -> bool) -> bool
(** The anytrust property for a concrete adversary set. *)

val form_weighted :
  Beacon.t ->
  round:int ->
  weights:float array ->
  n_groups:int ->
  group_size:int ->
  ?n_buddies:int ->
  unit ->
  t
(** §7 load balancing: sample members with probability proportional to
    capacity weights (without replacement within a group). *)

val weighted_sample_distinct : Atom_util.Rng.t -> float array -> int -> int array

val estimate_all_malicious :
  trials:int -> form:(round:int -> t) -> malicious:(int -> bool) -> float
(** Monte-Carlo probability that some group has no honest member under a
    formation policy — quantifies the §7 security/throughput trade-off. *)
