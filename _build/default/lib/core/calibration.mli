(** Per-primitive cost tables driving the modeled simulator.

    [paper] holds the Table 3 constants (seconds per 32-byte message
    block); [measure] re-times this repo's own implementations on the
    current host. All figure benches default to [paper] so shapes are
    directly comparable with the publication. *)

type t = {
  name : string;
  enc : float;
  reenc : float;
  shuffle_per_msg : float;
  encproof_prove : float;
  encproof_verify : float;
  reencproof_prove : float;
  reencproof_verify : float;
  shufproof_prove_per_msg : float;
  shufproof_verify_per_msg : float;
  kem_open : float;
  commit_check : float;
}

val paper : t
(** Table 3 (Go + P-256 assembly on EC2 c4.xlarge). *)

val scale : t -> float -> t

val measure : (module Atom_group.Group_intf.GROUP) -> ?shuffle_batch:int -> unit -> t
(** Time every primitive with the given backend on this host. *)

val time_it : ?reps:int -> (unit -> unit) -> float
val pp : Format.formatter -> t -> unit
