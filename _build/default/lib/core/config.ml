(* Protocol configuration.

   Defaults follow the paper's large-scale evaluation (§6.2): trap variant,
   f = 20%, h = 2 (tolerate one failure), group size 33 with a 32-server
   quorum, square topology with T = 10 iterations, 160-byte microblogging
   messages. Tests and examples shrink every knob. *)

type variant =
  | Basic (* §4.2: no protection against active servers (analysis only) *)
  | Nizk (* §4.3: verifiable shuffles + verifiable decryption *)
  | Trap (* §4.4: trap messages + trustees *)

type topology_kind = Square of int (* iterations T *) | Butterfly of int (* repetitions *)

type t = {
  variant : variant;
  n_servers : int;
  n_groups : int;
  group_size : int; (* k *)
  h : int; (* required honest servers per group; quorum = k - (h-1) *)
  f : float; (* assumed adversarial fraction, for sizing only *)
  topology : topology_kind;
  msg_bytes : int;
  seed : int;
  (* Dialing (§5): mailbox count and Vuvuzela-style dummy parameters; the
     trustee group adds ~ Laplace(mu, b) dummy messages per trustee. *)
  mailboxes : int;
  dummy_mu : float;
  dummy_b : float;
}

let quorum (c : t) : int = c.group_size - (c.h - 1)

let iterations (c : t) : int =
  match c.topology with
  | Square t -> t
  | Butterfly reps ->
      let levels = max 1 (int_of_float (Float.round (Float.log2 (float_of_int c.n_groups)))) in
      levels * reps

let topology (c : t) : Atom_topology.Topology.t =
  match c.topology with
  | Square t -> Atom_topology.Topology.square ~groups:c.n_groups ~iterations:t
  | Butterfly reps -> Atom_topology.Topology.butterfly ~groups:c.n_groups ~repetitions:reps

let validate (c : t) : unit =
  if c.n_servers < 1 then invalid_arg "Config: n_servers must be >= 1";
  if c.n_groups < 1 then invalid_arg "Config: n_groups must be >= 1";
  if c.group_size < 1 || c.group_size > c.n_servers then
    invalid_arg "Config: need 1 <= group_size <= n_servers";
  if c.h < 1 || c.h > c.group_size then invalid_arg "Config: need 1 <= h <= group_size";
  if c.msg_bytes < 1 then invalid_arg "Config: msg_bytes must be positive";
  if c.mailboxes < 1 then invalid_arg "Config: mailboxes must be >= 1"

(* The paper's 1,024-server trap-variant deployment. *)
let paper_default : t =
  {
    variant = Trap;
    n_servers = 1024;
    n_groups = 1024;
    group_size = 33;
    h = 2;
    f = 0.2;
    topology = Square 10;
    msg_bytes = 160;
    seed = 1;
    mailboxes = 1 lsl 16;
    dummy_mu = 13_000.;
    dummy_b = 1_000.;
  }

(* A small configuration for tests and examples running real cryptography. *)
let tiny ?(variant = Trap) ?(seed = 42) () : t =
  {
    variant;
    n_servers = 12;
    n_groups = 4;
    group_size = 3;
    h = 1;
    f = 0.2;
    topology = Square 4;
    msg_bytes = 32;
    seed;
    mailboxes = 8;
    dummy_mu = 2.;
    dummy_b = 1.;
  }
