(** Deployment cost estimates (§7): rate-matched bandwidth bounds and
    AWS dollar figures. *)

type aws_prices = {
  four_core_month : float;
  thirty_six_core_month : float;
  egress_per_gb : float;
}

val paper_prices : aws_prices
(** September-2017 figures used by the paper. *)

val reenc_rate : Calibration.t -> float
(** Messages/second one core re-encrypts. *)

val shuffle_rate : Calibration.t -> float

val rate_match_bandwidth : Calibration.t -> msg_bytes:int -> float * float
(** (reenc-bound, shuffle-bound) bandwidth in bytes/second. *)

val seconds_per_month : float
val bandwidth_cost_month : aws_prices -> bytes_per_second:float -> float

type estimate = {
  compute_month : float;
  bandwidth_month : float;
  reenc_msgs_per_sec : float;
  shuffle_msgs_per_sec : float;
  bandwidth_bytes_per_sec : float;
}

val server_estimate : ?prices:aws_prices -> ?cal:Calibration.t -> cores:int -> unit -> estimate
