(** Dialing (§5): Alpenhorn/Vuvuzela-style call establishment over Atom —
    recipient-addressed sealed payloads, exit-layer mailboxes (id mod m),
    and Laplace-noised dummy traffic for differential privacy. *)

val id_bytes : int

val encode : recipient:string -> payload:string -> string
(** @raise Invalid_argument unless the recipient id is {!id_bytes} long. *)

val decode : string -> (string * string) option
val id_of_user : string -> string
val mailbox_of : mailboxes:int -> string -> int

type mailbox_state

val deliver : mailboxes:int -> string list -> mailbox_state
(** Sort a round's delivered dial messages into mailboxes. *)

val download : mailbox_state -> mailboxes:int -> recipient_id:string -> string list
(** The payloads addressed to [recipient_id] in its mailbox. *)

val dummy_count : Atom_util.Rng.t -> mu:float -> b:float -> int
(** max(0, round(µ + Laplace(b))) — one trustee's dummy count. *)

val generate_dummies :
  Atom_util.Rng.t ->
  trustees:int ->
  mu:float ->
  b:float ->
  mailboxes:int ->
  payload_bytes:int ->
  string list

val epsilon : b:float -> float
(** Per-round ε of the mailbox-count mechanism. *)

val delta : mu:float -> b:float -> float
(** Clamping failure probability (Laplace sample below −µ). *)
