(** Poly1305 one-time authenticator (RFC 8439). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 16-byte tag; [key] is the 32-byte one-time key
    (r ‖ s). @raise Invalid_argument on wrong key length. *)

val verify : key:string -> tag:string -> string -> bool
(** Recompute-and-compare, with a constant-shape byte comparison. *)
