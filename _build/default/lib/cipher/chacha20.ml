(* ChaCha20 stream cipher (RFC 8439).

   The successor of Salsa20, standing in for the paper's NaCl secretbox as
   the symmetric layer of the IND-CCA2 inner envelope (Appendix A). *)

let mask32 = 0xffffffff
let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let sigma = [| 0x61707865; 0x3320646e; 0x79622d32; 0x6b206574 |] (* "expand 32-byte k" *)

let le32 (s : string) (off : int) : int =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let quarter_round (st : int array) a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

(* One 64-byte keystream block for (key, nonce, counter). *)
let block ~(key : string) ~(nonce : string) ~(counter : int) : Bytes.t =
  if String.length key <> 32 then invalid_arg "Chacha20.block: key must be 32 bytes";
  if String.length nonce <> 12 then invalid_arg "Chacha20.block: nonce must be 12 bytes";
  let st = Array.make 16 0 in
  Array.blit sigma 0 st 0 4;
  for i = 0 to 7 do
    st.(4 + i) <- le32 key (4 * i)
  done;
  st.(12) <- counter land mask32;
  for i = 0 to 2 do
    st.(13 + i) <- le32 nonce (4 * i)
  done;
  let working = Array.copy st in
  for _ = 1 to 10 do
    quarter_round working 0 4 8 12;
    quarter_round working 1 5 9 13;
    quarter_round working 2 6 10 14;
    quarter_round working 3 7 11 15;
    quarter_round working 0 5 10 15;
    quarter_round working 1 6 11 12;
    quarter_round working 2 7 8 13;
    quarter_round working 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    let v = (working.(i) + st.(i)) land mask32 in
    Bytes.set out (4 * i) (Char.chr (v land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr ((v lsr 24) land 0xff))
  done;
  out

(* XOR [msg] with the keystream starting at block [counter]. Encryption and
   decryption are the same operation. *)
let xor ~(key : string) ~(nonce : string) ~(counter : int) (msg : string) : string =
  let n = String.length msg in
  let out = Bytes.create n in
  let blocks = (n + 63) / 64 in
  for b = 0 to blocks - 1 do
    let ks = block ~key ~nonce ~counter:(counter + b) in
    let len = min 64 (n - (b * 64)) in
    for i = 0 to len - 1 do
      Bytes.set out ((b * 64) + i)
        (Char.chr (Char.code msg.[(b * 64) + i] lxor Char.code (Bytes.get ks i)))
    done
  done;
  Bytes.unsafe_to_string out

let encrypt = xor
let decrypt = xor
