lib/cipher/poly1305.mli:
