lib/cipher/aead.mli:
