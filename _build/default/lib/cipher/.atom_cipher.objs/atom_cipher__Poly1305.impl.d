lib/cipher/poly1305.ml: Array Bytes Chacha20 Char String
