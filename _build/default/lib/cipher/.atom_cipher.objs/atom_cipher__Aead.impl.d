lib/cipher/aead.ml: Bytes Chacha20 Char Poly1305 String
