(* Poly1305 one-time authenticator (RFC 8439).

   Radix-2^26 implementation (five 26-bit limbs): every partial product stays
   below 2^52 and the largest accumulated sum below 2^58, comfortably inside
   OCaml's 63-bit native ints. *)

let mask26 = 0x3ffffff

(* Split a 130-bit little-endian value (17 bytes max) into 5 limbs. *)
let limbs_of_le (s : string) (off : int) (len : int) (extra_bit : bool) : int array
    =
  let v = Array.make 5 0 in
  let get i = if i < len then Char.code s.[off + i] else 0 in
  (* byte j contributes to bit 8j *)
  for j = 0 to 16 do
    let byte = if j < 17 then get j else 0 in
    let bit = 8 * j in
    let limb = bit / 26 and sh = bit mod 26 in
    if limb < 5 then begin
      v.(limb) <- v.(limb) lor ((byte lsl sh) land mask26);
      if sh > 18 && limb + 1 < 5 then v.(limb + 1) <- v.(limb + 1) lor (byte lsr (26 - sh))
    end
  done;
  if extra_bit then begin
    let bit = 8 * len in
    v.(bit / 26) <- v.(bit / 26) lor (1 lsl (bit mod 26))
  end;
  v

let mac ~(key : string) (msg : string) : string =
  if String.length key <> 32 then invalid_arg "Poly1305.mac: key must be 32 bytes";
  (* Clamp r. *)
  let r_bytes = Bytes.of_string (String.sub key 0 16) in
  let clamp i m = Bytes.set r_bytes i (Char.chr (Char.code (Bytes.get r_bytes i) land m)) in
  clamp 3 15;
  clamp 7 15;
  clamp 11 15;
  clamp 15 15;
  clamp 4 252;
  clamp 8 252;
  clamp 12 252;
  let r = limbs_of_le (Bytes.unsafe_to_string r_bytes) 0 16 false in
  let s = Array.init 4 (fun i -> Chacha20.le32 key (16 + (4 * i))) in
  let h = Array.make 5 0 in
  let n = String.length msg in
  let blocks = (n + 15) / 16 in
  for b = 0 to blocks - 1 do
    let len = min 16 (n - (b * 16)) in
    let m = limbs_of_le msg (b * 16) len true in
    (* h += m *)
    for i = 0 to 4 do
      h.(i) <- h.(i) + m.(i)
    done;
    (* h *= r  (mod 2^130 - 5) *)
    let r5 i = 5 * r.(i) in
    let d0 = (h.(0) * r.(0)) + (h.(1) * r5 4) + (h.(2) * r5 3) + (h.(3) * r5 2) + (h.(4) * r5 1) in
    let d1 = (h.(0) * r.(1)) + (h.(1) * r.(0)) + (h.(2) * r5 4) + (h.(3) * r5 3) + (h.(4) * r5 2) in
    let d2 = (h.(0) * r.(2)) + (h.(1) * r.(1)) + (h.(2) * r.(0)) + (h.(3) * r5 4) + (h.(4) * r5 3) in
    let d3 = (h.(0) * r.(3)) + (h.(1) * r.(2)) + (h.(2) * r.(1)) + (h.(3) * r.(0)) + (h.(4) * r5 4) in
    let d4 = (h.(0) * r.(4)) + (h.(1) * r.(3)) + (h.(2) * r.(2)) + (h.(3) * r.(1)) + (h.(4) * r.(0)) in
    (* carry chain *)
    let c = d0 lsr 26 in
    let h0 = d0 land mask26 in
    let d1 = d1 + c in
    let c = d1 lsr 26 in
    let h1 = d1 land mask26 in
    let d2 = d2 + c in
    let c = d2 lsr 26 in
    let h2 = d2 land mask26 in
    let d3 = d3 + c in
    let c = d3 lsr 26 in
    let h3 = d3 land mask26 in
    let d4 = d4 + c in
    let c = d4 lsr 26 in
    let h4 = d4 land mask26 in
    let h0 = h0 + (c * 5) in
    let c = h0 lsr 26 in
    let h0 = h0 land mask26 in
    let h1 = h1 + c in
    h.(0) <- h0;
    h.(1) <- h1;
    h.(2) <- h2;
    h.(3) <- h3;
    h.(4) <- h4
  done;
  (* Full carry propagation; run the wrap-around twice so every limb ends
     strictly below 2^26. *)
  for _ = 1 to 2 do
    let c = ref 0 in
    for i = 0 to 4 do
      let v = h.(i) + !c in
      h.(i) <- v land mask26;
      c := v lsr 26
    done;
    h.(0) <- h.(0) + (!c * 5)
  done;
  (* Freeze: g = h + 5 - 2^130; pick g if the addition carried past bit 130,
     i.e. h >= 2^130 - 5. *)
  let g = Array.make 5 0 in
  let add5 = [| 5; 0; 0; 0; 0 |] in
  let carry = ref 0 in
  for i = 0 to 4 do
    let v = h.(i) + add5.(i) + !carry in
    g.(i) <- v land mask26;
    carry := v lsr 26
  done;
  let sel = if !carry = 1 then g else h in
  (* h = sel mod 2^128, then add s with 32-bit words. *)
  let w = Array.make 4 0 in
  (* recombine limbs into 32-bit words *)
  let bits = Array.make 5 0 in
  Array.blit sel 0 bits 0 5;
  for i = 0 to 3 do
    (* word i = bits [32i, 32i+32) *)
    let lo_bit = 32 * i in
    let limb = lo_bit / 26 and sh = lo_bit mod 26 in
    let v = ref (bits.(limb) lsr sh) in
    let got = 26 - sh in
    if limb + 1 < 5 then v := !v lor (bits.(limb + 1) lsl got);
    if got + 26 < 32 && limb + 2 < 5 then v := !v lor (bits.(limb + 2) lsl (got + 26));
    w.(i) <- !v land 0xffffffff
  done;
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 0 to 3 do
    let v = w.(i) + s.(i) + !carry in
    carry := v lsr 32;
    let v = v land 0xffffffff in
    Bytes.set out (4 * i) (Char.chr (v land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr ((v lsr 24) land 0xff))
  done;
  Bytes.unsafe_to_string out

let verify ~key ~tag msg =
  String.length tag = 16
  &&
  (* Constant-time-style comparison (best effort in OCaml). *)
  let expected = mac ~key msg in
  let d = ref 0 in
  for i = 0 to 15 do
    d := !d lor (Char.code expected.[i] lxor Char.code tag.[i])
  done;
  !d = 0
