(** ChaCha20-Poly1305 AEAD (RFC 8439). *)

val tag_len : int
val key_len : int
val nonce_len : int

val encrypt : key:string -> nonce:string -> ?aad:string -> string -> string
(** Sealed box: ciphertext ‖ 16-byte tag. *)

val decrypt : key:string -> nonce:string -> ?aad:string -> string -> string option
(** [None] when authentication fails (tampered or truncated input). *)
