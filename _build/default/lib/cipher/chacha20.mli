(** ChaCha20 stream cipher (RFC 8439). *)

val block : key:string -> nonce:string -> counter:int -> Bytes.t
(** One 64-byte keystream block. [key] is 32 bytes, [nonce] 12 bytes. *)

val xor : key:string -> nonce:string -> counter:int -> string -> string
(** XOR with the keystream starting at block [counter]. *)

val encrypt : key:string -> nonce:string -> counter:int -> string -> string
val decrypt : key:string -> nonce:string -> counter:int -> string -> string

val le32 : string -> int -> int
(** Little-endian 32-bit read (shared with Poly1305). *)
