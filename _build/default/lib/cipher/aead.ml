(* ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).

   This is the authenticated symmetric layer of Atom's IND-CCA2 inner
   envelope: the KEM shared secret keys this AEAD, making inner ciphertexts
   non-malleable so a tampering server cannot create related ciphertexts
   (§4.4 security analysis). *)

let tag_len = 16
let key_len = 32
let nonce_len = 12

let pad16 (n : int) : string = if n mod 16 = 0 then "" else String.make (16 - (n mod 16)) '\000'

let le64 (n : int) : string = String.init 8 (fun i -> Char.chr ((n lsr (8 * i)) land 0xff))

let mac_data ~(aad : string) ~(ciphertext : string) : string =
  String.concat ""
    [
      aad;
      pad16 (String.length aad);
      ciphertext;
      pad16 (String.length ciphertext);
      le64 (String.length aad);
      le64 (String.length ciphertext);
    ]

let poly_key ~key ~nonce : string = Bytes.sub_string (Chacha20.block ~key ~nonce ~counter:0) 0 32

let encrypt ~(key : string) ~(nonce : string) ?(aad = "") (plaintext : string) : string =
  if String.length key <> key_len then invalid_arg "Aead.encrypt: key must be 32 bytes";
  if String.length nonce <> nonce_len then invalid_arg "Aead.encrypt: nonce must be 12 bytes";
  let ciphertext = Chacha20.encrypt ~key ~nonce ~counter:1 plaintext in
  let tag = Poly1305.mac ~key:(poly_key ~key ~nonce) (mac_data ~aad ~ciphertext) in
  ciphertext ^ tag

let decrypt ~(key : string) ~(nonce : string) ?(aad = "") (sealed : string) : string option =
  if String.length key <> key_len then invalid_arg "Aead.decrypt: key must be 32 bytes";
  if String.length nonce <> nonce_len then invalid_arg "Aead.decrypt: nonce must be 12 bytes";
  let n = String.length sealed in
  if n < tag_len then None
  else begin
    let ciphertext = String.sub sealed 0 (n - tag_len) in
    let tag = String.sub sealed (n - tag_len) tag_len in
    if Poly1305.verify ~key:(poly_key ~key ~nonce) ~tag (mac_data ~aad ~ciphertext) then
      Some (Chacha20.decrypt ~key ~nonce ~counter:1 ciphertext)
    else None
  end
