(* Tests for atom_util: hex codec, deterministic RNG, statistics helpers. *)

open Atom_util

let test_hex_roundtrip () =
  let cases = [ ""; "\x00"; "\xff"; "atom"; "\x01\x23\x45\x67\x89\xab\xcd\xef" ] in
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s)))
    cases;
  Alcotest.(check string) "known" "0123456789abcdef" (Hex.encode "\x01\x23\x45\x67\x89\xab\xcd\xef");
  Alcotest.(check string) "uppercase accepted" "\xab\xcd" (Hex.decode "ABCD")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: not a hex digit") (fun () ->
      ignore (Hex.decode "zz"))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create 43 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 c then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 20 (fun _ -> Rng.next_int64 parent) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 child) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_below_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int_below rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_below_uniform () =
  let rng = Rng.create 2 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int_below rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  (* chi-square with 9 dof: 99.9th percentile is ~27.9 *)
  Alcotest.(check bool) "chi-square sane" true (Stats.chi_square_uniform counts < 30.)

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_permutation () =
  let rng = Rng.create 4 in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 Fun.id) sorted

let test_rng_laplace_mean () =
  let rng = Rng.create 5 in
  let n = 200_000 in
  let sum = ref 0. and sum_abs = ref 0. in
  for _ = 1 to n do
    let x = Rng.laplace rng ~b:2.0 in
    sum := !sum +. x;
    sum_abs := !sum_abs +. Float.abs x
  done;
  let mean = !sum /. float_of_int n and mean_abs = !sum_abs /. float_of_int n in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  (* E|X| = b for Laplace(0,b) *)
  Alcotest.(check bool) "scale near b" true (Float.abs (mean_abs -. 2.0) < 0.05)

let test_rng_exponential_mean () =
  let rng = Rng.create 6 in
  let n = 200_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:3.0
  done;
  Alcotest.(check bool) "mean near 3" true (Float.abs ((!sum /. float_of_int n) -. 3.0) < 0.05)

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 2.5 (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile xs 0.);
  Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile xs 100.)

let test_stats_tv_uniform () =
  Alcotest.(check (float 1e-9)) "uniform counts" 0. (Stats.tv_distance_uniform [| 5; 5; 5; 5 |]);
  Alcotest.(check (float 1e-9)) "point mass" 0.75 (Stats.tv_distance_uniform [| 20; 0; 0; 0 |])

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:4 ~lo:0. ~hi:4. [| 0.5; 1.5; 1.7; 3.9; 5.0 |] in
  Alcotest.(check (array int)) "histogram" [| 1; 2; 0; 1 |] h

(* Pin the interpolation convention: rank p/100*(n-1), linear between
   closest ranks (numpy's default), and the documented edge behaviour. *)
let test_stats_percentile_edges () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | (_ : float) -> false
  in
  Alcotest.(check bool) "empty raises" true (raises (fun () -> Stats.percentile [||] 50.));
  Alcotest.(check bool) "p < 0 raises" true (raises (fun () -> Stats.percentile [| 1. |] (-1.)));
  Alcotest.(check bool) "p > 100 raises" true (raises (fun () -> Stats.percentile [| 1. |] 101.));
  Alcotest.(check bool) "nan p raises" true (raises (fun () -> Stats.percentile [| 1. |] Float.nan));
  (* Single element: every percentile is that element. *)
  Alcotest.(check (float 1e-9)) "singleton p0" 7. (Stats.percentile [| 7. |] 0.);
  Alcotest.(check (float 1e-9)) "singleton p50" 7. (Stats.percentile [| 7. |] 50.);
  Alcotest.(check (float 1e-9)) "singleton p100" 7. (Stats.percentile [| 7. |] 100.);
  (* Interpolation: [|10;20;30;40|] at p=25 → rank 0.75 → 17.5. *)
  Alcotest.(check (float 1e-9)) "interpolated" 17.5 (Stats.percentile [| 10.; 20.; 30.; 40. |] 25.);
  (* Unsorted input is sorted internally; input array is not mutated. *)
  let xs = [| 40.; 10.; 30.; 20. |] in
  Alcotest.(check (float 1e-9)) "unsorted p50" 25. (Stats.percentile xs 50.);
  Alcotest.(check (array (float 1e-9))) "input untouched" [| 40.; 10.; 30.; 20. |] xs

let test_stats_bucket_index () =
  let bi = Stats.bucket_index ~buckets:4 ~lo:0. ~hi:4. in
  Alcotest.(check (option int)) "lo lands in bucket 0" (Some 0) (bi 0.);
  Alcotest.(check (option int)) "half-open boundary" (Some 1) (bi 1.);
  (* hi is included in the last bucket (closed), not dropped. *)
  Alcotest.(check (option int)) "hi in last bucket" (Some 3) (bi 4.);
  Alcotest.(check (option int)) "below lo" None (bi (-0.1));
  Alcotest.(check (option int)) "above hi" None (bi 4.1);
  Alcotest.(check (option int)) "nan" None (bi Float.nan);
  (match Stats.bucket_index ~buckets:0 ~lo:0. ~hi:1. 0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "buckets=0 should raise");
  (match Stats.bucket_index ~buckets:4 ~lo:1. ~hi:1. 1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hi <= lo should raise");
  (* histogram keeps values exactly at hi. *)
  Alcotest.(check (array int)) "hi kept" [| 0; 0; 0; 1 |]
    (Stats.histogram ~buckets:4 ~lo:0. ~hi:4. [| 4.0 |])

let qcheck_hex_roundtrip =
  QCheck2.Test.make ~name:"hex roundtrip (random strings)" ~count:500
    QCheck2.Gen.(string_size (int_bound 64))
    (fun s -> Hex.decode (Hex.encode s) = s)

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "util",
    [
      Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
      Alcotest.test_case "hex invalid input" `Quick test_hex_invalid;
      Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
      Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
      Alcotest.test_case "rng int_below range" `Quick test_rng_int_below_range;
      Alcotest.test_case "rng int_below uniformity" `Quick test_rng_int_below_uniform;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng permutation" `Quick test_rng_permutation;
      Alcotest.test_case "rng laplace moments" `Slow test_rng_laplace_mean;
      Alcotest.test_case "rng exponential mean" `Slow test_rng_exponential_mean;
      Alcotest.test_case "stats basics" `Quick test_stats_basic;
      Alcotest.test_case "stats tv distance" `Quick test_stats_tv_uniform;
      Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
      Alcotest.test_case "stats percentile edges" `Quick test_stats_percentile_edges;
      Alcotest.test_case "stats bucket_index edges" `Quick test_stats_bucket_index;
      q qcheck_hex_roundtrip;
    ] )
