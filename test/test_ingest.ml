(* The client submission plane: admission control, intake epochs, the
   sealed-and-signed bulletin, and the end-to-end ingest cluster.

   Four angles:
   - admission: token-bucket pacing, hashcash, and the structural denials
     (oversize blobs, a full client table) — all pure clock-in functions;
   - intake: bounded epoch queues, idempotent dedup re-acks, backpressure
     and seal idempotence;
   - bulletin: canonical ordering, duplicate collapse, and signature
     forgery rejection on the sealed per-epoch output;
   - a threaded TCP cluster running ingest-mode nodes, real clients and
     the pipelined-epoch coordinator: every accepted submission must land
     on the signed bulletin of exactly its acked epoch. *)

module G = (val Atom_group.Registry.zp_test ())
module TcpT = Atom_rpc.Tcp_transport
module Node = Atom_rpc.Node.Make (G) (TcpT.Check)
module Pr = Node.Pr
module Adm = Atom_ingest.Admission
module Intake = Atom_ingest.Intake
module Ctrl = Atom_wire.Control
open Atom_core

(* ---- admission ---- *)

let pol = Adm.default_policy

let test_token_bucket () =
  let a = Adm.create { pol with Adm.rate = 2.; burst = 2. } in
  let check now = Adm.check a ~now ~client:7 ~blob:"b" ~pow:"" in
  Alcotest.(check bool) "1st admitted" true (check 0. = Adm.Admit);
  Alcotest.(check bool) "2nd admitted" true (check 0. = Adm.Admit);
  (match check 0. with
  | Adm.Backoff ms -> Alcotest.(check bool) "positive retry" true (ms > 0)
  | _ -> Alcotest.fail "3rd submit over burst should backpressure");
  (* Half a second at 2/s refills one token. *)
  Alcotest.(check bool) "refilled" true (check 0.5 = Adm.Admit);
  (* A clock that jumps backwards must not mint tokens. *)
  (match check 0.1 with
  | Adm.Backoff _ -> ()
  | _ -> Alcotest.fail "backwards clock minted tokens");
  (* Buckets are per client: a fresh id starts with a full burst. *)
  Alcotest.(check bool) "other client" true
    (Adm.check a ~now:0.1 ~client:8 ~blob:"b" ~pow:"" = Adm.Admit)

let test_pow () =
  let blob = "onion-bytes" in
  let nonce = Adm.pow_solve ~bits:8 ~blob in
  Alcotest.(check bool) "solved nonce passes" true (Adm.pow_check ~bits:8 ~blob ~pow:nonce);
  Alcotest.(check bool) "nonce is blob-bound" false
    (Adm.pow_check ~bits:8 ~blob:"other-bytes" ~pow:nonce);
  Alcotest.(check bool) "bits=0 disables" true (Adm.pow_check ~bits:0 ~blob ~pow:"");
  let a = Adm.create { pol with Adm.pow_bits = 8 } in
  (match Adm.check a ~now:0. ~client:1 ~blob ~pow:"" with
  | Adm.Deny _ -> ()
  | _ -> Alcotest.fail "missing pow admitted");
  Alcotest.(check bool) "good pow admitted" true
    (Adm.check a ~now:0. ~client:1 ~blob ~pow:nonce = Adm.Admit)

let test_structural_denials () =
  let a = Adm.create { pol with Adm.max_blob = 8; max_clients = 2 } in
  (match Adm.check a ~now:0. ~client:1 ~blob:(String.make 9 'x') ~pow:"" with
  | Adm.Deny _ -> ()
  | _ -> Alcotest.fail "oversize blob admitted");
  Alcotest.(check bool) "client 1" true (Adm.check a ~now:0. ~client:1 ~blob:"b" ~pow:"" = Adm.Admit);
  Alcotest.(check bool) "client 2" true (Adm.check a ~now:0. ~client:2 ~blob:"b" ~pow:"" = Adm.Admit);
  (match Adm.check a ~now:0. ~client:3 ~blob:"b" ~pow:"" with
  | Adm.Deny reason -> Alcotest.(check string) "table bound" "client table full" reason
  | _ -> Alcotest.fail "unbounded client table");
  Alcotest.(check int) "tracked" 2 (Adm.clients_tracked a)

(* ---- intake ---- *)

let ok_validate ~epoch:_ _ = true

let test_intake_dedup_reack () =
  let ik = Intake.create ~policy:{ pol with Adm.rate = 1e6; burst = 1e6 } () in
  let validations = ref 0 in
  let validate ~epoch:_ _ =
    incr validations;
    true
  in
  (match Intake.submit ik ~now:0. ~client:1 ~blob:"blob-a" ~pow:"" ~validate with
  | Intake.Accepted { epoch = 0; _ } -> ()
  | _ -> Alcotest.fail "first submit not accepted into epoch 0");
  (* The retry of an admitted blob re-acks with the original epoch and
     never re-validates — the protocol layer's replay tracking would
     otherwise turn a lost ack into a lost message. *)
  (match Intake.submit ik ~now:0. ~client:1 ~blob:"blob-a" ~pow:"" ~validate with
  | Intake.Accepted { epoch = 0; _ } -> ()
  | _ -> Alcotest.fail "retry not re-acked");
  Alcotest.(check int) "validated once" 1 !validations;
  Alcotest.(check int) "queued once" 1 (Intake.queue_len ik);
  (* Still idempotent after the epoch seals (within the dedup window). *)
  Alcotest.(check int) "sealed count" 1 (Intake.seal ik ~epoch:0);
  (match Intake.submit ik ~now:0. ~client:1 ~blob:"blob-a" ~pow:"" ~validate with
  | Intake.Accepted { epoch = 0; _ } -> ()
  | _ -> Alcotest.fail "post-seal retry lost the original epoch");
  Alcotest.(check int) "collection advanced" 1 (Intake.epoch ik);
  (* Rejected blobs are not deduplicated: a later, valid retry of the
     same bytes must go through the full path again. *)
  (match Intake.submit ik ~now:0. ~client:1 ~blob:"blob-b" ~pow:"" ~validate:(fun ~epoch:_ _ -> false) with
  | Intake.Rejected _ -> ()
  | _ -> Alcotest.fail "invalid blob accepted");
  (match Intake.submit ik ~now:0. ~client:1 ~blob:"blob-b" ~pow:"" ~validate with
  | Intake.Accepted { epoch = 1; _ } -> ()
  | _ -> Alcotest.fail "rejected blob wrongly deduplicated")

let test_intake_backpressure_and_seal () =
  let ik = Intake.create ~policy:{ pol with Adm.rate = 1e6; burst = 1e6; queue_cap = 2 } () in
  let submit i =
    Intake.submit ik ~now:0. ~client:1 ~blob:(Printf.sprintf "blob-%d" i) ~pow:""
      ~validate:ok_validate
  in
  (match submit 0 with Intake.Accepted _ -> () | _ -> Alcotest.fail "s0");
  (match submit 1 with Intake.Accepted _ -> () | _ -> Alcotest.fail "s1");
  (match submit 2 with
  | Intake.Backpressure { retry_ms; _ } ->
      Alcotest.(check bool) "positive retry" true (retry_ms > 0)
  | _ -> Alcotest.fail "full queue admitted");
  (* Seal is idempotent and frees the next epoch's queue. *)
  Alcotest.(check int) "seal" 2 (Intake.seal ik ~epoch:0);
  Alcotest.(check int) "seal again" 2 (Intake.seal ik ~epoch:0);
  Alcotest.(check int) "epoch advanced once" 1 (Intake.epoch ik);
  (match submit 2 with
  | Intake.Accepted { epoch = 1; _ } -> ()
  | _ -> Alcotest.fail "next epoch did not accept")

(* ---- bulletin: sealed output and signatures (satellite 3) ---- *)

module BSign = Bulletin.Signer (G)

let test_bulletin_canonical () =
  let posts = [ "carol"; "alice"; "bob" ] in
  let a = Bulletin.seal ~epoch:3 posts in
  let b = Bulletin.seal ~epoch:3 (List.rev posts) in
  Alcotest.(check (array string)) "order-independent" a.Bulletin.posts b.Bulletin.posts;
  Alcotest.(check string) "same digest" a.Bulletin.digest b.Bulletin.digest;
  Alcotest.(check (array string)) "sorted" [| "alice"; "bob"; "carol" |] a.Bulletin.posts;
  (* Duplicate posts collapse: the sealed output is a set. *)
  let d = Bulletin.seal ~epoch:3 [ "bob"; "alice"; "bob"; "alice" ] in
  Alcotest.(check (array string)) "deduplicated" [| "alice"; "bob" |] d.Bulletin.posts;
  Alcotest.(check bool) "consistent" true (Bulletin.sealed_consistent a);
  (* Same posts, different epoch: different digest (the epoch is bound). *)
  let e = Bulletin.seal ~epoch:4 posts in
  Alcotest.(check bool) "epoch bound" false (String.equal a.Bulletin.digest e.Bulletin.digest)

let test_bulletin_signatures () =
  let sk, pk = BSign.keypair ~seed:42 in
  let sealed = Bulletin.seal ~epoch:5 [ "msg-1"; "msg-2"; "msg-3" ] in
  let signature = BSign.sign_sealed ~sk sealed in
  Alcotest.(check bool) "valid" true (BSign.verify_sealed ~pk sealed ~signature);
  (* Deterministic nonces: signing twice yields identical bytes. *)
  Alcotest.(check string) "deterministic" signature (BSign.sign_sealed ~sk sealed);
  (* Forgeries: a flipped signature byte, a substituted post, a shifted
     epoch, and a signature from the wrong key must all fail. *)
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  in
  Alcotest.(check bool) "tampered signature" false
    (BSign.verify_sealed ~pk sealed ~signature:(flip signature 3));
  let forged_posts = { sealed with Bulletin.posts = [| "msg-1"; "msg-2"; "msg-X" |] } in
  Alcotest.(check bool) "tampered posts" false
    (BSign.verify_sealed ~pk forged_posts ~signature);
  let forged_epoch = { sealed with Bulletin.epoch = 6 } in
  Alcotest.(check bool) "tampered epoch" false
    (BSign.verify_sealed ~pk forged_epoch ~signature);
  let sk2, _ = BSign.keypair ~seed:43 in
  Alcotest.(check bool) "wrong key" false
    (BSign.verify_sealed ~pk sealed ~signature:(BSign.sign_sealed ~sk:sk2 sealed));
  (* A digest the posts don't hash to fails [sealed_consistent] even with
     a valid signature over it. *)
  let inconsistent = { sealed with Bulletin.digest = flip sealed.Bulletin.digest 0 } in
  Alcotest.(check bool) "inconsistent seal" false
    (BSign.verify_sealed ~pk inconsistent ~signature:(BSign.sign_sealed ~sk inconsistent))

let test_bulletin_publish_sealed () =
  let board = Bulletin.create () in
  let s0 = Bulletin.seal ~epoch:0 [ "b"; "a" ] in
  let s1 = Bulletin.seal ~epoch:1 [ "c" ] in
  Bulletin.publish_sealed board s0;
  Bulletin.publish_sealed board s1;
  Alcotest.(check (list string)) "epoch 0" [ "a"; "b" ] (Bulletin.read_round board ~round:0);
  Alcotest.(check (list string)) "epoch 1" [ "c" ] (Bulletin.read_round board ~round:1)

(* ---- end-to-end: ingest cluster over threaded TCP ---- *)

(* 4 ingest-mode servers (2 entry groups of 2), real client transports
   submitting over loopback, and the pipelined-epoch coordinator sealing
   on a timer. The contract under test: every accepted submission appears
   on the signed bulletin of exactly the epoch its ack named; a duplicate
   submit is re-acked idempotently; garbage is rejected and never
   published; the epoch-info query answers. *)
let test_tcp_ingest_cluster () =
  let config =
    {
      (Config.tiny ~variant:Config.Basic ~seed:9 ()) with
      Config.n_servers = 4;
      n_groups = 2;
      group_size = 2;
      h = 1;
      topology = Config.Square 2;
    }
  in
  let n = config.Config.n_servers in
  let coord = n in
  let ts = Array.init (n + 1) (fun node_id -> TcpT.create ~node_id ()) in
  Array.iteri
    (fun i t ->
      Array.iteri
        (fun j u ->
          if i <> j then TcpT.add_peer t ~node_id:j ~host:"127.0.0.1" ~port:(TcpT.port u))
        ts)
    ts;
  let t0 = Unix.gettimeofday () in
  let clock () = Unix.gettimeofday () -. t0 in
  let policy = { Adm.default_policy with Adm.rate = 1000.; burst = 1000. } in
  let node_threads =
    List.init n (fun sid ->
        Thread.create
          (fun () ->
            Node.run_node ~clock ts.(sid) ~config ~node_id:sid ~coord ~recv_timeout:0.1
              ~max_idle:300 ~ingest:policy
              ~register_client:(fun ~client ~port ->
                TcpT.add_peer ts.(sid) ~node_id:client ~host:"127.0.0.1" ~port)
              ())
          ())
  in
  let net = Pr.setup (Atom_util.Rng.create config.Config.seed) config () in
  let heads = Array.init 2 (fun gid -> net.Pr.groups.(gid).Pr.members.(0)) in
  let n_clients = 4 in
  let active = Atomic.make n_clients in
  let accepted = Array.make n_clients [] in
  let got_epoch_info = Atomic.make 0 in
  let garbage_rejected = Atomic.make 0 in
  let dedup_consistent = Atomic.make true in
  let client_threads =
    List.init n_clients (fun j ->
        Thread.create
          (fun () ->
            let cid = n + 1 + j in
            let gid = j mod 2 in
            let head = heads.(gid) in
            let ct = TcpT.create ~node_id:cid () in
            TcpT.add_peer ct ~node_id:head ~host:"127.0.0.1" ~port:(TcpT.port ts.(head));
            let rng = Atom_util.Rng.create (1000 + cid) in
            let submit_frame ~token blob =
              ignore
                (TcpT.send ct ~dst:head
                   (Ctrl.encode
                      (Ctrl.Submit
                         {
                           client = cid; port = TcpT.port ct; token; gid; epoch = 0; blob;
                           pow = "";
                         })))
            in
            (* Wait for the ack matching [token]; duplicate-submit every
               frame once so the idempotent re-ack path is always hot. *)
            let await ~token blob =
              let deadline = Unix.gettimeofday () +. 20. in
              let first = ref None in
              let again = ref None in
              while (!first = None || !again = None) && Unix.gettimeofday () < deadline do
                if !first <> None && !again = None then submit_frame ~token blob;
                match TcpT.recv ct ~timeout:0.2 with
                | Ok (_, frame) -> (
                    match Ctrl.decode frame with
                    | Some (Ctrl.Submit_ack { token = tk; status; epoch; _ }) when tk = token ->
                        if !first = None then begin
                          first := Some (status, epoch);
                          submit_frame ~token blob
                        end
                        else if !again = None then again := Some (status, epoch)
                    | Some (Ctrl.Epoch_info _) -> Atomic.incr got_epoch_info
                    | _ -> ())
                | Error _ -> if !first = None then submit_frame ~token blob
              done;
              (match (!first, !again) with
              | Some a, Some b -> if a <> b then Atomic.set dedup_consistent false
              | _ -> ());
              !first
            in
            (* Epoch-info probe: an empty blob is a query, not a submission. *)
            submit_frame ~token:99 "";
            for s = 0 to 1 do
              let msg = Printf.sprintf "ingest c%d.%d" cid s in
              let blob =
                Pr.Wire.submission_to_bytes (Pr.submit rng net ~user:cid ~entry_gid:gid msg)
              in
              submit_frame ~token:s blob;
              match await ~token:s blob with
              | Some (status, epoch) when status = Ctrl.submit_accepted ->
                  accepted.(j) <- (msg, epoch) :: accepted.(j)
              | _ -> ()
            done;
            (* One garbage blob: must be rejected, must never publish. *)
            let garbage = Atom_util.Rng.bytes rng 32 in
            submit_frame ~token:7 garbage;
            (match await ~token:7 garbage with
            | Some (status, _) when status = Ctrl.submit_rejected ->
                Atomic.incr garbage_rejected
            | _ -> ());
            Atomic.decr active;
            (* Drain announcements until shutdown so the node's fan-out
               never blocks on a gone client. *)
            let quiet = ref 0 in
            while !quiet < 8 do
              match TcpT.recv ct ~timeout:0.25 with
              | Ok _ -> quiet := 0
              | Error _ -> incr quiet
            done;
            TcpT.close ct)
          ())
  in
  let outcome =
    Node.run_ingest_coordinator ~clock ts.(coord) ~config ~recv_timeout:0.1 ~max_idle:300
      ~epoch_s:0.7 ~min_epochs:2
      ~keep_collecting:(fun () -> Atomic.get active > 0)
      ()
  in
  List.iter Thread.join node_threads;
  List.iter Thread.join client_threads;
  Array.iter TcpT.close ts;
  Alcotest.(check (option string)) "no abort" None outcome.Node.ing_abort;
  Alcotest.(check bool) "pipelined epochs" true (List.length outcome.Node.ing_epochs >= 2);
  Alcotest.(check bool) "epoch info answered" true (Atomic.get got_epoch_info >= 1);
  Alcotest.(check int) "garbage rejected everywhere" n_clients (Atomic.get garbage_rejected);
  Alcotest.(check bool) "duplicate submits re-acked identically" true
    (Atomic.get dedup_consistent);
  let all_accepted = List.concat (Array.to_list accepted) in
  Alcotest.(check int) "every submission acked" (2 * n_clients) (List.length all_accepted);
  (* Exactly-once on the signed bulletin, in the acked epoch. *)
  let _, pk = Node.bulletin_keypair config in
  let posts_of e = Array.to_list e.Node.ep_sealed.Bulletin.posts in
  List.iter
    (fun ep ->
      Alcotest.(check bool)
        (Printf.sprintf "epoch %d signature" ep.Node.ep_epoch)
        true
        (Node.BSign.verify_sealed ~pk ep.Node.ep_sealed ~signature:ep.Node.ep_signature))
    outcome.Node.ing_epochs;
  let published = List.concat_map posts_of outcome.Node.ing_epochs in
  Alcotest.(check int) "published exactly the accepted set" (List.length all_accepted)
    (List.length published);
  List.iter
    (fun (msg, e) ->
      match List.find_opt (fun ep -> ep.Node.ep_epoch = e) outcome.Node.ing_epochs with
      | Some ep ->
          Alcotest.(check bool) (Printf.sprintf "%S in epoch %d" msg e) true
            (List.mem msg (posts_of ep))
      | None -> Alcotest.failf "acked epoch %d never sealed" e)
    all_accepted

let suite =
  ( "ingest",
    [
      Alcotest.test_case "token bucket" `Quick test_token_bucket;
      Alcotest.test_case "hashcash pow" `Quick test_pow;
      Alcotest.test_case "structural denials" `Quick test_structural_denials;
      Alcotest.test_case "intake dedup re-ack" `Quick test_intake_dedup_reack;
      Alcotest.test_case "intake backpressure + seal" `Quick test_intake_backpressure_and_seal;
      Alcotest.test_case "bulletin canonical seal" `Quick test_bulletin_canonical;
      Alcotest.test_case "bulletin signatures" `Quick test_bulletin_signatures;
      Alcotest.test_case "bulletin publish sealed" `Quick test_bulletin_publish_sealed;
      Alcotest.test_case "tcp ingest cluster" `Quick test_tcp_ingest_cluster;
    ] )
